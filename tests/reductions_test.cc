#include <gtest/gtest.h>

#include "base/rng.h"
#include "ocqa/engine.h"
#include "reductions/graph.h"
#include "reductions/hcoloring.h"
#include "reductions/mon2sat.h"
#include "reductions/threecol.h"
#include "workload/generators.h"
#include "repairs/counting.h"

namespace uocqa {
namespace {

// --- graph utilities ----------------------------------------------------------

TEST(GraphTest, BasicStructure) {
  UGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  auto side = g.BipartitionOrNull();
  ASSERT_TRUE(side.has_value());
  EXPECT_NE((*side)[0], (*side)[1]);

  UGraph tri(3);
  tri.AddEdge(0, 1);
  tri.AddEdge(1, 2);
  tri.AddEdge(2, 0);
  EXPECT_FALSE(tri.BipartitionOrNull().has_value());
  EXPECT_TRUE(tri.IsThreeColorable());

  UGraph k4(4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) k4.AddEdge(i, j);
  }
  EXPECT_FALSE(k4.IsThreeColorable());
}

// --- Figure 1 / ♯H-Coloring ----------------------------------------------------

TEST(HColoringTest, FigureOneGraphShape) {
  UGraph h = FigureOneGraphH();
  EXPECT_EQ(h.vertex_count(), 6u);
  EXPECT_EQ(h.edges().size(), 8u);  // 3*3 - 1
  EXPECT_FALSE(h.HasEdge(0, 3));    // (1L, 1R) missing
  EXPECT_TRUE(h.HasEdge(0, 4));
  EXPECT_TRUE(h.BipartitionOrNull().has_value());
}

TEST(HColoringTest, SingleVertexHasSixHoms) {
  UGraph g(1);
  EXPECT_EQ(CountHomomorphismsToH(g).ToUint64(), 6u);
  auto hom = HomViaOcqa(g, 1, [](const Database&, const KeySet&,
                                 const ConjunctiveQuery&) { return 0.0; });
  ASSERT_TRUE(hom.ok());
  EXPECT_DOUBLE_EQ(*hom, 6.0);
}

TEST(HColoringTest, InstanceStructure) {
  UGraph g(2);
  g.AddEdge(0, 1);
  auto inst = BuildHColoringInstance(g, {0, 1}, 2);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  // 2 vertices * 2 facts + 1 edge + T + Tp + C(3,2)=3 clique facts.
  EXPECT_EQ(inst->db.size(), 4u + 1u + 2u + 3u);
  EXPECT_TRUE(inst->query.IsSelfJoinFree());
  EXPECT_TRUE(inst->query.IsBoolean());
  // 3^2 = 9 operational repairs.
  BlockPartition blocks = BlockPartition::Compute(inst->db, inst->keys);
  EXPECT_EQ(CountOperationalRepairs(blocks).ToUint64(), 9u);
}

class HColoringParamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HColoringParamTest, HomViaExactOcqaMatchesBruteForce) {
  // Random connected bipartite graphs with 2..6 vertices.
  Rng rng(GetParam() * 77 + 3);
  size_t left = 1 + rng.UniformIndex(3);
  size_t right = 1 + rng.UniformIndex(3);
  UGraph g = RandomConnectedBipartite(rng, left, right, 0.35);
  ASSERT_TRUE(g.IsConnected());

  const size_t k = 1;
  auto oracle = [](const Database& db, const KeySet& keys,
                   const ConjunctiveQuery& q) {
    return ExactRepairFrequency(db, keys, q, {}).value();
  };
  auto hom = HomViaOcqa(g, k, oracle);
  ASSERT_TRUE(hom.ok()) << hom.status().ToString();
  BigInt brute = CountHomomorphismsToH(g);
  EXPECT_NEAR(*hom, brute.ToDouble(), 1e-6 * (1 + brute.ToDouble()))
      << "seed " << GetParam();
}

TEST_P(HColoringParamTest, RfUrEqualsRfUsOnReductionInstances) {
  // Appendix A.2: the two relative frequencies coincide on D_G^k.
  Rng rng(GetParam() * 131 + 9);
  UGraph g(4);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  if (rng.Bernoulli(0.5)) g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  auto side = g.BipartitionOrNull();
  ASSERT_TRUE(side.has_value());
  auto inst = BuildHColoringInstance(g, *side, 1);
  ASSERT_TRUE(inst.ok());
  ExactRF ur = ExactRepairFrequency(inst->db, inst->keys, inst->query, {});
  ExactRF us = ExactSequenceFrequency(inst->db, inst->keys, inst->query, {});
  EXPECT_TRUE(ur == us) << ur.numerator.ToString() << "/"
                        << ur.denominator.ToString() << " vs "
                        << us.numerator.ToString() << "/"
                        << us.denominator.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HColoringParamTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

TEST(HColoringTest, HomFromNumeratorExact) {
  // P2 path (one edge): brute force homs and exact numerator agree.
  UGraph g(2);
  g.AddEdge(0, 1);
  auto inst = BuildHColoringInstance(g, {0, 1}, 1);
  ASSERT_TRUE(inst.ok());
  BigInt numerator =
      CountRepairsEntailing(inst->db, inst->keys, inst->query, {});
  EXPECT_EQ(HomFromNumerator(2, numerator), CountHomomorphismsToH(g));
}

// --- 3-colorability -------------------------------------------------------------

TEST(ThreeColTest, TriangleIsColorable) {
  UGraph tri(3);
  tri.AddEdge(0, 1);
  tri.AddEdge(1, 2);
  tri.AddEdge(2, 0);
  auto inst = BuildThreeColInstance(tri);
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(PosOcqaThreeCol(*inst));
  // Sigma is empty: RF is 0 or 1; here 1.
  ExactRF rf = ExactRepairFrequency(inst->db, inst->keys, inst->query, {});
  EXPECT_EQ(rf.numerator, rf.denominator);
  EXPECT_TRUE(rf.denominator.IsOne());
}

TEST(ThreeColTest, K4IsNotColorable) {
  UGraph k4(4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) k4.AddEdge(i, j);
  }
  auto inst = BuildThreeColInstance(k4);
  ASSERT_TRUE(inst.ok());
  EXPECT_FALSE(PosOcqaThreeCol(*inst));
  ExactRF rf = ExactRepairFrequency(inst->db, inst->keys, inst->query, {});
  EXPECT_TRUE(rf.numerator.IsZero());
}

class ThreeColParamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThreeColParamTest, MatchesBruteForceColoring) {
  Rng rng(GetParam() * 17 + 5);
  size_t n = 3 + rng.UniformIndex(3);
  UGraph g(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.6)) g.AddEdge(i, j);
    }
  }
  if (g.edges().empty()) g.AddEdge(0, 1);
  auto inst = BuildThreeColInstance(g);
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(PosOcqaThreeCol(*inst), g.IsThreeColorable())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeColParamTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// --- ♯MON2SAT -------------------------------------------------------------------

TEST(Mon2SatTest, CountSatisfyingAssignments) {
  // (x0 ∨ x1): 3 of 4 assignments satisfy.
  Pos2Cnf f;
  f.variable_count = 2;
  f.clauses = {{0, 1}};
  EXPECT_EQ(CountSatisfyingAssignments(f).ToUint64(), 3u);
  // (x0 ∨ x1)(x1 ∨ x2): assignments with x1=1 (4) plus x1=0,x0=1,x2=1 (1).
  f.variable_count = 3;
  f.clauses = {{0, 1}, {1, 2}};
  EXPECT_EQ(CountSatisfyingAssignments(f).ToUint64(), 5u);
}

class Mon2SatParamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Mon2SatParamTest, RfEqualsModelCountOver3PowN) {
  Rng rng(GetParam() * 29 + 1);
  Pos2Cnf f;
  f.variable_count = 2 + rng.UniformIndex(3);  // 2..4 variables
  size_t m = 1 + rng.UniformIndex(3);
  for (size_t i = 0; i < m; ++i) {
    size_t a = rng.UniformIndex(f.variable_count);
    size_t b = rng.UniformIndex(f.variable_count);
    if (a == b) b = (b + 1) % f.variable_count;
    f.clauses.emplace_back(a, b);
  }
  const size_t k = 1;
  auto inst = BuildMon2SatInstance(f, k);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  EXPECT_FALSE(inst->query.IsSelfJoinFree());  // V repeats by design

  ExactRF ur = ExactRepairFrequency(inst->db, inst->keys, inst->query, {});
  // RF_ur = ♯φ / 3^n: numerator equals the model count and the denominator
  // equals 3^n.
  BigInt models = CountSatisfyingAssignments(f);
  BigInt three_pow(1);
  for (size_t i = 0; i < f.variable_count; ++i) three_pow *= uint64_t{3};
  EXPECT_EQ(ur.numerator, models) << "seed " << GetParam();
  EXPECT_EQ(ur.denominator, three_pow);

  // Appendix B.2 second half: RF_ur = RF_us.
  ExactRF us = ExactSequenceFrequency(inst->db, inst->keys, inst->query, {});
  EXPECT_TRUE(ur == us);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Mon2SatParamTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace uocqa
