#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "automata/exact_count.h"
#include "automata/fpras.h"
#include "automata/nfta.h"
#include "base/rng.h"

namespace uocqa {
namespace {

/// Unary "string" automaton accepting all {0,1}-strings (as unary trees) of
/// any positive length: L_s = 2^s.
Nfta BinaryStringsAutomaton() {
  Nfta a;
  NftaState q = a.AddState();
  NftaSymbol zero = a.InternSymbol("0");
  NftaSymbol one = a.InternSymbol("1");
  a.AddTransition(q, zero, {q});
  a.AddTransition(q, one, {q});
  a.AddTransition(q, zero, {});
  a.AddTransition(q, one, {});
  a.SetInitial(q);
  return a;
}

/// Highly ambiguous automaton: k parallel states all accepting the same
/// unary {b}-trees under an 'a' root. Distinct trees: 1 per size.
Nfta AmbiguousAutomaton(int k) {
  Nfta a;
  NftaState q0 = a.AddState();
  NftaSymbol sa = a.InternSymbol("a");
  NftaSymbol sb = a.InternSymbol("b");
  for (int i = 0; i < k; ++i) {
    NftaState qi = a.AddState();
    a.AddTransition(q0, sa, {qi});
    a.AddTransition(qi, sb, {qi});
    a.AddTransition(qi, sb, {});
  }
  a.SetInitial(q0);
  return a;
}

/// Full binary trees over a single symbol: sizes 1,3,5,... counted by
/// Catalan numbers 1,1,2,5,14,...
Nfta FullBinaryTreeAutomaton() {
  Nfta a;
  NftaState q = a.AddState();
  NftaSymbol x = a.InternSymbol("x");
  a.AddTransition(q, x, {q, q});
  a.AddTransition(q, x, {});
  a.SetInitial(q);
  return a;
}

TEST(NftaTest, MembershipAndRuns) {
  Nfta a = BinaryStringsAutomaton();
  NftaSymbol zero = a.InternSymbol("0");
  NftaSymbol one = a.InternSymbol("1");
  LabeledTree t(zero, {LabeledTree(one, {LabeledTree(zero)})});
  EXPECT_TRUE(a.Accepts(t));
  EXPECT_EQ(a.CountAcceptingRuns(t), 1u);
  EXPECT_EQ(a.TreeToString(t), "0(1(0))");

  // Branching tree rejected (rank-2 transitions missing).
  LabeledTree bad(zero, {LabeledTree(one), LabeledTree(one)});
  EXPECT_FALSE(a.Accepts(bad));
}

TEST(NftaTest, AmbiguityRunsVersusDistinctTrees) {
  Nfta a = AmbiguousAutomaton(3);
  NftaSymbol sa = a.InternSymbol("a");
  NftaSymbol sb = a.InternSymbol("b");
  LabeledTree t(sa, {LabeledTree(sb)});
  EXPECT_TRUE(a.Accepts(t));
  EXPECT_EQ(a.CountAcceptingRuns(t), 3u);  // one per parallel branch
  ExactTreeCounter counter(a);
  EXPECT_EQ(counter.CountExactSize(2).ToUint64(), 1u);  // distinct trees!
}

TEST(NftaTest, TransitionsDeduplicated) {
  Nfta a;
  NftaState q = a.AddState();
  NftaSymbol s = a.InternSymbol("s");
  a.AddTransition(q, s, {});
  a.AddTransition(q, s, {});
  EXPECT_EQ(a.transition_count(), 1u);
}

TEST(ExactCountTest, BinaryStringsPowersOfTwo) {
  Nfta a = BinaryStringsAutomaton();
  ExactTreeCounter counter(a);
  for (size_t s = 1; s <= 10; ++s) {
    EXPECT_EQ(counter.CountExactSize(s).ToUint64(), uint64_t{1} << s)
        << "size " << s;
  }
  // Union over sizes: 2 + 4 + ... + 2^5 = 62.
  EXPECT_EQ(counter.CountUpTo(5).ToUint64(), 62u);
}

TEST(ExactCountTest, FullBinaryTreesAreCatalan) {
  Nfta a = FullBinaryTreeAutomaton();
  ExactTreeCounter counter(a);
  EXPECT_EQ(counter.CountExactSize(1).ToUint64(), 1u);
  EXPECT_EQ(counter.CountExactSize(2).ToUint64(), 0u);
  EXPECT_EQ(counter.CountExactSize(3).ToUint64(), 1u);
  EXPECT_EQ(counter.CountExactSize(5).ToUint64(), 2u);
  EXPECT_EQ(counter.CountExactSize(7).ToUint64(), 5u);
  EXPECT_EQ(counter.CountExactSize(9).ToUint64(), 14u);
  EXPECT_EQ(counter.CountExactSize(11).ToUint64(), 42u);
}

TEST(ExactCountTest, OverlappingUnions) {
  // q0 -a-> q1 (b-strings length exactly 1) and q0 -a-> q2 (b or c, length
  // 1): L(q0,2) = {a(b)} ∪ {a(b), a(c)} = 2 trees.
  Nfta a;
  NftaState q0 = a.AddState();
  NftaState q1 = a.AddState();
  NftaState q2 = a.AddState();
  NftaSymbol sa = a.InternSymbol("a");
  NftaSymbol sb = a.InternSymbol("b");
  NftaSymbol sc = a.InternSymbol("c");
  a.AddTransition(q0, sa, {q1});
  a.AddTransition(q0, sa, {q2});
  a.AddTransition(q1, sb, {});
  a.AddTransition(q2, sb, {});
  a.AddTransition(q2, sc, {});
  a.SetInitial(q0);
  ExactTreeCounter counter(a);
  EXPECT_EQ(counter.CountExactSize(2).ToUint64(), 2u);
}

// Brute-force enumeration of all trees over the automaton's alphabet with
// max rank 2, used to cross-check the exact counter on random automata.
void EnumerateTrees(size_t symbols, size_t size,
                    std::vector<LabeledTree>* out) {
  if (size == 0) return;
  for (NftaSymbol s = 0; s < symbols; ++s) {
    if (size == 1) {
      out->push_back(LabeledTree(s));
      continue;
    }
    // One child.
    std::vector<LabeledTree> subs;
    EnumerateTrees(symbols, size - 1, &subs);
    for (const LabeledTree& c : subs) {
      out->push_back(LabeledTree(s, {c}));
    }
    // Two children.
    for (size_t left = 1; left + 1 <= size - 1; ++left) {
      std::vector<LabeledTree> ls, rs;
      EnumerateTrees(symbols, left, &ls);
      EnumerateTrees(symbols, size - 1 - left, &rs);
      for (const LabeledTree& l : ls) {
        for (const LabeledTree& r : rs) {
          out->push_back(LabeledTree(s, {l, r}));
        }
      }
    }
  }
}

class RandomAutomatonTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomAutomatonTest, ExactCounterMatchesBruteForce) {
  Rng rng(GetParam());
  Nfta a;
  size_t n_states = 2 + rng.UniformIndex(3);
  size_t n_symbols = 1 + rng.UniformIndex(2);
  for (size_t i = 0; i < n_states; ++i) a.AddState();
  for (size_t s = 0; s < n_symbols; ++s) {
    a.InternSymbol("s" + std::to_string(s));
  }
  size_t n_transitions = 3 + rng.UniformIndex(8);
  for (size_t i = 0; i < n_transitions; ++i) {
    NftaState from = static_cast<NftaState>(rng.UniformIndex(n_states));
    NftaSymbol sym = static_cast<NftaSymbol>(rng.UniformIndex(n_symbols));
    size_t rank = rng.UniformIndex(3);  // 0, 1 or 2
    std::vector<NftaState> children;
    for (size_t r = 0; r < rank; ++r) {
      children.push_back(static_cast<NftaState>(rng.UniformIndex(n_states)));
    }
    a.AddTransition(from, sym, std::move(children));
  }
  a.SetInitial(0);

  ExactTreeCounter counter(a);
  for (size_t size = 1; size <= 5; ++size) {
    std::vector<LabeledTree> all;
    EnumerateTrees(n_symbols, size, &all);
    uint64_t brute = 0;
    for (const LabeledTree& t : all) {
      if (a.Accepts(t)) ++brute;
    }
    EXPECT_EQ(counter.CountExactSize(size).ToUint64(), brute)
        << "seed=" << GetParam() << " size=" << size << " "
        << a.DebugStats();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAutomatonTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

// --- FPRAS -------------------------------------------------------------------

TEST(FprasTest, ExactOnUnambiguousAutomaton) {
  // Components never overlap; the estimator is exact (no sampling).
  Nfta a = BinaryStringsAutomaton();
  NftaFpras fpras(a);
  EXPECT_DOUBLE_EQ(fpras.EstimateExactSize(6), 64.0);
  EXPECT_DOUBLE_EQ(fpras.EstimateUpTo(5), 62.0);
  EXPECT_EQ(fpras.union_estimations(), 0u);
}

TEST(FprasTest, CollapsesAmbiguity) {
  Nfta a = AmbiguousAutomaton(4);
  FprasConfig cfg;
  cfg.epsilon = 0.1;
  cfg.seed = 99;
  NftaFpras fpras(a, cfg);
  // Distinct trees of size s: exactly one (a(b(...b))).
  for (size_t s = 2; s <= 6; ++s) {
    EXPECT_NEAR(fpras.EstimateExactSize(s), 1.0, 0.15) << "size " << s;
  }
  EXPECT_GT(fpras.union_estimations(), 0u);
}

TEST(FprasTest, PartialOverlapEstimates) {
  // L(q0,2) from OverlappingUnions: exact value 2.
  Nfta a;
  NftaState q0 = a.AddState();
  NftaState q1 = a.AddState();
  NftaState q2 = a.AddState();
  NftaSymbol sa = a.InternSymbol("a");
  NftaSymbol sb = a.InternSymbol("b");
  NftaSymbol sc = a.InternSymbol("c");
  a.AddTransition(q0, sa, {q1});
  a.AddTransition(q0, sa, {q2});
  a.AddTransition(q1, sb, {});
  a.AddTransition(q2, sb, {});
  a.AddTransition(q2, sc, {});
  a.SetInitial(q0);
  FprasConfig cfg;
  cfg.epsilon = 0.05;
  cfg.seed = 7;
  NftaFpras fpras(a, cfg);
  EXPECT_NEAR(fpras.EstimateExactSize(2), 2.0, 0.2);
}

TEST(FprasTest, AccuracySweepOnRandomAutomata) {
  // End-to-end (1 ± eps) conformance against the exact counter, across
  // seeds. Allows a small slack on top of eps for estimator bias.
  const double kEps = 0.15;
  int total = 0;
  int within = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 1000 + 17);
    Nfta a;
    size_t n_states = 2 + rng.UniformIndex(3);
    for (size_t i = 0; i < n_states; ++i) a.AddState();
    for (size_t s = 0; s < 2; ++s) a.InternSymbol("s" + std::to_string(s));
    for (size_t i = 0; i < 8; ++i) {
      NftaState from = static_cast<NftaState>(rng.UniformIndex(n_states));
      NftaSymbol sym = static_cast<NftaSymbol>(rng.UniformIndex(2));
      size_t rank = rng.UniformIndex(3);
      std::vector<NftaState> children;
      for (size_t r = 0; r < rank; ++r) {
        children.push_back(
            static_cast<NftaState>(rng.UniformIndex(n_states)));
      }
      a.AddTransition(from, sym, std::move(children));
    }
    a.SetInitial(0);
    ExactTreeCounter counter(a);
    FprasConfig cfg;
    cfg.epsilon = kEps;
    cfg.seed = seed;
    NftaFpras fpras(a, cfg);
    for (size_t size = 2; size <= 6; ++size) {
      double exact = counter.CountExactSize(size).ToDouble();
      double approx = fpras.EstimateExactSize(size);
      ++total;
      if (exact == 0.0) {
        if (approx == 0.0) ++within;
        continue;
      }
      if (std::abs(approx - exact) <= 1.5 * kEps * exact) ++within;
    }
  }
  // At least 90% of the estimates within the (slack-extended) bound.
  EXPECT_GE(within * 10, total * 9) << within << "/" << total;
}

TEST(FprasTest, SampleProducesAcceptedTrees) {
  Nfta a = FullBinaryTreeAutomaton();
  NftaFpras fpras(a);
  Rng rng(5);
  std::set<LabeledTree> seen;
  for (int i = 0; i < 200; ++i) {
    auto t = fpras.Sample(rng, a.initial(), 7);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->Size(), 7u);
    EXPECT_TRUE(a.Accepts(*t));
    seen.insert(*t);
  }
  // All 5 full binary trees with 7 nodes should appear.
  EXPECT_EQ(seen.size(), 5u);
}

TEST(FprasTest, SampleFromEmptyLanguage) {
  Nfta a = FullBinaryTreeAutomaton();
  NftaFpras fpras(a);
  Rng rng(6);
  EXPECT_FALSE(fpras.Sample(rng, a.initial(), 2).has_value());  // even size
}

TEST(FprasTest, DeterministicGivenSeed) {
  Nfta a = AmbiguousAutomaton(3);
  FprasConfig cfg;
  cfg.seed = 123;
  NftaFpras f1(a, cfg);
  NftaFpras f2(a, cfg);
  EXPECT_DOUBLE_EQ(f1.EstimateUpTo(6), f2.EstimateUpTo(6));
}

}  // namespace
}  // namespace uocqa
