#include <gtest/gtest.h>

#include "db/textio.h"

namespace uocqa {
namespace {

TEST(TextIoTest, ParsesFactsAndKeys) {
  auto inst = ParseInstanceText(R"(
# the paper's Example 1.1
key Emp = 1
Emp(1, Alice)
Emp(1, Tom)
Dept(1, 'R and D')
)");
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  EXPECT_EQ(inst->db.size(), 3u);
  RelationId emp = inst->db.schema().Find("Emp");
  ASSERT_NE(emp, kInvalidRelation);
  EXPECT_TRUE(inst->keys.HasKey(emp));
  EXPECT_EQ(inst->keys.Positions(emp), (std::vector<uint32_t>{0}));
  EXPECT_FALSE(IsConsistent(inst->db, inst->keys));
  // Quoted constant with spaces survives.
  RelationId dept = inst->db.schema().Find("Dept");
  ASSERT_NE(dept, kInvalidRelation);
  Fact f = inst->db.fact(2);
  EXPECT_EQ(ValuePool::Name(f.args[1]), "R and D");
}

TEST(TextIoTest, CompositeKeyAndRoundTrip) {
  auto inst = ParseInstanceText("key R = 1 2\nR(a, b, c)\nR(a, b, d)\n");
  ASSERT_TRUE(inst.ok());
  RelationId r = inst->db.schema().Find("R");
  EXPECT_EQ(inst->keys.Positions(r), (std::vector<uint32_t>{0, 1}));
  EXPECT_FALSE(IsConsistent(inst->db, inst->keys));

  std::string text = InstanceToText(inst->db, inst->keys);
  auto again = ParseInstanceText(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->db.size(), inst->db.size());
  EXPECT_TRUE(again->db == inst->db);
}

TEST(TextIoTest, Errors) {
  EXPECT_FALSE(ParseInstanceText("R(a,b").ok());            // missing paren
  EXPECT_FALSE(ParseInstanceText("key R = 1\n").ok());      // unknown rel
  EXPECT_FALSE(ParseInstanceText("key R = 0\nR(a)\n").ok());  // 1-based
  EXPECT_FALSE(ParseInstanceText("key R = 3\nR(a,b)\n").ok());  // range
  EXPECT_FALSE(ParseInstanceText("R(a)\nR(a,b)\n").ok());   // arity clash
  EXPECT_FALSE(ParseInstanceText("R('a)\n").ok());          // open quote
}

TEST(TextIoTest, EmptyAndCommentsOnly) {
  auto inst = ParseInstanceText("# nothing here\n\n   \n");
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(inst->db.empty());
}

}  // namespace
}  // namespace uocqa
