// The concurrency layer's central promise: for a fixed seed, every estimate
// in the library is bit-identical at every thread count. Parallel work is
// split into fixed-size chunks with one Rng::Stream per chunk, so the
// (chunk -> randomness) map never depends on how many lanes execute it.
// These tests pin that contract for the Monte-Carlo baselines, the FPRAS
// pipeline (RF_ur and RF_us), and parallel block partitioning.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "base/thread_pool.h"
#include "db/blocks.h"
#include "ocqa/engine.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace uocqa {
namespace {

/// A small inconsistent two-relation instance with a join query, enough for
/// multi-chunk Monte Carlo and a non-trivial automaton.
struct Fixture {
  Schema s;
  Database db;
  KeySet keys;
  ConjunctiveQuery q = *ParseQuery("Ans() :- R(x,y), W(y,z)");

  Fixture() {
    s.AddRelationOrDie("R", 2);
    s.AddRelationOrDie("W", 2);
    db = Database(s);
    db.Add("R", {"1", "a"});
    db.Add("R", {"1", "b"});
    db.Add("R", {"2", "a"});
    db.Add("R", {"2", "c"});
    db.Add("W", {"a", "x"});
    db.Add("W", {"b", "x"});
    db.Add("W", {"b", "y"});
    db.Add("W", {"c", "y"});
    keys.SetKeyOrDie(db.schema().Find("R"), {0});
    keys.SetKeyOrDie(db.schema().Find("W"), {0});
  }
};

const size_t kThreadCounts[] = {1, 2, 8};

TEST(ParallelDeterminismTest, MonteCarloUrIsThreadCountInvariant) {
  Fixture f;
  OcqaEngine engine(f.db, f.keys);
  // 500 samples span several kMcChunk chunks, so multi-lane runs genuinely
  // interleave chunk execution.
  double baseline = engine.MonteCarloUr(f.q, {}, 500, 9, 1);
  EXPECT_GT(baseline, 0.0);
  EXPECT_LT(baseline, 1.0);
  for (size_t threads : kThreadCounts) {
    EXPECT_EQ(engine.MonteCarloUr(f.q, {}, 500, 9, threads), baseline)
        << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, MonteCarloUsIsThreadCountInvariant) {
  Fixture f;
  OcqaEngine engine(f.db, f.keys);
  double baseline = engine.MonteCarloUs(f.q, {}, 400, 11, 1);
  EXPECT_GT(baseline, 0.0);
  EXPECT_LT(baseline, 1.0);
  for (size_t threads : kThreadCounts) {
    EXPECT_EQ(engine.MonteCarloUs(f.q, {}, 400, 11, threads), baseline)
        << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, FprasUrIsThreadCountInvariant) {
  Fixture f;
  OcqaEngine engine(f.db, f.keys);
  OcqaOptions options;
  options.fpras.seed = 21;
  options.threads = 1;
  auto baseline = engine.ApproxUr(f.q, {}, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t threads : kThreadCounts) {
    options.threads = threads;
    auto run = engine.ApproxUr(f.q, {}, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->numerator, baseline->numerator) << threads << " threads";
    EXPECT_EQ(run->denominator, baseline->denominator)
        << threads << " threads";
    EXPECT_EQ(run->value, baseline->value) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, FprasUsIsThreadCountInvariant) {
  Fixture f;
  OcqaEngine engine(f.db, f.keys);
  OcqaOptions options;
  options.fpras.seed = 23;
  // Keep the sequence automaton's trial budget small: this test is about
  // bit-equality, not accuracy, and it also runs under TSan.
  options.fpras.min_samples = 32;
  options.fpras.max_samples = 256;
  options.threads = 1;
  auto baseline = engine.ApproxUs(f.q, {}, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t threads : kThreadCounts) {
    options.threads = threads;
    auto run = engine.ApproxUs(f.q, {}, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->numerator, baseline->numerator) << threads << " threads";
    EXPECT_EQ(run->value, baseline->value) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, BlockPartitionIsPoolInvariant) {
  // A larger generated instance: many relations and blocks, so the
  // parallel per-relation grouping actually distributes work.
  Rng rng(5);
  ConjunctiveQuery q = ChainQuery(4);
  DbGenOptions gen;
  gen.blocks_per_relation = 200;
  gen.max_block_size = 4;
  gen.domain_size = 300;
  GeneratedInstance inst = GenerateDatabaseForQuery(rng, q, gen);

  BlockPartition serial = BlockPartition::Compute(inst.db, inst.keys);
  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    BlockPartition parallel =
        BlockPartition::Compute(inst.db, inst.keys, &pool);
    ASSERT_EQ(parallel.block_count(), serial.block_count());
    for (size_t i = 0; i < serial.block_count(); ++i) {
      ASSERT_EQ(parallel.block(i).relation, serial.block(i).relation) << i;
      ASSERT_EQ(parallel.block(i).key_value, serial.block(i).key_value) << i;
      ASSERT_EQ(parallel.block(i).facts, serial.block(i).facts) << i;
    }
    for (FactId id = 0; id < inst.db.size(); ++id) {
      ASSERT_EQ(parallel.BlockOf(id), serial.BlockOf(id)) << id;
    }
  }
}

TEST(ParallelDeterminismTest, RngStreamsDoNotOverlap) {
  // Neighbouring streams drawing many values stay disjoint — a smoke check
  // that chunked estimators really consume independent randomness.
  std::vector<uint64_t> seen;
  for (uint64_t stream = 0; stream < 8; ++stream) {
    Rng rng = Rng::Stream(77, stream);
    for (int i = 0; i < 256; ++i) seen.push_back(rng.NextU64());
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace uocqa
