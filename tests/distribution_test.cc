// Statistical properties tying the samplers to the exact counting layer:
//  * the uniform sequence sampler's *outcome marginals* match
//    CountSequencesForOutcome / |CRS| on the paper's §5.1 instance
//    (Example 5.4's quantity, as a distribution);
//  * per-answer-constant sweeps where the Rep[k] automaton count must track
//    the brute-force numerator for every candidate answer;
//  * the conditioned FPRAS pipeline RF_us on instances with nontrivial
//    interleaving.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "base/rng.h"
#include "ocqa/engine.h"
#include "query/parser.h"
#include "repairs/counting.h"
#include "repairs/operations.h"
#include "repairs/sampling.h"

namespace uocqa {
namespace {

TEST(DistributionTest, SequenceSamplerOutcomeMarginalsMatchExactCounts) {
  // §5.1 database: outcome probability under uniform sequences is
  // #sequences(outcome) / |CRS| — Example 5.4 computes one such count
  // (8640); here we check the whole distribution empirically.
  Schema s;
  s.AddRelationOrDie("P", 2);
  s.AddRelationOrDie("S", 2);
  s.AddRelationOrDie("T", 2);
  s.AddRelationOrDie("U", 2);
  Database db(s);
  db.Add("P", {"a1", "b"});
  db.Add("P", {"a1", "c"});
  db.Add("P", {"a2", "b"});
  db.Add("P", {"a2", "c"});
  db.Add("P", {"a2", "d"});
  db.Add("S", {"c", "d"});
  db.Add("S", {"c", "e"});
  db.Add("T", {"d", "a1"});
  db.Add("U", {"c", "f"});
  db.Add("U", {"c", "g"});
  db.Add("U", {"h", "i"});
  db.Add("U", {"h", "j"});
  db.Add("U", {"h", "k"});
  KeySet keys;
  for (const char* r : {"P", "S", "T", "U"}) {
    keys.SetKeyOrDie(s.Find(r), {0});
  }
  BlockPartition blocks = BlockPartition::Compute(db, keys);
  BigInt total = CountCompleteSequencesExact(blocks);

  // The paper's Example 5.4 outcome.
  auto find = [&](const char* rel, const char* a, const char* b) {
    return db.Find(MakeFact(db.schema(), rel, {a, b}));
  };
  std::vector<BlockOutcome> example54(6);
  example54[0] = find("P", "a1", "c");
  example54[1] = std::nullopt;
  example54[2] = find("S", "c", "d");
  example54[3] = find("T", "d", "a1");
  example54[4] = find("U", "c", "f");
  example54[5] = find("U", "h", "i");
  double p_example =
      BigInt::RatioAsDouble(CountSequencesForOutcome(blocks, example54),
                            total);
  EXPECT_NEAR(p_example, 8640.0 / total.ToDouble(), 1e-12);

  // Empirical marginal of that exact outcome under the uniform sampler.
  UniformSequenceSampler sampler(db, keys);
  ASSERT_EQ(sampler.total_count(), total);
  Rng rng(2024);
  const int kTrials = 40000;
  int hits = 0;
  for (int i = 0; i < kTrials; ++i) {
    RepairingSequence seq = sampler.Sample(rng);
    std::vector<FactId> kept = ApplySequence(db, seq);
    // Outcome of this sequence: which facts survived.
    std::vector<FactId> expected;
    for (const BlockOutcome& o : example54) {
      if (o.has_value()) expected.push_back(*o);
    }
    std::sort(expected.begin(), expected.end());
    if (kept == expected) ++hits;
  }
  double empirical = static_cast<double>(hits) / kTrials;
  // p ~= 8640 / |CRS|; allow 4-sigma binomial slack.
  double sigma = std::sqrt(p_example * (1 - p_example) / kTrials);
  EXPECT_NEAR(empirical, p_example, 4 * sigma + 1e-4)
      << "p=" << p_example << " hits=" << hits;
}

TEST(DistributionTest, AnswerSweepAutomatonMatchesBruteForce) {
  // For every candidate answer constant, the automaton numerator equals
  // the brute-force numerator (the combined pipeline is answer-aware).
  Schema s;
  s.AddRelationOrDie("R", 2);
  s.AddRelationOrDie("W", 2);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"1", "b"});
  db.Add("R", {"2", "a"});
  db.Add("R", {"3", "c"});
  db.Add("W", {"a", "x"});
  db.Add("W", {"b", "x"});
  db.Add("W", {"b", "y"});
  db.Add("W", {"c", "z"});
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0});
  keys.SetKeyOrDie(s.Find("W"), {0});
  ConjunctiveQuery q = *ParseQuery("Ans(u) :- R(u,v), W(v,t)");
  OcqaEngine engine(db, keys);
  for (const char* candidate : {"1", "2", "3", "a", "nope"}) {
    std::vector<Value> answer = {ValuePool::Intern(candidate)};
    auto via_automaton = engine.RepairsEntailingViaAutomaton(q, answer);
    ASSERT_TRUE(via_automaton.ok()) << candidate;
    EXPECT_EQ(*via_automaton,
              CountRepairsEntailing(db, keys, q, answer))
        << "candidate " << candidate;
  }
}

TEST(DistributionTest, ApproxUsOnInterleavingHeavyInstance) {
  // RF_us through the full FPRAS pipeline on an instance whose sequence
  // counts involve nontrivial amplifiers (block sizes 3 and 2).
  Schema s;
  s.AddRelationOrDie("R", 2);
  s.AddRelationOrDie("V", 2);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"1", "b"});
  db.Add("R", {"1", "c"});
  db.Add("V", {"k", "a"});
  db.Add("V", {"k", "b"});
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0});
  keys.SetKeyOrDie(s.Find("V"), {0});
  ConjunctiveQuery q = *ParseQuery("Ans() :- R(x,y), V(z,y)");
  OcqaEngine engine(db, keys);
  ExactRF exact = engine.ExactUs(q, {});
  ASSERT_FALSE(exact.numerator.IsZero());
  OcqaOptions options;
  options.fpras.epsilon = 0.15;
  options.fpras.seed = 33;
  auto approx = engine.ApproxUs(q, {}, options);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_NEAR(approx->value / exact.value(), 1.0, 0.25);
}

TEST(DistributionTest, RepairSamplerMarginalPerBlock) {
  // Per-block marginal of the uniform repair sampler: each of the n+1
  // outcomes of a size-n block appears with frequency 1/(n+1).
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  db.Add("R", {"k", "a"});
  db.Add("R", {"k", "b"});
  db.Add("R", {"k", "c"});
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0});
  UniformRepairSampler sampler(db, keys);
  Rng rng(5);
  std::map<std::vector<FactId>, int> counts;
  const int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) counts[sampler.Sample(rng)]++;
  ASSERT_EQ(counts.size(), 4u);  // three keep-one outcomes + empty
  for (const auto& [outcome, n] : counts) {
    EXPECT_NEAR(static_cast<double>(n) / kTrials, 0.25, 0.01);
  }
}

}  // namespace
}  // namespace uocqa
