// Tests for the DatabaseIndex subsystem: incremental maintenance under
// AddFact, Subset correctness, inverted-index lookups vs. brute-force
// scans, cardinality statistics, block-order stability against the legacy
// scan-based BlockPartition::Compute, and end-to-end evaluator agreement
// with brute-force homomorphism enumeration.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "db/blocks.h"
#include "db/database.h"
#include "db/index.h"
#include "db/keys.h"
#include "query/eval.h"
#include "workload/generators.h"

namespace uocqa {
namespace {

// ---------------------------------------------------------------------------
// Brute-force references (the pre-index scan implementations).
// ---------------------------------------------------------------------------

std::vector<FactId> ScanFactsOfRelation(const Database& db, RelationId rel) {
  std::vector<FactId> out;
  for (FactId id = 0; id < db.size(); ++id) {
    if (db.fact(id).relation == rel) out.push_back(id);
  }
  return out;
}

std::vector<Value> ScanActiveDomain(const Database& db) {
  std::vector<Value> out;
  for (const Fact& f : db.facts()) {
    for (Value v : f.args) {
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
  }
  return out;
}

std::vector<FactId> ScanFactsWith(const Database& db, RelationId rel,
                                  uint32_t pos, Value value) {
  std::vector<FactId> out;
  for (FactId id = 0; id < db.size(); ++id) {
    const Fact& f = db.fact(id);
    if (f.relation == rel && pos < f.args.size() && f.args[pos] == value) {
      out.push_back(id);
    }
  }
  return out;
}

/// The pre-refactor BlockPartition::Compute: one global std::map keyed by
/// (relation, key value), giving blocks in (relation, lexicographic key)
/// order. Kept here as the ordering reference the index-backed version must
/// reproduce exactly.
std::vector<Block> LegacyBlocks(const Database& db, const KeySet& keys) {
  std::map<std::pair<RelationId, std::vector<Value>>, std::vector<FactId>>
      groups;
  for (FactId id = 0; id < db.size(); ++id) {
    const Fact& f = db.fact(id);
    groups[{f.relation, keys.KeyValueOf(f)}].push_back(id);
  }
  std::vector<Block> out;
  for (auto& [sig, ids] : groups) {
    Block b;
    b.relation = sig.first;
    b.key_value = sig.second;
    std::sort(ids.begin(), ids.end());
    b.facts = ids;
    out.push_back(std::move(b));
  }
  return out;
}

GeneratedInstance RandomInstance(uint64_t seed, size_t blocks,
                                 size_t domain) {
  Rng rng(seed);
  ConjunctiveQuery q = ChainQuery(3);
  DbGenOptions gen;
  gen.blocks_per_relation = blocks;
  gen.min_block_size = 1;
  gen.max_block_size = 3;
  gen.domain_size = domain;
  return GenerateDatabaseForQuery(rng, q, gen);
}

void ExpectIndexMatchesScans(const Database& db) {
  const DatabaseIndex& index = db.index();
  EXPECT_EQ(index.total_facts(), db.size());
  EXPECT_EQ(index.ActiveDomain(), ScanActiveDomain(db));
  for (RelationId rel = 0; rel < db.schema().relation_count(); ++rel) {
    std::vector<FactId> expected = ScanFactsOfRelation(db, rel);
    EXPECT_EQ(index.FactsOfRelation(rel), expected);
    EXPECT_EQ(index.RelationCardinality(rel), expected.size());
    for (uint32_t pos = 0; pos < db.schema().arity(rel); ++pos) {
      std::vector<Value> distinct;
      for (FactId id : expected) {
        Value v = db.fact(id).args[pos];
        if (std::find(distinct.begin(), distinct.end(), v) ==
            distinct.end()) {
          distinct.push_back(v);
        }
      }
      EXPECT_EQ(index.DistinctValues(rel, pos), distinct.size());
      for (Value v : distinct) {
        EXPECT_EQ(index.FactsWith(rel, pos, v),
                  ScanFactsWith(db, rel, pos, v));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental maintenance.
// ---------------------------------------------------------------------------

TEST(DatabaseIndexTest, IncrementalMaintenanceUnderAddFact) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  s.AddRelationOrDie("S", 3);
  Database db(s);
  const std::vector<std::pair<std::string, std::vector<std::string>>> inserts =
      {{"R", {"a", "b"}}, {"S", {"a", "c", "d"}}, {"R", {"b", "b"}},
       {"R", {"a", "b"}},  // duplicate: must not disturb the index
       {"S", {"e", "c", "a"}}, {"R", {"c", "a"}}};
  for (const auto& [rel, args] : inserts) {
    db.Add(rel, args);
    ExpectIndexMatchesScans(db);
  }
  EXPECT_EQ(db.size(), 5u);  // one duplicate
  // Postings are sorted by fact id.
  RelationId r = s.Find("R");
  Value b = ValuePool::Intern("b");
  const std::vector<FactId>& with_b = db.index().FactsWith(r, 1, b);
  EXPECT_TRUE(std::is_sorted(with_b.begin(), with_b.end()));
  EXPECT_EQ(with_b.size(), 2u);
}

TEST(DatabaseIndexTest, MostCommonFrequencyTracksSkewIncrementally) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  RelationId r = s.Find("R");
  EXPECT_EQ(db.index().MostCommonFrequency(r, 0), 0u);

  db.Add("R", {"hot", "a"});
  EXPECT_EQ(db.index().MostCommonFrequency(r, 0), 1u);
  EXPECT_EQ(db.index().MostCommonFrequency(r, 1), 1u);

  db.Add("R", {"hot", "b"});
  db.Add("R", {"hot", "c"});
  db.Add("R", {"cold", "c"});
  // Column 0: "hot" appears 3 times; column 1: "c" appears twice.
  EXPECT_EQ(db.index().MostCommonFrequency(r, 0), 3u);
  EXPECT_EQ(db.index().MostCommonFrequency(r, 1), 2u);

  // Duplicate fact: ignored by the database, stats unchanged.
  db.Add("R", {"hot", "b"});
  EXPECT_EQ(db.index().MostCommonFrequency(r, 0), 3u);

  // Out-of-range lookups are 0, mirroring the other accessors.
  EXPECT_EQ(db.index().MostCommonFrequency(r, 7), 0u);
  EXPECT_EQ(db.index().MostCommonFrequency(kInvalidRelation, 0), 0u);

  // Subset rebuilds consistent MCV stats through OnFactAdded.
  Database sub = db.Subset({0, 3});  // R(hot,a), R(cold,c)
  EXPECT_EQ(sub.index().MostCommonFrequency(s.Find("R"), 0), 1u);
}

TEST(DatabaseIndexTest, MissingRelationAndValueLookupsAreEmpty) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  s.AddRelationOrDie("Empty", 2);
  Database db(s);
  db.Add("R", {"a", "b"});
  EXPECT_TRUE(db.index().FactsOfRelation(s.Find("Empty")).empty());
  EXPECT_TRUE(db.index().FactsOfRelation(kInvalidRelation).empty());
  EXPECT_EQ(db.index().RelationCardinality(s.Find("Empty")), 0u);
  EXPECT_EQ(db.index().DistinctValues(s.Find("Empty"), 0), 0u);
  EXPECT_TRUE(
      db.index().FactsWith(s.Find("R"), 0, ValuePool::Intern("zzz")).empty());
  EXPECT_TRUE(db.index().FactsWith(s.Find("R"), 7, ValuePool::Intern("a"))
                  .empty());
}

TEST(DatabaseIndexTest, CandidatesPicksSupersetOfMatches) {
  GeneratedInstance inst = RandomInstance(7, 20, 12);
  const Database& db = inst.db;
  for (RelationId rel = 0; rel < db.schema().relation_count(); ++rel) {
    for (FactId id : db.index().FactsOfRelation(rel)) {
      const Fact& f = db.fact(id);
      // Binding both positions to the fact's own values must keep the fact
      // among the candidates (the list is a superset of the match set).
      std::vector<BoundArg> bound = {{0, f.args[0]}, {1, f.args[1]}};
      const std::vector<FactId>& cands = db.index().Candidates(rel, bound);
      EXPECT_NE(std::find(cands.begin(), cands.end(), id), cands.end());
      // And the candidate list never exceeds the smaller posting list.
      EXPECT_LE(cands.size(),
                std::min(db.index().FactsWith(rel, 0, f.args[0]).size(),
                         db.index().FactsWith(rel, 1, f.args[1]).size()));
    }
    // Unbound lookup degrades to the full relation list.
    EXPECT_EQ(&db.index().Candidates(rel, {}),
              &db.index().FactsOfRelation(rel));
  }
}

// ---------------------------------------------------------------------------
// Subset and equality.
// ---------------------------------------------------------------------------

TEST(DatabaseIndexTest, SubsetRebuildsAConsistentIndex) {
  GeneratedInstance inst = RandomInstance(11, 15, 8);
  const Database& db = inst.db;
  std::vector<FactId> keep;
  for (FactId id = 0; id < db.size(); id += 2) keep.push_back(id);
  Database sub = db.Subset(keep);
  ASSERT_EQ(sub.size(), keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    EXPECT_EQ(sub.fact(static_cast<FactId>(i)), db.fact(keep[i]));
    EXPECT_TRUE(sub.Contains(db.fact(keep[i])));
  }
  ExpectIndexMatchesScans(sub);
}

TEST(DatabaseEqualityTest, SetSemanticsIgnoreInsertionOrder) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database a(s);
  a.Add("R", {"x", "y"});
  a.Add("R", {"u", "v"});
  Database b(s);
  b.Add("R", {"u", "v"});
  b.Add("R", {"x", "y"});
  EXPECT_EQ(a, b);
  b.Add("R", {"w", "w"});
  EXPECT_NE(a, b);  // size fast path
  Database c(s);
  c.Add("R", {"x", "y"});
  c.Add("R", {"u", "w"});
  EXPECT_NE(a, c);  // same size, different facts
}

// ---------------------------------------------------------------------------
// Block-order stability against the legacy scan-based Compute.
// ---------------------------------------------------------------------------

TEST(BlockPartitionIndexTest, MatchesLegacyComputeOnRandomInstances) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    GeneratedInstance inst = RandomInstance(seed, 25, 10);
    BlockPartition parts = BlockPartition::Compute(inst.db, inst.keys);
    std::vector<Block> legacy = LegacyBlocks(inst.db, inst.keys);
    ASSERT_EQ(parts.block_count(), legacy.size());
    for (size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(parts.block(i).relation, legacy[i].relation) << "block " << i;
      EXPECT_EQ(parts.block(i).key_value, legacy[i].key_value) << "block "
                                                               << i;
      EXPECT_EQ(parts.block(i).facts, legacy[i].facts) << "block " << i;
    }
    // block_of_fact / blocks_of_relation stay consistent with the blocks.
    for (FactId id = 0; id < inst.db.size(); ++id) {
      const Block& b = parts.block(parts.BlockOf(id));
      EXPECT_NE(std::find(b.facts.begin(), b.facts.end(), id),
                b.facts.end());
    }
  }
}

// ---------------------------------------------------------------------------
// Index-backed evaluation agrees with brute-force enumeration.
// ---------------------------------------------------------------------------

TEST(IndexedEvaluationTest, CountsMatchBruteForceEnumeration) {
  GeneratedInstance inst = RandomInstance(23, 6, 5);
  const Database& db = inst.db;
  ConjunctiveQuery q = ChainQuery(3);  // Boolean, vars x0..x3

  QueryEvaluator eval(db, q);
  uint64_t indexed = eval.CountHomomorphisms({});

  // Brute force: every total assignment of the query variables to the
  // active domain, checked atom by atom via Database::Contains.
  const std::vector<Value>& dom = db.ActiveDomain();
  size_t vars = q.variable_count();
  uint64_t brute = 0;
  std::vector<size_t> pick(vars, 0);
  while (true) {
    bool ok = true;
    for (const QueryAtom& atom : q.atoms()) {
      std::vector<Value> args;
      for (const Term& t : atom.terms) {
        args.push_back(t.is_const() ? t.id : dom[pick[t.id]]);
      }
      RelationId dr = db.schema().Find(q.schema().name(atom.relation));
      if (dr == kInvalidRelation || !db.Contains(Fact(dr, args))) {
        ok = false;
        break;
      }
    }
    if (ok) ++brute;
    size_t i = 0;
    for (; i < vars; ++i) {
      if (++pick[i] < dom.size()) break;
      pick[i] = 0;
    }
    if (i == vars) break;
  }
  EXPECT_EQ(indexed, brute);
  EXPECT_EQ(eval.Entails({}), brute > 0);
}

}  // namespace
}  // namespace uocqa
