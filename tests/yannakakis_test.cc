#include <gtest/gtest.h>

#include "base/rng.h"
#include "hypertree/gyo.h"
#include "hypertree/yannakakis.h"
#include "query/eval.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace uocqa {
namespace {

TEST(YannakakisTest, ChainEntailment) {
  Schema s;
  s.AddRelationOrDie("R1", 2);
  s.AddRelationOrDie("R2", 2);
  Database db(s);
  db.Add("R1", {"a", "b"});
  db.Add("R2", {"b", "c"});
  db.Add("R1", {"x", "y"});
  ConjunctiveQuery q = *ParseQuery("Ans() :- R1(u,v), R2(v,w)");
  auto result = AcyclicEntails(db, q, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(*result);
  auto count = AcyclicCountHomomorphisms(db, q, {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->ToUint64(), 1u);  // only a-b-c joins
}

TEST(YannakakisTest, AnswerVariablePinning) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  s.AddRelationOrDie("W", 2);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"2", "a"});
  db.Add("W", {"a", "x"});
  db.Add("W", {"a", "y"});
  ConjunctiveQuery q = *ParseQuery("Ans(u) :- R(u,v), W(v,t)");
  auto c1 = AcyclicCountHomomorphisms(db, q, {ValuePool::Intern("1")});
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1->ToUint64(), 2u);  // W(a,x), W(a,y)
  auto c3 = AcyclicCountHomomorphisms(db, q, {ValuePool::Intern("3")});
  ASSERT_TRUE(c3.ok());
  EXPECT_TRUE(c3->IsZero());
}

TEST(YannakakisTest, RepeatedVariableInAtom) {
  Schema s;
  s.AddRelationOrDie("E", 2);
  Database db(s);
  db.Add("E", {"a", "a"});
  db.Add("E", {"a", "b"});
  ConjunctiveQuery q = *ParseQuery("Ans() :- E(x,x)");
  auto count = AcyclicCountHomomorphisms(db, q, {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->ToUint64(), 1u);  // only the self loop
}

TEST(YannakakisTest, RejectsCyclicQueries) {
  ConjunctiveQuery q = *ParseQuery("Ans() :- A(x,y), B(y,z), C(z,x)");
  Schema s = q.schema();
  Database db(s);
  EXPECT_FALSE(AcyclicEntails(db, q, {}).ok());
}

class YannakakisRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(YannakakisRandomTest, MatchesBacktrackingEvaluator) {
  Rng rng(GetParam() * 41 + 3);
  // Random acyclic query shape: chain or star of width 1.
  ConjunctiveQuery q = (GetParam() % 2 == 0)
                           ? ChainQuery(2 + rng.UniformIndex(3))
                           : StarQuery(2 + rng.UniformIndex(3));
  DbGenOptions gen;
  gen.blocks_per_relation = 3;
  gen.min_block_size = 1;
  gen.max_block_size = 2;
  gen.domain_size = 3;
  GeneratedInstance inst = GenerateDatabaseForQuery(rng, q, gen);

  QueryEvaluator brute(inst.db, q);
  auto fast = AcyclicCountHomomorphisms(inst.db, q, {});
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_EQ(fast->ToUint64(), brute.CountHomomorphisms({}))
      << "seed " << GetParam() << " query " << q.ToString();
  auto entails = AcyclicEntails(inst.db, q, {});
  ASSERT_TRUE(entails.ok());
  EXPECT_EQ(*entails, brute.Entails({}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, YannakakisRandomTest,
                         ::testing::Range(uint64_t{1}, uint64_t{17}));

}  // namespace
}  // namespace uocqa
