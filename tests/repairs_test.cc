#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "base/rng.h"
#include "db/blocks.h"
#include "query/eval.h"
#include "query/parser.h"
#include "repairs/counting.h"
#include "repairs/operations.h"
#include "repairs/sampling.h"

namespace uocqa {
namespace {

/// Example 1.1: Emp(1, Alice), Emp(1, Tom) with key(Emp) = {1}.
struct EmpInstance {
  Database db;
  KeySet keys;

  EmpInstance() {
    Schema s;
    s.AddRelationOrDie("Emp", 2);
    db = Database(s);
    db.Add("Emp", {"1", "Alice"});
    db.Add("Emp", {"1", "Tom"});
    keys.SetKeyOrDie(db.schema().Find("Emp"), {0});
  }
};

/// The 13-fact database from §5.1 / Example 5.4.
struct Paper51Instance {
  Database db;
  KeySet keys;

  Paper51Instance() {
    Schema s;
    s.AddRelationOrDie("P", 2);
    s.AddRelationOrDie("S", 2);
    s.AddRelationOrDie("T", 2);
    s.AddRelationOrDie("U", 2);
    db = Database(s);
    db.Add("P", {"a1", "b"});
    db.Add("P", {"a1", "c"});
    db.Add("P", {"a2", "b"});
    db.Add("P", {"a2", "c"});
    db.Add("P", {"a2", "d"});
    db.Add("S", {"c", "d"});
    db.Add("S", {"c", "e"});
    db.Add("T", {"d", "a1"});
    db.Add("U", {"c", "f"});
    db.Add("U", {"c", "g"});
    db.Add("U", {"h", "i"});
    db.Add("U", {"h", "j"});
    db.Add("U", {"h", "k"});
    for (const char* r : {"P", "S", "T", "U"}) {
      keys.SetKeyOrDie(db.schema().Find(r), {0});
    }
  }
};

// --- operations --------------------------------------------------------------

TEST(OperationsTest, Example11SequencesAndRepairs) {
  EmpInstance inst;
  auto seqs = EnumerateCompleteSequences(inst.db, inst.keys);
  // Exactly three complete sequences: -{Alice}, -{Tom}, -{Alice,Tom}.
  EXPECT_EQ(seqs.size(), 3u);
  std::set<std::vector<FactId>> results;
  for (const auto& s : seqs) {
    EXPECT_EQ(s.size(), 1u);
    auto check = CheckSequence(inst.db, inst.keys, s);
    EXPECT_TRUE(check.repairing);
    EXPECT_TRUE(check.complete);
    results.insert(ApplySequence(inst.db, s));
  }
  // Three distinct repairs: {Alice}, {Tom}, {} (Example 1.1).
  EXPECT_EQ(results.size(), 3u);
  EXPECT_TRUE(results.count({0}) == 1);
  EXPECT_TRUE(results.count({1}) == 1);
  EXPECT_TRUE(results.count({}) == 1);
}

TEST(OperationsTest, UnjustifiedOperationsRejected) {
  EmpInstance inst;
  // Removing Alice twice: the second removal is unjustified (absent fact).
  RepairingSequence bad = {Operation::Single(0), Operation::Single(0)};
  EXPECT_FALSE(CheckSequence(inst.db, inst.keys, bad).repairing);
  // After removing Alice, Tom is alone in his block: -{Tom} unjustified.
  RepairingSequence bad2 = {Operation::Single(0), Operation::Single(1)};
  EXPECT_FALSE(CheckSequence(inst.db, inst.keys, bad2).repairing);
  // Incomplete (empty) sequence on an inconsistent database.
  auto check = CheckSequence(inst.db, inst.keys, {});
  EXPECT_TRUE(check.repairing);
  EXPECT_FALSE(check.complete);
}

TEST(OperationsTest, ConsistentDatabaseHasOnlyEmptySequence) {
  Schema s;
  s.AddRelationOrDie("R", 1);
  Database db(s);
  db.Add("R", {"a"});
  KeySet keys;
  keys.SetKeyOrDie(db.schema().Find("R"), {0});
  auto seqs = EnumerateCompleteSequences(db, keys);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_TRUE(seqs[0].empty());
}

TEST(OperationsTest, JustifiedOperationsOfMixedBlocks) {
  Paper51Instance inst;
  std::vector<bool> present(inst.db.size(), true);
  auto ops = JustifiedOperations(inst.db, inst.keys, present);
  // Per block of size n: n singles + C(n,2) pairs.
  // sizes (2,3,2,1,2,3): singles 2+3+2+0+2+3=12, pairs 1+3+1+0+1+3=9.
  EXPECT_EQ(ops.size(), 21u);
}

// --- per-block polynomials ---------------------------------------------------

TEST(CountingTest, BlockPolySmallValues) {
  // n=2: one length-1 triple of sequences: 2 singles + 1 pair = 3.
  LenPoly t2 = BlockTotalPoly(2);
  ASSERT_EQ(t2.size(), 2u);
  EXPECT_EQ(t2[0].ToUint64(), 0u);
  EXPECT_EQ(t2[1].ToUint64(), 3u);
  // n=3: length 1: 3 pairs (leaving one fact); length 2: 3 singles * 3.
  LenPoly t3 = BlockTotalPoly(3);
  ASSERT_EQ(t3.size(), 3u);
  EXPECT_EQ(t3[1].ToUint64(), 3u);
  EXPECT_EQ(t3[2].ToUint64(), 9u);
}

TEST(CountingTest, TotalEqualsKeepOnePlusKeepNone) {
  // cnt[n] == n * K[n-1] + E[n] as length polynomials (outcome split).
  for (size_t n = 1; n <= 9; ++n) {
    LenPoly total = BlockTotalPoly(n);
    LenPoly keep_one = BlockKeepOnePoly(n - 1);
    LenPoly keep_none = BlockKeepNonePoly(n);
    size_t len = std::max(total.size(),
                          std::max(keep_one.size(), keep_none.size()));
    for (size_t l = 0; l < len; ++l) {
      auto at = [l](const LenPoly& p) {
        return l < p.size() ? p[l] : BigInt();
      };
      EXPECT_EQ(at(total), at(keep_one) * static_cast<uint64_t>(n) +
                               at(keep_none))
          << "n=" << n << " l=" << l;
    }
  }
}

TEST(CountingTest, KeepNoneRequiresFinalPair) {
  // E[1] must be identically zero: a lone fact can never be deleted.
  EXPECT_TRUE(PolySum(BlockKeepNonePoly(1)).IsZero());
  // E[2] = exactly the single pair deletion.
  LenPoly e2 = BlockKeepNonePoly(2);
  EXPECT_EQ(PolySum(e2).ToUint64(), 1u);
  EXPECT_EQ(e2[1].ToUint64(), 1u);
  // E[3]: single then pair, 3 ways, length 2.
  LenPoly e3 = BlockKeepNonePoly(3);
  EXPECT_EQ(PolySum(e3).ToUint64(), 3u);
  EXPECT_EQ(e3[2].ToUint64(), 3u);
}

TEST(CountingTest, KeepOneMatchesExample54Blocks) {
  // Block U(h,*) of size 3, keep U(h,i): length 1 (one pair) or length 2
  // (two singles, 2 orders).
  LenPoly k2 = BlockKeepOnePoly(2);
  ASSERT_GE(k2.size(), 3u);
  EXPECT_EQ(k2[1].ToUint64(), 1u);
  EXPECT_EQ(k2[2].ToUint64(), 2u);
}

TEST(CountingTest, InterleaveBinomialWeights) {
  // Two blocks with single sequences of lengths 1 and 2: C(3,1)=3 merges.
  LenPoly a{BigInt(), BigInt(1)};
  LenPoly b{BigInt(), BigInt(), BigInt(1)};
  LenPoly c = InterleavePolys(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[3].ToUint64(), 3u);
  EXPECT_EQ(PolySum(c).ToUint64(), 3u);
}

// --- denominators ------------------------------------------------------------

TEST(CountingTest, RepairCountExample11) {
  EmpInstance inst;
  BlockPartition blocks = BlockPartition::Compute(inst.db, inst.keys);
  EXPECT_EQ(CountOperationalRepairs(blocks).ToUint64(), 3u);
  EXPECT_EQ(CountCompleteSequencesExact(blocks).ToUint64(), 3u);
}

TEST(CountingTest, RepairCountPaper51) {
  Paper51Instance inst;
  BlockPartition blocks = BlockPartition::Compute(inst.db, inst.keys);
  // Block sizes 2,3,2,1,2,3 -> (3)(4)(3)(1)(3)(4) = 432 repairs.
  EXPECT_EQ(CountOperationalRepairs(blocks).ToUint64(), 432u);
}

TEST(CountingTest, SequenceCountMatchesEnumerationTwoBlocks) {
  // Blocks of sizes 2 and 2: per-block 3 sequences of length 1 each;
  // interleavings C(2,1)=2 -> 3*3*2 = 18 complete sequences.
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"1", "b"});
  db.Add("R", {"2", "a"});
  db.Add("R", {"2", "b"});
  KeySet keys;
  keys.SetKeyOrDie(db.schema().Find("R"), {0});
  BlockPartition blocks = BlockPartition::Compute(db, keys);
  BigInt counted = CountCompleteSequencesExact(blocks);
  EXPECT_EQ(counted.ToUint64(), 18u);
  auto seqs = EnumerateCompleteSequences(db, keys);
  EXPECT_EQ(seqs.size(), 18u);
}

TEST(CountingTest, SequenceCountMatchesEnumerationSize3Block) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"1", "b"});
  db.Add("R", {"1", "c"});
  db.Add("R", {"2", "x"});
  db.Add("R", {"2", "y"});
  KeySet keys;
  keys.SetKeyOrDie(db.schema().Find("R"), {0});
  BigInt counted =
      CountCompleteSequencesExact(BlockPartition::Compute(db, keys));
  auto seqs = EnumerateCompleteSequences(db, keys);
  EXPECT_EQ(counted.ToUint64(), seqs.size());
  // All enumerated sequences are distinct and complete.
  std::set<RepairingSequence> uniq(seqs.begin(), seqs.end());
  EXPECT_EQ(uniq.size(), seqs.size());
}

// --- Example 5.4 golden value ------------------------------------------------

TEST(CountingTest, Example54SequenceCountIs8640) {
  Paper51Instance inst;
  BlockPartition blocks = BlockPartition::Compute(inst.db, inst.keys);
  ASSERT_EQ(blocks.block_count(), 6u);
  // D' = {P(a1,c), S(c,d), T(d,a1), U(c,f), U(h,i)}: block outcomes are
  // keep P(a1,c); empty P(a2,*); keep S(c,d); keep T(d,a1); keep U(c,f);
  // keep U(h,i).
  auto find = [&](const char* rel, const char* a, const char* b) {
    return inst.db.Find(MakeFact(inst.db.schema(), rel, {a, b}));
  };
  std::vector<BlockOutcome> outcomes(6);
  outcomes[0] = find("P", "a1", "c");
  outcomes[1] = std::nullopt;
  outcomes[2] = find("S", "c", "d");
  outcomes[3] = find("T", "d", "a1");
  outcomes[4] = find("U", "c", "f");
  outcomes[5] = find("U", "h", "i");
  // The paper computes s1 + s2 = 7560 + 1080 = 8640 (Example 5.4).
  EXPECT_EQ(CountSequencesForOutcome(blocks, outcomes).ToUint64(), 8640u);
}

TEST(CountingTest, OutcomeCountsSumToTotal) {
  // Summing CountSequencesForOutcome over all outcome vectors must equal
  // |CRS| (every complete sequence has exactly one outcome).
  Paper51Instance inst;
  BlockPartition blocks = BlockPartition::Compute(inst.db, inst.keys);
  BigInt sum;
  ForEachRepair(blocks, [&](const std::vector<BlockOutcome>& outcomes,
                            const std::vector<FactId>&) {
    sum += CountSequencesForOutcome(blocks, outcomes);
    return true;
  });
  EXPECT_EQ(sum, CountCompleteSequencesExact(blocks));
}

// --- numerators and RF -------------------------------------------------------

TEST(CountingTest, ExactRFExample11) {
  EmpInstance inst;
  auto q = ParseQuery("Ans() :- Emp(x,y)");
  ASSERT_TRUE(q.ok());
  ExactRF ur = ExactRepairFrequency(inst.db, inst.keys, *q, {});
  EXPECT_EQ(ur.numerator.ToUint64(), 2u);
  EXPECT_EQ(ur.denominator.ToUint64(), 3u);
  EXPECT_NEAR(ur.value(), 2.0 / 3.0, 1e-12);
  ExactRF us = ExactSequenceFrequency(inst.db, inst.keys, *q, {});
  EXPECT_EQ(us.numerator.ToUint64(), 2u);
  EXPECT_EQ(us.denominator.ToUint64(), 3u);
  EXPECT_TRUE(ur == us);
}

TEST(CountingTest, ExactRFWithAnswerTuple) {
  EmpInstance inst;
  auto q = ParseQuery("Ans(y) :- Emp(x,y)");
  ASSERT_TRUE(q.ok());
  ExactRF rf =
      ExactRepairFrequency(inst.db, inst.keys, *q, {ValuePool::Intern("Alice")});
  // Only the repair {Emp(1,Alice)} entails Ans(Alice): 1/3.
  EXPECT_EQ(rf.numerator.ToUint64(), 1u);
  EXPECT_EQ(rf.denominator.ToUint64(), 3u);
}

TEST(CountingTest, SequenceNumeratorMatchesSequenceEnumeration) {
  // Cross-validate CountSequencesEntailing against raw sequence enumeration.
  Schema s;
  s.AddRelationOrDie("R", 2);
  s.AddRelationOrDie("W", 1);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"1", "b"});
  db.Add("R", {"2", "a"});
  db.Add("R", {"2", "c"});
  db.Add("W", {"a"});
  KeySet keys;
  keys.SetKeyOrDie(db.schema().Find("R"), {0});
  keys.SetKeyOrDie(db.schema().Find("W"), {0});
  auto q = ParseQuery("Ans() :- R(x,y), W(y)");
  ASSERT_TRUE(q.ok());
  BigInt dp = CountSequencesEntailing(db, keys, *q, {});
  size_t brute = 0;
  for (const auto& seq : EnumerateCompleteSequences(db, keys)) {
    Database result = db.Subset(ApplySequence(db, seq));
    if (Entails(result, *q)) ++brute;
  }
  EXPECT_EQ(dp.ToUint64(), brute);
  EXPECT_GT(brute, 0u);
}

TEST(CountingTest, RepairNumeratorMatchesRepairEnumeration) {
  Paper51Instance inst;
  auto q = ParseQuery("Ans() :- P(x,y), S(y,z), T(z,x), U(y,w)");
  ASSERT_TRUE(q.ok());
  BigInt n = CountRepairsEntailing(inst.db, inst.keys, *q, {});
  // Independent brute force via ForEachRepair + Entails.
  BlockPartition blocks = BlockPartition::Compute(inst.db, inst.keys);
  size_t brute = 0;
  ForEachRepair(blocks, [&](const std::vector<BlockOutcome>&,
                            const std::vector<FactId>& kept) {
    if (Entails(inst.db.Subset(kept), *q)) ++brute;
    return true;
  });
  EXPECT_EQ(n.ToUint64(), brute);
  EXPECT_GT(brute, 0u);   // D' from the paper is one witness
  EXPECT_LT(brute, 432u);
}

// --- samplers ----------------------------------------------------------------

TEST(SamplingTest, UniformBigIntInRange) {
  Rng rng(11);
  BigInt bound = BigInt::FromDecimalString("1000000000000000000000000");
  for (int i = 0; i < 200; ++i) {
    BigInt v = UniformBigInt(rng, bound);
    EXPECT_LT(v, bound);
  }
  // Small bound sanity: all residues hit.
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(UniformBigInt(rng, BigInt(5)).ToUint64());
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(SamplingTest, RepairSamplerIsUniform) {
  EmpInstance inst;
  UniformRepairSampler sampler(inst.db, inst.keys);
  Rng rng(42);
  std::map<std::vector<FactId>, int> counts;
  const int kTrials = 30000;
  for (int i = 0; i < kTrials; ++i) counts[sampler.Sample(rng)]++;
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [repair, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 1.0 / 3.0, 0.02);
  }
}

TEST(SamplingTest, SequenceSamplerMatchesEnumeration) {
  // Blocks of sizes 2 and 3: enumeration gives the exact distribution
  // support; the sampler must be uniform over it.
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"1", "b"});
  db.Add("R", {"2", "x"});
  db.Add("R", {"2", "y"});
  db.Add("R", {"2", "z"});
  KeySet keys;
  keys.SetKeyOrDie(db.schema().Find("R"), {0});
  auto all = EnumerateCompleteSequences(db, keys);
  std::set<RepairingSequence> support(all.begin(), all.end());
  UniformSequenceSampler sampler(db, keys);
  EXPECT_EQ(sampler.total_count().ToUint64(), all.size());

  Rng rng(7);
  std::map<RepairingSequence, int> counts;
  const int kTrials = 60000;
  for (int i = 0; i < kTrials; ++i) {
    RepairingSequence seq = sampler.Sample(rng);
    auto check = CheckSequence(db, keys, seq);
    ASSERT_TRUE(check.repairing);
    ASSERT_TRUE(check.complete);
    ASSERT_TRUE(support.count(seq) == 1);
    counts[seq]++;
  }
  // Every sequence hit, frequencies near uniform.
  EXPECT_EQ(counts.size(), all.size());
  double expected = static_cast<double>(kTrials) / all.size();
  for (const auto& [seq, c] : counts) {
    EXPECT_NEAR(c / expected, 1.0, 0.25) << SequenceToString(db, seq);
  }
}

TEST(SamplingTest, SequenceSamplerHandlesConsistentDatabase) {
  Schema s;
  s.AddRelationOrDie("R", 1);
  Database db(s);
  db.Add("R", {"a"});
  KeySet keys;
  keys.SetKeyOrDie(db.schema().Find("R"), {0});
  UniformSequenceSampler sampler(db, keys);
  EXPECT_EQ(sampler.total_count().ToUint64(), 1u);
  Rng rng(3);
  EXPECT_TRUE(sampler.Sample(rng).empty());
}

}  // namespace
}  // namespace uocqa
