#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "db/textio.h"
#include "query/parser.h"
#include "service/canonical.h"
#include "service/lru_cache.h"
#include "service/request.h"
#include "service/service.h"
#include "workload/generators.h"

namespace uocqa {
namespace {

constexpr const char* kInstance = R"(
key Emp = 1
Emp(e1, hw)
Emp(e1, sw)
Emp(e2, hw)
key Dept = 1
Dept(hw, alice)
Dept(hw, bob)
Dept(sw, carol)
)";

ParsedInstance LoadInstance() {
  auto inst = ParseInstanceText(kInstance);
  EXPECT_TRUE(inst.ok());
  return *std::move(inst);
}

Request MakeRequest(const std::string& query, const std::string& answer,
                    RequestMode mode) {
  Request out;
  out.query_text = query;
  out.answer_text = answer;
  out.mode = mode;
  out.epsilon = 0.5;
  out.delta = 0.2;
  out.samples = 500;
  out.seed = 7;
  return out;
}

// --- canonicalization ------------------------------------------------------

TEST(CanonicalTest, RenamedVariablesShareCanonicalText) {
  auto q1 = ParseQuery("Ans(x) :- Emp(x, y), Dept(y, z)");
  auto q2 = ParseQuery("Ans(alpha) :- Emp(alpha, beta), Dept(beta, gamma)");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(CanonicalQueryText(*q1), CanonicalQueryText(*q2));
  EXPECT_EQ(CanonicalQueryText(*q1), "Ans(?0):-Emp(?0,?1),Dept(?1,?2)");
}

TEST(CanonicalTest, StructurallyDifferentQueriesDiffer) {
  auto join = ParseQuery("Ans() :- R(x, y), S(y, z)");
  auto cross = ParseQuery("Ans() :- R(x, y), S(w, z)");
  auto constant = ParseQuery("Ans() :- R(x, 'c'), S(x, z)");
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(cross.ok());
  ASSERT_TRUE(constant.ok());
  EXPECT_NE(CanonicalQueryText(*join), CanonicalQueryText(*cross));
  EXPECT_NE(CanonicalQueryText(*join), CanonicalQueryText(*constant));
}

TEST(CanonicalTest, InstanceFingerprintTracksContent) {
  ParsedInstance a = LoadInstance();
  ParsedInstance b = LoadInstance();
  EXPECT_EQ(InstanceFingerprint(a.db, a.keys),
            InstanceFingerprint(b.db, b.keys));
  b.db.Add("Emp", {"e3", "hw"});
  EXPECT_NE(InstanceFingerprint(a.db, a.keys),
            InstanceFingerprint(b.db, b.keys));
}

// --- the LRU cache ---------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(2);
  cache.Put(1, "a");
  cache.Put(2, "b");
  EXPECT_TRUE(cache.Get(1).has_value());  // 1 is now most recent
  cache.Put(3, "c");                      // evicts 2, not 1
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
  cache.Put(4, "d");  // evicts 1 (3 was touched more recently via Put)
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(LruCacheTest, ZeroCapacityDisables) {
  LruCache<int, int> cache(0);
  cache.Put(1, 10);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

// --- request protocol ------------------------------------------------------

TEST(RequestTest, RoundTripsThroughProtocolLine) {
  Request r = MakeRequest("Ans(x) :- Emp(x, y)", "e1", RequestMode::kFpras);
  auto parsed = ParseRequestLine(FormatRequestLine(r));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->query_text, r.query_text);
  EXPECT_EQ(parsed->answer_text, r.answer_text);
  EXPECT_EQ(parsed->mode, r.mode);
  EXPECT_EQ(parsed->epsilon, r.epsilon);
  EXPECT_EQ(parsed->delta, r.delta);
  EXPECT_EQ(parsed->samples, r.samples);
  EXPECT_EQ(parsed->seed, r.seed);
}

TEST(RequestTest, DoubledQuotesCarryStringConstants) {
  // `''` inside a quoted value is a literal quote, so queries with string
  // constants survive the protocol.
  auto parsed =
      ParseRequestLine("query='Ans(x) :- Emp(x, ''h w'')' mode=exact");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->query_text, "Ans(x) :- Emp(x, 'h w')");

  Request r = MakeRequest("Ans() :- Emp(x, 'h w'), Dept('h w', z)", "",
                          RequestMode::kExact);
  auto round = ParseRequestLine(FormatRequestLine(r));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->query_text, r.query_text);
}

TEST(RequestTest, RejectsInvalidAccuracyAndShape) {
  EXPECT_FALSE(ParseRequestLine("query='Ans() :- R(x)' epsilon=0").ok());
  EXPECT_FALSE(ParseRequestLine("query='Ans() :- R(x)' epsilon=-1").ok());
  EXPECT_FALSE(ParseRequestLine("query='Ans() :- R(x)' epsilon=nan").ok());
  EXPECT_FALSE(ParseRequestLine("query='Ans() :- R(x)' delta=1.5").ok());
  EXPECT_FALSE(ParseRequestLine("query='Ans() :- R(x)' samples=0").ok());
  EXPECT_FALSE(ParseRequestLine("mode=mc").ok());  // missing query
  EXPECT_FALSE(ParseRequestLine("query='Ans() :- R(x)' mode=bogus").ok());
  EXPECT_FALSE(ParseRequestLine("query='Ans() :- R(x)' nonsense").ok());
  EXPECT_FALSE(ParseRequestLine("query='unterminated").ok());
  EXPECT_TRUE(ParseRequestLine("query='Ans() :- R(x)'").ok());
}

TEST(RequestTest, StatsVerbAndExplainFlagParse) {
  auto stats = ParseRequestLine("stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->verb, RequestVerb::kStats);
  EXPECT_EQ(FormatRequestLine(*stats), "stats");

  // stats takes no other fields; a stray bare token is still an error.
  EXPECT_FALSE(ParseRequestLine("stats mode=exact").ok());

  auto on = ParseRequestLine("query='Ans() :- R(x)' explain=1");
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_TRUE(on->explain);
  auto off = ParseRequestLine("query='Ans() :- R(x)' explain=0");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->explain);
  EXPECT_FALSE(ParseRequestLine("query='Ans() :- R(x)' explain=yes").ok());

  // explain survives the round trip; off is the default and stays implicit.
  auto round = ParseRequestLine(FormatRequestLine(*on));
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->explain);
  EXPECT_EQ(FormatRequestLine(*off).find("explain"), std::string::npos);
}

TEST(RequestTest, SeedSchemaParsesAndRoundTrips) {
  // Default is the batched schema (2), kept implicit in the wire format.
  auto plain = ParseRequestLine("query='Ans() :- R(x)'");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->seed_schema, 2);
  EXPECT_EQ(FormatRequestLine(*plain).find("seed_schema"),
            std::string::npos);

  auto legacy = ParseRequestLine("query='Ans() :- R(x)' seed_schema=1");
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy->seed_schema, 1);
  auto round = ParseRequestLine(FormatRequestLine(*legacy));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->seed_schema, 1);

  EXPECT_FALSE(ParseRequestLine("query='Ans() :- R(x)' seed_schema=0").ok());
  EXPECT_FALSE(ParseRequestLine("query='Ans() :- R(x)' seed_schema=3").ok());
  EXPECT_FALSE(
      ParseRequestLine("query='Ans() :- R(x)' seed_schema=latest").ok());
}

TEST(LruCacheTest, ForEachVisitsMostRecentFirst) {
  LruCache<int, std::string> cache(3);
  cache.Put(1, "a");
  cache.Put(2, "b");
  cache.Put(3, "c");
  EXPECT_TRUE(cache.Get(1).has_value());  // 1 becomes most recent
  std::vector<int> keys;
  cache.ForEach([&keys](int k, const std::string&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 2}));
}

// --- cached vs. uncached bit-identity --------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : inst_(LoadInstance()) {}

  ServiceOptions CachesOff() {
    ServiceOptions options;
    options.plan_cache_capacity = 0;
    options.result_cache_capacity = 0;
    return options;
  }

  ParsedInstance inst_;
};

TEST_F(ServiceTest, CachedResultsBitIdenticalAcrossModes) {
  QueryService cached(inst_.db, inst_.keys);
  QueryService uncached(inst_.db, inst_.keys, CachesOff());
  for (RequestMode mode : {RequestMode::kExact, RequestMode::kFpras,
                           RequestMode::kMc, RequestMode::kAll}) {
    Request r =
        MakeRequest("Ans(x) :- Emp(x, y), Dept(y, z)", "e1", mode);
    ServiceResponse first = cached.Execute(r);
    ServiceResponse replay = cached.Execute(r);
    ServiceResponse fresh = uncached.Execute(r);
    ASSERT_TRUE(first.status.ok()) << first.status.ToString();
    EXPECT_FALSE(first.cache_hit);
    EXPECT_TRUE(replay.cache_hit) << RequestModeName(mode);
    // Byte-identical replay, and byte-identical to the cache-free pipeline.
    EXPECT_EQ(first.payload, replay.payload);
    EXPECT_EQ(first.payload, fresh.payload);
    EXPECT_FALSE(first.payload.empty());
  }
}

TEST_F(ServiceTest, RenamedQuerySharesPlanAndResults) {
  QueryService cached(inst_.db, inst_.keys);
  QueryService uncached(inst_.db, inst_.keys, CachesOff());
  Request original = MakeRequest("Ans(x) :- Emp(x, y), Dept(y, z)", "e1",
                                 RequestMode::kFpras);
  Request renamed = MakeRequest("Ans(a) :- Emp(a, b), Dept(b, c)", "e1",
                                RequestMode::kFpras);
  ServiceResponse first = cached.Execute(original);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(cached.stats().plan_misses, 1u);

  // The renamed query is the same plan *and* the same result key.
  ServiceResponse replay = cached.Execute(renamed);
  EXPECT_TRUE(replay.cache_hit);
  EXPECT_EQ(first.payload, replay.payload);

  // A different answer tuple reuses the compiled plan (no new plan miss)
  // and still matches the cache-free pipeline byte for byte.
  Request other_answer = MakeRequest("Ans(a) :- Emp(a, b), Dept(b, c)", "e2",
                                     RequestMode::kFpras);
  ServiceResponse computed = cached.Execute(other_answer);
  ASSERT_TRUE(computed.status.ok());
  EXPECT_FALSE(computed.cache_hit);
  ServiceStats stats = cached.stats();
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_GE(stats.plan_hits, 1u);
  EXPECT_EQ(computed.payload, uncached.Execute(other_answer).payload);
}

TEST_F(ServiceTest, SeedSchemasUseDistinctCacheEntries) {
  // The two RNG-consumption schemas produce different (equally valid)
  // FPRAS estimates at the same seed, so they must not share result-cache
  // entries — and each must replay byte-identically.
  QueryService cached(inst_.db, inst_.keys);
  QueryService uncached(inst_.db, inst_.keys, CachesOff());
  Request v2 = MakeRequest("Ans(x) :- Emp(x, y), Dept(y, z)", "e1",
                           RequestMode::kFpras);
  Request v1 = v2;
  v1.seed_schema = 1;

  ServiceResponse first_v2 = cached.Execute(v2);
  ASSERT_TRUE(first_v2.status.ok()) << first_v2.status.ToString();
  EXPECT_FALSE(first_v2.cache_hit);

  // Schema 1 with otherwise identical fields is a cache miss, not a hit.
  ServiceResponse first_v1 = cached.Execute(v1);
  ASSERT_TRUE(first_v1.status.ok()) << first_v1.status.ToString();
  EXPECT_FALSE(first_v1.cache_hit);

  // Each schema replays its own payload and matches the cache-free run.
  ServiceResponse replay_v2 = cached.Execute(v2);
  ServiceResponse replay_v1 = cached.Execute(v1);
  EXPECT_TRUE(replay_v2.cache_hit);
  EXPECT_TRUE(replay_v1.cache_hit);
  EXPECT_EQ(first_v2.payload, replay_v2.payload);
  EXPECT_EQ(first_v1.payload, replay_v1.payload);
  EXPECT_EQ(first_v2.payload, uncached.Execute(v2).payload);
  EXPECT_EQ(first_v1.payload, uncached.Execute(v1).payload);
}

TEST_F(ServiceTest, ResultCacheEvictsInLruOrder) {
  ServiceOptions options;
  options.result_cache_capacity = 2;
  QueryService service(inst_.db, inst_.keys, options);
  Request a = MakeRequest("Ans(x) :- Emp(x, y)", "e1", RequestMode::kExact);
  Request b = MakeRequest("Ans(x) :- Emp(x, y)", "e2", RequestMode::kExact);
  Request c = MakeRequest("Ans(x) :- Dept(x, y)", "hw", RequestMode::kExact);
  service.Execute(a);
  service.Execute(b);
  EXPECT_TRUE(service.Execute(a).cache_hit);  // refresh a
  service.Execute(c);                         // evicts b (LRU), not a
  EXPECT_EQ(service.stats().result_evictions, 1u);
  EXPECT_TRUE(service.Execute(a).cache_hit);
  EXPECT_TRUE(service.Execute(c).cache_hit);
  EXPECT_FALSE(service.Execute(b).cache_hit);  // recomputed; evicts a
  EXPECT_EQ(service.stats().result_evictions, 2u);
  EXPECT_FALSE(service.Execute(a).cache_hit);
  EXPECT_TRUE(service.Execute(b).cache_hit);
}

TEST_F(ServiceTest, BatchOutputIndependentOfLaneCount) {
  std::vector<Request> requests;
  for (const char* answer : {"e1", "e2", "e1", "e2"}) {
    requests.push_back(MakeRequest("Ans(x) :- Emp(x, y), Dept(y, z)", answer,
                                   RequestMode::kAll));
    requests.push_back(
        MakeRequest("Ans(a) :- Emp(a, b), Dept(b, c)", answer,
                    RequestMode::kMc));
    requests.push_back(MakeRequest("Ans(x) :- Emp(x, y)", answer,
                                   RequestMode::kExact));
  }
  // A self-join: fpras reports an in-payload error, identically per lane.
  requests.push_back(
      MakeRequest("Ans() :- Emp(x, y), Emp(y, z)", "", RequestMode::kFpras));
  // Fresh, identically configured services per lane count: the response
  // vector must be bit-identical at every parallelism level.
  QueryService serial(inst_.db, inst_.keys);
  std::vector<ServiceResponse> base = serial.ExecuteBatch(requests, 1);
  ASSERT_EQ(base.size(), requests.size());
  for (size_t lanes : {2u, 8u}) {
    QueryService parallel(inst_.db, inst_.keys);
    std::vector<ServiceResponse> got = parallel.ExecuteBatch(requests, lanes);
    ASSERT_EQ(got.size(), base.size());
    for (size_t i = 0; i < base.size(); ++i) {
      // Payloads are bit-identical; only the hit/miss marker may differ
      // (a duplicate request can race its twin's cache fill).
      EXPECT_EQ(got[i].payload, base[i].payload) << "lane count " << lanes
                                                 << ", request " << i;
      EXPECT_EQ(got[i].status.ok(), base[i].status.ok());
    }
  }
}

TEST_F(ServiceTest, ExecuteBatchLinesReportsPerLineErrors) {
  QueryService service(inst_.db, inst_.keys);
  std::vector<std::string> lines = {
      "query='Ans(x) :- Emp(x, y)' answer=e1 mode=exact",
      "query='Ans(x) :- Emp(x, y)' answer=e1,extra mode=exact",  // arity
      "epsilon=0.5",                                             // no query
      "query='Ans(x) :- Emp(x, y)' answer=e2 mode=exact",
  };
  std::vector<ServiceResponse> responses = service.ExecuteBatchLines(lines, 1);
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_FALSE(responses[1].status.ok());
  EXPECT_FALSE(responses[2].status.ok());
  EXPECT_TRUE(responses[3].status.ok());
  EXPECT_EQ(FormatResponseLine(1, responses[0]).substr(0, 9), "1 ok miss");
  EXPECT_EQ(FormatResponseLine(3, responses[2]).substr(0, 7), "3 error");
}

TEST_F(ServiceTest, ExplainAppendsDeterministicPlanFields) {
  QueryService cached(inst_.db, inst_.keys);
  QueryService uncached(inst_.db, inst_.keys, CachesOff());
  Request plain = MakeRequest("Ans(x) :- Emp(x, y), Dept(y, z)", "e1",
                              RequestMode::kExact);
  Request explained = plain;
  explained.explain = true;

  ServiceResponse base = cached.Execute(plain);
  ServiceResponse first = cached.Execute(explained);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  // The explain payload is the plain payload plus the plan_* fields.
  EXPECT_EQ(first.payload.substr(0, base.payload.size()), base.payload);
  for (const char* field : {"plan_order=", "plan_cost=", "plan_exact=",
                            "plan_width=", "plan_bags=", "plan_candidates="}) {
    EXPECT_NE(first.payload.find(field), std::string::npos) << field;
  }
  // No timing in the payload: explain results replay byte-identically and
  // match the cache-free pipeline, like every other mode.
  EXPECT_EQ(first.payload.find("planning_us"), std::string::npos);
  ServiceResponse replay = cached.Execute(explained);
  EXPECT_TRUE(replay.cache_hit);
  EXPECT_EQ(first.payload, replay.payload);
  EXPECT_EQ(first.payload, uncached.Execute(explained).payload);
  // Explain and plain responses live under distinct result-cache keys.
  EXPECT_TRUE(cached.Execute(plain).cache_hit);
  EXPECT_NE(base.payload, first.payload);
}

TEST_F(ServiceTest, StatsVerbReportsCountersAndCachedPlans) {
  QueryService service(inst_.db, inst_.keys);
  Request query = MakeRequest("Ans(x) :- Emp(x, y), Dept(y, z)", "e1",
                              RequestMode::kFpras);
  ASSERT_TRUE(service.Execute(query).status.ok());

  Request stats;
  stats.verb = RequestVerb::kStats;
  ServiceResponse response = service.Execute(stats);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.cache_hit);
  EXPECT_NE(response.payload.find("requests=1"), std::string::npos)
      << response.payload;
  EXPECT_NE(response.payload.find("plan_misses=1"), std::string::npos);
  EXPECT_NE(response.payload.find("plans_cached=1"), std::string::npos);
  EXPECT_NE(response.payload.find("plan='Ans(?0):-Emp(?0,?1),Dept(?1,?2)'"),
            std::string::npos)
      << response.payload;
  EXPECT_NE(response.payload.find("planning_us="), std::string::npos);

  // Stats requests are introspection: not counted, not cached — the verb
  // round-trips through the line protocol and always recomputes.
  std::vector<ServiceResponse> again =
      service.ExecuteBatchLines({"stats"}, 1);
  ASSERT_EQ(again.size(), 1u);
  ASSERT_TRUE(again[0].status.ok());
  EXPECT_FALSE(again[0].cache_hit);
  EXPECT_NE(again[0].payload.find("requests=1"), std::string::npos)
      << again[0].payload;
  EXPECT_EQ(service.stats().requests, 1u);
}

TEST_F(ServiceTest, SelfJoinFailsFprasButServesExactAndMc) {
  QueryService service(inst_.db, inst_.keys);
  Request r = MakeRequest("Ans() :- Emp(x, y), Emp(x, z)", "",
                          RequestMode::kAll);
  ServiceResponse response = service.Execute(r);
  ASSERT_TRUE(response.status.ok());
  EXPECT_NE(response.payload.find("exact_ur="), std::string::npos);
  EXPECT_NE(response.payload.find("fpras_error="), std::string::npos);
  EXPECT_NE(response.payload.find("mc_ur="), std::string::npos);
}

}  // namespace
}  // namespace uocqa
