// Differential tests for the SIMD kernel layer: every backend available on
// the host must be bit-identical to the scalar reference on every kernel,
// across randomized inputs covering set widths 1..20 words (including
// non-multiple-of-stride tails) and randomized group probes.

#include "base/simd_kernels.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "gtest/gtest.h"

namespace uocqa {
namespace {

using simd::Backend;
using simd::GroupProbe;
using simd::Kernels;

std::vector<uint64_t> RandomWords(Rng& rng, size_t n, int density_percent) {
  std::vector<uint64_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t w = 0;
    for (int b = 0; b < 64; ++b) {
      if (rng.NextU64() % 100 < static_cast<uint64_t>(density_percent)) {
        w |= uint64_t{1} << b;
      }
    }
    out[i] = w;
  }
  return out;
}

TEST(SimdKernelsTest, ScalarBackendAlwaysAvailable) {
  auto backends = simd::AvailableBackends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front()->backend, Backend::kScalar);
  EXPECT_STREQ(backends.front()->name, "scalar");
  // Active() is one of the available backends.
  const Kernels& active = simd::Active();
  bool found = false;
  for (const Kernels* k : backends) {
    if (k == &active) found = true;
  }
  EXPECT_TRUE(found) << "Active() backend " << active.name
                     << " not in AvailableBackends()";
}

TEST(SimdKernelsTest, ForBackendMatchesAvailability) {
  const Kernels* scalar = simd::ForBackend(Backend::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->backend, Backend::kScalar);
  for (Backend b : {Backend::kAvx2, Backend::kAvx512}) {
    const Kernels* k = simd::ForBackend(b);
    if (k != nullptr) {
      EXPECT_EQ(k->backend, b);
      EXPECT_STREQ(k->name, simd::BackendName(b));
    }
  }
}

// Word-wise kernels: run every available backend against scalar on the
// same inputs for widths 1..20 (every stride/tail combination for both the
// 4-word AVX2 and 8-word AVX-512 strides).
TEST(SimdKernelsTest, WordKernelsMatchScalar) {
  const Kernels* scalar = simd::ForBackend(Backend::kScalar);
  ASSERT_NE(scalar, nullptr);
  auto backends = simd::AvailableBackends();
  for (size_t n = 1; n <= 20; ++n) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      Rng r(Rng::Stream(1000 * n + seed, 42));
      int density = static_cast<int>(5 + 13 * seed);  // 5%..96%
      std::vector<uint64_t> a = RandomWords(r, n, density);
      std::vector<uint64_t> b = RandomWords(r, n, 100 - density);
      std::vector<uint64_t> mask = RandomWords(r, n, 50);

      std::vector<uint64_t> ref_and(n), ref_or(n);
      scalar->and_words(ref_and.data(), a.data(), b.data(), n);
      scalar->or_words(ref_or.data(), a.data(), b.data(), n);
      std::vector<uint64_t> ref_acc = a;
      scalar->accumulate_masked(ref_acc.data(), b.data(), mask.data(), n);
      size_t ref_pop = scalar->popcount_words(a.data(), n);
      uint64_t ref_hash = scalar->hash_words(a.data(), n);
      std::vector<uint32_t> ref_bits;
      scalar->append_set_bits(a.data(), n, &ref_bits);

      for (const Kernels* k : backends) {
        SCOPED_TRACE(::testing::Message()
                     << "backend=" << k->name << " n=" << n
                     << " seed=" << seed);
        std::vector<uint64_t> got(n, 0xdeadbeefdeadbeefull);
        k->clear_words(got.data(), n);
        EXPECT_EQ(got, std::vector<uint64_t>(n, 0));

        k->and_words(got.data(), a.data(), b.data(), n);
        EXPECT_EQ(got, ref_and);
        k->or_words(got.data(), a.data(), b.data(), n);
        EXPECT_EQ(got, ref_or);

        got = a;
        k->accumulate_masked(got.data(), b.data(), mask.data(), n);
        EXPECT_EQ(got, ref_acc);

        EXPECT_TRUE(k->equal_words(a.data(), a.data(), n));
        std::vector<uint64_t> tweaked = a;
        // Flip one bit in each word position in turn; equality must detect
        // a difference in any word, including tail words.
        for (size_t w = 0; w < n; ++w) {
          tweaked[w] ^= uint64_t{1} << (w % 64);
          EXPECT_FALSE(k->equal_words(a.data(), tweaked.data(), n))
              << "missed difference in word " << w;
          tweaked[w] = a[w];
        }

        EXPECT_EQ(k->popcount_words(a.data(), n), ref_pop);
        EXPECT_EQ(k->hash_words(a.data(), n), ref_hash);

        std::vector<uint32_t> bits;
        k->append_set_bits(a.data(), n, &bits);
        EXPECT_EQ(bits, ref_bits);
      }
    }
  }
}

// The hash must depend on word position (it keys behaviour rows in the
// exact counter's interning table).
TEST(SimdKernelsTest, HashIsPositionSensitive) {
  const Kernels* scalar = simd::ForBackend(Backend::kScalar);
  std::vector<uint64_t> a = {1, 2, 3, 4};
  std::vector<uint64_t> b = {2, 1, 3, 4};
  EXPECT_NE(scalar->hash_words(a.data(), 4), scalar->hash_words(b.data(), 4));
  // And on length: a prefix must not collide with the full row.
  EXPECT_NE(scalar->hash_words(a.data(), 3), scalar->hash_words(a.data(), 4));
}

TEST(SimdKernelsTest, AppendSetBitsHighWordOnly) {
  // Bits only in the last word of a wide set — exercises the zero-block
  // skip paths in the vector backends.
  for (size_t n : {5u, 9u, 16u, 17u}) {
    std::vector<uint64_t> words(n, 0);
    words[n - 1] = (uint64_t{1} << 0) | (uint64_t{1} << 63);
    std::vector<uint32_t> expect = {static_cast<uint32_t>((n - 1) * 64),
                                    static_cast<uint32_t>((n - 1) * 64 + 63)};
    for (const Kernels* k : simd::AvailableBackends()) {
      std::vector<uint32_t> got;
      k->append_set_bits(words.data(), n, &got);
      EXPECT_EQ(got, expect) << "backend=" << k->name << " n=" << n;
    }
  }
}

// Randomized group probes: every backend must accept exactly the same
// transitions and set exactly the same from-bits as scalar.
TEST(SimdKernelsTest, CombineGroupMatchesScalar) {
  const Kernels* scalar = simd::ForBackend(Backend::kScalar);
  auto backends = simd::AvailableBackends();
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng r(Rng::Stream(0xc0ffee, seed));
    uint32_t states = static_cast<uint32_t>(1 + r.NextU64() % 400);
    size_t wps = (states + 63) / 64;
    uint32_t rank = static_cast<uint32_t>(r.NextU64() % 5);       // 0..4
    uint32_t count = static_cast<uint32_t>(1 + r.NextU64() % 64);  // 1..64

    std::vector<uint32_t> from(count), child(rank * count);
    for (uint32_t i = 0; i < count; ++i) {
      from[i] = static_cast<uint32_t>(r.NextU64() % states);
    }
    for (auto& c : child) c = static_cast<uint32_t>(r.NextU64() % states);

    GroupProbe g;
    g.count = count;
    g.rank = rank;
    g.from = from.data();
    g.child = child.data();

    // Per-position child behaviour sets with varying density so both the
    // all-fail and mostly-accept paths are hit.
    std::vector<std::vector<uint64_t>> sets(rank);
    std::vector<const uint64_t*> set_ptrs(rank);
    for (uint32_t c = 0; c < rank; ++c) {
      sets[c] = RandomWords(r, wps, 20 + static_cast<int>(seed * 2));
      set_ptrs[c] = sets[c].data();
    }

    std::vector<uint64_t> ref_out(wps, 0);
    uint32_t ref_n =
        scalar->combine_group(g, set_ptrs.data(), ref_out.data());

    for (const Kernels* k : backends) {
      std::vector<uint64_t> out(wps, 0);
      uint32_t nacc = k->combine_group(g, set_ptrs.data(), out.data());
      EXPECT_EQ(nacc, ref_n) << "backend=" << k->name << " seed=" << seed;
      EXPECT_EQ(out, ref_out) << "backend=" << k->name << " seed=" << seed;
    }
  }
}

// Large groups force the vectorized main loops (count >= 16 covers the
// AVX-512 stride; rank up to 8 covers wide tuples).
TEST(SimdKernelsTest, CombineGroupLargeGroups) {
  const Kernels* scalar = simd::ForBackend(Backend::kScalar);
  auto backends = simd::AvailableBackends();
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng r(Rng::Stream(0xbeef, seed));
    uint32_t states = 1280;
    size_t wps = (states + 63) / 64;
    uint32_t rank = static_cast<uint32_t>(1 + seed % 8);
    uint32_t count = static_cast<uint32_t>(97 + r.NextU64() % 400);

    std::vector<uint32_t> from(count), child(rank * count);
    for (auto& f : from) f = static_cast<uint32_t>(r.NextU64() % states);
    for (auto& c : child) c = static_cast<uint32_t>(r.NextU64() % states);
    GroupProbe g{count, rank, from.data(), child.data()};

    std::vector<std::vector<uint64_t>> sets(rank);
    std::vector<const uint64_t*> set_ptrs(rank);
    for (uint32_t c = 0; c < rank; ++c) {
      sets[c] = RandomWords(r, wps, 70);  // dense: most transitions accept
      set_ptrs[c] = sets[c].data();
    }

    std::vector<uint64_t> ref_out(wps, 0);
    uint32_t ref_n =
        scalar->combine_group(g, set_ptrs.data(), ref_out.data());
    EXPECT_GT(ref_n, 0u);  // dense sets: something must accept

    for (const Kernels* k : backends) {
      std::vector<uint64_t> out(wps, 0);
      uint32_t nacc = k->combine_group(g, set_ptrs.data(), out.data());
      EXPECT_EQ(nacc, ref_n) << "backend=" << k->name << " seed=" << seed;
      EXPECT_EQ(out, ref_out) << "backend=" << k->name << " seed=" << seed;
    }
  }
}

// Rank-0 groups accept unconditionally on every backend.
TEST(SimdKernelsTest, CombineGroupRankZero) {
  std::vector<uint32_t> from = {3, 70, 3, 129};
  GroupProbe g{4, 0, from.data(), nullptr};
  for (const Kernels* k : simd::AvailableBackends()) {
    std::vector<uint64_t> out(3, 0);
    uint32_t n = k->combine_group(g, nullptr, out.data());
    EXPECT_EQ(n, 4u) << k->name;  // counts transitions, not distinct states
    EXPECT_EQ(out[0], (uint64_t{1} << 3));
    EXPECT_EQ(out[1], (uint64_t{1} << 6));
    EXPECT_EQ(out[2], (uint64_t{1} << 1));
  }
}

// SetActiveForTest forces the returned table and restores on nullptr.
TEST(SimdKernelsTest, TestOverride) {
  const Kernels* scalar = simd::ForBackend(Backend::kScalar);
  const Kernels& startup = simd::Active();
  simd::SetActiveForTest(scalar);
  EXPECT_EQ(&simd::Active(), scalar);
  simd::SetActiveForTest(nullptr);
  EXPECT_EQ(&simd::Active(), &startup);
}

}  // namespace
}  // namespace uocqa
