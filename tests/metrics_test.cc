// Unit tests for the metrics module (base/metrics.h): histogram bucket
// geometry and percentile edge cases, registry get-or-create semantics and
// exposition formats, null-tolerant helpers, StageTrace/ScopedStage
// rendering, and the version strings.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "base/metrics.h"
#include "base/simd_kernels.h"
#include "base/version.h"

namespace uocqa {
namespace metrics {
namespace {

// --- histogram bucket geometry ---------------------------------------------

TEST(HistogramTest, BucketIndexMatchesBitWidth) {
  // Bucket 0 is exactly {0}; bucket i (i >= 1) is [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
            64u);
}

TEST(HistogramTest, BucketUpperBoundsAreInclusiveEdges) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(64),
            std::numeric_limits<uint64_t>::max());
  // Every representable value lands in the bucket whose bound covers it.
  for (uint64_t v : {0ull, 1ull, 5ull, 100ull, 65536ull}) {
    size_t i = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(i));
    if (i > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(i - 1));
    }
  }
}

TEST(HistogramTest, RecordAccumulatesCountAndSum) {
  Histogram h;
  h.Record(0);
  h.Record(3);
  h.Record(1000);
  Histogram::Snapshot snap = h.Take();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 1003u);
  EXPECT_EQ(snap.buckets[0], 1u);   // 0
  EXPECT_EQ(snap.buckets[2], 1u);   // 3
  EXPECT_EQ(snap.buckets[10], 1u);  // 1000
}

// --- percentile edges -------------------------------------------------------

TEST(HistogramTest, PercentileOfEmptyHistogramIsZero) {
  Histogram h;
  Histogram::Snapshot snap = h.Take();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Percentile(0.5), 0u);
  EXPECT_EQ(snap.Percentile(0.99), 0u);
}

TEST(HistogramTest, PercentileOfSingleValueIsItsBucketBound) {
  Histogram h;
  h.Record(100);  // bucket 7, upper bound 127
  Histogram::Snapshot snap = h.Take();
  EXPECT_EQ(snap.Percentile(0.0), 127u);  // rank clamps up to 1
  EXPECT_EQ(snap.Percentile(0.5), 127u);
  EXPECT_EQ(snap.Percentile(1.0), 127u);
}

TEST(HistogramTest, PercentileStraddlesBuckets) {
  // 9 values in bucket 1 (value 1) and 1 value in bucket 10 (value 1000):
  // p50 stays in the low bucket, p95+ reach the high one.
  Histogram h;
  for (int i = 0; i < 9; ++i) h.Record(1);
  h.Record(1000);
  Histogram::Snapshot snap = h.Take();
  EXPECT_EQ(snap.count, 10u);
  EXPECT_EQ(snap.Percentile(0.50), 1u);
  EXPECT_EQ(snap.Percentile(0.90), 1u);     // rank 9 is still bucket 1
  EXPECT_EQ(snap.Percentile(0.95), 1023u);  // rank 10 crosses over
  EXPECT_EQ(snap.Percentile(0.99), 1023u);
}

// --- registry ----------------------------------------------------------------

TEST(RegistryTest, GetOrCreateReturnsStablePointers) {
  Registry registry;
  Counter* c1 = registry.GetCounter("uocqa_test_total");
  Counter* c2 = registry.GetCounter("uocqa_test_total");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.GetCounter("uocqa_other_total"), c1);
  Gauge* g1 = registry.GetGauge("uocqa_depth");
  EXPECT_EQ(g1, registry.GetGauge("uocqa_depth"));
  Histogram* h1 = registry.GetHistogram("uocqa_lat_us");
  EXPECT_EQ(h1, registry.GetHistogram("uocqa_lat_us"));
}

TEST(RegistryTest, PrometheusTextShape) {
  Registry registry;
  registry.GetCounter("uocqa_requests_total")->Add(5);
  registry.GetGauge("uocqa_pending")->Set(-2);
  Histogram* h = registry.GetHistogram("uocqa_stage_us");
  h->Record(0);
  h->Record(3);
  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE uocqa_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("uocqa_requests_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE uocqa_pending gauge\n"), std::string::npos);
  EXPECT_NE(text.find("uocqa_pending -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE uocqa_stage_us histogram\n"),
            std::string::npos);
  // Cumulative buckets up to the highest non-empty one, then +Inf.
  EXPECT_NE(text.find("uocqa_stage_us_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("uocqa_stage_us_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("uocqa_stage_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("uocqa_stage_us_sum 3\n"), std::string::npos);
  EXPECT_NE(text.find("uocqa_stage_us_count 2\n"), std::string::npos);
}

TEST(RegistryTest, OneLineTextListsInstrumentsInNameOrder) {
  Registry registry;
  registry.GetCounter("uocqa_b_total")->Add(2);
  registry.GetCounter("uocqa_a_total")->Add(1);
  registry.GetHistogram("uocqa_lat_us")->Record(4);
  std::string line = registry.OneLineText();
  size_t a = line.find("uocqa_a_total=1");
  size_t b = line.find("uocqa_b_total=2");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_NE(line.find("uocqa_lat_us_count=1"), std::string::npos);
  EXPECT_NE(line.find("uocqa_lat_us_sum=4"), std::string::npos);
  EXPECT_NE(line.find("uocqa_lat_us_p50=7"), std::string::npos);
}

TEST(RegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(Registry::Global(), Registry::Global());
  EXPECT_NE(Registry::Global(), nullptr);
}

// --- null-tolerant helpers ---------------------------------------------------

TEST(HelpersTest, NullHandlesAreNoOps) {
  // Must not crash; the uninstrumented path is a single branch.
  Add(static_cast<Counter*>(nullptr));
  Add(static_cast<Counter*>(nullptr), 7);
  Set(static_cast<Gauge*>(nullptr), -1);
  Record(static_cast<Histogram*>(nullptr), 42);
  { ScopedTimer timer(nullptr); }
  { ScopedStage stage(nullptr, nullptr, "ignored_us"); }
  Counter c;
  Add(&c, 3);
  EXPECT_EQ(c.Value(), 3u);
}

// --- StageTrace / ScopedStage -----------------------------------------------

TEST(StageTraceTest, InactiveTraceCollectsNothing) {
  StageTrace trace;  // active defaults to false
  { ScopedStage stage(nullptr, &trace, "parse_us"); }
  trace.AddCount("cache_hit", 1);
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_TRUE(trace.counts.empty());
  EXPECT_EQ(trace.ToString(), "");
}

TEST(StageTraceTest, ActiveTraceRendersSpansThenCounts) {
  StageTrace trace;
  trace.active = true;
  trace.spans.emplace_back("parse_us", 12);
  trace.spans.emplace_back("total_us", 90);
  trace.AddCount("cache_hit", 0);
  trace.AddCount("fpras_trials", 128);
  EXPECT_EQ(trace.ToString(),
            "parse_us=12 total_us=90 cache_hit=0 fpras_trials=128");
}

TEST(StageTraceTest, ScopedStageFeedsHistogramAndTrace) {
  Histogram h;
  StageTrace trace;
  trace.active = true;
  { ScopedStage stage(&h, &trace, "plan_us"); }
  EXPECT_EQ(h.Take().count, 1u);
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_STREQ(trace.spans[0].first, "plan_us");
}

// --- version strings ---------------------------------------------------------

TEST(VersionTest, FieldsNameTheActiveBackendAndSchema) {
  std::string fields = VersionFields();
  EXPECT_NE(fields.find("version="), std::string::npos);
  EXPECT_NE(fields.find(std::string("simd=") + simd::Active().name),
            std::string::npos);
  EXPECT_NE(fields.find("seed_schema=2"), std::string::npos);
  std::string banner = VersionBanner();
  EXPECT_NE(banner.find("uocqa "), std::string::npos);
  EXPECT_NE(banner.find(simd::Active().name), std::string::npos);
}

}  // namespace
}  // namespace metrics
}  // namespace uocqa
