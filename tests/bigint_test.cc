#include "base/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "base/rng.h"

namespace uocqa {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToDouble(), 0.0);
}

TEST(BigIntTest, Uint64RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 2ull, 4294967295ull, 4294967296ull,
                     18446744073709551615ull}) {
    BigInt b(v);
    EXPECT_EQ(b.ToUint64(), v) << v;
    EXPECT_EQ(b.ToString(), std::to_string(v));
  }
}

TEST(BigIntTest, DecimalStringRoundTrip) {
  const std::string big = "123456789012345678901234567890123456789";
  BigInt b = BigInt::FromDecimalString(big);
  EXPECT_EQ(b.ToString(), big);
}

TEST(BigIntTest, AdditionMatchesUint64) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t a = rng.NextU64() >> 1;
    uint64_t b = rng.NextU64() >> 1;
    EXPECT_EQ((BigInt(a) + BigInt(b)).ToUint64(), a + b);
  }
}

TEST(BigIntTest, SubtractionMatchesUint64) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    uint64_t a = rng.NextU64();
    uint64_t b = rng.NextU64();
    if (a < b) std::swap(a, b);
    EXPECT_EQ((BigInt(a) - BigInt(b)).ToUint64(), a - b);
  }
}

TEST(BigIntTest, MultiplicationMatchesUint64) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    uint64_t a = rng.NextU64() & 0xffffffffull;
    uint64_t b = rng.NextU64() & 0xffffffffull;
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToUint64(), a * b);
    EXPECT_EQ((BigInt(a) * b).ToUint64(), a * b);
  }
}

TEST(BigIntTest, LargeMultiplicationKnownValue) {
  // (2^128 - 1)^2 = 2^256 - 2^129 + 1
  BigInt a = BigInt::FromDecimalString("340282366920938463463374607431768211455");
  BigInt sq = a * a;
  EXPECT_EQ(sq.ToString(),
            "115792089237316195423570985008687907852589419931798687112530"
            "834793049593217025");
}

TEST(BigIntTest, CompareOrdering) {
  BigInt a(5), b(7);
  EXPECT_LT(a, b);
  EXPECT_LE(a, b);
  EXPECT_GT(b, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, BigInt(5));
  BigInt big = BigInt::FromDecimalString("99999999999999999999999");
  EXPECT_LT(b, big);
}

TEST(BigIntTest, ShiftLeftRight) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.NextU64() >> 8;
    size_t s = rng.UniformIndex(8);
    BigInt b(v);
    b.ShiftLeft(s);
    EXPECT_EQ(b.ToUint64(), v << s);
    b.ShiftRight(s);
    EXPECT_EQ(b.ToUint64(), v);
  }
  BigInt one(1);
  one.ShiftLeft(200);
  EXPECT_EQ(one.BitLength(), 201u);
  one.ShiftRight(200);
  EXPECT_TRUE(one.IsOne());
  one.ShiftRight(5);
  EXPECT_TRUE(one.IsZero());
}

TEST(BigIntTest, DivModU32) {
  BigInt b = BigInt::FromDecimalString("123456789012345678901");
  uint32_t rem = b.DivModU32(1000u);
  EXPECT_EQ(rem, 901u);
  EXPECT_EQ(b.ToString(), "123456789012345678");
}

TEST(BigIntTest, ToDoubleAccuracy) {
  BigInt b = BigInt::FromDecimalString("1000000000000000000000000000000");
  EXPECT_NEAR(b.ToDouble(), 1e30, 1e15);
}

TEST(BigIntTest, RatioAsDouble) {
  BigInt num = BigInt::FromDecimalString("123456789012345678901234567890");
  BigInt den = BigInt::FromDecimalString("987654321098765432109876543210");
  EXPECT_NEAR(BigInt::RatioAsDouble(num, den), 0.1249999988609375, 1e-12);
  EXPECT_EQ(BigInt::RatioAsDouble(BigInt(), den), 0.0);
  // Huge ratio that would overflow double numerator/denominator separately.
  BigInt n2(3);
  n2.ShiftLeft(5000);
  BigInt d2(2);
  d2.ShiftLeft(5000);
  EXPECT_DOUBLE_EQ(BigInt::RatioAsDouble(n2, d2), 1.5);
}

TEST(BigIntTest, Log2) {
  BigInt b(1);
  b.ShiftLeft(100);
  EXPECT_NEAR(b.Log2(), 100.0, 1e-9);
  EXPECT_NEAR(BigInt(3).Log2(), 1.584962500721156, 1e-12);
}

TEST(BigIntTest, BinomialKnownValues) {
  EXPECT_EQ(Binomial(0, 0).ToString(), "1");
  EXPECT_EQ(Binomial(5, 2).ToUint64(), 10u);
  EXPECT_EQ(Binomial(7, 5).ToUint64(), 21u);  // Example 5.4 amplifier
  EXPECT_EQ(Binomial(10, 11).ToUint64(), 0u);
  EXPECT_EQ(Binomial(100, 50).ToString(),
            "100891344545564193334812497256");
}

TEST(BigIntTest, BinomialPascalIdentity) {
  for (uint32_t n = 1; n < 40; ++n) {
    for (uint32_t k = 1; k <= n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n - 1, k - 1) + Binomial(n - 1, k));
    }
  }
}

TEST(BigIntTest, FactorialKnownValues) {
  EXPECT_EQ(Factorial(0).ToUint64(), 1u);
  EXPECT_EQ(Factorial(5).ToUint64(), 120u);
  EXPECT_EQ(Factorial(20).ToUint64(), 2432902008176640000ull);
  EXPECT_EQ(Factorial(25).ToString(), "15511210043330985984000000");
}

TEST(BigIntTest, MultinomialMatchesFactorialFormula) {
  // (3+2+2)! / (3!2!2!) = 5040/24 = 210
  EXPECT_EQ(Multinomial({3, 2, 2}).ToUint64(), 210u);
  EXPECT_EQ(Multinomial({}).ToUint64(), 1u);
  EXPECT_EQ(Multinomial({4}).ToUint64(), 1u);
  // Example 5.4 interleaving: 7!/(1!2!1!1!2!) = 1260.
  EXPECT_EQ(Multinomial({1, 2, 1, 1, 2}).ToUint64(), 1260u);
}

// --- small-value fast path: spill boundaries & small/limb cross-checks ------

// Forces the limb (spilled) representation of a value that fits in 64 bits
// by shifting it above 2^64 and back: every intermediate op must agree with
// the small path afterwards.
BigInt ViaLimbs(uint64_t v) {
  BigInt b(v);
  b.ShiftLeft(96);
  b.ShiftRight(96);
  return b;
}

TEST(BigIntSmallPathTest, RepresentationInvariant) {
  // Values < 2^64 are small; >= 2^64 are spilled; ops that shrink a value
  // below the boundary collapse it back.
  EXPECT_TRUE(BigInt(0).IsSmall());
  EXPECT_TRUE(BigInt(~0ull).IsSmall());
  BigInt spill = BigInt(~0ull) + BigInt(1);
  EXPECT_FALSE(spill.IsSmall());
  EXPECT_EQ(spill.ToString(), "18446744073709551616");  // 2^64
  spill -= BigInt(1);
  EXPECT_TRUE(spill.IsSmall());
  EXPECT_EQ(spill.ToUint64(), ~0ull);
  // (2^64 - 1) * 1000 is spilled; dividing the 1000 back out collapses it.
  BigInt q = BigInt::FromDecimalString("18446744073709551615000");
  EXPECT_FALSE(q.IsSmall());
  EXPECT_EQ(q.DivModU32(1000u), 0u);
  EXPECT_TRUE(q.IsSmall());
  EXPECT_EQ(q.ToUint64(), ~0ull);
  EXPECT_FALSE((BigInt(1) + BigInt(~0ull)).IsSmall());
}

TEST(BigIntSmallPathTest, AdditionSpillAt64) {
  // a + b straddling 2^64: cross-check against 128-bit arithmetic.
  const uint64_t kMax = ~0ull;
  for (uint64_t a : {kMax, kMax - 1, uint64_t{1} << 63, kMax / 2}) {
    for (uint64_t b : {uint64_t{1}, uint64_t{2}, kMax, uint64_t{1} << 63}) {
      BigInt s = BigInt(a) + BigInt(b);
      unsigned __int128 ref = static_cast<unsigned __int128>(a) + b;
      uint64_t hi = static_cast<uint64_t>(ref >> 64);
      uint64_t lo = static_cast<uint64_t>(ref);
      BigInt expect = (BigInt(hi).ShiftLeft(64)) + BigInt(lo);
      EXPECT_EQ(s, expect) << a << " + " << b;
      EXPECT_EQ(s.IsSmall(), hi == 0);
      // Subtracting one addend crosses back below the boundary.
      EXPECT_EQ((s - BigInt(b)).ToUint64(), a);
      EXPECT_TRUE((s - BigInt(b)).IsSmall());
    }
  }
}

TEST(BigIntSmallPathTest, MultiplicationSpillAt32And64) {
  // Products around 2^32 stay small; around 2^64 they spill. Cross-check
  // against 128-bit arithmetic and the decimal printer.
  const uint64_t k32 = uint64_t{1} << 32;
  for (uint64_t a : {k32 - 1, k32, k32 + 1, (uint64_t{1} << 33) - 7}) {
    for (uint64_t b : {k32 - 1, k32, k32 + 1, uint64_t{977}}) {
      BigInt p = BigInt(a) * BigInt(b);
      unsigned __int128 ref = static_cast<unsigned __int128>(a) * b;
      uint64_t hi = static_cast<uint64_t>(ref >> 64);
      uint64_t lo = static_cast<uint64_t>(ref);
      BigInt expect = (BigInt(hi).ShiftLeft(64)) + BigInt(lo);
      EXPECT_EQ(p, expect) << a << " * " << b;
      EXPECT_EQ(p.IsSmall(), hi == 0) << a << " * " << b;
      BigInt q = BigInt(a);
      q *= b;  // the u64 overload takes the same fast path
      EXPECT_EQ(q, expect);
    }
  }
}

TEST(BigIntSmallPathTest, SmallAndLimbPathsAgree) {
  // The same value computed via the small path and via a forced limb
  // round-trip must be indistinguishable under every operation.
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    uint64_t a = rng.NextU64();
    uint64_t b = rng.NextU64();
    if (a < b) std::swap(a, b);
    BigInt sa(a), la = ViaLimbs(a);
    BigInt sb(b), lb = ViaLimbs(b);
    EXPECT_EQ(la.ToUint64(), a);
    EXPECT_TRUE(la.IsSmall());  // round-trip collapses back
    EXPECT_EQ(sa.Compare(la), 0);
    EXPECT_EQ(sa + sb, la + lb);
    EXPECT_EQ(sa - sb, la - lb);
    EXPECT_EQ(sa * sb, la * lb);
    EXPECT_EQ((sa + sb).ToString(), (la + lb).ToString());
    size_t sh = rng.UniformIndex(130);
    BigInt ss = sa;
    ss.ShiftLeft(sh);
    BigInt ls = la;
    ls.ShiftLeft(sh);
    EXPECT_EQ(ss, ls) << "a=" << a << " shift=" << sh;
    ss.ShiftRight(sh);
    EXPECT_EQ(ss.ToUint64(), a);
  }
}

TEST(BigIntSmallPathTest, ShiftBoundaries) {
  BigInt b(1);
  b.ShiftLeft(63);
  EXPECT_TRUE(b.IsSmall());
  EXPECT_EQ(b.ToUint64(), uint64_t{1} << 63);
  b.ShiftLeft(1);  // 2^64: spills
  EXPECT_FALSE(b.IsSmall());
  EXPECT_EQ(b.ToString(), "18446744073709551616");
  EXPECT_EQ(b.BitLength(), 65u);
  b.ShiftRight(1);  // back under the boundary
  EXPECT_TRUE(b.IsSmall());
  EXPECT_EQ(b.ToUint64(), uint64_t{1} << 63);
  // Shift by more than the whole width.
  b.ShiftRight(200);
  EXPECT_TRUE(b.IsZero());
}

TEST(BigIntSmallPathTest, CompareAcrossTheBoundary) {
  BigInt small(~0ull);                    // 2^64 - 1
  BigInt big = BigInt(1).ShiftLeft(64);   // 2^64
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_EQ(big - BigInt(1), small);
  EXPECT_LT(BigInt(0), small);
  // Mixed-representation equality after a shrink.
  BigInt shrunk = big;
  shrunk.ShiftRight(64);
  EXPECT_EQ(shrunk, BigInt(1));
}

TEST(BigIntSmallPathTest, DivModAcrossTheBoundary) {
  // 2^64 / 2 = 2^63 collapses back to small with remainder 0.
  BigInt b = BigInt(1).ShiftLeft(64);
  EXPECT_EQ(b.DivModU32(2u), 0u);
  EXPECT_TRUE(b.IsSmall());
  EXPECT_EQ(b.ToUint64(), uint64_t{1} << 63);
  // Small-path remainder agrees with native arithmetic.
  BigInt s(1234567890123456789ull);
  EXPECT_EQ(s.DivModU32(1000000007u), 1234567890123456789ull % 1000000007u);
  EXPECT_EQ(s.ToUint64(), 1234567890123456789ull / 1000000007u);
}

TEST(BigIntTest, MulAddStressAgainstDouble) {
  Rng rng(7);
  BigInt acc(1);
  double approx = 1.0;
  for (int i = 0; i < 300; ++i) {
    uint64_t m = 1 + rng.UniformU64(1000);
    acc *= m;
    approx *= static_cast<double>(m);
    if (approx > 1e300) break;  // keep double in range
  }
  EXPECT_NEAR(acc.ToDouble() / approx, 1.0, 1e-9);
}

}  // namespace
}  // namespace uocqa
