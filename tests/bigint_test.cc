#include "base/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "base/rng.h"

namespace uocqa {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToDouble(), 0.0);
}

TEST(BigIntTest, Uint64RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 2ull, 4294967295ull, 4294967296ull,
                     18446744073709551615ull}) {
    BigInt b(v);
    EXPECT_EQ(b.ToUint64(), v) << v;
    EXPECT_EQ(b.ToString(), std::to_string(v));
  }
}

TEST(BigIntTest, DecimalStringRoundTrip) {
  const std::string big = "123456789012345678901234567890123456789";
  BigInt b = BigInt::FromDecimalString(big);
  EXPECT_EQ(b.ToString(), big);
}

TEST(BigIntTest, AdditionMatchesUint64) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t a = rng.NextU64() >> 1;
    uint64_t b = rng.NextU64() >> 1;
    EXPECT_EQ((BigInt(a) + BigInt(b)).ToUint64(), a + b);
  }
}

TEST(BigIntTest, SubtractionMatchesUint64) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    uint64_t a = rng.NextU64();
    uint64_t b = rng.NextU64();
    if (a < b) std::swap(a, b);
    EXPECT_EQ((BigInt(a) - BigInt(b)).ToUint64(), a - b);
  }
}

TEST(BigIntTest, MultiplicationMatchesUint64) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    uint64_t a = rng.NextU64() & 0xffffffffull;
    uint64_t b = rng.NextU64() & 0xffffffffull;
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToUint64(), a * b);
    EXPECT_EQ((BigInt(a) * b).ToUint64(), a * b);
  }
}

TEST(BigIntTest, LargeMultiplicationKnownValue) {
  // (2^128 - 1)^2 = 2^256 - 2^129 + 1
  BigInt a = BigInt::FromDecimalString("340282366920938463463374607431768211455");
  BigInt sq = a * a;
  EXPECT_EQ(sq.ToString(),
            "115792089237316195423570985008687907852589419931798687112530"
            "834793049593217025");
}

TEST(BigIntTest, CompareOrdering) {
  BigInt a(5), b(7);
  EXPECT_LT(a, b);
  EXPECT_LE(a, b);
  EXPECT_GT(b, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, BigInt(5));
  BigInt big = BigInt::FromDecimalString("99999999999999999999999");
  EXPECT_LT(b, big);
}

TEST(BigIntTest, ShiftLeftRight) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.NextU64() >> 8;
    size_t s = rng.UniformIndex(8);
    BigInt b(v);
    b.ShiftLeft(s);
    EXPECT_EQ(b.ToUint64(), v << s);
    b.ShiftRight(s);
    EXPECT_EQ(b.ToUint64(), v);
  }
  BigInt one(1);
  one.ShiftLeft(200);
  EXPECT_EQ(one.BitLength(), 201u);
  one.ShiftRight(200);
  EXPECT_TRUE(one.IsOne());
  one.ShiftRight(5);
  EXPECT_TRUE(one.IsZero());
}

TEST(BigIntTest, DivModU32) {
  BigInt b = BigInt::FromDecimalString("123456789012345678901");
  uint32_t rem = b.DivModU32(1000u);
  EXPECT_EQ(rem, 901u);
  EXPECT_EQ(b.ToString(), "123456789012345678");
}

TEST(BigIntTest, ToDoubleAccuracy) {
  BigInt b = BigInt::FromDecimalString("1000000000000000000000000000000");
  EXPECT_NEAR(b.ToDouble(), 1e30, 1e15);
}

TEST(BigIntTest, RatioAsDouble) {
  BigInt num = BigInt::FromDecimalString("123456789012345678901234567890");
  BigInt den = BigInt::FromDecimalString("987654321098765432109876543210");
  EXPECT_NEAR(BigInt::RatioAsDouble(num, den), 0.1249999988609375, 1e-12);
  EXPECT_EQ(BigInt::RatioAsDouble(BigInt(), den), 0.0);
  // Huge ratio that would overflow double numerator/denominator separately.
  BigInt n2(3);
  n2.ShiftLeft(5000);
  BigInt d2(2);
  d2.ShiftLeft(5000);
  EXPECT_DOUBLE_EQ(BigInt::RatioAsDouble(n2, d2), 1.5);
}

TEST(BigIntTest, Log2) {
  BigInt b(1);
  b.ShiftLeft(100);
  EXPECT_NEAR(b.Log2(), 100.0, 1e-9);
  EXPECT_NEAR(BigInt(3).Log2(), 1.584962500721156, 1e-12);
}

TEST(BigIntTest, BinomialKnownValues) {
  EXPECT_EQ(Binomial(0, 0).ToString(), "1");
  EXPECT_EQ(Binomial(5, 2).ToUint64(), 10u);
  EXPECT_EQ(Binomial(7, 5).ToUint64(), 21u);  // Example 5.4 amplifier
  EXPECT_EQ(Binomial(10, 11).ToUint64(), 0u);
  EXPECT_EQ(Binomial(100, 50).ToString(),
            "100891344545564193334812497256");
}

TEST(BigIntTest, BinomialPascalIdentity) {
  for (uint32_t n = 1; n < 40; ++n) {
    for (uint32_t k = 1; k <= n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n - 1, k - 1) + Binomial(n - 1, k));
    }
  }
}

TEST(BigIntTest, FactorialKnownValues) {
  EXPECT_EQ(Factorial(0).ToUint64(), 1u);
  EXPECT_EQ(Factorial(5).ToUint64(), 120u);
  EXPECT_EQ(Factorial(20).ToUint64(), 2432902008176640000ull);
  EXPECT_EQ(Factorial(25).ToString(), "15511210043330985984000000");
}

TEST(BigIntTest, MultinomialMatchesFactorialFormula) {
  // (3+2+2)! / (3!2!2!) = 5040/24 = 210
  EXPECT_EQ(Multinomial({3, 2, 2}).ToUint64(), 210u);
  EXPECT_EQ(Multinomial({}).ToUint64(), 1u);
  EXPECT_EQ(Multinomial({4}).ToUint64(), 1u);
  // Example 5.4 interleaving: 7!/(1!2!1!1!2!) = 1260.
  EXPECT_EQ(Multinomial({1, 2, 1, 1, 2}).ToUint64(), 1260u);
}

TEST(BigIntTest, MulAddStressAgainstDouble) {
  Rng rng(7);
  BigInt acc(1);
  double approx = 1.0;
  for (int i = 0; i < 300; ++i) {
    uint64_t m = 1 + rng.UniformU64(1000);
    acc *= m;
    approx *= static_cast<double>(m);
    if (approx > 1e300) break;  // keep double in range
  }
  EXPECT_NEAR(acc.ToDouble() / approx, 1.0, 1e-9);
}

}  // namespace
}  // namespace uocqa
