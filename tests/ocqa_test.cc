#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "automata/exact_count.h"
#include "base/rng.h"
#include "hypertree/ghd_search.h"
#include "hypertree/normal_form.h"
#include "ocqa/assignments.h"
#include "ocqa/engine.h"
#include "ocqa/rep_builder.h"
#include "ocqa/seq_builder.h"
#include "query/eval.h"
#include "query/parser.h"
#include "repairs/counting.h"

namespace uocqa {
namespace {

struct Instance {
  Database db;
  KeySet keys;
  ConjunctiveQuery query;
  std::vector<Value> answer;
};

/// Example 1.1 with the trivial Boolean query over Emp.
Instance EmpInstance() {
  Instance inst;
  Schema s;
  s.AddRelationOrDie("Emp", 2);
  inst.db = Database(s);
  inst.db.Add("Emp", {"1", "Alice"});
  inst.db.Add("Emp", {"1", "Tom"});
  inst.keys.SetKeyOrDie(s.Find("Emp"), {0});
  inst.query = *ParseQuery("Ans() :- Emp(x,y)");
  return inst;
}

/// The §5.1 instance: 13 facts, width-2 query.
Instance Paper51Instance() {
  Instance inst;
  Schema s;
  s.AddRelationOrDie("P", 2);
  s.AddRelationOrDie("S", 2);
  s.AddRelationOrDie("T", 2);
  s.AddRelationOrDie("U", 2);
  inst.db = Database(s);
  inst.db.Add("P", {"a1", "b"});
  inst.db.Add("P", {"a1", "c"});
  inst.db.Add("P", {"a2", "b"});
  inst.db.Add("P", {"a2", "c"});
  inst.db.Add("P", {"a2", "d"});
  inst.db.Add("S", {"c", "d"});
  inst.db.Add("S", {"c", "e"});
  inst.db.Add("T", {"d", "a1"});
  inst.db.Add("U", {"c", "f"});
  inst.db.Add("U", {"c", "g"});
  inst.db.Add("U", {"h", "i"});
  inst.db.Add("U", {"h", "j"});
  inst.db.Add("U", {"h", "k"});
  for (const char* r : {"P", "S", "T", "U"}) {
    inst.keys.SetKeyOrDie(s.Find(r), {0});
  }
  inst.query = *ParseQuery("Ans() :- P(x,y), S(y,z), T(z,x), U(y,w)");
  return inst;
}

/// A small acyclic instance with an answer variable.
Instance ChainInstance() {
  Instance inst;
  Schema s;
  s.AddRelationOrDie("R", 2);
  s.AddRelationOrDie("W", 2);
  inst.db = Database(s);
  inst.db.Add("R", {"1", "a"});
  inst.db.Add("R", {"1", "b"});
  inst.db.Add("R", {"2", "a"});
  inst.db.Add("W", {"a", "x"});
  inst.db.Add("W", {"a", "y"});
  inst.db.Add("W", {"b", "z"});
  inst.keys.SetKeyOrDie(s.Find("R"), {0});
  inst.keys.SetKeyOrDie(s.Find("W"), {0});
  inst.query = *ParseQuery("Ans(u) :- R(u,v), W(v,t)");
  inst.answer = {ValuePool::Intern("1")};
  return inst;
}

/// Builds the normal form + Rep automaton for an instance.
RepAutomaton BuildRep(const Instance& inst,
                      RepAutomatonOptions options = {}) {
  auto h = DecomposeQuery(inst.query);
  EXPECT_TRUE(h.ok()) << h.status().ToString();
  auto nf = ToNormalForm(inst.db, inst.query, *h);
  EXPECT_TRUE(nf.ok()) << nf.status().ToString();
  KeySet keys;
  for (const auto& [rel, positions] : inst.keys.Entries()) {
    RelationId nr = nf->db.schema().Find(inst.db.schema().name(rel));
    if (nr != kInvalidRelation) keys.SetKeyOrDie(nr, positions);
  }
  auto rep = BuildRepAutomaton(nf->db, keys, nf->query, nf->decomposition,
                               inst.answer, options);
  EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  return std::move(rep).value();
}

// --- assignments -------------------------------------------------------------

TEST(AssignmentsTest, EnumeratesCoherentMappings) {
  Instance inst = ChainInstance();
  auto h = DecomposeQuery(inst.query);
  ASSERT_TRUE(h.ok());
  auto idx = AssignmentIndex::Build(inst.db, inst.query, *h, inst.answer);
  ASSERT_TRUE(idx.ok());
  // Some vertex holds R(u,v): with u pinned to 1, facts R(1,a), R(1,b).
  // W(v,t) must agree on v.
  size_t total = idx->TotalAssignments();
  EXPECT_GT(total, 0u);
  // Compatibility is symmetric and reflexive on a single assignment.
  for (DecompVertex v = 0; v < h->size(); ++v) {
    for (const VertexAssignment& a : idx->ForVertex(v)) {
      EXPECT_TRUE(AssignmentIndex::Compatible(a, a));
    }
  }
}

TEST(AssignmentsTest, AnswerTupleFiltersAssignments) {
  Instance inst = ChainInstance();
  auto h = DecomposeQuery(inst.query);
  ASSERT_TRUE(h.ok());
  auto idx1 = AssignmentIndex::Build(inst.db, inst.query, *h, inst.answer);
  auto idx2 = AssignmentIndex::Build(inst.db, inst.query, *h,
                                     {ValuePool::Intern("2")});
  ASSERT_TRUE(idx1.ok());
  ASSERT_TRUE(idx2.ok());
  // u=2 admits only R(2,a); strictly fewer options than u=1.
  EXPECT_LT(idx2->TotalAssignments(), idx1->TotalAssignments());
}

// --- Rep[k] ------------------------------------------------------------------

TEST(RepAutomatonTest, EmpNumeratorMatchesBruteForce) {
  Instance inst = EmpInstance();
  RepAutomaton rep = BuildRep(inst);
  ExactTreeCounter counter(rep.nfta);
  BigInt via_automaton = counter.CountExactSize(rep.tree_size);
  BigInt brute =
      CountRepairsEntailing(inst.db, inst.keys, inst.query, inst.answer);
  EXPECT_EQ(via_automaton, brute);
  EXPECT_EQ(brute.ToUint64(), 2u);
}

TEST(RepAutomatonTest, Paper51NumeratorMatchesBruteForce) {
  Instance inst = Paper51Instance();
  RepAutomaton rep = BuildRep(inst);
  ExactTreeCounter counter(rep.nfta);
  BigInt via_automaton = counter.CountExactSize(rep.tree_size);
  BigInt brute =
      CountRepairsEntailing(inst.db, inst.keys, inst.query, inst.answer);
  EXPECT_EQ(via_automaton, brute) << rep.nfta.DebugStats();
}

TEST(RepAutomatonTest, AnswerVariableInstance) {
  Instance inst = ChainInstance();
  RepAutomaton rep = BuildRep(inst);
  ExactTreeCounter counter(rep.nfta);
  EXPECT_EQ(counter.CountExactSize(rep.tree_size),
            CountRepairsEntailing(inst.db, inst.keys, inst.query,
                                  inst.answer));
  // Different answer constant, different count.
  Instance inst2 = ChainInstance();
  inst2.answer = {ValuePool::Intern("2")};
  RepAutomaton rep2 = BuildRep(inst2);
  ExactTreeCounter counter2(rep2.nfta);
  EXPECT_EQ(counter2.CountExactSize(rep2.tree_size),
            CountRepairsEntailing(inst2.db, inst2.keys, inst2.query,
                                  inst2.answer));
}

TEST(RepAutomatonTest, AcceptedTreesDecodeToEntailingRepairs) {
  Instance inst = EmpInstance();
  auto h = DecomposeQuery(inst.query);
  ASSERT_TRUE(h.ok());
  auto nf = ToNormalForm(inst.db, inst.query, *h);
  ASSERT_TRUE(nf.ok());
  KeySet keys;
  for (const auto& [rel, positions] : inst.keys.Entries()) {
    RelationId nr = nf->db.schema().Find(inst.db.schema().name(rel));
    if (nr != kInvalidRelation) keys.SetKeyOrDie(nr, positions);
  }
  auto rep = BuildRepAutomaton(nf->db, keys, nf->query, nf->decomposition,
                               inst.answer);
  ASSERT_TRUE(rep.ok());
  // Sample trees via the FPRAS sampler, decode them, check entailment.
  NftaFpras fpras(rep->nfta);
  Rng rng(17);
  std::set<std::vector<FactId>> repairs;
  for (int i = 0; i < 100; ++i) {
    auto tree = fpras.Sample(rng, rep->nfta.initial(), rep->tree_size);
    ASSERT_TRUE(tree.has_value());
    ASSERT_TRUE(rep->nfta.Accepts(*tree));
    auto kept = rep->DecodeRepair(*tree, nf->decomposition);
    ASSERT_TRUE(kept.ok()) << kept.status().ToString();
    Database repair = nf->db.Subset(*kept);
    EXPECT_TRUE(IsConsistent(repair, keys));
    QueryEvaluator eval(repair, nf->query);
    EXPECT_TRUE(eval.Entails(inst.answer));
    repairs.insert(*kept);
  }
  // Both entailing repairs (keep Alice / keep Tom) appear.
  EXPECT_EQ(repairs.size(), 2u);
}

TEST(RepAutomatonTest, ClassicalVariantMatchesBruteForce) {
  Instance inst = Paper51Instance();
  RepAutomatonOptions options;
  options.classical_repairs = true;
  RepAutomaton rep = BuildRep(inst, options);
  ExactTreeCounter counter(rep.nfta);
  OcqaEngine engine(inst.db, inst.keys);
  EXPECT_EQ(counter.CountExactSize(rep.tree_size),
            engine.ClassicalRepairsEntailingBruteForce(inst.query,
                                                       inst.answer));
}

// --- Seq[k] ------------------------------------------------------------------

TEST(SeqAutomatonTest, EmpSequenceNumeratorMatchesBruteForce) {
  Instance inst = EmpInstance();
  OcqaEngine engine(inst.db, inst.keys);
  auto via_automaton =
      engine.SequencesEntailingViaAutomaton(inst.query, inst.answer);
  ASSERT_TRUE(via_automaton.ok()) << via_automaton.status().ToString();
  BigInt brute =
      CountSequencesEntailing(inst.db, inst.keys, inst.query, inst.answer);
  EXPECT_EQ(*via_automaton, brute);
  EXPECT_EQ(brute.ToUint64(), 2u);
}

TEST(SeqAutomatonTest, TwoBlockSequenceNumeratorMatchesBruteForce) {
  Instance inst;
  Schema s;
  s.AddRelationOrDie("R", 2);
  s.AddRelationOrDie("W", 1);
  inst.db = Database(s);
  inst.db.Add("R", {"1", "a"});
  inst.db.Add("R", {"1", "b"});
  inst.db.Add("W", {"a"});
  inst.db.Add("W", {"b"});
  inst.keys.SetKeyOrDie(s.Find("R"), {0});
  inst.query = *ParseQuery("Ans() :- R(x,y), W(y)");
  OcqaEngine engine(inst.db, inst.keys);
  auto via_automaton =
      engine.SequencesEntailingViaAutomaton(inst.query, inst.answer);
  ASSERT_TRUE(via_automaton.ok()) << via_automaton.status().ToString();
  BigInt brute =
      CountSequencesEntailing(inst.db, inst.keys, inst.query, inst.answer);
  EXPECT_EQ(*via_automaton, brute);
}

TEST(SeqAutomatonTest, ThreeFactBlockWithInterleaving) {
  // One block of size 3 and one of size 2: nontrivial templates (-1/-2)
  // and amplifiers C(b,b') > 1.
  Instance inst;
  Schema s;
  s.AddRelationOrDie("R", 2);
  s.AddRelationOrDie("V", 2);
  inst.db = Database(s);
  inst.db.Add("R", {"1", "a"});
  inst.db.Add("R", {"1", "b"});
  inst.db.Add("R", {"1", "c"});
  inst.db.Add("V", {"k", "a"});
  inst.db.Add("V", {"k", "b"});
  inst.keys.SetKeyOrDie(s.Find("R"), {0});
  inst.keys.SetKeyOrDie(s.Find("V"), {0});
  inst.query = *ParseQuery("Ans() :- R(x,y), V(z,y)");
  OcqaEngine engine(inst.db, inst.keys);
  auto via_automaton =
      engine.SequencesEntailingViaAutomaton(inst.query, inst.answer);
  ASSERT_TRUE(via_automaton.ok()) << via_automaton.status().ToString();
  BigInt brute =
      CountSequencesEntailing(inst.db, inst.keys, inst.query, inst.answer);
  EXPECT_EQ(*via_automaton, brute);
  EXPECT_FALSE(brute.IsZero());
}

// --- engine end-to-end --------------------------------------------------------

TEST(EngineTest, ExactMatchesAutomatonOnAllInstances) {
  for (Instance inst : {EmpInstance(), ChainInstance(), Paper51Instance()}) {
    OcqaEngine engine(inst.db, inst.keys);
    auto via_automaton =
        engine.RepairsEntailingViaAutomaton(inst.query, inst.answer);
    ASSERT_TRUE(via_automaton.ok()) << via_automaton.status().ToString();
    EXPECT_EQ(*via_automaton,
              CountRepairsEntailing(inst.db, inst.keys, inst.query,
                                    inst.answer));
  }
}

TEST(EngineTest, ApproxUrTracksExact) {
  Instance inst = Paper51Instance();
  OcqaEngine engine(inst.db, inst.keys);
  ExactRF exact = engine.ExactUr(inst.query, inst.answer);
  OcqaOptions options;
  options.fpras.epsilon = 0.1;
  options.fpras.seed = 21;
  auto approx = engine.ApproxUr(inst.query, inst.answer, options);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_GT(approx->value, 0.0);
  EXPECT_NEAR(approx->value / exact.value(), 1.0, 0.2);
}

TEST(EngineTest, ApproxUsTracksExact) {
  Instance inst = EmpInstance();
  OcqaEngine engine(inst.db, inst.keys);
  ExactRF exact = engine.ExactUs(inst.query, inst.answer);
  OcqaOptions options;
  options.fpras.epsilon = 0.1;
  options.fpras.seed = 22;
  auto approx = engine.ApproxUs(inst.query, inst.answer, options);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_NEAR(approx->value / exact.value(), 1.0, 0.2);
}

TEST(EngineTest, MonteCarloBaselinesConverge) {
  Instance inst = Paper51Instance();
  OcqaEngine engine(inst.db, inst.keys);
  ExactRF ur = engine.ExactUr(inst.query, inst.answer);
  ExactRF us = engine.ExactUs(inst.query, inst.answer);
  double mc_ur = engine.MonteCarloUr(inst.query, inst.answer, 20000, 5);
  double mc_us = engine.MonteCarloUs(inst.query, inst.answer, 20000, 6);
  EXPECT_NEAR(mc_ur, ur.value(), 0.02);
  EXPECT_NEAR(mc_us, us.value(), 0.02);
}

TEST(EngineTest, RejectsSelfJoins) {
  Instance inst = EmpInstance();
  OcqaEngine engine(inst.db, inst.keys);
  auto q = ParseQuery("Ans() :- Emp(x,y), Emp(y,z)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(engine.ApproxUr(*q, {}).ok());
}

TEST(EngineTest, ZeroNumeratorWhenQueryUnsatisfiable) {
  Instance inst = EmpInstance();
  OcqaEngine engine(inst.db, inst.keys);
  auto q = ParseQuery("Ans() :- Emp(x,y), Missing(y)");
  ASSERT_TRUE(q.ok());
  auto count = engine.RepairsEntailingViaAutomaton(*q, {});
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_TRUE(count->IsZero());
  auto approx = engine.ApproxUr(*q, {});
  ASSERT_TRUE(approx.ok());
  EXPECT_DOUBLE_EQ(approx->value, 0.0);
}

// --- randomized cross-validation ----------------------------------------------

struct RandomCase {
  Instance inst;
};

RandomCase MakeRandomCase(uint64_t seed) {
  Rng rng(seed);
  RandomCase c;
  Schema s;
  s.AddRelationOrDie("A", 2);
  s.AddRelationOrDie("B", 2);
  c.inst.db = Database(s);
  // Random facts with small domains to force conflicts and joins.
  const char* keys1[] = {"k1", "k2"};
  const char* vals[] = {"u", "v", "w"};
  for (int i = 0; i < 5; ++i) {
    c.inst.db.Add("A", {keys1[rng.UniformIndex(2)],
                        vals[rng.UniformIndex(3)]});
    c.inst.db.Add("B", {vals[rng.UniformIndex(3)],
                        keys1[rng.UniformIndex(2)]});
  }
  c.inst.keys.SetKeyOrDie(s.Find("A"), {0});
  c.inst.keys.SetKeyOrDie(s.Find("B"), {0});
  c.inst.query = *ParseQuery("Ans() :- A(x,y), B(y,z)");
  return c;
}

class RandomInstanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomInstanceTest, RepAutomatonMatchesBruteForce) {
  RandomCase c = MakeRandomCase(GetParam());
  OcqaEngine engine(c.inst.db, c.inst.keys);
  auto via_automaton =
      engine.RepairsEntailingViaAutomaton(c.inst.query, c.inst.answer);
  ASSERT_TRUE(via_automaton.ok()) << via_automaton.status().ToString();
  EXPECT_EQ(*via_automaton,
            CountRepairsEntailing(c.inst.db, c.inst.keys, c.inst.query,
                                  c.inst.answer))
      << "seed " << GetParam();
}

TEST_P(RandomInstanceTest, SeqAutomatonMatchesBruteForce) {
  RandomCase c = MakeRandomCase(GetParam());
  OcqaEngine engine(c.inst.db, c.inst.keys);
  auto via_automaton =
      engine.SequencesEntailingViaAutomaton(c.inst.query, c.inst.answer);
  ASSERT_TRUE(via_automaton.ok()) << via_automaton.status().ToString();
  EXPECT_EQ(*via_automaton,
            CountSequencesEntailing(c.inst.db, c.inst.keys, c.inst.query,
                                    c.inst.answer))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace uocqa
