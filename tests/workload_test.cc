#include <gtest/gtest.h>

#include "hypertree/ghd_search.h"
#include "hypertree/gyo.h"
#include "ocqa/engine.h"
#include "workload/generators.h"

namespace uocqa {
namespace {

TEST(GeneratorsTest, QueryShapes) {
  ConjunctiveQuery chain = ChainQuery(4);
  EXPECT_EQ(chain.atom_count(), 4u);
  EXPECT_TRUE(chain.IsSelfJoinFree());
  EXPECT_TRUE(IsAcyclic(chain));

  ConjunctiveQuery star = StarQuery(5);
  EXPECT_TRUE(IsAcyclic(star));

  ConjunctiveQuery cycle = CycleQuery(5);
  EXPECT_FALSE(IsAcyclic(cycle));
  auto w = ComputeGhw(cycle);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->width, 2u);

  ConjunctiveQuery clique = CliqueQuery(4);
  EXPECT_EQ(clique.atom_count(), 6u);
  auto wc = ComputeGhw(clique);
  ASSERT_TRUE(wc.ok());
  EXPECT_EQ(wc->width, 2u);  // ceil(4/2)
}

TEST(GeneratorsTest, DatabaseRespectsBlockBounds) {
  Rng rng(3);
  ConjunctiveQuery q = ChainQuery(3);
  DbGenOptions options;
  options.blocks_per_relation = 5;
  options.min_block_size = 2;
  options.max_block_size = 4;
  options.domain_size = 50;  // large domain: block-key collisions unlikely
  GeneratedInstance inst = GenerateDatabaseForQuery(rng, q, options);
  BlockPartition blocks = BlockPartition::Compute(inst.db, inst.keys);
  EXPECT_EQ(blocks.block_count(), 15u);
  for (const Block& b : blocks.blocks()) {
    EXPECT_GE(b.size(), 1u);
    EXPECT_LE(b.size(), 4u);
  }
  EXPECT_FALSE(IsConsistent(inst.db, inst.keys));
}

TEST(GeneratorsTest, GeneratedInstancesHaveNontrivialRf) {
  // Across seeds, at least one instance should give 0 < RF < 1: the
  // generator exercises interesting cases, not just trivia.
  ConjunctiveQuery q = ChainQuery(2);
  bool found_fractional = false;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    DbGenOptions options;
    options.blocks_per_relation = 2;
    options.max_block_size = 2;
    options.domain_size = 3;
    GeneratedInstance inst = GenerateDatabaseForQuery(rng, q, options);
    OcqaEngine engine(inst.db, inst.keys);
    ExactRF rf = engine.ExactUr(q, {});
    double v = rf.value();
    if (v > 0.0 && v < 1.0) found_fractional = true;
  }
  EXPECT_TRUE(found_fractional);
}

TEST(GeneratorsTest, ZipfianIndicesDeterministicAndSkewed) {
  Rng a(42);
  Rng b(42);
  std::vector<size_t> draws = SampleZipfianIndices(a, 8, 2000, 1.5);
  // Bit-identical replay from the same seed: the cache benchmarks depend on
  // replaying the exact same request traffic across configurations.
  EXPECT_EQ(draws, SampleZipfianIndices(b, 8, 2000, 1.5));
  ASSERT_EQ(draws.size(), 2000u);
  std::vector<size_t> freq(8, 0);
  for (size_t r : draws) {
    ASSERT_LT(r, 8u);
    ++freq[r];
  }
  // Rank 0 carries ~48% of the Zipf(1.5) mass over 8 items vs ~2% for rank
  // 7 — with 2000 draws the ordering cannot plausibly invert.
  EXPECT_GT(freq[0], freq[7]);
  EXPECT_GT(freq[0], 2000u / 4);

  Rng c(7);
  std::vector<size_t> uniform = SampleZipfianIndices(c, 5, 100, 0.0);
  for (size_t r : uniform) ASSERT_LT(r, 5u);
}

TEST(GeneratorsTest, SkewedDatabaseDeterministicWithHotBlocks) {
  ConjunctiveQuery q = ChainQuery(3);
  SkewedDbGenOptions options;
  options.blocks_per_relation = 16;
  options.max_block_size = 6;
  options.block_skew = 1.0;
  options.domain_size = 200;  // large domain: block-key collisions unlikely
  EXPECT_EQ(ZipfianBlockSize(0, options), 6u);
  EXPECT_EQ(ZipfianBlockSize(1, options), 3u);
  EXPECT_EQ(ZipfianBlockSize(11, options), 1u);

  Rng a(5);
  GeneratedInstance inst = GenerateSkewedDatabaseForQuery(a, q, options);
  Rng b(5);
  GeneratedInstance again = GenerateSkewedDatabaseForQuery(b, q, options);
  EXPECT_EQ(inst.db, again.db);

  BlockPartition blocks = BlockPartition::Compute(inst.db, inst.keys);
  size_t hot = 0;
  size_t singleton = 0;
  for (const Block& blk : blocks.blocks()) {
    if (blk.size() >= 4) ++hot;
    if (blk.size() == 1) ++singleton;
  }
  // The histogram is skewed: a few hot blocks, a long consistent tail.
  EXPECT_GE(hot, 3u);
  EXPECT_GT(singleton, hot);
  EXPECT_FALSE(IsConsistent(inst.db, inst.keys));
}

TEST(GeneratorsTest, RandomBipartiteIsConnectedAndBipartite) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    UGraph g = RandomConnectedBipartite(rng, 3, 4, 0.3);
    EXPECT_TRUE(g.IsConnected());
    EXPECT_TRUE(g.BipartitionOrNull().has_value());
    EXPECT_EQ(g.vertex_count(), 7u);
  }
}

TEST(GeneratorsTest, RandomPos2CnfWellFormed) {
  Rng rng(5);
  Pos2Cnf f = RandomPos2Cnf(rng, 5, 7);
  EXPECT_EQ(f.clauses.size(), 7u);
  for (const auto& [a, b] : f.clauses) {
    EXPECT_LT(a, 5u);
    EXPECT_LT(b, 5u);
    EXPECT_NE(a, b);
  }
}

}  // namespace
}  // namespace uocqa
