#include <gtest/gtest.h>

#include "hypertree/ghd_search.h"
#include "hypertree/gyo.h"
#include "ocqa/engine.h"
#include "workload/generators.h"

namespace uocqa {
namespace {

TEST(GeneratorsTest, QueryShapes) {
  ConjunctiveQuery chain = ChainQuery(4);
  EXPECT_EQ(chain.atom_count(), 4u);
  EXPECT_TRUE(chain.IsSelfJoinFree());
  EXPECT_TRUE(IsAcyclic(chain));

  ConjunctiveQuery star = StarQuery(5);
  EXPECT_TRUE(IsAcyclic(star));

  ConjunctiveQuery cycle = CycleQuery(5);
  EXPECT_FALSE(IsAcyclic(cycle));
  auto w = ComputeGhw(cycle);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->width, 2u);

  ConjunctiveQuery clique = CliqueQuery(4);
  EXPECT_EQ(clique.atom_count(), 6u);
  auto wc = ComputeGhw(clique);
  ASSERT_TRUE(wc.ok());
  EXPECT_EQ(wc->width, 2u);  // ceil(4/2)
}

TEST(GeneratorsTest, DatabaseRespectsBlockBounds) {
  Rng rng(3);
  ConjunctiveQuery q = ChainQuery(3);
  DbGenOptions options;
  options.blocks_per_relation = 5;
  options.min_block_size = 2;
  options.max_block_size = 4;
  options.domain_size = 50;  // large domain: block-key collisions unlikely
  GeneratedInstance inst = GenerateDatabaseForQuery(rng, q, options);
  BlockPartition blocks = BlockPartition::Compute(inst.db, inst.keys);
  EXPECT_EQ(blocks.block_count(), 15u);
  for (const Block& b : blocks.blocks()) {
    EXPECT_GE(b.size(), 1u);
    EXPECT_LE(b.size(), 4u);
  }
  EXPECT_FALSE(IsConsistent(inst.db, inst.keys));
}

TEST(GeneratorsTest, GeneratedInstancesHaveNontrivialRf) {
  // Across seeds, at least one instance should give 0 < RF < 1: the
  // generator exercises interesting cases, not just trivia.
  ConjunctiveQuery q = ChainQuery(2);
  bool found_fractional = false;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    DbGenOptions options;
    options.blocks_per_relation = 2;
    options.max_block_size = 2;
    options.domain_size = 3;
    GeneratedInstance inst = GenerateDatabaseForQuery(rng, q, options);
    OcqaEngine engine(inst.db, inst.keys);
    ExactRF rf = engine.ExactUr(q, {});
    double v = rf.value();
    if (v > 0.0 && v < 1.0) found_fractional = true;
  }
  EXPECT_TRUE(found_fractional);
}

TEST(GeneratorsTest, RandomBipartiteIsConnectedAndBipartite) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    UGraph g = RandomConnectedBipartite(rng, 3, 4, 0.3);
    EXPECT_TRUE(g.IsConnected());
    EXPECT_TRUE(g.BipartitionOrNull().has_value());
    EXPECT_EQ(g.vertex_count(), 7u);
  }
}

TEST(GeneratorsTest, RandomPos2CnfWellFormed) {
  Rng rng(5);
  Pos2Cnf f = RandomPos2Cnf(rng, 5, 7);
  EXPECT_EQ(f.clauses.size(), 7u);
  for (const auto& [a, b] : f.clauses) {
    EXPECT_LT(a, 5u);
    EXPECT_LT(b, 5u);
    EXPECT_NE(a, b);
  }
}

}  // namespace
}  // namespace uocqa
