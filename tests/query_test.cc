#include <gtest/gtest.h>

#include "db/database.h"
#include "query/cq.h"
#include "query/eval.h"
#include "query/parser.h"

namespace uocqa {
namespace {

TEST(ParserTest, ParsesBooleanQuery) {
  auto q = ParseQuery("Ans() :- R(x,y), S(y,z)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->IsBoolean());
  EXPECT_EQ(q->atom_count(), 2u);
  EXPECT_TRUE(q->IsSelfJoinFree());
  EXPECT_EQ(q->variable_count(), 3u);
  EXPECT_EQ(q->ToString(), "Ans() :- R(x,y), S(y,z)");
}

TEST(ParserTest, ParsesAnswerVarsAndConstants) {
  auto q = ParseQuery("Ans(x, w) :- Emp(x, 'Alice'), Dept(x, w), Code(x, 7)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->answer_vars().size(), 2u);
  EXPECT_FALSE(q->IsBoolean());
  const QueryAtom& emp = q->atoms()[0];
  EXPECT_TRUE(emp.terms[0].is_var());
  EXPECT_TRUE(emp.terms[1].is_const());
  EXPECT_EQ(emp.terms[1].id, ValuePool::Intern("Alice"));
  const QueryAtom& code = q->atoms()[2];
  EXPECT_EQ(code.terms[1].id, ValuePool::Intern("7"));
}

TEST(ParserTest, SelfJoinDetected) {
  auto q = ParseQuery("Ans() :- E(x,y), E(y,z)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->IsSelfJoinFree());
}

TEST(ParserTest, RejectsUnsafeQuery) {
  EXPECT_FALSE(ParseQuery("Ans(q) :- R(x,y)").ok());
}

TEST(ParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(ParseQuery("R(x,y)").ok());
  EXPECT_FALSE(ParseQuery("Ans() :- R(x,").ok());
  EXPECT_FALSE(ParseQuery("Ans() :- R(x,'unterminated)").ok());
  EXPECT_FALSE(ParseQuery("Ans() :- R(x,y) garbage").ok());
}

TEST(ParserTest, ArityMismatchAcrossAtomsFails) {
  EXPECT_FALSE(ParseQuery("Ans() :- R(x,y), R(x)").ok());
}

TEST(ParserTest, FixedSchemaRejectsUnknownRelation) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  ParseOptions opts;
  opts.extend_schema = false;
  EXPECT_FALSE(ParseQuery("Ans() :- Unknown(x)", s, opts).ok());
  EXPECT_TRUE(ParseQuery("Ans() :- R(x,y)", s, opts).ok());
}

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s;
    s.AddRelationOrDie("E", 2);
    s.AddRelationOrDie("L", 1);
    db_ = Database(s);
    // Small directed graph: a->b, b->c, a->c, with labels on a and c.
    db_.Add("E", {"a", "b"});
    db_.Add("E", {"b", "c"});
    db_.Add("E", {"a", "c"});
    db_.Add("L", {"a"});
    db_.Add("L", {"c"});
  }
  Database db_;
};

TEST_F(EvalTest, BooleanEntailment) {
  auto q = ParseQuery("Ans() :- E(x,y), E(y,z)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(Entails(db_, *q));  // a->b->c
  auto q3 = ParseQuery("Ans() :- E(x,y), E(y,z), E(z,w), E(w,u)");
  ASSERT_TRUE(q3.ok());
  EXPECT_FALSE(Entails(db_, *q3));  // no path of length 4
}

TEST_F(EvalTest, ConstantsInAtoms) {
  auto q = ParseQuery("Ans() :- E('a', y), L(y)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(Entails(db_, *q));  // E(a,c), L(c)
  auto q2 = ParseQuery("Ans() :- E('c', y)");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(Entails(db_, *q2));
}

TEST_F(EvalTest, AnswerTupleEntailment) {
  auto q = ParseQuery("Ans(x,z) :- E(x,y), E(y,z)");
  ASSERT_TRUE(q.ok());
  QueryEvaluator eval(db_, *q);
  EXPECT_TRUE(
      eval.Entails({ValuePool::Intern("a"), ValuePool::Intern("c")}));
  EXPECT_FALSE(
      eval.Entails({ValuePool::Intern("b"), ValuePool::Intern("a")}));
}

TEST_F(EvalTest, FindHomomorphismWitness) {
  auto q = ParseQuery("Ans() :- E(x,y), E(y,z)");
  ASSERT_TRUE(q.ok());
  QueryEvaluator eval(db_, *q);
  auto hom = eval.FindHomomorphism({});
  ASSERT_TRUE(hom.has_value());
  VarId x = *q->FindVariable("x");
  VarId y = *q->FindVariable("y");
  VarId z = *q->FindVariable("z");
  // The only length-2 path is a->b->c.
  EXPECT_EQ((*hom)[x], ValuePool::Intern("a"));
  EXPECT_EQ((*hom)[y], ValuePool::Intern("b"));
  EXPECT_EQ((*hom)[z], ValuePool::Intern("c"));
}

TEST_F(EvalTest, CountHomomorphisms) {
  auto q = ParseQuery("Ans() :- E(x,y)");
  ASSERT_TRUE(q.ok());
  QueryEvaluator eval(db_, *q);
  EXPECT_EQ(eval.CountHomomorphisms({}), 3u);
  auto q2 = ParseQuery("Ans() :- E(x,y), E(x,z)");
  ASSERT_TRUE(q2.ok());
  // x=a: y,z in {b,c} -> 4; x=b: y=z=c -> 1. Total 5.
  QueryEvaluator eval2(db_, *q2);
  EXPECT_EQ(eval2.CountHomomorphisms({}), 5u);
}

TEST_F(EvalTest, AnswersEnumeration) {
  auto q = ParseQuery("Ans(x) :- E(x,y)");
  ASSERT_TRUE(q.ok());
  QueryEvaluator eval(db_, *q);
  auto answers = eval.Answers();
  EXPECT_EQ(answers.size(), 2u);  // a and b have outgoing edges
}

TEST_F(EvalTest, EmptyRelationMeansNoMatch) {
  auto q = ParseQuery("Ans() :- Missing(x)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Entails(db_, *q));
}

TEST_F(EvalTest, RepeatedAnswerVariable) {
  auto q = ParseQuery("Ans(x,x) :- E(x,x)");
  ASSERT_TRUE(q.ok());
  QueryEvaluator eval(db_, *q);
  Value a = ValuePool::Intern("a");
  Value b = ValuePool::Intern("b");
  EXPECT_FALSE(eval.Entails({a, a}));  // no self loop
  EXPECT_FALSE(eval.Entails({a, b}));  // clash on repeated variable
}

TEST(EvalCrossSchemaTest, QueryAndDatabaseSchemasReconciledByName) {
  // Query schema built independently (different relation id order).
  Schema qs;
  qs.AddRelationOrDie("B", 1);
  qs.AddRelationOrDie("A", 1);
  auto q = ParseQuery("Ans() :- A(x), B(x)", qs, ParseOptions{false});
  ASSERT_TRUE(q.ok());

  Schema ds;
  ds.AddRelationOrDie("A", 1);
  ds.AddRelationOrDie("B", 1);
  Database db(ds);
  db.Add("A", {"v"});
  db.Add("B", {"v"});
  EXPECT_TRUE(Entails(db, *q));
}

}  // namespace
}  // namespace uocqa
