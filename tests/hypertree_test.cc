#include <gtest/gtest.h>

#include "hypertree/decomposition.h"
#include "hypertree/ghd_search.h"
#include "hypertree/gyo.h"
#include "hypertree/normal_form.h"
#include "query/parser.h"

namespace uocqa {
namespace {

ConjunctiveQuery Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

// --- acyclicity / GYO -------------------------------------------------------

TEST(GyoTest, ChainIsAcyclic) {
  ConjunctiveQuery q = Parse("Ans() :- R1(x0,x1), R2(x1,x2), R3(x2,x3)");
  EXPECT_TRUE(IsAcyclic(q));
  auto jt = BuildJoinTree(q);
  ASSERT_TRUE(jt.ok()) << jt.status().ToString();
  EXPECT_EQ(jt->Width(), 1u);
  EXPECT_EQ(jt->size(), 3u);
  EXPECT_TRUE(jt->Validate(q).ok());
  EXPECT_TRUE(jt->IsComplete(q));
}

TEST(GyoTest, StarIsAcyclic) {
  ConjunctiveQuery q = Parse("Ans() :- A(c,x), B(c,y), C(c,z), D(c,w)");
  EXPECT_TRUE(IsAcyclic(q));
  auto jt = BuildJoinTree(q);
  ASSERT_TRUE(jt.ok());
  EXPECT_EQ(jt->Width(), 1u);
}

TEST(GyoTest, TriangleIsCyclic) {
  ConjunctiveQuery q = Parse("Ans() :- R(x,y), S(y,z), T(z,x)");
  EXPECT_FALSE(IsAcyclic(q));
  EXPECT_FALSE(BuildJoinTree(q).ok());
}

TEST(GyoTest, CycleOfLength4IsCyclic) {
  ConjunctiveQuery q = Parse("Ans() :- A(x,y), B(y,z), C(z,w), D(w,x)");
  EXPECT_FALSE(IsAcyclic(q));
}

TEST(GyoTest, AnswerVariablesDoNotCreateCycles) {
  // With x,y,z as answer variables the residual hypergraph over existential
  // variables is empty, so the query counts as acyclic.
  ConjunctiveQuery q = Parse("Ans(x,y,z) :- R(x,y), S(y,z), T(z,x)");
  EXPECT_TRUE(IsAcyclic(q));
}

TEST(GyoTest, SingleAtom) {
  ConjunctiveQuery q = Parse("Ans() :- R(x,y)");
  auto jt = BuildJoinTree(q);
  ASSERT_TRUE(jt.ok());
  EXPECT_EQ(jt->size(), 1u);
  EXPECT_TRUE(jt->IsStronglyComplete(q));
}

// --- GHD search -------------------------------------------------------------

TEST(GhdSearchTest, AcyclicHasWidth1) {
  ConjunctiveQuery q = Parse("Ans() :- R1(x0,x1), R2(x1,x2), R3(x2,x3)");
  auto r = ComputeGhw(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->width, 1u);
  EXPECT_TRUE(r->decomposition.Validate(q).ok());
}

TEST(GhdSearchTest, TriangleHasWidth2) {
  ConjunctiveQuery q = Parse("Ans() :- R(x,y), S(y,z), T(z,x)");
  auto r = ComputeGhw(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->width, 2u);
  EXPECT_TRUE(r->decomposition.Validate(q).ok());
}

TEST(GhdSearchTest, Cycle6HasWidth2) {
  ConjunctiveQuery q = Parse(
      "Ans() :- E1(x1,x2), E2(x2,x3), E3(x3,x4), E4(x4,x5), E5(x5,x6), "
      "E6(x6,x1)");
  auto r = ComputeGhw(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->width, 2u);
}

TEST(GhdSearchTest, CliqueWidths) {
  // ghw(K_n) = ceil(n/2) for binary-edge cliques.
  ConjunctiveQuery k4 = Parse(
      "Ans() :- C12(w1,w2), C13(w1,w3), C14(w1,w4), C23(w2,w3), "
      "C24(w2,w4), C34(w3,w4)");
  auto r4 = ComputeGhw(k4);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4->width, 2u);

  ConjunctiveQuery k5 = Parse(
      "Ans() :- C12(w1,w2), C13(w1,w3), C14(w1,w4), C15(w1,w5), "
      "C23(w2,w3), C24(w2,w4), C25(w2,w5), C34(w3,w4), C35(w3,w5), "
      "C45(w4,w5)");
  auto r5 = ComputeGhw(k5);
  ASSERT_TRUE(r5.ok());
  EXPECT_EQ(r5->width, 3u);
}

TEST(GhdSearchTest, Paper51QueryHasWidth2) {
  // Q: Ans() :- P(x,y), S(y,z), T(z,x), U(y,w) — paper §5.1, width 2.
  ConjunctiveQuery q = Parse("Ans() :- P(x,y), S(y,z), T(z,x), U(y,w)");
  auto r = ComputeGhw(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->width, 2u);
}

TEST(GhdSearchTest, DecomposeQueryPrefersJoinTree) {
  ConjunctiveQuery q = Parse("Ans() :- R(x,y), S(y,z)");
  auto h = DecomposeQuery(q);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->Width(), 1u);
}

// --- decomposition structure ------------------------------------------------

class Paper51Fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    q_ = Parse("Ans() :- P(x,y), S(y,z), T(z,x), U(y,w)");
    // Manual decomposition from the paper:
    //   root: chi={x,y,z}, lambda={P(x,y), S(y,z)}
    //   child1: chi={x,z}, lambda={T(z,x)}
    //   child2: chi={y,w}, lambda={U(y,w)}
    VarId x = *q_.FindVariable("x");
    VarId y = *q_.FindVariable("y");
    VarId z = *q_.FindVariable("z");
    VarId w = *q_.FindVariable("w");
    DecompVertex root = h_.AddNode({x, y, z}, {0, 1}, kInvalidVertex);
    h_.AddNode({x, z}, {2}, root);
    h_.AddNode({y, w}, {3}, root);
  }
  ConjunctiveQuery q_;
  HypertreeDecomposition h_;
};

TEST_F(Paper51Fixture, ValidatesWithWidth2) {
  EXPECT_TRUE(h_.Validate(q_).ok()) << h_.Validate(q_).ToString();
  EXPECT_EQ(h_.Width(), 2u);
}

TEST_F(Paper51Fixture, CoveringVertices) {
  EXPECT_TRUE(h_.IsComplete(q_));
  EXPECT_TRUE(h_.IsStronglyComplete(q_));
  EXPECT_EQ(h_.MinimalCoveringVertex(q_, 0), 0u);  // P at root
  EXPECT_EQ(h_.MinimalCoveringVertex(q_, 1), 0u);  // S at root
  EXPECT_EQ(h_.MinimalCoveringVertex(q_, 2), 1u);  // T at child1
  EXPECT_EQ(h_.MinimalCoveringVertex(q_, 3), 2u);  // U at child2
}

TEST_F(Paper51Fixture, OrderIsBreadthFirst) {
  auto order = h_.VerticesInOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], h_.root());
  EXPECT_EQ(h_.Depth(order[0]), 0u);
  EXPECT_EQ(h_.Depth(order[1]), 1u);
  EXPECT_EQ(h_.OrderRank(order[2]), 2u);
}

TEST_F(Paper51Fixture, ValidateRejectsBrokenDecompositions) {
  // Bag variable not covered by lambda.
  HypertreeDecomposition bad;
  VarId x = *q_.FindVariable("x");
  VarId w = *q_.FindVariable("w");
  bad.AddNode({x, w}, {0}, kInvalidVertex);  // w not in P(x,y)
  EXPECT_FALSE(bad.Validate(q_).ok());

  // Missing atom coverage.
  HypertreeDecomposition partial;
  VarId y = *q_.FindVariable("y");
  partial.AddNode({x, y}, {0}, kInvalidVertex);
  EXPECT_FALSE(partial.Validate(q_).ok());
}

TEST(DecompositionTest, ConnectednessViolationDetected) {
  ConjunctiveQuery q = Parse("Ans() :- R(x,y), S(y,z), T(x,w)");
  VarId x = *q.FindVariable("x");
  VarId y = *q.FindVariable("y");
  VarId z = *q.FindVariable("z");
  VarId w = *q.FindVariable("w");
  // x appears at root and at grandchild but not at the middle vertex.
  HypertreeDecomposition h;
  DecompVertex root = h.AddNode({x, y}, {0}, kInvalidVertex);
  DecompVertex mid = h.AddNode({y, z}, {1}, root);
  h.AddNode({x, w}, {2}, mid);
  EXPECT_FALSE(h.Validate(q).ok());
}

// --- completion and normal form ---------------------------------------------

TEST(CompletionTest, AddsCoveringVerticesWithoutWidthIncrease) {
  ConjunctiveQuery q = Parse("Ans() :- R(x,y), S(y,z)");
  VarId x = *q.FindVariable("x");
  VarId y = *q.FindVariable("y");
  VarId z = *q.FindVariable("z");
  // A width-2 single-node decomposition that covers no atom *with* lambda
  // membership for S only.
  HypertreeDecomposition h;
  h.AddNode({x, y, z}, {0, 1}, kInvalidVertex);
  ASSERT_TRUE(h.Validate(q).ok());
  ASSERT_TRUE(h.IsComplete(q));  // single bag covers both atoms

  // Drop S from lambda: then S has no covering vertex... construct directly.
  HypertreeDecomposition h2;
  h2.AddNode({x, y}, {0}, kInvalidVertex);
  DecompVertex v = h2.AddNode({y, z}, {1}, 0);
  (void)v;
  ASSERT_TRUE(h2.Validate(q).ok());
  auto completed = CompleteDecomposition(q, h2);
  ASSERT_TRUE(completed.ok());
  EXPECT_TRUE(completed->IsComplete(q));
  EXPECT_LE(completed->Width(), 2u);
}

class NormalFormFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    q_ = Parse("Ans() :- P(x,y), S(y,z)");
    Schema s = q_.schema();
    s.AddRelationOrDie("Extra", 2);  // relation in D but not in Q
    db_ = Database(s);
    db_.Add("P", {"1", "a"});
    db_.Add("P", {"1", "b"});
    db_.Add("S", {"a", "c"});
    db_.Add("Extra", {"7", "8"});
    db_.Add("Extra", {"7", "9"});
    keys_.SetKeyOrDie(s.Find("P"), {0});
    keys_.SetKeyOrDie(s.Find("S"), {0});
    keys_.SetKeyOrDie(s.Find("Extra"), {0});
    auto h = BuildJoinTree(q_);
    ASSERT_TRUE(h.ok());
    h_ = *h;
  }
  ConjunctiveQuery q_;
  Database db_;
  KeySet keys_;
  HypertreeDecomposition h_;
};

TEST_F(NormalFormFixture, ProducesNormalForm) {
  auto nf = ToNormalForm(db_, q_, h_);
  ASSERT_TRUE(nf.ok()) << nf.status().ToString();
  EXPECT_TRUE(IsInNormalForm(nf->db, nf->query, nf->decomposition));
  EXPECT_TRUE(nf->decomposition.Validate(nf->query).ok());
  EXPECT_TRUE(nf->decomposition.IsUniform(2));
  EXPECT_TRUE(nf->decomposition.IsStronglyComplete(nf->query));
  // Width grows by exactly one.
  EXPECT_EQ(nf->decomposition.Width(), h_.Width() + 1);
  // The original instance was *not* in normal form.
  EXPECT_FALSE(IsInNormalForm(db_, q_, h_));
}

TEST_F(NormalFormFixture, QueryStaysSelfJoinFree) {
  auto nf = ToNormalForm(db_, q_, h_);
  ASSERT_TRUE(nf.ok());
  EXPECT_TRUE(nf->query.IsSelfJoinFree());
  EXPECT_TRUE(nf->query.IsBoolean());
  // Original atoms are preserved as a prefix.
  EXPECT_GE(nf->query.atom_count(), q_.atom_count());
  for (size_t i = 0; i < q_.atom_count(); ++i) {
    EXPECT_EQ(nf->query.atoms()[i].relation, q_.atoms()[i].relation);
  }
}

TEST_F(NormalFormFixture, DatabaseKeepsOriginalFactsAndAddsPads) {
  auto nf = ToNormalForm(db_, q_, h_);
  ASSERT_TRUE(nf.ok());
  // All original facts present.
  for (const Fact& f : db_.facts()) {
    RelationId nr = nf->db.schema().Find(db_.schema().name(f.relation));
    ASSERT_NE(nr, kInvalidRelation);
    EXPECT_TRUE(nf->db.Contains(Fact(nr, f.args)));
  }
  // Pad facts do not change consistency status of original relations.
  EXPECT_GT(nf->db.size(), db_.size());
}

TEST(NormalFormNoMissingRelations, WorksWithoutPChain) {
  ConjunctiveQuery q = Parse("Ans() :- P(x,y), S(y,z)");
  Database db(q.schema());
  db.Add("P", {"1", "a"});
  db.Add("S", {"a", "c"});
  auto h = BuildJoinTree(q);
  ASSERT_TRUE(h.ok());
  auto nf = ToNormalForm(db, q, *h);
  ASSERT_TRUE(nf.ok()) << nf.status().ToString();
  EXPECT_TRUE(IsInNormalForm(nf->db, nf->query, nf->decomposition));
}

TEST(NormalFormWithAnswerVars, PreservesAnswerVariables) {
  ConjunctiveQuery q = Parse("Ans(x) :- P(x,y), S(y,z)");
  Database db(q.schema());
  db.Add("P", {"1", "a"});
  db.Add("S", {"a", "c"});
  auto h = BuildJoinTree(q);
  ASSERT_TRUE(h.ok());
  auto nf = ToNormalForm(db, q, *h);
  ASSERT_TRUE(nf.ok()) << nf.status().ToString();
  EXPECT_EQ(nf->query.answer_vars(), q.answer_vars());
  EXPECT_TRUE(IsInNormalForm(nf->db, nf->query, nf->decomposition));
}

}  // namespace
}  // namespace uocqa
