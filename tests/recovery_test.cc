// Crash-recovery differential tests and overload-control tests.
//
// The durability claim under test: whatever prefix of the write-ahead log
// survives a crash, recovery reconstructs exactly the state that prefix
// describes — same epoch chain, same fact-chain fingerprint, same pending
// delta — no matter where the crash landed. "Where" is exhaustive: every
// failpoint site on the write path, fired at every hit index a workload
// produces, plus randomized byte truncations of the surviving log. The
// oracle is direct application: scan the surviving log, apply its records
// to a fresh WAL-less instance by hand, and demand the recovered instance
// match it bit-for-bit (fingerprints are the paper-facing identity of an
// instance, so fingerprint equality is fact-set equality).
//
// The overload half pins the serving-path guarantees: deadlines and
// shedding answer structured errors (`err timeout`, `err busy`) and never
// poison the result cache; oversized request lines are rejected without
// buffering the hostile payload.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "base/failpoint.h"
#include "base/io.h"
#include "base/rng.h"
#include "db/textio.h"
#include "service/live.h"
#include "service/request.h"
#include "service/service.h"
#include "service/wal.h"

namespace uocqa {
namespace {

constexpr const char* kInstance = R"(
key Emp = 1
Emp(e1, hw)
Emp(e1, sw)
Emp(e2, hw)
key Dept = 1
Dept(hw, alice)
Dept(hw, bob)
Dept(sw, carol)
)";

LiveInstance MakeLive() {
  auto inst = ParseInstanceText(kInstance);
  EXPECT_TRUE(inst.ok());
  return LiveInstance(std::move(inst->db), inst->keys);
}

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir();
  if (!path.empty() && path.back() != '/') path += '/';
  return path + name;
}

// One ingest workload operation.
struct Op {
  bool snapshot = false;           // true: begin_snapshot; false: add_fact
  std::string relation;
  std::vector<std::string> constants;
};

// A randomized ingest stream over the fixed base: new facts, duplicate
// facts, and snapshot points interleaved, seeded for reproducibility.
std::vector<Op> MakeWorkload(uint64_t seed) {
  Rng rng = Rng::Stream(/*root_seed=*/0x3a1u, seed);
  std::vector<Op> ops;
  size_t next_id = 10;
  for (size_t i = 0; i < 24; ++i) {
    uint64_t roll = rng.NextU64() % 10;
    Op op;
    if (roll < 2) {
      op.snapshot = true;
    } else if (roll < 4) {
      // Duplicate of a base fact: exercises the duplicate-only barrier.
      op.relation = "Emp";
      op.constants = {"e1", "hw"};
    } else if (roll < 7) {
      op.relation = "Emp";
      op.constants = {"e" + std::to_string(next_id++), "hw"};
    } else {
      op.relation = "Dept";
      op.constants = {"d" + std::to_string(next_id++), "dave"};
    }
    ops.push_back(std::move(op));
  }
  Op final_snapshot;
  final_snapshot.snapshot = true;
  ops.push_back(std::move(final_snapshot));
  return ops;
}

// Applies `ops` to `live`, tolerating failures (a fired failpoint kills the
// WAL writer and later ops fail — exactly a crash mid-workload).
void RunWorkload(LiveInstance& live, const std::vector<Op>& ops) {
  for (const Op& op : ops) {
    if (op.snapshot) {
      Status wal_status;
      live.Snapshot(&wal_status);
    } else {
      (void)live.Add(op.relation, op.constants);
    }
  }
}

// The observable identity of a live instance for the differential checks.
struct LiveState {
  uint64_t epoch;
  uint64_t fingerprint;
  size_t facts;
  size_t pending;

  bool operator==(const LiveState& other) const {
    return epoch == other.epoch && fingerprint == other.fingerprint &&
           facts == other.facts && pending == other.pending;
  }
};

LiveState StateOf(const LiveInstance& live) {
  std::shared_ptr<const InstanceSnapshot> snap = live.Current();
  return LiveState{snap->epoch, snap->fingerprint, snap->db->size(),
                   live.pending()};
}

std::string Describe(const LiveState& s) {
  std::ostringstream out;
  out << "epoch=" << s.epoch << " fingerprint=" << s.fingerprint
      << " facts=" << s.facts << " pending=" << s.pending;
  return out.str();
}

// The oracle: what the surviving log *says* the state should be — its
// records applied directly (no WAL) to a fresh base instance.
LiveState DirectApplication(const std::string& wal_path) {
  auto scan = ScanWal(wal_path);
  EXPECT_TRUE(scan.ok());
  LiveInstance oracle = MakeLive();
  for (const WalRecord& record : scan->records) {
    if (record.type == WalRecord::Type::kAddFact) {
      EXPECT_TRUE(oracle.Add(record.relation, record.constants).ok());
    } else {
      oracle.Snapshot();
    }
  }
  return StateOf(oracle);
}

// Recovers the log into a fresh base and checks it against the oracle.
// Also checks recovery is idempotent: a second recovery of the same log
// (now truncated to its valid prefix) reproduces the same state.
void ExpectRecoveryMatchesLog(const std::string& wal_path,
                              const std::string& context) {
  SCOPED_TRACE(context);
  const LiveState expected = DirectApplication(wal_path);

  LiveInstance recovered = MakeLive();
  auto info = RecoverAndAttachWal(wal_path, WalSyncPolicy::kNone, &recovered,
                                  nullptr);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(StateOf(recovered) == expected)
      << "recovered: " << Describe(StateOf(recovered))
      << "\n  expected: " << Describe(expected);

  LiveInstance again = MakeLive();
  auto info2 =
      RecoverAndAttachWal(wal_path, WalSyncPolicy::kNone, &again, nullptr);
  ASSERT_TRUE(info2.ok()) << info2.status().ToString();
  EXPECT_EQ(info2->truncated_bytes, 0u);  // first recovery truncated the tail
  EXPECT_TRUE(StateOf(again) == StateOf(recovered))
      << "second recovery diverged: " << Describe(StateOf(again)) << " vs "
      << Describe(StateOf(recovered));
}

class RecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

// --- the differential: clean shutdown --------------------------------------

TEST_F(RecoveryTest, CleanLogsRecoverToTheLiveState) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string path =
        TempPath("rec_clean_" + std::to_string(seed) + ".wal");
    ASSERT_TRUE(RemoveFileIfExists(path).ok());

    LiveInstance live = MakeLive();
    ASSERT_TRUE(
        RecoverAndAttachWal(path, WalSyncPolicy::kBatch, &live, nullptr)
            .ok());
    RunWorkload(live, MakeWorkload(seed));
    ASSERT_TRUE(live.SyncWal().ok());

    // The log must describe exactly the live state...
    const LiveState expected = DirectApplication(path);
    EXPECT_TRUE(StateOf(live) == expected)
        << "live: " << Describe(StateOf(live))
        << "\n  log: " << Describe(expected);
    // ...and recovery must reconstruct it (twice).
    ExpectRecoveryMatchesLog(path, "clean seed=" + std::to_string(seed));
  }
}

// --- the differential: crash at every failpoint hit ------------------------

// For each write-path failpoint: run the workload once to count how often
// the site is evaluated, then re-run it once per hit index with the site
// armed to fire there. Whatever log survives each injected crash must
// recover to exactly the state it describes.
TEST_F(RecoveryTest, EveryInjectedCrashPointRecoversToTheSurvivingPrefix) {
  const std::vector<Op> ops = MakeWorkload(/*seed=*/3);
  const char* kSites[] = {"wal.append.drop", "wal.append.partial", "wal.sync",
                          "live.snapshot.publish"};

  for (const char* site : kSites) {
    // Hit census: one clean run, counting evaluations of this site.
    failpoint::ResetHits(site);
    {
      const std::string path = TempPath("rec_census.wal");
      ASSERT_TRUE(RemoveFileIfExists(path).ok());
      LiveInstance live = MakeLive();
      ASSERT_TRUE(
          RecoverAndAttachWal(path, WalSyncPolicy::kEvery, &live, nullptr)
              .ok());
      RunWorkload(live, ops);
    }
    const uint64_t hits = failpoint::Hits(site);
    ASSERT_GT(hits, 0u) << site << " was never evaluated by the workload";

    for (uint64_t hit = 1; hit <= hits; ++hit) {
      const std::string path = TempPath("rec_crash.wal");
      ASSERT_TRUE(RemoveFileIfExists(path).ok());
      LiveInstance live = MakeLive();
      ASSERT_TRUE(
          RecoverAndAttachWal(path, WalSyncPolicy::kEvery, &live, nullptr)
              .ok());
      failpoint::Arm(site, hit);
      RunWorkload(live, ops);
      failpoint::Disarm(site);

      ExpectRecoveryMatchesLog(
          path, std::string(site) + " hit=" + std::to_string(hit));
    }
  }
}

// --- the differential: random byte truncations -----------------------------

TEST_F(RecoveryTest, RandomTruncationsRecoverToTheSurvivingPrefix) {
  const std::string src = TempPath("rec_trunc_src.wal");
  ASSERT_TRUE(RemoveFileIfExists(src).ok());
  LiveInstance live = MakeLive();
  ASSERT_TRUE(
      RecoverAndAttachWal(src, WalSyncPolicy::kNone, &live, nullptr).ok());
  RunWorkload(live, MakeWorkload(/*seed=*/5));
  ASSERT_TRUE(live.SyncWal().ok());

  auto bytes = ReadFileToString(src);
  ASSERT_TRUE(bytes.ok());
  const size_t header_size = EncodeWalHeader().size();
  ASSERT_GT(bytes->size(), header_size + 1);

  Rng rng = Rng::Stream(/*root_seed=*/0x7au, 1);
  const std::string path = TempPath("rec_trunc.wal");
  for (int trial = 0; trial < 40; ++trial) {
    const size_t cut =
        header_size + rng.NextU64() % (bytes->size() - header_size + 1);
    ASSERT_TRUE(RemoveFileIfExists(path).ok());
    {
      auto file = WritableFile::Open(path, /*resume_at=*/0);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE(
          (*file)->Append(std::string_view(*bytes).substr(0, cut)).ok());
    }
    ExpectRecoveryMatchesLog(path, "cut=" + std::to_string(cut));
  }
}

// --- the publish failpoint: the log is the authority -----------------------

// The snapshot-publish failpoint fires *after* the barrier is durable but
// *before* the epoch is published: the crashed process never served the new
// epoch, but recovery must still replay past the barrier — the log, not the
// dead process's memory, is the authority.
TEST_F(RecoveryTest, BarrierDurableButUnpublishedReplaysForward) {
  const std::string path = TempPath("rec_publish.wal");
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
  LiveInstance live = MakeLive();
  ASSERT_TRUE(
      RecoverAndAttachWal(path, WalSyncPolicy::kEvery, &live, nullptr).ok());

  ASSERT_TRUE(live.Add("Emp", {"e9", "ops"}).ok());
  failpoint::Arm("live.snapshot.publish");
  Status wal_status;
  std::shared_ptr<const InstanceSnapshot> snap = live.Snapshot(&wal_status);
  EXPECT_FALSE(wal_status.ok());
  EXPECT_EQ(snap->epoch, 0u);  // nothing was published...

  LiveInstance recovered = MakeLive();
  ASSERT_TRUE(
      RecoverAndAttachWal(path, WalSyncPolicy::kEvery, &recovered, nullptr)
          .ok());
  EXPECT_EQ(recovered.Current()->epoch, 1u);  // ...but the barrier is law
  EXPECT_EQ(recovered.Current()->db->size(), 7u);
  EXPECT_EQ(recovered.pending(), 0u);
}

// --- overload control: deadlines -------------------------------------------

Request QueryRequest(const std::string& query) {
  Request out;
  out.query_text = query;
  out.mode = RequestMode::kExact;
  return out;
}

TEST_F(RecoveryTest, TimedOutRequestsAnswerErrTimeoutAndNeverEnterTheCache) {
  LiveInstance live = MakeLive();
  QueryService service(live);

  Request query = QueryRequest("Ans() :- Emp(x, y), Dept(y, z)");
  query.timeout_ms = 1;
  failpoint::Arm("service.deadline");
  ServiceResponse timed_out = service.Execute(query);
  EXPECT_EQ(timed_out.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(timed_out.payload.empty());
  EXPECT_NE(FormatResponseLine(1, timed_out).find(" err timeout "),
            std::string::npos);

  // The same query without a deadline must be a cache MISS: the timed-out
  // attempt stored nothing (a poisoned entry would replay a partial or
  // empty payload forever).
  query.timeout_ms = 0;
  ServiceResponse full = service.Execute(query);
  ASSERT_TRUE(full.status.ok());
  EXPECT_FALSE(full.cache_hit);
  EXPECT_FALSE(full.payload.empty());

  // And a deadline that never expires changes nothing: same payload bytes,
  // now a hit (deadlines are not part of the cache key).
  query.timeout_ms = 60000;
  ServiceResponse relaxed = service.Execute(query);
  ASSERT_TRUE(relaxed.status.ok());
  EXPECT_TRUE(relaxed.cache_hit);
  EXPECT_EQ(relaxed.payload, full.payload);
}

TEST_F(RecoveryTest, DroppedCacheInsertsAreMissesNotCorruption) {
  LiveInstance live = MakeLive();
  QueryService service(live);
  Request query = QueryRequest("Ans() :- Emp(x, y)");

  failpoint::Arm("service.result_cache.insert");
  ServiceResponse first = service.Execute(query);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);

  ServiceResponse second = service.Execute(query);
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(second.cache_hit);  // the insert was dropped, so: miss again
  EXPECT_EQ(second.payload, first.payload);

  ServiceResponse third = service.Execute(query);
  EXPECT_TRUE(third.cache_hit);
  EXPECT_EQ(third.payload, first.payload);
}

// --- overload control: load shedding ---------------------------------------

TEST_F(RecoveryTest, SheddingIsPositionalDeterministicAndCacheClean) {
  LiveInstance live = MakeLive();
  ServiceOptions options;
  options.max_queue = 2;
  QueryService service(live, options);

  const std::vector<Request> batch = {
      QueryRequest("Ans() :- Emp(x, y)"),
      QueryRequest("Ans() :- Dept(x, y)"),
      QueryRequest("Ans() :- Emp(x, y), Dept(y, z)"),
      QueryRequest("Ans() :- Emp(x, y), Emp(x, z)"),
      QueryRequest("Ans() :- Dept(x, y), Emp(z, x)"),
  };

  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::vector<ServiceResponse> responses =
        service.ExecuteBatch(batch, threads);
    ASSERT_EQ(responses.size(), batch.size());
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_TRUE(responses[i].status.ok()) << "i=" << i;
    }
    for (size_t i = 2; i < responses.size(); ++i) {
      EXPECT_EQ(responses[i].status.code(), StatusCode::kUnavailable)
          << "i=" << i;
      EXPECT_TRUE(responses[i].payload.empty());
      EXPECT_NE(FormatResponseLine(i + 1, responses[i]).find(" err busy "),
                std::string::npos);
    }
  }

  // A shed request never reached the cache: served alone it is a miss.
  ServiceResponse solo = service.Execute(batch[4]);
  ASSERT_TRUE(solo.status.ok());
  EXPECT_FALSE(solo.cache_hit);

  // Barriers reset the span: with a begin_snapshot between queries, each
  // span stays under the limit and nothing is shed.
  std::vector<Request> spaced;
  Request barrier;
  barrier.verb = RequestVerb::kBeginSnapshot;
  spaced.push_back(batch[0]);
  spaced.push_back(batch[1]);
  spaced.push_back(barrier);
  spaced.push_back(batch[2]);
  spaced.push_back(batch[3]);
  std::vector<ServiceResponse> responses = service.ExecuteBatch(spaced, 2);
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].status.ok()) << "i=" << i;
  }
}

// --- hostile input: oversized request lines --------------------------------

TEST_F(RecoveryTest, OversizedLinesAreRejectedWithoutBuffering) {
  // A multi-megabyte line must parse to `err oversized`...
  std::string huge = "query='Ans() :- Emp(x, y)' answer=";
  huge.append(3u << 20, 'e');
  auto parsed = ParseRequestLine(huge);
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  ServiceResponse response;
  response.status = parsed.status();
  EXPECT_NE(FormatResponseLine(1, response).find(" err oversized "),
            std::string::npos);

  // ...and the shared line reader must not buffer it whole: it keeps just
  // enough to prove the line oversized, drains the rest, and the following
  // line survives intact.
  std::istringstream in(huge + "\nepoch\n");
  std::vector<std::string> lines = ReadRequestLines(in);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_LE(lines[0].size(), kMaxRequestLineBytes + 1);
  EXPECT_FALSE(ParseRequestLine(lines[0]).ok());
  EXPECT_EQ(lines[1], "epoch");
}

TEST_F(RecoveryTest, TooManyFieldsIsOversized) {
  std::string line = "query='Ans() :- Emp(x, y)'";
  for (size_t i = 0; i < kMaxRequestFields; ++i) line += " seed=1";
  auto parsed = ParseRequestLine(line);
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace uocqa
