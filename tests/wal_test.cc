// Unit tests for the write-ahead log (service/wal.h) and the I/O
// primitives under it (base/io.h): frame encode/scan round-trips across
// every sync policy, CRC rejection of every single-bit flip, torn-tail
// truncation at every byte boundary, resume-after-truncation appends, the
// writer's fault-injection sites, and replay verification against the
// wrong base instance. The full crash-recovery differential lives in
// tests/recovery_test.cc; this file pins the log format itself.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/failpoint.h"
#include "base/io.h"
#include "base/status.h"
#include "db/textio.h"
#include "service/live.h"
#include "service/wal.h"

namespace uocqa {
namespace {

constexpr const char* kInstance = R"(
key Emp = 1
Emp(e1, hw)
Emp(e1, sw)
Emp(e2, hw)
key Dept = 1
Dept(hw, alice)
Dept(sw, carol)
)";

LiveInstance MakeLive() {
  auto inst = ParseInstanceText(kInstance);
  EXPECT_TRUE(inst.ok());
  return LiveInstance(std::move(inst->db), inst->keys);
}

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir();
  if (!path.empty() && path.back() != '/') path += '/';
  return path + name;
}

WalRecord AddFactRecord(const std::string& rel,
                        std::vector<std::string> constants) {
  WalRecord record;
  record.type = WalRecord::Type::kAddFact;
  record.relation = rel;
  record.constants = std::move(constants);
  return record;
}

WalRecord BarrierRecord(uint64_t epoch, uint64_t facts, uint64_t fingerprint) {
  WalRecord record;
  record.type = WalRecord::Type::kBarrier;
  record.epoch = epoch;
  record.facts = facts;
  record.fingerprint = fingerprint;
  return record;
}

void ExpectSameRecord(const WalRecord& got, const WalRecord& want) {
  ASSERT_EQ(got.type, want.type);
  if (want.type == WalRecord::Type::kAddFact) {
    EXPECT_EQ(got.relation, want.relation);
    EXPECT_EQ(got.constants, want.constants);
  } else {
    EXPECT_EQ(got.epoch, want.epoch);
    EXPECT_EQ(got.facts, want.facts);
    EXPECT_EQ(got.fingerprint, want.fingerprint);
  }
}

// Writes `records` to a fresh log at `path` under `policy` and returns the
// raw file bytes.
std::string WriteLog(const std::string& path,
                     const std::vector<WalRecord>& records,
                     WalSyncPolicy policy) {
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
  auto writer = WalWriter::Open(path, policy, /*resume_at=*/0);
  EXPECT_TRUE(writer.ok());
  for (const WalRecord& record : records) {
    EXPECT_TRUE((*writer)->Append(record).ok());
  }
  EXPECT_TRUE((*writer)->BarrierSync().ok());
  writer->reset();  // close before reading back
  auto bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

void OverwriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::vector<WalRecord> SampleRecords() {
  return {
      AddFactRecord("Emp", {"e9", "ops"}),
      AddFactRecord("Dept", {"ops", "dave"}),
      BarrierRecord(/*epoch=*/1, /*facts=*/7, /*fingerprint=*/0x1234abcdu),
      AddFactRecord("Emp", {"e10", "ops"}),
      BarrierRecord(/*epoch=*/2, /*facts=*/8, /*fingerprint=*/0x9876fedcu),
  };
}

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

// --- CRC-32 ----------------------------------------------------------------

TEST_F(WalTest, Crc32MatchesKnownVectors) {
  // The IEEE check value: CRC-32 of "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Incremental == one-shot.
  uint32_t part = Crc32(std::string_view("12345"));
  EXPECT_EQ(Crc32(std::string_view("6789"), part), 0xCBF43926u);
}

// --- round trips -----------------------------------------------------------

TEST_F(WalTest, RoundTripsAcrossEverySyncPolicy) {
  const std::vector<WalRecord> records = SampleRecords();
  for (WalSyncPolicy policy :
       {WalSyncPolicy::kNone, WalSyncPolicy::kBatch, WalSyncPolicy::kEvery}) {
    SCOPED_TRACE(WalSyncPolicyName(policy));
    const std::string path =
        TempPath(std::string("wal_roundtrip_") + WalSyncPolicyName(policy));
    WriteLog(path, records, policy);

    auto scan = ScanWal(path);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(scan->truncated_bytes, 0u);
    auto size = FileSize(path);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(scan->valid_bytes, *size);
    ASSERT_EQ(scan->records.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      SCOPED_TRACE("record=" + std::to_string(i));
      ExpectSameRecord(scan->records[i], records[i]);
    }
  }
}

TEST_F(WalTest, ParseWalSyncPolicyAcceptsFlagValuesOnly) {
  ASSERT_TRUE(ParseWalSyncPolicy("none").ok());
  EXPECT_EQ(*ParseWalSyncPolicy("none"), WalSyncPolicy::kNone);
  EXPECT_EQ(*ParseWalSyncPolicy("batch"), WalSyncPolicy::kBatch);
  EXPECT_EQ(*ParseWalSyncPolicy("every"), WalSyncPolicy::kEvery);
  EXPECT_FALSE(ParseWalSyncPolicy("always").ok());
  EXPECT_FALSE(ParseWalSyncPolicy("").ok());
}

TEST_F(WalTest, EmptyAndMissingFiles) {
  const std::string path = TempPath("wal_missing");
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
  auto scan = ScanWal(path);
  EXPECT_EQ(scan.status().code(), StatusCode::kNotFound);

  // A freshly opened log (header only) scans as zero records.
  auto writer = WalWriter::Open(path, WalSyncPolicy::kNone, /*resume_at=*/0);
  ASSERT_TRUE(writer.ok());
  writer->reset();
  scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->truncated_bytes, 0u);
}

TEST_F(WalTest, RejectsForeignAndCorruptHeaders) {
  const std::string path = TempPath("wal_badheader");
  OverwriteFile(path, "this is definitely not a uocqa WAL header....");
  EXPECT_EQ(ScanWal(path).status().code(), StatusCode::kInvalidArgument);

  // A valid header with one flipped bit fails the header CRC.
  std::string header = EncodeWalHeader();
  header[2] = static_cast<char>(header[2] ^ 0x10);
  OverwriteFile(path, header);
  EXPECT_EQ(ScanWal(path).status().code(), StatusCode::kInvalidArgument);

  // A torn *header* (crash during the very first write) is recoverable as
  // an empty log, not a foreign file.
  OverwriteFile(path, EncodeWalHeader().substr(0, 7));
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->valid_bytes, 0u);
  EXPECT_EQ(scan->truncated_bytes, 7u);
}

// --- corruption ------------------------------------------------------------

// Every single-bit flip in the record region must be detected: the scan
// keeps only records before the flipped one, never a record with altered
// content. (CRC-32 detects all single-bit errors, and each record's CRC
// covers its length field, type, and payload.)
TEST_F(WalTest, EverySingleBitFlipIsRejected) {
  const std::vector<WalRecord> records = SampleRecords();
  const std::string path = TempPath("wal_bitflip_src");
  const std::string bytes = WriteLog(path, records, WalSyncPolicy::kNone);
  const size_t header_size = EncodeWalHeader().size();
  ASSERT_GT(bytes.size(), header_size);

  // Offsets where each record starts, to map a flip to its victim.
  std::vector<size_t> starts;
  size_t offset = header_size;
  for (const WalRecord& record : records) {
    starts.push_back(offset);
    offset += EncodeWalRecord(record).size();
  }
  ASSERT_EQ(offset, bytes.size());

  const std::string flip_path = TempPath("wal_bitflip");
  for (size_t byte = header_size; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      OverwriteFile(flip_path, corrupt);
      auto scan = ScanWal(flip_path);
      ASSERT_TRUE(scan.ok())
          << "byte=" << byte << " bit=" << bit << ": "
          << scan.status().ToString();
      // The record containing the flipped byte:
      size_t victim = 0;
      while (victim + 1 < starts.size() && starts[victim + 1] <= byte) {
        ++victim;
      }
      ASSERT_LE(scan->records.size(), victim)
          << "byte=" << byte << " bit=" << bit
          << ": a corrupt record survived the scan";
      for (size_t i = 0; i < scan->records.size(); ++i) {
        ExpectSameRecord(scan->records[i], records[i]);
      }
    }
  }
}

// Truncating the log at every byte boundary keeps exactly the records that
// are fully contained in the surviving prefix.
TEST_F(WalTest, TornTailAtEveryByteBoundary) {
  const std::vector<WalRecord> records = SampleRecords();
  const std::string path = TempPath("wal_torn_src");
  const std::string bytes = WriteLog(path, records, WalSyncPolicy::kNone);
  const size_t header_size = EncodeWalHeader().size();

  std::vector<size_t> ends;  // cumulative end offset of each record
  size_t offset = header_size;
  for (const WalRecord& record : records) {
    offset += EncodeWalRecord(record).size();
    ends.push_back(offset);
  }

  const std::string torn_path = TempPath("wal_torn");
  for (size_t cut = header_size; cut <= bytes.size(); ++cut) {
    OverwriteFile(torn_path, bytes.substr(0, cut));
    auto scan = ScanWal(torn_path);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut;
    size_t expected = 0;
    while (expected < ends.size() && ends[expected] <= cut) ++expected;
    ASSERT_EQ(scan->records.size(), expected) << "cut=" << cut;
    for (size_t i = 0; i < expected; ++i) {
      ExpectSameRecord(scan->records[i], records[i]);
    }
    EXPECT_EQ(scan->valid_bytes,
              expected == 0 ? header_size : ends[expected - 1]);
    EXPECT_EQ(scan->truncated_bytes, cut - scan->valid_bytes);
  }
}

// Resuming after a torn tail truncates it: the next append lands where the
// valid prefix ended, and the tail's garbage bytes can never resurface.
TEST_F(WalTest, ResumeAfterTornTailTruncatesThenAppends) {
  const std::vector<WalRecord> records = SampleRecords();
  const std::string path = TempPath("wal_resume");
  const std::string bytes = WriteLog(path, records, WalSyncPolicy::kNone);

  // Chop mid-way through the last record.
  OverwriteFile(path, bytes.substr(0, bytes.size() - 3));
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), records.size() - 1);
  EXPECT_GT(scan->truncated_bytes, 0u);

  auto writer =
      WalWriter::Open(path, WalSyncPolicy::kBatch, scan->valid_bytes);
  ASSERT_TRUE(writer.ok());
  const WalRecord appended = AddFactRecord("Dept", {"ops", "erin"});
  ASSERT_TRUE((*writer)->Append(appended).ok());
  ASSERT_TRUE((*writer)->BarrierSync().ok());
  EXPECT_EQ((*writer)->appended_records(), 1u);
  writer->reset();

  auto rescan = ScanWal(path);
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->truncated_bytes, 0u);
  ASSERT_EQ(rescan->records.size(), records.size());
  for (size_t i = 0; i + 1 < records.size(); ++i) {
    ExpectSameRecord(rescan->records[i], records[i]);
  }
  ExpectSameRecord(rescan->records.back(), appended);
}

// --- writer fault injection ------------------------------------------------

TEST_F(WalTest, AppendDropFailpointKillsTheWriter) {
  const std::string path = TempPath("wal_fp_drop");
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
  auto writer = WalWriter::Open(path, WalSyncPolicy::kNone, /*resume_at=*/0);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(AddFactRecord("Emp", {"e9", "ops"})).ok());

  failpoint::Arm("wal.append.drop");
  EXPECT_FALSE((*writer)->Append(AddFactRecord("Emp", {"e10", "ops"})).ok());
  // Dead writer: the fault models a crash, nothing works afterwards.
  EXPECT_FALSE((*writer)->Append(AddFactRecord("Emp", {"e11", "ops"})).ok());
  EXPECT_FALSE((*writer)->Sync().ok());
  writer->reset();

  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);  // only the pre-fault record
  EXPECT_EQ(scan->truncated_bytes, 0u);
}

TEST_F(WalTest, AppendPartialFailpointLeavesATornDetectableTail) {
  const std::string path = TempPath("wal_fp_partial");
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
  auto writer = WalWriter::Open(path, WalSyncPolicy::kNone, /*resume_at=*/0);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(AddFactRecord("Emp", {"e9", "ops"})).ok());

  failpoint::Arm("wal.append.partial");
  EXPECT_FALSE((*writer)->Append(AddFactRecord("Emp", {"e10", "ops"})).ok());
  writer->reset();

  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_GT(scan->truncated_bytes, 0u);  // the half-written frame
  ExpectSameRecord(scan->records[0], AddFactRecord("Emp", {"e9", "ops"}));
}

TEST_F(WalTest, SyncFailpointFailsPolicyEveryAppends) {
  const std::string path = TempPath("wal_fp_sync");
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
  auto writer = WalWriter::Open(path, WalSyncPolicy::kEvery, /*resume_at=*/0);
  ASSERT_TRUE(writer.ok());

  failpoint::Arm("wal.sync");
  EXPECT_FALSE((*writer)->Append(AddFactRecord("Emp", {"e9", "ops"})).ok());
  EXPECT_FALSE((*writer)->BarrierSync().ok());
}

// --- replay verification ---------------------------------------------------

TEST_F(WalTest, ReplayRejectsALogFromADifferentBase) {
  // A barrier whose fingerprint can't match anything this base produces.
  std::vector<WalRecord> records = {
      AddFactRecord("Emp", {"e9", "ops"}),
      BarrierRecord(/*epoch=*/1, /*facts=*/6, /*fingerprint=*/0xdeadbeefu),
  };
  LiveInstance live = MakeLive();
  Status status = ReplayWal(records, &live);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not written over this base"),
            std::string::npos)
      << status.ToString();
}

TEST_F(WalTest, ReplayRejectsUnknownRelations) {
  std::vector<WalRecord> records = {AddFactRecord("NoSuchRel", {"a", "b"})};
  LiveInstance live = MakeLive();
  EXPECT_FALSE(ReplayWal(records, &live).ok());
}

// --- live integration: write-ahead ordering --------------------------------

TEST_F(WalTest, LiveAddIsLoggedBeforeItIsQueued) {
  const std::string path = TempPath("wal_live_order");
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
  LiveInstance live = MakeLive();
  auto recovered =
      RecoverAndAttachWal(path, WalSyncPolicy::kNone, &live, nullptr);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->existed);

  // A dropped append rejects the fact: nothing queued, log and memory agree.
  failpoint::Arm("wal.append.drop");
  EXPECT_FALSE(live.Add("Emp", {"e9", "ops"}).ok());
  EXPECT_EQ(live.pending(), 0u);

  // The dead writer also blocks snapshots of later (hypothetical) deltas —
  // the instance keeps serving reads but refuses to advance.
  Status wal_status;
  std::shared_ptr<const InstanceSnapshot> snap = live.Snapshot(&wal_status);
  EXPECT_TRUE(wal_status.ok());  // empty delta: nothing to log
  EXPECT_EQ(snap->epoch, 0u);
}

TEST_F(WalTest, SnapshotLogsABarrierEvenForDuplicateOnlyDeltas) {
  const std::string path = TempPath("wal_dup_barrier");
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
  LiveInstance live = MakeLive();
  auto recovered =
      RecoverAndAttachWal(path, WalSyncPolicy::kBatch, &live, nullptr);
  ASSERT_TRUE(recovered.ok());

  // Queue a fact that already exists: the delta is non-empty but fully
  // duplicate, so the epoch must not advance — yet the barrier must be
  // logged so replay clears pending at the same point.
  ASSERT_TRUE(live.Add("Emp", {"e1", "hw"}).ok());
  EXPECT_EQ(live.pending(), 1u);
  Status wal_status;
  std::shared_ptr<const InstanceSnapshot> snap = live.Snapshot(&wal_status);
  ASSERT_TRUE(wal_status.ok());
  EXPECT_EQ(snap->epoch, 0u);
  EXPECT_EQ(live.pending(), 0u);
  ASSERT_TRUE(live.SyncWal().ok());

  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].type, WalRecord::Type::kAddFact);
  EXPECT_EQ(scan->records[1].type, WalRecord::Type::kBarrier);
  EXPECT_EQ(scan->records[1].epoch, 0u);

  // And replaying that log into a fresh base reproduces the state.
  LiveInstance fresh = MakeLive();
  auto rerecovered =
      RecoverAndAttachWal(path, WalSyncPolicy::kBatch, &fresh, nullptr);
  ASSERT_TRUE(rerecovered.ok());
  EXPECT_EQ(rerecovered->records, 2u);
  EXPECT_EQ(fresh.Current()->epoch, 0u);
  EXPECT_EQ(fresh.pending(), 0u);
  EXPECT_EQ(fresh.Current()->fingerprint, snap->fingerprint);
}

}  // namespace
}  // namespace uocqa
