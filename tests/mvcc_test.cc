// Differential tests for the live-instance subsystem (service/live.h).
//
// The contract under test: a LiveInstance that ingests a fact stream
// incrementally — copy-on-write merges, delta-maintained blocks and
// denominators, extended fingerprint chains — is indistinguishable from
// throwing everything away and loading the same fact stream from scratch.
// "Indistinguishable" is checked at full strength: identical fact sets and
// fingerprints, structurally identical block partitions, bit-identical
// exact counts, and bit-identical FPRAS / Monte-Carlo estimates at the same
// seed, after *every* prefix of randomized streams over chain, star and
// cycle queries. Stale snapshots must keep replaying their pre-ingest
// results byte-for-byte while newer epochs serve the grown instance.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "db/blocks.h"
#include "db/textio.h"
#include "ocqa/engine.h"
#include "query/parser.h"
#include "repairs/counting.h"
#include "repairs/denominators.h"
#include "service/canonical.h"
#include "service/live.h"
#include "workload/generators.h"

namespace uocqa {
namespace {

// Replays fact `id` of `src` through the live protocol surface (relation
// name + constant strings), exactly as an add_fact verb would.
Status AddFactTo(LiveInstance& live, const Database& src, FactId id) {
  const Fact& fact = src.fact(id);
  std::vector<std::string> constants;
  constants.reserve(fact.args.size());
  for (Value v : fact.args) constants.push_back(ValuePool::Name(v));
  return live.Add(src.schema().name(fact.relation), constants);
}

Database PrefixLoad(const Database& src, size_t count) {
  std::vector<FactId> ids(count);
  std::iota(ids.begin(), ids.end(), FactId{0});
  return src.Subset(ids);
}

void ExpectSamePartition(const BlockPartition& got, const BlockPartition& want,
                         const Database& db) {
  ASSERT_EQ(got.block_count(), want.block_count());
  for (size_t b = 0; b < want.block_count(); ++b) {
    EXPECT_EQ(got.block(b).relation, want.block(b).relation);
    EXPECT_EQ(got.block(b).key_value, want.block(b).key_value);
    EXPECT_EQ(got.block(b).facts, want.block(b).facts);
  }
  for (FactId id = 0; id < db.size(); ++id) {
    EXPECT_EQ(got.BlockOf(id), want.BlockOf(id));
  }
  for (RelationId rel = 0; rel < db.schema().relation_count(); ++rel) {
    EXPECT_EQ(got.BlocksOfRelation(rel), want.BlocksOfRelation(rel));
  }
}

ConjunctiveQuery ShapeQuery(uint64_t seed) {
  switch (seed % 3) {
    case 0:
      return ChainQuery(2);
    case 1:
      return StarQuery(2);
    default:
      return CycleQuery(3);
  }
}

// --- the differential guarantee, every prefix, many seeds ------------------

TEST(MvccDifferentialTest, IngestedPrefixesMatchFreshLoads) {
  const std::vector<Value> answer;  // Boolean queries
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ConjunctiveQuery query = ShapeQuery(seed);
    Rng rng = Rng::Stream(/*root_seed=*/0xd1f5u, seed);
    DbGenOptions gen;
    gen.blocks_per_relation = 3;
    gen.min_block_size = 1;
    gen.max_block_size = 3;
    gen.domain_size = 5;
    GeneratedInstance full = GenerateDatabaseForQuery(rng, query, gen);
    const size_t total = full.db.size();
    ASSERT_GE(total, 6u);
    const size_t start = total - 5;  // five ingested prefixes per stream

    LiveInstance live(PrefixLoad(full.db, start), full.keys);
    EXPECT_EQ(live.Current()->epoch, 0u);

    for (size_t count = start + 1; count <= total; ++count) {
      SCOPED_TRACE("prefix=" + std::to_string(count));
      ASSERT_TRUE(AddFactTo(live, full.db, count - 1).ok());
      std::shared_ptr<const InstanceSnapshot> snap = live.Snapshot();
      Database fresh = PrefixLoad(full.db, count);

      // Same fact set, ids and order: the merge is structurally a fresh
      // load of the concatenated stream.
      ASSERT_EQ(snap->db->size(), fresh.size());
      for (FactId id = 0; id < fresh.size(); ++id) {
        ASSERT_EQ(snap->db->fact(id), fresh.fact(id));
      }
      EXPECT_EQ(snap->fingerprint, InstanceFingerprint(fresh, full.keys));

      // Delta-maintained blocks == recomputed blocks.
      BlockPartition blocks = BlockPartition::Compute(fresh, full.keys);
      ExpectSamePartition(*snap->blocks, blocks, fresh);

      // Delta-maintained denominators == recomputed == the counting
      // oracles they stand in for.
      RelationDenominators denoms =
          RelationDenominators::Compute(fresh, blocks);
      EXPECT_EQ(snap->denominators->orep(), denoms.orep());
      EXPECT_EQ(snap->denominators->crs(), denoms.crs());
      EXPECT_EQ(snap->denominators->orep(), CountOperationalRepairs(blocks));
      EXPECT_EQ(snap->denominators->crs(),
                CountCompleteSequencesExact(blocks));

      // Solver-level equivalence: exact counts equal as BigInts, FPRAS and
      // Monte-Carlo estimates bit-identical at the same seed.
      OcqaEngine live_engine(*snap->db, full.keys);
      live_engine.SeedDenominators(snap->denominators->orep(),
                                   snap->denominators->crs());
      OcqaEngine fresh_engine(fresh, full.keys);

      ExactRF live_ur = live_engine.ExactUr(query, answer);
      ExactRF fresh_ur = fresh_engine.ExactUr(query, answer);
      EXPECT_TRUE(live_ur == fresh_ur);
      ExactRF live_us = live_engine.ExactUs(query, answer);
      ExactRF fresh_us = fresh_engine.ExactUs(query, answer);
      EXPECT_TRUE(live_us == fresh_us);

      OcqaOptions opt;
      opt.fpras.epsilon = 0.5;
      opt.fpras.delta = 0.25;
      opt.fpras.seed = seed;
      opt.threads = 1;
      Result<ApproxRF> live_f = live_engine.ApproxUr(query, answer, opt);
      Result<ApproxRF> fresh_f = fresh_engine.ApproxUr(query, answer, opt);
      ASSERT_EQ(live_f.ok(), fresh_f.ok());
      if (live_f.ok()) {
        EXPECT_EQ(live_f->value, fresh_f->value);  // bit-identical
        EXPECT_EQ(live_f->numerator, fresh_f->numerator);
        EXPECT_EQ(live_f->denominator, fresh_f->denominator);
      }

      EXPECT_EQ(live_engine.MonteCarloUr(query, answer, 128, seed, 1),
                fresh_engine.MonteCarloUr(query, answer, 128, seed, 1));
      EXPECT_EQ(live_engine.MonteCarloUs(query, answer, 128, seed, 1),
                fresh_engine.MonteCarloUs(query, answer, 128, seed, 1));
    }
  }
}

// --- delta maintenance as its own property, duplicate-heavy streams --------

TEST(MvccDeltaTest, UpdateMatchesRecomputationUnderDuplicates) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng = Rng::Stream(/*root_seed=*/0xb10cu, seed);
    ConjunctiveQuery query = ShapeQuery(seed);
    DbGenOptions gen;
    gen.blocks_per_relation = 4;
    gen.max_block_size = 4;
    gen.domain_size = 4;  // small domain: keys collide, conflicts grow
    GeneratedInstance full = GenerateDatabaseForQuery(rng, query, gen);
    const size_t total = full.db.size();
    const size_t start = total / 2;

    LiveInstance live(PrefixLoad(full.db, start), full.keys);
    // Replay the tail twice over, two facts per snapshot: every other add
    // is a duplicate, exercising the merged-size-unchanged and
    // partially-duplicate paths of Snapshot().
    std::vector<FactId> stream;
    for (FactId id = start; id < total; ++id) {
      stream.push_back(id);
      stream.push_back(id > start ? id - 1 : id);
    }
    for (size_t i = 0; i < stream.size(); i += 2) {
      ASSERT_TRUE(AddFactTo(live, full.db, stream[i]).ok());
      ASSERT_TRUE(AddFactTo(live, full.db, stream[i + 1]).ok());
      std::shared_ptr<const InstanceSnapshot> snap = live.Snapshot();
      EXPECT_EQ(live.pending(), 0u);

      BlockPartition blocks = BlockPartition::Compute(*snap->db, full.keys);
      ExpectSamePartition(*snap->blocks, blocks, *snap->db);
      RelationDenominators denoms =
          RelationDenominators::Compute(*snap->db, blocks);
      EXPECT_EQ(snap->denominators->orep(), denoms.orep());
      EXPECT_EQ(snap->denominators->crs(), denoms.crs());
      ASSERT_EQ(snap->denominators->relation_count(), denoms.relation_count());
      for (RelationId rel = 0; rel < denoms.relation_count(); ++rel) {
        EXPECT_TRUE(
            snap->denominators->entry(rel).SameCounts(denoms.entry(rel)));
        EXPECT_EQ(snap->denominators->entry(rel).fact_count,
                  denoms.entry(rel).fact_count);
      }
    }
  }
}

// --- epoch bookkeeping -----------------------------------------------------

constexpr const char* kInstance = R"(
key Emp = 1
Emp(e1, hw)
Emp(e1, sw)
Emp(e2, hw)
key Dept = 1
Dept(hw, alice)
Dept(sw, carol)
)";

ParsedInstance LoadInstance() {
  auto inst = ParseInstanceText(kInstance);
  EXPECT_TRUE(inst.ok());
  return *std::move(inst);
}

TEST(MvccTest, DuplicateOnlyDeltasDoNotAdvanceTheEpoch) {
  ParsedInstance inst = LoadInstance();
  LiveInstance live(std::move(inst.db), inst.keys);
  std::shared_ptr<const InstanceSnapshot> before = live.Current();

  ASSERT_TRUE(live.Add("Emp", {"e1", "hw"}).ok());  // already present
  EXPECT_EQ(live.pending(), 1u);
  std::shared_ptr<const InstanceSnapshot> after = live.Snapshot();
  EXPECT_EQ(after.get(), before.get());  // same published version
  EXPECT_EQ(after->epoch, 0u);
  EXPECT_EQ(live.pending(), 0u);

  // An empty delta is equally inert.
  EXPECT_EQ(live.Snapshot().get(), before.get());
}

TEST(MvccTest, ConflictEpochAdvancesOnlyWhenConflictStructureChanges) {
  ParsedInstance inst = LoadInstance();
  LiveInstance live(std::move(inst.db), inst.keys);

  // New key value => new singleton block => conflict-free: the epoch moves,
  // the conflict epoch and both denominators do not.
  std::shared_ptr<const InstanceSnapshot> base = live.Current();
  ASSERT_TRUE(live.Add("Dept", {"ops", "dave"}).ok());
  std::shared_ptr<const InstanceSnapshot> clean = live.Snapshot();
  EXPECT_EQ(clean->epoch, 1u);
  EXPECT_EQ(clean->conflict_epoch, 0u);
  EXPECT_EQ(clean->denominators->orep(), base->denominators->orep());
  EXPECT_EQ(clean->denominators->crs(), base->denominators->crs());
  EXPECT_NE(clean->fingerprint, base->fingerprint);
  EXPECT_EQ(clean->relation_epochs[clean->db->schema().Find("Dept")], 1u);
  EXPECT_EQ(clean->relation_epochs[clean->db->schema().Find("Emp")], 0u);

  // Existing key value, different tuple => the block grows: conflict epoch
  // jumps to the new epoch and the denominators change.
  ASSERT_TRUE(live.Add("Dept", {"hw", "erin"}).ok());
  std::shared_ptr<const InstanceSnapshot> dirty = live.Snapshot();
  EXPECT_EQ(dirty->epoch, 2u);
  EXPECT_EQ(dirty->conflict_epoch, 2u);
  EXPECT_NE(dirty->denominators->orep(), clean->denominators->orep());
}

TEST(MvccTest, AddValidatesRelationAndArity) {
  ParsedInstance inst = LoadInstance();
  LiveInstance live(std::move(inst.db), inst.keys);
  EXPECT_FALSE(live.Add("Nope", {"a", "b"}).ok());
  EXPECT_FALSE(live.Add("Emp", {"a"}).ok());
  EXPECT_FALSE(live.Add("Emp", {"a", "b", "c"}).ok());
  EXPECT_EQ(live.pending(), 0u);
  EXPECT_TRUE(live.Add("Emp", {"e9", "hw"}).ok());
  EXPECT_EQ(live.pending(), 1u);
}

// --- stale snapshots -------------------------------------------------------

TEST(MvccTest, StaleSnapshotsReplayPreIngestResultsBitIdentically) {
  ParsedInstance inst = LoadInstance();
  KeySet keys = inst.keys;
  LiveInstance live(std::move(inst.db), inst.keys);
  std::shared_ptr<const InstanceSnapshot> stale = live.Current();

  Result<ConjunctiveQuery> query = ParseQuery(
      "Ans() :- Emp(x, y), Dept(y, z)", stale->db->schema());
  ASSERT_TRUE(query.ok());
  const std::vector<Value> answer;

  OcqaEngine pinned(*stale->db, keys);
  pinned.SeedDenominators(stale->denominators->orep(),
                          stale->denominators->crs());
  ExactRF exact_before = pinned.ExactUr(*query, answer);
  OcqaOptions opt;
  opt.fpras.epsilon = 0.5;
  opt.fpras.delta = 0.25;
  opt.fpras.seed = 7;
  opt.threads = 1;
  Result<ApproxRF> fpras_before = pinned.ApproxUr(*query, answer, opt);
  ASSERT_TRUE(fpras_before.ok());
  double mc_before = pinned.MonteCarloUr(*query, answer, 256, 7, 1);
  uint64_t fingerprint_before = stale->fingerprint;

  // Grow the live instance through several epochs, conflicting and not.
  ASSERT_TRUE(live.Add("Emp", {"e2", "sw"}).ok());   // conflicts with e2
  ASSERT_TRUE(live.Snapshot() != nullptr);
  ASSERT_TRUE(live.Add("Dept", {"ops", "dave"}).ok());  // conflict-free
  std::shared_ptr<const InstanceSnapshot> latest = live.Snapshot();
  EXPECT_EQ(latest->epoch, 2u);

  // The stale snapshot is frozen: same facts, same fingerprint, and the
  // same engine over it reproduces every pre-ingest result bit-for-bit.
  EXPECT_EQ(stale->epoch, 0u);
  EXPECT_EQ(stale->fingerprint, fingerprint_before);
  EXPECT_EQ(stale->db->size(), 5u);
  EXPECT_TRUE(pinned.ExactUr(*query, answer) == exact_before);
  Result<ApproxRF> fpras_again = pinned.ApproxUr(*query, answer, opt);
  ASSERT_TRUE(fpras_again.ok());
  EXPECT_EQ(fpras_again->value, fpras_before->value);
  EXPECT_EQ(pinned.MonteCarloUr(*query, answer, 256, 7, 1), mc_before);

  // A fresh engine over the stale snapshot agrees too (no hidden state in
  // the pinned engine).
  OcqaEngine rebuilt(*stale->db, keys);
  EXPECT_TRUE(rebuilt.ExactUr(*query, answer) == exact_before);
  Result<ApproxRF> fpras_rebuilt = rebuilt.ApproxUr(*query, answer, opt);
  ASSERT_TRUE(fpras_rebuilt.ok());
  EXPECT_EQ(fpras_rebuilt->value, fpras_before->value);

  // While the latest epoch genuinely serves the grown instance.
  OcqaEngine grown(*latest->db, keys);
  EXPECT_EQ(latest->db->size(), 7u);
  EXPECT_FALSE(grown.ExactUr(*query, answer) == exact_before);
}

// --- fingerprint memoization ----------------------------------------------

TEST(MvccTest, SnapshotFingerprintsMatchFullRehashPerEpoch) {
  ParsedInstance inst = LoadInstance();
  KeySet keys = inst.keys;
  LiveInstance live(std::move(inst.db), inst.keys);
  std::shared_ptr<const InstanceSnapshot> s0 = live.Current();
  EXPECT_EQ(s0->fingerprint, InstanceFingerprint(*s0->db, keys));

  ASSERT_TRUE(live.Add("Emp", {"e3", "hw"}).ok());
  std::shared_ptr<const InstanceSnapshot> s1 = live.Snapshot();
  EXPECT_EQ(s1->fingerprint, InstanceFingerprint(*s1->db, keys));
  EXPECT_NE(s1->fingerprint, s0->fingerprint);

  // The memoized chain is the real thing: extending the epoch-0 chain by
  // the delta equals hashing the merged instance from scratch.
  uint64_t chain = ExtendFactChain(s0->fact_chain, *s1->db, s0->db->size());
  EXPECT_EQ(chain, s1->fact_chain);
  EXPECT_EQ(FingerprintFromChain(chain, *s1->db, keys), s1->fingerprint);
}

}  // namespace
}  // namespace uocqa
