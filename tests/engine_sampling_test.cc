// Tests for OcqaEngine::SampleEntailingRepairs: samples decode to
// consistent original-database repairs that entail the answer, with a
// near-uniform empirical distribution over the entailing repairs.

#include <gtest/gtest.h>

#include <map>

#include "ocqa/engine.h"
#include "query/eval.h"
#include "query/parser.h"
#include "repairs/counting.h"

namespace uocqa {
namespace {

TEST(EngineSamplingTest, SamplesAreEntailingRepairs) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  s.AddRelationOrDie("W", 2);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"1", "b"});
  db.Add("W", {"a", "x"});
  db.Add("W", {"b", "x"});
  db.Add("W", {"b", "y"});  // conflicts with W(b,x) under key {0}? no: same
                            // key b, different tuples -> conflict.
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0});
  keys.SetKeyOrDie(s.Find("W"), {0});
  ConjunctiveQuery q = *ParseQuery("Ans() :- R(x,y), W(y,z)");
  OcqaEngine engine(db, keys);

  auto samples = engine.SampleEntailingRepairs(q, {}, 300, {}, 31);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  ASSERT_EQ(samples->size(), 300u);
  std::map<std::vector<FactId>, int> histogram;
  for (const std::vector<FactId>& kept : *samples) {
    Database repair = db.Subset(kept);
    EXPECT_TRUE(IsConsistent(repair, keys));
    EXPECT_TRUE(Entails(repair, q));
    histogram[kept]++;
  }
  // Support covers every entailing repair.
  BigInt entailing = CountRepairsEntailing(db, keys, q, {});
  EXPECT_EQ(histogram.size(), entailing.ToUint64());
  // Rough uniformity: every entailing repair hit at least once, max/min
  // frequency ratio bounded (approximate sampler; generous bound).
  int mn = 1 << 30, mx = 0;
  for (const auto& [kept, n] : histogram) {
    mn = std::min(mn, n);
    mx = std::max(mx, n);
  }
  EXPECT_GE(mn, 1);
  EXPECT_LE(mx, mn * 6) << "suspiciously skewed sampler";
}

TEST(EngineSamplingTest, NoEntailingRepairIsNotFound) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"1", "b"});
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0});
  ConjunctiveQuery q = *ParseQuery("Ans() :- R(x,y), Missing(y)");
  OcqaEngine engine(db, keys);
  auto samples = engine.SampleEntailingRepairs(q, {}, 10);
  EXPECT_FALSE(samples.ok());
  EXPECT_EQ(samples.status().code(), StatusCode::kNotFound);
}

TEST(EngineSamplingTest, UngroupedFprasStillCorrect) {
  // The ablation configuration must preserve correctness end to end.
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"1", "b"});
  db.Add("R", {"2", "a"});
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0});
  ConjunctiveQuery q = *ParseQuery("Ans() :- R(x,y)");
  OcqaEngine engine(db, keys);
  ExactRF exact = engine.ExactUr(q, {});
  OcqaOptions options;
  options.fpras.epsilon = 0.1;
  options.fpras.seed = 13;
  options.fpras.group_disjoint_components = false;
  auto approx = engine.ApproxUr(q, {}, options);
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->value / exact.value(), 1.0, 0.15);
}

}  // namespace
}  // namespace uocqa
