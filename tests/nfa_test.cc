#include <gtest/gtest.h>

#include "automata/exact_count.h"
#include "automata/fpras.h"
#include "automata/nfa.h"
#include "base/rng.h"

namespace uocqa {
namespace {

/// NFA for (a|b)* a (a|b): words over {a,b} whose second-to-last letter is
/// 'a'. The canonical ambiguous NFA.
Nfa SecondToLastA() {
  Nfa nfa;
  NfaState q0 = nfa.AddState();
  NfaState q1 = nfa.AddState();
  NfaState q2 = nfa.AddState();
  NftaSymbol a = nfa.InternSymbol("a");
  NftaSymbol b = nfa.InternSymbol("b");
  nfa.AddTransition(q0, a, q0);
  nfa.AddTransition(q0, b, q0);
  nfa.AddTransition(q0, a, q1);
  nfa.AddTransition(q1, a, q2);
  nfa.AddTransition(q1, b, q2);
  nfa.SetInitial(q0);
  nfa.AddAccepting(q2);
  return nfa;
}

TEST(NfaTest, MembershipAndCounts) {
  Nfa nfa = SecondToLastA();
  NftaSymbol a = nfa.InternSymbol("a");
  NftaSymbol b = nfa.InternSymbol("b");
  EXPECT_TRUE(nfa.Accepts({a, b}));
  EXPECT_TRUE(nfa.Accepts({b, a, a}));
  EXPECT_FALSE(nfa.Accepts({a, b, b}));
  EXPECT_FALSE(nfa.Accepts({a}));
  // Words of length n with 'a' in the second-to-last position: 2^(n-1).
  for (size_t n = 2; n <= 10; ++n) {
    EXPECT_EQ(nfa.CountWordsOfLength(n).ToUint64(), uint64_t{1} << (n - 1))
        << "n=" << n;
  }
  EXPECT_TRUE(nfa.CountWordsOfLength(1).IsZero());
}

TEST(NfaTest, UnaryEmbeddingPreservesCounts) {
  // SpanL ⊆ SpanTL in executable form: the unary-tree embedding preserves
  // per-length counts, so the tree machinery answers ♯NFA.
  Nfa nfa = SecondToLastA();
  Nfta tree = nfa.ToUnaryNfta();
  ExactTreeCounter counter(tree);
  for (size_t n = 1; n <= 8; ++n) {
    EXPECT_EQ(counter.CountExactSize(n), nfa.CountWordsOfLength(n))
        << "n=" << n;
  }
  // And the tree FPRAS approximates the same quantity.
  FprasConfig cfg;
  cfg.epsilon = 0.15;
  cfg.seed = 17;
  NftaFpras fpras(tree, cfg);
  double exact = nfa.CountWordsUpTo(8).ToDouble();
  double approx = fpras.EstimateUpTo(8);
  EXPECT_NEAR(approx / exact, 1.0, 0.25);
}

TEST(NfaTest, EmbeddingAgreesOnMembership) {
  Nfa nfa = SecondToLastA();
  Nfta tree = nfa.ToUnaryNfta();
  NftaSymbol a = nfa.InternSymbol("a");
  NftaSymbol b = nfa.InternSymbol("b");
  // b a b as a unary tree: b(a(b)).
  LabeledTree t(b, {LabeledTree(a, {LabeledTree(b)})});
  EXPECT_TRUE(nfa.Accepts({b, a, b}));
  EXPECT_TRUE(tree.Accepts(t));
  LabeledTree t2(b, {LabeledTree(b, {LabeledTree(b)})});
  EXPECT_FALSE(nfa.Accepts({b, b, b}));
  EXPECT_FALSE(tree.Accepts(t2));
}

TEST(NfaTest, RandomNfasEmbeddingCrossCheck) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 53);
    Nfa nfa;
    size_t n_states = 2 + rng.UniformIndex(3);
    for (size_t i = 0; i < n_states; ++i) nfa.AddState();
    NftaSymbol a = nfa.InternSymbol("a");
    NftaSymbol b = nfa.InternSymbol("b");
    for (int i = 0; i < 7; ++i) {
      nfa.AddTransition(
          static_cast<NfaState>(rng.UniformIndex(n_states)),
          rng.Bernoulli(0.5) ? a : b,
          static_cast<NfaState>(rng.UniformIndex(n_states)));
    }
    nfa.SetInitial(0);
    nfa.AddAccepting(static_cast<NfaState>(rng.UniformIndex(n_states)));
    Nfta tree = nfa.ToUnaryNfta();
    ExactTreeCounter counter(tree);
    for (size_t len = 1; len <= 6; ++len) {
      EXPECT_EQ(counter.CountExactSize(len), nfa.CountWordsOfLength(len))
          << "seed=" << seed << " len=" << len;
    }
  }
}

}  // namespace
}  // namespace uocqa
