// The planner's core contract: planning changes search effort, never
// results. The property tests here run every query shape the workload
// generators produce under the planned order, its reversal, and the greedy
// baseline, and require identical homomorphism sets, homomorphism counts,
// and exact repair counts. The remaining tests pin the deterministic
// greedy tie-break, the exactness/never-worse guarantees of the join-order
// search, and the legacy-first contract of decomposition ranking.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "base/rng.h"
#include "db/database.h"
#include "db/keys.h"
#include "hypertree/ghd_search.h"
#include "planner/cost.h"
#include "planner/ghd_rank.h"
#include "planner/join_order.h"
#include "planner/planner.h"
#include "query/eval.h"
#include "query/parser.h"
#include "repairs/counting.h"
#include "workload/generators.h"

namespace uocqa {
namespace {

bool IsPermutation(const std::vector<size_t>& order, size_t n) {
  if (order.size() != n) return false;
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < n; ++i) {
    if (sorted[i] != i) return false;
  }
  return true;
}

/// All homomorphisms of `eval` for the Boolean answer, sorted — the
/// order-independent result set two evaluators must agree on.
std::vector<Assignment> SortedHomomorphisms(const QueryEvaluator& eval) {
  std::vector<Assignment> out;
  eval.ForEachHomomorphism({}, [&out](const Assignment& a) {
    out.push_back(a);
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

/// (bag, lambda) per node — the shape equality used to compare a ranked
/// candidate against the legacy first-found decomposition.
std::vector<std::pair<std::vector<VarId>, std::vector<size_t>>>
DecompositionShape(const HypertreeDecomposition& h) {
  std::vector<std::pair<std::vector<VarId>, std::vector<size_t>>> out;
  for (const DecompositionNode& node : h.nodes()) {
    out.emplace_back(node.bag, node.lambda);
  }
  return out;
}

// --- greedy tie-break (deterministic baseline) -----------------------------

TEST(GreedyOrderTest, TiesBreakOnSmallestAtomIndex) {
  // Two indistinguishable unary atoms: identical cardinalities and no
  // shared variables, so every step is a tie. The order must be the atom
  // index order, on every platform and hash order.
  auto query = ParseQuery("Ans() :- R(x), S(y), T(z)");
  ASSERT_TRUE(query.ok());
  Database db;
  for (const char* rel : {"R", "S", "T"}) {
    db.mutable_schema().AddRelationOrDie(rel, 1);
  }
  for (const char* v : {"a", "b"}) {
    db.Add("R", {v});
    db.Add("S", {v});
    db.Add("T", {v});
  }
  EXPECT_EQ(GreedyAtomOrder(db, *query), (std::vector<size_t>{0, 1, 2}));

  // Break the tie by cardinality: the smallest relation goes first, and
  // the remaining tie still resolves to the smaller index.
  db.Add("S", {"c"});
  EXPECT_EQ(GreedyAtomOrder(db, *query), (std::vector<size_t>{0, 2, 1}));
}

// --- join-order search -----------------------------------------------------

TEST(JoinOrderTest, DpIsExactAndNeverWorseThanGreedy) {
  Rng rng(11);
  for (size_t arms : {2u, 3u, 4u}) {
    ConjunctiveQuery query = StarQuery(arms);
    GeneratedInstance inst =
        GenerateDatabaseForQuery(rng, query, DbGenOptions{});
    CostModel model(inst.db, query);
    ASSERT_TRUE(model.supported());
    JoinOrderPlan plan = PlanJoinOrder(inst.db, query, model);
    EXPECT_TRUE(IsPermutation(plan.order, query.atom_count()));
    EXPECT_TRUE(plan.exact);  // within dp_max_atoms
    EXPECT_LE(plan.cost, plan.greedy_cost);
    EXPECT_EQ(plan.cost, model.EstimateOrderCost(plan.order));
    // DP optimality: no permutation is cheaper (small n, brute force).
    std::vector<size_t> perm(query.atom_count());
    std::iota(perm.begin(), perm.end(), 0);
    do {
      EXPECT_LE(plan.cost, model.EstimateOrderCost(perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

TEST(JoinOrderTest, RestartFallbackStillPlansLargeQueries) {
  // Above dp_max_atoms the planner switches to seeded randomized-greedy
  // restarts; the result must still be a permutation, never worse than
  // greedy, and deterministic in the seed.
  Rng rng(12);
  ConjunctiveQuery query = ChainQuery(6);
  GeneratedInstance inst = GenerateDatabaseForQuery(rng, query, DbGenOptions{});
  CostModel model(inst.db, query);
  JoinOrderOptions options;
  options.dp_max_atoms = 3;  // force the restart path
  JoinOrderPlan plan = PlanJoinOrder(inst.db, query, model, options);
  EXPECT_TRUE(IsPermutation(plan.order, query.atom_count()));
  EXPECT_FALSE(plan.exact);
  EXPECT_LE(plan.cost, plan.greedy_cost);
  JoinOrderPlan again = PlanJoinOrder(inst.db, query, model, options);
  EXPECT_EQ(plan.order, again.order);
}

// --- the core property: planning never changes results ---------------------

TEST(PlannerPropertyTest, OrdersNeverChangeHomomorphismsOrCounts) {
  Rng rng(21);
  std::vector<ConjunctiveQuery> shapes;
  shapes.push_back(ChainQuery(3));
  shapes.push_back(StarQuery(3));
  shapes.push_back(CycleQuery(3));
  shapes.push_back(CliqueQuery(3));
  for (const ConjunctiveQuery& query : shapes) {
    DbGenOptions options;
    options.blocks_per_relation = 3;
    options.max_block_size = 2;
    options.domain_size = 4;
    GeneratedInstance inst = GenerateDatabaseForQuery(rng, query, options);
    CostModel model(inst.db, query);
    JoinOrderPlan plan = PlanJoinOrder(inst.db, query, model);
    ASSERT_TRUE(IsPermutation(plan.order, query.atom_count()))
        << query.ToString();

    std::vector<size_t> reversed = plan.order;
    std::reverse(reversed.begin(), reversed.end());
    QueryEvaluator greedy(inst.db, query);
    QueryEvaluator planned(inst.db, query, plan.order);
    QueryEvaluator backwards(inst.db, query, reversed);

    std::vector<Assignment> expected = SortedHomomorphisms(greedy);
    EXPECT_EQ(SortedHomomorphisms(planned), expected) << query.ToString();
    EXPECT_EQ(SortedHomomorphisms(backwards), expected) << query.ToString();
    EXPECT_EQ(planned.CountHomomorphisms({}), greedy.CountHomomorphisms({}));
    EXPECT_EQ(backwards.CountHomomorphisms({}),
              greedy.CountHomomorphisms({}));
    EXPECT_EQ(planned.Entails({}), greedy.Entails({}));
  }
}

TEST(PlannerPropertyTest, OrdersNeverChangeExactRepairCounts) {
  Rng rng(22);
  std::vector<ConjunctiveQuery> shapes;
  shapes.push_back(ChainQuery(2));
  shapes.push_back(CycleQuery(3));
  for (const ConjunctiveQuery& query : shapes) {
    DbGenOptions options;
    options.blocks_per_relation = 2;
    options.max_block_size = 2;
    options.domain_size = 3;
    GeneratedInstance inst = GenerateDatabaseForQuery(rng, query, options);
    CostModel model(inst.db, query);
    JoinOrderPlan plan = PlanJoinOrder(inst.db, query, model);
    std::vector<size_t> reversed = plan.order;
    std::reverse(reversed.begin(), reversed.end());

    ExactRF base = ExactRepairFrequency(inst.db, inst.keys, query, {});
    ExactRF planned =
        ExactRepairFrequency(inst.db, inst.keys, query, {}, &plan.order);
    ExactRF backwards =
        ExactRepairFrequency(inst.db, inst.keys, query, {}, &reversed);
    EXPECT_EQ(planned, base) << query.ToString();
    EXPECT_EQ(backwards, base) << query.ToString();
    EXPECT_EQ(planned.numerator.ToString(), base.numerator.ToString());

    ExactRF seq_base = ExactSequenceFrequency(inst.db, inst.keys, query, {});
    ExactRF seq_planned =
        ExactSequenceFrequency(inst.db, inst.keys, query, {}, &plan.order);
    EXPECT_EQ(seq_planned, seq_base) << query.ToString();
  }
}

TEST(PlannerPropertyTest, AnswerVariablesSurvivePlanning) {
  // Non-Boolean query: planned and greedy evaluators agree on the full
  // answer set, not just entailment.
  Rng rng(23);
  ConjunctiveQuery shape = ChainQuery(3);
  GeneratedInstance inst = GenerateDatabaseForQuery(rng, shape, DbGenOptions{});
  auto query = ParseQuery("Ans(a) :- R1(a, b), R2(b, c), R3(c, d)");
  ASSERT_TRUE(query.ok());
  CostModel model(inst.db, *query);
  JoinOrderPlan plan = PlanJoinOrder(inst.db, *query, model);
  QueryEvaluator greedy(inst.db, *query);
  QueryEvaluator planned(inst.db, *query, plan.order);
  std::vector<std::vector<Value>> expected = greedy.Answers();
  std::vector<std::vector<Value>> got = planned.Answers();
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  for (const std::vector<Value>& answer : expected) {
    EXPECT_EQ(planned.CountHomomorphisms(answer),
              greedy.CountHomomorphisms(answer));
  }
}

// --- decomposition enumeration and ranking ---------------------------------

TEST(GhdRankTest, FirstEnumeratedCandidateMatchesLegacySearch) {
  for (size_t cycle : {3u, 4u, 5u}) {
    ConjunctiveQuery query = CycleQuery(cycle);
    auto legacy = FindGhdOfWidth(query, 2);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
    auto candidates = FindGhdsOfWidth(query, 2, 8);
    ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
    ASSERT_FALSE(candidates->empty());
    // Candidate 0 is exactly the legacy first-found decomposition — the
    // ranked pipeline degrades to the old behavior when nothing is cheaper.
    EXPECT_EQ(DecompositionShape((*candidates)[0]),
              DecompositionShape(*legacy));
    for (const HypertreeDecomposition& h : *candidates) {
      EXPECT_TRUE(h.Validate(query).ok());
      EXPECT_LE(h.Width(), 2u);
    }
  }
}

TEST(GhdRankTest, RankedChoiceIsValidAndNeverCostlierThanLegacy) {
  Rng rng(31);
  ConjunctiveQuery query = CycleQuery(4);
  GeneratedInstance inst = GenerateDatabaseForQuery(rng, query, DbGenOptions{});
  CostModel model(inst.db, query);
  auto choice = RankDecompositions(inst.db, query, model, /*max_width=*/2);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_TRUE(choice->decomposition.Validate(query).ok());
  EXPECT_LE(choice->width, 2u);
  EXPECT_GE(choice->candidates_considered, 1u);
  auto legacy = FindGhdOfWidth(query, 2);
  ASSERT_TRUE(legacy.ok());
  EXPECT_LE(choice->cost, model.EstimateDecompositionCost(*legacy));

  // Width beyond reach stays the legacy NotFound contract.
  ConjunctiveQuery clique = CliqueQuery(4);
  CostModel clique_model(inst.db, clique);
  auto none = RankDecompositions(inst.db, clique, clique_model,
                                 /*max_width=*/1);
  EXPECT_FALSE(none.ok());
}

// --- the facade ------------------------------------------------------------

TEST(PlanQueryTest, ProducesExplainableValidPlans) {
  Rng rng(41);
  ConjunctiveQuery query = ChainQuery(3);
  GeneratedInstance inst = GenerateDatabaseForQuery(rng, query, DbGenOptions{});
  auto plan = PlanQuery(inst.db, query, /*max_width=*/2);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(IsPermutation(plan->join_order, query.atom_count()));
  EXPECT_TRUE(plan->decomposition.Validate(query).ok());
  EXPECT_EQ(plan->atom_names.size(), query.atom_count());

  std::string fields = plan->Fields();
  for (const char* field : {"plan_order=", "plan_cost=", "plan_greedy_cost=",
                            "plan_exact=", "plan_width=", "plan_bags=",
                            "plan_decomp_cost=", "plan_candidates="}) {
    EXPECT_NE(fields.find(field), std::string::npos) << field;
  }
  std::string text = plan->ToString();
  EXPECT_NE(text.find("join order:"), std::string::npos);
  EXPECT_NE(text.find("planning time:"), std::string::npos);
}

}  // namespace
}  // namespace uocqa
