// Observability determinism suite: the hard contract is that metrics and
// tracing never change a single response byte. Pins payload byte-identity
// with metrics on/off and trace=1/0 across 1/4/8 batch lanes (including
// cached replays on live instances across epochs), the stats line format,
// the metrics/version verbs, the trace grammar, and the slow-query log.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/metrics.h"
#include "base/version.h"
#include "db/textio.h"
#include "service/live.h"
#include "service/request.h"
#include "service/service.h"

namespace uocqa {
namespace {

constexpr const char* kInstance = R"(
key Emp = 1
Emp(e1, hw)
Emp(e1, sw)
Emp(e2, hw)
Emp(e3, sw)
key Dept = 1
Dept(hw, alice)
Dept(hw, bob)
Dept(sw, carol)
)";

ParsedInstance LoadInstance() {
  auto inst = ParseInstanceText(kInstance);
  EXPECT_TRUE(inst.ok());
  return *std::move(inst);
}

/// A mixed workload exercising every solver stage, repeated queries for
/// cache hits, and an explain request. `trace` appends trace=1 to the query
/// lines (the configuration whose bytes must not move).
std::vector<std::string> WorkloadLines(bool trace) {
  const std::string t = trace ? " trace=1" : "";
  return {
      "query='Ans(x) :- Emp(x, y), Dept(y, z)' answer=e1 mode=exact" + t,
      "query='Ans(x) :- Emp(x, y), Dept(y, z)' answer=e1 mode=fpras"
      " epsilon=0.5 delta=0.2 seed=7" + t,
      "query='Ans(x) :- Emp(x, y), Dept(y, z)' answer=e1 mode=mc"
      " samples=500 seed=7" + t,
      "query='Ans(x) :- Emp(x, y), Dept(y, z)' answer=e2 mode=all"
      " epsilon=0.5 delta=0.2 samples=500 seed=7" + t,
      // Repeats: result-cache hits must replay the same bytes.
      "query='Ans(x) :- Emp(x, y), Dept(y, z)' answer=e1 mode=exact" + t,
      "query='Ans(x) :- Emp(x, y), Dept(y, z)' answer=e1 mode=fpras"
      " epsilon=0.5 delta=0.2 seed=7" + t,
      // Variable renaming: plan-cache hit, result-cache hit via canonical.
      "query='Ans(a) :- Emp(a, b), Dept(b, c)' answer=e1 mode=exact" + t,
      "query='Ans(x) :- Emp(x, y), Dept(y, z)' answer=e1 mode=exact"
      " explain=1" + t,
  };
}

struct RunResult {
  std::vector<ServiceResponse> responses;
};

RunResult RunStatic(const ParsedInstance& inst, bool metrics, bool trace,
                    size_t lanes) {
  ServiceOptions options;
  options.metrics_enabled = metrics;
  QueryService service(inst.db, inst.keys, options);
  return {service.ExecuteBatchLines(WorkloadLines(trace), lanes)};
}

// Pins everything deterministic across configurations. The hit/miss
// marker is compared only when `compare_hit` — in a parallel batch a
// duplicate request can race its twin's cache fill (the service_test
// lane-independence precedent), so hit/miss is lane-dependent while the
// payload bytes are not.
void ExpectSamePayloadBytes(const RunResult& a, const RunResult& b,
                            bool compare_hit = true) {
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].status.ok(), b.responses[i].status.ok()) << i;
    EXPECT_EQ(a.responses[i].payload, b.responses[i].payload) << i;
    if (compare_hit) {
      EXPECT_EQ(a.responses[i].cache_hit, b.responses[i].cache_hit) << i;
    }
    EXPECT_EQ(a.responses[i].has_epoch, b.responses[i].has_epoch) << i;
    EXPECT_EQ(a.responses[i].epoch, b.responses[i].epoch) << i;
  }
}

// --- the byte-identity contract ---------------------------------------------

TEST(ObservabilityTest, PayloadBytesIdenticalWithMetricsAndTraceAcrossLanes) {
  ParsedInstance inst = LoadInstance();
  RunResult baseline = RunStatic(inst, /*metrics=*/false, /*trace=*/false,
                                 /*lanes=*/1);
  for (size_t lanes : {size_t{1}, size_t{4}, size_t{8}}) {
    const bool compare_hit = lanes == 1;
    ExpectSamePayloadBytes(
        baseline, RunStatic(inst, /*metrics=*/false, /*trace=*/false, lanes),
        compare_hit);
    ExpectSamePayloadBytes(
        baseline, RunStatic(inst, /*metrics=*/true, /*trace=*/false, lanes),
        compare_hit);
    ExpectSamePayloadBytes(
        baseline, RunStatic(inst, /*metrics=*/true, /*trace=*/true, lanes),
        compare_hit);
    ExpectSamePayloadBytes(
        baseline, RunStatic(inst, /*metrics=*/false, /*trace=*/true, lanes),
        compare_hit);
  }
}

TEST(ObservabilityTest, LiveCachedReplaysAcrossEpochsUnchangedByTracing) {
  // An exact query whose footprint (Emp, Dept) survives a conflict-free
  // insert into Extra: its cached entry replays byte-identically at the new
  // epoch, traced or not, metrics on or off.
  auto lines = [](bool trace) -> std::vector<std::string> {
    const std::string t = trace ? " trace=1" : "";
    return {
        "query='Ans(x) :- Emp(x, y)' answer=e1 mode=exact" + t,
        "add_fact rel=Dept args='ops,dave'",
        "begin_snapshot",
        "query='Ans(x) :- Emp(x, y)' answer=e1 mode=exact" + t,
        "epoch",
    };
  };
  std::vector<std::vector<ServiceResponse>> runs;
  for (bool metrics : {false, true}) {
    for (bool trace : {false, true}) {
      ParsedInstance inst = LoadInstance();
      LiveInstance live(std::move(inst.db), std::move(inst.keys));
      ServiceOptions options;
      options.metrics_enabled = metrics;
      QueryService service(live, options);
      runs.push_back(service.ExecuteBatchLines(lines(trace), 2));
    }
  }
  for (const auto& run : runs) {
    ASSERT_EQ(run.size(), 5u);
    EXPECT_FALSE(run[0].cache_hit);
    EXPECT_EQ(run[0].epoch, 0u);
    // The replay crosses the epoch bump: payload bytes identical, epoch
    // stamp (outside the payload) moves to 1.
    EXPECT_TRUE(run[3].cache_hit);
    EXPECT_EQ(run[3].epoch, 1u);
    EXPECT_EQ(run[3].payload, run[0].payload);
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    ExpectSamePayloadBytes({runs[0]}, {runs[i]});
  }
}

TEST(ObservabilityTest, TraceRidesOutsideCachedPayloadBytes) {
  ParsedInstance inst = LoadInstance();
  QueryService service(inst.db, inst.keys);
  Request request;
  request.query_text = "Ans(x) :- Emp(x, y)";
  request.answer_text = "e1";
  request.mode = RequestMode::kExact;

  ServiceResponse plain = service.Execute(request);
  ASSERT_TRUE(plain.status.ok());
  EXPECT_TRUE(plain.trace.empty());

  request.trace = true;
  ServiceResponse traced = service.Execute(request);
  ASSERT_TRUE(traced.status.ok());
  // Traced and untraced requests share one cache entry (trace is not part
  // of the key), and the replayed payload is byte-identical.
  EXPECT_TRUE(traced.cache_hit);
  EXPECT_EQ(traced.payload, plain.payload);
  EXPECT_FALSE(traced.trace.empty());
  // The rendered line carries the trace after the payload.
  std::string line = FormatResponseLine(2, traced);
  EXPECT_NE(line.find(" trace='"), std::string::npos);
  EXPECT_NE(line.find(traced.payload), std::string::npos);
  EXPECT_LT(line.find(traced.payload), line.find(" trace='"));
}

// --- trace grammar -----------------------------------------------------------

TEST(ObservabilityTest, TraceGrammarNamesStagesAndCounts) {
  ParsedInstance inst = LoadInstance();
  QueryService service(inst.db, inst.keys);
  Request request;
  request.query_text = "Ans(x) :- Emp(x, y), Dept(y, z)";
  request.answer_text = "e1";
  request.mode = RequestMode::kFpras;
  request.epsilon = 0.5;
  request.delta = 0.2;
  request.seed = 7;
  request.trace = true;

  ServiceResponse miss = service.Execute(request);
  ASSERT_TRUE(miss.status.ok());
  for (const char* key :
       {"parse_us=", "result_cache_us=", "plan_us=", "compile_us=",
        "planner_us=", "fpras_trials_us=", "total_us=", "cache_hit=0",
        "planner_nodes=", "fpras_trials="}) {
    EXPECT_NE(miss.trace.find(key), std::string::npos)
        << key << " missing from: " << miss.trace;
  }
  EXPECT_GT(miss.trace.find("total_us="), miss.trace.find("parse_us="));

  ServiceResponse hit = service.Execute(request);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_NE(hit.trace.find("cache_hit=1"), std::string::npos);
  EXPECT_EQ(hit.trace.find("fpras_trials_us="), std::string::npos);
}

// --- stats compatibility -----------------------------------------------------

TEST(ObservabilityTest, StatsLineFormatIsIndependentOfMetrics) {
  ParsedInstance inst = LoadInstance();
  std::string lines[2];
  for (bool metrics : {false, true}) {
    ServiceOptions options;
    options.metrics_enabled = metrics;
    QueryService service(inst.db, inst.keys, options);
    Request request;
    request.query_text = "Ans(x) :- Emp(x, y)";
    request.answer_text = "e1";
    request.mode = RequestMode::kExact;
    service.Execute(request);
    service.Execute(request);  // result-cache hit
    lines[metrics ? 1 : 0] = service.stats().ToString();
  }
  EXPECT_EQ(lines[0], lines[1]);
  EXPECT_EQ(lines[1],
            "requests=2 plan_hits=0 plan_misses=0 plan_evictions=0 "
            "result_hits=1 result_misses=1 result_evictions=0");
}

TEST(ObservabilityTest, LiveStatsCarryEpochFactsPending) {
  ParsedInstance inst = LoadInstance();
  LiveInstance live(std::move(inst.db), std::move(inst.keys));
  QueryService service(live);
  std::vector<std::string> lines = {
      "add_fact rel=Dept args='ops,dave'",
      "begin_snapshot",
      "add_fact rel=Dept args='ops,erin'",
  };
  service.ExecuteBatchLines(lines, 1);
  ServiceStats stats = service.stats();
  EXPECT_TRUE(stats.has_live);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.facts, 8u);
  EXPECT_EQ(stats.pending, 1u);
  std::string text = stats.ToString();
  EXPECT_NE(text.find(" epoch=1 facts=8 pending=1"), std::string::npos);
}

// --- metrics & version verbs -------------------------------------------------

TEST(ObservabilityTest, MetricsVerbExposesStageHistograms) {
  ParsedInstance inst = LoadInstance();
  LiveInstance live(std::move(inst.db), std::move(inst.keys));
  QueryService service(live);
  Request metrics_request;
  metrics_request.verb = RequestVerb::kMetrics;
  ServiceResponse response = service.Execute(metrics_request);
  ASSERT_TRUE(response.status.ok());
  // The acceptance set: every required stage histogram is present (count 0
  // before traffic — InitMetrics pre-registers the cross-layer stages too).
  for (const char* name :
       {"uocqa_stage_plan_us", "uocqa_stage_compile_us",
        "uocqa_stage_fpras_trials_us", "uocqa_stage_exact_dp_us",
        "uocqa_stage_result_cache_us", "uocqa_stage_snapshot_publish_us",
        "uocqa_stage_denominators_us", "uocqa_stage_parse_us",
        "uocqa_stage_request_us", "uocqa_requests_total"}) {
    EXPECT_NE(response.payload.find(name), std::string::npos)
        << name << " missing";
  }
  // The metrics verb is introspection: not counted as a request.
  EXPECT_NE(response.payload.find("uocqa_requests_total=0"),
            std::string::npos);

  // Same stage set in the Prometheus exposition (the --metrics-file path).
  ASSERT_NE(service.metrics(), nullptr);
  std::string text = service.metrics()->PrometheusText();
  for (const char* name :
       {"# TYPE uocqa_stage_plan_us histogram",
        "# TYPE uocqa_stage_fpras_trials_us histogram",
        "# TYPE uocqa_stage_exact_dp_us histogram",
        "# TYPE uocqa_stage_result_cache_us histogram",
        "# TYPE uocqa_stage_snapshot_publish_us histogram",
        "# TYPE uocqa_requests_total counter",
        "# TYPE uocqa_live_pending gauge"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name << " missing";
  }
}

TEST(ObservabilityTest, MetricsVerbReportsOffWhenDisabled) {
  ParsedInstance inst = LoadInstance();
  ServiceOptions options;
  options.metrics_enabled = false;
  QueryService service(inst.db, inst.keys, options);
  EXPECT_EQ(service.metrics(), nullptr);
  Request request;
  request.verb = RequestVerb::kMetrics;
  ServiceResponse response = service.Execute(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.payload, "metrics=off");
}

TEST(ObservabilityTest, VersionVerbReportsBuildFields) {
  ParsedInstance inst = LoadInstance();
  QueryService service(inst.db, inst.keys);
  Request request;
  request.verb = RequestVerb::kVersion;
  ServiceResponse response = service.Execute(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.payload, VersionFields());
  EXPECT_NE(response.payload.find("version="), std::string::npos);
  EXPECT_NE(response.payload.find("simd="), std::string::npos);
  EXPECT_NE(response.payload.find("seed_schema=2"), std::string::npos);
}

TEST(ObservabilityTest, MetricsAndVersionParseAsBareVerbs) {
  Result<Request> metrics_line = ParseRequestLine("metrics");
  ASSERT_TRUE(metrics_line.ok());
  EXPECT_EQ(metrics_line->verb, RequestVerb::kMetrics);
  Result<Request> version_line = ParseRequestLine("version");
  ASSERT_TRUE(version_line.ok());
  EXPECT_EQ(version_line->verb, RequestVerb::kVersion);
  EXPECT_FALSE(ParseRequestLine("metrics now").ok());
  EXPECT_EQ(FormatRequestLine(*metrics_line), "metrics");
  EXPECT_EQ(FormatRequestLine(*version_line), "version");
  // trace=1 round-trips through the request formatter.
  Result<Request> traced =
      ParseRequestLine("query='Ans() :- Emp(x, y)' trace=1");
  ASSERT_TRUE(traced.ok());
  EXPECT_TRUE(traced->trace);
  EXPECT_NE(FormatRequestLine(*traced).find(" trace=1"), std::string::npos);
  EXPECT_FALSE(ParseRequestLine("query='Ans() :- Emp(x, y)' trace=2").ok());
}

// --- pool / engine / live instrumentation ------------------------------------

TEST(ObservabilityTest, WorkloadPopulatesStageHistogramsAndPoolCounters) {
  ParsedInstance inst = LoadInstance();
  LiveInstance live(std::move(inst.db), std::move(inst.keys));
  MetricsRegistry registry;
  ServiceOptions options;
  options.metrics = &registry;
  QueryService service(live, options);
  std::vector<std::string> lines = WorkloadLines(false);
  lines.push_back("add_fact rel=Dept args='ops,dave'");
  lines.push_back("begin_snapshot");
  service.ExecuteBatchLines(lines, 4);

  auto count_of = [&](const char* name) {
    return registry.GetHistogram(name)->Take().count;
  };
  EXPECT_GT(count_of("uocqa_stage_parse_us"), 0u);
  EXPECT_GT(count_of("uocqa_stage_plan_us"), 0u);
  EXPECT_GT(count_of("uocqa_stage_compile_us"), 0u);
  EXPECT_GT(count_of("uocqa_stage_exact_dp_us"), 0u);
  EXPECT_GT(count_of("uocqa_stage_fpras_trials_us"), 0u);
  EXPECT_GT(count_of("uocqa_stage_mc_trials_us"), 0u);
  EXPECT_GT(count_of("uocqa_stage_result_cache_us"), 0u);
  EXPECT_GT(count_of("uocqa_stage_request_us"), 0u);
  EXPECT_GT(count_of("uocqa_stage_batch_dispatch_us"), 0u);
  EXPECT_GT(count_of("uocqa_stage_snapshot_publish_us"), 0u);
  EXPECT_EQ(count_of("uocqa_live_delta_facts"), 1u);
  // The batch ran on pool lanes; the ingest drained the pending queue.
  EXPECT_GT(registry.GetCounter("uocqa_pool_tasks_total")->Value(), 0u);
  EXPECT_EQ(registry.GetGauge("uocqa_live_pending")->Value(), 0);
  EXPECT_EQ(registry.GetCounter("uocqa_requests_total")->Value(),
            static_cast<uint64_t>(lines.size()));
}

TEST(ObservabilityTest, StaticServiceRecordsDenominatorComputation) {
  // Live snapshots pre-seed the delta-maintained denominators, so the
  // compute stage only fires in static mode (lazy |ORep|/|CRS| on the
  // FPRAS path, which divides the estimate by the exact denominators).
  ParsedInstance inst = LoadInstance();
  MetricsRegistry registry;
  ServiceOptions options;
  options.metrics = &registry;
  QueryService service(inst.db, inst.keys, options);
  Request request;
  request.query_text = "Ans(x) :- Emp(x, y)";
  request.answer_text = "e1";
  request.mode = RequestMode::kFpras;
  request.epsilon = 0.5;
  request.delta = 0.2;
  request.seed = 7;
  ASSERT_TRUE(service.Execute(request).status.ok());
  EXPECT_GT(
      registry.GetHistogram("uocqa_stage_denominators_us")->Take().count,
      0u);
}

// --- slow-query log ----------------------------------------------------------

TEST(ObservabilityTest, SlowQueryLogCapturesCanonicalTextAndBreakdown) {
  ParsedInstance inst = LoadInstance();
  std::vector<std::string> captured;
  ServiceOptions options;
  options.slow_query_micros = 1;  // every real solver run takes >= 1us
  options.slow_query_sink = [&captured](const std::string& line) {
    captured.push_back(line);
  };
  QueryService service(inst.db, inst.keys, options);
  Request request;
  request.query_text = "Ans(a) :- Emp(a, b), Dept(b, c)";
  request.answer_text = "e1";
  request.mode = RequestMode::kFpras;
  request.epsilon = 0.5;
  request.delta = 0.2;
  request.seed = 7;
  ServiceResponse response = service.Execute(request);
  ASSERT_TRUE(response.status.ok());
  // The sink is active, but the response itself carries no trace field and
  // the payload is the normal bytes.
  EXPECT_TRUE(response.trace.empty());
  ASSERT_FALSE(captured.empty());
  const std::string& line = captured.front();
  EXPECT_EQ(line.rfind("slow_query query='", 0), 0u);
  // Canonical text, not the raw request's variable names.
  EXPECT_NE(line.find("slow_query query='Ans("), std::string::npos);
  EXPECT_NE(line.find("total_us="), std::string::npos);
  EXPECT_NE(line.find("fpras_trials_us="), std::string::npos);
}

}  // namespace
}  // namespace uocqa
