// CompiledNfta: structural equivalence with the mutable Nfta it flattens,
// bitset-run equivalence with the legacy sorted-vector membership oracle,
// and bit-identity pins for the FPRAS selection/sampling rewrite.

#include "automata/compiled_nfta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "automata/exact_count.h"
#include "automata/fpras.h"
#include "automata/nfta.h"
#include "base/rng.h"

namespace uocqa {
namespace {

Nfta RandomAutomaton(uint64_t seed) {
  Rng rng(seed);
  Nfta a;
  size_t n_states = 2 + rng.UniformIndex(4);
  size_t n_symbols = 1 + rng.UniformIndex(3);
  for (size_t i = 0; i < n_states; ++i) a.AddState();
  for (size_t s = 0; s < n_symbols; ++s) {
    a.InternSymbol("s" + std::to_string(s));
  }
  size_t n_transitions = 4 + rng.UniformIndex(10);
  for (size_t i = 0; i < n_transitions; ++i) {
    NftaState from = static_cast<NftaState>(rng.UniformIndex(n_states));
    NftaSymbol sym = static_cast<NftaSymbol>(rng.UniformIndex(n_symbols));
    size_t rank = rng.UniformIndex(4);  // 0..3
    std::vector<NftaState> children;
    for (size_t r = 0; r < rank; ++r) {
      children.push_back(static_cast<NftaState>(rng.UniformIndex(n_states)));
    }
    a.AddTransition(from, sym, std::move(children));
  }
  a.SetInitial(0);
  return a;
}

// The pre-flattening membership oracle, kept verbatim as the reference:
// bottom-up sorted behaviour vectors probed by binary_search.
std::vector<NftaState> LegacyAcceptingStates(const Nfta& a,
                                             const LabeledTree& tree) {
  std::vector<std::vector<NftaState>> child_behaviors;
  child_behaviors.reserve(tree.children.size());
  for (const LabeledTree& c : tree.children) {
    child_behaviors.push_back(LegacyAcceptingStates(a, c));
  }
  std::vector<NftaState> out;
  for (const NftaTransition* t : a.TransitionsWithSymbol(tree.symbol)) {
    if (t->children.size() != tree.children.size()) continue;
    bool ok = true;
    for (size_t i = 0; i < t->children.size(); ++i) {
      if (!std::binary_search(child_behaviors[i].begin(),
                              child_behaviors[i].end(), t->children[i])) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(t->from);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void EnumerateTrees(size_t symbols, size_t size, size_t max_rank,
                    std::vector<LabeledTree>* out) {
  if (size == 0) return;
  for (NftaSymbol s = 0; s < symbols; ++s) {
    if (size == 1) {
      out->push_back(LabeledTree(s));
      continue;
    }
    if (max_rank >= 1) {
      std::vector<LabeledTree> subs;
      EnumerateTrees(symbols, size - 1, max_rank, &subs);
      for (const LabeledTree& c : subs) {
        out->push_back(LabeledTree(s, {c}));
      }
    }
    if (max_rank >= 2) {
      for (size_t left = 1; left + 1 <= size - 1; ++left) {
        std::vector<LabeledTree> ls, rs;
        EnumerateTrees(symbols, left, max_rank, &ls);
        EnumerateTrees(symbols, size - 1 - left, max_rank, &rs);
        for (const LabeledTree& l : ls) {
          for (const LabeledTree& r : rs) {
            out->push_back(LabeledTree(s, {l, r}));
          }
        }
      }
    }
  }
}

// --- CSR structure -----------------------------------------------------------

class CompiledStructureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompiledStructureTest, CsrMatchesSourceAutomaton) {
  Nfta a = RandomAutomaton(GetParam());
  const CompiledNfta& c = a.Compiled();

  EXPECT_EQ(c.state_count(), a.state_count());
  EXPECT_EQ(c.symbol_count(), a.symbol_count());
  EXPECT_EQ(c.transition_count(), a.transition_count());
  EXPECT_EQ(c.max_rank(), a.MaxRank());
  EXPECT_EQ(c.initial(), a.initial());
  EXPECT_EQ(c.words_per_set(), (a.state_count() + 63) / 64);

  // The by-from view is the dense id order; every transition matches its
  // source, children inlined in the arena in order.
  size_t total = 0;
  for (NftaState q = 0; q < a.state_count(); ++q) {
    const std::vector<NftaTransition>& src = a.TransitionsFrom(q);
    CompiledNfta::IdRange range = c.TransitionsFrom(q);
    ASSERT_EQ(range.size(), src.size()) << "state " << q;
    for (size_t i = 0; i < src.size(); ++i) {
      CompiledNfta::TransitionId id = range.begin + i;
      EXPECT_EQ(c.from(id), src[i].from);
      EXPECT_EQ(c.symbol(id), src[i].symbol);
      ASSERT_EQ(c.rank(id), src[i].children.size());
      for (size_t k = 0; k < src[i].children.size(); ++k) {
        EXPECT_EQ(c.children(id)[k], src[i].children[k]);
      }
    }
    total += src.size();
  }
  EXPECT_EQ(total, c.transition_count());

  // The by-symbol view contains exactly the transitions of each symbol.
  for (NftaSymbol s = 0; s < a.symbol_count(); ++s) {
    CompiledNfta::IdRange range = c.TransitionsWithSymbol(s);
    EXPECT_EQ(range.size(), a.TransitionsWithSymbol(s).size());
    for (uint32_t i = range.begin; i < range.end; ++i) {
      EXPECT_EQ(c.symbol(c.group_id(i)), s);
    }
  }

  // (symbol, rank) groups partition all ids; GroupIndex agrees.
  size_t grouped = 0;
  for (size_t gi = 0; gi < c.symbol_rank_groups().size(); ++gi) {
    const CompiledNfta::SymbolRankGroup& g = c.symbol_rank_groups()[gi];
    EXPECT_EQ(c.GroupIndex(g.symbol, g.rank), static_cast<int32_t>(gi));
    for (uint32_t i = g.ids_begin; i < g.ids_end; ++i) {
      CompiledNfta::TransitionId id = c.group_id(i);
      EXPECT_EQ(c.symbol(id), g.symbol);
      EXPECT_EQ(c.rank(id), g.rank);
      ++grouped;
    }
  }
  EXPECT_EQ(grouped, c.transition_count());
  EXPECT_EQ(c.GroupIndex(0, 17), -1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledStructureTest,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

// --- membership equivalence --------------------------------------------------

class CompiledMembershipTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompiledMembershipTest, BitsetRunMatchesLegacyOracle) {
  Nfta a = RandomAutomaton(GetParam() * 131 + 7);
  const CompiledNfta& c = a.Compiled();
  CompiledNfta::Workspace ws;
  std::vector<uint64_t> behavior(c.words_per_set());
  for (size_t size = 1; size <= 5; ++size) {
    std::vector<LabeledTree> all;
    EnumerateTrees(a.symbol_count(), size, 2, &all);
    for (const LabeledTree& t : all) {
      std::vector<NftaState> legacy = LegacyAcceptingStates(a, t);
      // Nfta::AcceptingStates (the compiled delegate) and the raw bitset
      // run agree with the legacy sorted-vector oracle.
      EXPECT_EQ(a.AcceptingStates(t), legacy);
      EXPECT_EQ(c.AcceptingStates(t, &ws), legacy);
      c.BehaviorOf(t, &ws, behavior.data());
      std::vector<NftaState> bits;
      c.AppendSetBits(behavior.data(), &bits);
      EXPECT_EQ(bits, legacy);
      // Accepts / AcceptsFrom agree with membership and with run counting
      // (a tree is accepted iff it has at least one accepting run).
      bool accepted = std::binary_search(legacy.begin(), legacy.end(),
                                         a.initial());
      EXPECT_EQ(a.Accepts(t), accepted);
      EXPECT_EQ(c.Accepts(t, &ws), accepted);
      EXPECT_EQ(a.CountAcceptingRuns(t) > 0, accepted);
      for (NftaState q = 0; q < a.state_count(); ++q) {
        EXPECT_EQ(c.AcceptsFrom(q, t, &ws),
                  std::binary_search(legacy.begin(), legacy.end(), q));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledMembershipTest,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

TEST(CompiledNftaTest, RebuiltAfterMutation) {
  Nfta a;
  NftaState q = a.AddState();
  NftaSymbol x = a.InternSymbol("x");
  a.AddTransition(q, x, {});
  a.SetInitial(q);
  EXPECT_FALSE(a.Accepts(LabeledTree(x, {LabeledTree(x)})));
  // Mutating the automaton invalidates the compiled view.
  a.AddTransition(q, x, {q});
  EXPECT_TRUE(a.Accepts(LabeledTree(x, {LabeledTree(x)})));
  EXPECT_EQ(a.Compiled().transition_count(), 2u);
  // New states widen the bitsets.
  NftaState q2 = a.AddState();
  NftaSymbol y = a.InternSymbol("y");
  a.AddTransition(q2, y, {});
  a.AddTransition(q, x, {q2});
  EXPECT_TRUE(a.Accepts(LabeledTree(x, {LabeledTree(y)})));
}

TEST(CompiledNftaTest, SnapshotOutlivesMutation) {
  Nfta a;
  NftaState q = a.AddState();
  NftaSymbol x = a.InternSymbol("x");
  a.AddTransition(q, x, {});
  a.SetInitial(q);
  std::shared_ptr<const CompiledNfta> snap = a.CompiledShared();
  a.AddTransition(q, x, {q});
  // The snapshot still describes the automaton as it was.
  EXPECT_EQ(snap->transition_count(), 1u);
  EXPECT_EQ(a.Compiled().transition_count(), 2u);
  CompiledNfta::Workspace ws;
  EXPECT_FALSE(snap->Accepts(LabeledTree(x, {LabeledTree(x)}), &ws));
}

TEST(CompiledNftaTest, WorkspaceReusableAcrossAutomata) {
  CompiledNfta::Workspace ws;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Nfta a = RandomAutomaton(seed);
    const CompiledNfta& c = a.Compiled();
    std::vector<LabeledTree> all;
    EnumerateTrees(a.symbol_count(), 3, 2, &all);
    for (const LabeledTree& t : all) {
      EXPECT_EQ(c.AcceptingStates(t, &ws), LegacyAcceptingStates(a, t));
    }
  }
}

// --- FPRAS bit-identity pins -------------------------------------------------
//
// The flattening rewrote proportional selection (prefix sums + binary
// search instead of a linear scan) and tree construction (pooled nodes
// instead of heap LabeledTrees). Both are contractually RNG-neutral: one
// uniform per pick, selecting the same index, sampling children in the
// same order. These constants were recorded from the pre-rewrite
// implementation at fixed seeds; any drift in estimates or sampled trees
// is a regression.

Nfta AmbiguousAutomaton(int k) {
  Nfta a;
  NftaState q0 = a.AddState();
  NftaSymbol sa = a.InternSymbol("a");
  NftaSymbol sb = a.InternSymbol("b");
  for (int i = 0; i < k; ++i) {
    NftaState qi = a.AddState();
    a.AddTransition(q0, sa, {qi});
    a.AddTransition(qi, sb, {qi});
    a.AddTransition(qi, sb, {});
  }
  a.SetInitial(q0);
  return a;
}

Nfta FullBinaryTreeAutomaton() {
  Nfta a;
  NftaState q = a.AddState();
  NftaSymbol x = a.InternSymbol("x");
  a.AddTransition(q, x, {q, q});
  a.AddTransition(q, x, {});
  a.SetInitial(q);
  return a;
}

// Overlap-rich: q0 -a-> q1 (b-chains), q0 -a-> q2 (b|c chains), plus both
// binary branches; unions at every size and rank.
Nfta OverlapAutomaton() {
  Nfta a;
  NftaState q0 = a.AddState();
  NftaState q1 = a.AddState();
  NftaState q2 = a.AddState();
  NftaSymbol sa = a.InternSymbol("a");
  NftaSymbol sb = a.InternSymbol("b");
  NftaSymbol sc = a.InternSymbol("c");
  a.AddTransition(q0, sa, {q1});
  a.AddTransition(q0, sa, {q2});
  a.AddTransition(q0, sa, {q1, q2});
  a.AddTransition(q0, sa, {q2, q1});
  a.AddTransition(q1, sb, {q1});
  a.AddTransition(q1, sb, {});
  a.AddTransition(q2, sb, {q2});
  a.AddTransition(q2, sc, {q2});
  a.AddTransition(q2, sb, {});
  a.AddTransition(q2, sc, {});
  a.SetInitial(q0);
  return a;
}

// --- workspace reuse ---------------------------------------------------------

// One Workspace reused across automata of very different widths: EnsureSlots
// must regrow (and the stale contents of a previous, narrower automaton must
// never leak into results).
TEST(CompiledWorkspaceTest, EnsureSlotsRegrowsAcrossAutomata) {
  CompiledNfta::Workspace ws;

  // Small automaton first (1 word per set) to warm the workspace small.
  Nfta small = RandomAutomaton(12);
  {
    const CompiledNfta& c = small.Compiled();
    LabeledTree leaf(0);
    (void)c.Accepts(leaf, &ws);
  }
  size_t warm = ws.slots.size();

  // Wide automaton: 200 states (4 words per set), accepting chain through
  // high states only.
  Nfta wide;
  for (int i = 0; i < 200; ++i) wide.AddState();
  NftaSymbol sx = wide.InternSymbol("x");
  wide.AddTransition(190, sx, {});            // leaf accepted at state 190
  wide.AddTransition(199, sx, {190});         // unary on top
  wide.SetInitial(199);
  const CompiledNfta& c = wide.Compiled();
  ASSERT_EQ(c.words_per_set(), 4u);

  LabeledTree tree(sx, {LabeledTree(sx)});
  EXPECT_TRUE(c.Accepts(tree, &ws));
  EXPECT_GT(ws.slots.size(), warm);  // regrew for the wider sets

  // Deep tree forces slot-stack growth beyond the initial EnsureSlots.
  Nfta chain;
  for (int i = 0; i < 64; ++i) chain.AddState();
  NftaSymbol cy = chain.InternSymbol("y");
  chain.AddTransition(0, cy, {});
  chain.AddTransition(0, cy, {0});
  chain.SetInitial(0);
  const CompiledNfta& cc = chain.Compiled();
  LabeledTree spine(cy);
  for (int i = 0; i < 50; ++i) spine = LabeledTree(cy, {spine});
  EXPECT_TRUE(cc.Accepts(spine, &ws));

  // And the small automaton still evaluates correctly with the (now large)
  // workspace — no stale high words bleed through.
  std::vector<NftaState> again;
  {
    const CompiledNfta& cs = small.Compiled();
    LabeledTree leaf(0);
    again = cs.AcceptingStates(leaf, &ws);
    for (NftaState q : again) EXPECT_LT(q, cs.state_count());
  }
}

// AppendSetBits with bits only above word 0 (high-word-only sets): the
// 200-state automaton above accepts only at states 190/199, so the bitset
// run's result words 0..2 are zero and word 3 carries everything.
TEST(CompiledWorkspaceTest, AppendSetBitsHighWordOnly) {
  Nfta wide;
  for (int i = 0; i < 200; ++i) wide.AddState();
  NftaSymbol sx = wide.InternSymbol("x");
  wide.AddTransition(190, sx, {});
  wide.AddTransition(199, sx, {190});
  wide.SetInitial(199);
  const CompiledNfta& c = wide.Compiled();

  CompiledNfta::Workspace ws;
  std::vector<NftaState> leaf_states =
      c.AcceptingStates(LabeledTree(sx), &ws);
  EXPECT_EQ(leaf_states, std::vector<NftaState>{190});
  std::vector<NftaState> top_states =
      c.AcceptingStates(LabeledTree(sx, {LabeledTree(sx)}), &ws);
  EXPECT_EQ(top_states, std::vector<NftaState>{199});
}

// The *Pinned tests freeze seed-schema 1: the legacy sequential trial path
// must keep reproducing the historical estimates byte-for-byte. Schema 2
// (the default batched path) has its own pins in the *PinnedV2 tests.
TEST(FprasBitIdentityTest, AmbiguousEstimatesPinned) {
  Nfta a = AmbiguousAutomaton(4);
  FprasConfig cfg;
  cfg.epsilon = 0.1;
  cfg.seed = 99;
  cfg.seed_schema = 1;
  NftaFpras f(a, cfg);
  const double kPinned[] = {
      0.98284552501164812, 0.99267228599262991, 0.99775509339658608,
      1.0036850353678681,  0.98606463636748698, 1.0075818543775679,
      1.0028379008005421};
  for (size_t s = 2; s <= 8; ++s) {
    EXPECT_EQ(f.EstimateExactSize(s), kPinned[s - 2]) << "size " << s;
  }
  EXPECT_EQ(f.EstimateUpTo(8), 6.9734423313143292);
  EXPECT_EQ(f.union_estimations(), 7u);
}

TEST(FprasBitIdentityTest, OverlapEstimatesPinned) {
  struct Pin {
    uint64_t seed;
    double upto7;
  };
  const Pin kPins[] = {{7, 338.93348580141037},
                       {21, 338.93062702496661},
                       {1234567, 339.400609872308}};
  for (const Pin& pin : kPins) {
    Nfta a = OverlapAutomaton();
    FprasConfig cfg;
    cfg.epsilon = 0.15;
    cfg.seed = pin.seed;
    cfg.seed_schema = 1;
    NftaFpras f(a, cfg);
    EXPECT_EQ(f.EstimateUpTo(7), pin.upto7) << "seed " << pin.seed;
    EXPECT_EQ(f.union_estimations(), 21u);
  }
}

TEST(FprasBitIdentityTest, RandomAutomataEstimatesPinned) {
  struct Pin {
    uint64_t seed;
    double upto7;
    size_t unions;
  };
  const Pin kPins[] = {{1, 36.886105104119203, 11}, {2, 1.0, 0},
                       {3, 43.034552845528452, 10}, {4, 31.626920840944642, 5},
                       {5, 0.0, 0},                 {6, 1.0, 0}};
  for (const Pin& pin : kPins) {
    Nfta a = RandomAutomaton(pin.seed * 1000 + 17);
    FprasConfig cfg;
    cfg.epsilon = 0.2;
    cfg.seed = pin.seed;
    cfg.seed_schema = 1;
    NftaFpras f(a, cfg);
    EXPECT_EQ(f.EstimateUpTo(7), pin.upto7) << "seed " << pin.seed;
    EXPECT_EQ(f.union_estimations(), pin.unions) << "seed " << pin.seed;
  }
}

TEST(FprasBitIdentityTest, SampleTracesPinned) {
  {
    Nfta a = FullBinaryTreeAutomaton();
    FprasConfig cfg;
    cfg.seed_schema = 1;
    NftaFpras f(a, cfg);
    Rng rng(5);
    const char* kTrace[] = {
        "x(x,x(x(x,x),x(x,x)))", "x(x(x,x),x(x,x(x,x)))",
        "x(x(x,x),x(x(x,x),x))", "x(x(x(x,x),x(x,x)),x)",
        "x(x,x(x,x(x,x(x,x))))", "x(x(x(x(x,x),x),x),x)",
        "x(x(x,x(x,x(x,x))),x)", "x(x,x(x,x(x,x(x,x))))",
        "x(x,x(x,x(x,x(x,x))))", "x(x,x(x,x(x,x(x,x))))"};
    for (int i = 0; i < 10; ++i) {
      auto t = f.Sample(rng, a.initial(), 9);
      ASSERT_TRUE(t.has_value());
      EXPECT_EQ(a.TreeToString(*t), kTrace[i]) << "draw " << i;
    }
  }
  {
    // Rejection-heavy trace: random automaton with overlapping components.
    Nfta a = RandomAutomaton(3017);
    FprasConfig cfg;
    cfg.seed = 11;
    cfg.seed_schema = 1;
    NftaFpras f(a, cfg);
    Rng rng(42);
    const char* kTrace[] = {
        "s0(s0(s0,s0(s0,s0)))",   "s0(s0(s0(s0),s0(s0)))",
        "s0(s0(s0(s0(s0(s0)))))", "s0(s0(s0(s0(s0,s0))))",
        "s0(s0(s0,s0(s0(s0))))",  "s0(s0(s0(s0),s0(s0)))",
        "s0(s0(s0(s0(s0(s0)))))", "s0(s0(s0(s0,s0),s0))",
        "s0(s0(s0,s0(s0),s0))",   "s0(s0(s0(s0),s0(s0)))"};
    for (int i = 0; i < 10; ++i) {
      auto t = f.Sample(rng, a.initial(), 6);
      ASSERT_TRUE(t.has_value());
      EXPECT_EQ(a.TreeToString(*t), kTrace[i]) << "draw " << i;
    }
  }
}

TEST(FprasBitIdentityTest, OverlapSampleTracesPinned) {
  struct Pin {
    uint64_t seed;
    const char* trace[6];
  };
  const Pin kPins[] = {
      {7,
       {"a(b(c(b(b))))", "a(c(c(b(b))))", "a(b(c),b(b))", "a(b,b(c(c)))",
        "a(b(b(b)),b)", "a(c(c(c(b))))"}},
      {21,
       {"a(b,c(b(b)))", "a(b(b),b(b))", "a(c(b),b(b))", "a(b(c(b)),b)",
        "a(b(b),c(b))", "a(c(b(b(b))))"}},
      {1234567,
       {"a(c(b(b)),b)", "a(b,c(c(b)))", "a(c,b(b(b)))", "a(c(b(c(c))))",
        "a(b(b(b)),c)", "a(b(b),c(b))"}}};
  for (const Pin& pin : kPins) {
    Nfta a = OverlapAutomaton();
    FprasConfig cfg;
    cfg.epsilon = 0.15;
    cfg.seed = pin.seed;
    cfg.seed_schema = 1;
    NftaFpras f(a, cfg);
    // Match the recording: estimates computed first, then sampling.
    (void)f.EstimateUpTo(7);
    Rng rng(pin.seed ^ 0xabcdef);
    for (int i = 0; i < 6; ++i) {
      auto t = f.Sample(rng, a.initial(), 5);
      ASSERT_TRUE(t.has_value());
      EXPECT_EQ(a.TreeToString(*t), pin.trace[i])
          << "seed " << pin.seed << " draw " << i;
    }
  }
}

// Schema-2 (batched, the default) pins: same automata and seeds as the
// schema-1 tests above. Recorded once; any change to the batched path's
// RNG consumption or trial evaluation shows up here.
TEST(FprasBitIdentityTest, AmbiguousEstimatesPinnedV2) {
  Nfta a = AmbiguousAutomaton(4);
  FprasConfig cfg;
  cfg.epsilon = 0.1;
  cfg.seed = 99;
  ASSERT_EQ(cfg.seed_schema, 2);  // batched is the default
  NftaFpras f(a, cfg);
  const double kPinned[] = {
      0.99606082426193399, 1.0109703926468721, 1.0121563810411285,
      0.9979245203100513,  1.0040238891947986, 0.99758566648312086,
      1.0021601931466813};
  for (size_t s = 2; s <= 8; ++s) {
    EXPECT_EQ(f.EstimateExactSize(s), kPinned[s - 2]) << "size " << s;
  }
  EXPECT_EQ(f.EstimateUpTo(8), 7.0208818670845865);
  EXPECT_EQ(f.union_estimations(), 7u);
}

TEST(FprasBitIdentityTest, OverlapEstimatesPinnedV2) {
  struct Pin {
    uint64_t seed;
    double upto7;
  };
  const Pin kPins[] = {{7, 338.80674671240706},
                       {21, 339.16180674671239},
                       {1234567, 338.71602820659422}};
  for (const Pin& pin : kPins) {
    Nfta a = OverlapAutomaton();
    FprasConfig cfg;
    cfg.epsilon = 0.15;
    cfg.seed = pin.seed;
    // The estimate is a function of (automaton, config) only — any thread
    // count must reproduce the serial bits (schema 2 keys RNG streams by
    // global trial index, so chunk partitioning is irrelevant).
    for (size_t threads : {size_t{1}, size_t{3}}) {
      cfg.threads = threads;
      NftaFpras f(a, cfg);
      EXPECT_EQ(f.EstimateUpTo(7), pin.upto7)
          << "seed " << pin.seed << " threads " << threads;
      EXPECT_EQ(f.union_estimations(), 21u);
    }
  }
}

TEST(FprasBitIdentityTest, RandomAutomataEstimatesPinnedV2) {
  struct Pin {
    uint64_t seed;
    double upto7;
    size_t unions;
  };
  const Pin kPins[] = {{1, 37.549305043244701, 11}, {2, 1.0, 0},
                       {3, 43.153455284552848, 10}, {4, 31.895191331802813, 5},
                       {5, 0.0, 0},                 {6, 1.0, 0}};
  for (const Pin& pin : kPins) {
    Nfta a = RandomAutomaton(pin.seed * 1000 + 17);
    FprasConfig cfg;
    cfg.epsilon = 0.2;
    cfg.seed = pin.seed;
    NftaFpras f(a, cfg);
    EXPECT_EQ(f.EstimateUpTo(7), pin.upto7) << "seed " << pin.seed;
    EXPECT_EQ(f.union_estimations(), pin.unions) << "seed " << pin.seed;
  }
}

// Both schemas must agree on which languages are (non-)empty and stay
// within loose relative range of each other — they estimate the same
// quantity at the same accuracy, only the RNG consumption differs.
TEST(FprasBitIdentityTest, SchemasAgreeOnAccuracy) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Nfta a = RandomAutomaton(seed * 1000 + 17);
    FprasConfig cfg;
    cfg.epsilon = 0.2;
    cfg.seed = seed;
    cfg.seed_schema = 1;
    NftaFpras f1(a, cfg);
    cfg.seed_schema = 2;
    NftaFpras f2(a, cfg);
    double e1 = f1.EstimateUpTo(7);
    double e2 = f2.EstimateUpTo(7);
    EXPECT_EQ(e1 == 0.0, e2 == 0.0) << "seed " << seed;
    if (e1 > 0) {
      EXPECT_NEAR(e2 / e1, 1.0, 0.25) << "seed " << seed;
    }
  }
}

TEST(FprasBitIdentityTest, ExactCountsPinned) {
  struct Pin {
    uint64_t seed;
    const char* upto9;
    size_t behaviors;
  };
  const Pin kPins[] = {{1, "197", 3}, {2, "1", 1},   {3, "277", 3},
                       {4, "128", 9}, {5, "0", 1},   {6, "1", 1}};
  for (const Pin& pin : kPins) {
    Nfta a = RandomAutomaton(pin.seed * 1000 + 17);
    ExactTreeCounter c(a);
    EXPECT_EQ(c.CountUpTo(9).ToString(), pin.upto9) << "seed " << pin.seed;
    EXPECT_EQ(c.BehaviorCount(), pin.behaviors) << "seed " << pin.seed;
  }
}

}  // namespace
}  // namespace uocqa
