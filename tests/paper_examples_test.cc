// Golden tests reproducing, end to end, the worked examples the paper
// states with concrete numbers and figures:
//   * Example 1.1 (three repairs; uniform RF = 2/3; trust probabilities);
//   * the §5.1 instance: |ORep| = 432, the tree encoding of the repair
//     D' = {P(a1,c), S(c,d), T(d,a1), U(c,f), U(h,i)} (the paper's figure),
//     and the fact that (D, Q, H) is already in normal form;
//   * Example 5.4: s1 + s2 = 7560 + 1080 = 8640 sequences reach D'.

#include <gtest/gtest.h>

#include "automata/exact_count.h"
#include "db/blocks.h"
#include "hypertree/decomposition.h"
#include "ocqa/rep_builder.h"
#include "ocqa/seq_builder.h"
#include "query/parser.h"
#include "repairs/counting.h"

namespace uocqa {
namespace {

struct Paper51 {
  Database db;
  KeySet keys;
  ConjunctiveQuery query;
  HypertreeDecomposition h;

  Paper51() {
    Schema s;
    s.AddRelationOrDie("P", 2);
    s.AddRelationOrDie("S", 2);
    s.AddRelationOrDie("T", 2);
    s.AddRelationOrDie("U", 2);
    db = Database(s);
    db.Add("P", {"a1", "b"});
    db.Add("P", {"a1", "c"});
    db.Add("P", {"a2", "b"});
    db.Add("P", {"a2", "c"});
    db.Add("P", {"a2", "d"});
    db.Add("S", {"c", "d"});
    db.Add("S", {"c", "e"});
    db.Add("T", {"d", "a1"});
    db.Add("U", {"c", "f"});
    db.Add("U", {"c", "g"});
    db.Add("U", {"h", "i"});
    db.Add("U", {"h", "j"});
    db.Add("U", {"h", "k"});
    for (const char* r : {"P", "S", "T", "U"}) {
      keys.SetKeyOrDie(s.Find(r), {0});
    }
    query = *ParseQuery("Ans() :- P(x,y), S(y,z), T(z,x), U(y,w)");
    // The width-2 decomposition from the paper's figure:
    //   root {x,y,z} / {P, S}; children {x,z} / {T} and {y,w} / {U}.
    VarId x = *query.FindVariable("x");
    VarId y = *query.FindVariable("y");
    VarId z = *query.FindVariable("z");
    VarId w = *query.FindVariable("w");
    DecompVertex root = h.AddNode({x, y, z}, {0, 1}, kInvalidVertex);
    h.AddNode({x, z}, {2}, root);
    h.AddNode({y, w}, {3}, root);
  }
};

TEST(Paper51Test, InstanceIsAlreadyInNormalForm) {
  Paper51 p;
  // Every relation of D occurs in Q; H is strongly complete and 2-uniform —
  // the paper builds the example directly in normal form.
  EXPECT_TRUE(IsInNormalForm(p.db, p.query, p.h));
  EXPECT_EQ(p.h.Width(), 2u);
}

TEST(Paper51Test, RepairCountIs432) {
  Paper51 p;
  BlockPartition blocks = BlockPartition::Compute(p.db, p.keys);
  EXPECT_EQ(CountOperationalRepairs(blocks).ToUint64(), 432u);
}

TEST(Paper51Test, TreeEncodingOfThePapersRepair) {
  Paper51 p;
  auto rep = BuildRepAutomaton(p.db, p.keys, p.query, p.h, {});
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  // One node per block plus the ε root.
  EXPECT_EQ(rep->tree_size, 7u);

  // The paper's figure encodes D' = {P(a1,c), S(c,d), T(d,a1), U(c,f),
  // U(h,i)} as: ε → P(a1,c) → ⊥ → S(c,d), branching into the T path and
  // the U path. Our child order is (T, U) per the fixture.
  Nfta& nfta = rep->nfta;
  auto sym = [&](const char* s) { return nfta.InternSymbol(s); };
  LabeledTree t_branch(sym("T(d,a1)"));
  LabeledTree u_branch(sym("U(c,f)"), {LabeledTree(sym("U(h,i)"))});
  LabeledTree tree(
      sym("_eps"),
      {LabeledTree(
          sym("P(a1,c)"),
          {LabeledTree(sym("_bot"),
                       {LabeledTree(sym("S(c,d)"),
                                    {t_branch, u_branch})})})});
  EXPECT_EQ(tree.Size(), rep->tree_size);
  EXPECT_TRUE(nfta.Accepts(tree)) << nfta.TreeToString(tree);

  // Decoding recovers exactly D'.
  auto kept = rep->DecodeRepair(tree, p.h);
  ASSERT_TRUE(kept.ok());
  Database repair = p.db.Subset(*kept);
  EXPECT_EQ(repair.size(), 5u);
  for (const char* fact : {"P(a1,c)", "S(c,d)", "T(d,a1)", "U(c,f)",
                           "U(h,i)"}) {
    bool found = false;
    for (const Fact& f : repair.facts()) {
      if (FactToString(repair.schema(), f) == fact) found = true;
    }
    EXPECT_TRUE(found) << fact;
  }

  // A tree keeping both P(a1,b) and P(a1,c) cannot exist: labels are one
  // per block; flipping the ⊥ to a different block's fact must be rejected.
  LabeledTree bad(
      sym("_eps"),
      {LabeledTree(
          sym("P(a1,c)"),
          {LabeledTree(sym("P(a1,b)"),  // wrong block position
                       {LabeledTree(sym("S(c,d)"),
                                    {t_branch, u_branch})})})});
  EXPECT_FALSE(nfta.Accepts(bad));
}

TEST(Paper51Test, DistinctTreesEqualEntailingRepairs) {
  Paper51 p;
  auto rep = BuildRepAutomaton(p.db, p.keys, p.query, p.h, {});
  ASSERT_TRUE(rep.ok());
  ExactTreeCounter counter(rep->nfta);
  EXPECT_EQ(counter.CountExactSize(rep->tree_size),
            CountRepairsEntailing(p.db, p.keys, p.query, {}));
}

TEST(Paper51Test, SeqAutomatonOnNormalFormInstance) {
  Paper51 p;
  auto seq = BuildSeqAutomaton(p.db, p.keys, p.query, p.h, {});
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ExactTreeCounter counter(seq->nfta);
  EXPECT_EQ(counter.CountUpTo(seq->max_tree_size),
            CountSequencesEntailing(p.db, p.keys, p.query, {}));
}

TEST(Example54Test, AmplifierFactorsMatchThePaper) {
  // s1 = 1*C(1,0)*3*1*C(3,1)*1*C(4,3)*C(4,4)*1*C(5,4)*2*1*C(7,5) = 7560
  // s2 = 1*C(1,0)*3*1*C(3,1)*1*C(4,3)*C(4,4)*1*C(5,4)*1*C(6,5)   = 1080
  BigInt s1 = BigInt(1) * Binomial(1, 0) * uint64_t{3} * Binomial(3, 1) *
              Binomial(4, 3) * Binomial(4, 4) * Binomial(5, 4) *
              uint64_t{2} * Binomial(7, 5);
  BigInt s2 = BigInt(1) * Binomial(1, 0) * uint64_t{3} * Binomial(3, 1) *
              Binomial(4, 3) * Binomial(4, 4) * Binomial(5, 4) *
              Binomial(6, 5);
  EXPECT_EQ(s1.ToUint64(), 7560u);
  EXPECT_EQ(s2.ToUint64(), 1080u);
  EXPECT_EQ((s1 + s2).ToUint64(), 8640u);
}

}  // namespace
}  // namespace uocqa
