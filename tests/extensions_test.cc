// Tests for the framework extensions: the probabilistic repair model of
// Example 1.1, functional dependencies (paper §6 future work) through the
// PairwiseConstraints interface, and the general enumeration-based RF.

#include <gtest/gtest.h>

#include "db/fds.h"
#include "query/parser.h"
#include "repairs/counting.h"
#include "repairs/operations.h"
#include "repairs/pairwise_rf.h"
#include "repairs/probabilistic.h"

namespace uocqa {
namespace {

struct EmpInstance {
  Database db;
  KeySet keys;

  EmpInstance() {
    Schema s;
    s.AddRelationOrDie("Emp", 2);
    db = Database(s);
    db.Add("Emp", {"1", "Alice"});
    db.Add("Emp", {"1", "Tom"});
    keys.SetKeyOrDie(db.schema().Find("Emp"), {0});
  }
};

// --- probabilistic repairs (Example 1.1) ---------------------------------------

TEST(ProbabilisticTest, Example11Probabilities) {
  EmpInstance inst;
  TrustModel trust;  // both sources 50% reliable
  ProbabilisticRepairModel model(inst.db, inst.keys, trust);
  ASSERT_EQ(model.blocks().block_count(), 1u);
  const std::vector<double>& dist = model.BlockDistribution(0);
  ASSERT_EQ(dist.size(), 3u);
  // "With probability 0.5 * 0.5 = 0.25 we do not trust either tuple ...
  //  with probability (1 - 0.25)/2 = 0.375 we remove either" (Example 1.1).
  EXPECT_DOUBLE_EQ(dist[0], 0.375);  // keep Alice
  EXPECT_DOUBLE_EQ(dist[1], 0.375);  // keep Tom
  EXPECT_DOUBLE_EQ(dist[2], 0.25);   // keep neither
}

TEST(ProbabilisticTest, AnswerProbabilityExactAndMc) {
  EmpInstance inst;
  ProbabilisticRepairModel model(inst.db, inst.keys, TrustModel{});
  auto q = ParseQuery("Ans() :- Emp(x,y)");
  ASSERT_TRUE(q.ok());
  double exact = model.AnswerProbabilityExact(*q, {});
  EXPECT_DOUBLE_EQ(exact, 0.75);  // 1 - Pr[empty repair]
  Rng rng(5);
  EXPECT_NEAR(model.AnswerProbabilityMc(*q, {}, 40000, rng), 0.75, 0.01);
}

TEST(ProbabilisticTest, SkewedTrust) {
  EmpInstance inst;
  TrustModel trust;
  trust.per_fact[0] = 0.9;  // Alice's source highly trusted
  trust.per_fact[1] = 0.1;
  ProbabilisticRepairModel model(inst.db, inst.keys, trust);
  const std::vector<double>& dist = model.BlockDistribution(0);
  // keep-none = 0.1 * 0.9 = 0.09; keep mass 0.91 split 9:1.
  EXPECT_NEAR(dist[2], 0.09, 1e-12);
  EXPECT_NEAR(dist[0], 0.91 * 0.9, 1e-12);
  EXPECT_NEAR(dist[1], 0.91 * 0.1, 1e-12);
  // Distribution sums to 1 and sampling respects it roughly.
  Rng rng(9);
  int alice = 0;
  for (int i = 0; i < 20000; ++i) {
    auto kept = model.SampleRepair(rng);
    if (kept.size() == 1 && kept[0] == 0) ++alice;
  }
  EXPECT_NEAR(alice / 20000.0, 0.819, 0.02);
}

TEST(ProbabilisticTest, UniformTrustZeroMeansAlwaysEmpty) {
  EmpInstance inst;
  TrustModel trust;
  trust.default_trust = 0.0;
  ProbabilisticRepairModel model(inst.db, inst.keys, trust);
  const std::vector<double>& dist = model.BlockDistribution(0);
  EXPECT_DOUBLE_EQ(dist[2], 1.0);
  Rng rng(3);
  EXPECT_TRUE(model.SampleRepair(rng).empty());
}

// --- functional dependencies -----------------------------------------------------

TEST(FdTest, ViolatingPairSemantics) {
  Schema s;
  s.AddRelationOrDie("Emp", 3);  // Emp(id, dept, mgr)
  FdSet fds;
  fds.AddFdOrDie(s.Find("Emp"), {1}, {2});  // dept -> mgr
  Fact a = MakeFact(s, "Emp", {"1", "sales", "carol"});
  Fact b = MakeFact(s, "Emp", {"2", "sales", "dave"});
  Fact c = MakeFact(s, "Emp", {"3", "sales", "carol"});
  Fact d = MakeFact(s, "Emp", {"4", "hr", "erin"});
  EXPECT_TRUE(fds.ViolatingPair(a, b));   // same dept, different mgr
  EXPECT_FALSE(fds.ViolatingPair(a, c));  // same dept, same mgr
  EXPECT_FALSE(fds.ViolatingPair(a, d));  // different dept
  EXPECT_FALSE(fds.ViolatingPair(a, a));
}

TEST(FdTest, TrivialFdRejected) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  FdSet fds;
  EXPECT_FALSE(fds.AddFd(s.Find("R"), {0, 1}, {0}).ok());
}

TEST(FdTest, KeysAsFdsAgreeWithKeySet) {
  EmpInstance inst;
  FdSet fds = KeysAsFds(inst.db.schema(), inst.keys);
  // Same violating pairs, same complete sequences.
  EXPECT_EQ(fds.ViolationsIn(inst.db), Violations(inst.db, inst.keys));
  auto via_keys = EnumerateCompleteSequences(inst.db, inst.keys);
  auto via_fds = EnumerateCompleteSequences(inst.db, fds);
  EXPECT_EQ(via_keys, via_fds);
}

TEST(FdTest, OperationalRepairsUnderProperFd) {
  // Emp(id, dept, mgr) with dept -> mgr: conflicts do NOT form key blocks;
  // fact B conflicts with A and C, but A and C are compatible.
  Schema s;
  s.AddRelationOrDie("Emp", 3);
  Database db(s);
  db.Add("Emp", {"1", "sales", "carol"});  // A
  db.Add("Emp", {"2", "sales", "dave"});   // B (conflicts with A and C)
  db.Add("Emp", {"3", "sales", "carol"});  // C
  FdSet fds;
  fds.AddFdOrDie(s.Find("Emp"), {1}, {2});
  EXPECT_FALSE(fds.SatisfiedBy(db));

  auto q = ParseQuery("Ans() :- Emp(x, y, 'carol')");
  ASSERT_TRUE(q.ok());
  auto rf = ComputePairwiseRf(db, fds, *q, {});
  ASSERT_TRUE(rf.ok()) << rf.status().ToString();
  // Repairs (distinct results of complete sequences): {A,C}, {B}, {A},
  // {C}, {} ... enumerate expectations: any consistent subset reachable by
  // justified deletions. 'carol' survives in every repair containing A or
  // C.
  EXPECT_GT(rf->repairs, 0u);
  EXPECT_GT(rf->sequences, rf->repairs);  // many sequences per repair
  EXPECT_GT(rf->ur(), 0.0);
  EXPECT_LT(rf->ur(), 1.0);
  // Sanity: every enumerated sequence is a valid complete sequence.
  for (const auto& seq : EnumerateCompleteSequences(db, fds)) {
    auto check = CheckSequence(db, fds, seq);
    EXPECT_TRUE(check.repairing);
    EXPECT_TRUE(check.complete);
  }
}

TEST(PairwiseRfTest, MatchesKeyMachineryOnKeyInstances) {
  EmpInstance inst;
  auto q = ParseQuery("Ans() :- Emp(x,y)");
  ASSERT_TRUE(q.ok());
  auto rf = ComputePairwiseRf(inst.db, inst.keys, *q, {});
  ASSERT_TRUE(rf.ok());
  ExactRF ur = ExactRepairFrequency(inst.db, inst.keys, *q, {});
  ExactRF us = ExactSequenceFrequency(inst.db, inst.keys, *q, {});
  EXPECT_EQ(BigInt(rf->repairs_entailing), ur.numerator);
  EXPECT_EQ(BigInt(rf->repairs), ur.denominator);
  EXPECT_EQ(BigInt(rf->sequences_entailing), us.numerator);
  EXPECT_EQ(BigInt(rf->sequences), us.denominator);
}

TEST(PairwiseRfTest, SequenceBudgetEnforced) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  for (int i = 0; i < 6; ++i) {
    db.Add("R", {"k", "v" + std::to_string(i)});
  }
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0});
  auto q = ParseQuery("Ans() :- R(x,y)");
  ASSERT_TRUE(q.ok());
  auto rf = ComputePairwiseRf(db, keys, *q, {}, /*max_sequences=*/10);
  EXPECT_FALSE(rf.ok());
  EXPECT_EQ(rf.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace uocqa
