#include <gtest/gtest.h>

#include "db/blocks.h"
#include "db/database.h"
#include "db/fact.h"
#include "db/keys.h"
#include "db/schema.h"
#include "db/value.h"

namespace uocqa {
namespace {

Schema EmpSchema() {
  Schema s;
  s.AddRelationOrDie("Emp", 2);
  return s;
}

TEST(ValuePoolTest, InternIsStable) {
  Value a1 = ValuePool::Intern("alice-db-test");
  Value a2 = ValuePool::Intern("alice-db-test");
  Value b = ValuePool::Intern("bob-db-test");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(ValuePool::Name(a1), "alice-db-test");
  EXPECT_EQ(ValuePool::InternInt(42), ValuePool::Intern("42"));
}

TEST(SchemaTest, AddAndFind) {
  Schema s;
  auto r = s.AddRelation("R", 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(s.arity(r.value()), 2u);
  EXPECT_EQ(s.name(r.value()), "R");
  EXPECT_EQ(s.Find("R"), r.value());
  EXPECT_EQ(s.Find("S"), kInvalidRelation);
  // Same name, same arity: idempotent.
  auto r2 = s.AddRelation("R", 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), r.value());
  // Same name, different arity: error.
  auto bad = s.AddRelation("R", 3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // Zero arity: error.
  EXPECT_FALSE(s.AddRelation("Z", 0).ok());
}

TEST(DatabaseTest, AddDeduplicatesAndKeepsOrder) {
  Database db(EmpSchema());
  FactId f1 = db.Add("Emp", {"1", "Alice"});
  FactId f2 = db.Add("Emp", {"1", "Tom"});
  FactId f3 = db.Add("Emp", {"1", "Alice"});
  EXPECT_EQ(f1, f3);
  EXPECT_NE(f1, f2);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(FactToString(db.schema(), db.fact(f1)), "Emp(1,Alice)");
  EXPECT_TRUE(db.Contains(MakeFact(db.schema(), "Emp", {"1", "Tom"})));
  EXPECT_EQ(db.Find(MakeFact(db.schema(), "Emp", {"2", "Tom"})), kInvalidFact);
}

TEST(DatabaseTest, ActiveDomainAndSubset) {
  Database db(EmpSchema());
  db.Add("Emp", {"1", "Alice"});
  db.Add("Emp", {"1", "Tom"});
  EXPECT_EQ(db.ActiveDomain().size(), 3u);  // 1, Alice, Tom
  Database sub = db.Subset({0});
  EXPECT_EQ(sub.size(), 1u);
  EXPECT_TRUE(sub.Contains(MakeFact(db.schema(), "Emp", {"1", "Alice"})));
}

TEST(KeySetTest, KeyValueProjectionAndDefault) {
  Schema s = EmpSchema();
  RelationId emp = s.Find("Emp");
  KeySet keys;
  keys.SetKeyOrDie(emp, {0});
  Fact f = MakeFact(s, "Emp", {"1", "Alice"});
  std::vector<Value> kv = keys.KeyValueOf(f);
  ASSERT_EQ(kv.size(), 1u);
  EXPECT_EQ(kv[0], ValuePool::Intern("1"));

  KeySet none;
  EXPECT_EQ(none.KeyValueOf(f), f.args);  // whole tuple when keyless
}

TEST(KeySetTest, RedeclareDifferentKeyFails) {
  Schema s = EmpSchema();
  RelationId emp = s.Find("Emp");
  KeySet keys;
  ASSERT_TRUE(keys.SetKey(emp, {0}).ok());
  ASSERT_TRUE(keys.SetKey(emp, {0}).ok());  // idempotent
  EXPECT_FALSE(keys.SetKey(emp, {1}).ok()); // primary keys are unique
}

TEST(KeySetTest, ViolatingPair) {
  Schema s = EmpSchema();
  RelationId emp = s.Find("Emp");
  KeySet keys;
  keys.SetKeyOrDie(emp, {0});
  Fact a = MakeFact(s, "Emp", {"1", "Alice"});
  Fact t = MakeFact(s, "Emp", {"1", "Tom"});
  Fact b = MakeFact(s, "Emp", {"2", "Bob"});
  EXPECT_TRUE(keys.ViolatingPair(a, t));
  EXPECT_FALSE(keys.ViolatingPair(a, b));
  EXPECT_FALSE(keys.ViolatingPair(a, a));  // same fact is not a violation
}

TEST(ConsistencyTest, DetectsViolations) {
  Database db(EmpSchema());
  RelationId emp = db.schema().Find("Emp");
  KeySet keys;
  keys.SetKeyOrDie(emp, {0});
  db.Add("Emp", {"1", "Alice"});
  EXPECT_TRUE(IsConsistent(db, keys));
  db.Add("Emp", {"1", "Tom"});
  EXPECT_FALSE(IsConsistent(db, keys));
  db.Add("Emp", {"2", "Bob"});
  auto v = Violations(db, keys);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].first, 0u);
  EXPECT_EQ(v[0].second, 1u);
}

TEST(ConsistencyTest, NoDeclaredKeyMeansConsistent) {
  Database db(EmpSchema());
  KeySet keys;
  db.Add("Emp", {"1", "Alice"});
  db.Add("Emp", {"1", "Tom"});
  EXPECT_TRUE(IsConsistent(db, keys));
  EXPECT_TRUE(Violations(db, keys).empty());
}

TEST(BlockPartitionTest, Paper51ExampleBlocks) {
  // Database from the paper's §5.1 discussion: 13 facts, 4 relations.
  Schema s;
  s.AddRelationOrDie("P", 2);
  s.AddRelationOrDie("S", 2);
  s.AddRelationOrDie("T", 2);
  s.AddRelationOrDie("U", 2);
  Database db(s);
  db.Add("P", {"a1", "b"});
  db.Add("P", {"a1", "c"});
  db.Add("P", {"a2", "b"});
  db.Add("P", {"a2", "c"});
  db.Add("P", {"a2", "d"});
  db.Add("S", {"c", "d"});
  db.Add("S", {"c", "e"});
  db.Add("T", {"d", "a1"});
  db.Add("U", {"c", "f"});
  db.Add("U", {"c", "g"});
  db.Add("U", {"h", "i"});
  db.Add("U", {"h", "j"});
  db.Add("U", {"h", "k"});
  KeySet keys;
  for (const char* r : {"P", "S", "T", "U"}) {
    keys.SetKeyOrDie(db.schema().Find(r), {0});
  }
  BlockPartition parts = BlockPartition::Compute(db, keys);
  // Blocks: P(a1,*) size 2, P(a2,*) size 3, S(c,*) size 2, T(d,*) size 1,
  // U(c,*) size 2, U(h,*) size 3.
  ASSERT_EQ(parts.block_count(), 6u);
  EXPECT_EQ(parts.block(0).size(), 2u);  // P(a1)
  EXPECT_EQ(parts.block(1).size(), 3u);  // P(a2)
  EXPECT_EQ(parts.block(2).size(), 2u);  // S(c)
  EXPECT_EQ(parts.block(3).size(), 1u);  // T(d)
  EXPECT_EQ(parts.block(4).size(), 2u);  // U(c)
  EXPECT_EQ(parts.block(5).size(), 3u);  // U(h)
  EXPECT_EQ(parts.ViolatingBlockCount(), 5u);
  // Fact -> block mapping is consistent.
  for (FactId id = 0; id < db.size(); ++id) {
    const Block& b = parts.block(parts.BlockOf(id));
    EXPECT_NE(std::find(b.facts.begin(), b.facts.end(), id), b.facts.end());
  }
  // Relation index.
  EXPECT_EQ(parts.BlocksOfRelation(db.schema().Find("U")).size(), 2u);
  EXPECT_EQ(parts.BlocksOfRelation(db.schema().Find("T")).size(), 1u);
}

}  // namespace
}  // namespace uocqa
