#include <gtest/gtest.h>

#include <set>

#include "ato/ato.h"
#include "ato/build_nfta.h"
#include "ato/computation_dag.h"
#include "automata/exact_count.h"

namespace uocqa {
namespace {

/// Machine that scans the input left to right, existentially emitting one
/// bit per input character: span on input of length n is 2^n. Every emitted
/// bit is one output node, so valid outputs are unary paths ε→b1→...→bn.
Ato GuessBitsMachine() {
  Ato m;
  AtoState init = m.AddState("init", AtoQuantifier::kExistential, true);
  AtoState emit = m.AddState("emit", AtoQuantifier::kExistential, true);
  AtoState acc = m.AddState("accept");
  AtoState rej = m.AddState("reject");
  m.SetAccept(acc);
  m.SetReject(rej);
  m.SetInitial(init);
  for (AtoState s : {init, emit}) {
    // On a non-blank input char: guess a bit and advance.
    m.AddBranch(s, 'a', kAtoBlank, {emit, +1, 0, kAtoBlank, "0"});
    m.AddBranch(s, 'a', kAtoBlank, {emit, +1, 0, kAtoBlank, "1"});
    // At the end of the input: accept.
    m.AddBranch(s, kAtoBlank, kAtoBlank, {acc, 0, 0, kAtoBlank, ""});
  }
  return m;
}

/// Universal machine: the root universally branches into an "L" and an "R"
/// child; each existentially finishes with label suffix x or y. Outputs are
/// trees ε(L:s, R:t) with s,t ∈ {x,y}: span = 4.
Ato UniversalProductMachine() {
  Ato m;
  AtoState init = m.AddState("init", AtoQuantifier::kUniversal, true);
  AtoState left = m.AddState("left", AtoQuantifier::kExistential, true);
  AtoState right = m.AddState("right", AtoQuantifier::kExistential, true);
  AtoState end = m.AddState("end", AtoQuantifier::kExistential, true);
  AtoState acc = m.AddState("accept");
  AtoState rej = m.AddState("reject");
  m.SetAccept(acc);
  m.SetReject(rej);
  m.SetInitial(init);
  m.AddBranch(init, kAtoBlank, kAtoBlank, {left, 0, 0, kAtoBlank, "L"});
  m.AddBranch(init, kAtoBlank, kAtoBlank, {right, 0, 0, kAtoBlank, "R"});
  for (AtoState s : {left, right}) {
    m.AddBranch(s, kAtoBlank, kAtoBlank, {end, 0, 0, kAtoBlank, "x"});
    m.AddBranch(s, kAtoBlank, kAtoBlank, {end, 0, 0, kAtoBlank, "y"});
  }
  m.AddBranch(end, kAtoBlank, kAtoBlank, {acc, 0, 0, kAtoBlank, ""});
  return m;
}

/// Ambiguous machine: two distinct computations emit the same single
/// output; span must be 1.
Ato AmbiguousMachine() {
  Ato m;
  AtoState init = m.AddState("init", AtoQuantifier::kExistential, true);
  AtoState a = m.AddState("a", AtoQuantifier::kExistential, false);
  AtoState b = m.AddState("b", AtoQuantifier::kExistential, false);
  AtoState out = m.AddState("out", AtoQuantifier::kExistential, true);
  AtoState acc = m.AddState("accept");
  AtoState rej = m.AddState("reject");
  m.SetAccept(acc);
  m.SetReject(rej);
  m.SetInitial(init);
  // Two intermediate non-labeling routes writing different work symbols
  // (hence distinct configurations) but the same label.
  m.AddBranch(init, kAtoBlank, kAtoBlank, {a, 0, 0, 'p', "same"});
  m.AddBranch(init, kAtoBlank, kAtoBlank, {b, 0, 0, 'q', "same"});
  m.AddBranch(a, kAtoBlank, 'p', {out, 0, +1, 'p', ""});
  m.AddBranch(b, kAtoBlank, 'q', {out, 0, +1, 'q', ""});
  m.AddBranch(out, kAtoBlank, kAtoBlank, {acc, 0, 0, kAtoBlank, ""});
  return m;
}

/// Machine with a universal branch into one accepting and one rejecting
/// child: no valid outputs.
Ato RejectingUniversalMachine() {
  Ato m;
  AtoState init = m.AddState("init", AtoQuantifier::kUniversal, true);
  AtoState good = m.AddState("good", AtoQuantifier::kExistential, true);
  AtoState bad = m.AddState("bad", AtoQuantifier::kExistential, false);
  AtoState acc = m.AddState("accept");
  AtoState rej = m.AddState("reject");
  m.SetAccept(acc);
  m.SetReject(rej);
  m.SetInitial(init);
  m.AddBranch(init, kAtoBlank, kAtoBlank, {good, 0, 0, kAtoBlank, "g"});
  m.AddBranch(init, kAtoBlank, kAtoBlank, {bad, 0, 0, kAtoBlank, ""});
  m.AddBranch(good, kAtoBlank, kAtoBlank, {acc, 0, 0, kAtoBlank, ""});
  m.AddBranch(bad, kAtoBlank, kAtoBlank, {rej, 0, 0, kAtoBlank, ""});
  return m;
}

/// Looping machine (never terminates): the computation DAG is cyclic.
Ato LoopingMachine() {
  Ato m;
  AtoState init = m.AddState("init", AtoQuantifier::kExistential, true);
  AtoState spin = m.AddState("spin", AtoQuantifier::kExistential, false);
  AtoState acc = m.AddState("accept");
  AtoState rej = m.AddState("reject");
  m.SetAccept(acc);
  m.SetReject(rej);
  m.SetInitial(init);
  m.AddBranch(init, kAtoBlank, kAtoBlank, {spin, 0, 0, kAtoBlank, ""});
  m.AddBranch(spin, kAtoBlank, kAtoBlank, {spin, 0, 0, kAtoBlank, ""});
  return m;
}

TEST(ComputationDagTest, BuildsAndDetectsStructure) {
  Ato m = GuessBitsMachine();
  auto dag = ComputationDag::Build(m, "aa");
  ASSERT_TRUE(dag.ok()) << dag.status().ToString();
  EXPECT_GT(dag->size(), 3u);
  EXPECT_EQ(dag->config(dag->root()).state, m.initial());
  EXPECT_GT(dag->LongestPath(), 1u);
}

TEST(ComputationDagTest, DetectsLoops) {
  Ato m = LoopingMachine();
  auto dag = ComputationDag::Build(m, "");
  EXPECT_FALSE(dag.ok());
  EXPECT_EQ(dag.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SpanTest, GuessBitsSpanIsPowerOfTwo) {
  Ato m = GuessBitsMachine();
  for (size_t n = 0; n <= 6; ++n) {
    auto span = SpanExact(m, std::string(n, 'a'));
    ASSERT_TRUE(span.ok()) << span.status().ToString();
    EXPECT_EQ(span->ToUint64(), uint64_t{1} << n) << "n=" << n;
  }
}

TEST(SpanTest, UniversalProductSpan) {
  Ato m = UniversalProductMachine();
  auto span = SpanExact(m, "");
  ASSERT_TRUE(span.ok()) << span.status().ToString();
  EXPECT_EQ(span->ToUint64(), 4u);
}

TEST(SpanTest, AmbiguityCollapses) {
  Ato m = AmbiguousMachine();
  auto span = SpanExact(m, "");
  ASSERT_TRUE(span.ok()) << span.status().ToString();
  EXPECT_EQ(span->ToUint64(), 1u);
}

TEST(SpanTest, RejectingUniversalHasNoOutputs) {
  Ato m = RejectingUniversalMachine();
  auto span = SpanExact(m, "");
  ASSERT_TRUE(span.ok()) << span.status().ToString();
  EXPECT_TRUE(span->IsZero());
}

TEST(BuildNftaTest, CompiledAutomatonMatchesEnumeration) {
  for (auto& [machine, input] :
       std::vector<std::pair<Ato, std::string>>{
           {GuessBitsMachine(), "aaa"},
           {UniversalProductMachine(), ""},
           {AmbiguousMachine(), ""},
           {RejectingUniversalMachine(), ""}}) {
    auto dag = ComputationDag::Build(machine, input);
    ASSERT_TRUE(dag.ok());
    auto compiled = BuildNftaFromDag(*dag);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    auto outputs =
        EnumerateValidOutputs(*dag, &compiled->nfta, 100000);
    ASSERT_TRUE(outputs.ok()) << outputs.status().ToString();
    // Every enumerated valid output is accepted by the compiled NFTA...
    for (const LabeledTree& t : *outputs) {
      EXPECT_TRUE(compiled->nfta.Accepts(t))
          << compiled->nfta.TreeToString(t);
      EXPECT_LE(t.Size(), compiled->max_tree_size);
    }
    // ...and the distinct-tree count matches exactly (Lemma D.4).
    ExactTreeCounter counter(compiled->nfta);
    EXPECT_EQ(counter.CountUpTo(compiled->max_tree_size).ToUint64(),
              outputs->size());
  }
}

TEST(BuildNftaTest, MaxTreeSizeIsTight) {
  Ato m = GuessBitsMachine();
  auto compiled = BuildNftaFromAto(m, "aaaa");
  ASSERT_TRUE(compiled.ok());
  // Output paths: ε plus 4 bits.
  EXPECT_EQ(compiled->max_tree_size, 5u);
}

TEST(AtoLimitsTest, ConfigurationBudgetEnforced) {
  Ato m = GuessBitsMachine();
  AtoLimits limits;
  limits.max_configurations = 2;
  auto dag = ComputationDag::Build(m, "aaaaaa", limits);
  EXPECT_FALSE(dag.ok());
  EXPECT_EQ(dag.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace uocqa
