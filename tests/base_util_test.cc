#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"

namespace uocqa {
namespace {

TEST(StatusTest, OkAndErrors) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "InvalidArgument: nope");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  UOCQA_ASSIGN_OR_RETURN(int half, Halve(x));
  return Halve(half);
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = Halve(10);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  Result<int> bad = Halve(7);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  Result<int> q = Quarter(12);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value(), 3);
  EXPECT_FALSE(Quarter(10).ok());  // 5 is odd: propagated by the macro
}

TEST(StringsTest, SplitTrimJoin) {
  auto pieces = StrSplit("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(StrTrim("  hi \t\n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_TRUE(StartsWith("keyword", "key"));
  EXPECT_FALSE(StartsWith("ke", "key"));
}

TEST(RngTest, DeterminismAndBounds) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.UniformU64(17), 17u);
    double d = a.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  // Bernoulli extremes.
  EXPECT_FALSE(a.Bernoulli(0.0));
  EXPECT_TRUE(a.Bernoulli(1.0));
}

TEST(RngTest, StreamsAreIndependentAndOrderFree) {
  // Stream k is a pure function of (seed, k): re-deriving it gives the same
  // sequence regardless of which other streams were derived before.
  Rng s0 = Rng::Stream(42, 0);
  Rng s1 = Rng::Stream(42, 1);
  Rng s0_again = Rng::Stream(42, 0);
  uint64_t first0 = s0.NextU64();
  EXPECT_EQ(first0, s0_again.NextU64());
  EXPECT_NE(first0, s1.NextU64());
  // Distinct root seeds give distinct streams at the same index.
  EXPECT_NE(Rng::Stream(42, 7).NextU64(), Rng::Stream(43, 7).NextU64());
  // Neighbouring stream indices are not correlated with plain reseeding.
  EXPECT_NE(Rng::Stream(42, 3).NextU64(), Rng(42 + 3).NextU64());
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(7);
  int buckets[8] = {0};
  const int kTrials = 80000;
  for (int i = 0; i < kTrials; ++i) buckets[rng.UniformU64(8)]++;
  for (int b = 0; b < 8; ++b) {
    EXPECT_NEAR(buckets[b], kTrials / 8, kTrials / 80) << b;
  }
}

}  // namespace
}  // namespace uocqa
