// End-to-end and cross-module properties:
//  * Proposition E.1: the normal form preserves both numerators;
//  * composite (multi-attribute) keys through the whole pipeline;
//  * degenerate instances (consistent databases, empty relations);
//  * classical subset repairs (♯SRepairs) denominators and numerators.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "hypertree/ghd_search.h"
#include "hypertree/normal_form.h"
#include "ocqa/engine.h"
#include "query/eval.h"
#include "query/parser.h"
#include "repairs/counting.h"
#include "workload/generators.h"

namespace uocqa {
namespace {

KeySet RemapKeys(const KeySet& keys, const Schema& from, const Schema& to) {
  KeySet out;
  for (const auto& [rel, positions] : keys.Entries()) {
    RelationId nr = to.Find(from.name(rel));
    if (nr != kInvalidRelation) out.SetKeyOrDie(nr, positions);
  }
  return out;
}

class NormalFormPreservationTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(NormalFormPreservationTest, BothNumeratorsPreserved) {
  Rng rng(GetParam() * 97 + 11);
  // A query over two of the three relations: the third ("Extra") exercises
  // the P-chain of the construction.
  ConjunctiveQuery q = *ParseQuery("Ans() :- A(x,y), B(y,z)");
  Schema s = q.schema();
  s.AddRelationOrDie("Extra", 2);
  Database db(s);
  const char* ks[] = {"k1", "k2"};
  const char* vs[] = {"u", "v"};
  for (int i = 0; i < 4; ++i) {
    db.Add("A", {ks[rng.UniformIndex(2)], vs[rng.UniformIndex(2)]});
    db.Add("B", {vs[rng.UniformIndex(2)], ks[rng.UniformIndex(2)]});
  }
  db.Add("Extra", {"e", "1"});
  db.Add("Extra", {"e", "2"});  // a conflicted block of a non-query relation
  KeySet keys;
  for (const char* r : {"A", "B", "Extra"}) {
    keys.SetKeyOrDie(s.Find(r), {0});
  }

  auto h = DecomposeQuery(q);
  ASSERT_TRUE(h.ok());
  auto nf = ToNormalForm(db, q, *h);
  ASSERT_TRUE(nf.ok()) << nf.status().ToString();
  KeySet nf_keys = RemapKeys(keys, db.schema(), nf->db.schema());

  // Proposition E.1 (with the pad-fact fix documented in DESIGN.md).
  EXPECT_EQ(CountRepairsEntailing(db, keys, q, {}),
            CountRepairsEntailing(nf->db, nf_keys, nf->query, {}))
      << "seed " << GetParam();
  EXPECT_EQ(CountSequencesEntailing(db, keys, q, {}),
            CountSequencesEntailing(nf->db, nf_keys, nf->query, {}))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalFormPreservationTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

TEST(CompositeKeyTest, PipelineWithTwoAttributeKey) {
  // key(R) = {1,2}: facts conflict only when both key attributes agree.
  Schema s;
  s.AddRelationOrDie("R", 3);
  s.AddRelationOrDie("W", 1);
  Database db(s);
  db.Add("R", {"a", "x", "1"});
  db.Add("R", {"a", "x", "2"});  // conflicts with the first
  db.Add("R", {"a", "y", "1"});  // different composite key: no conflict
  db.Add("W", {"1"});
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0, 1});
  keys.SetKeyOrDie(s.Find("W"), {0});

  BlockPartition blocks = BlockPartition::Compute(db, keys);
  EXPECT_EQ(blocks.block_count(), 3u);
  EXPECT_EQ(blocks.ViolatingBlockCount(), 1u);
  EXPECT_EQ(CountOperationalRepairs(blocks).ToUint64(), 3u);

  ConjunctiveQuery q = *ParseQuery("Ans() :- R(a,b,c), W(c)");
  OcqaEngine engine(db, keys);
  ExactRF exact = engine.ExactUr(q, {});
  auto via_automaton = engine.RepairsEntailingViaAutomaton(q, {});
  ASSERT_TRUE(via_automaton.ok()) << via_automaton.status().ToString();
  EXPECT_EQ(*via_automaton, exact.numerator);
  auto seq_automaton = engine.SequencesEntailingViaAutomaton(q, {});
  ASSERT_TRUE(seq_automaton.ok());
  EXPECT_EQ(*seq_automaton, engine.ExactUs(q, {}).numerator);
}

TEST(DegenerateTest, ConsistentDatabase) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  db.Add("R", {"a", "b"});
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0});
  ConjunctiveQuery q = *ParseQuery("Ans() :- R(x,y)");
  OcqaEngine engine(db, keys);
  ExactRF ur = engine.ExactUr(q, {});
  EXPECT_TRUE(ur.denominator.IsOne());
  EXPECT_TRUE(ur.numerator.IsOne());
  auto approx = engine.ApproxUr(q, {});
  ASSERT_TRUE(approx.ok());
  EXPECT_DOUBLE_EQ(approx->value, 1.0);
  auto approx_us = engine.ApproxUs(q, {});
  ASSERT_TRUE(approx_us.ok());
  EXPECT_DOUBLE_EQ(approx_us->value, 1.0);  // only the empty sequence
}

TEST(DegenerateTest, EmptyDatabase) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0});
  ConjunctiveQuery q = *ParseQuery("Ans() :- R(x,y)");
  OcqaEngine engine(db, keys);
  ExactRF ur = engine.ExactUr(q, {});
  EXPECT_TRUE(ur.denominator.IsOne());  // the empty repair
  EXPECT_TRUE(ur.numerator.IsZero());
  auto approx = engine.ApproxUr(q, {});
  ASSERT_TRUE(approx.ok());
  EXPECT_DOUBLE_EQ(approx->value, 0.0);
}

TEST(ClassicalRepairTest, DenominatorAndNumerator) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"1", "b"});
  db.Add("R", {"2", "a"});
  db.Add("R", {"2", "c"});
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0});
  OcqaEngine engine(db, keys);
  // 2 blocks of size 2: 4 classical subset repairs vs 9 operational ones.
  EXPECT_EQ(engine.CountClassicalRepairs().ToUint64(), 4u);
  BlockPartition blocks = BlockPartition::Compute(db, keys);
  EXPECT_EQ(CountOperationalRepairs(blocks).ToUint64(), 9u);

  ConjunctiveQuery q = *ParseQuery("Ans(y) :- R(x,y)");
  std::vector<Value> answer = {ValuePool::Intern("a")};
  auto via_automaton = engine.ClassicalRepairsEntailingViaAutomaton(q, answer);
  ASSERT_TRUE(via_automaton.ok()) << via_automaton.status().ToString();
  EXPECT_EQ(*via_automaton,
            engine.ClassicalRepairsEntailingBruteForce(q, answer));
  // 'a' survives in 3 of the 4 classical repairs.
  EXPECT_EQ(via_automaton->ToUint64(), 3u);
}

TEST(AnswerTupleTest, UnknownConstantGivesZero) {
  Schema s;
  s.AddRelationOrDie("R", 2);
  Database db(s);
  db.Add("R", {"1", "a"});
  db.Add("R", {"1", "b"});
  KeySet keys;
  keys.SetKeyOrDie(s.Find("R"), {0});
  ConjunctiveQuery q = *ParseQuery("Ans(y) :- R(x,y)");
  OcqaEngine engine(db, keys);
  std::vector<Value> answer = {ValuePool::Intern("not-in-domain")};
  EXPECT_TRUE(engine.ExactUr(q, answer).numerator.IsZero());
  auto via_automaton = engine.RepairsEntailingViaAutomaton(q, answer);
  ASSERT_TRUE(via_automaton.ok());
  EXPECT_TRUE(via_automaton->IsZero());
}

TEST(GeneratedPipelineTest, ExactAutomatonBruteForceAgreeAcrossShapes) {
  for (size_t arms = 2; arms <= 3; ++arms) {
    ConjunctiveQuery q = StarQuery(arms);
    Rng rng(arms * 1000);
    DbGenOptions gen;
    gen.blocks_per_relation = 2;
    gen.min_block_size = 1;
    gen.max_block_size = 2;
    gen.domain_size = 3;
    GeneratedInstance inst = GenerateDatabaseForQuery(rng, q, gen);
    OcqaEngine engine(inst.db, inst.keys);
    auto via_automaton = engine.RepairsEntailingViaAutomaton(q, {});
    ASSERT_TRUE(via_automaton.ok());
    EXPECT_EQ(*via_automaton,
              CountRepairsEntailing(inst.db, inst.keys, q, {}))
        << "arms " << arms;
  }
  // Cyclic width-2 query through the full pipeline.
  ConjunctiveQuery cyc = CycleQuery(3);
  Rng rng(77);
  DbGenOptions gen;
  gen.blocks_per_relation = 2;
  gen.min_block_size = 1;
  gen.max_block_size = 2;
  gen.domain_size = 3;
  GeneratedInstance inst = GenerateDatabaseForQuery(rng, cyc, gen);
  OcqaEngine engine(inst.db, inst.keys);
  auto via_automaton = engine.RepairsEntailingViaAutomaton(cyc, {});
  ASSERT_TRUE(via_automaton.ok());
  EXPECT_EQ(*via_automaton, CountRepairsEntailing(inst.db, inst.keys, cyc, {}));
}

}  // namespace
}  // namespace uocqa
