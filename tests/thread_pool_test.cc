// Unit tests for the work-stealing ThreadPool: correctness of iteration
// coverage, empty/degenerate ranges, exception propagation, nesting, and
// reuse after failure. Sizes are kept small enough to be cheap under
// ThreadSanitizer, which is the main consumer of this suite in CI.

#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace uocqa {
namespace {

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  // With one lane the iterations run on the calling thread, in order.
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, CoversEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "iteration " << i;
  }
}

TEST(ThreadPoolTest, RespectsExplicitGrain) {
  ThreadPool pool(3);
  const size_t n = 1000;
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(n, [&](size_t i) { sum.fetch_add(i); }, /*grain=*/7);
  EXPECT_EQ(sum.load(), uint64_t{n} * (n - 1) / 2);
}

TEST(ThreadPoolTest, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(256,
                       [&](size_t i) {
                         if (i == 97) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SkipsRemainingWorkAfterAnException) {
  ThreadPool pool(2);
  std::atomic<size_t> executed{0};
  try {
    pool.ParallelFor(100000, [&](size_t i) {
      if (i == 0) throw std::logic_error("first chunk fails");
      executed.fetch_add(1);
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::logic_error&) {
  }
  // Cancellation is per-task, not per-iteration: some work may have run
  // concurrently with the throw, but the bulk of the range is skipped.
  EXPECT_LT(executed.load(), 100000u);
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   64, [](size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(64, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 64u);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(4);
  const size_t outer = 16;
  const size_t inner = 64;
  std::vector<std::atomic<size_t>> inner_sums(outer);
  for (auto& s : inner_sums) s.store(0);
  pool.ParallelFor(outer, [&](size_t o) {
    pool.ParallelFor(inner,
                     [&](size_t i) { inner_sums[o].fetch_add(i + 1); });
  });
  for (size_t o = 0; o < outer; ++o) {
    ASSERT_EQ(inner_sums[o].load(), inner * (inner + 1) / 2) << o;
  }
}

TEST(ThreadPoolTest, ManySequentialLoopsOnOnePool) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(257, [&](size_t i) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), uint64_t{257} * 256 / 2) << round;
  }
}

TEST(ThreadPoolTest, ConcurrentExternalCallers) {
  // Two plain threads drive loops on the same pool at once; both must see
  // all their iterations.
  ThreadPool pool(4);
  std::atomic<uint64_t> sum_a{0};
  std::atomic<uint64_t> sum_b{0};
  std::thread a([&] {
    pool.ParallelFor(4096, [&](size_t i) { sum_a.fetch_add(i + 1); });
  });
  std::thread b([&] {
    pool.ParallelFor(4096, [&](size_t i) { sum_b.fetch_add(i + 1); });
  });
  a.join();
  b.join();
  EXPECT_EQ(sum_a.load(), uint64_t{4096} * 4097 / 2);
  EXPECT_EQ(sum_b.load(), uint64_t{4096} * 4097 / 2);
}

}  // namespace
}  // namespace uocqa
