// Service-layer tests for live instances: the add_fact / begin_snapshot /
// epoch verbs, epoch-scoped cache invalidation, mixed read/write batch
// determinism, and a concurrent ingest+query stress run (the TSan target
// for the MVCC subsystem).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "db/textio.h"
#include "service/live.h"
#include "service/request.h"
#include "service/service.h"

namespace uocqa {
namespace {

constexpr const char* kInstance = R"(
key Emp = 1
Emp(e1, hw)
Emp(e1, sw)
Emp(e2, hw)
key Dept = 1
Dept(hw, alice)
Dept(hw, bob)
Dept(sw, carol)
)";

ParsedInstance LoadInstance() {
  auto inst = ParseInstanceText(kInstance);
  EXPECT_TRUE(inst.ok());
  return *std::move(inst);
}

Request QueryRequest(const std::string& query, RequestMode mode) {
  Request out;
  out.query_text = query;
  out.mode = mode;
  out.epsilon = 0.5;
  out.delta = 0.2;
  out.samples = 200;
  out.seed = 7;
  return out;
}

Request AddFactRequest(const std::string& rel, const std::string& args) {
  Request out;
  out.verb = RequestVerb::kAddFact;
  out.fact_relation = rel;
  out.fact_args = args;
  return out;
}

Request VerbRequest(RequestVerb verb) {
  Request out;
  out.verb = verb;
  return out;
}

// --- protocol verbs --------------------------------------------------------

TEST(ServiceLiveTest, VerbsDriveEpochsAndStampResponses) {
  ParsedInstance inst = LoadInstance();
  LiveInstance live(std::move(inst.db), inst.keys);
  QueryService service(live);

  ServiceResponse epoch0 = service.Execute(VerbRequest(RequestVerb::kEpoch));
  ASSERT_TRUE(epoch0.status.ok());
  EXPECT_TRUE(epoch0.has_epoch);
  EXPECT_EQ(epoch0.epoch, 0u);
  EXPECT_EQ(epoch0.payload, "facts=6");

  ServiceResponse added = service.Execute(AddFactRequest("Dept", "ops,dave"));
  ASSERT_TRUE(added.status.ok());
  EXPECT_EQ(added.payload, "pending=1");
  EXPECT_EQ(added.epoch, 0u);  // queued, not yet served

  // Queries are stamped with the epoch they were served against; the
  // pending delta is invisible until begin_snapshot.
  ServiceResponse before =
      service.Execute(QueryRequest("Ans() :- Dept(x, y)", RequestMode::kExact));
  ASSERT_TRUE(before.status.ok());
  EXPECT_TRUE(before.has_epoch);
  EXPECT_EQ(before.epoch, 0u);

  ServiceResponse merged =
      service.Execute(VerbRequest(RequestVerb::kBeginSnapshot));
  ASSERT_TRUE(merged.status.ok());
  EXPECT_EQ(merged.epoch, 1u);
  EXPECT_EQ(merged.payload, "facts=7");
  EXPECT_EQ(service.epoch(), 1u);

  ServiceResponse after =
      service.Execute(QueryRequest("Ans() :- Dept(x, y)", RequestMode::kExact));
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.epoch, 1u);

  // Bad writes are request errors, not process state.
  EXPECT_FALSE(service.Execute(AddFactRequest("Nope", "a,b")).status.ok());
  EXPECT_FALSE(service.Execute(AddFactRequest("Emp", "only_one")).status.ok());
  EXPECT_EQ(service.epoch(), 1u);
}

TEST(ServiceLiveTest, StaticServicesRejectWritesAndStayUnstamped) {
  ParsedInstance inst = LoadInstance();
  QueryService service(inst.db, inst.keys);

  EXPECT_FALSE(
      service.Execute(AddFactRequest("Emp", "e9,hw")).status.ok());
  EXPECT_FALSE(
      service.Execute(VerbRequest(RequestVerb::kBeginSnapshot)).status.ok());

  // The epoch verb answers (epoch 0 forever), and query responses carry no
  // epoch field — static response lines are byte-identical to the pre-live
  // format.
  ServiceResponse epoch = service.Execute(VerbRequest(RequestVerb::kEpoch));
  ASSERT_TRUE(epoch.status.ok());
  EXPECT_EQ(epoch.epoch, 0u);
  ServiceResponse query =
      service.Execute(QueryRequest("Ans() :- Emp(x, y)", RequestMode::kExact));
  ASSERT_TRUE(query.status.ok());
  EXPECT_FALSE(query.has_epoch);
  EXPECT_EQ(FormatResponseLine(0, query).rfind("0 ok miss exact_ur", 0), 0u);
}

// --- epoch-scoped cache invalidation ---------------------------------------

TEST(ServiceLiveTest, UntouchedRelationExactResultsSurviveIngest) {
  ParsedInstance inst = LoadInstance();
  LiveInstance live(std::move(inst.db), inst.keys);
  QueryService service(live);
  Request exact_emp = QueryRequest("Ans() :- Emp(x, y)", RequestMode::kExact);

  ServiceResponse miss = service.Execute(exact_emp);
  ASSERT_TRUE(miss.status.ok());
  EXPECT_FALSE(miss.cache_hit);
  ServiceResponse hit = service.Execute(exact_emp);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.payload, miss.payload);

  // Ingest a conflict-free fact into Dept: the instance fingerprint moves,
  // but the exact result on Emp survives — served from cache, byte-equal
  // payload, new epoch stamp.
  uint64_t fingerprint_before = service.instance_fingerprint();
  ASSERT_TRUE(
      service.Execute(AddFactRequest("Dept", "ops,dave")).status.ok());
  ASSERT_TRUE(service.Execute(VerbRequest(RequestVerb::kBeginSnapshot))
                  .status.ok());
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_NE(service.instance_fingerprint(), fingerprint_before);

  ServiceResponse survived = service.Execute(exact_emp);
  ASSERT_TRUE(survived.status.ok());
  EXPECT_TRUE(survived.cache_hit);
  EXPECT_EQ(survived.payload, miss.payload);
  EXPECT_EQ(survived.epoch, 1u);
}

TEST(ServiceLiveTest, ConflictingOrFootprintIngestInvalidatesExactResults) {
  ParsedInstance inst = LoadInstance();
  LiveInstance live(std::move(inst.db), inst.keys);
  QueryService service(live);
  Request exact_emp = QueryRequest("Ans() :- Emp(x, y)", RequestMode::kExact);

  ServiceResponse first = service.Execute(exact_emp);
  ASSERT_TRUE(first.status.ok());
  EXPECT_TRUE(service.Execute(exact_emp).cache_hit);

  // A *conflicting* insert into Dept changes the global |ORep|/|CRS|
  // denominators, which every exact payload embeds — the entry must not
  // replay even though Dept is outside the query's footprint.
  ASSERT_TRUE(
      service.Execute(AddFactRequest("Dept", "sw,frank")).status.ok());
  ASSERT_TRUE(service.Execute(VerbRequest(RequestVerb::kBeginSnapshot))
                  .status.ok());
  ServiceResponse after_conflict = service.Execute(exact_emp);
  ASSERT_TRUE(after_conflict.status.ok());
  EXPECT_FALSE(after_conflict.cache_hit);
  EXPECT_NE(after_conflict.payload, first.payload);

  // An insert into the query's own relation invalidates even when it is
  // conflict-free.
  EXPECT_TRUE(service.Execute(exact_emp).cache_hit);
  ASSERT_TRUE(service.Execute(AddFactRequest("Emp", "e9,hw")).status.ok());
  ASSERT_TRUE(service.Execute(VerbRequest(RequestVerb::kBeginSnapshot))
                  .status.ok());
  ServiceResponse after_touch = service.Execute(exact_emp);
  ASSERT_TRUE(after_touch.status.ok());
  EXPECT_FALSE(after_touch.cache_hit);
}

TEST(ServiceLiveTest, FprasResultsInvalidateOnAnyIngest) {
  ParsedInstance inst = LoadInstance();
  LiveInstance live(std::move(inst.db), inst.keys);
  QueryService service(live);
  Request fpras_emp = QueryRequest("Ans() :- Emp(x, y)", RequestMode::kFpras);

  ServiceResponse first = service.Execute(fpras_emp);
  ASSERT_TRUE(first.status.ok());
  EXPECT_TRUE(service.Execute(fpras_emp).cache_hit);

  // Even a conflict-free insert into an unrelated relation invalidates
  // FPRAS entries: the normal form pads every relation into the automaton.
  ASSERT_TRUE(
      service.Execute(AddFactRequest("Dept", "ops,dave")).status.ok());
  ASSERT_TRUE(service.Execute(VerbRequest(RequestVerb::kBeginSnapshot))
                  .status.ok());
  ServiceResponse after = service.Execute(fpras_emp);
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_TRUE(service.Execute(fpras_emp).cache_hit);
}

// --- mixed batches ---------------------------------------------------------

TEST(ServiceLiveTest, MixedBatchesAreByteIdenticalAtAnyLaneCount) {
  const std::vector<std::string> lines = {
      "query='Ans() :- Emp(x, y), Dept(y, z)' mode=exact",
      "query='Ans(x) :- Emp(x, y)' answer=e1 mode=mc samples=200 seed=3",
      "query='Ans() :- Dept(x, y)' mode=exact",
      "add_fact rel=Dept args='ops,dave'",
      "begin_snapshot",
      "query='Ans() :- Dept(x, y)' mode=exact",
      "query='Ans() :- Emp(x, y), Dept(y, z)' mode=exact",
      "epoch",
      "add_fact rel=Emp args='e2,ops'",
      "begin_snapshot",
      "query='Ans() :- Emp(x, y), Dept(y, z)' mode=exact",
      "query='Ans(x) :- Emp(x, y)' answer=e1 mode=mc samples=200 seed=3",
      "stats_is_not_a_verb",  // parse error: slot keeps the error, no barrier
      "epoch",
  };
  auto render = [&](size_t threads) {
    ParsedInstance inst = LoadInstance();
    LiveInstance live(std::move(inst.db), inst.keys);
    QueryService service(live);
    std::vector<ServiceResponse> responses =
        service.ExecuteBatchLines(lines, threads);
    std::vector<std::string> out;
    for (size_t i = 0; i < responses.size(); ++i) {
      out.push_back(FormatResponseLine(i, responses[i]));
    }
    return out;
  };

  std::vector<std::string> serial = render(1);
  EXPECT_EQ(render(4), serial);
  EXPECT_EQ(render(8), serial);

  // The barriers are real: queries before the first begin_snapshot are
  // served at epoch 0, between the snapshots at 1, after at 2 — and the
  // Dept count visibly grows across its ingest.
  EXPECT_EQ(serial[0].rfind("0 ok miss epoch=0", 0), 0u);
  EXPECT_EQ(serial[5].rfind("5 ok miss epoch=1", 0), 0u);
  EXPECT_EQ(serial[7], "7 ok miss epoch=1 facts=7");
  EXPECT_EQ(serial[10].rfind("10 ok miss epoch=2", 0), 0u);
  EXPECT_EQ(serial[13], "13 ok miss epoch=2 facts=8");
  // The repeated mc query (line 1, epoch 0) must not replay at line 11:
  // its own relation Emp gained a fact in the second ingest.
  EXPECT_EQ(serial[11].rfind("11 ok miss epoch=2", 0), 0u);
  // The parse error occupies its slot without derailing the batch.
  EXPECT_EQ(serial[12].rfind("12 error ", 0), 0u);
}

// --- concurrent ingest + query stress (the TSan target) --------------------

TEST(ServiceLiveStressTest, ConcurrentIngestAndQueriesStayCoherent) {
  ParsedInstance inst = LoadInstance();
  LiveInstance live(std::move(inst.db), inst.keys);
  QueryService service(live);

  constexpr size_t kReaders = 4;
  constexpr size_t kQueriesPerReader = 32;
  constexpr size_t kEpochs = 12;
  std::atomic<bool> done{false};

  // Readers hammer one exact query and record (epoch, payload) pairs.
  std::vector<std::vector<std::pair<uint64_t, std::string>>> seen(kReaders);
  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Request query =
          QueryRequest("Ans() :- Emp(x, y), Dept(y, z)", RequestMode::kExact);
      for (size_t i = 0; i < kQueriesPerReader; ++i) {
        ServiceResponse response = service.Execute(query);
        ASSERT_TRUE(response.status.ok());
        ASSERT_TRUE(response.has_epoch);
        seen[r].emplace_back(response.epoch, response.payload);
      }
    });
  }
  // One writer ingests a conflict-free fact per epoch and snapshots.
  threads.emplace_back([&] {
    for (size_t e = 0; e < kEpochs; ++e) {
      ServiceResponse added = service.Execute(
          AddFactRequest("Dept", "k" + std::to_string(e) + ",v"));
      ASSERT_TRUE(added.status.ok());
      ServiceResponse snapped =
          service.Execute(VerbRequest(RequestVerb::kBeginSnapshot));
      ASSERT_TRUE(snapped.status.ok());
      EXPECT_EQ(snapped.epoch, e + 1);
    }
    done = true;
  });
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(done.load());
  EXPECT_EQ(service.epoch(), kEpochs);

  // Per reader: epochs never go backwards. Across everything: one payload
  // per epoch — every request pinned a coherent snapshot, and (these
  // ingests being conflict-free and outside nothing — the query touches
  // both relations) each epoch's answer is internally consistent.
  std::map<uint64_t, std::string> by_epoch;
  for (size_t r = 0; r < kReaders; ++r) {
    uint64_t last = 0;
    for (const auto& [epoch, payload] : seen[r]) {
      EXPECT_GE(epoch, last);
      last = epoch;
      auto [it, inserted] = by_epoch.emplace(epoch, payload);
      if (!inserted) {
        EXPECT_EQ(it->second, payload);
      }
    }
  }
  EXPECT_FALSE(by_epoch.empty());

  // The end state equals a from-scratch service over the same facts: the
  // stress run left no torn state behind.
  ParsedInstance oracle = LoadInstance();
  for (size_t e = 0; e < kEpochs; ++e) {
    oracle.db.Add("Dept", {"k" + std::to_string(e), "v"});
  }
  QueryService fresh(oracle.db, oracle.keys);
  Request query =
      QueryRequest("Ans() :- Emp(x, y), Dept(y, z)", RequestMode::kExact);
  EXPECT_EQ(service.Execute(query).payload, fresh.Execute(query).payload);
}

}  // namespace
}  // namespace uocqa
