// The headline result as a runnable study: exact counting blows up
// exponentially with the database while the FPRAS pipeline stays
// polynomial (Theorems 3.4 + 3.6).
//
// We grow the number of conflict blocks of a fixed chain query's database
// and time (a) the brute-force exact numerator (enumerates all operational
// repairs) against (b) the automaton pipeline (normal form -> Rep[k] NFTA
// -> FPRAS estimate). The brute-force column grows with |ORep| = prod
// (n_B + 1); the FPRAS column grows polynomially with the automaton size.

#include <chrono>
#include <cstdio>

#include "db/blocks.h"
#include "ocqa/engine.h"
#include "repairs/counting.h"
#include "workload/generators.h"

using namespace uocqa;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  ConjunctiveQuery query = ChainQuery(2);
  std::printf("query: %s\n\n", query.ToString().c_str());
  std::printf("%8s %8s %16s %12s %12s %12s %12s\n", "blocks", "facts",
              "|ORep|", "exact(ms)", "fpras(ms)", "RF exact", "RF fpras");

  // Brute force enumerates every operational repair; skip it once the
  // repair space exceeds this budget (it would take hours).
  const double kExactBudget = 2e6;

  for (size_t blocks_per_rel : {2, 4, 6, 8, 10, 12, 14}) {
    Rng rng(100 + blocks_per_rel);
    DbGenOptions gen;
    gen.blocks_per_relation = blocks_per_rel;
    gen.min_block_size = 2;
    gen.max_block_size = 3;
    gen.domain_size = blocks_per_rel + 4;
    GeneratedInstance inst = GenerateDatabaseForQuery(rng, query, gen);
    OcqaEngine engine(inst.db, inst.keys);

    BigInt orep =
        CountOperationalRepairs(BlockPartition::Compute(inst.db, inst.keys));
    bool run_exact = orep.ToDouble() <= kExactBudget;

    double exact_ms = 0;
    ExactRF exact;
    if (run_exact) {
      auto t0 = std::chrono::steady_clock::now();
      exact = engine.ExactUr(query, {});
      exact_ms = MillisSince(t0);
    }

    OcqaOptions options;
    options.fpras.epsilon = 0.2;
    options.fpras.seed = 1;
    auto t0 = std::chrono::steady_clock::now();
    auto approx = engine.ApproxUr(query, {}, options);
    double fpras_ms = MillisSince(t0);
    if (!approx.ok()) {
      std::fprintf(stderr, "pipeline error: %s\n",
                   approx.status().ToString().c_str());
      return 1;
    }

    char exact_time[32], exact_rf[32];
    if (run_exact) {
      std::snprintf(exact_time, sizeof(exact_time), "%.2f", exact_ms);
      std::snprintf(exact_rf, sizeof(exact_rf), "%.6f", exact.value());
    } else {
      std::snprintf(exact_time, sizeof(exact_time), "(skipped)");
      std::snprintf(exact_rf, sizeof(exact_rf), "-");
    }
    std::printf("%8zu %8zu %16s %12s %12.2f %12s %12.6f\n",
                blocks_per_rel * 2, inst.db.size(), orep.ToString().c_str(),
                exact_time, fpras_ms, exact_rf, approx->value);
  }
  std::printf(
      "\nThe exact column tracks |ORep| (exponential in the number of"
      "\nblocks) and is skipped once enumeration would exceed the budget;"
      "\nthe FPRAS keeps answering because its cost tracks the polynomial"
      "\nautomaton size — the shape of Theorems 3.4 + 3.6.\n");
  return 0;
}
