// Quickstart: the paper's Example 1.1.
//
// A data-integration pipeline ingested Emp(1, Alice) and Emp(1, Tom) from
// two sources, violating the primary key of Emp. Operational repairs allow
// deleting either fact *or both* (when we trust neither source), giving
// three repairs. This program builds the instance, enumerates repairs and
// complete repairing sequences, and computes the relative frequencies
// RF_ur / RF_us of the query "is there some employee with id 1?" exactly,
// via the compiled Rep[k]/Seq[k] tree automata, and via the FPRAS.

#include <cstdio>

#include "ocqa/engine.h"
#include "query/parser.h"
#include "repairs/counting.h"
#include "repairs/probabilistic.h"
#include "repairs/operations.h"

using namespace uocqa;

int main() {
  // 1. Schema, database, primary keys.
  Schema schema;
  schema.AddRelationOrDie("Emp", 2);
  Database db(schema);
  db.Add("Emp", {"1", "Alice"});
  db.Add("Emp", {"1", "Tom"});
  KeySet keys;
  keys.SetKeyOrDie(schema.Find("Emp"), {0});  // key(Emp) = {1} in the paper

  std::printf("Database D:\n%s", db.ToString().c_str());
  std::printf("Consistent w.r.t. key(Emp)={1}: %s\n\n",
              IsConsistent(db, keys) ? "yes" : "no");

  // 2. The three complete repairing sequences and operational repairs.
  std::printf("Complete repairing sequences:\n");
  for (const RepairingSequence& s : EnumerateCompleteSequences(db, keys)) {
    Database repair = db.Subset(ApplySequence(db, s));
    std::printf("  %-28s ->  {%s}\n", SequenceToString(db, s).c_str(),
                repair.empty() ? ""
                               : FactToString(repair.schema(),
                                              repair.fact(0)).c_str());
  }

  // 3. The query: is some employee with id 1 present?
  auto query = ParseQuery("Ans() :- Emp(x, y)");
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  OcqaEngine engine(db, keys);

  // 4. Exact relative frequencies (2 of the 3 repairs/sequences entail Q).
  ExactRF ur = engine.ExactUr(*query, {});
  ExactRF us = engine.ExactUs(*query, {});
  std::printf("\nRF_ur = %s / %s = %.6f\n", ur.numerator.ToString().c_str(),
              ur.denominator.ToString().c_str(), ur.value());
  std::printf("RF_us = %s / %s = %.6f\n", us.numerator.ToString().c_str(),
              us.denominator.ToString().c_str(), us.value());

  // 5. The same numerators through the compiled tree automata (Lemmas
  //    5.2 / 5.3): normal form -> Rep[k]/Seq[k] NFTA -> distinct-tree count.
  auto rep_count = engine.RepairsEntailingViaAutomaton(*query, {});
  auto seq_count = engine.SequencesEntailingViaAutomaton(*query, {});
  if (rep_count.ok() && seq_count.ok()) {
    std::printf("\nvia Rep[k] automaton: |{D' entailing Q}| = %s\n",
                rep_count->ToString().c_str());
    std::printf("via Seq[k] automaton: |{s entailing Q}|  = %s\n",
                seq_count->ToString().c_str());
  }

  // 6. FPRAS (Theorem 3.6) and Monte-Carlo baseline.
  OcqaOptions options;
  options.fpras.epsilon = 0.1;
  options.fpras.seed = 2024;
  auto approx = engine.ApproxUr(*query, {}, options);
  if (approx.ok()) {
    std::printf("\nFPRAS  RF_ur ~= %.6f  (automaton: %zu states, %zu "
                "transitions)\n",
                approx->value, approx->automaton_states,
                approx->automaton_transitions);
  }
  std::printf("MC     RF_ur ~= %.6f  (20000 uniform repair samples)\n",
              engine.MonteCarloUr(*query, {}, 20000, 7));

  // 7. Example 1.1's original motivation: non-uniform, trust-weighted
  //    operations. With both sources 50% reliable the paper derives repair
  //    probabilities 0.25 (empty), 0.375 (Alice), 0.375 (Tom).
  ProbabilisticRepairModel model(db, keys, TrustModel{});
  const std::vector<double>& dist = model.BlockDistribution(0);
  std::printf(
      "\nTrust-weighted repairs (Example 1.1, both sources 50%% reliable):\n"
      "  Pr[{Emp(1,Alice)}] = %.3f\n"
      "  Pr[{Emp(1,Tom)}]   = %.3f\n"
      "  Pr[{}]             = %.3f\n"
      "  Pr[query true]     = %.3f\n",
      dist[0], dist[1], dist[2], model.AnswerProbabilityExact(*query, {}));
  return 0;
}
