// Data-integration scenario: ranking candidate answers by their repair
// relative frequency.
//
// Three partially-trusted feeds loaded a small CRM: Customer(id, city) and
// Order(order_id, customer_id). Conflicting ingests left key violations in
// both relations. The analyst asks: "which cities have a customer with an
// order?" — Ans(c) :- Customer(x, c), Order(o, x). Instead of certain
// answers (true in *all* repairs — often empty under conflicting feeds),
// uniform operational CQA grades every candidate city by the fraction of
// operational repairs (RF_ur) and repairing sequences (RF_us) supporting
// it, computed exactly and by Monte-Carlo over the exact-uniform samplers.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ocqa/engine.h"
#include "query/eval.h"
#include "query/parser.h"

using namespace uocqa;

int main() {
  Schema schema;
  schema.AddRelationOrDie("Customer", 2);
  schema.AddRelationOrDie("Ord", 2);
  Database db(schema);

  // Feed A and feed B disagree about customers 17 and 23; feed C added a
  // clean customer 31.
  db.Add("Customer", {"17", "paris"});
  db.Add("Customer", {"17", "london"});   // conflict on id 17
  db.Add("Customer", {"23", "berlin"});
  db.Add("Customer", {"23", "madrid"});
  db.Add("Customer", {"23", "lisbon"});   // three-way conflict on id 23
  db.Add("Customer", {"31", "oslo"});     // consistent
  // Orders; order 901's customer reference is itself conflicted.
  db.Add("Ord", {"901", "17"});
  db.Add("Ord", {"901", "23"});           // conflict on order 901
  db.Add("Ord", {"902", "23"});
  db.Add("Ord", {"903", "31"});

  KeySet keys;
  keys.SetKeyOrDie(schema.Find("Customer"), {0});
  keys.SetKeyOrDie(schema.Find("Ord"), {0});

  auto query = ParseQuery("Ans(c) :- Customer(x, c), Ord(o, x)");
  if (!query.ok()) return 1;

  OcqaEngine engine(db, keys);
  std::printf("query: %s\n", query->ToString().c_str());
  std::printf("|ORep| = %s   |CRS| = %s\n\n",
              engine.ExactUr(*query, {ValuePool::Intern("oslo")})
                  .denominator.ToString().c_str(),
              engine.ExactUs(*query, {ValuePool::Intern("oslo")})
                  .denominator.ToString().c_str());

  // Candidate answers: all cities in the active domain.
  std::vector<std::string> cities = {"paris",  "london", "berlin",
                                     "madrid", "lisbon", "oslo"};
  struct Row {
    std::string city;
    double ur, us, mc;
  };
  std::vector<Row> rows;
  for (const std::string& city : cities) {
    std::vector<Value> answer = {ValuePool::Intern(city)};
    Row row;
    row.city = city;
    row.ur = engine.ExactUr(*query, answer).value();
    row.us = engine.ExactUs(*query, answer).value();
    row.mc = engine.MonteCarloUr(*query, answer, 20000, 11);
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.ur > b.ur; });

  std::printf("%-10s %12s %12s %14s\n", "city", "RF_ur", "RF_us",
              "RF_ur (MC)");
  for (const Row& r : rows) {
    std::printf("%-10s %12.6f %12.6f %14.6f\n", r.city.c_str(), r.ur, r.us,
                r.mc);
  }
  std::printf(
      "\nInterpretation: oslo is a *certain* answer (RF = 1: customer 31 and"
      "\norder 903 are conflict-free); the graded answers below it reflect"
      "\nhow much of the repair space supports each city. Note RF_ur and"
      "\nRF_us differ: sequence counting weights repairs by how many"
      "\nrepairing processes reach them.\n");
  return 0;
}
