// Sensor-fusion scenario with a cyclic (width-2) query and an FPRAS
// epsilon sweep.
//
// A mesh of sensors reports Reading(sensor, value); link tables LinkAB,
// LinkBC, LinkCA describe a triangular routing overlay whose consistency we
// interrogate: Ans() :- LinkAB(x,y), LinkBC(y,z), LinkCA(z,x) — a cyclic
// self-join-free query of generalized hypertreewidth 2, i.e. exactly the
// regime where Theorem 3.6's combined-complexity FPRAS applies and the
// paper's data-complexity techniques do not directly help. Duplicate
// detections make every relation key-inconsistent.
//
// The program compares the exact RF_ur with the FPRAS at several epsilon
// values, reporting the observed error and the automaton sizes.

#include <chrono>
#include <cstdio>

#include "hypertree/ghd_search.h"
#include "ocqa/engine.h"
#include "query/parser.h"

using namespace uocqa;

int main() {
  Schema schema;
  schema.AddRelationOrDie("LinkAB", 2);
  schema.AddRelationOrDie("LinkBC", 2);
  schema.AddRelationOrDie("LinkCA", 2);
  Database db(schema);

  // Conflicting link detections: each sensor reported by two observers.
  db.Add("LinkAB", {"a1", "b1"});
  db.Add("LinkAB", {"a1", "b2"});  // a1's partner contested
  db.Add("LinkAB", {"a2", "b2"});
  db.Add("LinkBC", {"b1", "c1"});
  db.Add("LinkBC", {"b2", "c1"});
  db.Add("LinkBC", {"b2", "c2"});  // b2's partner contested (same key b2)
  db.Add("LinkCA", {"c1", "a1"});
  db.Add("LinkCA", {"c1", "a2"});  // c1's partner contested
  db.Add("LinkCA", {"c2", "a2"});
  KeySet keys;
  for (const char* r : {"LinkAB", "LinkBC", "LinkCA"}) {
    keys.SetKeyOrDie(schema.Find(r), {0});
  }

  auto query = ParseQuery("Ans() :- LinkAB(x,y), LinkBC(y,z), LinkCA(z,x)");
  if (!query.ok()) return 1;
  auto ghw = ComputeGhw(*query);
  std::printf("query: %s\n", query->ToString().c_str());
  std::printf("generalized hypertreewidth: %zu (cyclic triangle)\n\n",
              ghw.ok() ? ghw->width : 0);

  OcqaEngine engine(db, keys);
  ExactRF exact = engine.ExactUr(*query, {});
  std::printf("exact RF_ur = %s / %s = %.6f\n\n",
              exact.numerator.ToString().c_str(),
              exact.denominator.ToString().c_str(), exact.value());

  std::printf("%8s %12s %12s %10s %10s %14s\n", "epsilon", "estimate",
              "rel.err", "states", "trans", "time(ms)");
  for (double eps : {0.5, 0.25, 0.1, 0.05}) {
    OcqaOptions options;
    options.fpras.epsilon = eps;
    options.fpras.seed = 42;
    auto start = std::chrono::steady_clock::now();
    auto approx = engine.ApproxUr(*query, {}, options);
    auto ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    if (!approx.ok()) {
      std::fprintf(stderr, "FPRAS failed: %s\n",
                   approx.status().ToString().c_str());
      return 1;
    }
    double rel_err = exact.value() > 0
                         ? std::abs(approx->value - exact.value()) /
                               exact.value()
                         : 0.0;
    std::printf("%8.2f %12.6f %12.4f %10zu %10zu %14.2f\n", eps,
                approx->value, rel_err, approx->automaton_states,
                approx->automaton_transitions, ms);
  }
  std::printf(
      "\nThe estimate tightens as epsilon shrinks while the automaton (built"
      "\nonce per instance) stays fixed — only the union-estimation sample"
      "\nbudget grows, exactly the FPRAS trade-off of Theorem 4.6.\n");
  return 0;
}
