#include "service/request.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <vector>

#include "base/strings.h"

namespace uocqa {

const char* RequestModeName(RequestMode mode) {
  switch (mode) {
    case RequestMode::kExact:
      return "exact";
    case RequestMode::kFpras:
      return "fpras";
    case RequestMode::kMc:
      return "mc";
    case RequestMode::kAll:
      return "all";
  }
  return "unknown";
}

std::optional<RequestMode> ParseRequestMode(std::string_view text) {
  if (text == "exact") return RequestMode::kExact;
  if (text == "fpras") return RequestMode::kFpras;
  if (text == "mc") return RequestMode::kMc;
  if (text == "all") return RequestMode::kAll;
  return std::nullopt;
}

Status ValidateAccuracy(double epsilon, double delta, size_t samples) {
  if (!std::isfinite(epsilon) || epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument(
        "epsilon must be a finite value in (0, 1)");
  }
  if (!std::isfinite(delta) || delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be a finite value in (0, 1)");
  }
  if (samples == 0) {
    return Status::InvalidArgument("samples must be positive");
  }
  return Status::OK();
}

namespace {

/// Splits a line into whitespace-separated tokens. A single quote toggles
/// quoting (quoted whitespace is kept, the delimiting quotes are dropped);
/// inside a quoted region a doubled quote '' is a literal quote, so query
/// text may itself contain quoted constants:
///   query='Ans(x) :- Emp(x, ''tom'')'  ->  Ans(x) :- Emp(x, 'tom')
Result<std::vector<std::string>> Tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string current;
  bool in_token = false;
  bool in_quote = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '\'') {
      if (in_quote && i + 1 < line.size() && line[i + 1] == '\'') {
        current += '\'';
        ++i;
        continue;
      }
      in_quote = !in_quote;
      in_token = true;  // `query=''` produces an (empty-valued) token
      continue;
    }
    if (!in_quote && std::isspace(static_cast<unsigned char>(c))) {
      if (in_token) out.push_back(std::move(current));
      current.clear();
      in_token = false;
      continue;
    }
    current += c;
    in_token = true;
  }
  if (in_quote) return Status::InvalidArgument("unterminated quote");
  if (in_token) out.push_back(std::move(current));
  return out;
}

Status ParseDouble(const std::string& field, const std::string& text,
                   double* out) {
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size()) {
    return Status::InvalidArgument(field + " expects a number");
  }
  *out = v;
  return Status::OK();
}

}  // namespace

std::string QuoteProtocolValue(const std::string& value) {
  // The inverse of Tokenize's quoting rule: delimiting quotes, interior
  // quotes doubled.
  std::string out = "'";
  for (char c : value) {
    out += c;
    if (c == '\'') out += '\'';
  }
  out += "'";
  return out;
}

Status ParseSizeField(const std::string& field, const std::string& text,
                      size_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() ||
      !std::isdigit(static_cast<unsigned char>(text.front())) ||
      errno == ERANGE) {
    return Status::InvalidArgument(field +
                                   " expects a non-negative integer in range");
  }
  *out = static_cast<size_t>(v);
  return Status::OK();
}

std::vector<std::string> ReadRequestLines(std::istream& in) {
  std::vector<std::string> out;
  std::string line;
  // Hand-rolled line reader instead of std::getline: a hostile multi-MB
  // line must not be buffered in full. At most kMaxRequestLineBytes + 1
  // bytes are kept (one past the limit, so ParseRequestLine sees the line
  // as oversized); the rest of the line is drained and dropped.
  std::streambuf* sb = in.rdbuf();
  bool eof = sb == nullptr;
  while (!eof) {
    line.clear();
    bool got_any = false;
    for (;;) {
      int c = sb->sbumpc();
      if (c == std::char_traits<char>::eof()) {
        eof = true;
        break;
      }
      got_any = true;
      if (c == '\n') break;
      if (line.size() <= kMaxRequestLineBytes) {
        line.push_back(static_cast<char>(c));
      }
    }
    if (!got_any) break;
    std::string_view trimmed = StrTrim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    out.emplace_back(trimmed);
  }
  // Match std::getline's stream state for callers that inspect it.
  in.setstate(std::ios::eofbit);
  return out;
}

Result<Request> ParseRequestLine(std::string_view line) {
  if (line.size() > kMaxRequestLineBytes) {
    return Status::ResourceExhausted(
        "request line exceeds " + std::to_string(kMaxRequestLineBytes) +
        " bytes");
  }
  UOCQA_ASSIGN_OR_RETURN(std::vector<std::string> tokens, Tokenize(line));
  if (tokens.empty()) return Status::InvalidArgument("empty request");
  if (tokens.size() > kMaxRequestFields) {
    return Status::ResourceExhausted(
        "request has more than " + std::to_string(kMaxRequestFields) +
        " fields");
  }
  Request out;
  if (tokens[0] == "stats" || tokens[0] == "metrics" ||
      tokens[0] == "version" || tokens[0] == "begin_snapshot" ||
      tokens[0] == "epoch" || tokens[0] == "wal_sync") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("'" + tokens[0] +
                                     "' takes no further fields");
    }
    out.verb = tokens[0] == "stats"            ? RequestVerb::kStats
               : tokens[0] == "metrics"        ? RequestVerb::kMetrics
               : tokens[0] == "version"        ? RequestVerb::kVersion
               : tokens[0] == "begin_snapshot" ? RequestVerb::kBeginSnapshot
               : tokens[0] == "epoch"          ? RequestVerb::kEpoch
                                               : RequestVerb::kWalSync;
    return out;
  }
  if (tokens[0] == "add_fact") {
    out.verb = RequestVerb::kAddFact;
    bool have_rel = false;
    bool have_args = false;
    for (size_t t = 1; t < tokens.size(); ++t) {
      size_t eq = tokens[t].find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("expected key=value, got '" +
                                       tokens[t] + "'");
      }
      std::string key = tokens[t].substr(0, eq);
      std::string value = tokens[t].substr(eq + 1);
      if (key == "rel") {
        out.fact_relation = value;
        have_rel = true;
      } else if (key == "args") {
        out.fact_args = value;
        have_args = true;
      } else {
        return Status::InvalidArgument("unknown add_fact field: " + key);
      }
    }
    if (!have_rel || !have_args) {
      return Status::InvalidArgument(
          "add_fact requires rel=R and args='c1,c2,...'");
    }
    return out;
  }
  for (const std::string& token : tokens) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected key=value, got '" + token +
                                     "'");
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "query") {
      out.query_text = value;
    } else if (key == "answer") {
      out.answer_text = value;
    } else if (key == "mode") {
      std::optional<RequestMode> mode = ParseRequestMode(value);
      if (!mode.has_value()) {
        return Status::InvalidArgument("unknown mode: " + value);
      }
      out.mode = *mode;
    } else if (key == "epsilon") {
      UOCQA_RETURN_IF_ERROR(ParseDouble(key, value, &out.epsilon));
    } else if (key == "delta") {
      UOCQA_RETURN_IF_ERROR(ParseDouble(key, value, &out.delta));
    } else if (key == "samples") {
      UOCQA_RETURN_IF_ERROR(ParseSizeField(key, value, &out.samples));
    } else if (key == "seed") {
      size_t seed = 0;
      UOCQA_RETURN_IF_ERROR(ParseSizeField(key, value, &seed));
      out.seed = static_cast<uint64_t>(seed);
    } else if (key == "seed_schema") {
      if (value == "1") {
        out.seed_schema = 1;
      } else if (value == "2") {
        out.seed_schema = 2;
      } else {
        return Status::InvalidArgument("seed_schema expects 1 or 2");
      }
    } else if (key == "explain") {
      if (value == "0") {
        out.explain = false;
      } else if (value == "1") {
        out.explain = true;
      } else {
        return Status::InvalidArgument("explain expects 0 or 1");
      }
    } else if (key == "trace") {
      if (value == "0") {
        out.trace = false;
      } else if (value == "1") {
        out.trace = true;
      } else {
        return Status::InvalidArgument("trace expects 0 or 1");
      }
    } else if (key == "timeout_ms") {
      size_t timeout = 0;
      UOCQA_RETURN_IF_ERROR(ParseSizeField(key, value, &timeout));
      out.timeout_ms = static_cast<uint64_t>(timeout);
    } else {
      return Status::InvalidArgument("unknown request field: " + key);
    }
  }
  if (out.query_text.empty()) {
    return Status::InvalidArgument("request is missing query=...");
  }
  UOCQA_RETURN_IF_ERROR(
      ValidateAccuracy(out.epsilon, out.delta, out.samples));
  return out;
}

std::string FormatRequestLine(const Request& request) {
  switch (request.verb) {
    case RequestVerb::kStats:
      return "stats";
    case RequestVerb::kMetrics:
      return "metrics";
    case RequestVerb::kVersion:
      return "version";
    case RequestVerb::kBeginSnapshot:
      return "begin_snapshot";
    case RequestVerb::kEpoch:
      return "epoch";
    case RequestVerb::kWalSync:
      return "wal_sync";
    case RequestVerb::kAddFact:
      return "add_fact rel=" + QuoteProtocolValue(request.fact_relation) +
             " args=" + QuoteProtocolValue(request.fact_args);
    case RequestVerb::kQuery:
      break;
  }
  char buf[64];
  std::string out = "query=" + QuoteProtocolValue(request.query_text);
  if (!request.answer_text.empty()) {
    out += " answer=" + QuoteProtocolValue(request.answer_text);
  }
  out += " mode=";
  out += RequestModeName(request.mode);
  std::snprintf(buf, sizeof(buf), " epsilon=%.17g delta=%.17g",
                request.epsilon, request.delta);
  out += buf;
  out += " samples=" + std::to_string(request.samples);
  out += " seed=" + std::to_string(request.seed);
  if (request.seed_schema != kDefaultSeedSchema) {
    out += " seed_schema=" + std::to_string(request.seed_schema);
  }
  if (request.explain) out += " explain=1";
  if (request.trace) out += " trace=1";
  if (request.timeout_ms != 0) {
    out += " timeout_ms=" + std::to_string(request.timeout_ms);
  }
  return out;
}

std::string FormatResponseLine(size_t id, const ServiceResponse& response) {
  std::string out = std::to_string(id);
  if (response.status.ok()) {
    out += " ok ";
    out += response.cache_hit ? "hit" : "miss";
    if (response.has_epoch) {
      out += " epoch=" + std::to_string(response.epoch);
    }
    if (!response.payload.empty()) {
      out += " ";
      out += response.payload;
    }
    if (!response.trace.empty()) {
      out += " trace=" + QuoteProtocolValue(response.trace);
    }
  } else {
    // Overload-control outcomes get a structured kind so clients (and the
    // shed/timeout tests) can switch on the response without parsing the
    // message; everything else keeps the legacy rendering.
    switch (response.status.code()) {
      case StatusCode::kDeadlineExceeded:
        out += " err timeout '" + response.status.message() + "'";
        break;
      case StatusCode::kUnavailable:
        out += " err busy '" + response.status.message() + "'";
        break;
      case StatusCode::kResourceExhausted:
        out += " err oversized '" + response.status.message() + "'";
        break;
      default:
        out += " error '" + response.status.ToString() + "'";
        break;
    }
  }
  return out;
}

}  // namespace uocqa
