// Canonical forms for cache keys: a variable-renaming-invariant rendering
// of a conjunctive query, and a content fingerprint of an instance.
//
// Two queries that differ only in variable names (`Ans(x) :- R(x,y)` vs.
// `Ans(a) :- R(a,b)`) compile to identical pipeline state — the engine only
// ever sees dense VarIds, assigned in first-occurrence order — so the plan
// cache keys on the canonical text and serves both from one CompiledQuery.
// Atom order is preserved: the canonicalization normalizes names, not query
// structure (reordered atoms are a different plan key; they would also
// enumerate candidates in a different order).

#ifndef UOCQA_SERVICE_CANONICAL_H_
#define UOCQA_SERVICE_CANONICAL_H_

#include <cstdint>
#include <string>

#include "db/database.h"
#include "db/keys.h"
#include "query/cq.h"

namespace uocqa {

/// Renders `query` with variables renamed to ?0, ?1, ... in first-occurrence
/// order (answer variables first, then atom terms left to right), relations
/// by name, and constants by their interned spelling:
/// "Ans(?0):-R(?0,?1),S(?1,'c')". Equal strings iff the queries are equal
/// up to variable renaming.
std::string CanonicalQueryText(const ConjunctiveQuery& query);

/// Content hash of (db, keys): facts in id order (relation name + constant
/// spellings) plus the key declarations. Result-cache entries are scoped to
/// this fingerprint so a differently loaded instance can never replay
/// another instance's answers.
///
/// Equals FingerprintFromChain(ExtendFactChain(0, db, 0), db, keys) — the
/// live-instance snapshots memoize the fact chain per epoch and extend it by
/// the delta only, instead of rehashing the whole fact set on every ingest.
uint64_t InstanceFingerprint(const Database& db, const KeySet& keys);

/// Extends the running per-fact hash chain over facts [first_new, db.size()).
/// Pass chain = 0 and first_new = 0 to hash a whole database from scratch.
uint64_t ExtendFactChain(uint64_t chain, const Database& db, FactId first_new);

/// Finalizes a fact chain into an instance fingerprint by mixing in the
/// fact count and the key declarations.
uint64_t FingerprintFromChain(uint64_t chain, const Database& db,
                              const KeySet& keys);

}  // namespace uocqa

#endif  // UOCQA_SERVICE_CANONICAL_H_
