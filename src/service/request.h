// The service layer's line-oriented request/response protocol.
//
// One request per line, `key=value` fields separated by whitespace, keys
// mirroring the uocqa CLI flags; values may be single-quoted (a quote
// toggles quoting, as in the instance format, so spaces and commas survive
// inside `query='...'`). Blank lines and lines starting with '#' are
// skipped by the readers (uocqa_serve, uocqa --batch).
//
//   query='Ans(x) :- Emp(x, y)' answer=e1 mode=fpras epsilon=0.3 seed=7
//
// Besides query lines there are verb lines — `stats`, and the live-instance
// verbs `add_fact rel=R args='a,b'`, `begin_snapshot`, `epoch` (see
// RequestVerb below and docs/FORMATS.md).
//
// One response line per request, in request order:
//
//   <id> ok <hit|miss> [epoch=<E>] <payload>
//   <id> error '<message>'
//
// where <payload> is a sequence of `key=value` result fields (see
// docs/FORMATS.md for the full field reference). Cached responses replay
// the payload byte-identically; only the hit/miss marker differs.

#ifndef UOCQA_SERVICE_REQUEST_H_
#define UOCQA_SERVICE_REQUEST_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/version.h"

namespace uocqa {

/// Which solver(s) a request runs — the CLI's --mode values.
enum class RequestMode : uint8_t { kExact, kFpras, kMc, kAll };

const char* RequestModeName(RequestMode mode);
std::optional<RequestMode> ParseRequestMode(std::string_view text);

/// What a protocol line asks for. Most lines are queries (`query='...'`
/// plus option fields); the rest are verbs, recognized by their first bare
/// token:
///   stats                      — cache counters and per-plan timings
///   metrics                    — one-line metrics registry exposition
///   version                    — build info, SIMD backend, seed schema
///   add_fact rel=R args='a,b'  — queue one fact for the next snapshot
///   begin_snapshot             — merge queued facts into a new epoch
///   epoch                      — report the currently served epoch
///   wal_sync                   — force the write-ahead log to stable storage
/// The write verbs require a live service (uocqa_serve); a static service
/// answers them with an error.
enum class RequestVerb : uint8_t {
  kQuery,
  kStats,
  kMetrics,
  kVersion,
  kAddFact,
  kBeginSnapshot,
  kEpoch,
  kWalSync,
};

/// Hostile-input bounds on one protocol line, enforced by ReadRequestLines
/// (which stops buffering past the limit) and ParseRequestLine (which
/// answers `err oversized`, StatusCode::kResourceExhausted). Generous for
/// any legitimate query; a multi-megabyte line is an attack or a bug.
inline constexpr size_t kMaxRequestLineBytes = 1 << 20;  // 1 MiB
inline constexpr size_t kMaxRequestFields = 64;

/// One OCQA request. Field names and defaults mirror the CLI flags; the
/// database is fixed per service, not per request.
struct Request {
  std::string query_text;
  std::string answer_text;  // comma-separated constants; empty for Boolean
  RequestMode mode = RequestMode::kAll;
  double epsilon = 0.2;
  double delta = 0.1;
  size_t samples = 20000;
  uint64_t seed = 1;
  /// FPRAS RNG-consumption schema (FprasConfig::seed_schema): 1 = legacy
  /// sequential trials, 2 = batched lockstep trials (the default). Part of
  /// the result-cache key — the schemas produce different (equally valid)
  /// estimates at the same seed.
  int seed_schema = kDefaultSeedSchema;
  /// `explain=1` extends the payload with the compiled plan's deterministic
  /// `plan_*` fields (join order, cost estimates, decomposition choice).
  /// Part of the result-cache key: explain and plain payloads differ.
  bool explain = false;
  /// `trace=1` asks for a per-request stage breakdown (stage → micros,
  /// trials run, planner nodes, cache hit/miss) in the response's trace
  /// field. Deliberately NOT part of the result-cache key: tracing rides
  /// outside the payload bytes (the epoch-stamp precedent), so traced and
  /// untraced requests share cache entries and replay byte-identically.
  bool trace = false;
  /// `timeout_ms=N` arms a per-request deadline: the service checks it
  /// between pipeline stages and answers `err timeout`
  /// (StatusCode::kDeadlineExceeded) once it expires, discarding any
  /// partial work without entering the result cache. 0 (the default)
  /// disables the deadline. Deliberately NOT part of the result-cache key:
  /// a deadline bounds work, it never changes a completed payload's bytes.
  uint64_t timeout_ms = 0;
  /// What this line asks for. kQuery uses the fields above; kStats answers
  /// with cache counters (never cached, doesn't count as a query request);
  /// kAddFact uses fact_relation/fact_args; kBeginSnapshot and kEpoch take
  /// no fields.
  RequestVerb verb = RequestVerb::kQuery;
  /// add_fact only: the relation name (`rel=R`).
  std::string fact_relation;
  /// add_fact only: comma-separated constants (`args='a,b'`), the same
  /// tuple grammar as a query's `answer=` field.
  std::string fact_args;
};

/// Accuracy/budget validation shared by the CLI front ends and the request
/// parser: epsilon and delta must be finite and in (0, 1), samples must be
/// positive. (The defaults always pass.)
Status ValidateAccuracy(double epsilon, double delta, size_t samples);

/// Strict non-negative integer parse (rejects signs, trailing junk, and
/// empty input), shared by the request parser and the CLI flag parsers so
/// `--threads -1` is a usage error rather than a 2^64-lane pool.
Status ParseSizeField(const std::string& field, const std::string& text,
                      size_t* out);

/// Reads request lines from a stream, trimming whitespace and dropping
/// blanks and '#' comments — the shared reader of `uocqa_serve` and
/// `uocqa --batch`. Buffers at most kMaxRequestLineBytes + 1 bytes per line:
/// a longer line is drained from the stream but kept only up to the limit,
/// so ParseRequestLine rejects it as oversized without the process ever
/// holding the full hostile payload.
std::vector<std::string> ReadRequestLines(std::istream& in);

/// Parses one protocol line (must be non-blank and not a comment).
Result<Request> ParseRequestLine(std::string_view line);

/// Renders a request back into a protocol line (round-trips through
/// ParseRequestLine).
std::string FormatRequestLine(const Request& request);

/// Wraps `value` in single quotes with interior quotes doubled — the
/// protocol's quoting rule, shared with payload fields that embed free text
/// (the stats verb's per-plan query strings).
std::string QuoteProtocolValue(const std::string& value);

/// The outcome of serving one request.
struct ServiceResponse {
  /// Protocol- or query-level failure (parse error, arity mismatch, invalid
  /// accuracy parameters). Solver-level unavailability (e.g. FPRAS on a
  /// query beyond the width bound) is reported inside the payload instead.
  Status status;
  /// Result fields, `key=value` separated by single spaces. This is the
  /// unit of byte-identical replay: a result-cache hit returns exactly the
  /// bytes the miss computed.
  std::string payload;
  /// True if the payload was replayed from the result cache.
  bool cache_hit = false;
  /// Live services stamp every response with the epoch it was served
  /// against. Deliberately *outside* `payload`: a cached entry surviving an
  /// ingest replays its payload bytes unchanged while reporting the epoch
  /// it is served at, and FormatResponseLine renders the field between the
  /// hit/miss marker and the payload. Static services leave it unset and
  /// their response lines are unchanged.
  bool has_epoch = false;
  uint64_t epoch = 0;
  /// `trace=1` responses carry the stage breakdown here — like the epoch
  /// stamp, *outside* `payload`, rendered by FormatResponseLine as a
  /// trailing ` trace='...'` field. Cached payload bytes are untouched by
  /// tracing; timings live only in this field, which is never cached.
  std::string trace;
};

/// "<id> ok <hit|miss> [epoch=<E>] <payload> [trace='...']" on success.
/// Overload-control failures get a structured kind a client can switch on
/// without parsing the message:
///   kDeadlineExceeded   ->  "<id> err timeout '<message>'"
///   kUnavailable        ->  "<id> err busy '<message>'"
///   kResourceExhausted  ->  "<id> err oversized '<message>'"
/// and every other error keeps the legacy "<id> error '<message>'".
std::string FormatResponseLine(size_t id, const ServiceResponse& response);

}  // namespace uocqa

#endif  // UOCQA_SERVICE_REQUEST_H_
