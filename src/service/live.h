// Live instances: copy-on-write MVCC snapshot versions of a Database.
//
// QueryService historically assumed one immutable loaded instance; any fact
// arrival meant a full reload and a global cache flush. A LiveInstance
// instead accepts writes while queries run:
//
//  * writers append facts to a pending delta (Add/AddFact, cheap, no
//    rebuild);
//  * Snapshot() merges the pending delta into a *new* immutable
//    InstanceSnapshot — a copy-on-write Database version with the next
//    epoch id — and publishes it. In-flight queries keep the shared_ptr of
//    the snapshot they pinned, so they never observe a torn instance, and a
//    stale snapshot keeps answering exactly as it did before the ingest
//    (same facts, same fingerprint, same cached denominators) until the
//    last reference drops. This is the shared_ptr-snapshot pattern of
//    Nfta::CompiledShared() generalized to whole database versions.
//
// Each snapshot delta-maintains the expensive derived state instead of
// recomputing it: the block partition (BlockPartition::Update regroups only
// touched relations), the per-relation |ORep|/|CRS| denominator entries
// (repairs/denominators.h), and the instance fingerprint (the per-fact hash
// chain is extended by the delta only). Snapshots also carry the epoch
// bookkeeping the service layer's cache invalidation reads:
//
//  * relation_epochs[rel] — the epoch that last added a fact to rel;
//  * conflict_epoch — the epoch that last changed any relation's conflict-
//    block structure (i.e. any denominator entry). A conflict-free insert
//    (new singleton block) bumps only its relation's epoch, and the exact
//    counts, Monte-Carlo bitstreams, and denominators of queries not
//    touching that relation are provably unchanged — so their cached
//    results survive.
//
// The merge produces a database structurally identical to a fresh
// from-scratch load of the same fact stream (same fact ids, same block
// order, same fingerprint) — the differential guarantee tests/mvcc_test.cc
// pins.

#ifndef UOCQA_SERVICE_LIVE_H_
#define UOCQA_SERVICE_LIVE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/metrics.h"
#include "base/status.h"
#include "db/blocks.h"
#include "db/database.h"
#include "db/keys.h"
#include "repairs/denominators.h"
#include "service/wal.h"

namespace uocqa {

/// One immutable database version. Everything in here is fixed at merge
/// time; concurrent readers share it freely.
struct InstanceSnapshot {
  /// Version id: 0 for the initially loaded instance, +1 per non-empty
  /// merge. Strictly monotone per LiveInstance.
  uint64_t epoch = 0;
  /// The facts of this version. For epoch > 0 this is an owned copy-on-
  /// write merge; the epoch-0 snapshot may alias an externally owned
  /// database (static services).
  std::shared_ptr<const Database> db;
  /// Memoized InstanceFingerprint(*db, keys): live queries never rehash the
  /// fact set (the cache-key gap this subsystem closes).
  uint64_t fingerprint = 0;
  /// The running per-fact hash chain behind `fingerprint`, extended by each
  /// delta (canonical.h ExtendFactChain).
  uint64_t fact_chain = 0;
  /// Per relation: the epoch that last added a fact to it (0 = unchanged
  /// since load).
  std::vector<uint64_t> relation_epochs;
  /// The epoch that last changed any relation's conflict-block structure.
  uint64_t conflict_epoch = 0;
  /// The conflict blocks of this version (delta-maintained).
  std::shared_ptr<const BlockPartition> blocks;
  /// Per-relation |ORep|/|CRS| denominator state (delta-maintained).
  std::shared_ptr<const RelationDenominators> denominators;
};

/// A mutable instance accepting writes between immutable snapshots. The
/// schema and key set are fixed at construction (facts arrive, relations
/// and constraints do not).
///
/// Thread safety: all members are safe to call concurrently; writers and
/// snapshot takers serialize on an internal mutex, readers of Current()
/// just copy a shared_ptr.
class LiveInstance {
 public:
  /// Takes ownership of the loaded instance and publishes it as epoch 0
  /// (blocks and denominators computed once, eagerly).
  LiveInstance(Database db, KeySet keys);

  /// Queues one fact for the next snapshot. The relation must exist in the
  /// schema with matching arity; constants are interned. Queuing a fact
  /// already present (in the current version or earlier in the pending
  /// delta) is accepted and becomes a no-op at merge time.
  ///
  /// With a WAL attached the fact is appended to the log *before* it is
  /// queued (write-ahead ordering); a log failure rejects the fact, leaving
  /// log and memory consistent.
  Status Add(std::string_view relation,
             const std::vector<std::string>& constants);

  /// Merges the pending delta into a new snapshot and publishes it. With an
  /// empty (or fully duplicate) delta the current snapshot is returned
  /// unchanged — the epoch only ever advances when the fact set actually
  /// grew.
  ///
  /// With a WAL attached, every call that consumes a non-empty delta logs a
  /// barrier record (even the all-duplicate case, so replay clears pending
  /// at the same points) and group-commit syncs it *before* clearing the
  /// delta or publishing. If the log fails, nothing is published, the delta
  /// stays queued, the previous snapshot is returned, and the failure is
  /// reported through `wal_status` (never null-dereferenced; pass nullptr
  /// to ignore — non-WAL instances always report OK).
  std::shared_ptr<const InstanceSnapshot> Snapshot(
      Status* wal_status = nullptr);

  /// Attaches the write-ahead log: all subsequent mutations are logged
  /// ahead of being applied. Call once, before any concurrent use (the
  /// recovery path: RecoverAndAttachWal).
  void AttachWal(std::unique_ptr<WalWriter> wal);

  /// True if a WAL is attached.
  bool has_wal() const;

  /// Sync policy of the attached WAL (kNone without one).
  WalSyncPolicy wal_policy() const;

  /// Unconditionally fdatasyncs the attached log (the `wal_sync` verb and
  /// graceful shutdown). OK when no WAL is attached.
  Status SyncWal();

  /// The currently published snapshot (never null).
  std::shared_ptr<const InstanceSnapshot> Current() const;

  /// Number of facts queued and not yet merged (duplicates included).
  size_t pending() const;

  /// The key set, fixed for the instance's lifetime.
  const KeySet& keys() const { return keys_; }

  /// Points the instance's instruments at `metrics` (nullptr detaches):
  /// `uocqa_stage_snapshot_publish_us` (merge latency of epoch-advancing
  /// Snapshot calls), `uocqa_live_delta_facts` (facts merged per publish),
  /// and the `uocqa_live_pending` gauge (queued facts not yet merged).
  /// Observation only; merge results are unchanged.
  void SetMetrics(MetricsRegistry* metrics);

 private:
  /// Appends a barrier for the given snapshot state and group-commit syncs
  /// it. OK when no WAL is attached. Caller holds mu_.
  Status AppendBarrierLocked(uint64_t epoch, uint64_t facts,
                             uint64_t fingerprint);

  KeySet keys_;
  mutable std::mutex mu_;
  std::shared_ptr<const InstanceSnapshot> current_;
  std::vector<Fact> pending_;
  std::unique_ptr<WalWriter> wal_;  // guarded by mu_

  metrics::Histogram* publish_hist_ = nullptr;   // guarded by mu_
  metrics::Histogram* delta_hist_ = nullptr;     // guarded by mu_
  metrics::Gauge* pending_gauge_ = nullptr;      // guarded by mu_
};

}  // namespace uocqa

#endif  // UOCQA_SERVICE_LIVE_H_
