#include "service/live.h"

#include <utility>

#include "service/canonical.h"

namespace uocqa {

LiveInstance::LiveInstance(Database db, KeySet keys)
    : keys_(std::move(keys)) {
  auto snapshot = std::make_shared<InstanceSnapshot>();
  snapshot->epoch = 0;
  snapshot->db = std::make_shared<const Database>(std::move(db));
  snapshot->fact_chain = ExtendFactChain(0, *snapshot->db, 0);
  snapshot->fingerprint =
      FingerprintFromChain(snapshot->fact_chain, *snapshot->db, keys_);
  snapshot->relation_epochs.assign(snapshot->db->schema().relation_count(),
                                   0);
  snapshot->blocks = std::make_shared<const BlockPartition>(
      BlockPartition::Compute(*snapshot->db, keys_));
  snapshot->denominators = std::make_shared<const RelationDenominators>(
      RelationDenominators::Compute(*snapshot->db, *snapshot->blocks));
  current_ = std::move(snapshot);
}

Status LiveInstance::Add(std::string_view relation,
                         const std::vector<std::string>& constants) {
  std::lock_guard<std::mutex> lock(mu_);
  const Schema& schema = current_->db->schema();
  RelationId rel = schema.Find(relation);
  if (rel == kInvalidRelation) {
    return Status::InvalidArgument("add_fact: unknown relation '" +
                                   std::string(relation) + "'");
  }
  if (schema.arity(rel) != constants.size()) {
    return Status::InvalidArgument(
        "add_fact: relation '" + std::string(relation) + "' has arity " +
        std::to_string(schema.arity(rel)) + ", got " +
        std::to_string(constants.size()) + " constants");
  }
  std::vector<Value> args;
  args.reserve(constants.size());
  for (const std::string& c : constants) args.push_back(ValuePool::Intern(c));
  pending_.emplace_back(rel, std::move(args));
  metrics::Set(pending_gauge_, static_cast<int64_t>(pending_.size()));
  return Status::OK();
}

void LiveInstance::SetMetrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    publish_hist_ = nullptr;
    delta_hist_ = nullptr;
    pending_gauge_ = nullptr;
    return;
  }
  publish_hist_ = metrics->GetHistogram("uocqa_stage_snapshot_publish_us");
  delta_hist_ = metrics->GetHistogram("uocqa_live_delta_facts");
  pending_gauge_ = metrics->GetGauge("uocqa_live_pending");
  pending_gauge_->Set(static_cast<int64_t>(pending_.size()));
}

std::shared_ptr<const InstanceSnapshot> LiveInstance::Snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return current_;
  metrics::ScopedTimer publish_timer(publish_hist_);
  const InstanceSnapshot& prev = *current_;
  // Copy-on-write merge: duplicate the previous version (facts, dedup map,
  // index) and append the delta. AddFact's dedup makes re-inserted facts
  // no-ops, so the merged database is structurally identical — fact ids,
  // index, everything — to a fresh load of the concatenated fact stream.
  auto merged = std::make_shared<Database>(*prev.db);
  for (Fact& fact : pending_) merged->AddFact(std::move(fact));
  pending_.clear();
  metrics::Set(pending_gauge_, 0);
  FactId first_new = static_cast<FactId>(prev.db->size());
  if (merged->size() == prev.db->size()) {
    // Every queued fact was a duplicate: the fact set did not change, so
    // the current snapshot stays the published version (no epoch bump —
    // cached results remain valid by construction).
    return current_;
  }
  auto next = std::make_shared<InstanceSnapshot>();
  next->epoch = prev.epoch + 1;
  next->fact_chain = ExtendFactChain(prev.fact_chain, *merged, first_new);
  next->fingerprint = FingerprintFromChain(next->fact_chain, *merged, keys_);
  next->relation_epochs = prev.relation_epochs;
  for (FactId id = first_new; id < merged->size(); ++id) {
    next->relation_epochs[merged->fact(id).relation] = next->epoch;
  }
  next->blocks = std::make_shared<const BlockPartition>(
      BlockPartition::Update(*prev.blocks, *merged, keys_, first_new));
  std::vector<RelationId> changed;
  next->denominators = std::make_shared<const RelationDenominators>(
      RelationDenominators::Update(*prev.denominators, *merged, *next->blocks,
                                   first_new, &changed));
  next->conflict_epoch =
      changed.empty() ? prev.conflict_epoch : next->epoch;
  metrics::Record(delta_hist_,
                  static_cast<uint64_t>(merged->size()) - first_new);
  next->db = std::move(merged);
  current_ = next;
  return current_;
}

std::shared_ptr<const InstanceSnapshot> LiveInstance::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

size_t LiveInstance::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace uocqa
