#include "service/live.h"

#include <utility>

#include "base/failpoint.h"
#include "service/canonical.h"

namespace uocqa {

LiveInstance::LiveInstance(Database db, KeySet keys)
    : keys_(std::move(keys)) {
  auto snapshot = std::make_shared<InstanceSnapshot>();
  snapshot->epoch = 0;
  snapshot->db = std::make_shared<const Database>(std::move(db));
  snapshot->fact_chain = ExtendFactChain(0, *snapshot->db, 0);
  snapshot->fingerprint =
      FingerprintFromChain(snapshot->fact_chain, *snapshot->db, keys_);
  snapshot->relation_epochs.assign(snapshot->db->schema().relation_count(),
                                   0);
  snapshot->blocks = std::make_shared<const BlockPartition>(
      BlockPartition::Compute(*snapshot->db, keys_));
  snapshot->denominators = std::make_shared<const RelationDenominators>(
      RelationDenominators::Compute(*snapshot->db, *snapshot->blocks));
  current_ = std::move(snapshot);
}

Status LiveInstance::Add(std::string_view relation,
                         const std::vector<std::string>& constants) {
  std::lock_guard<std::mutex> lock(mu_);
  const Schema& schema = current_->db->schema();
  RelationId rel = schema.Find(relation);
  if (rel == kInvalidRelation) {
    return Status::InvalidArgument("add_fact: unknown relation '" +
                                   std::string(relation) + "'");
  }
  if (schema.arity(rel) != constants.size()) {
    return Status::InvalidArgument(
        "add_fact: relation '" + std::string(relation) + "' has arity " +
        std::to_string(schema.arity(rel)) + ", got " +
        std::to_string(constants.size()) + " constants");
  }
  // Write-ahead: the fact reaches the log before it reaches the pending
  // delta. A log failure rejects the fact entirely — any torn bytes on disk
  // fail their frame CRC at recovery, so log and memory agree either way.
  if (wal_ != nullptr) {
    WalRecord record;
    record.type = WalRecord::Type::kAddFact;
    record.relation = std::string(relation);
    record.constants = constants;
    UOCQA_RETURN_IF_ERROR(wal_->Append(record));
  }
  std::vector<Value> args;
  args.reserve(constants.size());
  for (const std::string& c : constants) args.push_back(ValuePool::Intern(c));
  pending_.emplace_back(rel, std::move(args));
  metrics::Set(pending_gauge_, static_cast<int64_t>(pending_.size()));
  return Status::OK();
}

void LiveInstance::AttachWal(std::unique_ptr<WalWriter> wal) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_ = std::move(wal);
}

bool LiveInstance::has_wal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ != nullptr;
}

WalSyncPolicy LiveInstance::wal_policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ != nullptr ? wal_->policy() : WalSyncPolicy::kNone;
}

Status LiveInstance::SyncWal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

Status LiveInstance::AppendBarrierLocked(uint64_t epoch, uint64_t facts,
                                         uint64_t fingerprint) {
  if (wal_ == nullptr) return Status::OK();
  WalRecord record;
  record.type = WalRecord::Type::kBarrier;
  record.epoch = epoch;
  record.facts = facts;
  record.fingerprint = fingerprint;
  UOCQA_RETURN_IF_ERROR(wal_->Append(record));
  return wal_->BarrierSync();
}

void LiveInstance::SetMetrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    publish_hist_ = nullptr;
    delta_hist_ = nullptr;
    pending_gauge_ = nullptr;
    if (wal_ != nullptr) wal_->SetMetrics(nullptr);
    return;
  }
  publish_hist_ = metrics->GetHistogram("uocqa_stage_snapshot_publish_us");
  delta_hist_ = metrics->GetHistogram("uocqa_live_delta_facts");
  pending_gauge_ = metrics->GetGauge("uocqa_live_pending");
  pending_gauge_->Set(static_cast<int64_t>(pending_.size()));
  if (wal_ != nullptr) wal_->SetMetrics(metrics);
}

std::shared_ptr<const InstanceSnapshot> LiveInstance::Snapshot(
    Status* wal_status) {
  if (wal_status != nullptr) *wal_status = Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  // An empty delta changes nothing, so nothing is logged either — replay
  // equivalence holds trivially.
  if (pending_.empty()) return current_;
  metrics::ScopedTimer publish_timer(publish_hist_);
  const InstanceSnapshot& prev = *current_;
  // Copy-on-write merge: duplicate the previous version (facts, dedup map,
  // index) and append the delta. AddFact's dedup makes re-inserted facts
  // no-ops, so the merged database is structurally identical — fact ids,
  // index, everything — to a fresh load of the concatenated fact stream.
  // Pending facts are copied, not moved: if the barrier fails to reach the
  // log below, the delta must stay queued untouched.
  auto merged = std::make_shared<Database>(*prev.db);
  for (const Fact& fact : pending_) merged->AddFact(fact);
  FactId first_new = static_cast<FactId>(prev.db->size());
  if (merged->size() == prev.db->size()) {
    // Every queued fact was a duplicate: the fact set did not change, so
    // the current snapshot stays the published version (no epoch bump —
    // cached results remain valid by construction). The barrier is still
    // logged — replay must clear its pending delta at this same point, and
    // the recorded epoch/fingerprint re-verify the replayed state.
    Status st =
        AppendBarrierLocked(prev.epoch, prev.db->size(), prev.fingerprint);
    if (!st.ok()) {
      if (wal_status != nullptr) *wal_status = std::move(st);
      return current_;
    }
    pending_.clear();
    metrics::Set(pending_gauge_, 0);
    return current_;
  }
  auto next = std::make_shared<InstanceSnapshot>();
  next->epoch = prev.epoch + 1;
  next->fact_chain = ExtendFactChain(prev.fact_chain, *merged, first_new);
  next->fingerprint = FingerprintFromChain(next->fact_chain, *merged, keys_);
  next->relation_epochs = prev.relation_epochs;
  for (FactId id = first_new; id < merged->size(); ++id) {
    next->relation_epochs[merged->fact(id).relation] = next->epoch;
  }
  next->blocks = std::make_shared<const BlockPartition>(
      BlockPartition::Update(*prev.blocks, *merged, keys_, first_new));
  std::vector<RelationId> changed;
  next->denominators = std::make_shared<const RelationDenominators>(
      RelationDenominators::Update(*prev.denominators, *merged, *next->blocks,
                                   first_new, &changed));
  next->conflict_epoch =
      changed.empty() ? prev.conflict_epoch : next->epoch;
  // Write-ahead: the barrier (epoch, fact count, fingerprint of the version
  // about to publish) is logged and group-commit synced before any in-memory
  // state changes. On failure the merge is discarded, the delta stays
  // queued, and the caller sees the previous snapshot — exactly the state a
  // crash at this instant would recover to.
  Status st = AppendBarrierLocked(next->epoch, merged->size(),
                                  next->fingerprint);
  if (!st.ok()) {
    if (wal_status != nullptr) *wal_status = std::move(st);
    return current_;
  }
  // Crash window between log and publish: the barrier is durable but the
  // epoch never became visible. Recovery replays the log past the barrier,
  // so the restarted instance publishes the epoch the dying one did not —
  // the log is the authority. The failpoint models dying in that window.
  static failpoint::Site publish_fp("live.snapshot.publish");
  if (publish_fp.Triggered()) {
    if (wal_ != nullptr) wal_->Kill();
    if (wal_status != nullptr) {
      *wal_status =
          Status::Unavailable("injected crash before snapshot publish");
    }
    return current_;
  }
  pending_.clear();
  metrics::Set(pending_gauge_, 0);
  metrics::Record(delta_hist_,
                  static_cast<uint64_t>(merged->size()) - first_new);
  next->db = std::move(merged);
  current_ = next;
  return current_;
}

std::shared_ptr<const InstanceSnapshot> LiveInstance::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

size_t LiveInstance::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace uocqa
