#include "service/service.h"

#include <cstdio>
#include <optional>

#include "base/hashing.h"
#include "base/strings.h"
#include "db/value.h"
#include "query/parser.h"
#include "service/canonical.h"

namespace uocqa {

namespace {

/// Doubles are rendered with every bit of precision: payload byte-equality
/// must coincide with bit-equality of the underlying estimates (the
/// service_test determinism checks rely on this).
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::vector<Value> ParseAnswerTuple(const std::string& text) {
  std::vector<Value> out;
  if (text.empty()) return out;
  for (const std::string& piece : StrSplit(text, ',')) {
    out.push_back(ValuePool::Intern(std::string(StrTrim(piece))));
  }
  return out;
}

}  // namespace

std::string ServiceStats::ToString() const {
  std::string out;
  out += "requests=" + std::to_string(requests);
  out += " plan_hits=" + std::to_string(plan_hits);
  out += " plan_misses=" + std::to_string(plan_misses);
  out += " plan_evictions=" + std::to_string(plan_evictions);
  out += " result_hits=" + std::to_string(result_hits);
  out += " result_misses=" + std::to_string(result_misses);
  out += " result_evictions=" + std::to_string(result_evictions);
  return out;
}

bool QueryService::ResultKey::operator==(const ResultKey& o) const {
  return fingerprint == o.fingerprint &&
         canonical_query == o.canonical_query && answer == o.answer &&
         mode == o.mode && epsilon == o.epsilon && delta == o.delta &&
         samples == o.samples && seed == o.seed &&
         seed_schema == o.seed_schema && max_width == o.max_width &&
         explain == o.explain;
}

size_t QueryService::ResultKeyHash::operator()(const ResultKey& k) const {
  size_t seed = std::hash<std::string>{}(k.canonical_query);
  HashCombine(&seed, static_cast<size_t>(k.fingerprint));
  for (Value v : k.answer) HashCombine(&seed, v);
  HashCombine(&seed, static_cast<size_t>(k.mode));
  HashCombine(&seed, std::hash<double>{}(k.epsilon));
  HashCombine(&seed, std::hash<double>{}(k.delta));
  HashCombine(&seed, k.samples);
  HashCombine(&seed, static_cast<size_t>(k.seed));
  HashCombine(&seed, static_cast<size_t>(k.seed_schema));
  HashCombine(&seed, k.max_width);
  HashCombine(&seed, static_cast<size_t>(k.explain));
  return seed;
}

QueryService::QueryService(const Database& db, const KeySet& keys,
                           const ServiceOptions& options)
    : db_(db),
      keys_(keys),
      options_(options),
      fingerprint_(InstanceFingerprint(db, keys)),
      engine_(db, keys),
      plan_cache_(options.plan_cache_capacity),
      result_cache_(options.result_cache_capacity) {}

ServiceResponse QueryService::Execute(const Request& request) {
  return Run(request);
}

std::vector<ServiceResponse> QueryService::ExecuteBatch(
    const std::vector<Request>& requests, size_t threads) {
  std::vector<ServiceResponse> out(requests.size());
  ParallelForOn(BatchPool(threads), requests.size(),
                [&](size_t i) { out[i] = Run(requests[i]); }, /*grain=*/1);
  return out;
}

std::vector<ServiceResponse> QueryService::ExecuteBatchLines(
    const std::vector<std::string>& lines, size_t threads) {
  std::vector<ServiceResponse> out(lines.size());
  std::vector<std::optional<Request>> parsed(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    Result<Request> r = ParseRequestLine(lines[i]);
    if (r.ok()) {
      parsed[i] = std::move(r).value();
    } else {
      out[i].status = r.status();
    }
  }
  ParallelForOn(BatchPool(threads), lines.size(),
                [&](size_t i) {
                  if (parsed[i].has_value()) out[i] = Run(*parsed[i]);
                },
                /*grain=*/1);
  return out;
}

ThreadPool* QueryService::BatchPool(size_t threads) {
  size_t lanes = threads == 0 ? HardwareThreads() : threads;
  if (lanes == 1) return nullptr;
  if (!pool_ || pool_->thread_count() != lanes) {
    pool_ = std::make_unique<ThreadPool>(lanes);
  }
  return pool_.get();
}

Result<std::shared_ptr<CompiledQuery>> QueryService::PlanFor(
    const std::string& canonical, const ConjunctiveQuery& query) {
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    std::optional<std::shared_ptr<CompiledQuery>> hit =
        plan_cache_.Get(canonical);
    if (hit.has_value()) return *hit;
  }
  OcqaOptions options;
  options.max_width = options_.max_width;
  Result<CompiledQuery> compiled = engine_.Compile(query, options);
  if (!compiled.ok()) return compiled.status();
  auto plan = std::make_shared<CompiledQuery>(std::move(compiled).value());
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    // Another lane may have raced us to the same plan; keep the published
    // one so every request shares a single automaton memo. (Find, not Get:
    // this request's semantic miss was already counted above.)
    std::optional<std::shared_ptr<CompiledQuery>> existing =
        plan_cache_.Find(canonical);
    if (existing.has_value()) return *existing;
    plan_cache_.Put(canonical, plan);
  }
  return plan;
}

ServiceResponse QueryService::Run(const Request& request) {
  ServiceResponse out;
  if (request.stats) {
    // Introspection, not a query: skip the request counter and both caches
    // (timings change between runs, so the payload must never replay).
    out.payload = StatsPayload();
    return out;
  }
  {
    std::lock_guard<std::mutex> lock(requests_mu_);
    ++requests_served_;
  }
  out.status = ValidateAccuracy(request.epsilon, request.delta,
                                request.samples);
  if (!out.status.ok()) return out;

  Result<ConjunctiveQuery> query =
      ParseQuery(request.query_text, db_.schema());
  if (!query.ok()) {
    out.status = query.status();
    return out;
  }
  std::vector<Value> answer = ParseAnswerTuple(request.answer_text);
  if (answer.size() != query->answer_vars().size()) {
    out.status = Status::InvalidArgument(
        "answer arity mismatch: query has " +
        std::to_string(query->answer_vars().size()) +
        " answer variables, answer provided " +
        std::to_string(answer.size()) + " constants");
    return out;
  }

  std::string canonical = CanonicalQueryText(*query);
  ResultKey key;
  key.fingerprint = fingerprint_;
  key.canonical_query = canonical;
  key.answer = answer;
  key.mode = request.mode;
  key.epsilon = request.epsilon;
  key.delta = request.delta;
  key.samples = request.samples;
  key.seed = request.seed;
  key.seed_schema = request.seed_schema;
  key.max_width = options_.max_width;
  key.explain = request.explain;
  {
    std::lock_guard<std::mutex> lock(result_mu_);
    std::optional<std::string> hit = result_cache_.Get(key);
    if (hit.has_value()) {
      out.payload = std::move(*hit);
      out.cache_hit = true;
      return out;
    }
  }

  std::string payload;
  auto append = [&payload](const std::string& field) {
    if (!payload.empty()) payload += " ";
    payload += field;
  };
  bool all = request.mode == RequestMode::kAll;

  if (all || request.mode == RequestMode::kExact) {
    ExactRF ur = engine_.ExactUr(*query, answer);
    ExactRF us = engine_.ExactUs(*query, answer);
    append("exact_ur=" + ur.numerator.ToString() + "/" +
           ur.denominator.ToString());
    append("exact_us=" + us.numerator.ToString() + "/" +
           us.denominator.ToString());
  }
  if (all || request.mode == RequestMode::kFpras) {
    Result<std::shared_ptr<CompiledQuery>> plan = PlanFor(canonical, *query);
    if (!plan.ok()) {
      append("fpras_error='" + plan.status().ToString() + "'");
    } else {
      OcqaOptions options;
      options.fpras.epsilon = request.epsilon;
      options.fpras.delta = request.delta;
      options.fpras.seed = request.seed;
      options.fpras.seed_schema = request.seed_schema;
      options.max_width = options_.max_width;
      options.threads = 1;  // batch lanes are the parallelism
      Result<ApproxRF> ur = engine_.ApproxUr(**plan, answer, options);
      append(ur.ok() ? "fpras_ur=" + FormatDouble(ur->value) : "fpras_ur=na");
      Result<ApproxRF> us = engine_.ApproxUs(**plan, answer, options);
      append(us.ok() ? "fpras_us=" + FormatDouble(us->value) : "fpras_us=na");
    }
  }
  if (all || request.mode == RequestMode::kMc) {
    append("mc_ur=" + FormatDouble(engine_.MonteCarloUr(
                          *query, answer, request.samples, request.seed,
                          /*threads=*/1)));
    append("mc_us=" + FormatDouble(engine_.MonteCarloUs(
                          *query, answer, request.samples, request.seed,
                          /*threads=*/1)));
  }
  if (request.explain) {
    // The plan's Fields() are deterministic (no timing), so explain
    // payloads replay byte-identically like every other cached result.
    // Compiling through PlanFor shares the plan cache even in exact/mc
    // modes, where the solvers themselves don't need the artifact.
    Result<std::shared_ptr<CompiledQuery>> plan = PlanFor(canonical, *query);
    if (plan.ok()) {
      append((*plan)->plan().Fields());
    } else {
      append("explain_error='" + plan.status().ToString() + "'");
    }
  }

  {
    std::lock_guard<std::mutex> lock(result_mu_);
    result_cache_.Put(key, payload);
  }
  out.payload = std::move(payload);
  return out;
}

std::string QueryService::StatsPayload() const {
  std::string out = stats().ToString();
  std::lock_guard<std::mutex> lock(plan_mu_);
  out += " plans_cached=" + std::to_string(plan_cache_.size());
  plan_cache_.ForEach([&out](const std::string& canonical,
                             const std::shared_ptr<CompiledQuery>& plan) {
    out += " plan=" + QuoteProtocolValue(canonical) + " planning_us=" +
           std::to_string(plan->plan().planning_micros);
  });
  return out;
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(requests_mu_);
    out.requests = requests_served_;
  }
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    out.plan_hits = plan_cache_.hits();
    out.plan_misses = plan_cache_.misses();
    out.plan_evictions = plan_cache_.evictions();
  }
  {
    std::lock_guard<std::mutex> lock(result_mu_);
    out.result_hits = result_cache_.hits();
    out.result_misses = result_cache_.misses();
    out.result_evictions = result_cache_.evictions();
  }
  return out;
}

}  // namespace uocqa
