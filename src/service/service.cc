#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>

#include "base/failpoint.h"
#include "base/hashing.h"
#include "base/strings.h"
#include "base/version.h"
#include "db/value.h"
#include "query/parser.h"
#include "service/canonical.h"

namespace uocqa {

namespace {

/// Doubles are rendered with every bit of precision: payload byte-equality
/// must coincide with bit-equality of the underlying estimates (the
/// service_test determinism checks rely on this).
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::vector<Value> ParseAnswerTuple(const std::string& text) {
  std::vector<Value> out;
  if (text.empty()) return out;
  for (const std::string& piece : StrSplit(text, ',')) {
    out.push_back(ValuePool::Intern(std::string(StrTrim(piece))));
  }
  return out;
}

/// The add_fact `args=` grammar is the answer-tuple grammar: comma-separated
/// constants, whitespace-trimmed.
std::vector<std::string> ParseFactArgs(const std::string& text) {
  std::vector<std::string> out;
  if (text.empty()) return out;
  for (const std::string& piece : StrSplit(text, ',')) {
    out.emplace_back(StrTrim(piece));
  }
  return out;
}

/// A per-request deadline, armed iff the request carried timeout_ms > 0.
/// Expiry is the real clock OR the "service.deadline" failpoint — the site
/// is only evaluated while a deadline is armed, so tests can force the
/// N-th deadline check of a deadline-carrying request to expire without
/// depending on wall-clock timing.
class Deadline {
 public:
  explicit Deadline(uint64_t timeout_ms) : armed_(timeout_ms > 0) {
    if (armed_) {
      expires_at_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    }
  }

  bool Expired() {
    if (!armed_) return false;
    static failpoint::Site deadline_fp("service.deadline");
    if (deadline_fp.Triggered()) return true;
    return std::chrono::steady_clock::now() >= expires_at_;
  }

 private:
  bool armed_;
  std::chrono::steady_clock::time_point expires_at_;
};

}  // namespace

std::string ServiceStats::ToString() const {
  std::string out;
  out += "requests=" + std::to_string(requests);
  out += " plan_hits=" + std::to_string(plan_hits);
  out += " plan_misses=" + std::to_string(plan_misses);
  out += " plan_evictions=" + std::to_string(plan_evictions);
  out += " result_hits=" + std::to_string(result_hits);
  out += " result_misses=" + std::to_string(result_misses);
  out += " result_evictions=" + std::to_string(result_evictions);
  if (has_live) {
    out += " epoch=" + std::to_string(epoch);
    out += " facts=" + std::to_string(facts);
    out += " pending=" + std::to_string(pending);
  }
  return out;
}

bool QueryService::ResultKey::operator==(const ResultKey& o) const {
  return fingerprint == o.fingerprint &&
         canonical_query == o.canonical_query && answer == o.answer &&
         mode == o.mode && epsilon == o.epsilon && delta == o.delta &&
         samples == o.samples && seed == o.seed &&
         seed_schema == o.seed_schema && max_width == o.max_width &&
         explain == o.explain;
}

size_t QueryService::ResultKeyHash::operator()(const ResultKey& k) const {
  size_t seed = std::hash<std::string>{}(k.canonical_query);
  HashCombine(&seed, static_cast<size_t>(k.fingerprint));
  for (Value v : k.answer) HashCombine(&seed, v);
  HashCombine(&seed, static_cast<size_t>(k.mode));
  HashCombine(&seed, std::hash<double>{}(k.epsilon));
  HashCombine(&seed, std::hash<double>{}(k.delta));
  HashCombine(&seed, k.samples);
  HashCombine(&seed, static_cast<size_t>(k.seed));
  HashCombine(&seed, static_cast<size_t>(k.seed_schema));
  HashCombine(&seed, k.max_width);
  HashCombine(&seed, static_cast<size_t>(k.explain));
  return seed;
}

QueryService::QueryService(const Database& db, const KeySet& keys,
                           const ServiceOptions& options)
    : options_(options),
      keys_(&keys),
      plan_cache_(options.plan_cache_capacity),
      result_cache_(options.result_cache_capacity) {
  InitMetrics();
  // Static mode: wrap the externally owned instance in a non-owning epoch-0
  // snapshot. Blocks and denominators stay unset — the engine computes its
  // own denominators lazily, exactly as before live instances existed.
  auto snapshot = std::make_shared<InstanceSnapshot>();
  snapshot->db = std::shared_ptr<const Database>(&db, [](const Database*) {});
  snapshot->fact_chain = ExtendFactChain(0, db, 0);
  snapshot->fingerprint =
      FingerprintFromChain(snapshot->fact_chain, db, keys);
  snapshot->relation_epochs.assign(db.schema().relation_count(), 0);
  base_fingerprint_ = snapshot->fingerprint;
  InstallContext(std::move(snapshot));
}

QueryService::QueryService(LiveInstance& live, const ServiceOptions& options)
    : options_(options),
      live_(&live),
      keys_(&live.keys()),
      plan_cache_(options.plan_cache_capacity),
      result_cache_(options.result_cache_capacity) {
  InitMetrics();
  std::shared_ptr<const InstanceSnapshot> snapshot = live.Current();
  base_fingerprint_ = snapshot->fingerprint;
  InstallContext(std::move(snapshot));
}

void QueryService::InitMetrics() {
  if (!options_.metrics_enabled) return;  // every handle stays null
  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  stages_.requests = metrics_->GetCounter("uocqa_requests_total");
  stages_.parse = metrics_->GetHistogram("uocqa_stage_parse_us");
  stages_.plan = metrics_->GetHistogram("uocqa_stage_plan_us");
  stages_.planner = metrics_->GetHistogram("uocqa_stage_planner_us");
  stages_.compile = metrics_->GetHistogram("uocqa_stage_compile_us");
  stages_.exact_dp = metrics_->GetHistogram("uocqa_stage_exact_dp_us");
  stages_.fpras_trials =
      metrics_->GetHistogram("uocqa_stage_fpras_trials_us");
  stages_.mc_trials = metrics_->GetHistogram("uocqa_stage_mc_trials_us");
  stages_.result_cache =
      metrics_->GetHistogram("uocqa_stage_result_cache_us");
  stages_.batch_dispatch =
      metrics_->GetHistogram("uocqa_stage_batch_dispatch_us");
  stages_.request = metrics_->GetHistogram("uocqa_stage_request_us");
  stages_.shed = metrics_->GetCounter("uocqa_requests_shed_total");
  // Pre-register the stages recorded by other layers (engine denominators,
  // live snapshot publish) so the exposition always lists the full stage
  // set, even before the first event.
  metrics_->GetHistogram("uocqa_stage_denominators_us");
  metrics_->GetHistogram("uocqa_stage_snapshot_publish_us");
  plan_cache_.BindCounters(
      metrics_->GetCounter("uocqa_plan_cache_hits_total"),
      metrics_->GetCounter("uocqa_plan_cache_misses_total"),
      metrics_->GetCounter("uocqa_plan_cache_evictions_total"));
  result_cache_.BindCounters(
      metrics_->GetCounter("uocqa_result_cache_hits_total"),
      metrics_->GetCounter("uocqa_result_cache_misses_total"),
      metrics_->GetCounter("uocqa_result_cache_evictions_total"));
  // Last writer wins if several services share one LiveInstance; each
  // service's own request-path stages stay per-service regardless.
  if (live_ != nullptr) live_->SetMetrics(metrics_);
}

std::shared_ptr<const QueryService::EpochContext> QueryService::InstallContext(
    std::shared_ptr<const InstanceSnapshot> snapshot) {
  {
    std::lock_guard<std::mutex> lock(context_mu_);
    if (context_ && context_->snapshot == snapshot) return context_;
  }
  auto ctx = std::make_shared<EpochContext>();
  ctx->snapshot = std::move(snapshot);
  ctx->engine = std::make_unique<OcqaEngine>(*ctx->snapshot->db, *keys_);
  ctx->engine->SetMetrics(metrics_);
  if (ctx->snapshot->denominators != nullptr) {
    // Hand the snapshot's delta-maintained denominators to the fresh
    // engine: no request ever recomputes the block partition just to
    // divide by |ORep| or |CRS|.
    ctx->engine->SeedDenominators(ctx->snapshot->denominators->orep(),
                                  ctx->snapshot->denominators->crs());
  }
  std::lock_guard<std::mutex> lock(context_mu_);
  // A racing begin_snapshot may have published a newer epoch; never roll
  // the served context backwards.
  if (context_ == nullptr ||
      context_->snapshot->epoch <= ctx->snapshot->epoch) {
    context_ = ctx;
  }
  return context_;
}

std::shared_ptr<const QueryService::EpochContext> QueryService::CurrentContext()
    const {
  std::lock_guard<std::mutex> lock(context_mu_);
  return context_;
}

const Database& QueryService::db() const {
  return *CurrentContext()->snapshot->db;
}

uint64_t QueryService::instance_fingerprint() const {
  return CurrentContext()->snapshot->fingerprint;
}

uint64_t QueryService::epoch() const {
  return CurrentContext()->snapshot->epoch;
}

ServiceResponse QueryService::Execute(const Request& request) {
  return Run(request);
}

std::vector<ServiceResponse> QueryService::ExecuteBatch(
    const std::vector<Request>& requests, size_t threads) {
  std::vector<ServiceResponse> out(requests.size());
  auto verb_of = [&](size_t i) { return requests[i].verb; };
  auto run_one = [&](size_t i) { out[i] = Run(requests[i]); };
  auto shed_one = [&](size_t i) {
    out[i].status = Status::Unavailable(
        "request shed: admission queue full (max_queue=" +
        std::to_string(options_.max_queue) + ")");
  };
  RunSegmented(requests.size(), verb_of, run_one, shed_one, threads);
  return out;
}

std::vector<ServiceResponse> QueryService::ExecuteBatchLines(
    const std::vector<std::string>& lines, size_t threads) {
  std::vector<ServiceResponse> out(lines.size());
  std::vector<std::optional<Request>> parsed(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    Result<Request> r = ParseRequestLine(lines[i]);
    if (r.ok()) {
      parsed[i] = std::move(r).value();
    } else {
      out[i].status = r.status();
    }
  }
  // Parse failures are inert (their slot already holds the error), so they
  // never act as barriers.
  auto verb_of = [&](size_t i) {
    return parsed[i].has_value() ? parsed[i]->verb : RequestVerb::kQuery;
  };
  auto run_one = [&](size_t i) {
    if (parsed[i].has_value()) out[i] = Run(*parsed[i]);
  };
  // A parse failure keeps its (more specific) error even when its slot
  // falls in the shed region.
  auto shed_one = [&](size_t i) {
    if (!parsed[i].has_value()) return;
    out[i].status = Status::Unavailable(
        "request shed: admission queue full (max_queue=" +
        std::to_string(options_.max_queue) + ")");
  };
  RunSegmented(lines.size(), verb_of, run_one, shed_one, threads);
  return out;
}

template <typename VerbOf, typename RunOne, typename ShedOne>
void QueryService::RunSegmented(size_t count, const VerbOf& verb_of,
                                const RunOne& run_one, const ShedOne& shed_one,
                                size_t threads) {
  // Write/epoch/wal verbs are serial barriers: every request before one
  // sees the pre-verb state, every request after it the post-verb state, at
  // any lane count — that is what makes mixed read/write batches
  // deterministic.
  auto is_barrier = [](RequestVerb v) {
    return v == RequestVerb::kAddFact || v == RequestVerb::kBeginSnapshot ||
           v == RequestVerb::kEpoch || v == RequestVerb::kWalSync;
  };
  size_t start = 0;
  auto run_span = [&](size_t begin, size_t end) {
    if (begin >= end) return;
    size_t admit_end = end;
    if (options_.max_queue > 0 && end - begin > options_.max_queue) {
      // Deterministic load shedding: the span models the admission queue
      // filling in request order — exactly the first max_queue requests of
      // the span run, the overflow answers `err busy` without running. The
      // decision is positional (stream order), never racy runtime depth, so
      // the same requests shed at every lane count.
      admit_end = begin + options_.max_queue;
      for (size_t i = admit_end; i < end; ++i) shed_one(i);
      metrics::Add(stages_.shed, end - admit_end);
    }
    // One record per parallel span: wall-clock from dispatch to the last
    // lane finishing, the batch executor's unit of work.
    metrics::ScopedTimer dispatch_timer(stages_.batch_dispatch);
    ParallelForOn(BatchPool(threads), admit_end - begin,
                  [&](size_t i) { run_one(begin + i); }, /*grain=*/1);
  };
  for (size_t i = 0; i < count; ++i) {
    if (is_barrier(verb_of(i))) {
      run_span(start, i);
      run_one(i);
      start = i + 1;
    }
  }
  run_span(start, count);
}

ThreadPool* QueryService::BatchPool(size_t threads) {
  size_t lanes = threads == 0 ? HardwareThreads() : threads;
  if (lanes == 1) return nullptr;
  if (!pool_ || pool_->thread_count() != lanes) {
    pool_ = std::make_unique<ThreadPool>(lanes, metrics_);
  }
  return pool_.get();
}

std::string QueryService::PlanKey(const EpochContext& ctx,
                                  const std::string& canonical) const {
  if (live_ == nullptr) return canonical;
  // A CompiledQuery embeds its epoch's normal-form instance, so live plans
  // are per-epoch. Canonical text always starts with "Ans(", so the prefix
  // is unambiguous.
  return "e" + std::to_string(ctx.snapshot->epoch) + ":" + canonical;
}

uint64_t QueryService::EffectiveFingerprint(const EpochContext& ctx,
                                            const ConjunctiveQuery& query,
                                            RequestMode mode,
                                            bool explain) const {
  const InstanceSnapshot& snap = *ctx.snapshot;
  if (live_ == nullptr) return snap.fingerprint;
  size_t seed = static_cast<size_t>(base_fingerprint_);
  if (mode == RequestMode::kFpras || mode == RequestMode::kAll || explain) {
    // Full-instance dependence: the Appendix-E normal form pads every
    // relation into the FPRAS automata, and explain's plan cost fields read
    // global statistics. Any ingest invalidates.
    HashCombine(&seed, static_cast<size_t>(snap.epoch));
    return static_cast<uint64_t>(seed);
  }
  // exact/mc: scoped to the query's own relations plus the global conflict
  // structure (see the file comment in service.h for the argument).
  HashCombine(&seed, static_cast<size_t>(snap.conflict_epoch));
  std::vector<RelationId> footprint;
  footprint.reserve(query.atoms().size());
  for (const QueryAtom& atom : query.atoms()) {
    footprint.push_back(atom.relation);
  }
  std::sort(footprint.begin(), footprint.end());
  footprint.erase(std::unique(footprint.begin(), footprint.end()),
                  footprint.end());
  for (RelationId rel : footprint) {
    HashCombine(&seed, static_cast<size_t>(rel));
    uint64_t rel_epoch = rel < snap.relation_epochs.size()
                             ? snap.relation_epochs[rel]
                             : 0;
    HashCombine(&seed, static_cast<size_t>(rel_epoch));
  }
  return static_cast<uint64_t>(seed);
}

Result<std::shared_ptr<CompiledQuery>> QueryService::PlanFor(
    const EpochContext& ctx, const std::string& canonical,
    const ConjunctiveQuery& query, metrics::StageTrace* trace) {
  // plan_us covers the whole lookup-or-compile; on a cache hit it is just
  // the lock + LRU touch.
  metrics::ScopedStage plan_stage(stages_.plan, trace, "plan_us");
  std::string key = PlanKey(ctx, canonical);
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    std::optional<std::shared_ptr<CompiledQuery>> hit = plan_cache_.Get(key);
    if (hit.has_value()) return *hit;
  }
  OcqaOptions options;
  options.max_width = options_.max_width;
  Result<CompiledQuery> compiled = [&]() -> Result<CompiledQuery> {
    metrics::ScopedStage compile_stage(stages_.compile, trace, "compile_us");
    return ctx.engine->Compile(query, options);
  }();
  if (!compiled.ok()) return compiled.status();
  // The planner's share of the compile is measured inside Compile itself
  // (QueryPlan::planning_micros); mirror it as its own stage so the
  // histogram separates plan search from normal-form conversion.
  uint64_t planner_us =
      static_cast<uint64_t>(compiled.value().plan().planning_micros);
  metrics::Record(stages_.planner, planner_us);
  if (trace != nullptr && trace->active) {
    trace->spans.emplace_back("planner_us", planner_us);
  }
  auto plan = std::make_shared<CompiledQuery>(std::move(compiled).value());
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    // Another lane may have raced us to the same plan; keep the published
    // one so every request shares a single automaton memo. (Find, not Get:
    // this request's semantic miss was already counted above.)
    std::optional<std::shared_ptr<CompiledQuery>> existing =
        plan_cache_.Find(key);
    if (existing.has_value()) return *existing;
    plan_cache_.Put(key, plan);
  }
  return plan;
}

ServiceResponse QueryService::Run(const Request& request) {
  if (request.verb == RequestVerb::kStats) {
    // Introspection, not a query: skip the request counter and both caches
    // (timings change between runs, so the payload must never replay).
    ServiceResponse out;
    out.payload = StatsPayload();
    return out;
  }
  if (request.verb == RequestVerb::kMetrics) {
    // Same introspection contract as stats: never counted, never cached.
    ServiceResponse out;
    out.payload = metrics_ == nullptr ? "metrics=off"
                                      : metrics_->OneLineText();
    return out;
  }
  if (request.verb == RequestVerb::kVersion) {
    ServiceResponse out;
    out.payload = VersionFields();
    return out;
  }
  if (stages_.requests != nullptr) {
    stages_.requests->Increment();
  } else {
    std::lock_guard<std::mutex> lock(requests_mu_);
    ++requests_served_;
  }
  if (request.verb != RequestVerb::kQuery) return RunControl(request);
  // Pin this request's epoch: everything below — parse, cache lookups, the
  // solvers — runs against one immutable snapshot, however many snapshots
  // a concurrent writer publishes meanwhile.
  std::shared_ptr<const EpochContext> ctx = CurrentContext();
  return RunQuery(request, *ctx);
}

ServiceResponse QueryService::RunControl(const Request& request) {
  ServiceResponse out;
  switch (request.verb) {
    case RequestVerb::kEpoch: {
      std::shared_ptr<const EpochContext> ctx = CurrentContext();
      out.payload = "facts=" + std::to_string(ctx->snapshot->db->size());
      out.has_epoch = true;
      out.epoch = ctx->snapshot->epoch;
      return out;
    }
    case RequestVerb::kAddFact: {
      if (live_ == nullptr) {
        out.status = Status::InvalidArgument(
            "add_fact requires a live service");
        return out;
      }
      out.status = live_->Add(request.fact_relation,
                              ParseFactArgs(request.fact_args));
      if (!out.status.ok()) {
        // A dead WAL writer reports Unavailable; rewrap so the response
        // renders as a hard error, not the retryable `err busy` that code
        // means for load shedding.
        if (out.status.code() == StatusCode::kUnavailable) {
          out.status = Status::Internal(out.status.message());
        }
        return out;
      }
      out.payload = "pending=" + std::to_string(live_->pending());
      std::shared_ptr<const EpochContext> ctx = CurrentContext();
      out.has_epoch = true;
      out.epoch = ctx->snapshot->epoch;
      return out;
    }
    case RequestVerb::kBeginSnapshot: {
      if (live_ == nullptr) {
        out.status = Status::InvalidArgument(
            "begin_snapshot requires a live service");
        return out;
      }
      Status wal_status;
      std::shared_ptr<const InstanceSnapshot> snapshot =
          live_->Snapshot(&wal_status);
      if (!wal_status.ok()) {
        // Nothing was published (write-ahead ordering): keep serving the
        // previous epoch and report the durability failure hard.
        out.status = Status::Internal(wal_status.message());
        return out;
      }
      std::shared_ptr<const EpochContext> ctx =
          InstallContext(std::move(snapshot));
      out.payload = "facts=" + std::to_string(ctx->snapshot->db->size());
      out.has_epoch = true;
      out.epoch = ctx->snapshot->epoch;
      return out;
    }
    case RequestVerb::kWalSync: {
      if (live_ == nullptr) {
        out.status = Status::InvalidArgument(
            "wal_sync requires a live service");
        return out;
      }
      if (live_->has_wal()) {
        Status st = live_->SyncWal();
        if (!st.ok()) {
          out.status = Status::Internal(st.message());
          return out;
        }
        out.payload = std::string("synced=1 policy=") +
                      WalSyncPolicyName(live_->wal_policy());
      } else {
        out.payload = "synced=0 policy=off";
      }
      std::shared_ptr<const EpochContext> ctx = CurrentContext();
      out.has_epoch = true;
      out.epoch = ctx->snapshot->epoch;
      return out;
    }
    case RequestVerb::kQuery:
    case RequestVerb::kStats:
    case RequestVerb::kMetrics:
    case RequestVerb::kVersion:
      break;
  }
  out.status = Status::InvalidArgument("unhandled request verb");
  return out;
}

ServiceResponse QueryService::RunQuery(const Request& request,
                                       const EpochContext& ctx) {
  // The wrapper owns everything timing-related; RunQueryCore computes the
  // payload bytes and never sees whether tracing is on, which is how the
  // bytes-never-change contract is enforced structurally.
  metrics::StageTrace trace;
  trace.active = request.trace || options_.slow_query_micros > 0;
  std::string canonical;
  ServiceResponse out;
  {
    metrics::ScopedStage total(stages_.request, &trace, "total_us");
    out = RunQueryCore(request, ctx, &trace, &canonical);
  }
  // total_us is the last span the scope above appended (when collecting).
  if (request.trace) out.trace = trace.ToString();
  if (options_.slow_query_micros > 0 && !trace.spans.empty() &&
      trace.spans.back().second >= options_.slow_query_micros) {
    std::string line = "slow_query query=" +
                       QuoteProtocolValue(canonical.empty()
                                              ? request.query_text
                                              : canonical) +
                       " " + trace.ToString();
    std::lock_guard<std::mutex> lock(slow_mu_);
    if (options_.slow_query_sink) {
      options_.slow_query_sink(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
  return out;
}

ServiceResponse QueryService::RunQueryCore(const Request& request,
                                           const EpochContext& ctx,
                                           metrics::StageTrace* trace,
                                           std::string* canonical_out) {
  ServiceResponse out;
  const Database& db = *ctx.snapshot->db;
  const OcqaEngine& engine = *ctx.engine;
  if (live_ != nullptr) {
    out.has_epoch = true;
    out.epoch = ctx.snapshot->epoch;
  }
  // The deadline is checked at the stage seams below; an expired request
  // abandons its remaining stages, discards any partial payload, and never
  // enters the result cache (a timeout must not poison later requests).
  Deadline deadline(request.timeout_ms);
  auto timed_out = [&](ServiceResponse* r) {
    if (!deadline.Expired()) return false;
    r->status = Status::DeadlineExceeded(
        "deadline of " + std::to_string(request.timeout_ms) +
        " ms exceeded");
    r->payload.clear();
    r->cache_hit = false;
    return true;
  };
  out.status = ValidateAccuracy(request.epsilon, request.delta,
                                request.samples);
  if (!out.status.ok()) return out;

  Result<ConjunctiveQuery> query = [&]() -> Result<ConjunctiveQuery> {
    metrics::ScopedStage parse_stage(stages_.parse, trace, "parse_us");
    return ParseQuery(request.query_text, db.schema());
  }();
  if (!query.ok()) {
    out.status = query.status();
    return out;
  }
  std::vector<Value> answer = ParseAnswerTuple(request.answer_text);
  if (answer.size() != query->answer_vars().size()) {
    out.status = Status::InvalidArgument(
        "answer arity mismatch: query has " +
        std::to_string(query->answer_vars().size()) +
        " answer variables, answer provided " +
        std::to_string(answer.size()) + " constants");
    return out;
  }

  std::string& canonical = *canonical_out;
  canonical = CanonicalQueryText(*query);
  ResultKey key;
  key.fingerprint =
      EffectiveFingerprint(ctx, *query, request.mode, request.explain);
  key.canonical_query = canonical;
  key.answer = answer;
  key.mode = request.mode;
  key.epsilon = request.epsilon;
  key.delta = request.delta;
  key.samples = request.samples;
  key.seed = request.seed;
  key.seed_schema = request.seed_schema;
  key.max_width = options_.max_width;
  key.explain = request.explain;
  {
    metrics::ScopedStage cache_stage(stages_.result_cache, trace,
                                     "result_cache_us");
    std::lock_guard<std::mutex> lock(result_mu_);
    std::optional<std::string> hit = result_cache_.Get(key);
    if (hit.has_value()) {
      out.payload = std::move(*hit);
      out.cache_hit = true;
      trace->AddCount("cache_hit", 1);
      return out;
    }
  }
  trace->AddCount("cache_hit", 0);
  if (timed_out(&out)) return out;

  std::string payload;
  auto append = [&payload](const std::string& field) {
    if (!payload.empty()) payload += " ";
    payload += field;
  };
  bool all = request.mode == RequestMode::kAll;

  bool traced_planner_nodes = false;
  auto trace_planner_nodes = [&](const CompiledQuery& plan) {
    if (traced_planner_nodes) return;
    traced_planner_nodes = true;
    double cost = plan.plan().order_cost;
    trace->AddCount("planner_nodes",
                    cost > 0 ? static_cast<uint64_t>(cost) : 0);
  };

  if (all || request.mode == RequestMode::kExact) {
    metrics::ScopedStage exact_stage(stages_.exact_dp, trace, "exact_dp_us");
    ExactRF ur = engine.ExactUr(*query, answer);
    ExactRF us = engine.ExactUs(*query, answer);
    append("exact_ur=" + ur.numerator.ToString() + "/" +
           ur.denominator.ToString());
    append("exact_us=" + us.numerator.ToString() + "/" +
           us.denominator.ToString());
  }
  if (timed_out(&out)) return out;
  if (all || request.mode == RequestMode::kFpras) {
    Result<std::shared_ptr<CompiledQuery>> plan =
        PlanFor(ctx, canonical, *query, trace);
    if (!plan.ok()) {
      append("fpras_error='" + plan.status().ToString() + "'");
    } else {
      trace_planner_nodes(**plan);
      OcqaOptions options;
      options.fpras.epsilon = request.epsilon;
      options.fpras.delta = request.delta;
      options.fpras.seed = request.seed;
      options.fpras.seed_schema = request.seed_schema;
      options.max_width = options_.max_width;
      options.threads = 1;  // batch lanes are the parallelism
      metrics::ScopedStage fpras_stage(stages_.fpras_trials, trace,
                                       "fpras_trials_us");
      Result<ApproxRF> ur = engine.ApproxUr(**plan, answer, options);
      append(ur.ok() ? "fpras_ur=" + FormatDouble(ur->value) : "fpras_ur=na");
      Result<ApproxRF> us = engine.ApproxUs(**plan, answer, options);
      append(us.ok() ? "fpras_us=" + FormatDouble(us->value) : "fpras_us=na");
      trace->AddCount("fpras_trials",
                      (ur.ok() ? ur->union_trials : 0) +
                          (us.ok() ? us->union_trials : 0));
    }
  }
  if (timed_out(&out)) return out;
  if (all || request.mode == RequestMode::kMc) {
    metrics::ScopedStage mc_stage(stages_.mc_trials, trace, "mc_trials_us");
    append("mc_ur=" + FormatDouble(engine.MonteCarloUr(
                          *query, answer, request.samples, request.seed,
                          /*threads=*/1)));
    append("mc_us=" + FormatDouble(engine.MonteCarloUs(
                          *query, answer, request.samples, request.seed,
                          /*threads=*/1)));
    trace->AddCount("mc_samples", 2 * request.samples);
  }
  if (request.explain) {
    // The plan's Fields() are deterministic (no timing), so explain
    // payloads replay byte-identically like every other cached result.
    // Compiling through PlanFor shares the plan cache even in exact/mc
    // modes, where the solvers themselves don't need the artifact.
    Result<std::shared_ptr<CompiledQuery>> plan =
        PlanFor(ctx, canonical, *query, trace);
    if (plan.ok()) {
      trace_planner_nodes(**plan);
      append((*plan)->plan().Fields());
    } else {
      append("explain_error='" + plan.status().ToString() + "'");
    }
  }

  // A request that ran out of budget after its last solver stage still
  // reports the timeout — and, critically, its payload must not be cached:
  // the entry would be indistinguishable from a completed one.
  if (timed_out(&out)) return out;
  {
    // Failpoint: drop the insertion (the entry never lands in the cache).
    // The response is computed either way — the timeout/shed tests use this
    // to pin that payload bytes never depend on cache insertion succeeding.
    static failpoint::Site cache_insert_fp("service.result_cache.insert");
    if (!cache_insert_fp.Triggered()) {
      metrics::ScopedTimer put_timer(stages_.result_cache);
      std::lock_guard<std::mutex> lock(result_mu_);
      result_cache_.Put(key, payload);
    }
  }
  out.payload = std::move(payload);
  return out;
}

std::string QueryService::StatsPayload() const {
  // The live-instance fields now ride inside ServiceStats::ToString(); the
  // payload bytes are unchanged from when this function appended them.
  std::string out = stats().ToString();
  std::lock_guard<std::mutex> lock(plan_mu_);
  out += " plans_cached=" + std::to_string(plan_cache_.size());
  plan_cache_.ForEach([&out](const std::string& key,
                             const std::shared_ptr<CompiledQuery>& plan) {
    out += " plan=" + QuoteProtocolValue(key) + " planning_us=" +
           std::to_string(plan->plan().planning_micros);
  });
  return out;
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  if (metrics_ != nullptr) {
    // Metrics on: the registry is the single source of truth — the request
    // counter and both caches record there (BindCounters mirrors the LRU
    // events), so the stats verb and the Prometheus exposition can never
    // disagree.
    out.requests =
        static_cast<size_t>(stages_.requests->Value());
    out.plan_hits = static_cast<size_t>(
        metrics_->GetCounter("uocqa_plan_cache_hits_total")->Value());
    out.plan_misses = static_cast<size_t>(
        metrics_->GetCounter("uocqa_plan_cache_misses_total")->Value());
    out.plan_evictions = static_cast<size_t>(
        metrics_->GetCounter("uocqa_plan_cache_evictions_total")->Value());
    out.result_hits = static_cast<size_t>(
        metrics_->GetCounter("uocqa_result_cache_hits_total")->Value());
    out.result_misses = static_cast<size_t>(
        metrics_->GetCounter("uocqa_result_cache_misses_total")->Value());
    out.result_evictions = static_cast<size_t>(
        metrics_->GetCounter("uocqa_result_cache_evictions_total")->Value());
  } else {
    {
      std::lock_guard<std::mutex> lock(requests_mu_);
      out.requests = requests_served_;
    }
    {
      std::lock_guard<std::mutex> lock(plan_mu_);
      out.plan_hits = plan_cache_.hits();
      out.plan_misses = plan_cache_.misses();
      out.plan_evictions = plan_cache_.evictions();
    }
    {
      std::lock_guard<std::mutex> lock(result_mu_);
      out.result_hits = result_cache_.hits();
      out.result_misses = result_cache_.misses();
      out.result_evictions = result_cache_.evictions();
    }
  }
  if (live_ != nullptr) {
    std::shared_ptr<const EpochContext> ctx = CurrentContext();
    out.has_live = true;
    out.epoch = ctx->snapshot->epoch;
    out.facts = ctx->snapshot->db->size();
    out.pending = live_->pending();
  }
  return out;
}

}  // namespace uocqa
