// The query service layer: one instance — loaded statically or served live —
// answering many OCQA requests.
//
// Every OcqaEngine call used to re-run the whole pipeline prefix — GHD
// search, Appendix-E normal form, Rep[k]/Seq[k] NFTA compilation — even for
// a query asked a moment earlier. The service amortizes that cost across a
// request stream with two caches and a batch executor:
//
//  * a **plan cache** (LRU over canonical query text + width config) holding
//    CompiledQuery artifacts, so a repeated query — including any variable
//    renaming of it — skips straight to the per-request trials;
//  * a **result cache** (LRU over effective instance fingerprint + canonical
//    query + answer tuple + mode + accuracy/seed parameters) replaying fully
//    computed responses byte-identically;
//  * a **batch executor** running independent requests across ThreadPool
//    lanes. Each request is itself executed serially (inner threads = 1),
//    so the engine's non-re-entrant pool is never touched concurrently, and
//    every estimate is a pure function of the request parameters — the
//    response vector is bit-identical at any lane count, in request order.
//
// **Live mode** (the LiveInstance constructor) adds MVCC epochs under the
// same machinery. Each request pins the current epoch's context (snapshot +
// engine) via shared_ptr, so writers never tear an in-flight query. The
// result cache key's fingerprint becomes epoch-aware, scoped to what a
// result can actually depend on:
//
//  * fpras/all requests (and any explain=1 request) depend on the full
//    instance — the Appendix-E normal form pads every relation into the
//    automaton, and plan cost fields read global statistics — so their
//    effective fingerprint is (base, epoch): any ingest invalidates them.
//  * exact/mc requests depend only on (a) the relations in the query's own
//    atoms — evaluation never reads others — and (b) the global
//    conflict-block structure, through the |ORep|/|CRS| denominators and
//    the samplers' RNG consumption. Their effective fingerprint is
//    (base, conflict_epoch, footprint relation epochs): a conflict-free
//    insert into a relation outside the query's footprint provably changes
//    neither the exact BigInt counts nor a single Monte-Carlo random draw
//    (singleton blocks are forced, and forced choices are RNG-silent —
//    repairs/sampling.h), so those entries keep replaying byte-identically
//    across the ingest.
//
// The plan cache survives ingest untouched: live entries are keyed
// (epoch, canonical) — a CompiledQuery embeds its epoch's normal-form
// instance, so older epochs' plans stay valid for their epoch and simply
// age out of the LRU.
//
// Two introspection hooks ride on the protocol: `explain=1` appends the
// compiled plan's deterministic `plan_*` fields to the payload (cache-key'd
// separately, still byte-identical on replay), and a bare `stats` line
// reports the cache counters plus per-plan planning times (never cached).

#ifndef UOCQA_SERVICE_SERVICE_H_
#define UOCQA_SERVICE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/metrics.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "db/database.h"
#include "db/keys.h"
#include "ocqa/engine.h"
#include "query/cq.h"
#include "service/live.h"
#include "service/lru_cache.h"
#include "service/request.h"

namespace uocqa {

struct ServiceOptions {
  /// Plan (compiled pipeline) cache capacity; 0 disables plan caching.
  size_t plan_cache_capacity = 64;
  /// Result (response replay) cache capacity; 0 disables result caching.
  size_t result_cache_capacity = 4096;
  /// Maximum decomposition width for the FPRAS pipeline (OcqaOptions).
  size_t max_width = 6;
  /// Instrument the request path (stage latency histograms, cache/request
  /// counters, pool counters — see docs/ARCHITECTURE.md "Observability").
  /// On by default: the cost is one relaxed atomic add per event and one
  /// clock read per timed stage, and the hard contract is that no response
  /// byte ever depends on this flag (pinned by tests/observability_test.cc).
  /// When false the service holds null instrument handles and the whole
  /// layer compiles down to skipped branches.
  bool metrics_enabled = true;
  /// Registry to record into; nullptr (default) makes the service own a
  /// private one, so per-service counters stay correct when several
  /// services share a process. Inject a shared registry (e.g.
  /// MetricsRegistry::Global()) to aggregate across services. Ignored when
  /// `metrics_enabled` is false.
  MetricsRegistry* metrics = nullptr;
  /// Bounded admission for batch execution: within each barrier-delimited
  /// span of a batch, at most this many requests are admitted; the rest are
  /// shed deterministically (`err busy`, StatusCode::kUnavailable) without
  /// running. Shedding is positional — the span's first `max_queue`
  /// requests run, later ones shed — so the response vector stays
  /// bit-identical at every lane count. 0 (the default) disables shedding.
  size_t max_queue = 0;
  /// Log any query whose end-to-end service time reaches this many
  /// microseconds (canonical query text + per-stage breakdown) to
  /// `slow_query_sink`. 0 disables the slow-query log.
  uint64_t slow_query_micros = 0;
  /// Destination for slow-query lines; null means stderr. Called with the
  /// formatted line (no trailing newline), serialized by the service.
  std::function<void(const std::string&)> slow_query_sink;
};

/// Cache counters, as one readable line for logs and the serve front end.
/// With metrics enabled these are read back from the service's registry
/// (the counters are unified — there is one source of truth); the line
/// format is pinned byte-for-byte by tests either way.
struct ServiceStats {
  size_t requests = 0;
  size_t plan_hits = 0;
  size_t plan_misses = 0;
  size_t plan_evictions = 0;
  size_t result_hits = 0;
  size_t result_misses = 0;
  size_t result_evictions = 0;
  /// Live-instance fields (live services only; `has_live` gates rendering
  /// so static services' stats lines are unchanged).
  bool has_live = false;
  uint64_t epoch = 0;
  size_t facts = 0;
  size_t pending = 0;

  /// "requests=N plan_hits=... result_evictions=..." plus, for live
  /// services, " epoch=E facts=F pending=P".
  std::string ToString() const;
};

/// Serves OCQA requests against one instance.
///
/// Static mode (Database/KeySet constructor): the instance must stay alive
/// and unmodified for the service's lifetime; the write verbs error out;
/// response lines are exactly the pre-live format (no epoch field).
///
/// Live mode (LiveInstance constructor): the service serves the instance's
/// current snapshot, applies `add_fact`/`begin_snapshot` verbs to it, and
/// stamps every response with the epoch it was served against. The
/// LiveInstance must outlive the service.
///
/// Thread safety: in static mode, Execute/ExecuteBatch may not be called
/// concurrently by external threads (batching is the supported way to
/// parallelize). In live mode Execute is additionally safe to call
/// concurrently with itself and with ExecuteBatch *from other threads* —
/// each request pins one epoch context and all shared state is internally
/// locked — which is what lets writers ingest while readers query.
class QueryService {
 public:
  QueryService(const Database& db, const KeySet& keys,
               const ServiceOptions& options = {});
  QueryService(LiveInstance& live, const ServiceOptions& options = {});

  /// Serves one request (equivalent to a one-element batch).
  ServiceResponse Execute(const Request& request);

  /// Serves requests on `threads` lanes (0 = hardware concurrency,
  /// 1 = serial). Responses come back in request order and are bit-identical
  /// at every lane count: write/epoch verbs (`add_fact`, `begin_snapshot`,
  /// `epoch`) act as serial barriers, and the query runs between them
  /// execute concurrently against a fixed epoch.
  std::vector<ServiceResponse> ExecuteBatch(
      const std::vector<Request>& requests, size_t threads = 1);

  /// Parses each line with ParseRequestLine and serves the batch; a line
  /// that fails to parse yields an error response in its slot. Blank and
  /// comment lines are the caller's concern (the front ends skip them).
  std::vector<ServiceResponse> ExecuteBatchLines(
      const std::vector<std::string>& lines, size_t threads = 1);

  /// Snapshot of the cache counters.
  ServiceStats stats() const;

  /// The service's metrics registry — the injected one, the service-owned
  /// default, or nullptr when metrics are disabled. The serve front end's
  /// --metrics-file reads PrometheusText() from here.
  MetricsRegistry* metrics() const { return metrics_; }

  /// The currently served database version and key set. In live mode the
  /// reference is only stable until the next begin_snapshot; pin the
  /// snapshot through the LiveInstance for anything longer-lived.
  const Database& db() const;
  const KeySet& keys() const { return *keys_; }
  /// The currently served snapshot's full-instance fingerprint (memoized
  /// per epoch, never rehashed on the request path).
  uint64_t instance_fingerprint() const;
  /// The currently served epoch (always 0 in static mode).
  uint64_t epoch() const;

 private:
  /// One epoch's serving state: the pinned snapshot and an engine over it,
  /// denominators pre-seeded from the snapshot's delta-maintained values.
  /// Requests copy the shared_ptr once and work off it for their whole
  /// lifetime, so a concurrent begin_snapshot never tears them.
  struct EpochContext {
    std::shared_ptr<const InstanceSnapshot> snapshot;
    std::unique_ptr<OcqaEngine> engine;
  };

  struct ResultKey {
    uint64_t fingerprint = 0;
    std::string canonical_query;
    std::vector<Value> answer;
    RequestMode mode = RequestMode::kAll;
    double epsilon = 0;
    double delta = 0;
    size_t samples = 0;
    uint64_t seed = 0;
    int seed_schema = kDefaultSeedSchema;
    size_t max_width = 0;
    bool explain = false;

    bool operator==(const ResultKey& o) const;
  };
  struct ResultKeyHash {
    size_t operator()(const ResultKey& k) const;
  };

  /// Builds and publishes the context for `snapshot` (no-op republish if it
  /// is already current); returns the published context.
  std::shared_ptr<const EpochContext> InstallContext(
      std::shared_ptr<const InstanceSnapshot> snapshot);

  /// The pinned context for one request.
  std::shared_ptr<const EpochContext> CurrentContext() const;

  /// Resolves the registry and stage handles from `options_` (constructor
  /// helper; must run before the first InstallContext so epoch engines are
  /// wired).
  void InitMetrics();

  /// The full (uncached) execution of one request; `response.payload` is
  /// what the result cache stores.
  ServiceResponse Run(const Request& request);
  /// Instrumentation wrapper: times the whole query, renders the trace
  /// field, and feeds the slow-query log; the payload comes from
  /// RunQueryCore untouched.
  ServiceResponse RunQuery(const Request& request, const EpochContext& ctx);
  ServiceResponse RunQueryCore(const Request& request, const EpochContext& ctx,
                               metrics::StageTrace* trace,
                               std::string* canonical_out);
  ServiceResponse RunControl(const Request& request);

  /// The effective result-cache fingerprint of a query at `ctx` — see the
  /// file comment for the mode-dependent epoch scoping.
  uint64_t EffectiveFingerprint(const EpochContext& ctx,
                                const ConjunctiveQuery& query,
                                RequestMode mode, bool explain) const;

  /// The plan cache key for `canonical` at `ctx` (epoch-prefixed in live
  /// mode: a CompiledQuery embeds its epoch's normal-form instance).
  std::string PlanKey(const EpochContext& ctx,
                      const std::string& canonical) const;

  /// The stats-verb payload: the ServiceStats counters plus, per cached
  /// plan (most recently used first), the canonical query and its planning
  /// wall-clock time. Never cached — timings change between runs.
  std::string StatsPayload() const;

  /// The plan cache entry for `canonical` at `ctx`, compiling on miss.
  /// Never null on ok(); the shared_ptr keeps evicted plans alive for
  /// in-flight requests. Records the plan/compile/planner stages (and the
  /// request's trace spans when `trace` is active).
  Result<std::shared_ptr<CompiledQuery>> PlanFor(
      const EpochContext& ctx, const std::string& canonical,
      const ConjunctiveQuery& query, metrics::StageTrace* trace = nullptr);

  /// Runs requests [0, count): barrier verbs (add_fact, begin_snapshot,
  /// epoch, wal_sync) serially in order, the query spans between them in
  /// parallel on BatchPool(threads) — the shared core of ExecuteBatch and
  /// ExecuteBatchLines. With options_.max_queue > 0, span positions past
  /// the limit are handed to `shed_one` instead of running.
  template <typename VerbOf, typename RunOne, typename ShedOne>
  void RunSegmented(size_t count, const VerbOf& verb_of, const RunOne& run_one,
                    const ShedOne& shed_one, size_t threads);

  /// Lanes for a batch call; nullptr when `threads` resolves to 1.
  ThreadPool* BatchPool(size_t threads);

  ServiceOptions options_;
  LiveInstance* live_ = nullptr;  ///< null in static mode
  const KeySet* keys_;
  /// Epoch-independent base of every effective fingerprint (the served
  /// snapshot's fingerprint at construction).
  uint64_t base_fingerprint_ = 0;

  mutable std::mutex context_mu_;
  std::shared_ptr<const EpochContext> context_;

  mutable std::mutex plan_mu_;
  LruCache<std::string, std::shared_ptr<CompiledQuery>> plan_cache_;
  mutable std::mutex result_mu_;
  LruCache<ResultKey, std::string, ResultKeyHash> result_cache_;

  mutable std::mutex requests_mu_;
  size_t requests_served_ = 0;  ///< metrics-off fallback for stats().requests

  /// Lanes for ExecuteBatch, (re)built on demand like OcqaEngine::PoolFor.
  std::unique_ptr<ThreadPool> pool_;

  /// Metrics wiring (all null when metrics are disabled). Stage handles are
  /// resolved once at construction, never per request.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  struct StageHandles {
    metrics::Counter* requests = nullptr;
    metrics::Histogram* parse = nullptr;
    metrics::Histogram* plan = nullptr;
    metrics::Histogram* planner = nullptr;
    metrics::Histogram* compile = nullptr;
    metrics::Histogram* exact_dp = nullptr;
    metrics::Histogram* fpras_trials = nullptr;
    metrics::Histogram* mc_trials = nullptr;
    metrics::Histogram* result_cache = nullptr;
    metrics::Histogram* batch_dispatch = nullptr;
    metrics::Histogram* request = nullptr;
    metrics::Counter* shed = nullptr;
  } stages_;
  /// Serializes slow-query sink calls across batch lanes.
  std::mutex slow_mu_;
};

}  // namespace uocqa

#endif  // UOCQA_SERVICE_SERVICE_H_
