// The query service layer: one loaded instance serving many OCQA requests.
//
// Every OcqaEngine call used to re-run the whole pipeline prefix — GHD
// search, Appendix-E normal form, Rep[k]/Seq[k] NFTA compilation — even for
// a query asked a moment earlier. The service amortizes that cost across a
// request stream with two caches and a batch executor:
//
//  * a **plan cache** (LRU over canonical query text + width config) holding
//    CompiledQuery artifacts, so a repeated query — including any variable
//    renaming of it — skips straight to the per-request trials;
//  * a **result cache** (LRU over instance fingerprint + canonical query +
//    answer tuple + mode + accuracy/seed parameters) replaying fully
//    computed responses byte-identically;
//  * a **batch executor** running independent requests across ThreadPool
//    lanes. Each request is itself executed serially (inner threads = 1),
//    so the engine's non-re-entrant pool is never touched concurrently, and
//    every estimate is a pure function of the request parameters — the
//    response vector is bit-identical at any lane count, in request order.
//
// Two introspection hooks ride on the protocol: `explain=1` appends the
// compiled plan's deterministic `plan_*` fields to the payload (cache-key'd
// separately, still byte-identical on replay), and a bare `stats` line
// reports the cache counters plus per-plan planning times (never cached).

#ifndef UOCQA_SERVICE_SERVICE_H_
#define UOCQA_SERVICE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/thread_pool.h"
#include "db/database.h"
#include "db/keys.h"
#include "ocqa/engine.h"
#include "query/cq.h"
#include "service/lru_cache.h"
#include "service/request.h"

namespace uocqa {

struct ServiceOptions {
  /// Plan (compiled pipeline) cache capacity; 0 disables plan caching.
  size_t plan_cache_capacity = 64;
  /// Result (response replay) cache capacity; 0 disables result caching.
  size_t result_cache_capacity = 4096;
  /// Maximum decomposition width for the FPRAS pipeline (OcqaOptions).
  size_t max_width = 6;
};

/// Cache counters, as one readable line for logs and the serve front end.
struct ServiceStats {
  size_t requests = 0;
  size_t plan_hits = 0;
  size_t plan_misses = 0;
  size_t plan_evictions = 0;
  size_t result_hits = 0;
  size_t result_misses = 0;
  size_t result_evictions = 0;

  /// "requests=N plan_hits=... result_evictions=...".
  std::string ToString() const;
};

/// Owns a loaded instance and serves OCQA requests against it. The database
/// and key set must stay alive and unmodified for the service's lifetime
/// (the result cache is scoped to the instance fingerprint taken at
/// construction).
///
/// Thread safety: Execute and ExecuteBatch may not be called concurrently
/// by external threads; batching is the supported way to parallelize.
class QueryService {
 public:
  QueryService(const Database& db, const KeySet& keys,
               const ServiceOptions& options = {});

  /// Serves one request (equivalent to a one-element batch).
  ServiceResponse Execute(const Request& request);

  /// Serves independent requests concurrently on `threads` lanes
  /// (0 = hardware concurrency, 1 = serial). Responses come back in request
  /// order and are bit-identical at every lane count.
  std::vector<ServiceResponse> ExecuteBatch(
      const std::vector<Request>& requests, size_t threads = 1);

  /// Parses each line with ParseRequestLine and serves the batch; a line
  /// that fails to parse yields an error response in its slot. Blank and
  /// comment lines are the caller's concern (the front ends skip them).
  std::vector<ServiceResponse> ExecuteBatchLines(
      const std::vector<std::string>& lines, size_t threads = 1);

  /// Snapshot of the cache counters.
  ServiceStats stats() const;

  const Database& db() const { return db_; }
  const KeySet& keys() const { return keys_; }
  uint64_t instance_fingerprint() const { return fingerprint_; }

 private:
  struct ResultKey {
    uint64_t fingerprint = 0;
    std::string canonical_query;
    std::vector<Value> answer;
    RequestMode mode = RequestMode::kAll;
    double epsilon = 0;
    double delta = 0;
    size_t samples = 0;
    uint64_t seed = 0;
    int seed_schema = 2;
    size_t max_width = 0;
    bool explain = false;

    bool operator==(const ResultKey& o) const;
  };
  struct ResultKeyHash {
    size_t operator()(const ResultKey& k) const;
  };

  /// The full (uncached) execution of one request; `response.payload` is
  /// what the result cache stores.
  ServiceResponse Run(const Request& request);

  /// The stats-verb payload: the ServiceStats counters plus, per cached
  /// plan (most recently used first), the canonical query and its planning
  /// wall-clock time. Never cached — timings change between runs.
  std::string StatsPayload() const;

  /// The plan cache entry for `canonical`, compiling on miss. Never null on
  /// ok(); the shared_ptr keeps evicted plans alive for in-flight requests.
  Result<std::shared_ptr<CompiledQuery>> PlanFor(
      const std::string& canonical, const ConjunctiveQuery& query);

  /// Lanes for a batch call; nullptr when `threads` resolves to 1.
  ThreadPool* BatchPool(size_t threads);

  const Database& db_;
  const KeySet& keys_;
  ServiceOptions options_;
  uint64_t fingerprint_;
  OcqaEngine engine_;

  mutable std::mutex plan_mu_;
  LruCache<std::string, std::shared_ptr<CompiledQuery>> plan_cache_;
  mutable std::mutex result_mu_;
  LruCache<ResultKey, std::string, ResultKeyHash> result_cache_;

  mutable std::mutex requests_mu_;
  size_t requests_served_ = 0;

  /// Lanes for ExecuteBatch, (re)built on demand like OcqaEngine::PoolFor.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace uocqa

#endif  // UOCQA_SERVICE_SERVICE_H_
