// Write-ahead log for live instances: durability across process crashes.
//
// A LiveInstance (live.h) accumulates `add_fact` deltas and publishes them
// as immutable snapshot epochs; before this module every queued fact and
// every published epoch lived only in memory. The WAL closes that gap with
// the classic log-then-apply discipline:
//
//  * every accepted `add_fact` is appended to the log *before* it is queued
//    in the pending delta (record type `add_fact`, carrying the relation
//    NAME and constant STRINGS — never interned Value ids, which are
//    process-local and ingestion-order-dependent);
//  * every `begin_snapshot` appends a `barrier` record carrying the epoch,
//    fact count, and fact-chain fingerprint of the snapshot it published —
//    even when the delta was empty or all-duplicate and the epoch did not
//    advance. Replay re-executes Snapshot() at exactly the same points, so
//    the recovered pending set matches the pre-crash pending set, and the
//    recorded epoch/fingerprint double as an end-to-end replay check.
//
// Recovery scans the log, keeps the longest prefix of CRC-valid records
// (a torn tail — short write, zeroed sector, bit flip — fails its frame
// CRC and cleanly ends the prefix), replays that prefix into a fresh
// LiveInstance, and reopens the log truncated to the valid prefix. The
// replayed instance is bit-identical to the pre-crash one: same epoch
// chain, same fact-chain fingerprint, same block partition and delta-
// maintained denominators — the differential guarantee
// tests/recovery_test.cc pins against every injected crash point.
//
// On-disk format (all integers little-endian; see FORMATS.md):
//
//   header:  "UOCQAWAL" | u32 version=1 | u32 crc(magic..version)
//   record:  u32 payload_len | u32 crc | u8 type | payload[payload_len]
//
// The record CRC covers payload_len, type, and payload, so a bit flip in
// the length field is detected rather than causing a misframed read.
//
// Sync policy decides when appended records become power-loss durable:
// `every` fdatasyncs after each record, `batch` group-commits one fdatasync
// per begin_snapshot barrier, `none` leaves it to the kernel (still durable
// across a clean process crash). The WAL writer is single-owner and
// externally serialized (LiveInstance holds it under its mutex).

#ifndef UOCQA_SERVICE_WAL_H_
#define UOCQA_SERVICE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/io.h"
#include "base/metrics.h"
#include "base/status.h"

namespace uocqa {

class LiveInstance;

/// When appended records are forced to stable storage.
enum class WalSyncPolicy {
  kNone,   ///< never fdatasync (kernel writeback only)
  kBatch,  ///< one fdatasync per begin_snapshot barrier (group commit)
  kEvery,  ///< fdatasync after every record
};

/// Parses "none" / "batch" / "every" (the `--wal-sync` flag values).
Result<WalSyncPolicy> ParseWalSyncPolicy(std::string_view text);
const char* WalSyncPolicyName(WalSyncPolicy policy);

/// One logical log record.
struct WalRecord {
  enum class Type : uint8_t {
    kAddFact = 1,
    kBarrier = 2,
  };

  Type type = Type::kAddFact;

  /// kAddFact: the fact as the client spelled it (pre-interning).
  std::string relation;
  std::vector<std::string> constants;

  /// kBarrier: the snapshot the begin_snapshot published (possibly the
  /// unchanged previous snapshot, when the delta was empty/duplicate).
  uint64_t epoch = 0;
  uint64_t facts = 0;
  uint64_t fingerprint = 0;
};

/// The framed on-disk bytes of `record` (frame header + payload).
std::string EncodeWalRecord(const WalRecord& record);

/// The 16-byte file header.
std::string EncodeWalHeader();

/// Result of scanning a log file: every record of the longest valid prefix,
/// in order, plus where that prefix ends.
struct WalScan {
  std::vector<WalRecord> records;
  /// Bytes of the valid prefix (header included). Reopening for append must
  /// truncate to this offset.
  uint64_t valid_bytes = 0;
  /// Bytes after the valid prefix that scanning discarded (torn tail).
  uint64_t truncated_bytes = 0;
};

/// Scans `path`, keeping the longest prefix of CRC-valid records. A torn or
/// bit-flipped tail ends the prefix silently (that is crash recovery working
/// as designed); a missing file is NotFound; a file whose *header* is wrong
/// (bad magic, bad header CRC) is InvalidArgument — it is not a WAL, and
/// appending to it would destroy someone's data.
Result<WalScan> ScanWal(const std::string& path);

/// Replays scanned records into `live` (which must wrap the same base
/// database the log was written over, with no WAL attached yet): add_fact
/// records queue facts, barrier records take a snapshot and verify the
/// recorded epoch, fact count, and fingerprint against the published
/// snapshot. A verification mismatch is an error (the log does not belong
/// to this base instance).
Status ReplayWal(const std::vector<WalRecord>& records, LiveInstance* live);

/// The append side of the log. Created by Open (fresh file or resume), then
/// owned by a LiveInstance and called under its mutex — no internal locking.
///
/// Failpoint sites (base/failpoint.h), each modeling a crash of the write
/// path: once one fires the writer enters a dead state and every further
/// operation fails, exactly as if the process had died there.
///
///   wal.append.drop     record not written at all
///   wal.append.partial  only a prefix of the record's bytes written
///   wal.sync            fdatasync never happens
class WalWriter {
 public:
  /// Opens `path` truncated to `resume_at` bytes and positions for append.
  /// With resume_at == 0 the file is (re)started with a fresh header.
  /// Otherwise `resume_at` must be the valid_bytes of a prior ScanWal.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 WalSyncPolicy policy,
                                                 uint64_t resume_at);

  /// Appends one framed record, then fdatasyncs under policy `every`.
  Status Append(const WalRecord& record);

  /// The group-commit point: fdatasyncs under policy `batch` or `every`,
  /// no-op under `none`.
  Status BarrierSync();

  /// Unconditional fdatasync regardless of policy (the `wal_sync` verb and
  /// the graceful-shutdown path).
  Status Sync();

  /// Marks the writer crashed: every further operation fails. For fault
  /// injection outside the writer (the snapshot-publish failpoint fires
  /// *after* the barrier hit the log, so the log must stop moving too).
  void Kill() { dead_ = true; }

  WalSyncPolicy policy() const { return policy_; }
  const std::string& path() const { return file_->path(); }
  /// Records appended since Open (not counting the replayed prefix).
  uint64_t appended_records() const { return appended_records_; }

  /// Points the writer's instruments at `metrics` (nullptr detaches):
  /// `uocqa_wal_records_total` and `uocqa_wal_sync_us`.
  void SetMetrics(MetricsRegistry* metrics);

 private:
  WalWriter(std::unique_ptr<WritableFile> file, WalSyncPolicy policy)
      : file_(std::move(file)), policy_(policy) {}

  Status SyncInternal();

  std::unique_ptr<WritableFile> file_;
  WalSyncPolicy policy_;
  uint64_t appended_records_ = 0;
  /// Set when a failpoint fired or an I/O error escaped: the writer acts
  /// crashed and refuses all further work.
  bool dead_ = false;

  metrics::Counter* records_total_ = nullptr;
  metrics::Histogram* sync_us_ = nullptr;
};

/// What recovery found, for the operator-facing startup line and metrics.
struct WalRecoveryInfo {
  bool existed = false;          ///< the log file was present
  uint64_t records = 0;          ///< records replayed
  uint64_t truncated_bytes = 0;  ///< torn tail discarded
};

/// The full startup sequence over one log file: scan `path` (a missing file
/// is a fresh start, not an error), replay the valid prefix into `live`,
/// attach a writer resumed at the valid prefix (so the torn tail is
/// truncated before the first new append), and record
/// `uocqa_recovery_us` / `uocqa_wal_records_total` into `metrics` (which
/// may be null). On success the instance logs all subsequent mutations to
/// `path`.
Result<WalRecoveryInfo> RecoverAndAttachWal(const std::string& path,
                                            WalSyncPolicy policy,
                                            LiveInstance* live,
                                            MetricsRegistry* metrics);

}  // namespace uocqa

#endif  // UOCQA_SERVICE_WAL_H_
