#include "service/canonical.h"

#include <unordered_map>

#include "base/hashing.h"
#include "db/value.h"

namespace uocqa {

std::string CanonicalQueryText(const ConjunctiveQuery& query) {
  // Canonical index of each variable: first occurrence over the answer
  // tuple, then the atom terms in syntactic order. This is exactly the
  // order in which any renaming of the query introduces the same variable,
  // so renamed queries map to identical indices.
  std::unordered_map<VarId, size_t> rank;
  auto touch = [&rank](VarId v) { rank.emplace(v, rank.size()); };
  for (VarId v : query.answer_vars()) touch(v);
  for (const QueryAtom& atom : query.atoms()) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) touch(t.id);
    }
  }

  auto term_text = [&](const Term& t) {
    if (t.is_var()) return "?" + std::to_string(rank.at(t.id));
    return "'" + ValuePool::Name(t.id) + "'";
  };

  std::string out = "Ans(";
  for (size_t i = 0; i < query.answer_vars().size(); ++i) {
    if (i > 0) out += ",";
    out += "?" + std::to_string(rank.at(query.answer_vars()[i]));
  }
  out += "):-";
  for (size_t a = 0; a < query.atoms().size(); ++a) {
    const QueryAtom& atom = query.atoms()[a];
    if (a > 0) out += ",";
    out += query.schema().name(atom.relation);
    out += "(";
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      if (i > 0) out += ",";
      out += term_text(atom.terms[i]);
    }
    out += ")";
  }
  return out;
}

uint64_t ExtendFactChain(uint64_t chain, const Database& db,
                         FactId first_new) {
  std::hash<std::string> hs;
  size_t seed = static_cast<size_t>(chain);
  for (FactId id = first_new; id < db.size(); ++id) {
    const Fact& fact = db.fact(id);
    HashCombine(&seed, hs(db.schema().name(fact.relation)));
    HashCombine(&seed, fact.args.size());
    for (Value v : fact.args) HashCombine(&seed, hs(ValuePool::Name(v)));
  }
  return static_cast<uint64_t>(seed);
}

uint64_t FingerprintFromChain(uint64_t chain, const Database& db,
                              const KeySet& keys) {
  std::hash<std::string> hs;
  size_t seed = static_cast<size_t>(chain);
  HashCombine(&seed, db.size());
  for (const auto& [rel, positions] : keys.Entries()) {
    HashCombine(&seed, hs(db.schema().name(rel)));
    for (uint32_t p : positions) HashCombine(&seed, p);
  }
  return static_cast<uint64_t>(seed);
}

uint64_t InstanceFingerprint(const Database& db, const KeySet& keys) {
  return FingerprintFromChain(ExtendFactChain(0, db, 0), db, keys);
}

}  // namespace uocqa
