#include "service/wal.h"

#include <cstring>
#include <utility>

#include "base/failpoint.h"
#include "service/live.h"

namespace uocqa {

namespace {

constexpr char kMagic[8] = {'U', 'O', 'C', 'Q', 'A', 'W', 'A', 'L'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 16;   // magic(8) + version(4) + crc(4)
constexpr size_t kFrameSize = 9;     // payload_len(4) + crc(4) + type(1)
// Frame-level sanity bound; real payloads are tiny (a fact's strings or
// three u64s), this only caps what a corrupt length field can ask for.
constexpr uint32_t kMaxPayload = 1u << 30;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint64_t ReadU64(const char* p) {
  return static_cast<uint64_t>(ReadU32(p)) |
         static_cast<uint64_t>(ReadU32(p + 4)) << 32;
}

/// Cursor over a decoded payload; every Take* checks bounds.
struct Reader {
  const char* p;
  size_t left;

  bool TakeU32(uint32_t* v) {
    if (left < 4) return false;
    *v = ReadU32(p);
    p += 4;
    left -= 4;
    return true;
  }
  bool TakeU64(uint64_t* v) {
    if (left < 8) return false;
    *v = ReadU64(p);
    p += 8;
    left -= 8;
    return true;
  }
  bool TakeString(std::string* s) {
    uint32_t n = 0;
    if (!TakeU32(&n) || left < n) return false;
    s->assign(p, n);
    p += n;
    left -= n;
    return true;
  }
};

std::string EncodePayload(const WalRecord& record) {
  std::string payload;
  switch (record.type) {
    case WalRecord::Type::kAddFact:
      PutU32(&payload, static_cast<uint32_t>(record.constants.size()));
      PutString(&payload, record.relation);
      for (const std::string& c : record.constants) PutString(&payload, c);
      break;
    case WalRecord::Type::kBarrier:
      PutU64(&payload, record.epoch);
      PutU64(&payload, record.facts);
      PutU64(&payload, record.fingerprint);
      break;
  }
  return payload;
}

/// True iff `payload` parses completely (no trailing bytes) as `type`.
bool DecodePayload(WalRecord::Type type, std::string_view payload,
                   WalRecord* out) {
  Reader r{payload.data(), payload.size()};
  out->type = type;
  switch (type) {
    case WalRecord::Type::kAddFact: {
      uint32_t nconstants = 0;
      if (!r.TakeU32(&nconstants)) return false;
      if (!r.TakeString(&out->relation)) return false;
      out->constants.resize(nconstants);
      for (uint32_t i = 0; i < nconstants; ++i) {
        if (!r.TakeString(&out->constants[i])) return false;
      }
      break;
    }
    case WalRecord::Type::kBarrier:
      if (!r.TakeU64(&out->epoch)) return false;
      if (!r.TakeU64(&out->facts)) return false;
      if (!r.TakeU64(&out->fingerprint)) return false;
      break;
  }
  return r.left == 0;
}

}  // namespace

Result<WalSyncPolicy> ParseWalSyncPolicy(std::string_view text) {
  if (text == "none") return WalSyncPolicy::kNone;
  if (text == "batch") return WalSyncPolicy::kBatch;
  if (text == "every") return WalSyncPolicy::kEvery;
  return Status::InvalidArgument("unknown WAL sync policy '" +
                                 std::string(text) +
                                 "' (expected none, batch, or every)");
}

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kNone:
      return "none";
    case WalSyncPolicy::kBatch:
      return "batch";
    case WalSyncPolicy::kEvery:
      return "every";
  }
  return "unknown";
}

std::string EncodeWalHeader() {
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kVersion);
  PutU32(&header, Crc32(header));
  return header;
}

std::string EncodeWalRecord(const WalRecord& record) {
  const std::string payload = EncodePayload(record);
  std::string frame;
  frame.reserve(kFrameSize + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  // The CRC covers payload_len + type + payload: a bit flip in the length
  // field fails the check instead of silently misframing the scan.
  uint32_t crc = Crc32(frame);
  const char type = static_cast<char>(record.type);
  crc = Crc32(&type, 1, crc);
  crc = Crc32(payload, crc);
  PutU32(&frame, crc);
  frame.push_back(type);
  frame.append(payload);
  return frame;
}

Result<WalScan> ScanWal(const std::string& path) {
  std::string data;
  UOCQA_ASSIGN_OR_RETURN(data, ReadFileToString(path));
  WalScan scan;
  if (data.empty()) return scan;  // created-but-unwritten: a fresh log
  if (data.size() < kHeaderSize) {
    // Torn header write: nothing valid was ever on disk.
    scan.truncated_bytes = data.size();
    return scan;
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a uocqa WAL file");
  }
  if (ReadU32(data.data() + 12) != Crc32(data.data(), 12)) {
    return Status::InvalidArgument("'" + path + "': WAL header checksum "
                                   "mismatch");
  }
  const uint32_t version = ReadU32(data.data() + 8);
  if (version != kVersion) {
    return Status::InvalidArgument("'" + path + "': unsupported WAL version " +
                                   std::to_string(version));
  }
  size_t pos = kHeaderSize;
  // Keep records while frames check out; the first bad frame ends the valid
  // prefix (a torn tail is the expected shape of a crash, not an error).
  while (data.size() - pos >= kFrameSize) {
    const char* frame = data.data() + pos;
    const uint32_t payload_len = ReadU32(frame);
    if (payload_len > kMaxPayload ||
        data.size() - pos < kFrameSize + payload_len) {
      break;
    }
    const uint32_t stored_crc = ReadU32(frame + 4);
    uint32_t crc = Crc32(frame, 4);
    crc = Crc32(frame + 8, 1 + payload_len, crc);
    if (crc != stored_crc) break;
    const uint8_t type = static_cast<uint8_t>(frame[8]);
    if (type != static_cast<uint8_t>(WalRecord::Type::kAddFact) &&
        type != static_cast<uint8_t>(WalRecord::Type::kBarrier)) {
      break;
    }
    WalRecord record;
    if (!DecodePayload(static_cast<WalRecord::Type>(type),
                       std::string_view(frame + kFrameSize, payload_len),
                       &record)) {
      break;
    }
    scan.records.push_back(std::move(record));
    pos += kFrameSize + payload_len;
  }
  scan.valid_bytes = pos;
  scan.truncated_bytes = data.size() - pos;
  return scan;
}

Status ReplayWal(const std::vector<WalRecord>& records, LiveInstance* live) {
  size_t i = 0;
  for (const WalRecord& record : records) {
    ++i;
    switch (record.type) {
      case WalRecord::Type::kAddFact: {
        Status st = live->Add(record.relation, record.constants);
        if (!st.ok()) {
          return Status::InvalidArgument(
              "WAL replay: record " + std::to_string(i) + ": " +
              st.message());
        }
        break;
      }
      case WalRecord::Type::kBarrier: {
        auto snapshot = live->Snapshot();
        if (snapshot->epoch != record.epoch ||
            snapshot->db->size() != record.facts ||
            snapshot->fingerprint != record.fingerprint) {
          return Status::InvalidArgument(
              "WAL replay: barrier " + std::to_string(i) +
              " does not match the replayed instance (logged epoch=" +
              std::to_string(record.epoch) + " facts=" +
              std::to_string(record.facts) + ", replayed epoch=" +
              std::to_string(snapshot->epoch) + " facts=" +
              std::to_string(snapshot->db->size()) +
              "); the log was not written over this base instance");
        }
        break;
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   WalSyncPolicy policy,
                                                   uint64_t resume_at) {
  std::unique_ptr<WritableFile> file;
  UOCQA_ASSIGN_OR_RETURN(file, WritableFile::Open(path, resume_at));
  auto writer =
      std::unique_ptr<WalWriter>(new WalWriter(std::move(file), policy));
  if (resume_at == 0) {
    UOCQA_RETURN_IF_ERROR(writer->file_->Append(EncodeWalHeader()));
    if (policy != WalSyncPolicy::kNone) {
      UOCQA_RETURN_IF_ERROR(writer->file_->Sync());
    }
  }
  return writer;
}

void WalWriter::SetMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    records_total_ = nullptr;
    sync_us_ = nullptr;
    return;
  }
  records_total_ = metrics->GetCounter("uocqa_wal_records_total");
  sync_us_ = metrics->GetHistogram("uocqa_wal_sync_us");
}

Status WalWriter::Append(const WalRecord& record) {
  if (dead_) {
    return Status::Unavailable("WAL writer is dead (crashed earlier)");
  }
  static failpoint::Site drop_fp("wal.append.drop");
  static failpoint::Site partial_fp("wal.append.partial");
  if (drop_fp.Triggered()) {
    dead_ = true;
    return Status::Unavailable("WAL: injected crash before append");
  }
  const std::string frame = EncodeWalRecord(record);
  if (partial_fp.Triggered()) {
    // A torn write: half the frame reaches the file, then the "process
    // dies". Recovery must discard this tail via the frame CRC.
    (void)file_->Append(std::string_view(frame).substr(0, frame.size() / 2));
    dead_ = true;
    return Status::Unavailable("WAL: injected crash mid-append");
  }
  Status st = file_->Append(frame);
  if (!st.ok()) {
    dead_ = true;
    return st;
  }
  ++appended_records_;
  metrics::Add(records_total_);
  if (policy_ == WalSyncPolicy::kEvery) return SyncInternal();
  return Status::OK();
}

Status WalWriter::SyncInternal() {
  static failpoint::Site sync_fp("wal.sync");
  if (sync_fp.Triggered()) {
    dead_ = true;
    return Status::Unavailable("WAL: injected crash at sync");
  }
  metrics::ScopedTimer timer(sync_us_);
  Status st = file_->Sync();
  if (!st.ok()) dead_ = true;
  return st;
}

Status WalWriter::BarrierSync() {
  if (dead_) {
    return Status::Unavailable("WAL writer is dead (crashed earlier)");
  }
  if (policy_ == WalSyncPolicy::kNone) return Status::OK();
  return SyncInternal();
}

Status WalWriter::Sync() {
  if (dead_) {
    return Status::Unavailable("WAL writer is dead (crashed earlier)");
  }
  return SyncInternal();
}

Result<WalRecoveryInfo> RecoverAndAttachWal(const std::string& path,
                                            WalSyncPolicy policy,
                                            LiveInstance* live,
                                            MetricsRegistry* metrics) {
  WalRecoveryInfo info;
  uint64_t resume_at = 0;
  {
    metrics::ScopedTimer timer(
        metrics != nullptr ? metrics->GetHistogram("uocqa_recovery_us")
                           : nullptr);
    auto scan = ScanWal(path);
    if (scan.ok()) {
      info.existed = true;
      info.records = scan->records.size();
      info.truncated_bytes = scan->truncated_bytes;
      UOCQA_RETURN_IF_ERROR(ReplayWal(scan->records, live));
      resume_at = scan->valid_bytes;
    } else if (scan.status().code() != StatusCode::kNotFound) {
      return scan.status();
    }
  }
  std::unique_ptr<WalWriter> writer;
  UOCQA_ASSIGN_OR_RETURN(writer, WalWriter::Open(path, policy, resume_at));
  writer->SetMetrics(metrics);
  live->AttachWal(std::move(writer));
  return info;
}

}  // namespace uocqa
