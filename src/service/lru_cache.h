// A small LRU cache with hit/miss/eviction counters — the shared shape of
// the service layer's plan cache (compiled pipeline artifacts) and result
// cache (byte-identical response replay).
//
// Not internally synchronized: the QueryService guards each cache with its
// own mutex, so the template stays usable in single-threaded contexts
// (tests, benchmarks) without paying for locks twice.

#ifndef UOCQA_SERVICE_LRU_CACHE_H_
#define UOCQA_SERVICE_LRU_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "base/metrics.h"

namespace uocqa {

/// Fixed-capacity least-recently-used map. `capacity == 0` disables the
/// cache entirely: every Get misses and Put is a no-op, which is how the
/// service's cache-off configuration (and the cold benchmark baselines) run
/// the uncached pipeline through unchanged code paths.
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Mirrors future hit/miss/eviction events onto registry counters (any
  /// may be null). The internal size_t counters keep counting either way —
  /// they are the source of truth for hits()/misses()/evictions(); the
  /// registry copies exist so cache traffic shows up in one exposition
  /// alongside everything else.
  void BindCounters(metrics::Counter* hits, metrics::Counter* misses,
                    metrics::Counter* evictions) {
    hits_counter_ = hits;
    misses_counter_ = misses;
    evictions_counter_ = evictions;
  }

  /// Returns the cached value and refreshes its recency, or nullopt.
  std::optional<V> Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      metrics::Add(misses_counter_);
      return std::nullopt;
    }
    ++hits_;
    metrics::Add(hits_counter_);
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites `key`, making it most recent; evicts the least
  /// recently used entry when over capacity.
  void Put(const K& key, V value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
      metrics::Add(evictions_counter_);
    }
  }

  /// Get without touching the hit/miss counters (still refreshes recency).
  /// For re-checks after a concurrent fill race, where the semantic
  /// hit/miss event was already counted by an earlier Get.
  std::optional<V> Find(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Membership without touching recency or the counters.
  bool Contains(const K& key) const {
    return index_.find(key) != index_.end();
  }

  /// Visits every entry from most to least recently used without touching
  /// recency or the counters (the stats verb's per-plan report). `fn` must
  /// not mutate the cache.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& entry : order_) fn(entry.first, entry.second);
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  // Front = most recently used. The index maps keys to their list node.
  std::list<std::pair<K, V>> order_;
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
  metrics::Counter* hits_counter_ = nullptr;
  metrics::Counter* misses_counter_ = nullptr;
  metrics::Counter* evictions_counter_ = nullptr;
};

}  // namespace uocqa

#endif  // UOCQA_SERVICE_LRU_CACHE_H_
