// Conjunctive queries Ans(x̄) :- R1(ȳ1), ..., Rn(ȳn) (paper §2).

#ifndef UOCQA_QUERY_CQ_H_
#define UOCQA_QUERY_CQ_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/schema.h"
#include "db/value.h"

namespace uocqa {

/// Dense id of a query variable within a ConjunctiveQuery.
using VarId = uint32_t;

/// A term is a variable or an interned constant.
struct Term {
  enum class Kind : uint8_t { kVariable, kConstant };
  Kind kind = Kind::kVariable;
  uint32_t id = 0;  // VarId or Value depending on kind

  static Term Var(VarId v) { return Term{Kind::kVariable, v}; }
  static Term Const(Value c) { return Term{Kind::kConstant, c}; }

  bool is_var() const { return kind == Kind::kVariable; }
  bool is_const() const { return kind == Kind::kConstant; }
  bool operator==(const Term& o) const { return kind == o.kind && id == o.id; }
  bool operator!=(const Term& o) const { return !(*this == o); }
};

/// A relational atom R(t1, ..., tn) with variables and constants.
struct QueryAtom {
  RelationId relation = kInvalidRelation;
  std::vector<Term> terms;

  /// Distinct variables of the atom, in first-occurrence order.
  std::vector<VarId> Variables() const;
};

/// A conjunctive query over a schema. Owns its variable name table. The
/// schema is held by value (schemas are small) so queries are self-contained
/// value types.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  explicit ConjunctiveQuery(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  /// Interns a variable name, returning its id.
  VarId AddVariable(const std::string& name);

  /// Returns the id of a fresh variable with a generated unique name.
  VarId AddFreshVariable(const std::string& hint = "v");

  /// Id of an existing variable; nullopt if unknown.
  std::optional<VarId> FindVariable(const std::string& name) const;

  const std::string& VarName(VarId v) const { return var_names_[v]; }
  size_t variable_count() const { return var_names_.size(); }

  void AddAtom(QueryAtom atom);
  void AddAtom(RelationId rel, std::vector<Term> terms) {
    AddAtom(QueryAtom{rel, std::move(terms)});
  }

  const std::vector<QueryAtom>& atoms() const { return atoms_; }
  size_t atom_count() const { return atoms_.size(); }

  /// Sets the answer variables x̄ (each must be used in some atom — the
  /// caller is responsible; ValidateSafety checks).
  void SetAnswerVars(std::vector<VarId> vars) { answer_vars_ = std::move(vars); }
  const std::vector<VarId>& answer_vars() const { return answer_vars_; }

  bool IsBoolean() const { return answer_vars_.empty(); }

  /// Self-join-free: every relation name appears in at most one atom.
  bool IsSelfJoinFree() const;

  /// Every answer variable occurs in some atom (range restriction).
  bool IsSafe() const;

  /// Distinct variables of the whole query, in id order.
  std::vector<VarId> AllVariables() const;

  /// Existential (non-answer) variables.
  std::vector<VarId> ExistentialVariables() const;

  /// "Ans(x) :- R(x,y), S(y,'c')".
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<QueryAtom> atoms_;
  std::vector<VarId> answer_vars_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, VarId> var_index_;
  uint32_t fresh_counter_ = 0;
};

}  // namespace uocqa

#endif  // UOCQA_QUERY_CQ_H_
