#include "query/eval.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "base/hashing.h"

namespace uocqa {

std::vector<RelationId> ResolveAtomRelations(const Database& db,
                                             const ConjunctiveQuery& query) {
  std::vector<RelationId> atom_rels(query.atom_count(), kInvalidRelation);
  for (size_t i = 0; i < query.atom_count(); ++i) {
    const QueryAtom& atom = query.atoms()[i];
    const std::string& name = query.schema().name(atom.relation);
    RelationId db_rel = db.schema().Find(name);
    if (db_rel == kInvalidRelation) continue;
    assert(db.schema().arity(db_rel) == atom.terms.size());
    atom_rels[i] = db_rel;
  }
  return atom_rels;
}

std::vector<size_t> GreedyAtomOrder(const Database& db,
                                    const ConjunctiveQuery& query) {
  // Statistics-driven greedy atom order: repeatedly pick the atom with the
  // smallest estimated result size given the variables bound so far
  // (constant terms use exact posting lengths, bound variables the average
  // column selectivity), preferring atoms connected to already-placed ones.
  // Order only affects search cost, never the set of homomorphisms.
  const DatabaseIndex& index = db.index();
  std::vector<RelationId> atom_rels = ResolveAtomRelations(db, query);
  std::vector<size_t> order;
  std::vector<bool> placed(query.atom_count(), false);
  std::unordered_set<VarId> bound;
  for (VarId v : query.answer_vars()) bound.insert(v);
  while (order.size() < query.atom_count()) {
    size_t best = query.atom_count();
    bool best_connected = false;
    double best_est = 0;
    // Scanning atoms in index order with strict `est < best_est` makes the
    // tie-break deterministic: equal estimates keep the smallest atom index,
    // independent of platform or hash order.
    for (size_t i = 0; i < query.atom_count(); ++i) {
      if (placed[i]) continue;
      const QueryAtom& atom = query.atoms()[i];
      std::vector<BoundArg> consts;
      std::vector<uint32_t> bound_positions;
      for (size_t j = 0; j < atom.terms.size(); ++j) {
        const Term& t = atom.terms[j];
        if (t.is_const()) {
          consts.emplace_back(static_cast<uint32_t>(j), t.id);
        } else if (bound.count(t.id) > 0) {
          bound_positions.push_back(static_cast<uint32_t>(j));
        }
      }
      bool connected = !consts.empty() || !bound_positions.empty();
      double est = atom_rels[i] == kInvalidRelation
                       ? 0
                       : index.EstimateMatches(atom_rels[i], consts,
                                               bound_positions);
      if (best == query.atom_count() ||
          (connected && !best_connected) ||
          (connected == best_connected && est < best_est)) {
        best = i;
        best_connected = connected;
        best_est = est;
      }
    }
    placed[best] = true;
    order.push_back(best);
    for (const Term& t : query.atoms()[best].terms) {
      if (t.is_var()) bound.insert(t.id);
    }
  }
  return order;
}

QueryEvaluator::QueryEvaluator(const Database& db,
                               const ConjunctiveQuery& query)
    : QueryEvaluator(db, query, GreedyAtomOrder(db, query)) {}

QueryEvaluator::QueryEvaluator(const Database& db,
                               const ConjunctiveQuery& query,
                               std::vector<size_t> order)
    : db_(db),
      query_(query),
      atom_rels_(ResolveAtomRelations(db, query)),
      order_(std::move(order)) {
  assert(order_.size() == query.atom_count());
#ifndef NDEBUG
  std::vector<bool> seen(query.atom_count(), false);
  for (size_t i : order_) {
    assert(i < query.atom_count() && !seen[i]);
    seen[i] = true;
  }
#endif
}

bool QueryEvaluator::SeedAssignment(const std::vector<Value>& answer_tuple,
                                    Assignment* assignment) const {
  assert(answer_tuple.size() == query_.answer_vars().size());
  assignment->assign(query_.variable_count(), kUnassignedValue);
  for (size_t i = 0; i < answer_tuple.size(); ++i) {
    VarId v = query_.answer_vars()[i];
    if ((*assignment)[v] != kUnassignedValue &&
        (*assignment)[v] != answer_tuple[i]) {
      return false;
    }
    (*assignment)[v] = answer_tuple[i];
  }
  return true;
}

bool QueryEvaluator::Search(
    size_t depth, Assignment* assignment,
    std::vector<BoundArg>* bound_scratch,
    const std::function<bool(const Assignment&)>& fn) const {
  if (depth == order_.size()) return fn(*assignment);
  size_t atom_idx = order_[depth];
  const QueryAtom& atom = query_.atoms()[atom_idx];
  // Resolve bound terms (constants and already-assigned variables) through
  // the inverted index: the shortest posting list is a candidate superset,
  // so only matching facts are enumerated instead of the whole relation.
  bound_scratch->clear();
  for (size_t j = 0; j < atom.terms.size(); ++j) {
    const Term& t = atom.terms[j];
    if (t.is_const()) {
      bound_scratch->emplace_back(static_cast<uint32_t>(j), t.id);
    } else if ((*assignment)[t.id] != kUnassignedValue) {
      bound_scratch->emplace_back(static_cast<uint32_t>(j),
                                  (*assignment)[t.id]);
    }
  }
  const std::vector<FactId>& candidates =
      db_.index().Candidates(atom_rels_[atom_idx], *bound_scratch);
  for (FactId fid : candidates) {
    ++nodes_visited_;
    const Fact& fact = db_.fact(fid);
    // Try to unify atom terms with the fact, recording newly bound vars.
    std::vector<VarId> newly_bound;
    bool ok = true;
    for (size_t j = 0; j < atom.terms.size(); ++j) {
      const Term& t = atom.terms[j];
      Value c = fact.args[j];
      if (t.is_const()) {
        if (t.id != c) {
          ok = false;
          break;
        }
      } else {
        Value& slot = (*assignment)[t.id];
        if (slot == kUnassignedValue) {
          slot = c;
          newly_bound.push_back(t.id);
        } else if (slot != c) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      if (!Search(depth + 1, assignment, bound_scratch, fn)) {
        for (VarId v : newly_bound) (*assignment)[v] = kUnassignedValue;
        return false;
      }
    }
    for (VarId v : newly_bound) (*assignment)[v] = kUnassignedValue;
  }
  return true;
}

bool QueryEvaluator::Entails(const std::vector<Value>& answer_tuple) const {
  Assignment assignment;
  if (!SeedAssignment(answer_tuple, &assignment)) return false;
  bool found = false;
  std::vector<BoundArg> scratch;
  Search(0, &assignment, &scratch, [&found](const Assignment&) {
    found = true;
    return false;  // abort at first witness
  });
  return found;
}

std::optional<Assignment> QueryEvaluator::FindHomomorphism(
    const std::vector<Value>& answer_tuple) const {
  Assignment assignment;
  if (!SeedAssignment(answer_tuple, &assignment)) return std::nullopt;
  std::optional<Assignment> result;
  std::vector<BoundArg> scratch;
  Search(0, &assignment, &scratch, [&result](const Assignment& a) {
    result = a;
    return false;
  });
  return result;
}

uint64_t QueryEvaluator::CountHomomorphisms(
    const std::vector<Value>& answer_tuple) const {
  // Count *total* variable assignments; homomorphisms that leave some
  // variable untouched (a variable whose atoms are unsatisfied cannot occur
  // because every atom must be matched) do not arise: every variable occurs
  // in some atom, and Search matches all atoms. Variables appearing in no
  // atom are impossible by construction of ConjunctiveQuery::AddVariable
  // use; if present they'd be unconstrained and we treat them as an error.
  Assignment assignment;
  if (!SeedAssignment(answer_tuple, &assignment)) return 0;
  uint64_t count = 0;
  std::vector<BoundArg> scratch;
  Search(0, &assignment, &scratch, [&count](const Assignment&) {
    ++count;
    return true;
  });
  return count;
}

bool QueryEvaluator::ForEachHomomorphism(
    const std::vector<Value>& answer_tuple,
    const std::function<bool(const Assignment&)>& fn) const {
  Assignment assignment;
  if (!SeedAssignment(answer_tuple, &assignment)) return true;
  std::vector<BoundArg> scratch;
  return Search(0, &assignment, &scratch, fn);
}

std::vector<std::vector<Value>> QueryEvaluator::Answers() const {
  std::unordered_set<std::vector<Value>, VectorHash<Value>> seen;
  std::vector<std::vector<Value>> out;
  Assignment assignment(query_.variable_count(), kUnassignedValue);
  std::vector<BoundArg> scratch;
  Search(0, &assignment, &scratch, [&](const Assignment& a) {
    std::vector<Value> tuple;
    tuple.reserve(query_.answer_vars().size());
    for (VarId v : query_.answer_vars()) tuple.push_back(a[v]);
    if (seen.insert(tuple).second) out.push_back(std::move(tuple));
    return true;
  });
  return out;
}

bool Entails(const Database& db, const ConjunctiveQuery& query,
             const std::vector<Value>& answer_tuple) {
  QueryEvaluator eval(db, query);
  return eval.Entails(answer_tuple);
}

}  // namespace uocqa
