// Text parser for conjunctive queries.
//
// Grammar (whitespace-insensitive):
//   query    := "Ans(" varlist? ")" ":-" atom ("," atom)*
//   atom     := relname "(" term ("," term)* ")"
//   term     := identifier            (a variable)
//             | "'" chars "'"         (a constant)
//             | integer               (a constant)
//   relname  := identifier
//
// Relations are resolved against (and, if `extend_schema`, added to) the
// given schema, inferring arity from first use.

#ifndef UOCQA_QUERY_PARSER_H_
#define UOCQA_QUERY_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "query/cq.h"

namespace uocqa {

struct ParseOptions {
  /// If true, unknown relations are added to the query's schema with the
  /// arity seen in the query text; if false they are an error.
  bool extend_schema = true;
};

/// Parses a conjunctive query against `schema` (copied into the result).
Result<ConjunctiveQuery> ParseQuery(std::string_view text,
                                    const Schema& schema,
                                    const ParseOptions& options = {});

/// Parses with an empty initial schema (relations inferred).
Result<ConjunctiveQuery> ParseQuery(std::string_view text);

}  // namespace uocqa

#endif  // UOCQA_QUERY_PARSER_H_
