#include "query/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace uocqa {

namespace {

/// Minimal recursive-descent tokenizer/parser state.
class Parser {
 public:
  Parser(std::string_view text, const Schema& schema,
         const ParseOptions& options)
      : text_(text), query_(schema), options_(options) {}

  Result<ConjunctiveQuery> Run() {
    SkipSpace();
    UOCQA_RETURN_IF_ERROR(Expect("Ans"));
    UOCQA_RETURN_IF_ERROR(Expect("("));
    std::vector<VarId> answers;
    SkipSpace();
    if (!Peek(")")) {
      while (true) {
        std::string name;
        UOCQA_RETURN_IF_ERROR(Identifier(&name));
        answers.push_back(query_.AddVariable(name));
        SkipSpace();
        if (Peek(",")) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    UOCQA_RETURN_IF_ERROR(Expect(")"));
    UOCQA_RETURN_IF_ERROR(Expect(":-"));
    while (true) {
      UOCQA_RETURN_IF_ERROR(ParseAtom());
      SkipSpace();
      if (Peek(",")) {
        ++pos_;
        continue;
      }
      break;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing input at offset " +
                                     std::to_string(pos_));
    }
    query_.SetAnswerVars(std::move(answers));
    if (!query_.IsSafe()) {
      return Status::InvalidArgument(
          "unsafe query: an answer variable does not occur in any atom");
    }
    return std::move(query_);
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(std::string_view token) {
    SkipSpace();
    return text_.substr(pos_, token.size()) == token;
  }

  Status Expect(std::string_view token) {
    if (!Peek(token)) {
      return Status::InvalidArgument("expected '" + std::string(token) +
                                     "' at offset " + std::to_string(pos_));
    }
    pos_ += token.size();
    return Status::OK();
  }

  Status Identifier(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected identifier at offset " +
                                     std::to_string(start));
    }
    *out = std::string(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status ParseAtom() {
    std::string rel_name;
    UOCQA_RETURN_IF_ERROR(Identifier(&rel_name));
    UOCQA_RETURN_IF_ERROR(Expect("("));
    std::vector<Term> terms;
    while (true) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '\'') {
        ++pos_;
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
        if (pos_ == text_.size()) {
          return Status::InvalidArgument("unterminated constant literal");
        }
        terms.push_back(Term::Const(
            ValuePool::Intern(text_.substr(start, pos_ - start))));
        ++pos_;
      } else if (pos_ < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        terms.push_back(Term::Const(
            ValuePool::Intern(text_.substr(start, pos_ - start))));
      } else {
        std::string var;
        UOCQA_RETURN_IF_ERROR(Identifier(&var));
        terms.push_back(Term::Var(query_.AddVariable(var)));
      }
      SkipSpace();
      if (Peek(",")) {
        ++pos_;
        continue;
      }
      break;
    }
    UOCQA_RETURN_IF_ERROR(Expect(")"));
    RelationId rel = query_.schema().Find(rel_name);
    if (rel == kInvalidRelation) {
      if (!options_.extend_schema) {
        return Status::NotFound("unknown relation: " + rel_name);
      }
      UOCQA_ASSIGN_OR_RETURN(
          rel, query_.mutable_schema().AddRelation(
                   rel_name, static_cast<uint32_t>(terms.size())));
    } else if (query_.schema().arity(rel) != terms.size()) {
      return Status::InvalidArgument(
          "arity mismatch for relation " + rel_name + ": expected " +
          std::to_string(query_.schema().arity(rel)) + ", got " +
          std::to_string(terms.size()));
    }
    query_.AddAtom(rel, std::move(terms));
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  ConjunctiveQuery query_;
  ParseOptions options_;
};

}  // namespace

Result<ConjunctiveQuery> ParseQuery(std::string_view text,
                                    const Schema& schema,
                                    const ParseOptions& options) {
  Parser parser(text, schema, options);
  return parser.Run();
}

Result<ConjunctiveQuery> ParseQuery(std::string_view text) {
  return ParseQuery(text, Schema(), ParseOptions{});
}

}  // namespace uocqa
