// Homomorphism-based evaluation of conjunctive queries (paper §2).
//
// The evaluator matches query atoms against database facts by backtracking
// search. Atom order is chosen greedily from the database's cardinality
// statistics (estimated result size given the variables bound so far), and
// at every search step candidate facts come from the inverted
// (relation, position, value) index of the bound terms instead of a scan
// over the relation. Query and database may carry independently-built
// Schema objects; relations are reconciled by name.

#ifndef UOCQA_QUERY_EVAL_H_
#define UOCQA_QUERY_EVAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "db/database.h"
#include "query/cq.h"

namespace uocqa {

/// Sentinel for an unassigned variable in a (partial) homomorphism.
constexpr Value kUnassignedValue = static_cast<Value>(-1);

/// A total or partial assignment from VarId to constants.
using Assignment = std::vector<Value>;

/// Per query atom, the database relation holding its candidate facts,
/// reconciled by name (kInvalidRelation when the database lacks the
/// relation, which makes the atom unsatisfiable).
std::vector<RelationId> ResolveAtomRelations(const Database& db,
                                             const ConjunctiveQuery& query);

/// The statistics-driven greedy atom order QueryEvaluator uses by default:
/// repeatedly pick the unplaced atom with the smallest estimated result size
/// given the variables bound so far, preferring atoms connected to already
/// placed ones. Ties break on the smallest atom index, so the order is
/// deterministic across platforms and hash orders. Exposed so the planner
/// can use it as a baseline and a fallback.
std::vector<size_t> GreedyAtomOrder(const Database& db,
                                    const ConjunctiveQuery& query);

class QueryEvaluator {
 public:
  /// Resolves atom relations against the database and fixes the atom order
  /// to GreedyAtomOrder. The database must outlive the evaluator; the query
  /// is kept by reference as well.
  QueryEvaluator(const Database& db, const ConjunctiveQuery& query);

  /// Same, but evaluates atoms in the given order (a permutation of
  /// 0..atom_count-1, e.g. from the planner). Order only affects search
  /// cost, never the set of homomorphisms.
  QueryEvaluator(const Database& db, const ConjunctiveQuery& query,
                 std::vector<size_t> order);

  /// c̄ ∈ Q(D)? `answer_tuple` must have one constant per answer variable
  /// (empty for Boolean queries).
  bool Entails(const std::vector<Value>& answer_tuple) const;

  /// A witnessing homomorphism extending x̄ ↦ c̄, or nullopt.
  std::optional<Assignment> FindHomomorphism(
      const std::vector<Value>& answer_tuple) const;

  /// Number of homomorphisms h : Q -> D with h(x̄) = c̄ (total assignments
  /// of all query variables). Exponential in |Q| in the worst case; used by
  /// tests and baselines on small inputs.
  uint64_t CountHomomorphisms(const std::vector<Value>& answer_tuple) const;

  /// Invokes `fn` for every homomorphism extending x̄ ↦ c̄ until it returns
  /// false. Returns false iff enumeration was aborted.
  bool ForEachHomomorphism(const std::vector<Value>& answer_tuple,
                           const std::function<bool(const Assignment&)>& fn)
      const;

  /// Distinct answer tuples Q(D) (small-instance utility).
  std::vector<std::vector<Value>> Answers() const;

  /// The atom visit order in use.
  const std::vector<size_t>& order() const { return order_; }

  /// Candidate facts tried across all Search calls since construction — the
  /// backtracking-node count the planner's cost metric estimates. Cumulative
  /// over Entails/Count/ForEach calls; for per-call counts, difference two
  /// reads.
  uint64_t nodes_visited() const { return nodes_visited_; }

 private:
  /// Seeds a partial assignment with the answer tuple; false on clash
  /// (repeated answer variable bound to two constants).
  bool SeedAssignment(const std::vector<Value>& answer_tuple,
                      Assignment* assignment) const;

  /// Depth-first matching over atoms in order_[depth...]; calls fn on every
  /// completed assignment; returns false iff aborted by fn. `bound_scratch`
  /// is a reusable buffer for resolving bound terms (cleared at each node;
  /// safe to share across depths because the candidate list returned by the
  /// index does not reference it).
  bool Search(size_t depth, Assignment* assignment,
              std::vector<BoundArg>* bound_scratch,
              const std::function<bool(const Assignment&)>& fn) const;

  const Database& db_;
  const ConjunctiveQuery& query_;
  std::vector<RelationId> atom_rels_;  // per atom, db relation (by name)
  std::vector<size_t> order_;          // atom visit order
  mutable uint64_t nodes_visited_ = 0;
};

/// One-shot convenience: c̄ ∈ Q(D)?
bool Entails(const Database& db, const ConjunctiveQuery& query,
             const std::vector<Value>& answer_tuple = {});

}  // namespace uocqa

#endif  // UOCQA_QUERY_EVAL_H_
