// Homomorphism-based evaluation of conjunctive queries (paper §2).
//
// The evaluator matches query atoms against database facts by backtracking
// search with a greedy connectivity-based atom order and per-relation fact
// indices. Query and database may carry independently-built Schema objects;
// relations are reconciled by name.

#ifndef UOCQA_QUERY_EVAL_H_
#define UOCQA_QUERY_EVAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "db/database.h"
#include "query/cq.h"

namespace uocqa {

/// Sentinel for an unassigned variable in a (partial) homomorphism.
constexpr Value kUnassignedValue = static_cast<Value>(-1);

/// A total or partial assignment from VarId to constants.
using Assignment = std::vector<Value>;

class QueryEvaluator {
 public:
  /// Builds the per-relation indices. The database must outlive the
  /// evaluator; the query is copied by reference as well.
  QueryEvaluator(const Database& db, const ConjunctiveQuery& query);

  /// c̄ ∈ Q(D)? `answer_tuple` must have one constant per answer variable
  /// (empty for Boolean queries).
  bool Entails(const std::vector<Value>& answer_tuple) const;

  /// A witnessing homomorphism extending x̄ ↦ c̄, or nullopt.
  std::optional<Assignment> FindHomomorphism(
      const std::vector<Value>& answer_tuple) const;

  /// Number of homomorphisms h : Q -> D with h(x̄) = c̄ (total assignments
  /// of all query variables). Exponential in |Q| in the worst case; used by
  /// tests and baselines on small inputs.
  uint64_t CountHomomorphisms(const std::vector<Value>& answer_tuple) const;

  /// Invokes `fn` for every homomorphism extending x̄ ↦ c̄ until it returns
  /// false. Returns false iff enumeration was aborted.
  bool ForEachHomomorphism(const std::vector<Value>& answer_tuple,
                           const std::function<bool(const Assignment&)>& fn)
      const;

  /// Distinct answer tuples Q(D) (small-instance utility).
  std::vector<std::vector<Value>> Answers() const;

 private:
  /// Seeds a partial assignment with the answer tuple; false on clash
  /// (repeated answer variable bound to two constants).
  bool SeedAssignment(const std::vector<Value>& answer_tuple,
                      Assignment* assignment) const;

  /// Depth-first matching over atoms in order_[depth...]; calls fn on every
  /// completed assignment; returns false iff aborted by fn.
  bool Search(size_t depth, Assignment* assignment,
              const std::function<bool(const Assignment&)>& fn) const;

  const Database& db_;
  const ConjunctiveQuery& query_;
  std::vector<std::vector<FactId>> atom_candidates_;  // per atom, db facts
  std::vector<size_t> order_;                         // atom visit order
};

/// One-shot convenience: c̄ ∈ Q(D)?
bool Entails(const Database& db, const ConjunctiveQuery& query,
             const std::vector<Value>& answer_tuple = {});

}  // namespace uocqa

#endif  // UOCQA_QUERY_EVAL_H_
