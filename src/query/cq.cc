#include "query/cq.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace uocqa {

std::vector<VarId> QueryAtom::Variables() const {
  std::vector<VarId> out;
  for (const Term& t : terms) {
    if (t.is_var() &&
        std::find(out.begin(), out.end(), t.id) == out.end()) {
      out.push_back(t.id);
    }
  }
  return out;
}

VarId ConjunctiveQuery::AddVariable(const std::string& name) {
  auto it = var_index_.find(name);
  if (it != var_index_.end()) return it->second;
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.push_back(name);
  var_index_.emplace(name, id);
  return id;
}

VarId ConjunctiveQuery::AddFreshVariable(const std::string& hint) {
  while (true) {
    std::string name = "_" + hint + std::to_string(fresh_counter_++);
    if (var_index_.find(name) == var_index_.end()) return AddVariable(name);
  }
}

std::optional<VarId> ConjunctiveQuery::FindVariable(
    const std::string& name) const {
  auto it = var_index_.find(name);
  if (it == var_index_.end()) return std::nullopt;
  return it->second;
}

void ConjunctiveQuery::AddAtom(QueryAtom atom) {
  assert(atom.relation < schema_.relation_count());
  assert(atom.terms.size() == schema_.arity(atom.relation));
  atoms_.push_back(std::move(atom));
}

bool ConjunctiveQuery::IsSelfJoinFree() const {
  std::unordered_set<RelationId> seen;
  for (const QueryAtom& a : atoms_) {
    if (!seen.insert(a.relation).second) return false;
  }
  return true;
}

bool ConjunctiveQuery::IsSafe() const {
  std::unordered_set<VarId> used;
  for (const QueryAtom& a : atoms_) {
    for (const Term& t : a.terms) {
      if (t.is_var()) used.insert(t.id);
    }
  }
  for (VarId v : answer_vars_) {
    if (used.find(v) == used.end()) return false;
  }
  return true;
}

std::vector<VarId> ConjunctiveQuery::AllVariables() const {
  std::unordered_set<VarId> seen;
  std::vector<VarId> out;
  for (const QueryAtom& a : atoms_) {
    for (const Term& t : a.terms) {
      if (t.is_var() && seen.insert(t.id).second) out.push_back(t.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VarId> ConjunctiveQuery::ExistentialVariables() const {
  std::unordered_set<VarId> answers(answer_vars_.begin(), answer_vars_.end());
  std::vector<VarId> out;
  for (VarId v : AllVariables()) {
    if (answers.find(v) == answers.end()) out.push_back(v);
  }
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "Ans(";
  for (size_t i = 0; i < answer_vars_.size(); ++i) {
    if (i > 0) out += ',';
    out += var_names_[answer_vars_[i]];
  }
  out += ") :- ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema_.name(atoms_[i].relation);
    out += '(';
    for (size_t j = 0; j < atoms_[i].terms.size(); ++j) {
      if (j > 0) out += ',';
      const Term& t = atoms_[i].terms[j];
      if (t.is_var()) {
        out += var_names_[t.id];
      } else {
        out += '\'';
        out += ValuePool::Name(t.id);
        out += '\'';
      }
    }
    out += ')';
  }
  return out;
}

}  // namespace uocqa
