// Compilation of the alternating procedure Rep[k] (Algorithm 1) into an
// NFTA whose distinct accepted trees are exactly the encodings of the
// operational repairs D' ∈ ORep(D, Sigma) with c̄ ∈ Q(D') (Lemma 5.2).
//
// Tree shape (fixed for a given instance): a root labelled ε, then, for
// each decomposition vertex v in ≺T order, a path of one node per conflict
// block handled at v (v handles the blocks of the relations whose atom has
// v as its ≺T-minimal covering vertex, in the fixed block order), branching
// into two subtrees at the end of each internal vertex's path. Node labels
// are the kept fact of the block or ⊥.
//
// States are (vertex, assignment, position); the assignment component makes
// the automaton *ambiguous* — several homomorphism witnesses can accept the
// same tree — which is precisely why ♯-counting needs distinct-tree
// machinery (exact_count.h / fpras.h) rather than run counting.
//
// Setting `classical_repairs` drops the ⊥ label (line 8's "∪ {⊥}"),
// producing the ♯SRepairs variant for classical subset repairs (§5.1).

#ifndef UOCQA_OCQA_REP_BUILDER_H_
#define UOCQA_OCQA_REP_BUILDER_H_

#include <cstdint>
#include <vector>

#include "automata/nfta.h"
#include "base/status.h"
#include "db/blocks.h"
#include "db/database.h"
#include "db/keys.h"
#include "hypertree/decomposition.h"
#include "query/cq.h"

namespace uocqa {

struct RepAutomatonOptions {
  /// If true, compile the ♯SRepairs variant (classical subset repairs:
  /// every block keeps exactly one fact; no ⊥ labels).
  bool classical_repairs = false;
};

struct RepAutomaton {
  Nfta nfta;
  BlockPartition blocks;
  /// For each vertex (in decomposition indexing), the block indices handled
  /// there, in processing order.
  std::vector<std::vector<size_t>> vertex_blocks;
  /// Symbol of each fact, plus the ⊥ and ε symbols.
  std::vector<NftaSymbol> fact_symbols;
  NftaSymbol bottom_symbol = 0;
  NftaSymbol epsilon_symbol = 0;
  /// Every accepted tree has exactly this many nodes.
  size_t tree_size = 0;

  /// Decodes an accepted tree into the kept fact ids of the encoded repair
  /// (sorted). The tree must be accepted by `nfta`.
  Result<std::vector<FactId>> DecodeRepair(const LabeledTree& tree,
                                           const HypertreeDecomposition& h)
      const;
};

/// Compiles Rep[k]. Preconditions: query is self-join-free and safe,
/// (db, query, h) is in normal form, |answer_tuple| = |answer vars|.
Result<RepAutomaton> BuildRepAutomaton(
    const Database& db, const KeySet& keys, const ConjunctiveQuery& query,
    const HypertreeDecomposition& h, const std::vector<Value>& answer_tuple,
    const RepAutomatonOptions& options = {});

}  // namespace uocqa

#endif  // UOCQA_OCQA_REP_BUILDER_H_
