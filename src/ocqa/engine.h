// The OCQA engine: end-to-end solvers for OCQA_ur and OCQA_us (paper §3.1).
//
// Given (D, Sigma, Q, c̄) with Q self-join-free of bounded generalized
// hypertreewidth, the FPRAS pipeline (Theorem 3.6) is:
//   1. compute a GHD of Q (join tree if acyclic, width-k search otherwise —
//      the paper's §3.2 only needs *some* width-O(k) decomposition);
//   2. convert (D, Q, H) to normal form (Appendix E; width k+1);
//   3. compile Rep[k] / Seq[k] into an NFTA (Lemmas 5.2, 5.3);
//   4. approximate the numerator via the ♯NFTA FPRAS (Theorem 4.6 / D.1);
//   5. divide by the polynomial-time exact denominator |ORep| / |CRS| [13].
//
// The engine also exposes: exact numerators through the same automata
// (behaviour-set counting — validates the compilation against brute force),
// brute-force exact RF (repairs/counting.h), Monte-Carlo baselines over the
// exact-uniform samplers (the data-complexity regime of [13]), and the
// ♯SRepairs variant for classical subset repairs (§5.1).

#ifndef UOCQA_OCQA_ENGINE_H_
#define UOCQA_OCQA_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "automata/fpras.h"
#include "base/bigint.h"
#include "base/metrics.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "db/database.h"
#include "db/keys.h"
#include "hypertree/normal_form.h"
#include "planner/planner.h"
#include "ocqa/rep_builder.h"
#include "ocqa/seq_builder.h"
#include "query/cq.h"
#include "repairs/counting.h"

namespace uocqa {

/// Options of one engine call.
struct OcqaOptions {
  /// FPRAS tuning knobs (accuracy targets, sample budgets, seed). The
  /// engine overrides `fpras.threads` with the resolved `threads` below.
  FprasConfig fpras;
  /// Maximum decomposition width to search for cyclic queries.
  size_t max_width = 6;
  /// Cost-based planning knobs (join-order search, GHD candidate ranking).
  /// Planning is a search-effort optimization only: at any setting, results
  /// are identical and sampling estimates bit-identical at the same seed.
  PlannerOptions planner;
  /// Execution lanes for the parallel paths (FPRAS trials, Monte-Carlo
  /// sampling, block partitioning): 0 = hardware concurrency, 1 = strictly
  /// serial. Results are bit-identical at every value — parallel work is
  /// split into fixed chunks with one deterministic RNG stream each — so
  /// this knob trades wall-clock time only.
  size_t threads = 0;
};

/// Result of an approximate relative-frequency computation.
struct ApproxRF {
  double numerator = 0;   ///< estimated count
  double denominator = 0; ///< exact count (as double)
  double value = 0;       ///< numerator / denominator (0 if denominator 0)
  size_t automaton_states = 0;
  size_t automaton_transitions = 0;
  /// Union-estimation trials the FPRAS ran for this call (diagnostic; fully
  /// determined by the config and automaton, so reporting it cannot perturb
  /// the estimate).
  size_t union_trials = 0;
};

/// The reusable output of the engine's shared pipeline prefix: the GHD of
/// the query, its Appendix-E normal form, and the key set remapped onto the
/// normal-form schema — plus a memo of the Rep[k]/Seq[k] automata compiled
/// from it, keyed by answer tuple. (The exact |ORep| / |CRS| denominators
/// depend only on the instance and are memoized engine-side, shared by all
/// plans.)
///
/// Produced once per (query, width config) by OcqaEngine::Compile, a
/// CompiledQuery serves any number of subsequent calls: repeated queries —
/// including variable renamings, which compile to the same artifact — skip
/// decomposition, normal-form conversion, and NFTA compilation entirely.
/// This is the unit the service layer's plan cache stores.
///
/// Thread safety: the automaton memo is guarded by an internal mutex (held
/// across a first-touch build, so cold concurrent compiles of the same plan
/// serialize — the hot path is a memo hit), and every automaton's lazy
/// views — the symbol index and the flattened CompiledNfta that all solvers
/// run on (compiled_nfta.h) — are warmed before it is published, so one
/// CompiledQuery may serve concurrent requests that each run with
/// `threads = 1` (the service batch executor's contract). The normal-form
/// instance itself is immutable after Compile.
class CompiledQuery {
 public:
  const NormalFormInstance& nf() const { return nf_; }
  /// The key set over the normal-form schema.
  const KeySet& keys() const { return keys_; }

  /// The query plan this artifact was compiled from: the cost-ranked
  /// decomposition (whose normal form is nf()), the planned atom order for
  /// backtracking evaluation, cost estimates, and the planning wall-clock
  /// time. Cached with the CompiledQuery, so the service's explain flag and
  /// stats verb read it back without replanning.
  const QueryPlan& plan() const { return plan_; }

  /// The Rep[k] automaton for `answer_tuple`, compiled on first use and
  /// memoized. The pointer stays valid for the CompiledQuery's lifetime.
  Result<const RepAutomaton*> Rep(const std::vector<Value>& answer_tuple,
                                  bool classical_repairs = false) const;
  /// The Seq[k] automaton for `answer_tuple`, compiled on first use.
  Result<const SeqAutomaton*> Seq(const std::vector<Value>& answer_tuple)
      const;

  /// Number of automata currently memoized (diagnostics).
  size_t cached_automata() const;

 private:
  friend class OcqaEngine;
  CompiledQuery() : mu_(std::make_unique<std::mutex>()) {}

  NormalFormInstance nf_;
  KeySet keys_;  // over nf_.db's schema
  QueryPlan plan_;

  // Guards the memos below (shared by concurrent serving requests).
  std::unique_ptr<std::mutex> mu_;
  mutable std::map<std::pair<bool, std::vector<Value>>,
                   std::unique_ptr<RepAutomaton>>
      rep_;
  mutable std::map<std::vector<Value>, std::unique_ptr<SeqAutomaton>> seq_;
};

class OcqaEngine {
 public:
  OcqaEngine(const Database& db, const KeySet& keys) : db_(db), keys_(keys) {}

  // -- plan compilation (the shared pipeline prefix, reusable) --------------
  /// Runs the pipeline prefix once — decompose, normalize, remap keys — and
  /// returns the reusable artifact. Every automaton-based solver below has
  /// an overload taking a CompiledQuery that skips this prefix.
  Result<CompiledQuery> Compile(const ConjunctiveQuery& query,
                                const OcqaOptions& options = {}) const;

  // -- exact (exponential-time numerators; ground truth) --------------------
  ExactRF ExactUr(const ConjunctiveQuery& query,
                  const std::vector<Value>& answer_tuple) const;
  ExactRF ExactUs(const ConjunctiveQuery& query,
                  const std::vector<Value>& answer_tuple) const;

  // -- combined-complexity FPRAS (Theorem 3.6) ------------------------------
  Result<ApproxRF> ApproxUr(const ConjunctiveQuery& query,
                            const std::vector<Value>& answer_tuple,
                            const OcqaOptions& options = {}) const;
  Result<ApproxRF> ApproxUs(const ConjunctiveQuery& query,
                            const std::vector<Value>& answer_tuple,
                            const OcqaOptions& options = {}) const;
  /// Same, over a previously compiled plan (skips the pipeline prefix; the
  /// result is bit-identical to the query-based overload at every cache
  /// state and thread count).
  Result<ApproxRF> ApproxUr(const CompiledQuery& compiled,
                            const std::vector<Value>& answer_tuple,
                            const OcqaOptions& options = {}) const;
  Result<ApproxRF> ApproxUs(const CompiledQuery& compiled,
                            const std::vector<Value>& answer_tuple,
                            const OcqaOptions& options = {}) const;

  // -- exact numerators through the compiled automata (validation path) -----
  Result<BigInt> RepairsEntailingViaAutomaton(
      const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
      const OcqaOptions& options = {}) const;
  Result<BigInt> SequencesEntailingViaAutomaton(
      const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
      const OcqaOptions& options = {}) const;
  Result<BigInt> RepairsEntailingViaAutomaton(
      const CompiledQuery& compiled,
      const std::vector<Value>& answer_tuple) const;
  Result<BigInt> SequencesEntailingViaAutomaton(
      const CompiledQuery& compiled,
      const std::vector<Value>& answer_tuple) const;

  // -- classical subset repairs (♯SRepairs, §5.1 remark) ---------------------
  /// |{D' subset repair : c̄ ∈ Q(D')}| exactly, via the ⊥-free automaton.
  Result<BigInt> ClassicalRepairsEntailingViaAutomaton(
      const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
      const OcqaOptions& options = {}) const;
  Result<BigInt> ClassicalRepairsEntailingViaAutomaton(
      const CompiledQuery& compiled,
      const std::vector<Value>& answer_tuple) const;
  /// Number of classical subset repairs (prod of block sizes).
  BigInt CountClassicalRepairs() const;
  /// Brute-force exact count of subset repairs entailing the query.
  BigInt ClassicalRepairsEntailingBruteForce(
      const ConjunctiveQuery& query,
      const std::vector<Value>& answer_tuple) const;

  // -- repair sampling conditioned on the answer ----------------------------
  /// Draws `count` approximately-uniform samples from
  /// {D' ∈ ORep(D,Sigma) : c̄ ∈ Q(D')} via the Rep[k] automaton's tree
  /// sampler, decoded back to kept fact ids of the *original* database
  /// (sorted). Useful for "show me plausible consistent worlds supporting
  /// this answer" exploration.
  Result<std::vector<std::vector<FactId>>> SampleEntailingRepairs(
      const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
      size_t count, const OcqaOptions& options = {},
      uint64_t seed = 1) const;
  Result<std::vector<std::vector<FactId>>> SampleEntailingRepairs(
      const CompiledQuery& compiled, const std::vector<Value>& answer_tuple,
      size_t count, const OcqaOptions& options = {},
      uint64_t seed = 1) const;

  // -- Monte-Carlo baselines (data-complexity regime, [13]) -----------------
  /// Fraction of `samples` uniform operational repairs that entail the
  /// answer. Samples are drawn in fixed chunks of kMcChunk, chunk c from
  /// RNG stream c of `seed`, and evaluated across `threads` lanes
  /// (0 = hardware concurrency, 1 = serial); the estimate is bit-identical
  /// at every thread count.
  double MonteCarloUr(const ConjunctiveQuery& query,
                      const std::vector<Value>& answer_tuple, size_t samples,
                      uint64_t seed, size_t threads = 0) const;
  /// Same over uniform complete repairing sequences.
  double MonteCarloUs(const ConjunctiveQuery& query,
                      const std::vector<Value>& answer_tuple, size_t samples,
                      uint64_t seed, size_t threads = 0) const;

  const Database& db() const { return db_; }
  const KeySet& keys() const { return keys_; }

  /// Seeds the |ORep| / |CRS| denominator memo with externally computed
  /// exact values, pinned to the database's current fact count. The
  /// live-instance snapshots delta-maintain both denominators across epochs
  /// (repairs/denominators.h) and hand them to each epoch's engine here, so
  /// a fresh engine never recomputes the block partition just to divide.
  void SeedDenominators(BigInt orep, BigInt crs) const;

  /// Monte-Carlo samples per RNG stream chunk (the unit of parallel work).
  static constexpr size_t kMcChunk = 64;

  /// Points the engine's instruments at `metrics` (nullptr detaches): the
  /// denominator-compute latency histogram (`uocqa_stage_denominators_us`,
  /// recorded only when OrepCount/CrsCount actually compute — memo hits are
  /// free) and the pool counters of any ThreadPool built afterwards.
  /// Observation only: no engine result depends on the registry. Const for
  /// the same reason the memos are mutable — the service wires an engine it
  /// only holds const access to.
  void SetMetrics(MetricsRegistry* metrics) const;

 private:
  /// Exact denominators |ORep| / |CRS| over the engine's instance, shared
  /// by every compiled plan. Memoized per instance state — the database
  /// only ever accumulates facts, so the fact count identifies it — and
  /// mutex-guarded for concurrent compiled-plan calls (the service batch
  /// executor). The returned reference stays valid until the database is
  /// mutated, which the engine's callers must not do concurrently anyway.
  const BigInt& OrepCount(ThreadPool* pool) const;
  const BigInt& CrsCount(ThreadPool* pool) const;

  /// The engine's pool, (re)built for `threads` resolved lanes; nullptr for
  /// 1 lane. The engine itself is not re-entrant: callers parallelize
  /// through the options, not by sharing one engine across threads.
  ThreadPool* PoolFor(size_t threads) const;

  const Database& db_;
  const KeySet& keys_;
  mutable std::unique_ptr<ThreadPool> pool_;

  mutable MetricsRegistry* metrics_ = nullptr;
  mutable metrics::Histogram* denominators_hist_ = nullptr;

  mutable std::mutex denom_mu_;
  mutable size_t denom_facts_ = 0;  // db_.size() the memos were taken at
  mutable std::optional<BigInt> orep_count_;
  mutable std::optional<BigInt> crs_count_;
};

}  // namespace uocqa

#endif  // UOCQA_OCQA_ENGINE_H_
