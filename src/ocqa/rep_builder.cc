#include "ocqa/rep_builder.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>

#include "ocqa/assignments.h"

namespace uocqa {

namespace {

/// Blocks handled at each vertex: for every query atom whose ≺T-minimal
/// covering vertex is v, the blocks of its database relation in block order.
/// Atoms are visited in lambda order, matching Algorithm 1's loop.
std::vector<std::vector<size_t>> ComputeVertexBlocks(
    const Database& db, const ConjunctiveQuery& query,
    const HypertreeDecomposition& h, const BlockPartition& blocks) {
  std::vector<std::vector<size_t>> out(h.size());
  for (DecompVertex v = 0; v < h.size(); ++v) {
    for (size_t atom_idx : h.node(v).lambda) {
      if (h.MinimalCoveringVertex(query, atom_idx) != v) continue;
      const std::string& name =
          query.schema().name(query.atoms()[atom_idx].relation);
      RelationId dr = db.schema().Find(name);
      if (dr == kInvalidRelation) continue;
      for (size_t b : blocks.BlocksOfRelation(dr)) out[v].push_back(b);
    }
  }
  return out;
}

}  // namespace

Result<RepAutomaton> BuildRepAutomaton(
    const Database& db, const KeySet& keys, const ConjunctiveQuery& query,
    const HypertreeDecomposition& h, const std::vector<Value>& answer_tuple,
    const RepAutomatonOptions& options) {
  if (!query.IsSelfJoinFree()) {
    return Status::FailedPrecondition("query must be self-join-free");
  }
  if (!IsInNormalForm(db, query, h)) {
    return Status::FailedPrecondition("(D, Q, H) must be in normal form");
  }
  UOCQA_ASSIGN_OR_RETURN(AssignmentIndex assignments,
                         AssignmentIndex::Build(db, query, h, answer_tuple));

  RepAutomaton out;
  out.blocks = BlockPartition::Compute(db, keys);
  out.vertex_blocks = ComputeVertexBlocks(db, query, h, out.blocks);
  out.tree_size = 1 + out.blocks.block_count();

  Nfta& nfta = out.nfta;
  out.epsilon_symbol = nfta.InternSymbol("_eps");
  out.bottom_symbol = nfta.InternSymbol("_bot");
  out.fact_symbols.resize(db.size());
  for (FactId f = 0; f < db.size(); ++f) {
    out.fact_symbols[f] = nfta.InternSymbol(FactToString(db.schema(),
                                                         db.fact(f)));
  }

  // States: (vertex, assignment index, block position). Created eagerly —
  // the space is |V| * |assignments| * |positions|, polynomial for fixed k.
  std::map<std::tuple<DecompVertex, size_t, size_t>, NftaState> states;
  auto state_of = [&](DecompVertex v, size_t a, size_t pos) {
    auto key = std::make_tuple(v, a, pos);
    auto it = states.find(key);
    if (it != states.end()) return it->second;
    NftaState s = nfta.AddState();
    states.emplace(key, s);
    return s;
  };

  NftaState init = nfta.AddState();
  nfta.SetInitial(init);

  // Root transitions: ε node with one child per root assignment.
  for (size_t a = 0; a < assignments.ForVertex(h.root()).size(); ++a) {
    nfta.AddTransition(init, out.epsilon_symbol,
                       {state_of(h.root(), a, 0)});
  }

  // Allowed labels for block `b` under assignment `a` at vertex `v`:
  //   singleton {β}        -> {β}                  (line 6)
  //   assigned fact in B   -> {that fact}          (line 7)
  //   otherwise            -> B ∪ {⊥}              (line 8)
  auto allowed_labels = [&](DecompVertex v, const VertexAssignment& a,
                            size_t block_idx) {
    const Block& block = out.blocks.block(block_idx);
    std::vector<NftaSymbol> labels;
    if (block.size() == 1) {
      labels.push_back(out.fact_symbols[block.facts[0]]);
      return labels;
    }
    for (size_t i = 0; i < h.node(v).lambda.size(); ++i) {
      FactId assigned = a.atom_facts[i];
      if (assigned != kInvalidFact &&
          out.blocks.BlockOf(assigned) == block_idx) {
        labels.push_back(out.fact_symbols[assigned]);
        return labels;
      }
    }
    for (FactId f : block.facts) labels.push_back(out.fact_symbols[f]);
    if (!options.classical_repairs) labels.push_back(out.bottom_symbol);
    return labels;
  };

  for (DecompVertex v = 0; v < h.size(); ++v) {
    const auto& vas = assignments.ForVertex(v);
    const std::vector<size_t>& vblocks = out.vertex_blocks[v];
    // Normal form guarantees at least one block per vertex (strong
    // completeness + every query relation having been resolved). A vertex
    // with zero blocks can only arise when an atom's relation has no facts,
    // in which case there are no assignments either and the language is
    // empty — skip.
    if (vblocks.empty()) continue;
    const std::vector<DecompVertex>& children = h.node(v).children;
    for (size_t a = 0; a < vas.size(); ++a) {
      for (size_t pos = 0; pos < vblocks.size(); ++pos) {
        NftaState s = state_of(v, a, pos);
        std::vector<NftaSymbol> labels = allowed_labels(v, vas[a], vblocks[pos]);
        bool last = (pos + 1 == vblocks.size());
        if (!last) {
          NftaState next = state_of(v, a, pos + 1);
          for (NftaSymbol sym : labels) nfta.AddTransition(s, sym, {next});
          continue;
        }
        if (children.empty()) {
          for (NftaSymbol sym : labels) nfta.AddTransition(s, sym, {});
          continue;
        }
        assert(children.size() == 2);  // normal form: 2-uniform
        const auto& a1s = assignments.ForVertex(children[0]);
        const auto& a2s = assignments.ForVertex(children[1]);
        for (size_t a1 = 0; a1 < a1s.size(); ++a1) {
          if (!AssignmentIndex::Compatible(vas[a], a1s[a1])) continue;
          NftaState c1 = state_of(children[0], a1, 0);
          for (size_t a2 = 0; a2 < a2s.size(); ++a2) {
            if (!AssignmentIndex::Compatible(vas[a], a2s[a2])) continue;
            NftaState c2 = state_of(children[1], a2, 0);
            for (NftaSymbol sym : labels) {
              nfta.AddTransition(s, sym, {c1, c2});
            }
          }
        }
      }
    }
  }
  return out;
}

Result<std::vector<FactId>> RepAutomaton::DecodeRepair(
    const LabeledTree& tree, const HypertreeDecomposition& h) const {
  if (tree.symbol != epsilon_symbol || tree.children.size() != 1) {
    return Status::InvalidArgument("tree root is not the ε node");
  }
  std::vector<FactId> kept;
  // Map symbols back to facts.
  std::map<NftaSymbol, FactId> sym_to_fact;
  for (FactId f = 0; f < fact_symbols.size(); ++f) {
    sym_to_fact[fact_symbols[f]] = f;
  }
  Status status = Status::OK();
  std::function<void(DecompVertex, const LabeledTree&)> walk =
      [&](DecompVertex v, const LabeledTree& first) {
        const LabeledTree* node = &first;
        const std::vector<size_t>& vblocks = vertex_blocks[v];
        for (size_t pos = 0; pos < vblocks.size(); ++pos) {
          if (node->symbol != bottom_symbol) {
            auto it = sym_to_fact.find(node->symbol);
            if (it == sym_to_fact.end()) {
              status = Status::InvalidArgument("unknown label in tree");
              return;
            }
            kept.push_back(it->second);
          }
          bool last = (pos + 1 == vblocks.size());
          if (!last) {
            if (node->children.size() != 1) {
              status = Status::InvalidArgument("malformed path node");
              return;
            }
            node = &node->children[0];
          } else {
            const std::vector<DecompVertex>& children = h.node(v).children;
            if (node->children.size() != children.size()) {
              status = Status::InvalidArgument("malformed branch node");
              return;
            }
            for (size_t i = 0; i < children.size(); ++i) {
              walk(children[i], node->children[i]);
            }
          }
        }
      };
  walk(h.root(), tree.children[0]);
  UOCQA_RETURN_IF_ERROR(status);
  std::sort(kept.begin(), kept.end());
  return kept;
}

}  // namespace uocqa
