#include "ocqa/assignments.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "query/eval.h"

namespace uocqa {

Result<AssignmentIndex> AssignmentIndex::Build(
    const Database& db, const ConjunctiveQuery& query,
    const HypertreeDecomposition& h,
    const std::vector<Value>& answer_tuple) {
  if (answer_tuple.size() != query.answer_vars().size()) {
    return Status::InvalidArgument("answer tuple arity mismatch");
  }
  // Forced bindings x̄ ↦ c̄ (repeated answer variables must agree).
  std::vector<std::pair<VarId, Value>> answer_bindings;
  for (size_t i = 0; i < answer_tuple.size(); ++i) {
    VarId v = query.answer_vars()[i];
    for (const auto& [bv, bc] : answer_bindings) {
      if (bv == v && bc != answer_tuple[i]) {
        return Status::InvalidArgument(
            "answer tuple binds a repeated variable inconsistently");
      }
    }
    answer_bindings.emplace_back(v, answer_tuple[i]);
  }

  // Database-side relation per query atom (resolved by relation name);
  // candidate facts are pulled from the inverted index during enumeration.
  std::vector<RelationId> atom_rels(query.atom_count(), kInvalidRelation);
  for (size_t ai = 0; ai < query.atom_count(); ++ai) {
    const std::string& name =
        query.schema().name(query.atoms()[ai].relation);
    atom_rels[ai] = db.schema().Find(name);
  }

  AssignmentIndex out;
  out.h_ = &h;
  out.per_vertex_.resize(h.size());

  // var_values mirrors `bindings` as a VarId-indexed array so that binding
  // lookups during enumeration are O(1) instead of a scan of the list.
  std::vector<Value> var_values(query.variable_count(), kUnassignedValue);
  for (DecompVertex v = 0; v < h.size(); ++v) {
    const std::vector<size_t>& lambda = h.node(v).lambda;
    // Depth-first product over lambda atoms with incremental binding checks.
    std::vector<FactId> chosen(lambda.size(), kInvalidFact);
    std::vector<std::pair<VarId, Value>> bindings = answer_bindings;
    std::fill(var_values.begin(), var_values.end(), kUnassignedValue);
    for (const auto& [bv, bc] : bindings) var_values[bv] = bc;
    std::vector<BoundArg> bound_args;  // reused across recursion nodes
    std::function<void(size_t)> rec = [&](size_t pos) {
      if (pos == lambda.size()) {
        VertexAssignment a;
        a.atom_facts = chosen;
        // Keep only bindings of variables in this vertex's atoms, sorted
        // and deduplicated (answer bindings are implied globally and kept
        // for uniform compatibility checks).
        a.bindings = bindings;
        std::sort(a.bindings.begin(), a.bindings.end());
        a.bindings.erase(std::unique(a.bindings.begin(), a.bindings.end()),
                         a.bindings.end());
        out.per_vertex_[v].push_back(std::move(a));
        return;
      }
      const QueryAtom& atom = query.atoms()[lambda[pos]];
      // Candidates via the inverted index of terms already bound at this
      // depth (constants and variables fixed by earlier atoms); the
      // unification loop below still verifies every term. The scratch
      // buffer is safe to reuse across recursion nodes because the
      // candidate list returned by the index does not reference it.
      bound_args.clear();
      for (size_t t = 0; t < atom.terms.size(); ++t) {
        const Term& term = atom.terms[t];
        if (term.is_const()) {
          bound_args.emplace_back(static_cast<uint32_t>(t), term.id);
        } else if (var_values[term.id] != kUnassignedValue) {
          bound_args.emplace_back(static_cast<uint32_t>(t),
                                  var_values[term.id]);
        }
      }
      const std::vector<FactId>& candidates =
          db.index().Candidates(atom_rels[lambda[pos]], bound_args);
      for (FactId fid : candidates) {
        const Fact& fact = db.fact(fid);
        size_t added = 0;
        bool ok = true;
        for (size_t t = 0; t < atom.terms.size() && ok; ++t) {
          const Term& term = atom.terms[t];
          Value c = fact.args[t];
          if (term.is_const()) {
            ok = (term.id == c);
            continue;
          }
          // Variable: check against the existing binding, if any.
          Value existing = var_values[term.id];
          if (existing != kUnassignedValue) {
            ok = (existing == c);
          } else {
            bindings.emplace_back(term.id, c);
            var_values[term.id] = c;
            ++added;
          }
        }
        if (ok) {
          chosen[pos] = fid;
          rec(pos + 1);
        }
        for (size_t i = bindings.size() - added; i < bindings.size(); ++i) {
          var_values[bindings[i].first] = kUnassignedValue;
        }
        bindings.resize(bindings.size() - added);
      }
    };
    rec(0);
  }
  return out;
}

bool AssignmentIndex::Compatible(const VertexAssignment& a,
                                 const VertexAssignment& b) {
  // Merge-join over sorted bindings.
  size_t i = 0, j = 0;
  while (i < a.bindings.size() && j < b.bindings.size()) {
    if (a.bindings[i].first < b.bindings[j].first) {
      ++i;
    } else if (a.bindings[i].first > b.bindings[j].first) {
      ++j;
    } else {
      if (a.bindings[i].second != b.bindings[j].second) return false;
      ++i;
      ++j;
    }
  }
  return true;
}

FactId AssignmentIndex::AssignedFact(DecompVertex v,
                                     const VertexAssignment& a,
                                     size_t atom_idx) const {
  const std::vector<size_t>& lambda = h_->node(v).lambda;
  for (size_t i = 0; i < lambda.size(); ++i) {
    if (lambda[i] == atom_idx) return a.atom_facts[i];
  }
  return kInvalidFact;
}

size_t AssignmentIndex::TotalAssignments() const {
  size_t n = 0;
  for (const auto& v : per_vertex_) n += v.size();
  return n;
}

}  // namespace uocqa
