// Compilation of the alternating procedure Seq[k] (Algorithm 2) into an
// NFTA whose distinct accepted trees are in bijection with the complete
// repairing sequences s ∈ CRS(D, Sigma) with c̄ ∈ Q(s(D)) (Lemma 5.3).
//
// A tree spells, per conflict block in the fixed global block order (≺T
// vertex order, then atom order, then block order):
//   * a path of removal-template nodes labelled (-g, p): the shape of each
//     operation (-1 removes one fact, -2 a violating pair) plus the
//     identifier p ∈ [#opsFor(n, g)] of the concrete operation among those
//     applicable to the n facts still to delete (line 14-16);
//   * an amplifier path labelled (α, bit): the binary encoding of
//     p ∈ [C(b, b')], where b' and b are the numbers of operations applied
//     before/after this block — the number of ways the block's operations
//     interleave with everything earlier (lines 18-19). We use a canonical
//     fixed-width encoding (width = bitlength of C(b,b')), verified by a
//     binary comparison gadget in the state.
// At the end of a vertex's blocks the tree branches into the two children,
// nondeterministically splitting the remaining operation budget N (lines
// 20-26); leaves accept iff N = 0 (line 27).
//
// States carry (vertex, assignment, block position, outcome choice, facts
// left to delete, ops-before-block, ops-so-far, remaining budget N, bit
// cursor + comparison flags) — all polynomially bounded, mirroring the
// logspace counters of the well-behaved ATO M_S^k.

#ifndef UOCQA_OCQA_SEQ_BUILDER_H_
#define UOCQA_OCQA_SEQ_BUILDER_H_

#include <cstdint>
#include <vector>

#include "automata/nfta.h"
#include "base/status.h"
#include "db/blocks.h"
#include "db/database.h"
#include "db/keys.h"
#include "hypertree/decomposition.h"
#include "query/cq.h"

namespace uocqa {

struct SeqAutomaton {
  Nfta nfta;
  BlockPartition blocks;
  std::vector<std::vector<size_t>> vertex_blocks;
  /// Safe upper bound on the size of any accepted tree (for CountUpTo /
  /// EstimateUpTo).
  size_t max_tree_size = 0;
  /// Maximum total number of operations of any complete sequence.
  size_t max_operations = 0;
};

/// Compiles Seq[k]. Preconditions as for BuildRepAutomaton.
Result<SeqAutomaton> BuildSeqAutomaton(const Database& db, const KeySet& keys,
                                       const ConjunctiveQuery& query,
                                       const HypertreeDecomposition& h,
                                       const std::vector<Value>& answer_tuple);

}  // namespace uocqa

#endif  // UOCQA_OCQA_SEQ_BUILDER_H_
