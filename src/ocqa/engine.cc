#include "ocqa/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>

#include "automata/exact_count.h"
#include "db/blocks.h"
#include "planner/cost.h"
#include "planner/join_order.h"
#include "query/eval.h"
#include "repairs/sampling.h"

namespace uocqa {

namespace {

/// 0 = hardware concurrency, anything else verbatim.
size_t ResolveThreads(size_t threads) {
  return threads == 0 ? HardwareThreads() : threads;
}

/// Plans an atom order once against the full database for the exact and
/// Monte-Carlo paths, which evaluate the query over many repair subsets:
/// an order planned on the full statistics stays a valid permutation for
/// every subset, and entailment is order-independent, so counts and
/// estimates are unchanged — only search effort is.
std::vector<size_t> PlanOrderForTrials(const Database& db,
                                       const ConjunctiveQuery& query) {
  CostModel model(db, query);
  return PlanJoinOrder(db, query, model).order;
}

}  // namespace

ThreadPool* OcqaEngine::PoolFor(size_t threads) const {
  threads = ResolveThreads(threads);
  if (threads == 1) return nullptr;
  if (!pool_ || pool_->thread_count() != threads) {
    pool_ = std::make_unique<ThreadPool>(threads, metrics_);
  }
  return pool_.get();
}

void OcqaEngine::SetMetrics(MetricsRegistry* metrics) const {
  metrics_ = metrics;
  denominators_hist_ =
      metrics == nullptr
          ? nullptr
          : metrics->GetHistogram("uocqa_stage_denominators_us");
  // An already-built pool keeps its old handles; drop it so the next
  // PoolFor rebuild binds the new registry.
  pool_.reset();
}

Result<const RepAutomaton*> CompiledQuery::Rep(
    const std::vector<Value>& answer_tuple, bool classical_repairs) const {
  std::lock_guard<std::mutex> lock(*mu_);
  auto key = std::make_pair(classical_repairs, answer_tuple);
  auto it = rep_.find(key);
  if (it == rep_.end()) {
    RepAutomatonOptions options;
    options.classical_repairs = classical_repairs;
    UOCQA_ASSIGN_OR_RETURN(
        RepAutomaton rep,
        BuildRepAutomaton(nf_.db, keys_, nf_.query, nf_.decomposition,
                          answer_tuple, options));
    // Warm the lazy views (symbol index + CSR/bitset compiled form) before
    // publishing: concurrent serving requests may only ever *read* the
    // memoized automaton, and every solver below runs on the compiled view.
    rep.nfta.EnsureCompiled();
    it = rep_.emplace(std::move(key),
                      std::make_unique<RepAutomaton>(std::move(rep)))
             .first;
  }
  return static_cast<const RepAutomaton*>(it->second.get());
}

Result<const SeqAutomaton*> CompiledQuery::Seq(
    const std::vector<Value>& answer_tuple) const {
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = seq_.find(answer_tuple);
  if (it == seq_.end()) {
    UOCQA_ASSIGN_OR_RETURN(
        SeqAutomaton seq,
        BuildSeqAutomaton(nf_.db, keys_, nf_.query, nf_.decomposition,
                          answer_tuple));
    seq.nfta.EnsureCompiled();
    it = seq_.emplace(answer_tuple,
                      std::make_unique<SeqAutomaton>(std::move(seq)))
             .first;
  }
  return static_cast<const SeqAutomaton*>(it->second.get());
}

size_t CompiledQuery::cached_automata() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return rep_.size() + seq_.size();
}

Result<CompiledQuery> OcqaEngine::Compile(const ConjunctiveQuery& query,
                                          const OcqaOptions& options) const {
  if (!query.IsSelfJoinFree()) {
    return Status::InvalidArgument(
        "combined-complexity pipeline requires a self-join-free query");
  }
  if (!query.IsSafe()) return Status::InvalidArgument("unsafe query");
  // Cost-based planning replaces the legacy "first decomposition found":
  // the planner ranks candidate GHDs by estimated bag cost (ties keep the
  // legacy choice) and fixes the backtracking atom order. Planning runs
  // once here so the service plan cache amortizes it across requests.
  auto planning_start = std::chrono::steady_clock::now();
  UOCQA_ASSIGN_OR_RETURN(
      QueryPlan plan,
      PlanQuery(db_, query, options.max_width, options.planner));
  plan.planning_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - planning_start)
          .count();
  CompiledQuery out;
  UOCQA_ASSIGN_OR_RETURN(out.nf_, ToNormalForm(db_, query, plan.decomposition));
  out.plan_ = std::move(plan);
  // Remap the key set onto the normal-form schema by relation name. Fresh
  // pad relations stay keyless (their facts are singleton blocks).
  for (const auto& [rel, positions] : keys_.Entries()) {
    RelationId nr = out.nf_.db.schema().Find(db_.schema().name(rel));
    if (nr == kInvalidRelation) continue;  // relation had no facts
    UOCQA_RETURN_IF_ERROR(out.keys_.SetKey(nr, positions));
  }
  return out;
}

void OcqaEngine::SeedDenominators(BigInt orep, BigInt crs) const {
  std::lock_guard<std::mutex> lock(denom_mu_);
  denom_facts_ = db_.size();
  orep_count_ = std::move(orep);
  crs_count_ = std::move(crs);
}

const BigInt& OcqaEngine::OrepCount(ThreadPool* pool) const {
  std::lock_guard<std::mutex> lock(denom_mu_);
  if (denom_facts_ != db_.size()) {
    orep_count_.reset();
    crs_count_.reset();
    denom_facts_ = db_.size();
  }
  if (!orep_count_.has_value()) {
    metrics::ScopedTimer timer(denominators_hist_);
    orep_count_ =
        CountOperationalRepairs(BlockPartition::Compute(db_, keys_, pool));
  }
  return *orep_count_;
}

const BigInt& OcqaEngine::CrsCount(ThreadPool* pool) const {
  std::lock_guard<std::mutex> lock(denom_mu_);
  if (denom_facts_ != db_.size()) {
    orep_count_.reset();
    crs_count_.reset();
    denom_facts_ = db_.size();
  }
  if (!crs_count_.has_value()) {
    metrics::ScopedTimer timer(denominators_hist_);
    crs_count_ =
        CountCompleteSequencesExact(BlockPartition::Compute(db_, keys_, pool));
  }
  return *crs_count_;
}

ExactRF OcqaEngine::ExactUr(const ConjunctiveQuery& query,
                            const std::vector<Value>& answer_tuple) const {
  std::vector<size_t> order = PlanOrderForTrials(db_, query);
  return ExactRepairFrequency(db_, keys_, query, answer_tuple, &order);
}

ExactRF OcqaEngine::ExactUs(const ConjunctiveQuery& query,
                            const std::vector<Value>& answer_tuple) const {
  std::vector<size_t> order = PlanOrderForTrials(db_, query);
  return ExactSequenceFrequency(db_, keys_, query, answer_tuple, &order);
}

Result<ApproxRF> OcqaEngine::ApproxUr(const ConjunctiveQuery& query,
                                      const std::vector<Value>& answer_tuple,
                                      const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(query, options));
  return ApproxUr(compiled, answer_tuple, options);
}

Result<ApproxRF> OcqaEngine::ApproxUs(const ConjunctiveQuery& query,
                                      const std::vector<Value>& answer_tuple,
                                      const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(query, options));
  return ApproxUs(compiled, answer_tuple, options);
}

Result<ApproxRF> OcqaEngine::ApproxUr(const CompiledQuery& compiled,
                                      const std::vector<Value>& answer_tuple,
                                      const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(const RepAutomaton* rep, compiled.Rep(answer_tuple));
  ThreadPool* pool = PoolFor(options.threads);
  FprasConfig fpras_config = options.fpras;
  fpras_config.threads = ResolveThreads(options.threads);
  NftaFpras fpras(rep->nfta, fpras_config, pool);
  ApproxRF out;
  out.numerator = fpras.EstimateExactSize(rep->tree_size);
  out.denominator = OrepCount(pool).ToDouble();
  out.value = out.denominator > 0 ? out.numerator / out.denominator : 0.0;
  out.automaton_states = rep->nfta.state_count();
  out.automaton_transitions = rep->nfta.transition_count();
  out.union_trials = fpras.union_estimations();
  return out;
}

Result<ApproxRF> OcqaEngine::ApproxUs(const CompiledQuery& compiled,
                                      const std::vector<Value>& answer_tuple,
                                      const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(const SeqAutomaton* seq, compiled.Seq(answer_tuple));
  ThreadPool* pool = PoolFor(options.threads);
  FprasConfig fpras_config = options.fpras;
  fpras_config.threads = ResolveThreads(options.threads);
  NftaFpras fpras(seq->nfta, fpras_config, pool);
  ApproxRF out;
  out.numerator = fpras.EstimateUpTo(seq->max_tree_size);
  out.denominator = CrsCount(pool).ToDouble();
  out.value = out.denominator > 0 ? out.numerator / out.denominator : 0.0;
  out.automaton_states = seq->nfta.state_count();
  out.automaton_transitions = seq->nfta.transition_count();
  out.union_trials = fpras.union_estimations();
  return out;
}

Result<BigInt> OcqaEngine::RepairsEntailingViaAutomaton(
    const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
    const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(query, options));
  return RepairsEntailingViaAutomaton(compiled, answer_tuple);
}

Result<BigInt> OcqaEngine::SequencesEntailingViaAutomaton(
    const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
    const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(query, options));
  return SequencesEntailingViaAutomaton(compiled, answer_tuple);
}

Result<BigInt> OcqaEngine::RepairsEntailingViaAutomaton(
    const CompiledQuery& compiled,
    const std::vector<Value>& answer_tuple) const {
  UOCQA_ASSIGN_OR_RETURN(const RepAutomaton* rep, compiled.Rep(answer_tuple));
  ExactTreeCounter counter(rep->nfta);
  return counter.CountExactSize(rep->tree_size);
}

Result<BigInt> OcqaEngine::SequencesEntailingViaAutomaton(
    const CompiledQuery& compiled,
    const std::vector<Value>& answer_tuple) const {
  UOCQA_ASSIGN_OR_RETURN(const SeqAutomaton* seq, compiled.Seq(answer_tuple));
  ExactTreeCounter counter(seq->nfta);
  return counter.CountUpTo(seq->max_tree_size);
}

Result<BigInt> OcqaEngine::ClassicalRepairsEntailingViaAutomaton(
    const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
    const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(query, options));
  return ClassicalRepairsEntailingViaAutomaton(compiled, answer_tuple);
}

Result<BigInt> OcqaEngine::ClassicalRepairsEntailingViaAutomaton(
    const CompiledQuery& compiled,
    const std::vector<Value>& answer_tuple) const {
  UOCQA_ASSIGN_OR_RETURN(const RepAutomaton* rep,
                         compiled.Rep(answer_tuple, /*classical_repairs=*/true));
  ExactTreeCounter counter(rep->nfta);
  return counter.CountExactSize(rep->tree_size);
}

BigInt OcqaEngine::CountClassicalRepairs() const {
  BlockPartition blocks = BlockPartition::Compute(db_, keys_);
  BigInt out(1);
  for (const Block& b : blocks.blocks()) {
    out *= static_cast<uint64_t>(b.size());
  }
  return out;
}

BigInt OcqaEngine::ClassicalRepairsEntailingBruteForce(
    const ConjunctiveQuery& query,
    const std::vector<Value>& answer_tuple) const {
  BlockPartition blocks = BlockPartition::Compute(db_, keys_);
  std::vector<size_t> order = PlanOrderForTrials(db_, query);
  BigInt count;
  ForEachRepair(blocks, [&](const std::vector<BlockOutcome>& outcomes,
                            const std::vector<FactId>& kept) {
    for (const BlockOutcome& o : outcomes) {
      if (!o.has_value()) return true;  // not a classical subset repair
    }
    Database repair = db_.Subset(kept);
    QueryEvaluator eval(repair, query, order);
    if (eval.Entails(answer_tuple)) count += uint64_t{1};
    return true;
  });
  return count;
}

Result<std::vector<std::vector<FactId>>> OcqaEngine::SampleEntailingRepairs(
    const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
    size_t count, const OcqaOptions& options, uint64_t seed) const {
  UOCQA_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(query, options));
  return SampleEntailingRepairs(compiled, answer_tuple, count, options, seed);
}

Result<std::vector<std::vector<FactId>>> OcqaEngine::SampleEntailingRepairs(
    const CompiledQuery& compiled, const std::vector<Value>& answer_tuple,
    size_t count, const OcqaOptions& options, uint64_t seed) const {
  UOCQA_ASSIGN_OR_RETURN(const RepAutomaton* rep, compiled.Rep(answer_tuple));
  const NormalFormInstance& nf = compiled.nf();
  NftaFpras fpras(rep->nfta, options.fpras);
  Rng rng(seed);
  std::vector<std::vector<FactId>> out;
  for (size_t i = 0; i < count; ++i) {
    std::optional<LabeledTree> tree =
        fpras.Sample(rng, rep->nfta.initial(), rep->tree_size);
    if (!tree.has_value()) {
      if (out.empty()) {
        return Status::NotFound("no operational repair entails the answer");
      }
      break;
    }
    UOCQA_ASSIGN_OR_RETURN(std::vector<FactId> kept,
                           rep->DecodeRepair(*tree, nf.decomposition));
    // Map normal-form facts back to original fact ids; pad facts (fresh
    // relations, or the P_i pad tuple absent from the original database)
    // are dropped.
    std::vector<FactId> original;
    for (FactId f : kept) {
      const Fact& fact = nf.db.fact(f);
      RelationId orig_rel =
          db_.schema().Find(nf.db.schema().name(fact.relation));
      if (orig_rel == kInvalidRelation) continue;
      FactId orig = db_.Find(Fact(orig_rel, fact.args));
      if (orig != kInvalidFact) original.push_back(orig);
    }
    std::sort(original.begin(), original.end());
    out.push_back(std::move(original));
  }
  return out;
}

namespace {

/// Shared shape of both Monte-Carlo baselines: `samples` independent trials
/// in fixed chunks of OcqaEngine::kMcChunk, chunk c driven by RNG stream c
/// of `seed`, hit counts merged per chunk. The chunk layout never depends
/// on the pool, so the estimate is bit-identical at every thread count.
template <typename Trial>
double MonteCarloEstimate(size_t samples, uint64_t seed, ThreadPool* pool,
                          const Trial& trial) {
  if (samples == 0) return 0.0;
  size_t chunks = (samples + OcqaEngine::kMcChunk - 1) / OcqaEngine::kMcChunk;
  std::vector<size_t> hits(chunks, 0);
  auto run_chunk = [&](size_t c) {
    Rng rng = Rng::Stream(seed, c);
    size_t begin = c * OcqaEngine::kMcChunk;
    size_t end = std::min(samples, begin + OcqaEngine::kMcChunk);
    size_t h = 0;
    for (size_t i = begin; i < end; ++i) {
      if (trial(rng)) ++h;
    }
    hits[c] = h;
  };
  ParallelForOn(pool, chunks, run_chunk, /*grain=*/1);
  size_t total = 0;
  for (size_t h : hits) total += h;
  return static_cast<double>(total) / static_cast<double>(samples);
}

}  // namespace

double OcqaEngine::MonteCarloUr(const ConjunctiveQuery& query,
                                const std::vector<Value>& answer_tuple,
                                size_t samples, uint64_t seed,
                                size_t threads) const {
  UniformRepairSampler sampler(db_, keys_);
  // Plan once, before any sampling draw: the order never changes a trial's
  // entailment outcome and the sampler RNG is untouched, so the estimate
  // stays bit-identical to the greedy-order implementation.
  std::vector<size_t> order = PlanOrderForTrials(db_, query);
  return MonteCarloEstimate(
      samples, seed, PoolFor(threads), [&](Rng& rng) {
        Database repair = db_.Subset(sampler.Sample(rng));
        QueryEvaluator eval(repair, query, order);
        return eval.Entails(answer_tuple);
      });
}

double OcqaEngine::MonteCarloUs(const ConjunctiveQuery& query,
                                const std::vector<Value>& answer_tuple,
                                size_t samples, uint64_t seed,
                                size_t threads) const {
  UniformSequenceSampler sampler(db_, keys_);
  std::vector<size_t> order = PlanOrderForTrials(db_, query);
  return MonteCarloEstimate(
      samples, seed, PoolFor(threads), [&](Rng& rng) {
        RepairingSequence seq = sampler.Sample(rng);
        Database result = db_.Subset(ApplySequence(db_, seq));
        QueryEvaluator eval(result, query, order);
        return eval.Entails(answer_tuple);
      });
}

}  // namespace uocqa
