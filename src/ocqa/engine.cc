#include "ocqa/engine.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "automata/exact_count.h"
#include "db/blocks.h"
#include "hypertree/ghd_search.h"
#include "hypertree/normal_form.h"
#include "ocqa/rep_builder.h"
#include "ocqa/seq_builder.h"
#include "query/eval.h"
#include "repairs/sampling.h"

namespace uocqa {

namespace {

/// 0 = hardware concurrency, anything else verbatim.
size_t ResolveThreads(size_t threads) {
  return threads == 0 ? HardwareThreads() : threads;
}

}  // namespace

struct OcqaEngine::Prepared {
  NormalFormInstance nf;
  KeySet keys;  // over nf.db's schema
};

ThreadPool* OcqaEngine::PoolFor(size_t threads) const {
  threads = ResolveThreads(threads);
  if (threads == 1) return nullptr;
  if (!pool_ || pool_->thread_count() != threads) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return pool_.get();
}

Result<OcqaEngine::Prepared> OcqaEngine::Prepare(
    const ConjunctiveQuery& query, const OcqaOptions& options) const {
  if (!query.IsSelfJoinFree()) {
    return Status::InvalidArgument(
        "combined-complexity pipeline requires a self-join-free query");
  }
  if (!query.IsSafe()) return Status::InvalidArgument("unsafe query");
  UOCQA_ASSIGN_OR_RETURN(HypertreeDecomposition h,
                         DecomposeQuery(query, options.max_width));
  Prepared out;
  UOCQA_ASSIGN_OR_RETURN(out.nf, ToNormalForm(db_, query, h));
  // Remap the key set onto the normal-form schema by relation name. Fresh
  // pad relations stay keyless (their facts are singleton blocks).
  for (const auto& [rel, positions] : keys_.Entries()) {
    RelationId nr = out.nf.db.schema().Find(db_.schema().name(rel));
    if (nr == kInvalidRelation) continue;  // relation had no facts
    UOCQA_RETURN_IF_ERROR(out.keys.SetKey(nr, positions));
  }
  return out;
}

ExactRF OcqaEngine::ExactUr(const ConjunctiveQuery& query,
                            const std::vector<Value>& answer_tuple) const {
  return ExactRepairFrequency(db_, keys_, query, answer_tuple);
}

ExactRF OcqaEngine::ExactUs(const ConjunctiveQuery& query,
                            const std::vector<Value>& answer_tuple) const {
  return ExactSequenceFrequency(db_, keys_, query, answer_tuple);
}

Result<ApproxRF> OcqaEngine::ApproxUr(const ConjunctiveQuery& query,
                                      const std::vector<Value>& answer_tuple,
                                      const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(Prepared prep, Prepare(query, options));
  UOCQA_ASSIGN_OR_RETURN(
      RepAutomaton rep,
      BuildRepAutomaton(prep.nf.db, prep.keys, prep.nf.query,
                        prep.nf.decomposition, answer_tuple));
  ThreadPool* pool = PoolFor(options.threads);
  FprasConfig fpras_config = options.fpras;
  fpras_config.threads = ResolveThreads(options.threads);
  NftaFpras fpras(rep.nfta, fpras_config, pool);
  ApproxRF out;
  out.numerator = fpras.EstimateExactSize(rep.tree_size);
  out.denominator =
      CountOperationalRepairs(BlockPartition::Compute(db_, keys_, pool))
          .ToDouble();
  out.value = out.denominator > 0 ? out.numerator / out.denominator : 0.0;
  out.automaton_states = rep.nfta.state_count();
  out.automaton_transitions = rep.nfta.transition_count();
  return out;
}

Result<ApproxRF> OcqaEngine::ApproxUs(const ConjunctiveQuery& query,
                                      const std::vector<Value>& answer_tuple,
                                      const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(Prepared prep, Prepare(query, options));
  UOCQA_ASSIGN_OR_RETURN(
      SeqAutomaton seq,
      BuildSeqAutomaton(prep.nf.db, prep.keys, prep.nf.query,
                        prep.nf.decomposition, answer_tuple));
  ThreadPool* pool = PoolFor(options.threads);
  FprasConfig fpras_config = options.fpras;
  fpras_config.threads = ResolveThreads(options.threads);
  NftaFpras fpras(seq.nfta, fpras_config, pool);
  ApproxRF out;
  out.numerator = fpras.EstimateUpTo(seq.max_tree_size);
  out.denominator =
      CountCompleteSequencesExact(BlockPartition::Compute(db_, keys_, pool))
          .ToDouble();
  out.value = out.denominator > 0 ? out.numerator / out.denominator : 0.0;
  out.automaton_states = seq.nfta.state_count();
  out.automaton_transitions = seq.nfta.transition_count();
  return out;
}

Result<BigInt> OcqaEngine::RepairsEntailingViaAutomaton(
    const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
    const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(Prepared prep, Prepare(query, options));
  UOCQA_ASSIGN_OR_RETURN(
      RepAutomaton rep,
      BuildRepAutomaton(prep.nf.db, prep.keys, prep.nf.query,
                        prep.nf.decomposition, answer_tuple));
  ExactTreeCounter counter(rep.nfta);
  return counter.CountExactSize(rep.tree_size);
}

Result<BigInt> OcqaEngine::SequencesEntailingViaAutomaton(
    const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
    const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(Prepared prep, Prepare(query, options));
  UOCQA_ASSIGN_OR_RETURN(
      SeqAutomaton seq,
      BuildSeqAutomaton(prep.nf.db, prep.keys, prep.nf.query,
                        prep.nf.decomposition, answer_tuple));
  ExactTreeCounter counter(seq.nfta);
  return counter.CountUpTo(seq.max_tree_size);
}

Result<BigInt> OcqaEngine::ClassicalRepairsEntailingViaAutomaton(
    const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
    const OcqaOptions& options) const {
  UOCQA_ASSIGN_OR_RETURN(Prepared prep, Prepare(query, options));
  RepAutomatonOptions rep_options;
  rep_options.classical_repairs = true;
  UOCQA_ASSIGN_OR_RETURN(
      RepAutomaton rep,
      BuildRepAutomaton(prep.nf.db, prep.keys, prep.nf.query,
                        prep.nf.decomposition, answer_tuple, rep_options));
  ExactTreeCounter counter(rep.nfta);
  return counter.CountExactSize(rep.tree_size);
}

BigInt OcqaEngine::CountClassicalRepairs() const {
  BlockPartition blocks = BlockPartition::Compute(db_, keys_);
  BigInt out(1);
  for (const Block& b : blocks.blocks()) {
    out *= static_cast<uint64_t>(b.size());
  }
  return out;
}

BigInt OcqaEngine::ClassicalRepairsEntailingBruteForce(
    const ConjunctiveQuery& query,
    const std::vector<Value>& answer_tuple) const {
  BlockPartition blocks = BlockPartition::Compute(db_, keys_);
  BigInt count;
  ForEachRepair(blocks, [&](const std::vector<BlockOutcome>& outcomes,
                            const std::vector<FactId>& kept) {
    for (const BlockOutcome& o : outcomes) {
      if (!o.has_value()) return true;  // not a classical subset repair
    }
    Database repair = db_.Subset(kept);
    QueryEvaluator eval(repair, query);
    if (eval.Entails(answer_tuple)) count += uint64_t{1};
    return true;
  });
  return count;
}

Result<std::vector<std::vector<FactId>>> OcqaEngine::SampleEntailingRepairs(
    const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
    size_t count, const OcqaOptions& options, uint64_t seed) const {
  UOCQA_ASSIGN_OR_RETURN(Prepared prep, Prepare(query, options));
  UOCQA_ASSIGN_OR_RETURN(
      RepAutomaton rep,
      BuildRepAutomaton(prep.nf.db, prep.keys, prep.nf.query,
                        prep.nf.decomposition, answer_tuple));
  NftaFpras fpras(rep.nfta, options.fpras);
  Rng rng(seed);
  std::vector<std::vector<FactId>> out;
  for (size_t i = 0; i < count; ++i) {
    std::optional<LabeledTree> tree =
        fpras.Sample(rng, rep.nfta.initial(), rep.tree_size);
    if (!tree.has_value()) {
      if (out.empty()) {
        return Status::NotFound("no operational repair entails the answer");
      }
      break;
    }
    UOCQA_ASSIGN_OR_RETURN(std::vector<FactId> kept,
                           rep.DecodeRepair(*tree, prep.nf.decomposition));
    // Map normal-form facts back to original fact ids; pad facts (fresh
    // relations, or the P_i pad tuple absent from the original database)
    // are dropped.
    std::vector<FactId> original;
    for (FactId f : kept) {
      const Fact& fact = prep.nf.db.fact(f);
      RelationId orig_rel =
          db_.schema().Find(prep.nf.db.schema().name(fact.relation));
      if (orig_rel == kInvalidRelation) continue;
      FactId orig = db_.Find(Fact(orig_rel, fact.args));
      if (orig != kInvalidFact) original.push_back(orig);
    }
    std::sort(original.begin(), original.end());
    out.push_back(std::move(original));
  }
  return out;
}

namespace {

/// Shared shape of both Monte-Carlo baselines: `samples` independent trials
/// in fixed chunks of OcqaEngine::kMcChunk, chunk c driven by RNG stream c
/// of `seed`, hit counts merged per chunk. The chunk layout never depends
/// on the pool, so the estimate is bit-identical at every thread count.
template <typename Trial>
double MonteCarloEstimate(size_t samples, uint64_t seed, ThreadPool* pool,
                          const Trial& trial) {
  if (samples == 0) return 0.0;
  size_t chunks = (samples + OcqaEngine::kMcChunk - 1) / OcqaEngine::kMcChunk;
  std::vector<size_t> hits(chunks, 0);
  auto run_chunk = [&](size_t c) {
    Rng rng = Rng::Stream(seed, c);
    size_t begin = c * OcqaEngine::kMcChunk;
    size_t end = std::min(samples, begin + OcqaEngine::kMcChunk);
    size_t h = 0;
    for (size_t i = begin; i < end; ++i) {
      if (trial(rng)) ++h;
    }
    hits[c] = h;
  };
  ParallelForOn(pool, chunks, run_chunk, /*grain=*/1);
  size_t total = 0;
  for (size_t h : hits) total += h;
  return static_cast<double>(total) / static_cast<double>(samples);
}

}  // namespace

double OcqaEngine::MonteCarloUr(const ConjunctiveQuery& query,
                                const std::vector<Value>& answer_tuple,
                                size_t samples, uint64_t seed,
                                size_t threads) const {
  UniformRepairSampler sampler(db_, keys_);
  return MonteCarloEstimate(
      samples, seed, PoolFor(threads), [&](Rng& rng) {
        Database repair = db_.Subset(sampler.Sample(rng));
        QueryEvaluator eval(repair, query);
        return eval.Entails(answer_tuple);
      });
}

double OcqaEngine::MonteCarloUs(const ConjunctiveQuery& query,
                                const std::vector<Value>& answer_tuple,
                                size_t samples, uint64_t seed,
                                size_t threads) const {
  UniformSequenceSampler sampler(db_, keys_);
  return MonteCarloEstimate(
      samples, seed, PoolFor(threads), [&](Rng& rng) {
        RepairingSequence seq = sampler.Sample(rng);
        Database result = db_.Subset(ApplySequence(db_, seq));
        QueryEvaluator eval(result, query);
        return eval.Entails(answer_tuple);
      });
}

}  // namespace uocqa
