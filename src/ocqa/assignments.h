// Tuple-mapping enumeration shared by Rep[k] and Seq[k] (Algorithms 1, 2).
//
// At each decomposition vertex v with lambda(v) = {R_i1(ȳ_i1),...,R_il(ȳ_il)}
// the procedures guess a *coherent* set A' = {ȳ_ij ↦ c̄_j} of tuple mappings
// with R_ij(c̄_j) ∈ D, coherent with x̄ ↦ c̄ and with the parent's guess.
// Coherence (paper §5): constants map to themselves and shared variables map
// consistently. This module materializes, per vertex, all coherent
// assignments and provides the parent/child compatibility predicate.

#ifndef UOCQA_OCQA_ASSIGNMENTS_H_
#define UOCQA_OCQA_ASSIGNMENTS_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "db/database.h"
#include "hypertree/decomposition.h"
#include "query/cq.h"

namespace uocqa {

/// One coherent guess at a vertex: a database fact per lambda atom plus the
/// induced variable bindings.
struct VertexAssignment {
  /// Aligned with node(v).lambda: the fact assigned to each atom.
  std::vector<FactId> atom_facts;
  /// Induced bindings, sorted by variable id.
  std::vector<std::pair<VarId, Value>> bindings;
};

class AssignmentIndex {
 public:
  /// Enumerates coherent assignments for every vertex of `h`. The query's
  /// relations are resolved against `db` by name; atoms over relations with
  /// no facts yield vertices with zero assignments (empty language).
  /// `answer_tuple` must have one constant per answer variable.
  static Result<AssignmentIndex> Build(const Database& db,
                                       const ConjunctiveQuery& query,
                                       const HypertreeDecomposition& h,
                                       const std::vector<Value>& answer_tuple);

  const std::vector<VertexAssignment>& ForVertex(DecompVertex v) const {
    return per_vertex_[v];
  }

  /// Do two assignments agree on every shared variable?
  static bool Compatible(const VertexAssignment& a, const VertexAssignment& b);

  /// The fact assigned to atom `atom_idx` (a global query atom index) by
  /// assignment `a` at vertex `v`; kInvalidFact if the atom is not in
  /// lambda(v).
  FactId AssignedFact(DecompVertex v, const VertexAssignment& a,
                      size_t atom_idx) const;

  /// Total number of assignments across vertices (diagnostics).
  size_t TotalAssignments() const;

 private:
  const HypertreeDecomposition* h_ = nullptr;
  std::vector<std::vector<VertexAssignment>> per_vertex_;
};

}  // namespace uocqa

#endif  // UOCQA_OCQA_ASSIGNMENTS_H_
