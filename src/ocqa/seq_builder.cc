#include "ocqa/seq_builder.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <tuple>

#include "base/bigint.h"
#include "ocqa/assignments.h"

namespace uocqa {

namespace {

/// MSB-first bits of C(n, k), width = max(1, bitlength).
std::vector<bool> BinomialBits(uint32_t n, uint32_t k) {
  BigInt m = Binomial(n, k);
  assert(!m.IsZero());
  size_t bits = std::max<size_t>(1, m.BitLength());
  std::vector<bool> out(bits);
  for (size_t i = 0; i < bits; ++i) {
    BigInt shifted = m;
    shifted.ShiftRight(bits - 1 - i);
    out[i] = (shifted.DivModU32(2) == 1);
  }
  return out;
}

struct Builder {
  const Database& db;
  const ConjunctiveQuery& query;
  const HypertreeDecomposition& h;
  const AssignmentIndex& assignments;
  SeqAutomaton& out;
  Nfta& nfta;

  // State keys. kind 0: removal node; kind 1: amplifier bit node.
  // Fields: (kind, v, a, block_pos, alpha_idx, x, b_start, b_cur, n_budget,
  // flags) where x = facts-left for removal nodes and bit position for bit
  // nodes; flags = eq | (seen_one << 1) for bit nodes.
  using Key = std::tuple<uint8_t, DecompVertex, uint32_t, uint32_t, uint32_t,
                         uint32_t, uint32_t, uint32_t, uint32_t, uint8_t>;
  std::map<Key, NftaState> states;
  std::deque<std::pair<Key, NftaState>> worklist;

  NftaState StateOf(const Key& key) {
    auto it = states.find(key);
    if (it != states.end()) return it->second;
    NftaState s = nfta.AddState();
    states.emplace(key, s);
    worklist.push_back({key, s});
    return s;
  }

  /// Symbol for an outcome: the kept fact's rendering or "_bot".
  std::string AlphaName(size_t block_idx, uint32_t alpha_idx) const {
    const Block& block = out.blocks.block(block_idx);
    if (alpha_idx == block.size()) return "_bot";
    return FactToString(db.schema(), db.fact(block.facts[alpha_idx]));
  }

  /// Allowed outcome indices for a block under an assignment (Algorithm 2
  /// lines 7-9; same rule as Rep[k]).
  std::vector<uint32_t> AllowedOutcomes(const VertexAssignment& a,
                                        size_t block_idx) const {
    const Block& block = out.blocks.block(block_idx);
    if (block.size() == 1) return {0};
    for (FactId assigned : a.atom_facts) {
      if (assigned == kInvalidFact) continue;
      if (out.blocks.BlockOf(assigned) == block_idx) {
        uint32_t idx = static_cast<uint32_t>(
            std::find(block.facts.begin(), block.facts.end(), assigned) -
            block.facts.begin());
        return {idx};
      }
    }
    std::vector<uint32_t> all;
    for (uint32_t i = 0; i <= block.size(); ++i) all.push_back(i);
    return all;
  }

  /// Entry states for block `block_pos` of vertex v under assignment a,
  /// starting with `b_start` prior operations and budget `n_budget`:
  /// one state per allowed outcome (the outcome is fixed nondeterministically
  /// on block entry; its label appears in the amplifier path).
  std::vector<NftaState> BlockEntries(DecompVertex v, uint32_t a,
                                      uint32_t block_pos, uint32_t b_start,
                                      uint32_t n_budget) {
    std::vector<NftaState> entries;
    size_t block_idx = out.vertex_blocks[v][block_pos];
    const Block& block = out.blocks.block(block_idx);
    for (uint32_t alpha :
         AllowedOutcomes(assignments.ForVertex(v)[a], block_idx)) {
      uint32_t to_remove = (alpha == block.size())
                               ? static_cast<uint32_t>(block.size())
                               : static_cast<uint32_t>(block.size()) - 1;
      if (to_remove > 0) {
        entries.push_back(StateOf({0, v, a, block_pos, alpha, to_remove,
                                   b_start, b_start, n_budget, 0}));
      } else {
        // No removals: straight to the (trivial) amplifier C(b,b) = 1.
        entries.push_back(StateOf({1, v, a, block_pos, alpha, 0, b_start,
                                   b_start, n_budget, /*eq=*/1}));
      }
    }
    return entries;
  }

  /// Continuation states after a block finishes with `b_cur` total prior
  /// operations and remaining budget `n_budget`. For the last block of a
  /// leaf vertex, `leaf_ok` reports whether a rank-0 transition is allowed
  /// (budget exhausted).
  std::vector<std::vector<NftaState>> Continuations(DecompVertex v,
                                                    uint32_t a,
                                                    uint32_t block_pos,
                                                    uint32_t b_cur,
                                                    uint32_t n_budget,
                                                    bool* leaf_ok) {
    *leaf_ok = false;
    std::vector<std::vector<NftaState>> child_lists;
    if (block_pos + 1 < out.vertex_blocks[v].size()) {
      for (NftaState s :
           BlockEntries(v, a, block_pos + 1, b_cur, n_budget)) {
        child_lists.push_back({s});
      }
      return child_lists;
    }
    const std::vector<DecompVertex>& children = h.node(v).children;
    if (children.empty()) {
      *leaf_ok = (n_budget == 0);
      return child_lists;
    }
    assert(children.size() == 2);
    const auto& a1s = assignments.ForVertex(children[0]);
    const auto& a2s = assignments.ForVertex(children[1]);
    const VertexAssignment& mine = assignments.ForVertex(v)[a];
    for (uint32_t p = 0; p <= n_budget; ++p) {
      for (uint32_t a1 = 0; a1 < a1s.size(); ++a1) {
        if (!AssignmentIndex::Compatible(mine, a1s[a1])) continue;
        std::vector<NftaState> left =
            BlockEntries(children[0], a1, 0, b_cur, p);
        if (left.empty()) continue;
        for (uint32_t a2 = 0; a2 < a2s.size(); ++a2) {
          if (!AssignmentIndex::Compatible(mine, a2s[a2])) continue;
          std::vector<NftaState> right = BlockEntries(
              children[1], a2, 0, b_cur + p, n_budget - p);
          for (NftaState l : left) {
            for (NftaState r : right) child_lists.push_back({l, r});
          }
        }
      }
    }
    return child_lists;
  }

  void EmitRemovalTransitions(const Key& key, NftaState s) {
    auto [kind, v, a, block_pos, alpha, n, b_start, b_cur, budget, flags] =
        key;
    (void)kind;
    (void)flags;
    if (budget == 0) return;  // every removal consumes budget
    size_t block_idx = out.vertex_blocks[v][block_pos];
    const Block& block = out.blocks.block(block_idx);
    bool keep_none = (alpha == block.size());
    // shape(n, α): -1 allowed unless this would strand a lone unremovable
    // fact ladder (n == 1 requires a kept fact as justification partner);
    // -2 needs two facts.
    std::vector<int> shapes;
    if (n > 1 || (n == 1 && !keep_none)) shapes.push_back(1);
    if (n > 1) shapes.push_back(2);
    for (int g : shapes) {
      uint32_t ops = (g == 1) ? n : n * (n - 1) / 2;
      uint32_t n_next = n - static_cast<uint32_t>(g);
      for (uint32_t p = 1; p <= ops; ++p) {
        NftaSymbol sym = nfta.InternSymbol("-" + std::to_string(g) + ":" +
                                           std::to_string(p));
        NftaState child;
        if (n_next > 0) {
          child = StateOf({0, v, a, block_pos, alpha, n_next, b_start,
                           b_cur + 1, budget - 1, 0});
        } else {
          child = StateOf({1, v, a, block_pos, alpha, 0, b_start, b_cur + 1,
                           budget - 1, /*eq=*/1});
        }
        nfta.AddTransition(s, sym, {child});
      }
    }
  }

  void EmitBitTransitions(const Key& key, NftaState s) {
    auto [kind, v, a, block_pos, alpha, bit_pos, b_start, b_end, budget,
          flags] = key;
    (void)kind;
    bool eq = (flags & 1) != 0;
    bool seen_one = (flags & 2) != 0;
    size_t block_idx = out.vertex_blocks[v][block_pos];
    std::vector<bool> mbits = BinomialBits(b_end, b_start);
    assert(bit_pos < mbits.size());
    std::string alpha_name = AlphaName(block_idx, alpha);
    for (int d = 0; d <= 1; ++d) {
      bool eq_next = eq;
      if (eq) {
        int mbit = mbits[bit_pos] ? 1 : 0;
        if (d > mbit) continue;  // prefix would exceed C(b, b')
        eq_next = (d == mbit);
      }
      bool seen_next = seen_one || (d == 1);
      NftaSymbol sym = nfta.InternSymbol(alpha_name + ":" +
                                         std::to_string(d));
      bool last = (bit_pos + 1 == mbits.size());
      if (!last) {
        uint8_t f = static_cast<uint8_t>((eq_next ? 1 : 0) |
                                         (seen_next ? 2 : 0));
        NftaState child = StateOf({1, v, a, block_pos, alpha,
                                   bit_pos + 1, b_start, b_end, budget, f});
        nfta.AddTransition(s, sym, {child});
        continue;
      }
      if (!seen_next) continue;  // p = 0 is not a valid identifier
      bool leaf_ok = false;
      std::vector<std::vector<NftaState>> conts =
          Continuations(v, a, block_pos, b_end, budget, &leaf_ok);
      if (leaf_ok) nfta.AddTransition(s, sym, {});
      for (const auto& children : conts) {
        nfta.AddTransition(s, sym, children);
      }
    }
  }

  void Run() {
    NftaState init = nfta.AddState();
    nfta.SetInitial(init);
    NftaSymbol eps = nfta.InternSymbol("_eps");
    // Maximum operation budget: all non-singleton blocks fully emptied.
    uint32_t max_n = 0;
    for (const Block& b : out.blocks.blocks()) {
      if (b.size() >= 2) max_n += static_cast<uint32_t>(b.size());
    }
    out.max_operations = max_n;
    if (!out.vertex_blocks.empty() && !out.vertex_blocks[h.root()].empty()) {
      for (uint32_t a = 0; a < assignments.ForVertex(h.root()).size(); ++a) {
        for (uint32_t n0 = 0; n0 <= max_n; ++n0) {
          for (NftaState s : BlockEntries(h.root(), a, 0, 0, n0)) {
            nfta.AddTransition(init, eps, {s});
          }
        }
      }
    }
    while (!worklist.empty()) {
      auto [key, s] = worklist.front();
      worklist.pop_front();
      if (std::get<0>(key) == 0) {
        EmitRemovalTransitions(key, s);
      } else {
        EmitBitTransitions(key, s);
      }
    }
    // Tree size bound: ε + one node per operation + per block the widest
    // possible amplifier (bitlength of C(max_n, floor(max_n/2))).
    size_t max_bits =
        std::max<size_t>(1, Binomial(max_n, max_n / 2).BitLength());
    out.max_tree_size =
        1 + max_n + out.blocks.block_count() * max_bits;
  }
};

}  // namespace

Result<SeqAutomaton> BuildSeqAutomaton(const Database& db, const KeySet& keys,
                                       const ConjunctiveQuery& query,
                                       const HypertreeDecomposition& h,
                                       const std::vector<Value>& answer_tuple) {
  if (!query.IsSelfJoinFree()) {
    return Status::FailedPrecondition("query must be self-join-free");
  }
  if (!IsInNormalForm(db, query, h)) {
    return Status::FailedPrecondition("(D, Q, H) must be in normal form");
  }
  UOCQA_ASSIGN_OR_RETURN(AssignmentIndex assignments,
                         AssignmentIndex::Build(db, query, h, answer_tuple));

  SeqAutomaton out;
  out.blocks = BlockPartition::Compute(db, keys);
  // Vertex -> handled blocks, as in the Rep compilation.
  out.vertex_blocks.assign(h.size(), {});
  for (DecompVertex v = 0; v < h.size(); ++v) {
    for (size_t atom_idx : h.node(v).lambda) {
      if (h.MinimalCoveringVertex(query, atom_idx) != v) continue;
      const std::string& name =
          query.schema().name(query.atoms()[atom_idx].relation);
      RelationId dr = db.schema().Find(name);
      if (dr == kInvalidRelation) continue;
      for (size_t b : out.blocks.BlocksOfRelation(dr)) {
        out.vertex_blocks[v].push_back(b);
      }
    }
  }
  // Empty-language guard: a vertex with no blocks (its atom's relation has
  // no facts) or no assignments yields an automaton accepting nothing.
  for (DecompVertex v = 0; v < h.size(); ++v) {
    if (out.vertex_blocks[v].empty() || assignments.ForVertex(v).empty()) {
      out.nfta.SetInitial(out.nfta.AddState());
      out.max_tree_size = 1;
      return out;
    }
  }

  Builder builder{db, query, h, assignments, out, out.nfta,
                  {}, {}};
  builder.Run();
  return out;
}

}  // namespace uocqa
