#include "repairs/probabilistic.h"

#include <algorithm>
#include <cassert>

#include "query/eval.h"

namespace uocqa {

ProbabilisticRepairModel::ProbabilisticRepairModel(const Database& db,
                                                   const KeySet& keys,
                                                   TrustModel trust)
    : db_(db),
      blocks_(BlockPartition::Compute(db, keys)),
      trust_(std::move(trust)) {
  block_dist_.resize(blocks_.block_count());
  for (size_t b = 0; b < blocks_.block_count(); ++b) {
    const Block& block = blocks_.block(b);
    std::vector<double>& dist = block_dist_[b];
    dist.assign(block.size() + 1, 0.0);
    if (block.size() == 1) {
      dist[0] = 1.0;  // singleton blocks are kept unconditionally
      continue;
    }
    double none = 1.0;
    double total_trust = 0.0;
    for (FactId f : block.facts) {
      double tau = trust_.TrustOf(f);
      assert(tau >= 0.0 && tau <= 1.0);
      none *= (1.0 - tau);
      total_trust += tau;
    }
    dist[block.size()] = none;
    double keep_mass = 1.0 - none;
    if (total_trust <= 0.0) {
      // All sources fully untrusted: the block is always emptied.
      dist[block.size()] = 1.0;
      continue;
    }
    for (size_t i = 0; i < block.size(); ++i) {
      dist[i] = keep_mass * trust_.TrustOf(block.facts[i]) / total_trust;
    }
  }
}

double ProbabilisticRepairModel::RepairProbability(
    const std::vector<BlockOutcome>& outcomes) const {
  assert(outcomes.size() == blocks_.block_count());
  double p = 1.0;
  for (size_t b = 0; b < blocks_.block_count(); ++b) {
    const Block& block = blocks_.block(b);
    if (!outcomes[b].has_value()) {
      p *= block_dist_[b][block.size()];
      continue;
    }
    size_t idx = static_cast<size_t>(
        std::find(block.facts.begin(), block.facts.end(), *outcomes[b]) -
        block.facts.begin());
    assert(idx < block.size());
    p *= block_dist_[b][idx];
  }
  return p;
}

double ProbabilisticRepairModel::AnswerProbabilityExact(
    const ConjunctiveQuery& query,
    const std::vector<Value>& answer_tuple) const {
  double total = 0.0;
  ForEachRepair(blocks_, [&](const std::vector<BlockOutcome>& outcomes,
                             const std::vector<FactId>& kept) {
    Database repair = db_.Subset(kept);
    QueryEvaluator eval(repair, query);
    if (eval.Entails(answer_tuple)) total += RepairProbability(outcomes);
    return true;
  });
  return total;
}

std::vector<FactId> ProbabilisticRepairModel::SampleRepair(Rng& rng) const {
  std::vector<FactId> kept;
  for (size_t b = 0; b < blocks_.block_count(); ++b) {
    const Block& block = blocks_.block(b);
    const std::vector<double>& dist = block_dist_[b];
    double r = rng.UniformDouble();
    double acc = 0.0;
    size_t choice = block.size();  // default: keep none
    for (size_t i = 0; i < dist.size(); ++i) {
      acc += dist[i];
      if (r < acc) {
        choice = i;
        break;
      }
    }
    if (choice < block.size()) kept.push_back(block.facts[choice]);
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

double ProbabilisticRepairModel::AnswerProbabilityMc(
    const ConjunctiveQuery& query, const std::vector<Value>& answer_tuple,
    size_t samples, Rng& rng) const {
  if (samples == 0) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < samples; ++i) {
    Database repair = db_.Subset(SampleRepair(rng));
    QueryEvaluator eval(repair, query);
    if (eval.Entails(answer_tuple)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace uocqa
