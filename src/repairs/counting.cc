#include "repairs/counting.h"

#include <cassert>

#include "query/eval.h"

namespace uocqa {

namespace {

/// Shared recurrence: from m live facts, remove one (m ways) or a pair
/// (C(m,2) ways). `polys` must be seeded with indices 0 (and 1 if n >= 1).
LenPoly RunRecurrence(size_t n, std::vector<LenPoly> seeded) {
  for (size_t m = seeded.size(); m <= n; ++m) {
    const LenPoly& one_less = seeded[m - 1];
    const LenPoly& two_less = seeded[m - 2];
    LenPoly cur(std::max(one_less.size(), two_less.size()) + 1);
    uint64_t pairs = static_cast<uint64_t>(m) * (m - 1) / 2;
    for (size_t l = 0; l < one_less.size(); ++l) {
      cur[l + 1] += one_less[l] * static_cast<uint64_t>(m);
    }
    for (size_t l = 0; l < two_less.size(); ++l) {
      cur[l + 1] += two_less[l] * pairs;
    }
    seeded.push_back(std::move(cur));
  }
  return seeded[n];
}

}  // namespace

LenPoly BlockTotalPoly(size_t n) {
  // cnt[0] = cnt[1] = 1 at length 0.
  if (n == 0) return {BigInt(1)};
  return RunRecurrence(n, {{BigInt(1)}, {BigInt(1)}});
}

LenPoly BlockKeepOnePoly(size_t r) {
  // K[0] = 1 at length 0; K[1] = 1 at length 1 (remove the single other
  // fact; justified because the kept fact is still present).
  if (r == 0) return {BigInt(1)};
  return RunRecurrence(r, {{BigInt(1)}, {BigInt(), BigInt(1)}});
}

LenPoly BlockKeepNonePoly(size_t n) {
  // E[0] = 1 at length 0; E[1] = 0 everywhere (a lone fact has no violating
  // partner, so its removal is never justified).
  if (n == 0) return {BigInt(1)};
  return RunRecurrence(n, {{BigInt(1)}, {}});
}

LenPoly InterleavePolys(const LenPoly& a, const LenPoly& b) {
  if (a.empty() || b.empty()) return {};
  LenPoly out(a.size() + b.size() - 1);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].IsZero()) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      if (b[j].IsZero()) continue;
      out[i + j] += a[i] * b[j] *
                    Binomial(static_cast<uint32_t>(i + j),
                             static_cast<uint32_t>(i));
    }
  }
  return out;
}

BigInt PolySum(const LenPoly& p) {
  BigInt out;
  for (const BigInt& c : p) out += c;
  return out;
}

BigInt CountOperationalRepairs(const BlockPartition& blocks) {
  BigInt out(1);
  for (const Block& b : blocks.blocks()) {
    if (b.size() >= 2) out *= static_cast<uint64_t>(b.size() + 1);
  }
  return out;
}

BigInt CountCompleteSequencesExact(const BlockPartition& blocks) {
  LenPoly acc{BigInt(1)};
  for (const Block& b : blocks.blocks()) {
    acc = InterleavePolys(acc, BlockTotalPoly(b.size()));
  }
  return PolySum(acc);
}

BigInt CountSequencesForOutcome(const BlockPartition& blocks,
                                const std::vector<BlockOutcome>& outcomes) {
  assert(outcomes.size() == blocks.block_count());
  LenPoly acc{BigInt(1)};
  for (size_t i = 0; i < blocks.block_count(); ++i) {
    const Block& b = blocks.block(i);
    LenPoly poly;
    if (outcomes[i].has_value()) {
      poly = BlockKeepOnePoly(b.size() - 1);
    } else {
      poly = BlockKeepNonePoly(b.size());
    }
    acc = InterleavePolys(acc, poly);
    if (acc.empty()) return BigInt();
  }
  return PolySum(acc);
}

void ForEachRepair(
    const BlockPartition& blocks,
    const std::function<bool(const std::vector<BlockOutcome>&,
                             const std::vector<FactId>&)>& fn) {
  size_t m = blocks.block_count();
  std::vector<BlockOutcome> outcomes(m);
  std::vector<FactId> kept;
  // choice[i] in [0, options_i): for singleton blocks the only option keeps
  // the fact; for larger blocks option 0..n-1 keeps fact j, option n drops
  // the block.
  std::function<bool(size_t)> rec = [&](size_t i) -> bool {
    if (i == m) {
      std::vector<FactId> sorted = kept;
      std::sort(sorted.begin(), sorted.end());
      return fn(outcomes, sorted);
    }
    const Block& b = blocks.block(i);
    if (b.size() == 1) {
      outcomes[i] = b.facts[0];
      kept.push_back(b.facts[0]);
      bool go = rec(i + 1);
      kept.pop_back();
      return go;
    }
    for (FactId f : b.facts) {
      outcomes[i] = f;
      kept.push_back(f);
      bool go = rec(i + 1);
      kept.pop_back();
      if (!go) return false;
    }
    outcomes[i] = std::nullopt;
    return rec(i + 1);
  };
  rec(0);
}

BigInt CountRepairsEntailing(const Database& db, const KeySet& keys,
                             const ConjunctiveQuery& query,
                             const std::vector<Value>& answer_tuple,
                             const std::vector<size_t>* atom_order) {
  BlockPartition blocks = BlockPartition::Compute(db, keys);
  BigInt count;
  ForEachRepair(blocks, [&](const std::vector<BlockOutcome>&,
                            const std::vector<FactId>& kept) {
    Database repair = db.Subset(kept);
    QueryEvaluator eval = atom_order
                              ? QueryEvaluator(repair, query, *atom_order)
                              : QueryEvaluator(repair, query);
    if (eval.Entails(answer_tuple)) count += uint64_t{1};
    return true;
  });
  return count;
}

BigInt CountSequencesEntailing(const Database& db, const KeySet& keys,
                               const ConjunctiveQuery& query,
                               const std::vector<Value>& answer_tuple,
                               const std::vector<size_t>* atom_order) {
  BlockPartition blocks = BlockPartition::Compute(db, keys);
  BigInt count;
  ForEachRepair(blocks, [&](const std::vector<BlockOutcome>& outcomes,
                            const std::vector<FactId>& kept) {
    Database repair = db.Subset(kept);
    QueryEvaluator eval = atom_order
                              ? QueryEvaluator(repair, query, *atom_order)
                              : QueryEvaluator(repair, query);
    if (eval.Entails(answer_tuple)) {
      count += CountSequencesForOutcome(blocks, outcomes);
    }
    return true;
  });
  return count;
}

ExactRF ExactRepairFrequency(const Database& db, const KeySet& keys,
                             const ConjunctiveQuery& query,
                             const std::vector<Value>& answer_tuple,
                             const std::vector<size_t>* atom_order) {
  BlockPartition blocks = BlockPartition::Compute(db, keys);
  ExactRF out;
  out.numerator =
      CountRepairsEntailing(db, keys, query, answer_tuple, atom_order);
  out.denominator = CountOperationalRepairs(blocks);
  return out;
}

ExactRF ExactSequenceFrequency(const Database& db, const KeySet& keys,
                               const ConjunctiveQuery& query,
                               const std::vector<Value>& answer_tuple,
                               const std::vector<size_t>* atom_order) {
  BlockPartition blocks = BlockPartition::Compute(db, keys);
  ExactRF out;
  out.numerator =
      CountSequencesEntailing(db, keys, query, answer_tuple, atom_order);
  out.denominator = CountCompleteSequencesExact(blocks);
  return out;
}

}  // namespace uocqa
