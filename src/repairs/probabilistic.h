// The probabilistic operational repair model of Example 1.1 (from [11]).
//
// The uniform semantics (RF_ur / RF_us) is the special case of the general
// operational framework where all choices are equally likely. Example 1.1
// motivates the general case with *source trust*: each fact carries a trust
// probability τ. Per conflict block B:
//   Pr[keep none]  = ∏_{f ∈ B} (1 − τ_f)           (trust no source)
//   Pr[keep f]     = (1 − Pr[keep none]) · τ_f / Σ_{g∈B} τ_g
// With τ = 1/2 everywhere and |B| = 2 this reproduces the paper's numbers:
// Pr[∅] = 1/4 and Pr[{Alice}] = Pr[{Tom}] = 3/8. Blocks are independent, so
// answer probabilities are products/sums over block outcomes: exact by
// outcome enumeration, or Monte-Carlo by per-block sampling.

#ifndef UOCQA_REPAIRS_PROBABILISTIC_H_
#define UOCQA_REPAIRS_PROBABILISTIC_H_

#include <unordered_map>
#include <vector>

#include "base/rng.h"
#include "db/blocks.h"
#include "db/database.h"
#include "db/keys.h"
#include "query/cq.h"
#include "repairs/counting.h"

namespace uocqa {

/// Per-fact trust probabilities (default applies to unlisted facts).
struct TrustModel {
  double default_trust = 0.5;
  std::unordered_map<FactId, double> per_fact;

  double TrustOf(FactId f) const {
    auto it = per_fact.find(f);
    return it == per_fact.end() ? default_trust : it->second;
  }
};

class ProbabilisticRepairModel {
 public:
  ProbabilisticRepairModel(const Database& db, const KeySet& keys,
                           TrustModel trust);

  /// Pr[outcome] for one block: index i < |B| keeps facts[i]; index |B|
  /// keeps nothing. Singleton blocks keep their fact with probability 1.
  const std::vector<double>& BlockDistribution(size_t block_idx) const {
    return block_dist_[block_idx];
  }

  /// Probability of one specific operational repair.
  double RepairProbability(const std::vector<BlockOutcome>& outcomes) const;

  /// Pr[c̄ ∈ Q(D')] with D' drawn from the trust-weighted repair
  /// distribution; exact, by enumerating block outcomes (exponential).
  double AnswerProbabilityExact(const ConjunctiveQuery& query,
                                const std::vector<Value>& answer_tuple) const;

  /// Monte-Carlo estimate of the same probability.
  double AnswerProbabilityMc(const ConjunctiveQuery& query,
                             const std::vector<Value>& answer_tuple,
                             size_t samples, Rng& rng) const;

  /// Samples a repair (kept fact ids, sorted).
  std::vector<FactId> SampleRepair(Rng& rng) const;

  const BlockPartition& blocks() const { return blocks_; }

 private:
  const Database& db_;
  BlockPartition blocks_;
  TrustModel trust_;
  std::vector<std::vector<double>> block_dist_;
};

}  // namespace uocqa

#endif  // UOCQA_REPAIRS_PROBABILISTIC_H_
