#include "repairs/sampling.h"

#include <algorithm>
#include <cassert>

namespace uocqa {

BigInt UniformBigInt(Rng& rng, const BigInt& bound) {
  assert(!bound.IsZero());
  size_t bits = bound.BitLength();
  size_t limbs = (bits + 31) / 32;
  while (true) {
    BigInt candidate;
    for (size_t i = 0; i < limbs; ++i) {
      candidate.ShiftLeft(32);
      candidate += uint64_t{rng.NextU64() & 0xffffffffull};
    }
    // Trim to exactly `bits` bits.
    size_t extra = limbs * 32 - bits;
    candidate.ShiftRight(extra);
    if (candidate < bound) return candidate;
  }
}

size_t SampleIndexByWeight(Rng& rng, const std::vector<BigInt>& weights) {
  // Forced choices are RNG-silent: with exactly one nonzero weight the draw
  // is determined, so no randomness is consumed. The live-instance
  // differential guarantee leans on this — a conflict-free (singleton-block)
  // fact only ever contributes forced choices to the sequence sampler, so
  // inserting one leaves every other draw's bitstream untouched.
  size_t nonzero_count = 0;
  size_t last_nonzero = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!weights[i].IsZero()) {
      ++nonzero_count;
      last_nonzero = i;
    }
  }
  if (nonzero_count == 1) return last_nonzero;
  BigInt total;
  for (const BigInt& w : weights) total += w;
  assert(!total.IsZero());
  BigInt r = UniformBigInt(rng, total);
  BigInt acc;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  assert(false && "weight sampling fell through");
  return weights.size() - 1;
}

// --- repairs -----------------------------------------------------------------

UniformRepairSampler::UniformRepairSampler(const Database& db,
                                           const KeySet& keys)
    : blocks_(BlockPartition::Compute(db, keys)) {}

std::vector<BlockOutcome> UniformRepairSampler::SampleOutcomes(
    Rng& rng) const {
  std::vector<BlockOutcome> out(blocks_.block_count());
  for (size_t i = 0; i < blocks_.block_count(); ++i) {
    const Block& b = blocks_.block(i);
    if (b.size() == 1) {
      out[i] = b.facts[0];
      continue;
    }
    size_t choice = rng.UniformIndex(b.size() + 1);
    if (choice == b.size()) {
      out[i] = std::nullopt;
    } else {
      out[i] = b.facts[choice];
    }
  }
  return out;
}

std::vector<FactId> UniformRepairSampler::Sample(Rng& rng) const {
  std::vector<FactId> kept;
  for (const BlockOutcome& o : SampleOutcomes(rng)) {
    if (o.has_value()) kept.push_back(*o);
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

// --- sequences ---------------------------------------------------------------

UniformSequenceSampler::UniformSequenceSampler(const Database& db,
                                               const KeySet& keys)
    : db_(db), blocks_(BlockPartition::Compute(db, keys)) {
  block_polys_.reserve(blocks_.block_count());
  prefix_polys_.push_back({BigInt(1)});
  for (const Block& b : blocks_.blocks()) {
    block_polys_.push_back(BlockTotalPoly(b.size()));
    prefix_polys_.push_back(
        InterleavePolys(prefix_polys_.back(), block_polys_.back()));
  }
  total_ = PolySum(prefix_polys_.back());
}

RepairingSequence UniformSequenceSampler::SampleBlockSequence(
    Rng& rng, size_t block_idx, size_t length) const {
  const Block& block = blocks_.block(block_idx);
  size_t n = block.size();

  // Choose the outcome proportionally to its sequence count at `length`.
  LenPoly keep_one = BlockKeepOnePoly(n >= 1 ? n - 1 : 0);
  LenPoly keep_none = BlockKeepNonePoly(n);
  auto coeff = [length](const LenPoly& p) {
    return length < p.size() ? p[length] : BigInt();
  };
  std::vector<BigInt> outcome_weights;
  // Index 0..n-1: keep block.facts[i]; index n: keep none.
  for (size_t i = 0; i < n; ++i) outcome_weights.push_back(coeff(keep_one));
  outcome_weights.push_back(coeff(keep_none));
  size_t outcome = SampleIndexByWeight(rng, outcome_weights);

  std::vector<FactId> removable;  // facts that may be deleted
  bool keep_all_removed = (outcome == n);
  for (size_t i = 0; i < n; ++i) {
    if (keep_all_removed || i != outcome) removable.push_back(block.facts[i]);
  }

  // Walk the recurrence backwards. State: r facts still to delete, with the
  // kept fact (if any) always alive as a justification partner.
  RepairingSequence seq;
  size_t remaining_length = length;
  auto polys_for = [&](size_t r) {
    return keep_all_removed ? BlockKeepNonePoly(r) : BlockKeepOnePoly(r);
  };
  size_t r = removable.size();
  while (r > 0) {
    assert(remaining_length > 0);
    LenPoly p1 = polys_for(r - 1);
    LenPoly p2 = r >= 2 ? polys_for(r - 2) : LenPoly{};
    auto at = [](const LenPoly& p, size_t l) {
      return l < p.size() ? p[l] : BigInt();
    };
    BigInt w_single = at(p1, remaining_length - 1) * static_cast<uint64_t>(r);
    BigInt w_pair = at(p2, remaining_length - 1) *
                    (static_cast<uint64_t>(r) * (r - 1) / 2);
    size_t shape = SampleIndexByWeight(rng, {w_single, w_pair});
    if (shape == 0) {
      size_t pick = rng.UniformIndex(r);
      seq.push_back(Operation::Single(removable[pick]));
      removable.erase(removable.begin() + static_cast<ptrdiff_t>(pick));
      r -= 1;
    } else {
      size_t a = rng.UniformIndex(r);
      size_t b = rng.UniformIndex(r - 1);
      if (b >= a) ++b;
      seq.push_back(Operation::Pair(removable[a], removable[b]));
      if (a > b) std::swap(a, b);
      removable.erase(removable.begin() + static_cast<ptrdiff_t>(b));
      removable.erase(removable.begin() + static_cast<ptrdiff_t>(a));
      r -= 2;
    }
    --remaining_length;
  }
  assert(remaining_length == 0);
  return seq;
}

RepairingSequence UniformSequenceSampler::Sample(Rng& rng) const {
  size_t m = blocks_.block_count();
  // (1) total length.
  const LenPoly& full = prefix_polys_[m];
  std::vector<BigInt> length_weights(full.begin(), full.end());
  size_t total_len = SampleIndexByWeight(rng, length_weights);

  // (2) per-block lengths, backwards.
  std::vector<size_t> lengths(m, 0);
  size_t remaining = total_len;
  for (size_t i = m; i-- > 0;) {
    const LenPoly& ti = block_polys_[i];
    const LenPoly& prefix = prefix_polys_[i];
    std::vector<BigInt> weights;
    for (size_t l = 0; l <= remaining && l < ti.size(); ++l) {
      size_t rest = remaining - l;
      BigInt w;
      if (rest < prefix.size()) {
        w = ti[l] * prefix[rest] *
            Binomial(static_cast<uint32_t>(remaining),
                     static_cast<uint32_t>(l));
      }
      weights.push_back(w);
    }
    size_t li = SampleIndexByWeight(rng, weights);
    lengths[i] = li;
    remaining -= li;
  }
  assert(remaining == 0);

  // (3) per-block sequences.
  std::vector<RepairingSequence> block_seqs(m);
  for (size_t i = 0; i < m; ++i) {
    block_seqs[i] = SampleBlockSequence(rng, i, lengths[i]);
  }

  // (4) uniform interleaving.
  RepairingSequence out;
  std::vector<size_t> cursor(m, 0);
  size_t left = total_len;
  while (left > 0) {
    uint64_t pick = rng.UniformU64(left);
    uint64_t acc = 0;
    for (size_t i = 0; i < m; ++i) {
      acc += block_seqs[i].size() - cursor[i];
      if (pick < acc) {
        out.push_back(block_seqs[i][cursor[i]++]);
        break;
      }
    }
    --left;
  }
  return out;
}

}  // namespace uocqa
