// Operations, repairing sequences, and operational repairs (paper §3).
//
// A D-operation -F removes a non-empty set F of facts; it is (D', Sigma)-
// justified if F ⊆ {f, g} ⊆ D' for some pair violating Sigma. A repairing
// sequence applies justified operations until (when complete) the result is
// consistent. Under primary keys every violating pair lies within one
// conflict block, so justified operations remove one fact or a pair of facts
// from a single block with >= 2 remaining facts.

#ifndef UOCQA_REPAIRS_OPERATIONS_H_
#define UOCQA_REPAIRS_OPERATIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "db/blocks.h"
#include "db/constraints.h"
#include "db/database.h"
#include "db/keys.h"

namespace uocqa {

/// A fact-deletion operation -F with |F| ∈ {1, 2}.
struct Operation {
  std::vector<FactId> facts;  // sorted, size 1 or 2

  static Operation Single(FactId f) { return Operation{{f}}; }
  static Operation Pair(FactId f, FactId g) {
    if (f > g) std::swap(f, g);
    return Operation{{f, g}};
  }

  bool operator==(const Operation& o) const { return facts == o.facts; }
  bool operator<(const Operation& o) const { return facts < o.facts; }
};

/// A sequence of operations (op_i); applied left to right.
using RepairingSequence = std::vector<Operation>;

/// The set of facts remaining after applying `seq` to the full database.
/// Fact ids refer to `db`.
std::vector<FactId> ApplySequence(const Database& db,
                                  const RepairingSequence& seq);

/// Is -F justified at the sub-database `present` (bitmap over db facts)?
bool IsJustified(const Database& db, const PairwiseConstraints& keys,
                 const std::vector<bool>& present, const Operation& op);

/// Checks that every operation is justified at its step ((D,Sigma)-repairing,
/// Def. 3.2) and reports whether the result is consistent (complete).
struct SequenceCheck {
  bool repairing = false;
  bool complete = false;
};
SequenceCheck CheckSequence(const Database& db, const PairwiseConstraints& keys,
                            const RepairingSequence& seq);

/// All justified operations available at `present` (deduplicated, sorted).
std::vector<Operation> JustifiedOperations(const Database& db,
                                           const PairwiseConstraints& keys,
                                           const std::vector<bool>& present);

/// Exhaustively enumerates complete repairing sequences by DFS, stopping
/// after `limit` sequences (0 = no limit). Exponential; small inputs only.
std::vector<RepairingSequence> EnumerateCompleteSequences(
    const Database& db, const PairwiseConstraints& keys, size_t limit = 0);

/// Renders "-{P(a,b)} ; -{S(c,d), S(c,e)}".
std::string SequenceToString(const Database& db, const RepairingSequence& seq);

}  // namespace uocqa

#endif  // UOCQA_REPAIRS_OPERATIONS_H_
