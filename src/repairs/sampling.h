// Exact-uniform samplers over ORep(D,Sigma) and CRS(D,Sigma).
//
// Uniform repair sampling is trivial: block outcomes are independent and
// each block of size n >= 2 has n+1 equally likely outcomes.
//
// Uniform sequence sampling is not: the probability of a repair under the
// uniform-sequence distribution is proportional to the number of sequences
// reaching it, which couples block outcome, per-block resolution order, and
// the global interleaving. The sampler draws, in order:
//   (1) the total sequence length L  ~  prefix-interleaved counts,
//   (2) per-block lengths l_i       ~  backward convolution weights,
//   (3) per-block resolution sequences, walking the counting recurrences
//       backwards,
//   (4) a uniform interleaving of the block sequences.
// All weights are exact BigInt counts, so samples are *exactly* uniform.
// These samplers power the data-complexity Monte-Carlo baselines ([13]) and
// the distribution tests.

#ifndef UOCQA_REPAIRS_SAMPLING_H_
#define UOCQA_REPAIRS_SAMPLING_H_

#include <optional>
#include <vector>

#include "base/bigint.h"
#include "base/rng.h"
#include "db/blocks.h"
#include "db/database.h"
#include "db/keys.h"
#include "repairs/counting.h"
#include "repairs/operations.h"

namespace uocqa {

/// Uniform BigInt in [0, bound) by bit-rejection; bound must be non-zero.
BigInt UniformBigInt(Rng& rng, const BigInt& bound);

/// Samples an index proportionally to BigInt weights (sum must be > 0).
/// A forced choice — exactly one nonzero weight — consumes no randomness,
/// so the bitstream of a sampling run only ever depends on blocks that have
/// a real choice to make (the live-instance invariance contract).
size_t SampleIndexByWeight(Rng& rng, const std::vector<BigInt>& weights);

/// Uniform sampler over ORep(D, Sigma).
class UniformRepairSampler {
 public:
  UniformRepairSampler(const Database& db, const KeySet& keys);

  /// Kept fact ids of a uniformly drawn operational repair (sorted).
  std::vector<FactId> Sample(Rng& rng) const;

  /// Outcome-vector flavour (aligned with blocks()).
  std::vector<BlockOutcome> SampleOutcomes(Rng& rng) const;

  const BlockPartition& blocks() const { return blocks_; }

 private:
  BlockPartition blocks_;
};

/// Uniform sampler over CRS(D, Sigma).
class UniformSequenceSampler {
 public:
  UniformSequenceSampler(const Database& db, const KeySet& keys);

  /// A uniformly drawn complete repairing sequence.
  RepairingSequence Sample(Rng& rng) const;

  /// |CRS(D, Sigma)| (precomputed).
  const BigInt& total_count() const { return total_; }

  const BlockPartition& blocks() const { return blocks_; }

 private:
  /// Samples a resolution sequence of exactly `length` operations for block
  /// `block_idx` uniformly, returning its operations in order.
  RepairingSequence SampleBlockSequence(Rng& rng, size_t block_idx,
                                        size_t length) const;

  const Database& db_;
  BlockPartition blocks_;
  std::vector<LenPoly> block_polys_;    // T_i per block
  std::vector<LenPoly> prefix_polys_;   // P_0..P_m
  BigInt total_;
};

}  // namespace uocqa

#endif  // UOCQA_REPAIRS_SAMPLING_H_
