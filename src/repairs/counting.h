// Exact counting for uniform operational CQA (paper §3 and [13]).
//
// Denominators (polynomial time, re-implementing the results of [13] the
// paper builds on):
//   |ORep(D,Sigma)| = prod over blocks B of (|B| == 1 ? 1 : |B| + 1)
//   |CRS(D,Sigma)|  = interleaving-convolution of per-block resolution
//                     counts by length.
//
// Per-block sequence counting uses three length-indexed polynomials; all of
// them follow the same recurrence (remove one of m facts, or one of C(m,2)
// pairs) with different boundary conditions:
//   total:      cnt[0]=cnt[1]=[1]    (any outcome)
//   keep-alpha: K[0]=[1]             (r = facts to remove besides alpha;
//                                     alpha itself never removed)
//   keep-none:  E[0]=[1], E[1]=0     (a lone fact can never be removed:
//                                     no violating pair remains to justify
//                                     the deletion — see shape(1,⊥)=∅)
// Blocks interleave with binomial weights: two independent sequences of
// lengths i and j merge in C(i+j, i) ways.
//
// Numerators |{D' ∈ ORep : c̄ ∈ Q(D')}| and |{s ∈ CRS : c̄ ∈ Q(s(D))}| are
// #P-hard (Thm 3.4); this module provides exponential-time exact versions
// (enumeration over block outcome vectors) used as ground truth for the
// FPRAS and in the benchmarks that exhibit the exact-vs-approximate gap.

#ifndef UOCQA_REPAIRS_COUNTING_H_
#define UOCQA_REPAIRS_COUNTING_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "base/bigint.h"
#include "db/blocks.h"
#include "db/database.h"
#include "db/keys.h"
#include "query/cq.h"

namespace uocqa {

/// Length-indexed counts: poly[l] = number of sequences of length l.
using LenPoly = std::vector<BigInt>;

/// Number of complete resolution sequences of a block with n facts, by
/// length, over any outcome.
LenPoly BlockTotalPoly(size_t n);

/// ... that keep one designated fact, where r = n - 1 facts must go.
LenPoly BlockKeepOnePoly(size_t r);

/// ... that empty the block of n facts.
LenPoly BlockKeepNonePoly(size_t n);

/// Interleaves two independent sequence families: c[l] = sum_i a[i] *
/// b[l-i] * C(l, i).
LenPoly InterleavePolys(const LenPoly& a, const LenPoly& b);

/// Sum of all coefficients.
BigInt PolySum(const LenPoly& p);

/// |ORep(D, Sigma)| in O(|D|).
BigInt CountOperationalRepairs(const BlockPartition& blocks);

/// |CRS(D, Sigma)| in polynomial time (BigInt arithmetic).
BigInt CountCompleteSequencesExact(const BlockPartition& blocks);

/// The outcome of one block in a repair: the kept fact, or nullopt (block
/// emptied). Singleton blocks must keep their fact.
using BlockOutcome = std::optional<FactId>;

/// Number of complete repairing sequences producing exactly the repair given
/// by `outcomes` (one entry per block, aligned with `blocks`).
BigInt CountSequencesForOutcome(const BlockPartition& blocks,
                                const std::vector<BlockOutcome>& outcomes);

/// Iterates over every operational repair (as an outcome vector plus the
/// kept fact ids) until `fn` returns false. The number of repairs is the
/// product of per-block choices — exponential; small inputs only.
void ForEachRepair(
    const BlockPartition& blocks,
    const std::function<bool(const std::vector<BlockOutcome>&,
                             const std::vector<FactId>&)>& fn);

/// Exact numerator |{D' ∈ ORep(D,Sigma) : c̄ ∈ Q(D')}| by enumeration.
/// `atom_order` optionally fixes the per-repair evaluator's atom order (a
/// permutation of 0..atom_count-1, e.g. planned once against the full
/// database); order affects enumeration cost only, never the count.
BigInt CountRepairsEntailing(const Database& db, const KeySet& keys,
                             const ConjunctiveQuery& query,
                             const std::vector<Value>& answer_tuple,
                             const std::vector<size_t>* atom_order = nullptr);

/// Exact numerator |{s ∈ CRS(D,Sigma) : c̄ ∈ Q(s(D))}| by enumeration over
/// outcomes with per-outcome sequence counting.
BigInt CountSequencesEntailing(const Database& db, const KeySet& keys,
                               const ConjunctiveQuery& query,
                               const std::vector<Value>& answer_tuple,
                               const std::vector<size_t>* atom_order =
                                   nullptr);

/// An exact relative frequency as a ratio of BigInt counts.
struct ExactRF {
  BigInt numerator;
  BigInt denominator;

  double value() const {
    return denominator.IsZero() ? 0.0
                                : BigInt::RatioAsDouble(numerator, denominator);
  }
  bool operator==(const ExactRF& o) const {
    // Cross-multiplied equality (no rational normalization needed).
    return numerator * o.denominator == o.numerator * denominator;
  }
};

/// RF_ur(D, Sigma, Q, c̄), exact (exponential-time numerator).
ExactRF ExactRepairFrequency(const Database& db, const KeySet& keys,
                             const ConjunctiveQuery& query,
                             const std::vector<Value>& answer_tuple,
                             const std::vector<size_t>* atom_order = nullptr);

/// RF_us(D, Sigma, Q, c̄), exact (exponential-time numerator).
ExactRF ExactSequenceFrequency(const Database& db, const KeySet& keys,
                               const ConjunctiveQuery& query,
                               const std::vector<Value>& answer_tuple,
                               const std::vector<size_t>* atom_order =
                                   nullptr);

}  // namespace uocqa

#endif  // UOCQA_REPAIRS_COUNTING_H_
