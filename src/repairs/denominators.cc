#include "repairs/denominators.h"

namespace uocqa {

bool RelationDenominatorEntry::SameCounts(
    const RelationDenominatorEntry& o) const {
  if (!(orep_factor == o.orep_factor)) return false;
  if (crs_poly.size() != o.crs_poly.size()) return false;
  for (size_t i = 0; i < crs_poly.size(); ++i) {
    if (!(crs_poly[i] == o.crs_poly[i])) return false;
  }
  return true;
}

RelationDenominatorEntry RelationDenominators::ComputeEntry(
    const Database& db, const BlockPartition& blocks, RelationId rel) {
  RelationDenominatorEntry out;
  out.fact_count = db.index().RelationCardinality(rel);
  for (size_t idx : blocks.BlocksOfRelation(rel)) {
    size_t n = blocks.block(idx).size();
    if (n >= 2) out.orep_factor *= static_cast<uint64_t>(n + 1);
    out.crs_poly = InterleavePolys(out.crs_poly, BlockTotalPoly(n));
  }
  return out;
}

void RelationDenominators::CombineTotals() {
  orep_ = BigInt(1);
  LenPoly poly = {BigInt(1)};
  for (const RelationDenominatorEntry& e : entries_) {
    orep_ = orep_ * e.orep_factor;
    poly = InterleavePolys(poly, e.crs_poly);
  }
  crs_ = PolySum(poly);
}

RelationDenominators RelationDenominators::Compute(
    const Database& db, const BlockPartition& blocks) {
  RelationDenominators out;
  size_t relation_count = db.schema().relation_count();
  out.entries_.reserve(relation_count);
  for (RelationId rel = 0; rel < relation_count; ++rel) {
    out.entries_.push_back(ComputeEntry(db, blocks, rel));
  }
  out.CombineTotals();
  return out;
}

RelationDenominators RelationDenominators::Update(
    const RelationDenominators& prev, const Database& db,
    const BlockPartition& blocks, FactId first_new,
    std::vector<RelationId>* changed) {
  size_t relation_count = db.schema().relation_count();
  std::vector<bool> touched(relation_count, false);
  for (FactId id = first_new; id < db.size(); ++id) {
    touched[db.fact(id).relation] = true;
  }
  RelationDenominators out;
  out.entries_.reserve(relation_count);
  bool any_changed = false;
  for (RelationId rel = 0; rel < relation_count; ++rel) {
    if (!touched[rel] && rel < prev.entries_.size()) {
      out.entries_.push_back(prev.entries_[rel]);
      continue;
    }
    RelationDenominatorEntry entry = ComputeEntry(db, blocks, rel);
    bool same = rel < prev.entries_.size() &&
                entry.SameCounts(prev.entries_[rel]);
    if (!same) {
      any_changed = true;
      if (changed != nullptr) changed->push_back(rel);
    }
    out.entries_.push_back(std::move(entry));
  }
  if (any_changed) {
    out.CombineTotals();
  } else {
    // Every touched relation kept its conflict structure (conflict-free
    // inserts only): both totals are bit-identical to the previous epoch's.
    out.orep_ = prev.orep_;
    out.crs_ = prev.crs_;
  }
  return out;
}

}  // namespace uocqa
