#include "repairs/operations.h"

#include <algorithm>
#include <cassert>

namespace uocqa {

std::vector<FactId> ApplySequence(const Database& db,
                                  const RepairingSequence& seq) {
  std::vector<bool> present(db.size(), true);
  for (const Operation& op : seq) {
    for (FactId f : op.facts) present[f] = false;
  }
  std::vector<FactId> out;
  for (FactId id = 0; id < db.size(); ++id) {
    if (present[id]) out.push_back(id);
  }
  return out;
}

bool IsJustified(const Database& db, const PairwiseConstraints& keys,
                 const std::vector<bool>& present, const Operation& op) {
  for (FactId f : op.facts) {
    if (f >= db.size() || !present[f]) return false;
  }
  if (op.facts.size() == 2) {
    return keys.ViolatingPair(db.fact(op.facts[0]), db.fact(op.facts[1]));
  }
  if (op.facts.size() != 1) return false;
  // -{f}: some present g forms a violating pair with f.
  FactId f = op.facts[0];
  for (FactId g = 0; g < db.size(); ++g) {
    if (g == f || !present[g]) continue;
    if (keys.ViolatingPair(db.fact(f), db.fact(g))) return true;
  }
  return false;
}

SequenceCheck CheckSequence(const Database& db, const PairwiseConstraints& keys,
                            const RepairingSequence& seq) {
  SequenceCheck out;
  std::vector<bool> present(db.size(), true);
  for (const Operation& op : seq) {
    if (!IsJustified(db, keys, present, op)) return out;  // not repairing
    for (FactId f : op.facts) present[f] = false;
  }
  out.repairing = true;
  std::vector<FactId> kept;
  for (FactId id = 0; id < db.size(); ++id) {
    if (present[id]) kept.push_back(id);
  }
  out.complete = keys.SatisfiedBy(db.Subset(kept));
  return out;
}

std::vector<Operation> JustifiedOperations(const Database& db,
                                           const PairwiseConstraints& keys,
                                           const std::vector<bool>& present) {
  std::vector<Operation> ops;
  for (FactId f = 0; f < db.size(); ++f) {
    if (!present[f]) continue;
    for (FactId g = f + 1; g < db.size(); ++g) {
      if (!present[g]) continue;
      if (!keys.ViolatingPair(db.fact(f), db.fact(g))) continue;
      ops.push_back(Operation::Single(f));
      ops.push_back(Operation::Single(g));
      ops.push_back(Operation::Pair(f, g));
    }
  }
  std::sort(ops.begin(), ops.end());
  ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  return ops;
}

namespace {

void EnumerateRec(const Database& db, const PairwiseConstraints& keys,
                  std::vector<bool>& present, RepairingSequence& prefix,
                  size_t limit, std::vector<RepairingSequence>* out) {
  if (limit != 0 && out->size() >= limit) return;
  std::vector<Operation> ops = JustifiedOperations(db, keys, present);
  if (ops.empty()) {
    // No justified operation: the current database is consistent (under
    // primary keys any violation yields a justified operation), so the
    // prefix is a complete repairing sequence.
    out->push_back(prefix);
    return;
  }
  for (const Operation& op : ops) {
    for (FactId f : op.facts) present[f] = false;
    prefix.push_back(op);
    EnumerateRec(db, keys, present, prefix, limit, out);
    prefix.pop_back();
    for (FactId f : op.facts) present[f] = true;
    if (limit != 0 && out->size() >= limit) return;
  }
}

}  // namespace

std::vector<RepairingSequence> EnumerateCompleteSequences(
    const Database& db, const PairwiseConstraints& keys, size_t limit) {
  std::vector<RepairingSequence> out;
  std::vector<bool> present(db.size(), true);
  RepairingSequence prefix;
  EnumerateRec(db, keys, present, prefix, limit, &out);
  return out;
}

std::string SequenceToString(const Database& db,
                             const RepairingSequence& seq) {
  std::string out;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += " ; ";
    out += "-{";
    for (size_t j = 0; j < seq[i].facts.size(); ++j) {
      if (j > 0) out += ", ";
      out += FactToString(db.schema(), db.fact(seq[i].facts[j]));
    }
    out += '}';
  }
  return out;
}

}  // namespace uocqa
