// Delta-maintainable denominators |ORep(D,Sigma)| and |CRS(D,Sigma)|.
//
// Both denominators factor over relations:
//   |ORep| is a plain product of per-block factors, so grouping the factors
//   by relation changes nothing;
//   |CRS| is the coefficient sum of an interleaving-convolution of per-block
//   length polynomials, and InterleavePolys is the product of exponential
//   generating functions — associative and commutative — so the per-block
//   chain can be regrouped into per-relation polynomials and combined in any
//   order without changing a single coefficient.
//
// RelationDenominators caches one entry per relation (its fact count, its
// |ORep| factor, its CRS length polynomial). On ingest, Update recomputes
// entries only for the relations the delta touched and reports which entries
// actually changed — a conflict-free insertion (a fact forming a new
// singleton block) contributes factor 1 and polynomial {1}, leaving its
// relation's entry and both totals bit-for-bit unchanged. That "changed"
// signal is what drives the service layer's conflict-epoch invalidation.

#ifndef UOCQA_REPAIRS_DENOMINATORS_H_
#define UOCQA_REPAIRS_DENOMINATORS_H_

#include <vector>

#include "base/bigint.h"
#include "db/blocks.h"
#include "db/database.h"
#include "repairs/counting.h"

namespace uocqa {

/// The denominator contribution of one relation's blocks.
struct RelationDenominatorEntry {
  size_t fact_count = 0;          ///< facts of this relation
  BigInt orep_factor = BigInt(1); ///< prod over its blocks of (|B|==1?1:|B|+1)
  LenPoly crs_poly = {BigInt(1)}; ///< interleave of its blocks' total polys

  /// Equality of the *denominator-relevant* state: the conflict structure.
  /// fact_count is deliberately excluded — adding conflict-free facts grows
  /// the relation without changing either denominator.
  bool SameCounts(const RelationDenominatorEntry& o) const;
};

/// Per-relation denominator entries plus the combined |ORep| and |CRS|
/// totals. Immutable once built; the live-instance snapshots share one per
/// epoch.
class RelationDenominators {
 public:
  /// Full computation from a block partition of `db`.
  static RelationDenominators Compute(const Database& db,
                                      const BlockPartition& blocks);

  /// Delta maintenance: entries of relations untouched since `first_new`
  /// are copied from `prev`; touched relations are recomputed from `blocks`.
  /// If `changed` is non-null it receives the ids of touched relations whose
  /// entry's conflict structure actually changed. When no entry changed, the
  /// totals are copied from `prev` (bit-identical, no recombination); else
  /// they are recombined across all relations.
  static RelationDenominators Update(const RelationDenominators& prev,
                                     const Database& db,
                                     const BlockPartition& blocks,
                                     FactId first_new,
                                     std::vector<RelationId>* changed);

  /// |ORep(D, Sigma)|, equal to CountOperationalRepairs(blocks).
  const BigInt& orep() const { return orep_; }
  /// |CRS(D, Sigma)|, equal to CountCompleteSequencesExact(blocks).
  const BigInt& crs() const { return crs_; }

  size_t relation_count() const { return entries_.size(); }
  const RelationDenominatorEntry& entry(RelationId rel) const {
    return entries_[rel];
  }

 private:
  static RelationDenominatorEntry ComputeEntry(const Database& db,
                                               const BlockPartition& blocks,
                                               RelationId rel);
  void CombineTotals();

  std::vector<RelationDenominatorEntry> entries_;
  BigInt orep_ = BigInt(1);
  BigInt crs_ = BigInt(1);
};

}  // namespace uocqa

#endif  // UOCQA_REPAIRS_DENOMINATORS_H_
