// Relative frequencies under *arbitrary pairwise constraints* (functional
// dependencies, mixed constraint sets) via exhaustive sequence enumeration.
//
// The paper's polynomial denominators and automata exploit primary keys'
// block independence; §6 leaves general FDs open. This module makes the
// operational semantics itself executable for any PairwiseConstraints:
// it enumerates the complete repairing sequences (exponential!), derives
// ORep as the set of distinct results, and computes RF_ur / RF_us by
// definition — a ground-truth oracle for small instances and a playground
// for the open FD case.

#ifndef UOCQA_REPAIRS_PAIRWISE_RF_H_
#define UOCQA_REPAIRS_PAIRWISE_RF_H_

#include <cstddef>

#include "base/status.h"
#include "db/constraints.h"
#include "db/database.h"
#include "query/cq.h"

namespace uocqa {

struct PairwiseRf {
  size_t repairs = 0;              ///< |ORep(D, Sigma)|
  size_t repairs_entailing = 0;    ///< numerator of RF_ur
  size_t sequences = 0;            ///< |CRS(D, Sigma)|
  size_t sequences_entailing = 0;  ///< numerator of RF_us

  double ur() const {
    return repairs == 0 ? 0.0
                        : static_cast<double>(repairs_entailing) /
                              static_cast<double>(repairs);
  }
  double us() const {
    return sequences == 0 ? 0.0
                          : static_cast<double>(sequences_entailing) /
                                static_cast<double>(sequences);
  }
};

/// Enumerates all complete repairing sequences of (db, constraints) and
/// evaluates the query on each result. Fails with OutOfRange if more than
/// `max_sequences` sequences exist (0 = unlimited).
Result<PairwiseRf> ComputePairwiseRf(const Database& db,
                                     const PairwiseConstraints& constraints,
                                     const ConjunctiveQuery& query,
                                     const std::vector<Value>& answer_tuple,
                                     size_t max_sequences = 1000000);

}  // namespace uocqa

#endif  // UOCQA_REPAIRS_PAIRWISE_RF_H_
