#include "repairs/pairwise_rf.h"

#include <set>

#include "query/eval.h"
#include "repairs/operations.h"

namespace uocqa {

Result<PairwiseRf> ComputePairwiseRf(const Database& db,
                                     const PairwiseConstraints& constraints,
                                     const ConjunctiveQuery& query,
                                     const std::vector<Value>& answer_tuple,
                                     size_t max_sequences) {
  std::vector<RepairingSequence> sequences =
      EnumerateCompleteSequences(db, constraints,
                                 max_sequences == 0 ? 0 : max_sequences + 1);
  if (max_sequences != 0 && sequences.size() > max_sequences) {
    return Status::OutOfRange("more than " + std::to_string(max_sequences) +
                              " complete repairing sequences");
  }
  PairwiseRf out;
  out.sequences = sequences.size();
  std::set<std::vector<FactId>> repairs;
  std::set<std::vector<FactId>> entailing_repairs;
  for (const RepairingSequence& s : sequences) {
    std::vector<FactId> kept = ApplySequence(db, s);
    bool entails;
    auto it = entailing_repairs.find(kept);
    if (it != entailing_repairs.end()) {
      entails = true;
    } else if (repairs.find(kept) != repairs.end()) {
      entails = false;
    } else {
      Database repair = db.Subset(kept);
      QueryEvaluator eval(repair, query);
      entails = eval.Entails(answer_tuple);
      if (entails) entailing_repairs.insert(kept);
    }
    repairs.insert(kept);
    if (entails) ++out.sequences_entailing;
  }
  out.repairs = repairs.size();
  out.repairs_entailing = entailing_repairs.size();
  return out;
}

}  // namespace uocqa
