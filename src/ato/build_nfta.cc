#include "ato/build_nfta.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <optional>
#include <set>

#include "automata/exact_count.h"

namespace uocqa {

namespace {

constexpr size_t kMaxTupleSetSize = 1u << 18;

using TupleSet = std::vector<std::vector<NftaState>>;

void Dedup(TupleSet* set) {
  std::sort(set->begin(), set->end());
  set->erase(std::unique(set->begin(), set->end()), set->end());
}

/// Exact maximum output-tree size over all computations: labeling nodes
/// count 1; existential nodes take the max over successors, universal nodes
/// the sum.
size_t MaxOutputSize(const ComputationDag& dag) {
  std::vector<int64_t> memo(dag.size(), -1);
  const Ato& ato = dag.ato();
  std::function<int64_t(size_t)> rec = [&](size_t node) -> int64_t {
    if (memo[node] >= 0) return memo[node];
    const AtoConfig& cfg = dag.config(node);
    int64_t below = 0;
    if (!dag.successors(node).empty()) {
      if (!ato.IsTerminal(cfg.state) && ato.IsUniversal(cfg.state)) {
        for (size_t c : dag.successors(node)) below += rec(c);
      } else {
        for (size_t c : dag.successors(node)) {
          below = std::max(below, rec(c));
        }
      }
    }
    memo[node] = below + (ato.IsLabeling(cfg.state) ? 1 : 0);
    return memo[node];
  };
  return static_cast<size_t>(rec(dag.root()));
}

}  // namespace

Result<AtoNfta> BuildNftaFromDag(const ComputationDag& dag) {
  const Ato& ato = dag.ato();
  AtoNfta out;
  Nfta& nfta = out.nfta;

  std::vector<std::optional<TupleSet>> memo(dag.size());
  Status status = Status::OK();

  // Algorithm 4 (Process), memoized over DAG nodes (the set Q).
  std::function<TupleSet(size_t)> process = [&](size_t node) -> TupleSet {
    if (memo[node].has_value()) return *memo[node];
    if (!status.ok()) return {};
    const AtoConfig& cfg = dag.config(node);
    bool labeling = ato.IsLabeling(cfg.state);
    TupleSet result;

    if (dag.successors(node).empty()) {
      // Leaf configuration (accepting or rejecting).
      if (labeling) {
        NftaState sc = nfta.AddState();
        if (cfg.state == ato.accept()) {
          nfta.AddTransition(sc, nfta.InternSymbol(cfg.label), {});
        }
        result = {{sc}};
      } else if (cfg.state == ato.accept()) {
        result = {{}};
      } else {
        result = {};
      }
      memo[node] = result;
      return result;
    }

    // Children in the fixed order (line 13).
    std::vector<TupleSet> parts;
    for (size_t child : dag.successors(node)) {
      parts.push_back(process(child));
      if (!status.ok()) return {};
    }
    if (!ato.IsUniversal(cfg.state)) {
      for (TupleSet& p : parts) {
        result.insert(result.end(), p.begin(), p.end());
      }
      Dedup(&result);
    } else {
      // ⊗-merge: concatenated Cartesian product.
      result = {{}};
      for (TupleSet& p : parts) {
        TupleSet next;
        if (result.size() * std::max<size_t>(p.size(), 1) >
            kMaxTupleSetSize) {
          status = Status::OutOfRange(
              "⊗-merge exceeded the tuple budget (machine not "
              "well-behaved: too many universal configurations per "
              "labelled-free path)");
          return {};
        }
        for (const auto& a : result) {
          for (const auto& b : p) {
            std::vector<NftaState> merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
          }
        }
        result = std::move(next);
        if (result.empty()) break;
      }
      Dedup(&result);
    }

    if (labeling) {
      NftaState sc = nfta.AddState();
      NftaSymbol z = nfta.InternSymbol(cfg.label);
      for (const auto& tuple : result) {
        nfta.AddTransition(sc, z, tuple);
      }
      result = {{sc}};
    }
    memo[node] = result;
    return result;
  };

  TupleSet root_set = process(dag.root());
  UOCQA_RETURN_IF_ERROR(status);
  // The initial state is labeling (Def. 4.1), so Process(root) = {(s)}.
  if (root_set.size() != 1 || root_set[0].size() != 1) {
    return Status::Internal("Process(root) did not return a single state");
  }
  nfta.SetInitial(root_set[0][0]);
  out.max_tree_size = std::max<size_t>(1, MaxOutputSize(dag));
  // Warm the flattened view: every consumer of the artifact (exact counter,
  // FPRAS, membership probes) runs on it, and warming here keeps the
  // automaton safe to hand to concurrent readers as-is.
  nfta.EnsureCompiled();
  return out;
}

Result<AtoNfta> BuildNftaFromAto(const Ato& ato, const std::string& input,
                                 const AtoLimits& limits) {
  UOCQA_ASSIGN_OR_RETURN(ComputationDag dag,
                         ComputationDag::Build(ato, input, limits));
  return BuildNftaFromDag(dag);
}

Result<BigInt> SpanExact(const Ato& ato, const std::string& input,
                         const AtoLimits& limits) {
  UOCQA_ASSIGN_OR_RETURN(AtoNfta compiled,
                         BuildNftaFromAto(ato, input, limits));
  ExactTreeCounter counter(compiled.nfta);
  return counter.CountUpTo(compiled.max_tree_size);
}

Result<std::vector<LabeledTree>> EnumerateValidOutputs(
    const ComputationDag& dag, Nfta* nfta_for_symbols, size_t max_outputs) {
  const Ato& ato = dag.ato();
  Status status = Status::OK();
  using Forest = std::vector<LabeledTree>;
  std::vector<std::optional<std::vector<Forest>>> memo(dag.size());

  // g(node): possible forests of output nodes emitted at-or-below `node`
  // across *accepting* computations of the subtree.
  std::function<std::vector<Forest>(size_t)> g =
      [&](size_t node) -> std::vector<Forest> {
    if (memo[node].has_value()) return *memo[node];
    if (!status.ok()) return {};
    const AtoConfig& cfg = dag.config(node);
    bool labeling = ato.IsLabeling(cfg.state);
    std::vector<Forest> below;

    if (dag.successors(node).empty()) {
      if (cfg.state == ato.accept()) {
        below = {Forest{}};
      } else {
        below = {};
      }
    } else if (!ato.IsUniversal(cfg.state)) {
      for (size_t child : dag.successors(node)) {
        std::vector<Forest> sub = g(child);
        below.insert(below.end(), sub.begin(), sub.end());
      }
    } else {
      below = {Forest{}};
      for (size_t child : dag.successors(node)) {
        std::vector<Forest> sub = g(child);
        std::vector<Forest> next;
        if (below.size() * std::max<size_t>(sub.size(), 1) > max_outputs) {
          status = Status::OutOfRange("too many outputs to enumerate");
          return {};
        }
        for (const Forest& a : below) {
          for (const Forest& b : sub) {
            Forest merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
          }
        }
        below = std::move(next);
        if (below.empty()) break;
      }
    }

    std::vector<Forest> result;
    if (labeling) {
      NftaSymbol z = nfta_for_symbols->InternSymbol(cfg.label);
      for (Forest& f : below) {
        result.push_back(Forest{LabeledTree(z, std::move(f))});
      }
    } else {
      result = std::move(below);
    }
    // Deduplicate forests (distinct computations may emit equal outputs).
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    if (result.size() > max_outputs) {
      status = Status::OutOfRange("too many outputs to enumerate");
      return {};
    }
    memo[node] = result;
    return result;
  };

  std::vector<Forest> roots = g(dag.root());
  UOCQA_RETURN_IF_ERROR(status);
  std::vector<LabeledTree> out;
  for (Forest& f : roots) {
    if (f.size() != 1) {
      return Status::Internal("root forest is not a single tree");
    }
    out.push_back(std::move(f[0]));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace uocqa
