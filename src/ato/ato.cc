#include "ato/ato.h"

#include <cassert>

namespace uocqa {

AtoState Ato::AddState(const std::string& name, AtoQuantifier quantifier,
                       bool labeling) {
  AtoState s = static_cast<AtoState>(names_.size());
  names_.push_back(name);
  quantifier_.push_back(quantifier);
  labeling_.push_back(labeling);
  return s;
}

void Ato::SetInitial(AtoState s) {
  assert(labeling_[s] && "the initial state must be labeling (Def. 4.1)");
  initial_ = s;
}

void Ato::AddBranch(AtoState state, char input, char work, AtoBranch branch) {
  assert(state < names_.size());
  assert(branch.next < names_.size());
  delta_[Key(state, input, work)].push_back(std::move(branch));
}

const std::vector<AtoBranch>& Ato::Branches(AtoState state, char input,
                                            char work) const {
  auto it = delta_.find(Key(state, input, work));
  if (it == delta_.end()) return empty_;
  return it->second;
}

}  // namespace uocqa
