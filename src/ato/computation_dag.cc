#include "ato/computation_dag.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace uocqa {

namespace {

/// Applies one branch to a configuration; returns false if a limit or the
/// left marker is violated.
bool Step(const Ato& ato, const std::string& tape, const AtoConfig& from,
          const AtoBranch& branch, const AtoLimits& limits, AtoConfig* out) {
  (void)ato;
  out->state = branch.next;
  out->work = from.work;
  // Write at the working head.
  assert(from.work_head < out->work.size() ||
         from.work_head == out->work.size());
  if (from.work_head >= out->work.size()) {
    out->work.resize(from.work_head + 1, kAtoBlank);
  }
  out->work[from.work_head] = branch.work_write;
  // Label tape: replace after a labeling state, append otherwise.
  if (ato.IsLabeling(from.state)) {
    out->label = branch.label_append;
  } else {
    out->label = from.label + branch.label_append;
  }
  // Head moves (cannot move left of the marker, cell 0).
  int ih = static_cast<int>(from.input_head) + branch.input_move;
  int wh = static_cast<int>(from.work_head) + branch.work_move;
  if (ih < 0 || wh < 0) return false;
  if (static_cast<size_t>(ih) > tape.size()) return false;  // beyond blanks
  out->input_head = static_cast<uint32_t>(ih);
  out->work_head = static_cast<uint32_t>(wh);
  if (static_cast<size_t>(wh) >= out->work.size()) {
    out->work.resize(wh + 1, kAtoBlank);
  }
  // Trim trailing blanks so configurations are canonical.
  while (out->work.size() > out->work_head + 1 &&
         out->work.size() > 1 && out->work.back() == kAtoBlank) {
    out->work.pop_back();
  }
  if (out->work.size() > limits.max_work_tape ||
      out->label.size() > limits.max_label_tape) {
    return false;
  }
  return true;
}

}  // namespace

Result<ComputationDag> ComputationDag::Build(const Ato& ato,
                                             const std::string& input,
                                             const AtoLimits& limits) {
  ComputationDag dag;
  dag.ato_ = &ato;
  const std::string tape = std::string(1, kAtoMarker) + input;

  std::unordered_map<AtoConfig, size_t, AtoConfigHash> index;
  AtoConfig init;
  init.state = ato.initial();
  init.work = std::string(1, kAtoMarker);
  init.label.clear();
  init.input_head = 1;  // cell 0 holds the left marker (Def. 4.1)
  init.work_head = 1;
  // Working tape always has the marker plus at least one blank cell.
  init.work.push_back(kAtoBlank);

  dag.configs_.push_back(init);
  dag.successors_.emplace_back();
  index.emplace(init, 0);

  // Iterative DFS with colors for cycle detection.
  enum Color : uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color{kWhite};

  Status status = Status::OK();
  std::function<void(size_t)> dfs = [&](size_t node) {
    if (!status.ok()) return;
    color[node] = kGray;
    const AtoConfig cfg = dag.configs_[node];  // copy: vector may grow
    if (!ato.IsTerminal(cfg.state)) {
      char ic = cfg.input_head < tape.size() ? tape[cfg.input_head]
                                             : kAtoBlank;
      char wc = cfg.work_head < cfg.work.size() ? cfg.work[cfg.work_head]
                                                : kAtoBlank;
      for (const AtoBranch& branch : ato.Branches(cfg.state, ic, wc)) {
        AtoConfig next;
        if (!Step(ato, tape, cfg, branch, limits, &next)) {
          status = Status::OutOfRange(
              "ATO exceeded tape limits or fell off the input");
          return;
        }
        size_t child;
        auto it = index.find(next);
        if (it != index.end()) {
          child = it->second;
        } else {
          if (dag.configs_.size() >= limits.max_configurations) {
            status = Status::OutOfRange("too many ATO configurations");
            return;
          }
          child = dag.configs_.size();
          dag.configs_.push_back(next);
          dag.successors_.emplace_back();
          index.emplace(std::move(next), child);
          color.push_back(kWhite);
        }
        dag.successors_[node].push_back(child);
        if (color[child] == kGray) {
          status = Status::FailedPrecondition(
              "ATO computation graph has a cycle (machine not "
              "well-behaved)");
          return;
        }
        if (color[child] == kWhite) dfs(child);
        if (!status.ok()) return;
      }
    }
    color[node] = kBlack;
  };
  dfs(0);
  UOCQA_RETURN_IF_ERROR(status);
  return dag;
}

size_t ComputationDag::LongestPath() const {
  std::vector<int64_t> memo(configs_.size(), -1);
  std::function<int64_t(size_t)> rec = [&](size_t node) -> int64_t {
    if (memo[node] >= 0) return memo[node];
    int64_t best = 0;
    for (size_t child : successors_[node]) {
      best = std::max(best, 1 + rec(child));
    }
    memo[node] = best;
    return best;
  };
  return static_cast<size_t>(rec(0));
}

}  // namespace uocqa
