// Alternating Turing machines with output (ATO) — paper §4, Definition 4.1.
//
// An ATO has a read-only input tape, a read-write working tape, and a
// write-only labeling tape. Some states are *labeling* states: when the
// machine enters one, it emits a node of the output tree labelled with the
// labeling tape's content, which is then erased (formally: a transition out
// of a labeling state replaces the labeling tape, any other transition
// appends). Outputs of a computation are node-labelled rooted trees whose
// nodes are the labeling configurations and whose edges are labelled-free
// paths (Definition 4.2/4.3). span_M(w) counts the *distinct valid* outputs
// (outputs of accepting computations); SpanTL collects span_M for
// well-behaved ATOs (Definition 4.4).

#ifndef UOCQA_ATO_ATO_H_
#define UOCQA_ATO_ATO_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/hashing.h"
#include "base/status.h"

namespace uocqa {

using AtoState = uint32_t;

constexpr char kAtoBlank = '_';
constexpr char kAtoMarker = '>';

enum class AtoQuantifier : uint8_t { kExistential, kUniversal };

/// One nondeterministic branch of delta(state, input char, work char).
struct AtoBranch {
  AtoState next = 0;
  int input_move = 0;           ///< -1, 0, +1
  int work_move = 0;            ///< -1, 0, +1
  char work_write = kAtoBlank;  ///< written at the working head
  std::string label_append;     ///< appended to (or starting) the label tape
};

class Ato {
 public:
  /// Adds a state. `labeling` marks membership in S_L.
  AtoState AddState(const std::string& name,
                    AtoQuantifier quantifier = AtoQuantifier::kExistential,
                    bool labeling = false);

  void SetInitial(AtoState s);
  void SetAccept(AtoState s) { accept_ = s; }
  void SetReject(AtoState s) { reject_ = s; }

  AtoState initial() const { return initial_; }
  AtoState accept() const { return accept_; }
  AtoState reject() const { return reject_; }

  bool IsLabeling(AtoState s) const { return labeling_[s]; }
  bool IsUniversal(AtoState s) const {
    return quantifier_[s] == AtoQuantifier::kUniversal;
  }
  bool IsTerminal(AtoState s) const { return s == accept_ || s == reject_; }
  const std::string& StateName(AtoState s) const { return names_[s]; }
  size_t state_count() const { return names_.size(); }

  /// Registers delta(state, input, work) ∋ branch. The branch order is the
  /// fixed successor order used by the computation DAG (and hence by
  /// BuildNFTA's line-13 ordering).
  void AddBranch(AtoState state, char input, char work, AtoBranch branch);

  const std::vector<AtoBranch>& Branches(AtoState state, char input,
                                         char work) const;

 private:
  AtoState initial_ = 0;
  AtoState accept_ = 0;
  AtoState reject_ = 0;
  std::vector<std::string> names_;
  std::vector<AtoQuantifier> quantifier_;
  std::vector<bool> labeling_;
  // delta keyed by (state, input char, work char).
  std::unordered_map<uint64_t, std::vector<AtoBranch>> delta_;
  std::vector<AtoBranch> empty_;

  static uint64_t Key(AtoState s, char i, char w) {
    return (static_cast<uint64_t>(s) << 16) |
           (static_cast<uint64_t>(static_cast<uint8_t>(i)) << 8) |
           static_cast<uint64_t>(static_cast<uint8_t>(w));
  }
};

/// A configuration (s, x, y, z, hx, hy) of an ATO on a fixed input x.
/// The input tape is stored once in the DAG, not per configuration.
struct AtoConfig {
  AtoState state = 0;
  std::string work;   ///< starts with the left marker
  std::string label;  ///< labeling tape content z
  uint32_t input_head = 1;
  uint32_t work_head = 1;

  bool operator==(const AtoConfig& o) const {
    return state == o.state && work == o.work && label == o.label &&
           input_head == o.input_head && work_head == o.work_head;
  }
};

struct AtoConfigHash {
  size_t operator()(const AtoConfig& c) const {
    size_t seed = std::hash<uint32_t>{}(c.state);
    HashCombine(&seed, std::hash<std::string>{}(c.work));
    HashCombine(&seed, std::hash<std::string>{}(c.label));
    HashCombine(&seed, c.input_head);
    HashCombine(&seed, c.work_head);
    return seed;
  }
};

/// Resource limits enforced while exploring configurations (the
/// "well-behaved" envelope of Definition 4.4, made concrete).
struct AtoLimits {
  size_t max_configurations = 1u << 20;
  size_t max_work_tape = 64;
  size_t max_label_tape = 64;
};

}  // namespace uocqa

#endif  // UOCQA_ATO_ATO_H_
