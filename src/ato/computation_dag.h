// The computation DAG of an ATO on an input (paper Definition D.3): the DAG
// over all configurations reachable from the initial configuration, with an
// edge per successor. It compactly represents every computation of M on w;
// BuildNFTA traverses it to compile the span function into an NFTA.

#ifndef UOCQA_ATO_COMPUTATION_DAG_H_
#define UOCQA_ATO_COMPUTATION_DAG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ato/ato.h"
#include "base/status.h"

namespace uocqa {

class ComputationDag {
 public:
  /// Explores all configurations of `ato` on `input` (input given without
  /// the left marker). Fails if the machine loops (a cycle makes the
  /// "computation DAG" ill-defined and the machine non-well-behaved), or if
  /// a resource limit is exceeded.
  static Result<ComputationDag> Build(const Ato& ato, const std::string& input,
                                      const AtoLimits& limits = {});

  size_t size() const { return configs_.size(); }
  size_t root() const { return 0; }
  const AtoConfig& config(size_t i) const { return configs_[i]; }
  /// Successor node ids in the fixed branch order.
  const std::vector<size_t>& successors(size_t i) const {
    return successors_[i];
  }

  const Ato& ato() const { return *ato_; }

  /// Longest path length (edges) from the root — bounds output tree sizes.
  size_t LongestPath() const;

 private:
  const Ato* ato_ = nullptr;
  std::vector<AtoConfig> configs_;
  std::vector<std::vector<size_t>> successors_;
};

}  // namespace uocqa

#endif  // UOCQA_ATO_COMPUTATION_DAG_H_
