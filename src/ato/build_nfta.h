// BuildNFTA (paper Algorithms 3 and 4): compiles the computation DAG of an
// ATO M on input w into an NFTA A with span_M(w) = |L(A)| (Lemma D.4), the
// key step in proving that every SpanTL function admits an FPRAS
// (Theorem 4.6 via Theorem D.1).
//
// Process(C) returns a set of state tuples:
//  * labeling configurations contribute a fresh automaton state s_C with a
//    transition (s_C, z, (s_1..s_l)) per tuple, and return {(s_C)};
//  * existential configurations return the union of their successors' sets;
//  * universal configurations return the ⊗-merge (concatenated Cartesian
//    product) — bounded in size because well-behaved machines have O(1)
//    universal configurations per labelled-free path.

#ifndef UOCQA_ATO_BUILD_NFTA_H_
#define UOCQA_ATO_BUILD_NFTA_H_

#include <string>

#include "ato/computation_dag.h"
#include "automata/nfta.h"
#include "base/bigint.h"
#include "base/status.h"

namespace uocqa {

struct AtoNfta {
  Nfta nfta;
  /// Upper bound on accepted tree sizes (≤ number of labeling
  /// configurations on any root-to-leaf path ≤ longest DAG path + 1).
  size_t max_tree_size = 0;
};

/// Algorithm 3 over an already-built computation DAG.
Result<AtoNfta> BuildNftaFromDag(const ComputationDag& dag);

/// Convenience: build the DAG and compile.
Result<AtoNfta> BuildNftaFromAto(const Ato& ato, const std::string& input,
                                 const AtoLimits& limits = {});

/// span_M(w) computed exactly: BuildNFTA + distinct-tree counting.
Result<BigInt> SpanExact(const Ato& ato, const std::string& input,
                         const AtoLimits& limits = {});

/// Brute-force span for validation: enumerates accepting computations and
/// collects distinct outputs (exponential; small machines only). Trees are
/// returned with symbols interned in `nfta_for_symbols` so they can be
/// cross-checked against the compiled automaton.
Result<std::vector<LabeledTree>> EnumerateValidOutputs(
    const ComputationDag& dag, Nfta* nfta_for_symbols, size_t max_outputs);

}  // namespace uocqa

#endif  // UOCQA_ATO_BUILD_NFTA_H_
