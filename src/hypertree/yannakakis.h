// Yannakakis-style evaluation of acyclic conjunctive queries over a join
// tree: bottom-up semi-join reduction, then a top-down pass, answering
// Boolean entailment and counting homomorphisms in polynomial time
// (backtracking evaluation in eval.h is exponential in |Q| in the worst
// case — this is the combined-complexity-friendly path for GHW_1).

#ifndef UOCQA_HYPERTREE_YANNAKAKIS_H_
#define UOCQA_HYPERTREE_YANNAKAKIS_H_

#include <cstdint>
#include <vector>

#include "base/bigint.h"
#include "base/status.h"
#include "db/database.h"
#include "hypertree/decomposition.h"
#include "query/cq.h"

namespace uocqa {

/// Evaluator over a width-1 decomposition (join tree: |lambda(v)| == 1 for
/// every vertex, one vertex per atom).
class YannakakisEvaluator {
 public:
  /// `join_tree` must be a validated width-1, complete decomposition of
  /// `query` covering every atom exactly once (BuildJoinTree produces
  /// this).
  static Result<YannakakisEvaluator> Create(
      const Database& db, const ConjunctiveQuery& query,
      const HypertreeDecomposition& join_tree);

  /// c̄ ∈ Q(D)?
  bool Entails(const std::vector<Value>& answer_tuple) const;

  /// |{h : Q -> D, h(x̄) = c̄}| — number of homomorphisms, exact, in
  /// polynomial time (BigInt; counts can be |D|^|vars|).
  BigInt CountHomomorphisms(const std::vector<Value>& answer_tuple) const;

 private:
  struct Node {
    size_t atom_idx = 0;
    std::vector<uint32_t> parent_join_cols;  // positions in parent's tuples
    std::vector<uint32_t> own_join_cols;     // matching positions here
    std::vector<DecompVertex> children;
  };

  const Database* db_ = nullptr;
  const ConjunctiveQuery* query_ = nullptr;
  std::vector<Node> nodes_;                 // indexed by decomposition vertex
  std::vector<DecompVertex> topo_;          // root first
  DecompVertex root_ = kInvalidVertex;
};

/// Convenience: build the join tree (GYO) and evaluate once.
Result<bool> AcyclicEntails(const Database& db, const ConjunctiveQuery& query,
                            const std::vector<Value>& answer_tuple);

/// Convenience: exact homomorphism count for an acyclic query.
Result<BigInt> AcyclicCountHomomorphisms(
    const Database& db, const ConjunctiveQuery& query,
    const std::vector<Value>& answer_tuple);

}  // namespace uocqa

#endif  // UOCQA_HYPERTREE_YANNAKAKIS_H_
