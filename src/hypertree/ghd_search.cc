#include "hypertree/ghd_search.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "hypertree/gyo.h"

namespace uocqa {

namespace {

using Mask = uint64_t;  // bitset over atoms or over (dense) variables

/// A decomposition subtree produced by the search.
struct SearchNode {
  Mask chi = 0;     // variable mask
  Mask lambda = 0;  // atom mask
  std::vector<std::unique_ptr<SearchNode>> children;
};

class Searcher {
 public:
  Searcher(const ConjunctiveQuery& query, size_t k) : query_(query), k_(k) {
    // Dense ids for non-answer variables.
    std::unordered_set<VarId> answers(query.answer_vars().begin(),
                                      query.answer_vars().end());
    for (VarId v : query.AllVariables()) {
      if (answers.find(v) == answers.end()) {
        var_ids_.push_back(v);
      }
    }
    atom_vars_.resize(query.atom_count(), 0);
    for (size_t i = 0; i < query.atom_count(); ++i) {
      for (VarId v : query.atoms()[i].Variables()) {
        auto it = std::find(var_ids_.begin(), var_ids_.end(), v);
        if (it != var_ids_.end()) {
          atom_vars_[i] |= Mask{1} << (it - var_ids_.begin());
        }
      }
    }
    // Candidate lambda sets: all non-empty subsets of atoms of size <= k.
    std::vector<size_t> current;
    EnumerateLambdas(0, current);
  }

  bool TooManyVars() const { return var_ids_.size() > 64; }

  /// Attempts the full search; nullptr on failure.
  std::unique_ptr<SearchNode> Run() {
    std::vector<std::unique_ptr<SearchNode>> all = RunAll(1);
    return all.empty() ? nullptr : std::move(all[0]);
  }

  /// Up to `max_candidates` decompositions, one per root lambda that admits
  /// a complete decomposition, in lambda enumeration order. The first
  /// element is exactly what Run() finds: both walk lambdas_ in order and
  /// take the first success, and subtree memoization below the root is
  /// shared, so candidate 0 preserves the legacy FindGhdOfWidth output.
  std::vector<std::unique_ptr<SearchNode>> RunAll(size_t max_candidates) {
    std::vector<std::unique_ptr<SearchNode>> out;
    if (max_candidates == 0) return out;
    Mask all_atoms = 0;
    for (size_t i = 0; i < query_.atom_count(); ++i) {
      if (atom_vars_[i] != 0) all_atoms |= Mask{1} << i;
    }
    if (all_atoms == 0) {
      // No atom has variables: a single node with empty bag covering one
      // atom (lambda must be non-empty only if there are atoms; take atom 0
      // if it exists). There is only this one shape.
      auto node = std::make_unique<SearchNode>();
      if (query_.atom_count() > 0) node->lambda = 1;
      out.push_back(std::move(node));
      return out;
    }
    // Root level is enumerated un-memoized with a pinned lambda: the memo's
    // in-progress/failure marker for (all_atoms, 0) would otherwise poison
    // the search for alternative roots. Recursion into the root key cannot
    // occur (child components are strictly smaller than their parent).
    Mask comp_vars = VarsOf(all_atoms);
    for (size_t li = 0; li < lambdas_.size() && out.size() < max_candidates;
         ++li) {
      auto root = TryLambda(all_atoms, /*connector=*/0, comp_vars, li);
      if (root == nullptr) continue;
      AttachVarFreeAtoms(root.get());
      out.push_back(std::move(root));
    }
    return out;
  }

  /// Converts the search tree into a HypertreeDecomposition.
  void Materialize(const SearchNode* node, DecompVertex parent,
                   HypertreeDecomposition* out) const {
    std::vector<VarId> bag;
    for (size_t b = 0; b < var_ids_.size(); ++b) {
      if (node->chi & (Mask{1} << b)) bag.push_back(var_ids_[b]);
    }
    std::vector<size_t> lambda;
    for (size_t i = 0; i < query_.atom_count(); ++i) {
      if (node->lambda & (Mask{1} << i)) lambda.push_back(i);
    }
    DecompVertex v = out->AddNode(std::move(bag), std::move(lambda), parent);
    for (const auto& child : node->children) {
      Materialize(child.get(), v, out);
    }
  }

 private:
  void EnumerateLambdas(size_t start, std::vector<size_t>& current) {
    if (!current.empty()) {
      Mask lambda = 0;
      Mask vars = 0;
      for (size_t i : current) {
        lambda |= Mask{1} << i;
        vars |= atom_vars_[i];
      }
      lambdas_.push_back({lambda, vars});
    }
    if (current.size() == k_) return;
    for (size_t i = start; i < query_.atom_count(); ++i) {
      current.push_back(i);
      EnumerateLambdas(i + 1, current);
      current.pop_back();
    }
  }

  /// Splits `atoms` into connected components w.r.t. shared variables
  /// outside `chi`.
  std::vector<Mask> Components(Mask atoms, Mask chi) const {
    std::vector<Mask> out;
    Mask left = atoms;
    while (left != 0) {
      size_t seed = static_cast<size_t>(__builtin_ctzll(left));
      Mask comp = Mask{1} << seed;
      Mask comp_vars = atom_vars_[seed] & ~chi;
      bool grew = true;
      while (grew) {
        grew = false;
        Mask rest = left & ~comp;
        for (Mask m = rest; m != 0; m &= m - 1) {
          size_t i = static_cast<size_t>(__builtin_ctzll(m));
          if (atom_vars_[i] & comp_vars) {
            comp |= Mask{1} << i;
            comp_vars |= atom_vars_[i] & ~chi;
            grew = true;
          }
        }
      }
      out.push_back(comp);
      left &= ~comp;
    }
    return out;
  }

  Mask VarsOf(Mask atoms) const {
    Mask v = 0;
    for (Mask m = atoms; m != 0; m &= m - 1) {
      v |= atom_vars_[static_cast<size_t>(__builtin_ctzll(m))];
    }
    return v;
  }

  /// One step of the separator search: tries lambdas_[lambda_idx] as the
  /// bag covering `comp` under `connector`; nullptr if it does not admit a
  /// complete decomposition. `comp_vars` must equal VarsOf(comp).
  std::unique_ptr<SearchNode> TryLambda(Mask comp, Mask connector,
                                        Mask comp_vars, size_t lambda_idx) {
    const auto& [lambda, lambda_vars] = lambdas_[lambda_idx];
    if ((connector & ~lambda_vars) != 0) return nullptr;  // must cover it
    Mask chi = lambda_vars & (connector | comp_vars);
    // Atoms of the component fully covered by this bag.
    Mask covered = 0;
    for (Mask m = comp; m != 0; m &= m - 1) {
      size_t i = static_cast<size_t>(__builtin_ctzll(m));
      if ((atom_vars_[i] & ~chi) == 0) covered |= Mask{1} << i;
    }
    Mask rest = comp & ~covered;
    std::vector<Mask> comps = Components(rest, chi);
    // Progress requirement: every child component must be strictly
    // smaller than comp (prevents unbounded recursion).
    for (Mask c : comps) {
      if (c == comp) return nullptr;
    }
    std::vector<std::unique_ptr<SearchNode>> children;
    for (Mask c : comps) {
      auto child = Decompose(c, VarsOf(c) & chi);
      if (child == nullptr) return nullptr;
      children.push_back(std::move(child));
    }
    auto node = std::make_unique<SearchNode>();
    node->chi = chi;
    node->lambda = lambda;
    node->children = std::move(children);
    return node;
  }

  /// Recursive separator search: decomposes `comp` (atoms) whose interface
  /// to the parent bag is `connector` (variables). Memoized.
  std::unique_ptr<SearchNode> Decompose(Mask comp, Mask connector) {
    auto key = std::make_pair(comp, connector);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      if (!it->second) return nullptr;        // known failure (or in progress)
      return CloneTree(it->second.get());
    }
    memo_[key] = nullptr;  // mark in progress / failure by default
    Mask comp_vars = VarsOf(comp);
    for (size_t li = 0; li < lambdas_.size(); ++li) {
      auto node = TryLambda(comp, connector, comp_vars, li);
      if (node == nullptr) continue;
      memo_[key] = CloneTree(node.get());
      return node;
    }
    return nullptr;
  }

  static std::unique_ptr<SearchNode> CloneTree(const SearchNode* node) {
    auto out = std::make_unique<SearchNode>();
    out->chi = node->chi;
    out->lambda = node->lambda;
    for (const auto& c : node->children) out->children.push_back(CloneTree(c.get()));
    return out;
  }

  /// Atoms with no (non-answer) variables still need a covering vertex in a
  /// complete decomposition; hang them under the root.
  void AttachVarFreeAtoms(SearchNode* root) const {
    for (size_t i = 0; i < query_.atom_count(); ++i) {
      if (atom_vars_[i] == 0) {
        auto node = std::make_unique<SearchNode>();
        node->lambda = Mask{1} << i;
        root->children.push_back(std::move(node));
      }
    }
  }

  const ConjunctiveQuery& query_;
  size_t k_;
  std::vector<VarId> var_ids_;
  std::vector<Mask> atom_vars_;
  std::vector<std::pair<Mask, Mask>> lambdas_;  // (atom mask, var mask)
  std::map<std::pair<Mask, Mask>, std::unique_ptr<SearchNode>> memo_;
};

}  // namespace

Result<std::vector<HypertreeDecomposition>> FindGhdsOfWidth(
    const ConjunctiveQuery& query, size_t k, size_t max_candidates) {
  if (query.atom_count() == 0) {
    return Status::FailedPrecondition("query has no atoms");
  }
  if (query.atom_count() > 63) {
    return Status::InvalidArgument("too many atoms for mask-based search");
  }
  if (k == 0) return Status::InvalidArgument("width must be positive");
  if (max_candidates == 0) {
    return Status::InvalidArgument("max_candidates must be positive");
  }
  Searcher searcher(query, k);
  if (searcher.TooManyVars()) {
    return Status::InvalidArgument("more than 64 non-answer variables");
  }
  std::vector<std::unique_ptr<SearchNode>> trees =
      searcher.RunAll(max_candidates);
  if (trees.empty()) {
    return Status::NotFound("no GHD of width " + std::to_string(k) +
                            " found");
  }
  std::vector<HypertreeDecomposition> out;
  out.reserve(trees.size());
  for (const auto& tree : trees) {
    HypertreeDecomposition h;
    searcher.Materialize(tree.get(), kInvalidVertex, &h);
    UOCQA_RETURN_IF_ERROR(h.Validate(query));
    out.push_back(std::move(h));
  }
  return out;
}

Result<HypertreeDecomposition> FindGhdOfWidth(const ConjunctiveQuery& query,
                                              size_t k) {
  UOCQA_ASSIGN_OR_RETURN(std::vector<HypertreeDecomposition> all,
                         FindGhdsOfWidth(query, k, 1));
  return std::move(all[0]);
}

Result<GhwResult> ComputeGhw(const ConjunctiveQuery& query, size_t max_k) {
  for (size_t k = 1; k <= max_k; ++k) {
    Result<HypertreeDecomposition> h = FindGhdOfWidth(query, k);
    if (h.ok()) {
      GhwResult out;
      out.width = k;
      out.decomposition = std::move(h).value();
      return out;
    }
    if (h.status().code() != StatusCode::kNotFound) return h.status();
  }
  return Status::NotFound("no GHD of width <= " + std::to_string(max_k));
}

Result<HypertreeDecomposition> DecomposeQuery(const ConjunctiveQuery& query,
                                              size_t max_k) {
  if (IsAcyclic(query)) {
    Result<HypertreeDecomposition> jt = BuildJoinTree(query);
    if (jt.ok()) return jt;
  }
  UOCQA_ASSIGN_OR_RETURN(GhwResult r, ComputeGhw(query, max_k));
  return std::move(r.decomposition);
}

}  // namespace uocqa
