#include "hypertree/normal_form.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace uocqa {

namespace {

std::vector<VarId> NonAnswerVars(const ConjunctiveQuery& query,
                                 size_t atom_idx) {
  std::unordered_set<VarId> answers(query.answer_vars().begin(),
                                    query.answer_vars().end());
  std::vector<VarId> out;
  for (VarId v : query.atoms()[atom_idx].Variables()) {
    if (answers.find(v) == answers.end()) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Result<HypertreeDecomposition> CompleteDecomposition(
    const ConjunctiveQuery& query, const HypertreeDecomposition& h) {
  UOCQA_RETURN_IF_ERROR(h.Validate(query));
  // Copy h node-by-node in ≺T order (so parents precede children).
  HypertreeDecomposition out;
  std::unordered_map<DecompVertex, DecompVertex> remap;
  for (DecompVertex v : h.VerticesInOrder()) {
    const DecompositionNode& n = h.node(v);
    DecompVertex parent = n.parent == kInvalidVertex
                              ? kInvalidVertex
                              : remap.at(n.parent);
    remap[v] = out.AddNode(n.bag, n.lambda, parent);
  }
  for (size_t ai = 0; ai < query.atom_count(); ++ai) {
    if (out.MinimalCoveringVertex(query, ai) != kInvalidVertex) continue;
    std::vector<VarId> need = NonAnswerVars(query, ai);
    // Tree-decomposition condition (1) guarantees some bag contains `need`.
    DecompVertex host = kInvalidVertex;
    for (DecompVertex v = 0; v < out.size(); ++v) {
      const std::vector<VarId>& bag = out.node(v).bag;
      if (std::includes(bag.begin(), bag.end(), need.begin(), need.end())) {
        host = v;
        break;
      }
    }
    if (host == kInvalidVertex) {
      return Status::Internal(
          "no bag contains the variables of an uncovered atom");
    }
    out.AddNode(need, {ai}, host);
  }
  UOCQA_RETURN_IF_ERROR(out.Validate(query));
  if (!out.IsComplete(query)) {
    return Status::Internal("completion failed to produce a complete GHD");
  }
  return out;
}

Result<NormalFormInstance> ToNormalForm(const Database& db,
                                        const ConjunctiveQuery& query,
                                        const HypertreeDecomposition& h) {
  UOCQA_ASSIGN_OR_RETURN(HypertreeDecomposition complete,
                         CompleteDecomposition(query, h));

  NormalFormInstance out;
  out.query = query;  // copy; extended below
  ConjunctiveQuery& q = out.query;

  // --- relations of D that do not occur in Q -------------------------------
  std::unordered_set<std::string> query_rels;
  for (const QueryAtom& a : query.atoms()) {
    query_rels.insert(query.schema().name(a.relation));
  }
  std::vector<RelationId> missing;  // ids in db schema
  for (RelationId r = 0; r < db.schema().relation_count(); ++r) {
    if (query_rels.count(db.schema().name(r)) > 0) continue;
    if (db.index().RelationCardinality(r) == 0) continue;  // not "in D"
    missing.push_back(r);
  }

  // Fresh P_i(z̄_i) and P'_i(z'_i) atoms. Atom indices recorded for Ĥ.
  struct MissingRel {
    size_t p_atom;       // index of P_i(z̄_i) in q
    size_t pprime_atom;  // index of P'_i(z'_i) in q
  };
  std::vector<MissingRel> missing_atoms;
  for (RelationId r : missing) {
    const std::string& name = db.schema().name(r);
    uint32_t arity = db.schema().arity(r);
    UOCQA_ASSIGN_OR_RETURN(RelationId qr,
                           q.mutable_schema().AddRelation(name, arity));
    std::vector<Term> terms;
    for (uint32_t i = 0; i < arity; ++i) {
      terms.push_back(Term::Var(q.AddFreshVariable("z")));
    }
    MissingRel mr;
    mr.p_atom = q.atom_count();
    q.AddAtom(qr, std::move(terms));
    UOCQA_ASSIGN_OR_RETURN(
        RelationId pp, q.mutable_schema().AddRelation("__nfP_" + name, 1));
    mr.pprime_atom = q.atom_count();
    q.AddAtom(pp, {Term::Var(q.AddFreshVariable("zp"))});
    missing_atoms.push_back(mr);
  }

  // Fresh S_v^{(j)}(w_v^{(j)}) atoms, one per new chain vertex.
  // chain_atoms[v][j] = atom index of S_v^{(j+1)}.
  std::vector<std::vector<size_t>> chain_atoms(complete.size());
  for (DecompVertex v = 0; v < complete.size(); ++v) {
    size_t h_children = complete.node(v).children.size();
    for (size_t j = 0; j <= h_children; ++j) {
      std::string rel_name =
          "__nfS_" + std::to_string(v) + "_" + std::to_string(j);
      UOCQA_ASSIGN_OR_RETURN(RelationId sr,
                             q.mutable_schema().AddRelation(rel_name, 1));
      chain_atoms[v].push_back(q.atom_count());
      q.AddAtom(sr, {Term::Var(q.AddFreshVariable("w"))});
    }
  }

  // --- database D̂ ----------------------------------------------------------
  out.db = Database(q.schema());
  // The schemas may order relations differently; re-add facts by name.
  for (const Fact& f : db.facts()) {
    RelationId nr = q.schema().Find(db.schema().name(f.relation));
    assert(nr != kInvalidRelation);
    out.db.AddFact(Fact(nr, f.args));
  }
  const std::string kPadConstant = "__nf0";
  for (size_t i = 0; i < missing_atoms.size(); ++i) {
    RelationId pp = q.atoms()[missing_atoms[i].pprime_atom].relation;
    out.db.AddFact(Fact(pp, {ValuePool::Intern(kPadConstant)}));
    // Deviation from the paper's text (documented in DESIGN.md): we also add
    // a pad fact P_i(c,...,c) over the fresh constant. Without it, a repair
    // that empties every block of P_i would fail the fresh atom P_i(z̄_i)
    // even though it entails Q, breaking the count preservation claimed by
    // Proposition E.1. The pad fact forms a fresh singleton block (the
    // constant occurs nowhere else), so it is kept by every repair and adds
    // no repair choices.
    RelationId pr = q.atoms()[missing_atoms[i].p_atom].relation;
    std::vector<Value> pad_args(q.schema().arity(pr),
                                ValuePool::Intern(kPadConstant));
    out.db.AddFact(Fact(pr, std::move(pad_args)));
  }
  for (DecompVertex v = 0; v < complete.size(); ++v) {
    for (size_t atom_idx : chain_atoms[v]) {
      RelationId sr = q.atoms()[atom_idx].relation;
      out.db.AddFact(Fact(sr, {ValuePool::Intern(kPadConstant)}));
    }
  }

  // --- decomposition Ĥ -----------------------------------------------------
  HypertreeDecomposition& nh = out.decomposition;
  // Top chain: v_{P_1} → {v_{P'_1}, v_{P_2}} → ... → v_{P_m} → {v_{P'_m},
  // root^{(1)}}.
  DecompVertex attach = kInvalidVertex;  // parent for the next chain element
  for (const MissingRel& mr : missing_atoms) {
    std::vector<VarId> p_bag;
    for (const Term& t : q.atoms()[mr.p_atom].terms) p_bag.push_back(t.id);
    DecompVertex vp = nh.AddNode(p_bag, {mr.p_atom}, attach);
    VarId zp = q.atoms()[mr.pprime_atom].terms[0].id;
    nh.AddNode({zp}, {mr.pprime_atom}, vp);
    attach = vp;
  }

  // Map each original vertex v to its chain v^{(1)}..v^{(h+1)}.
  // Process vertices in ≺T order so each parent chain exists first; record
  // for every original vertex the new vertex its chain hangs under.
  std::vector<std::vector<DecompVertex>> chains(complete.size());
  for (DecompVertex v : complete.VerticesInOrder()) {
    const DecompositionNode& n = complete.node(v);
    size_t h_children = n.children.size();
    DecompVertex parent_new;
    if (n.parent == kInvalidVertex) {
      parent_new = attach;  // under v_{P_m}, or root if no missing relations
    } else {
      // v is the i-th child of its parent; hangs under parent^{(i)}.
      const DecompositionNode& pn = complete.node(n.parent);
      size_t i = std::find(pn.children.begin(), pn.children.end(), v) -
                 pn.children.begin();
      parent_new = chains[n.parent][i];
    }
    DecompVertex prev = parent_new;
    for (size_t j = 0; j <= h_children; ++j) {
      std::vector<VarId> bag = n.bag;
      size_t s_atom = chain_atoms[v][j];
      bag.push_back(q.atoms()[s_atom].terms[0].id);
      std::vector<size_t> lambda = n.lambda;
      lambda.push_back(s_atom);
      DecompVertex nv = nh.AddNode(std::move(bag), std::move(lambda), prev);
      chains[v].push_back(nv);
      prev = nv;
    }
  }

  UOCQA_RETURN_IF_ERROR(nh.Validate(q));
  if (!IsInNormalForm(out.db, q, nh)) {
    return Status::Internal("normal-form construction failed invariants");
  }
  return out;
}

}  // namespace uocqa
