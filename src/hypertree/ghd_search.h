// Exhaustive search for generalized hypertree decompositions of width <= k.
//
// Deciding ghw(Q) <= k is NP-hard in general; this module implements a
// det-k-decomp-style recursive separator search (memoized on
// (component, connector) pairs) that is exact on the query families used in
// this repository (chains, stars, cycles, cliques, the paper's reduction
// queries) and always returns *valid* decompositions (checked by
// HypertreeDecomposition::Validate). The paper's pipeline only needs *some*
// width-l decomposition with k <= l <= 3k+1 (§3.2); an exact small-width
// search more than suffices.

#ifndef UOCQA_HYPERTREE_GHD_SEARCH_H_
#define UOCQA_HYPERTREE_GHD_SEARCH_H_

#include <cstddef>
#include <vector>

#include "base/status.h"
#include "hypertree/decomposition.h"
#include "query/cq.h"

namespace uocqa {

/// Finds a GHD of Q of width <= k; NotFound if the search cannot produce
/// one. Supports up to 64 distinct non-answer variables.
Result<HypertreeDecomposition> FindGhdOfWidth(const ConjunctiveQuery& query,
                                              size_t k);

/// Up to `max_candidates` (>= 1) width-<=k GHDs, one per root bag that
/// admits a complete decomposition, in search order. The first element is
/// exactly the decomposition FindGhdOfWidth returns, so ranking layers that
/// prefer candidate 0 under cost ties preserve legacy behavior. NotFound
/// when no decomposition of width <= k exists.
Result<std::vector<HypertreeDecomposition>> FindGhdsOfWidth(
    const ConjunctiveQuery& query, size_t k, size_t max_candidates);

/// Smallest k <= max_k for which FindGhdOfWidth succeeds, together with the
/// witnessing decomposition.
struct GhwResult {
  size_t width = 0;
  HypertreeDecomposition decomposition;
};
Result<GhwResult> ComputeGhw(const ConjunctiveQuery& query, size_t max_k = 8);

/// Convenience used by the OCQA pipeline: a join tree when the query is
/// acyclic, otherwise the smallest-width GHD found.
Result<HypertreeDecomposition> DecomposeQuery(const ConjunctiveQuery& query,
                                              size_t max_k = 8);

}  // namespace uocqa

#endif  // UOCQA_HYPERTREE_GHD_SEARCH_H_
