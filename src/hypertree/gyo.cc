#include "hypertree/gyo.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace uocqa {

namespace {

/// Non-answer variables of each atom as sorted vectors.
std::vector<std::vector<VarId>> AtomVarSets(const ConjunctiveQuery& query) {
  std::unordered_set<VarId> answers(query.answer_vars().begin(),
                                    query.answer_vars().end());
  std::vector<std::vector<VarId>> out(query.atom_count());
  for (size_t i = 0; i < query.atom_count(); ++i) {
    for (VarId v : query.atoms()[i].Variables()) {
      if (answers.find(v) == answers.end()) out[i].push_back(v);
    }
    std::sort(out[i].begin(), out[i].end());
  }
  return out;
}

struct GyoResult {
  bool acyclic = false;
  // For every atom (except the root), the witness atom it hangs under.
  std::vector<size_t> parent;       // parent[i] == i for the root
  std::vector<size_t> removal_order;
};

GyoResult RunGyo(const ConjunctiveQuery& query) {
  GyoResult result;
  size_t n = query.atom_count();
  std::vector<std::vector<VarId>> vars = AtomVarSets(query);
  std::vector<bool> removed(n, false);
  result.parent.assign(n, static_cast<size_t>(-1));
  size_t remaining = n;

  auto occurs_elsewhere = [&](VarId v, size_t self) {
    for (size_t j = 0; j < n; ++j) {
      if (j == self || removed[j]) continue;
      if (std::binary_search(vars[j].begin(), vars[j].end(), v)) return true;
    }
    return false;
  };

  bool progress = true;
  while (remaining > 1 && progress) {
    progress = false;
    for (size_t i = 0; i < n && remaining > 1; ++i) {
      if (removed[i]) continue;
      // Shared variables of atom i with the rest.
      std::vector<VarId> shared;
      for (VarId v : vars[i]) {
        if (occurs_elsewhere(v, i)) shared.push_back(v);
      }
      // Find a witness atom containing all shared variables.
      for (size_t j = 0; j < n; ++j) {
        if (j == i || removed[j]) continue;
        bool contains_all = true;
        for (VarId v : shared) {
          if (!std::binary_search(vars[j].begin(), vars[j].end(), v)) {
            contains_all = false;
            break;
          }
        }
        if (contains_all) {
          removed[i] = true;
          result.parent[i] = j;
          result.removal_order.push_back(i);
          --remaining;
          progress = true;
          break;
        }
      }
    }
  }
  if (remaining != 1) {
    result.acyclic = false;
    return result;
  }
  for (size_t i = 0; i < n; ++i) {
    if (!removed[i]) {
      result.parent[i] = i;  // root
      result.removal_order.push_back(i);
    }
  }
  result.acyclic = true;
  return result;
}

}  // namespace

bool IsAcyclic(const ConjunctiveQuery& query) {
  if (query.atom_count() == 0) return true;
  return RunGyo(query).acyclic;
}

Result<HypertreeDecomposition> BuildJoinTree(const ConjunctiveQuery& query) {
  if (query.atom_count() == 0) {
    return Status::FailedPrecondition("query has no atoms");
  }
  GyoResult gyo = RunGyo(query);
  if (!gyo.acyclic) {
    return Status::FailedPrecondition("query is cyclic (GYO stalled)");
  }
  std::vector<std::vector<VarId>> vars = AtomVarSets(query);
  // Materialize in reverse removal order (root first) so parents exist.
  HypertreeDecomposition h;
  std::unordered_map<size_t, DecompVertex> atom_to_vertex;
  for (size_t idx = gyo.removal_order.size(); idx-- > 0;) {
    size_t atom = gyo.removal_order[idx];
    DecompVertex parent = kInvalidVertex;
    if (gyo.parent[atom] != atom) {
      auto it = atom_to_vertex.find(gyo.parent[atom]);
      assert(it != atom_to_vertex.end());
      parent = it->second;
    }
    atom_to_vertex[atom] = h.AddNode(vars[atom], {atom}, parent);
  }
  Status st = h.Validate(query);
  if (!st.ok()) return st;
  return h;
}

}  // namespace uocqa
