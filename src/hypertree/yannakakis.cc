#include "hypertree/yannakakis.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "base/hashing.h"
#include "hypertree/gyo.h"
#include "query/eval.h"

namespace uocqa {

namespace {

/// Variables of an atom in first-occurrence order.
std::vector<VarId> AtomVars(const QueryAtom& atom) { return atom.Variables(); }

/// A match of one atom: values of its variables (aligned with AtomVars).
using Match = std::vector<Value>;

}  // namespace

Result<YannakakisEvaluator> YannakakisEvaluator::Create(
    const Database& db, const ConjunctiveQuery& query,
    const HypertreeDecomposition& join_tree) {
  UOCQA_RETURN_IF_ERROR(join_tree.Validate(query));
  if (join_tree.size() != query.atom_count()) {
    return Status::FailedPrecondition(
        "join tree must have exactly one vertex per atom");
  }
  YannakakisEvaluator out;
  out.db_ = &db;
  out.query_ = &query;
  out.root_ = join_tree.root();
  out.topo_ = join_tree.VerticesInOrder();
  out.nodes_.resize(join_tree.size());
  std::vector<bool> atom_used(query.atom_count(), false);
  for (DecompVertex v = 0; v < join_tree.size(); ++v) {
    const DecompositionNode& n = join_tree.node(v);
    if (n.lambda.size() != 1) {
      return Status::FailedPrecondition("join tree width must be 1");
    }
    if (atom_used[n.lambda[0]]) {
      return Status::FailedPrecondition("atom covered twice in join tree");
    }
    atom_used[n.lambda[0]] = true;
    out.nodes_[v].atom_idx = n.lambda[0];
    out.nodes_[v].children = n.children;
  }
  for (bool used : atom_used) {
    if (!used) {
      return Status::FailedPrecondition("join tree misses an atom");
    }
  }
  // Join columns for each edge: shared variables between parent and child
  // atoms, as positions into the respective variable lists.
  for (DecompVertex v = 0; v < join_tree.size(); ++v) {
    DecompVertex parent = join_tree.node(v).parent;
    if (parent == kInvalidVertex) continue;
    std::vector<VarId> mine = AtomVars(query.atoms()[out.nodes_[v].atom_idx]);
    std::vector<VarId> theirs =
        AtomVars(query.atoms()[out.nodes_[parent].atom_idx]);
    for (size_t i = 0; i < mine.size(); ++i) {
      auto it = std::find(theirs.begin(), theirs.end(), mine[i]);
      if (it == theirs.end()) continue;
      out.nodes_[v].own_join_cols.push_back(static_cast<uint32_t>(i));
      out.nodes_[v].parent_join_cols.push_back(
          static_cast<uint32_t>(it - theirs.begin()));
    }
  }
  return out;
}

namespace {

/// Enumerates an atom's matches against the database, honouring constants,
/// repeated variables, and pinned answer variables. Candidate facts come
/// from the inverted index over the atom's bound terms (constants and
/// pinned variables); the unification loop below verifies every term.
std::vector<Match> AtomMatches(const Database& db,
                               const ConjunctiveQuery& query, size_t atom_idx,
                               const std::vector<Value>& pinned) {
  const QueryAtom& atom = query.atoms()[atom_idx];
  std::vector<VarId> vars = atom.Variables();
  std::vector<Match> out;
  const std::string& rel_name = query.schema().name(atom.relation);
  RelationId dr = db.schema().Find(rel_name);
  if (dr == kInvalidRelation) return out;
  std::vector<BoundArg> bound;
  for (size_t t = 0; t < atom.terms.size(); ++t) {
    const Term& term = atom.terms[t];
    if (term.is_const()) {
      bound.emplace_back(static_cast<uint32_t>(t), term.id);
    } else if (pinned[term.id] != kUnassignedValue) {
      bound.emplace_back(static_cast<uint32_t>(t), pinned[term.id]);
    }
  }
  for (FactId fid : db.index().Candidates(dr, bound)) {
    const Fact& fact = db.fact(fid);
    Match m(vars.size(), kUnassignedValue);
    bool ok = true;
    for (size_t t = 0; t < atom.terms.size() && ok; ++t) {
      const Term& term = atom.terms[t];
      Value c = fact.args[t];
      if (term.is_const()) {
        ok = (term.id == c);
        continue;
      }
      size_t pos = std::find(vars.begin(), vars.end(), term.id) -
                   vars.begin();
      if (m[pos] == kUnassignedValue) {
        m[pos] = c;
      } else {
        ok = (m[pos] == c);
      }
      if (ok && pinned[term.id] != kUnassignedValue) {
        ok = (pinned[term.id] == c);
      }
    }
    if (ok) out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Value> Project(const Match& m, const std::vector<uint32_t>& cols) {
  std::vector<Value> out;
  out.reserve(cols.size());
  for (uint32_t c : cols) out.push_back(m[c]);
  return out;
}

}  // namespace

BigInt YannakakisEvaluator::CountHomomorphisms(
    const std::vector<Value>& answer_tuple) const {
  const ConjunctiveQuery& query = *query_;
  assert(answer_tuple.size() == query.answer_vars().size());
  std::vector<Value> pinned(query.variable_count(), kUnassignedValue);
  for (size_t i = 0; i < answer_tuple.size(); ++i) {
    VarId v = query.answer_vars()[i];
    if (pinned[v] != kUnassignedValue && pinned[v] != answer_tuple[i]) {
      return BigInt();  // repeated answer variable bound inconsistently
    }
    pinned[v] = answer_tuple[i];
  }

  // child_maps[v]: projection onto the parent join columns -> sum of counts
  // of v-subtree homomorphism extensions.
  std::vector<std::unordered_map<std::vector<Value>, BigInt,
                                 VectorHash<Value>>>
      child_maps(nodes_.size());

  for (size_t idx = topo_.size(); idx-- > 0;) {
    DecompVertex v = topo_[idx];
    const Node& node = nodes_[v];
    std::vector<Match> matches =
        AtomMatches(*db_, query, node.atom_idx, pinned);
    std::unordered_map<std::vector<Value>, BigInt, VectorHash<Value>> map;
    for (const Match& m : matches) {
      BigInt count(1);
      for (DecompVertex child : node.children) {
        const Node& cn = nodes_[child];
        auto it = child_maps[child].find(Project(m, cn.parent_join_cols));
        if (it == child_maps[child].end()) {
          count = BigInt();
          break;
        }
        count *= it->second;
      }
      if (count.IsZero()) continue;
      map[Project(m, node.own_join_cols)] += count;
    }
    child_maps[v] = std::move(map);
  }

  BigInt total;
  for (const auto& [key, count] : child_maps[root_]) total += count;
  return total;
}

bool YannakakisEvaluator::Entails(
    const std::vector<Value>& answer_tuple) const {
  return !CountHomomorphisms(answer_tuple).IsZero();
}

Result<bool> AcyclicEntails(const Database& db, const ConjunctiveQuery& query,
                            const std::vector<Value>& answer_tuple) {
  UOCQA_ASSIGN_OR_RETURN(HypertreeDecomposition jt, BuildJoinTree(query));
  UOCQA_ASSIGN_OR_RETURN(YannakakisEvaluator eval,
                         YannakakisEvaluator::Create(db, query, jt));
  return eval.Entails(answer_tuple);
}

Result<BigInt> AcyclicCountHomomorphisms(
    const Database& db, const ConjunctiveQuery& query,
    const std::vector<Value>& answer_tuple) {
  UOCQA_ASSIGN_OR_RETURN(HypertreeDecomposition jt, BuildJoinTree(query));
  UOCQA_ASSIGN_OR_RETURN(YannakakisEvaluator eval,
                         YannakakisEvaluator::Create(db, query, jt));
  return eval.CountHomomorphisms(answer_tuple);
}

}  // namespace uocqa
