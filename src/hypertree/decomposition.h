// (Generalized) hypertree decompositions of conjunctive queries (paper §2).
//
// A generalized hypertree decomposition (GHD) of Q is (T, chi, lambda):
//   * (T, chi) is a tree decomposition: chi labels vertices with sets of
//     non-answer variables such that (1) every atom's non-answer variables
//     are contained in some bag and (2) each variable's bag set induces a
//     connected subtree;
//   * lambda labels each vertex with a set of query atoms covering its bag.
// The width is max_v |lambda(v)|.
//
// §5's normal form adds: *complete* (every atom has a covering vertex),
// *strongly complete* (every vertex is the ≺T-minimal covering vertex of
// some atom) and *2-uniform* (every internal vertex has exactly 2 children).

#ifndef UOCQA_HYPERTREE_DECOMPOSITION_H_
#define UOCQA_HYPERTREE_DECOMPOSITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "query/cq.h"

namespace uocqa {

/// Vertex index within a decomposition tree.
using DecompVertex = uint32_t;

constexpr DecompVertex kInvalidVertex = static_cast<DecompVertex>(-1);

struct DecompositionNode {
  std::vector<VarId> bag;       ///< chi(v), sorted, answer vars excluded
  std::vector<size_t> lambda;   ///< indices into query.atoms(), sorted
  std::vector<DecompVertex> children;
  DecompVertex parent = kInvalidVertex;
};

class HypertreeDecomposition {
 public:
  /// Adds a node; parent == kInvalidVertex makes it the root (only once).
  /// Children are appended in call order, which fixes the sibling order used
  /// by the ≺T total order.
  DecompVertex AddNode(std::vector<VarId> bag, std::vector<size_t> lambda,
                       DecompVertex parent);

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  DecompVertex root() const { return root_; }
  const DecompositionNode& node(DecompVertex v) const { return nodes_[v]; }
  const std::vector<DecompositionNode>& nodes() const { return nodes_; }

  /// max_v |lambda(v)| (0 for the empty decomposition).
  size_t Width() const;

  /// Depth of v (root = 0).
  size_t Depth(DecompVertex v) const;

  /// The total order ≺T of the paper: by depth, then left-to-right within a
  /// level (sibling order = insertion order). Returns the rank of v.
  size_t OrderRank(DecompVertex v) const;

  /// Vertices sorted by ≺T.
  std::vector<DecompVertex> VerticesInOrder() const;

  /// Structural + semantic validation against `query`:
  /// tree-shape well-formedness, bag coverage of every atom, connectedness,
  /// and chi(v) ⊆ vars(lambda(v)).
  Status Validate(const ConjunctiveQuery& query) const;

  /// v is a covering vertex for atom a: non-answer vars of a ⊆ chi(v) and
  /// a ∈ lambda(v) (paper §5, following [27]).
  bool IsCoveringVertex(const ConjunctiveQuery& query, DecompVertex v,
                        size_t atom_idx) const;

  /// ≺T-minimal covering vertex of an atom; kInvalidVertex if none.
  DecompVertex MinimalCoveringVertex(const ConjunctiveQuery& query,
                                     size_t atom_idx) const;

  /// Every atom has a covering vertex.
  bool IsComplete(const ConjunctiveQuery& query) const;

  /// Complete, and every vertex is the ≺T-minimal covering vertex of some
  /// atom.
  bool IsStronglyComplete(const ConjunctiveQuery& query) const;

  /// Every non-leaf vertex has exactly `l` children.
  bool IsUniform(size_t l) const;

  std::string ToString(const ConjunctiveQuery& query) const;

 private:
  DecompVertex root_ = kInvalidVertex;
  std::vector<DecompositionNode> nodes_;
};

/// True iff (D, Q, H) is in the paper's normal form: every relation of D
/// occurs in Q, and H is strongly complete and 2-uniform.
bool IsInNormalForm(const class Database& db, const ConjunctiveQuery& query,
                    const HypertreeDecomposition& h);

}  // namespace uocqa

#endif  // UOCQA_HYPERTREE_DECOMPOSITION_H_
