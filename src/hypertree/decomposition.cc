#include "hypertree/decomposition.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "db/database.h"

namespace uocqa {

namespace {

std::vector<VarId> NonAnswerVarsOfAtom(const ConjunctiveQuery& query,
                                       size_t atom_idx) {
  std::unordered_set<VarId> answers(query.answer_vars().begin(),
                                    query.answer_vars().end());
  std::vector<VarId> out;
  for (VarId v : query.atoms()[atom_idx].Variables()) {
    if (answers.find(v) == answers.end()) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SortedContains(const std::vector<VarId>& haystack, VarId needle) {
  return std::binary_search(haystack.begin(), haystack.end(), needle);
}

bool SortedSubset(const std::vector<VarId>& sub,
                  const std::vector<VarId>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace

DecompVertex HypertreeDecomposition::AddNode(std::vector<VarId> bag,
                                             std::vector<size_t> lambda,
                                             DecompVertex parent) {
  std::sort(bag.begin(), bag.end());
  bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
  std::sort(lambda.begin(), lambda.end());
  lambda.erase(std::unique(lambda.begin(), lambda.end()), lambda.end());
  DecompVertex id = static_cast<DecompVertex>(nodes_.size());
  DecompositionNode node;
  node.bag = std::move(bag);
  node.lambda = std::move(lambda);
  node.parent = parent;
  nodes_.push_back(std::move(node));
  if (parent == kInvalidVertex) {
    assert(root_ == kInvalidVertex && "decomposition already has a root");
    root_ = id;
  } else {
    assert(parent < id);
    nodes_[parent].children.push_back(id);
  }
  return id;
}

size_t HypertreeDecomposition::Width() const {
  size_t w = 0;
  for (const DecompositionNode& n : nodes_) w = std::max(w, n.lambda.size());
  return w;
}

size_t HypertreeDecomposition::Depth(DecompVertex v) const {
  size_t d = 0;
  while (nodes_[v].parent != kInvalidVertex) {
    v = nodes_[v].parent;
    ++d;
  }
  return d;
}

std::vector<DecompVertex> HypertreeDecomposition::VerticesInOrder() const {
  // BFS from the root with children visited in stored (insertion) order
  // realizes the paper's ≺T: depth first, then left-to-right.
  std::vector<DecompVertex> order;
  if (root_ == kInvalidVertex) return order;
  order.push_back(root_);
  for (size_t i = 0; i < order.size(); ++i) {
    for (DecompVertex c : nodes_[order[i]].children) order.push_back(c);
  }
  return order;
}

size_t HypertreeDecomposition::OrderRank(DecompVertex v) const {
  std::vector<DecompVertex> order = VerticesInOrder();
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == v) return i;
  }
  assert(false && "vertex not reachable from root");
  return order.size();
}

Status HypertreeDecomposition::Validate(const ConjunctiveQuery& query) const {
  if (nodes_.empty() || root_ == kInvalidVertex) {
    return Status::FailedPrecondition("empty decomposition");
  }
  // Tree shape: every node reachable from the root exactly once.
  if (VerticesInOrder().size() != nodes_.size()) {
    return Status::FailedPrecondition("decomposition is not a tree");
  }
  // lambda indices valid; chi(v) ⊆ vars(lambda(v)).
  for (const DecompositionNode& n : nodes_) {
    std::unordered_set<VarId> covered;
    for (size_t ai : n.lambda) {
      if (ai >= query.atom_count()) {
        return Status::FailedPrecondition("lambda references missing atom");
      }
      for (VarId v : query.atoms()[ai].Variables()) covered.insert(v);
    }
    for (VarId v : n.bag) {
      if (covered.find(v) == covered.end()) {
        return Status::FailedPrecondition(
            "bag variable " + query.VarName(v) +
            " not covered by lambda atoms");
      }
    }
  }
  // Condition (1): every atom's non-answer variables inside some bag.
  for (size_t ai = 0; ai < query.atom_count(); ++ai) {
    std::vector<VarId> need = NonAnswerVarsOfAtom(query, ai);
    bool found = false;
    for (const DecompositionNode& n : nodes_) {
      if (SortedSubset(need, n.bag)) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::FailedPrecondition(
          "atom " + std::to_string(ai) + " has no bag containing its vars");
    }
  }
  // Condition (2): connectedness of every variable.
  std::unordered_set<VarId> answers(query.answer_vars().begin(),
                                    query.answer_vars().end());
  for (VarId var : query.AllVariables()) {
    if (answers.count(var) > 0) {
      // Answer variables must not occur in bags at all.
      for (const DecompositionNode& n : nodes_) {
        if (SortedContains(n.bag, var)) {
          return Status::FailedPrecondition(
              "answer variable " + query.VarName(var) + " occurs in a bag");
        }
      }
      continue;
    }
    // Vertices containing var must induce a connected subtree: each such
    // vertex except one (the shallowest) must have its parent in the set.
    std::vector<DecompVertex> holders;
    for (DecompVertex v = 0; v < nodes_.size(); ++v) {
      if (SortedContains(nodes_[v].bag, var)) holders.push_back(v);
    }
    if (holders.empty()) continue;
    std::unordered_set<DecompVertex> holder_set(holders.begin(),
                                                holders.end());
    size_t roots = 0;
    for (DecompVertex v : holders) {
      DecompVertex p = nodes_[v].parent;
      if (p == kInvalidVertex || holder_set.find(p) == holder_set.end()) {
        ++roots;
      }
    }
    if (roots != 1) {
      return Status::FailedPrecondition("variable " + query.VarName(var) +
                                        " violates connectedness");
    }
  }
  return Status::OK();
}

bool HypertreeDecomposition::IsCoveringVertex(const ConjunctiveQuery& query,
                                              DecompVertex v,
                                              size_t atom_idx) const {
  const DecompositionNode& n = nodes_[v];
  if (!std::binary_search(n.lambda.begin(), n.lambda.end(), atom_idx)) {
    return false;
  }
  return SortedSubset(NonAnswerVarsOfAtom(query, atom_idx), n.bag);
}

DecompVertex HypertreeDecomposition::MinimalCoveringVertex(
    const ConjunctiveQuery& query, size_t atom_idx) const {
  for (DecompVertex v : VerticesInOrder()) {
    if (IsCoveringVertex(query, v, atom_idx)) return v;
  }
  return kInvalidVertex;
}

bool HypertreeDecomposition::IsComplete(const ConjunctiveQuery& query) const {
  for (size_t ai = 0; ai < query.atom_count(); ++ai) {
    if (MinimalCoveringVertex(query, ai) == kInvalidVertex) return false;
  }
  return true;
}

bool HypertreeDecomposition::IsStronglyComplete(
    const ConjunctiveQuery& query) const {
  if (!IsComplete(query)) return false;
  std::unordered_set<DecompVertex> minimal;
  for (size_t ai = 0; ai < query.atom_count(); ++ai) {
    minimal.insert(MinimalCoveringVertex(query, ai));
  }
  return minimal.size() == nodes_.size();
}

bool HypertreeDecomposition::IsUniform(size_t l) const {
  for (const DecompositionNode& n : nodes_) {
    if (!n.children.empty() && n.children.size() != l) return false;
  }
  return true;
}

std::string HypertreeDecomposition::ToString(
    const ConjunctiveQuery& query) const {
  std::string out;
  for (DecompVertex v : VerticesInOrder()) {
    const DecompositionNode& n = nodes_[v];
    out += "v" + std::to_string(v) + " (depth " +
           std::to_string(Depth(v)) + ", parent " +
           (n.parent == kInvalidVertex ? std::string("-")
                                       : std::to_string(n.parent)) +
           "): chi={";
    for (size_t i = 0; i < n.bag.size(); ++i) {
      if (i > 0) out += ',';
      out += query.VarName(n.bag[i]);
    }
    out += "} lambda={";
    for (size_t i = 0; i < n.lambda.size(); ++i) {
      if (i > 0) out += ',';
      out += query.schema().name(query.atoms()[n.lambda[i]].relation);
    }
    out += "}\n";
  }
  return out;
}

bool IsInNormalForm(const Database& db, const ConjunctiveQuery& query,
                    const HypertreeDecomposition& h) {
  // (i) every relation name in D also occurs in Q.
  std::unordered_set<std::string> query_rels;
  for (const QueryAtom& a : query.atoms()) {
    query_rels.insert(query.schema().name(a.relation));
  }
  for (const Fact& f : db.facts()) {
    if (query_rels.find(db.schema().name(f.relation)) == query_rels.end()) {
      return false;
    }
  }
  // (ii) strongly complete and 2-uniform.
  return h.IsStronglyComplete(query) && h.IsUniform(2);
}

}  // namespace uocqa
