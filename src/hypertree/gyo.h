// GYO ear-decomposition: builds a width-1 generalized hypertree decomposition
// (a join tree) for acyclic conjunctive queries. GHW_1 coincides with the
// class of acyclic CQs (paper §2).

#ifndef UOCQA_HYPERTREE_GYO_H_
#define UOCQA_HYPERTREE_GYO_H_

#include "base/status.h"
#include "hypertree/decomposition.h"
#include "query/cq.h"

namespace uocqa {

/// True iff the query's hypergraph (over non-answer variables) is acyclic.
bool IsAcyclic(const ConjunctiveQuery& query);

/// Builds a join tree (one vertex per atom, width 1) via GYO ear removal.
/// Fails with FailedPrecondition if the query is cyclic.
Result<HypertreeDecomposition> BuildJoinTree(const ConjunctiveQuery& query);

}  // namespace uocqa

#endif  // UOCQA_HYPERTREE_GYO_H_
