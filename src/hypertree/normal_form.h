// The normal form of (D, Q, H) (paper §5 and Appendix E).
//
// (D, Q, H) is in normal form iff (i) every relation name in D occurs in Q
// and (ii) H is strongly complete and 2-uniform. Proposition E.1: every
// instance can be converted (in logspace) into a normal-form instance
// (D̂, Q̂, Ĥ) of width k+1 preserving both counts
//   |{D' ∈ ORep(D,Σ) : c̄ ∈ Q(D')}|   and   |{s ∈ CRS(D,Σ) : c̄ ∈ Q(s(D))}|.
//
// The construction adds:
//  * for each relation P_i of D missing from Q: an atom P_i(z̄_i) with fresh
//    variables plus a fresh unary atom P'_i(z'_i), a fact P'_i(c), and a
//    chain of decomposition vertices v_{P_i} → {v_{P'_i}, ...} on top of the
//    old root;
//  * for each vertex v of H with h children: h+1 fresh unary atoms
//    S_v^{(j)}(w_v^{(j)}) with facts S_v^{(j)}(c), replacing v by the chain
//    v^{(1)}, ..., v^{(h+1)} where v^{(i)} has children {v^{(i+1)}, u_i^{(1)}}.

#ifndef UOCQA_HYPERTREE_NORMAL_FORM_H_
#define UOCQA_HYPERTREE_NORMAL_FORM_H_

#include "base/status.h"
#include "db/database.h"
#include "db/keys.h"
#include "hypertree/decomposition.h"
#include "query/cq.h"

namespace uocqa {

/// Completion step (Lemma E.2, following [1]): returns a *complete*
/// decomposition of the same width: every atom lacking a covering vertex
/// gets a fresh child vertex {bag = its non-answer vars, lambda = {atom}}
/// under a vertex whose bag already contains those vars.
Result<HypertreeDecomposition> CompleteDecomposition(
    const ConjunctiveQuery& query, const HypertreeDecomposition& h);

/// A normal-form instance. The key set is unchanged by the construction
/// (fresh relations are keyless, and their facts are singleton blocks).
struct NormalFormInstance {
  Database db;
  ConjunctiveQuery query;
  HypertreeDecomposition decomposition;
};

/// Appendix E construction. `h` must validate against `query`; it is
/// completed first if needed. The result satisfies IsInNormalForm and has
/// width(Ĥ) = width(H) + 1.
Result<NormalFormInstance> ToNormalForm(const Database& db,
                                        const ConjunctiveQuery& query,
                                        const HypertreeDecomposition& h);

}  // namespace uocqa

#endif  // UOCQA_HYPERTREE_NORMAL_FORM_H_
