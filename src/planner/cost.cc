#include "planner/cost.h"

#include <algorithm>

#include "db/index.h"
#include "query/eval.h"

namespace uocqa {

namespace {

/// Effective distinct count of column `pos` of `rel`: cardinality divided
/// by the effective fanout (the average of the uniform fanout
/// card/distinct and the most-common-value frequency). Always in
/// [1, cardinality] for non-empty relations; 1 for empty/unknown columns so
/// a degenerate column never inflates an estimate.
double EffectiveDistinct(const DatabaseIndex& index, RelationId rel,
                         uint32_t pos) {
  double card = static_cast<double>(index.RelationCardinality(rel));
  double distinct = static_cast<double>(index.DistinctValues(rel, pos));
  double mcv = static_cast<double>(index.MostCommonFrequency(rel, pos));
  if (card <= 0 || distinct <= 0) return 1;
  double fanout = (card / distinct + mcv) / 2;
  return std::max(1.0, card / fanout);
}

}  // namespace

CostModel::CostModel(const Database& db, const ConjunctiveQuery& query) {
  supported_ = query.atom_count() <= 64;
  if (!supported_) return;
  variable_count_ = query.variable_count();
  is_answer_var_.assign(variable_count_, false);
  for (VarId v : query.answer_vars()) is_answer_var_[v] = true;

  const DatabaseIndex& index = db.index();
  std::vector<RelationId> atom_rels = ResolveAtomRelations(db, query);
  atoms_.resize(query.atom_count());
  for (size_t i = 0; i < query.atom_count(); ++i) {
    const QueryAtom& atom = query.atoms()[i];
    RelationId rel = atom_rels[i];
    AtomStats& stats = atoms_[i];
    size_t card = rel == kInvalidRelation ? 0 : index.RelationCardinality(rel);
    if (card == 0) continue;  // base stays 0: unsatisfiable atom
    stats.base = static_cast<double>(card);
    for (size_t j = 0; j < atom.terms.size(); ++j) {
      const Term& t = atom.terms[j];
      uint32_t pos = static_cast<uint32_t>(j);
      if (t.is_const()) {
        // Exact selectivity from the posting list of the constant.
        size_t matches = index.FactsWith(rel, pos, t.id).size();
        stats.base *= static_cast<double>(matches) / static_cast<double>(card);
      } else {
        stats.occurrences.push_back({t.id, EffectiveDistinct(index, rel, pos)});
      }
    }
  }
}

double CostModel::EstimateSubsetCardinality(uint64_t atom_mask) const {
  if (!supported_ || atom_mask == 0) return 0;
  double card = 1;
  // Per variable touched by the subset: the product of the effective
  // distinct counts over its occurrences, and their minimum.
  std::vector<double> prod(variable_count_, 1);
  std::vector<double> min(variable_count_, 0);  // 0 = untouched
  for (uint64_t m = atom_mask; m != 0; m &= m - 1) {
    size_t i = static_cast<size_t>(__builtin_ctzll(m));
    if (i >= atoms_.size() || atoms_[i].base <= 0) return 0;
    card *= atoms_[i].base;
    for (const VarOccurrence& occ : atoms_[i].occurrences) {
      prod[occ.var] *= occ.effective_distinct;
      min[occ.var] = min[occ.var] == 0
                         ? occ.effective_distinct
                         : std::min(min[occ.var], occ.effective_distinct);
    }
  }
  for (size_t v = 0; v < variable_count_; ++v) {
    if (min[v] == 0) continue;  // variable not in the subset
    // Containment of values: an existential join variable ranges over the
    // smallest occurrence's value set, so divide by every occurrence's
    // distinct count except the smallest. Answer variables are bound to
    // given constants, so every occurrence filters: divide by all of them.
    card /= is_answer_var_[v] ? prod[v] : prod[v] / min[v];
  }
  return card;
}

double CostModel::EstimateOrderCost(const std::vector<size_t>& order) const {
  double cost = 0;
  uint64_t prefix = 0;
  for (size_t atom : order) {
    prefix |= uint64_t{1} << atom;
    cost += EstimateSubsetCardinality(prefix);
  }
  return cost;
}

double CostModel::EstimateBagCost(const std::vector<size_t>& lambda) const {
  uint64_t mask = 0;
  for (size_t atom : lambda) mask |= uint64_t{1} << atom;
  return EstimateSubsetCardinality(mask);
}

double CostModel::EstimateDecompositionCost(
    const HypertreeDecomposition& h) const {
  double cost = 0;
  for (const DecompositionNode& node : h.nodes()) {
    cost += EstimateBagCost(node.lambda);
  }
  return cost;
}

}  // namespace uocqa
