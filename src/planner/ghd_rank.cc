#include "planner/ghd_rank.h"

#include <utility>
#include <vector>

#include "hypertree/ghd_search.h"
#include "hypertree/gyo.h"

namespace uocqa {

Result<DecompositionChoice> RankDecompositions(const Database& db,
                                               const ConjunctiveQuery& query,
                                               const CostModel& model,
                                               size_t max_width,
                                               size_t max_candidates) {
  (void)db;
  if (max_candidates == 0) max_candidates = 1;
  std::vector<HypertreeDecomposition> candidates;

  // Candidate 0 must reproduce DecomposeQuery exactly: GYO join tree for
  // acyclic queries, else the first GHD at the smallest feasible width.
  if (IsAcyclic(query)) {
    Result<HypertreeDecomposition> jt = BuildJoinTree(query);
    if (jt.ok()) {
      candidates.push_back(std::move(jt).value());
      // Alternatives at width 1, best effort (the join tree stays first;
      // enumeration failures for queries the mask-based search cannot
      // represent are not errors here).
      Result<std::vector<HypertreeDecomposition>> extra =
          FindGhdsOfWidth(query, 1, max_candidates);
      if (extra.ok()) {
        for (HypertreeDecomposition& h : *extra) {
          candidates.push_back(std::move(h));
        }
      }
    }
  }
  if (candidates.empty()) {
    // Mirror ComputeGhw: smallest k that yields any decomposition wins;
    // NotFound means "try wider", anything else is a real error.
    for (size_t k = 1; k <= max_width; ++k) {
      Result<std::vector<HypertreeDecomposition>> found =
          FindGhdsOfWidth(query, k, max_candidates);
      if (found.ok()) {
        candidates = std::move(found).value();
        break;
      }
      if (found.status().code() != StatusCode::kNotFound) {
        return found.status();
      }
    }
    if (candidates.empty()) {
      return Status::NotFound("no GHD of width <= " +
                              std::to_string(max_width));
    }
  }

  size_t best = 0;
  double best_cost =
      model.supported() ? model.EstimateDecompositionCost(candidates[0]) : 0;
  if (model.supported()) {
    for (size_t i = 1; i < candidates.size(); ++i) {
      double cost = model.EstimateDecompositionCost(candidates[i]);
      if (cost < best_cost) {  // strictly cheaper only: ties keep legacy
        best = i;
        best_cost = cost;
      }
    }
  }
  DecompositionChoice choice;
  choice.decomposition = std::move(candidates[best]);
  choice.cost = best_cost;
  choice.width = choice.decomposition.Width();
  choice.candidates_considered = candidates.size();
  return choice;
}

}  // namespace uocqa
