// Cardinality-based cost model for query planning.
//
// Estimates the size of partial joins (subsets of query atoms) from the
// DatabaseIndex statistics: per-relation cardinality |R|, per-column
// distinct counts, exact posting lengths for constants, and the per-column
// most-common-value frequency. Columns are assumed independent; a join
// variable's occurrences are combined under the containment-of-values
// assumption (divide by every occurrence's distinct count except the
// smallest). Skew is folded in by replacing the raw distinct count with an
// *effective* distinct count card/fanout, where the effective fanout
// averages the uniform fanout card/distinct with the most-common-value
// frequency — a hot value that the uniform model would hide roughly
// doubles into the estimate.
//
// Costs are search-effort proxies, not result sizes: the cost of an atom
// order is the sum of estimated prefix-join cardinalities (~ backtracking
// nodes of QueryEvaluator::Search), and the cost of a decomposition is the
// sum of estimated bag-join sizes (~ Yannakakis/normal-form bag
// materialization). Planning never changes results, only these costs.

#ifndef UOCQA_PLANNER_COST_H_
#define UOCQA_PLANNER_COST_H_

#include <cstdint>
#include <vector>

#include "db/database.h"
#include "hypertree/decomposition.h"
#include "query/cq.h"

namespace uocqa {

class CostModel {
 public:
  /// Snapshots the statistics of `db` relevant to `query`. Both must
  /// outlive the model only for the duration of construction; the model
  /// itself holds plain numbers.
  CostModel(const Database& db, const ConjunctiveQuery& query);

  /// False when the query exceeds the mask-based representation (more than
  /// 64 atoms); estimates are then unavailable and planners must fall back
  /// to the greedy order.
  bool supported() const { return supported_; }

  /// Estimated number of tuples in the join of the atoms of `atom_mask`
  /// (bit i = query atom i), with answer variables treated as bound to
  /// constants. 0 when some atom's relation is absent or empty. The
  /// estimate depends only on the *set*, not on any order, which makes the
  /// subset DP in join_order.cc exact for EstimateOrderCost.
  double EstimateSubsetCardinality(uint64_t atom_mask) const;

  /// Sum of EstimateSubsetCardinality over the prefixes of `order` — the
  /// backtracking-node proxy minimized by join ordering.
  double EstimateOrderCost(const std::vector<size_t>& order) const;

  /// Estimated materialized size of a bag covering `lambda` (atom indices).
  double EstimateBagCost(const std::vector<size_t>& lambda) const;

  /// Sum of bag costs over all vertices of `h`.
  double EstimateDecompositionCost(const HypertreeDecomposition& h) const;

 private:
  // One variable occurrence inside an atom: the effective distinct count of
  // the column it sits in.
  struct VarOccurrence {
    VarId var;
    double effective_distinct;
  };
  struct AtomStats {
    double base = 0;  // |R| x exact constant selectivities (0 if empty)
    std::vector<VarOccurrence> occurrences;
  };

  bool supported_ = false;
  size_t variable_count_ = 0;
  std::vector<AtomStats> atoms_;
  std::vector<bool> is_answer_var_;  // [VarId]
};

}  // namespace uocqa

#endif  // UOCQA_PLANNER_COST_H_
