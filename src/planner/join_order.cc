#include "planner/join_order.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "base/rng.h"
#include "query/eval.h"

namespace uocqa {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Exact subset DP: dp[S] = card(S) + min over last-placed atom a of
/// dp[S \ {a}]. Reconstructed front-to-back from the full mask. Ties keep
/// the smallest atom index, so the result is deterministic.
std::vector<size_t> DpOrder(const CostModel& model, size_t n) {
  size_t full = (size_t{1} << n) - 1;
  std::vector<double> dp(full + 1, kInf);
  std::vector<int> last(full + 1, -1);
  dp[0] = 0;
  for (size_t s = 1; s <= full; ++s) {
    double card = model.EstimateSubsetCardinality(s);
    for (size_t a = 0; a < n; ++a) {
      if ((s & (size_t{1} << a)) == 0) continue;
      double c = dp[s ^ (size_t{1} << a)];
      if (c + card < dp[s]) {
        dp[s] = c + card;
        last[s] = static_cast<int>(a);
      }
    }
  }
  std::vector<size_t> order;
  for (size_t s = full; s != 0; s ^= size_t{1} << last[s]) {
    order.push_back(static_cast<size_t>(last[s]));
  }
  std::reverse(order.begin(), order.end());
  return order;
}

/// One randomized-greedy construction: at each step rank the unplaced atoms
/// by the cardinality of the extended prefix and pick uniformly among the
/// best three — enough perturbation to escape the deterministic greedy's
/// estimation errors, close enough to it to stay sane.
std::vector<size_t> RandomizedGreedyOrder(const CostModel& model, size_t n,
                                          Rng& rng) {
  std::vector<size_t> order;
  uint64_t prefix = 0;
  std::vector<bool> placed(n, false);
  while (order.size() < n) {
    std::vector<std::pair<double, size_t>> ranked;
    for (size_t a = 0; a < n; ++a) {
      if (placed[a]) continue;
      ranked.emplace_back(
          model.EstimateSubsetCardinality(prefix | (uint64_t{1} << a)), a);
    }
    std::sort(ranked.begin(), ranked.end());
    size_t pick = ranked[rng.UniformIndex(std::min<size_t>(3, ranked.size()))]
                      .second;
    placed[pick] = true;
    prefix |= uint64_t{1} << pick;
    order.push_back(pick);
  }
  return order;
}

}  // namespace

JoinOrderPlan PlanJoinOrder(const Database& db, const ConjunctiveQuery& query,
                            const CostModel& model,
                            const JoinOrderOptions& options) {
  JoinOrderPlan plan;
  plan.order = GreedyAtomOrder(db, query);
  size_t n = query.atom_count();
  if (!model.supported() || n == 0) return plan;
  plan.greedy_cost = model.EstimateOrderCost(plan.order);
  plan.cost = plan.greedy_cost;

  if (n <= options.dp_max_atoms) {
    std::vector<size_t> dp_order = DpOrder(model, n);
    double dp_cost = model.EstimateOrderCost(dp_order);
    plan.exact = true;
    // The greedy order is itself a candidate of the DP, so dp_cost <=
    // greedy_cost up to floating-point noise; keep greedy on ties so
    // planning never churns behavior without a modeled win.
    if (dp_cost < plan.cost) {
      plan.order = std::move(dp_order);
      plan.cost = dp_cost;
    }
    return plan;
  }

  for (size_t r = 0; r < options.restarts; ++r) {
    Rng rng = Rng::Stream(options.seed, r);
    std::vector<size_t> candidate = RandomizedGreedyOrder(model, n, rng);
    double cost = model.EstimateOrderCost(candidate);
    if (cost < plan.cost) {
      plan.order = std::move(candidate);
      plan.cost = cost;
    }
  }
  return plan;
}

}  // namespace uocqa
