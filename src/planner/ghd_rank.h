// Cost-ranked decomposition choice.
//
// Replaces "first decomposition found" with "cheapest of up to N
// candidates": candidate 0 is always exactly what the legacy DecomposeQuery
// would have returned (the GYO join tree for acyclic queries, the first
// width-k GHD otherwise), further candidates come from the generalized
// FindGhdsOfWidth enumeration, and ranking switches away from candidate 0
// only on a *strictly* cheaper estimated bag-materialization cost. Ties —
// including the everything-is-zero estimates of empty databases — keep the
// legacy choice, so pinned FPRAS outputs are reproduced bit-identically
// wherever the cost model sees no difference.

#ifndef UOCQA_PLANNER_GHD_RANK_H_
#define UOCQA_PLANNER_GHD_RANK_H_

#include <cstddef>

#include "base/status.h"
#include "db/database.h"
#include "hypertree/decomposition.h"
#include "planner/cost.h"
#include "query/cq.h"

namespace uocqa {

struct DecompositionChoice {
  HypertreeDecomposition decomposition;
  double cost = 0;   ///< EstimateDecompositionCost of the winner
  size_t width = 0;  ///< Width() of the winner
  size_t candidates_considered = 0;
};

/// Chooses a decomposition of `query` of width <= max_width by estimated
/// bag cost over `db` statistics. Error statuses mirror DecomposeQuery
/// (NotFound when no decomposition of width <= max_width exists).
Result<DecompositionChoice> RankDecompositions(const Database& db,
                                               const ConjunctiveQuery& query,
                                               const CostModel& model,
                                               size_t max_width,
                                               size_t max_candidates = 8);

}  // namespace uocqa

#endif  // UOCQA_PLANNER_GHD_RANK_H_
