// The planner facade: one call that fixes every degree of freedom the
// pipeline used to pick ad hoc — the atom evaluation order (previously
// QueryEvaluator's one-shot greedy) and the hypertree decomposition
// (previously the first one found). Planning runs once per compiled query
// (ocqa/engine.cc) so the service plan cache amortizes it, and is purely a
// search-effort optimization: the chosen order and decomposition never
// change homomorphism sets, exact counts, or (at a fixed seed)
// FPRAS/Monte-Carlo estimates.

#ifndef UOCQA_PLANNER_PLANNER_H_
#define UOCQA_PLANNER_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "db/database.h"
#include "hypertree/decomposition.h"
#include "planner/ghd_rank.h"
#include "planner/join_order.h"
#include "query/cq.h"

namespace uocqa {

struct PlannerOptions {
  JoinOrderOptions join_order;
  /// Decomposition candidates ranked per width (1 = legacy first-found).
  size_t max_ghd_candidates = 8;
};

struct QueryPlan {
  // Atom evaluation order.
  std::vector<size_t> join_order;
  double order_cost = 0;
  double greedy_cost = 0;
  bool exact_order = false;

  // Decomposition.
  HypertreeDecomposition decomposition;
  double decomposition_cost = 0;
  size_t decomposition_width = 0;
  size_t decomposition_candidates = 0;

  /// Relation name per query atom, for readable explain output.
  std::vector<std::string> atom_names;

  /// Wall-clock planning time, stamped by the caller (the engine); excluded
  /// from Fields() so cached result payloads replay byte-identically.
  int64_t planning_micros = 0;

  /// Deterministic `key=value` fields for the service explain payload:
  /// plan_order, plan_cost, plan_greedy_cost, plan_exact, plan_width,
  /// plan_bags, plan_decomp_cost, plan_candidates. No timing, no spaces
  /// inside values.
  std::string Fields() const;

  /// Human-readable multi-line form for `uocqa --explain`.
  std::string ToString() const;
};

/// Plans `query` over `db`: cost model, join order, ranked decomposition.
/// Fails exactly when DecomposeQuery would (no decomposition of width <=
/// max_width); join ordering itself cannot fail.
Result<QueryPlan> PlanQuery(const Database& db, const ConjunctiveQuery& query,
                            size_t max_width,
                            const PlannerOptions& options = {});

}  // namespace uocqa

#endif  // UOCQA_PLANNER_PLANNER_H_
