// Join-order search over the cost model of cost.h.
//
// Small queries (<= dp_max_atoms atoms) get a Selinger-style dynamic
// program over atom subsets. Because the cost metric — the sum of
// estimated prefix-join cardinalities — assigns every prefix *set* a cost
// independent of the order within the prefix, the subset DP is exact:
// dp[S] = card(S) + min over a in S of dp[S \ {a}]. Larger queries fall
// back to iterated randomized greedy under a seeded Rng (deterministic
// restarts via Rng::Stream). The greedy order of query/eval.h is always
// evaluated as the incumbent, and wins ties, so planning can only keep or
// strictly improve the modeled cost — and never changes results, only
// search effort.

#ifndef UOCQA_PLANNER_JOIN_ORDER_H_
#define UOCQA_PLANNER_JOIN_ORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "db/database.h"
#include "planner/cost.h"
#include "query/cq.h"

namespace uocqa {

struct JoinOrderOptions {
  /// Largest atom count for the exact subset DP (2^n subsets).
  size_t dp_max_atoms = 12;
  /// Randomized-greedy restarts for larger queries.
  size_t restarts = 16;
  /// Seed for the restart Rng streams. Planning consumes no draws from any
  /// sampler RNG; this seed only perturbs restart tie-breaking.
  uint64_t seed = 1;
};

struct JoinOrderPlan {
  std::vector<size_t> order;  ///< permutation of 0..atom_count-1
  double cost = 0;            ///< EstimateOrderCost(order)
  double greedy_cost = 0;     ///< EstimateOrderCost(GreedyAtomOrder(...))
  bool exact = false;         ///< true when the subset DP proved optimality
};

/// Plans an atom evaluation order for `query` over `db`. Always returns a
/// valid permutation: the greedy order when the cost model is unsupported
/// or never beaten, the DP/restart winner otherwise.
JoinOrderPlan PlanJoinOrder(const Database& db, const ConjunctiveQuery& query,
                            const CostModel& model,
                            const JoinOrderOptions& options = {});

}  // namespace uocqa

#endif  // UOCQA_PLANNER_JOIN_ORDER_H_
