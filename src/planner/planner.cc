#include "planner/planner.h"

#include <cstdio>

#include "planner/cost.h"

namespace uocqa {

namespace {

/// Shortest round-trippable double (mirrors the service layer's formatting
/// so explain payloads are stable).
std::string PlanDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JoinIndices(const std::vector<size_t>& order) {
  std::string out;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(order[i]);
  }
  return out;
}

}  // namespace

std::string QueryPlan::Fields() const {
  std::string out;
  out += "plan_order=" + JoinIndices(join_order);
  out += " plan_cost=" + PlanDouble(order_cost);
  out += " plan_greedy_cost=" + PlanDouble(greedy_cost);
  out += " plan_exact=" + std::string(exact_order ? "1" : "0");
  out += " plan_width=" + std::to_string(decomposition_width);
  out += " plan_bags=" + std::to_string(decomposition.size());
  out += " plan_decomp_cost=" + PlanDouble(decomposition_cost);
  out += " plan_candidates=" + std::to_string(decomposition_candidates);
  return out;
}

std::string QueryPlan::ToString() const {
  std::string out;
  out += "join order:    ";
  for (size_t i = 0; i < join_order.size(); ++i) {
    if (i > 0) out += ", ";
    size_t atom = join_order[i];
    out += atom < atom_names.size() ? atom_names[atom] : "?";
    out += "#" + std::to_string(atom);
  }
  out += "\n  est. cost " + PlanDouble(order_cost) + " (greedy " +
         PlanDouble(greedy_cost) + ", " +
         (exact_order ? "exact subset DP" : "greedy/restarts") + ")\n";
  out += "decomposition: width " + std::to_string(decomposition_width) +
         ", " + std::to_string(decomposition.size()) + " bag(s), est. cost " +
         PlanDouble(decomposition_cost) + ", " +
         std::to_string(decomposition_candidates) +
         " candidate(s) considered\n";
  out += "planning time: " + std::to_string(planning_micros) + " us\n";
  return out;
}

Result<QueryPlan> PlanQuery(const Database& db, const ConjunctiveQuery& query,
                            size_t max_width, const PlannerOptions& options) {
  CostModel model(db, query);
  QueryPlan plan;

  JoinOrderPlan order = PlanJoinOrder(db, query, model, options.join_order);
  plan.join_order = std::move(order.order);
  plan.order_cost = order.cost;
  plan.greedy_cost = order.greedy_cost;
  plan.exact_order = order.exact;

  UOCQA_ASSIGN_OR_RETURN(
      DecompositionChoice choice,
      RankDecompositions(db, query, model, max_width,
                         options.max_ghd_candidates));
  plan.decomposition = std::move(choice.decomposition);
  plan.decomposition_cost = choice.cost;
  plan.decomposition_width = choice.width;
  plan.decomposition_candidates = choice.candidates_considered;

  plan.atom_names.reserve(query.atom_count());
  for (const QueryAtom& atom : query.atoms()) {
    plan.atom_names.push_back(query.schema().name(atom.relation));
  }
  return plan;
}

}  // namespace uocqa
