// The ♯H-Coloring reduction of Appendix A (Theorem 3.4): OCQA_ur and
// OCQA_us over SJF ∩ GHW_k are ♯P-hard.
//
// H (Figure 1) is the fixed bipartite graph on {1L,0L,?L} × {1R,0R,?R} with
// all cross edges except {1L, 1R}. Dyer–Greenhill implies ♯H-Coloring is
// ♯P-hard. For a connected bipartite input graph G the reduction builds
// (D_G^k, Sigma, Q_k) such that
//   |hom(G, H)| = 2 · 3^{|V_G|} · (1 − RF_ur(D_G^k, Sigma, Q_k, ())),
// so an OCQA oracle counts H-colorings (algorithm HOM).

#ifndef UOCQA_REDUCTIONS_HCOLORING_H_
#define UOCQA_REDUCTIONS_HCOLORING_H_

#include <cstdint>
#include <functional>

#include "base/bigint.h"
#include "base/status.h"
#include "db/database.h"
#include "db/keys.h"
#include "query/cq.h"
#include "reductions/graph.h"

namespace uocqa {

/// The fixed 6-vertex graph H of Figure 1. Vertices 0..5 are
/// 1L, 0L, ?L, 1R, 0R, ?R.
UGraph FigureOneGraphH();

/// |hom(G, H)| by brute force (6^|V|; validation only).
BigInt CountHomomorphismsToH(const UGraph& g);

/// The OCQA instance (D_G^k, Sigma, Q_k) for a connected bipartite graph G
/// with the given side assignment (0 = left, 1 = right).
struct HColoringInstance {
  Database db;
  KeySet keys;
  ConjunctiveQuery query;  // Boolean, self-join-free, clique-padded by k
};
Result<HColoringInstance> BuildHColoringInstance(const UGraph& g,
                                                 const std::vector<int>& side,
                                                 size_t k);

/// An oracle for RF_ur(D, Sigma, Q, ()) — exact or approximate.
using RfOracle = std::function<double(const Database&, const KeySet&,
                                      const ConjunctiveQuery&)>;

/// The algorithm HOM(G) of Appendix A.1: counts |hom(G, H)| with one oracle
/// call. `k` pads the query's width. Requires a connected G.
Result<double> HomViaOcqa(const UGraph& g, size_t k, const RfOracle& oracle);

/// Exact BigInt variant using the identity 2 * (3^|V| - numerator), where
/// `numerator` = |{D' ∈ ORep : D' |= Q_k}| computed by the caller.
BigInt HomFromNumerator(size_t vertex_count, const BigInt& numerator);

}  // namespace uocqa

#endif  // UOCQA_REDUCTIONS_HCOLORING_H_
