// Small undirected-graph utilities backing the hardness reductions of
// Appendices A and B (♯H-Coloring inputs, 3-colorability inputs).

#ifndef UOCQA_REDUCTIONS_GRAPH_H_
#define UOCQA_REDUCTIONS_GRAPH_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace uocqa {

class UGraph {
 public:
  explicit UGraph(size_t n = 0) : n_(n), adj_(n) {}

  size_t vertex_count() const { return n_; }
  const std::vector<std::pair<size_t, size_t>>& edges() const {
    return edges_;
  }
  const std::vector<size_t>& Neighbors(size_t v) const { return adj_[v]; }

  /// Adds an undirected edge (deduplicated; self-loops allowed).
  void AddEdge(size_t u, size_t v);

  bool HasEdge(size_t u, size_t v) const;

  bool IsConnected() const;

  /// Returns a 0/1 side assignment if bipartite, nullopt otherwise.
  std::optional<std::vector<int>> BipartitionOrNull() const;

  /// Brute-force 3-colorability (exponential; small graphs only).
  bool IsThreeColorable() const;

 private:
  size_t n_;
  std::vector<std::vector<size_t>> adj_;
  std::vector<std::pair<size_t, size_t>> edges_;
};

}  // namespace uocqa

#endif  // UOCQA_REDUCTIONS_GRAPH_H_
