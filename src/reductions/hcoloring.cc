#include "reductions/hcoloring.h"

#include <cassert>
#include <cmath>
#include <functional>
#include <string>

namespace uocqa {

UGraph FigureOneGraphH() {
  // 0:1L 1:0L 2:?L 3:1R 4:0R 5:?R — all L×R edges except {1L, 1R}.
  UGraph h(6);
  for (size_t l = 0; l < 3; ++l) {
    for (size_t r = 3; r < 6; ++r) {
      if (l == 0 && r == 3) continue;  // the missing (1L, 1R) edge
      h.AddEdge(l, r);
    }
  }
  return h;
}

BigInt CountHomomorphismsToH(const UGraph& g) {
  UGraph h = FigureOneGraphH();
  size_t n = g.vertex_count();
  BigInt count;
  std::vector<size_t> image(n, 0);
  std::function<void(size_t)> rec = [&](size_t v) {
    if (v == n) {
      count += uint64_t{1};
      return;
    }
    for (size_t target = 0; target < 6; ++target) {
      bool ok = true;
      for (size_t u : g.Neighbors(v)) {
        if (u < v && !h.HasEdge(image[u], target)) {
          ok = false;
          break;
        }
        if (u == v) ok = false;  // self-loops have no H-image (H loop-free)
      }
      if (ok) {
        image[v] = target;
        rec(v + 1);
      }
    }
  };
  rec(0);
  return count;
}

Result<HColoringInstance> BuildHColoringInstance(const UGraph& g,
                                                 const std::vector<int>& side,
                                                 size_t k) {
  if (side.size() != g.vertex_count()) {
    return Status::InvalidArgument("side assignment size mismatch");
  }
  HColoringInstance inst;
  Schema s;
  s.AddRelationOrDie("VL", 2);
  s.AddRelationOrDie("VR", 2);
  s.AddRelationOrDie("E", 2);
  s.AddRelationOrDie("T", 1);
  s.AddRelationOrDie("Tp", 1);
  for (size_t i = 1; i <= k + 1; ++i) {
    for (size_t j = i + 1; j <= k + 1; ++j) {
      s.AddRelationOrDie("C" + std::to_string(i) + "_" + std::to_string(j),
                         2);
    }
  }
  inst.db = Database(s);
  auto vname = [](size_t u) { return "v" + std::to_string(u); };
  for (size_t u = 0; u < g.vertex_count(); ++u) {
    const char* rel = side[u] == 0 ? "VL" : "VR";
    inst.db.Add(rel, {vname(u), "0"});
    inst.db.Add(rel, {vname(u), "1"});
  }
  for (const auto& [u, v] : g.edges()) {
    // Orient edges left-to-right to match Q_k's E(x,y), VL(x,·), VR(y,·).
    size_t l = side[u] == 0 ? u : v;
    size_t r = side[u] == 0 ? v : u;
    if (side[l] != 0 || side[r] != 1) {
      return Status::InvalidArgument("side assignment is not a bipartition");
    }
    inst.db.Add("E", {vname(l), vname(r)});
  }
  inst.db.Add("T", {"1"});
  inst.db.Add("Tp", {"1"});
  for (size_t i = 1; i <= k + 1; ++i) {
    for (size_t j = i + 1; j <= k + 1; ++j) {
      inst.db.Add("C" + std::to_string(i) + "_" + std::to_string(j),
                  {std::to_string(i), std::to_string(j)});
    }
  }
  inst.keys.SetKeyOrDie(s.Find("VL"), {0});
  inst.keys.SetKeyOrDie(s.Find("VR"), {0});

  // Q_k: Ans() :- E(x,y), VL(x,z), VR(y,z'), T(z), Tp(z'), clique(C_ij).
  inst.query = ConjunctiveQuery(s);
  VarId x = inst.query.AddVariable("x");
  VarId y = inst.query.AddVariable("y");
  VarId z = inst.query.AddVariable("z");
  VarId zp = inst.query.AddVariable("zp");
  inst.query.AddAtom(s.Find("E"), {Term::Var(x), Term::Var(y)});
  inst.query.AddAtom(s.Find("VL"), {Term::Var(x), Term::Var(z)});
  inst.query.AddAtom(s.Find("VR"), {Term::Var(y), Term::Var(zp)});
  inst.query.AddAtom(s.Find("T"), {Term::Var(z)});
  inst.query.AddAtom(s.Find("Tp"), {Term::Var(zp)});
  for (size_t i = 1; i <= k + 1; ++i) {
    for (size_t j = i + 1; j <= k + 1; ++j) {
      VarId wi = inst.query.AddVariable("w" + std::to_string(i));
      VarId wj = inst.query.AddVariable("w" + std::to_string(j));
      inst.query.AddAtom(
          s.Find("C" + std::to_string(i) + "_" + std::to_string(j)),
          {Term::Var(wi), Term::Var(wj)});
    }
  }
  assert(inst.query.IsSelfJoinFree());
  return inst;
}

Result<double> HomViaOcqa(const UGraph& g, size_t k, const RfOracle& oracle) {
  if (!g.IsConnected()) {
    return Status::InvalidArgument("HOM requires a connected graph");
  }
  // Step 1: a single isolated vertex has six homomorphisms.
  if (g.vertex_count() == 1 && g.edges().empty()) return 6.0;
  // Step 2: non-bipartite graphs have none.
  std::optional<std::vector<int>> side = g.BipartitionOrNull();
  if (!side.has_value()) return 0.0;
  // Steps 3-4: one oracle call.
  UOCQA_ASSIGN_OR_RETURN(HColoringInstance inst,
                         BuildHColoringInstance(g, *side, k));
  double r = oracle(inst.db, inst.keys, inst.query);
  return 2.0 * std::pow(3.0, static_cast<double>(g.vertex_count())) *
         (1.0 - r);
}

BigInt HomFromNumerator(size_t vertex_count, const BigInt& numerator) {
  BigInt total(1);
  for (size_t i = 0; i < vertex_count; ++i) total *= uint64_t{3};
  assert(numerator <= total);
  return (total - numerator) * uint64_t{2};
}

}  // namespace uocqa
