#include "reductions/mon2sat.h"

#include <string>

namespace uocqa {

BigInt CountSatisfyingAssignments(const Pos2Cnf& formula) {
  BigInt count;
  size_t n = formula.variable_count;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    bool ok = true;
    for (const auto& [a, b] : formula.clauses) {
      if (((mask >> a) & 1) == 0 && ((mask >> b) & 1) == 0) {
        ok = false;
        break;
      }
    }
    if (ok) count += uint64_t{1};
  }
  return count;
}

Result<Mon2SatInstance> BuildMon2SatInstance(const Pos2Cnf& formula,
                                             size_t k) {
  for (const auto& [a, b] : formula.clauses) {
    if (a >= formula.variable_count || b >= formula.variable_count) {
      return Status::InvalidArgument("clause variable out of range");
    }
  }
  Mon2SatInstance inst;
  Schema s;
  for (size_t i = 0; i < formula.clauses.size(); ++i) {
    s.AddRelationOrDie("C" + std::to_string(i), 2);
  }
  for (size_t v = 0; v < formula.variable_count; ++v) {
    s.AddRelationOrDie("Var" + std::to_string(v), 1);
  }
  s.AddRelationOrDie("V", 2);
  s.AddRelationOrDie("E", 2);

  inst.db = Database(s);
  auto vname = [](size_t v) { return "x" + std::to_string(v); };
  for (size_t i = 0; i < formula.clauses.size(); ++i) {
    inst.db.Add("C" + std::to_string(i),
                {vname(formula.clauses[i].first), "1"});
    inst.db.Add("C" + std::to_string(i),
                {vname(formula.clauses[i].second), "1"});
  }
  for (size_t v = 0; v < formula.variable_count; ++v) {
    inst.db.Add("Var" + std::to_string(v), {vname(v)});
    inst.db.Add("V", {vname(v), "0"});
    inst.db.Add("V", {vname(v), "1"});
  }
  for (size_t i = 1; i <= k + 1; ++i) {
    for (size_t j = i + 1; j <= k + 1; ++j) {
      inst.db.Add("E", {std::to_string(i), std::to_string(j)});
    }
  }
  inst.keys.SetKeyOrDie(s.Find("V"), {0});

  // Q_φ^k = ψ1 ∧ ψ2 ∧ ψ3 (Boolean; relation V repeats — self-joins).
  inst.query = ConjunctiveQuery(s);
  for (size_t i = 0; i < formula.clauses.size(); ++i) {
    VarId xi = inst.query.AddVariable("cx" + std::to_string(i));
    VarId yi = inst.query.AddVariable("cy" + std::to_string(i));
    inst.query.AddAtom(s.Find("C" + std::to_string(i)),
                       {Term::Var(xi), Term::Var(yi)});
    inst.query.AddAtom(s.Find("V"), {Term::Var(xi), Term::Var(yi)});
  }
  for (size_t v = 0; v < formula.variable_count; ++v) {
    VarId zv = inst.query.AddVariable("z" + std::to_string(v));
    VarId wild = inst.query.AddFreshVariable("any");
    inst.query.AddAtom(s.Find("Var" + std::to_string(v)), {Term::Var(zv)});
    inst.query.AddAtom(s.Find("V"), {Term::Var(zv), Term::Var(wild)});
  }
  for (size_t i = 1; i <= k + 1; ++i) {
    for (size_t j = i + 1; j <= k + 1; ++j) {
      VarId wi = inst.query.AddVariable("w" + std::to_string(i));
      VarId wj = inst.query.AddVariable("w" + std::to_string(j));
      inst.query.AddAtom(s.Find("E"), {Term::Var(wi), Term::Var(wj)});
    }
  }
  return inst;
}

}  // namespace uocqa
