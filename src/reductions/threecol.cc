#include "reductions/threecol.h"

#include <string>

#include "query/eval.h"

namespace uocqa {

Result<ThreeColInstance> BuildThreeColInstance(const UGraph& g) {
  ThreeColInstance inst;
  Schema s;
  auto rel_name = [](size_t u, size_t v) {
    return "C" + std::to_string(u) + "_" + std::to_string(v);
  };
  for (const auto& [u, v] : g.edges()) {
    s.AddRelationOrDie(rel_name(u, v), 2);
    s.AddRelationOrDie(rel_name(v, u), 2);
  }
  if (g.edges().empty()) {
    return Status::InvalidArgument("graph must have at least one edge");
  }
  inst.db = Database(s);
  for (const auto& [u, v] : g.edges()) {
    for (int i = 1; i <= 3; ++i) {
      for (int j = 1; j <= 3; ++j) {
        if (i == j) continue;
        inst.db.Add(rel_name(u, v), {std::to_string(i), std::to_string(j)});
        inst.db.Add(rel_name(v, u), {std::to_string(i), std::to_string(j)});
      }
    }
  }
  // Sigma is empty: the database is trivially consistent.
  inst.query = ConjunctiveQuery(s);
  for (const auto& [u, v] : g.edges()) {
    VarId xu = inst.query.AddVariable("x" + std::to_string(u));
    VarId xv = inst.query.AddVariable("x" + std::to_string(v));
    inst.query.AddAtom(s.Find(rel_name(u, v)),
                       {Term::Var(xu), Term::Var(xv)});
    inst.query.AddAtom(s.Find(rel_name(v, u)),
                       {Term::Var(xv), Term::Var(xu)});
  }
  return inst;
}

bool PosOcqaThreeCol(const ThreeColInstance& inst) {
  // The unique operational repair of a consistent database is itself, so
  // RF_ur > 0 iff D |= Q_G.
  return Entails(inst.db, inst.query);
}

}  // namespace uocqa
