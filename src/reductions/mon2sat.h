// The ♯MON2SAT reduction of Appendix B.2 (Theorem 3.5 item (2)): for every
// k > 0, OCQA_ur[GHW_k] (self-joins allowed!) has no FPRAS unless RP = NP.
//
// For a Pos2CNF formula φ over n variables the instance (D_φ^k, Sigma,
// Q_φ^k) satisfies
//     RF_ur(D_φ^k, Sigma, Q_φ^k, ()) = ♯φ / 3^n = RF_us(...),
// so an FPRAS for OCQA would approximately count monotone-2SAT models,
// which is impossible unless NP = RP. The query keeps width k via a
// (k+1)-clique sub-query over E and repeats the relation V across clauses —
// the self-joins are what breaks Theorem 3.6's assumptions.

#ifndef UOCQA_REDUCTIONS_MON2SAT_H_
#define UOCQA_REDUCTIONS_MON2SAT_H_

#include <cstdint>
#include <vector>

#include "base/bigint.h"
#include "base/status.h"
#include "db/database.h"
#include "db/keys.h"
#include "query/cq.h"

namespace uocqa {

/// A positive 2CNF formula: clauses (v1 ∨ v2) over variables 0..n-1.
struct Pos2Cnf {
  size_t variable_count = 0;
  std::vector<std::pair<size_t, size_t>> clauses;
};

/// ♯φ by brute force over assignments (2^n; validation only).
BigInt CountSatisfyingAssignments(const Pos2Cnf& formula);

struct Mon2SatInstance {
  Database db;
  KeySet keys;
  ConjunctiveQuery query;  // Boolean, generalized hypertreewidth k, self-joins
};

/// Builds (D_φ^k, Sigma, Q_φ^k).
Result<Mon2SatInstance> BuildMon2SatInstance(const Pos2Cnf& formula,
                                             size_t k);

}  // namespace uocqa

#endif  // UOCQA_REDUCTIONS_MON2SAT_H_
