// The 3-Colorability reduction of Appendix B.1 (Theorem 3.5 item (1)):
// PosOCQA_ur[SJF] is NP-hard, so OCQA_ur[SJF] has no FPRAS unless RP = NP.
//
// For a graph G the instance (D_G, Sigma = ∅, Q_G) satisfies
// RF_ur(D_G, ∅, Q_G, ()) = 1 iff G is 3-colorable, 0 otherwise (the only
// operational repair of a consistent database is the database itself). The
// query Q_G is self-join-free but of unbounded generalized hypertreewidth —
// exactly the restriction Theorem 3.6 needs to drop.

#ifndef UOCQA_REDUCTIONS_THREECOL_H_
#define UOCQA_REDUCTIONS_THREECOL_H_

#include "base/status.h"
#include "db/database.h"
#include "db/keys.h"
#include "query/cq.h"
#include "reductions/graph.h"

namespace uocqa {

struct ThreeColInstance {
  Database db;
  KeySet keys;  // empty
  ConjunctiveQuery query;
};

/// Builds (D_G, ∅, Q_G) for an undirected graph G.
Result<ThreeColInstance> BuildThreeColInstance(const UGraph& g);

/// PosOCQA_ur on the instance: RF_ur > 0, decided exactly (query
/// evaluation on the unique repair).
bool PosOcqaThreeCol(const ThreeColInstance& inst);

}  // namespace uocqa

#endif  // UOCQA_REDUCTIONS_THREECOL_H_
