#include "reductions/graph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>

namespace uocqa {

void UGraph::AddEdge(size_t u, size_t v) {
  assert(u < n_ && v < n_);
  if (HasEdge(u, v)) return;
  adj_[u].push_back(v);
  if (u != v) adj_[v].push_back(u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

bool UGraph::HasEdge(size_t u, size_t v) const {
  return std::find(adj_[u].begin(), adj_[u].end(), v) != adj_[u].end();
}

bool UGraph::IsConnected() const {
  if (n_ == 0) return true;
  std::vector<bool> seen(n_, false);
  std::deque<size_t> queue{0};
  seen[0] = true;
  size_t count = 1;
  while (!queue.empty()) {
    size_t u = queue.front();
    queue.pop_front();
    for (size_t v : adj_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        queue.push_back(v);
      }
    }
  }
  return count == n_;
}

std::optional<std::vector<int>> UGraph::BipartitionOrNull() const {
  std::vector<int> side(n_, -1);
  for (size_t start = 0; start < n_; ++start) {
    if (side[start] != -1) continue;
    side[start] = 0;
    std::deque<size_t> queue{start};
    while (!queue.empty()) {
      size_t u = queue.front();
      queue.pop_front();
      for (size_t v : adj_[u]) {
        if (side[v] == -1) {
          side[v] = 1 - side[u];
          queue.push_back(v);
        } else if (side[v] == side[u]) {
          return std::nullopt;
        }
      }
    }
  }
  return side;
}

bool UGraph::IsThreeColorable() const {
  std::vector<int> color(n_, -1);
  std::function<bool(size_t)> rec = [&](size_t v) {
    if (v == n_) return true;
    for (int c = 0; c < 3; ++c) {
      bool ok = true;
      for (size_t u : adj_[v]) {
        if (u < v && color[u] == c) {
          ok = false;
          break;
        }
        if (u == v) ok = false;  // self-loop: never colorable
      }
      if (ok) {
        color[v] = c;
        if (rec(v + 1)) return true;
        color[v] = -1;
      }
    }
    return false;
  };
  return rec(0);
}

}  // namespace uocqa
