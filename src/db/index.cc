#include "db/index.h"

#include <cassert>

namespace uocqa {

namespace {

const std::vector<FactId>& EmptyFactList() {
  static const std::vector<FactId> kEmpty;
  return kEmpty;
}

}  // namespace

void DatabaseIndex::OnFactAdded(const Fact& fact, FactId id) {
  assert(fact.relation != kInvalidRelation);
  if (fact.relation >= by_relation_.size()) {
    by_relation_.resize(fact.relation + 1);
    inverted_.resize(fact.relation + 1);
    mcv_freq_.resize(fact.relation + 1);
  }
  std::vector<FactId>& rel_facts = by_relation_[fact.relation];
  assert(rel_facts.empty() || rel_facts.back() < id);
  rel_facts.push_back(id);
  std::vector<ColumnIndex>& cols = inverted_[fact.relation];
  if (cols.size() < fact.args.size()) cols.resize(fact.args.size());
  std::vector<size_t>& mcv = mcv_freq_[fact.relation];
  if (mcv.size() < fact.args.size()) mcv.resize(fact.args.size(), 0);
  for (size_t pos = 0; pos < fact.args.size(); ++pos) {
    Value v = fact.args[pos];
    std::vector<FactId>& postings = cols[pos][v];
    postings.push_back(id);
    // Only the posting list that grew can take over the maximum.
    if (postings.size() > mcv[pos]) mcv[pos] = postings.size();
    if (domain_seen_.insert(v).second) active_domain_.push_back(v);
  }
  ++total_facts_;
}

const std::vector<FactId>& DatabaseIndex::FactsOfRelation(
    RelationId rel) const {
  if (rel >= by_relation_.size()) return EmptyFactList();
  return by_relation_[rel];
}

const std::vector<FactId>& DatabaseIndex::FactsWith(RelationId rel,
                                                    uint32_t pos,
                                                    Value value) const {
  if (rel >= inverted_.size() || pos >= inverted_[rel].size()) {
    return EmptyFactList();
  }
  const ColumnIndex& col = inverted_[rel][pos];
  auto it = col.find(value);
  return it == col.end() ? EmptyFactList() : it->second;
}

const std::vector<FactId>& DatabaseIndex::Candidates(
    RelationId rel, const std::vector<BoundArg>& bound) const {
  if (bound.empty()) return FactsOfRelation(rel);
  const std::vector<FactId>* best = nullptr;
  for (const BoundArg& b : bound) {
    const std::vector<FactId>& postings = FactsWith(rel, b.first, b.second);
    if (best == nullptr || postings.size() < best->size()) best = &postings;
    if (best->empty()) break;
  }
  return *best;
}

size_t DatabaseIndex::RelationCardinality(RelationId rel) const {
  return FactsOfRelation(rel).size();
}

size_t DatabaseIndex::DistinctValues(RelationId rel, uint32_t pos) const {
  if (rel >= inverted_.size() || pos >= inverted_[rel].size()) return 0;
  return inverted_[rel][pos].size();
}

size_t DatabaseIndex::MostCommonFrequency(RelationId rel,
                                          uint32_t pos) const {
  if (rel >= mcv_freq_.size() || pos >= mcv_freq_[rel].size()) return 0;
  return mcv_freq_[rel][pos];
}

double DatabaseIndex::EstimateMatches(
    RelationId rel, const std::vector<BoundArg>& consts,
    const std::vector<uint32_t>& bound_positions) const {
  size_t cardinality = RelationCardinality(rel);
  if (cardinality == 0) return 0;
  double est = static_cast<double>(cardinality);
  for (const BoundArg& c : consts) {
    size_t matches = FactsWith(rel, c.first, c.second).size();
    if (matches == 0) return 0;
    est *= static_cast<double>(matches) / static_cast<double>(cardinality);
  }
  for (uint32_t pos : bound_positions) {
    size_t distinct = DistinctValues(rel, pos);
    if (distinct > 1) est /= static_cast<double>(distinct);
  }
  return est;
}

}  // namespace uocqa
