// Facts R(c1, ..., cn) over a schema (paper §2).

#ifndef UOCQA_DB_FACT_H_
#define UOCQA_DB_FACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/hashing.h"
#include "db/schema.h"
#include "db/value.h"

namespace uocqa {

/// Dense index of a fact within a Database (insertion order, stable).
using FactId = uint32_t;

constexpr FactId kInvalidFact = static_cast<FactId>(-1);

/// A ground atom: relation id plus a tuple of interned constants.
struct Fact {
  RelationId relation = kInvalidRelation;
  std::vector<Value> args;

  Fact() = default;
  Fact(RelationId rel, std::vector<Value> a)
      : relation(rel), args(std::move(a)) {}

  bool operator==(const Fact& o) const {
    return relation == o.relation && args == o.args;
  }
  bool operator!=(const Fact& o) const { return !(*this == o); }
  bool operator<(const Fact& o) const {
    if (relation != o.relation) return relation < o.relation;
    return args < o.args;
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    size_t seed = std::hash<uint32_t>{}(f.relation);
    for (Value v : f.args) HashCombine(&seed, std::hash<uint32_t>{}(v));
    return seed;
  }
};

/// Renders "R(a,b,c)" using the schema for the relation name and the
/// ValuePool for constant names.
std::string FactToString(const Schema& schema, const Fact& fact);

/// Convenience constructor interning string constants.
Fact MakeFact(const Schema& schema, std::string_view relation,
              const std::vector<std::string>& constants);

}  // namespace uocqa

#endif  // UOCQA_DB_FACT_H_
