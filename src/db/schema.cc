#include "db/schema.h"

#include <cassert>

namespace uocqa {

Result<RelationId> Schema::AddRelation(std::string_view name, uint32_t arity) {
  if (arity == 0) {
    return Status::InvalidArgument("relation arity must be positive: " +
                                   std::string(name));
  }
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    if (arities_[it->second] != arity) {
      return Status::InvalidArgument(
          "relation " + std::string(name) + " redeclared with arity " +
          std::to_string(arity) + " (was " +
          std::to_string(arities_[it->second]) + ")");
    }
    return it->second;
  }
  RelationId id = static_cast<RelationId>(names_.size());
  names_.emplace_back(name);
  arities_.push_back(arity);
  index_.emplace(names_.back(), id);
  return id;
}

RelationId Schema::AddRelationOrDie(std::string_view name, uint32_t arity) {
  Result<RelationId> r = AddRelation(name, arity);
  assert(r.ok());
  return r.value();
}

RelationId Schema::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidRelation : it->second;
}

}  // namespace uocqa
