// Relational schemas: a finite set of relation names with arities (paper §2).

#ifndef UOCQA_DB_SCHEMA_H_
#define UOCQA_DB_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"

namespace uocqa {

/// Dense id of a relation within a Schema.
using RelationId = uint32_t;

constexpr RelationId kInvalidRelation = static_cast<RelationId>(-1);

/// A schema S: relation names R/n with associated arity n > 0.
/// Value type; cheap to copy for the sizes used here.
class Schema {
 public:
  /// Adds a relation; returns its id. Re-adding an existing name with the
  /// same arity returns the existing id; a different arity is an error.
  Result<RelationId> AddRelation(std::string_view name, uint32_t arity);

  /// Adds a relation, asserting success (for programmatic construction).
  RelationId AddRelationOrDie(std::string_view name, uint32_t arity);

  /// Finds a relation id by name; kInvalidRelation if absent.
  RelationId Find(std::string_view name) const;

  bool Contains(std::string_view name) const {
    return Find(name) != kInvalidRelation;
  }

  uint32_t arity(RelationId r) const { return arities_[r]; }
  const std::string& name(RelationId r) const { return names_[r]; }
  size_t relation_count() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<uint32_t> arities_;
  std::unordered_map<std::string, RelationId> index_;
};

}  // namespace uocqa

#endif  // UOCQA_DB_SCHEMA_H_
