// Pairwise integrity constraints.
//
// The operational framework of [11] only needs one primitive from the
// constraint language: which *pairs* of facts jointly violate the
// constraints ({f,g} |≠ Sigma justifies the operations -{f}, -{g} and
// -{f,g}). Primary keys (paper's focus) and functional dependencies (§6's
// future work, implemented in db/fds.h) are both pairwise, so the
// operations/sequences machinery is written against this interface; only
// the *counting* results (block independence) are key-specific.

#ifndef UOCQA_DB_CONSTRAINTS_H_
#define UOCQA_DB_CONSTRAINTS_H_

#include <vector>

#include "db/database.h"
#include "db/fact.h"

namespace uocqa {

class PairwiseConstraints {
 public:
  virtual ~PairwiseConstraints() = default;

  /// {f, g} |≠ Sigma? (f and g distinct facts).
  virtual bool ViolatingPair(const Fact& f, const Fact& g) const = 0;

  /// D |= Sigma: no violating pair. Default: all-pairs scan.
  virtual bool SatisfiedBy(const Database& db) const;

  /// All violating pairs (i < j). Default: all-pairs scan.
  virtual std::vector<std::pair<FactId, FactId>> ViolationsIn(
      const Database& db) const;
};

}  // namespace uocqa

#endif  // UOCQA_DB_CONSTRAINTS_H_
