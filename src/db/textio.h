// Text serialization for databases and key sets.
//
// Format (one statement per line; '#' starts a comment):
//   key Emp = 1            # primary key of Emp: attribute positions,
//   key R = 1 2            # 1-based as in the paper
//   Emp(1, Alice)          # a fact; constants are bare tokens or 'quoted'
//   Emp(1, Tom)
// Relations are declared implicitly by first use with the arity seen there.

#ifndef UOCQA_DB_TEXTIO_H_
#define UOCQA_DB_TEXTIO_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "db/database.h"
#include "db/keys.h"

namespace uocqa {

struct ParsedInstance {
  Database db;
  KeySet keys;
};

/// Parses the textual format above.
Result<ParsedInstance> ParseInstanceText(std::string_view text);

/// Reads and parses a file.
Result<ParsedInstance> LoadInstanceFile(const std::string& path);

/// Serializes a database + keys back into the textual format.
std::string InstanceToText(const Database& db, const KeySet& keys);

}  // namespace uocqa

#endif  // UOCQA_DB_TEXTIO_H_
