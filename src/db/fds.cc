#include "db/fds.h"

#include <algorithm>
#include <cassert>

#include "db/keys.h"

namespace uocqa {

Status FdSet::AddFd(RelationId relation, std::vector<uint32_t> lhs,
                    std::vector<uint32_t> rhs) {
  if (relation == kInvalidRelation) {
    return Status::InvalidArgument("FD over invalid relation");
  }
  std::sort(lhs.begin(), lhs.end());
  lhs.erase(std::unique(lhs.begin(), lhs.end()), lhs.end());
  std::sort(rhs.begin(), rhs.end());
  rhs.erase(std::unique(rhs.begin(), rhs.end()), rhs.end());
  // Drop trivial rhs positions (contained in lhs).
  std::vector<uint32_t> effective;
  for (uint32_t p : rhs) {
    if (!std::binary_search(lhs.begin(), lhs.end(), p)) {
      effective.push_back(p);
    }
  }
  if (effective.empty()) {
    return Status::InvalidArgument("trivial functional dependency");
  }
  fds_.push_back({relation, std::move(lhs), std::move(effective)});
  return Status::OK();
}

void FdSet::AddFdOrDie(RelationId relation, std::vector<uint32_t> lhs,
                       std::vector<uint32_t> rhs) {
  Status st = AddFd(relation, std::move(lhs), std::move(rhs));
  assert(st.ok());
  (void)st;
}

bool FdSet::ViolatingPair(const Fact& f, const Fact& g) const {
  if (f.relation != g.relation || f == g) return false;
  for (const FunctionalDependency& fd : fds_) {
    if (fd.relation != f.relation) continue;
    bool lhs_agree = true;
    for (uint32_t p : fd.lhs) {
      if (f.args[p] != g.args[p]) {
        lhs_agree = false;
        break;
      }
    }
    if (!lhs_agree) continue;
    for (uint32_t p : fd.rhs) {
      if (f.args[p] != g.args[p]) return true;
    }
  }
  return false;
}

FdSet KeysAsFds(const Schema& schema, const KeySet& keys) {
  FdSet out;
  for (const auto& [rel, positions] : keys.Entries()) {
    std::vector<uint32_t> all;
    for (uint32_t p = 0; p < schema.arity(rel); ++p) all.push_back(p);
    out.AddFdOrDie(rel, positions, all);
  }
  return out;
}

}  // namespace uocqa
