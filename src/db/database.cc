#include "db/database.h"

#include <cassert>

namespace uocqa {

FactId Database::AddFact(Fact fact) {
  assert(fact.relation < schema_.relation_count());
  assert(fact.args.size() == schema_.arity(fact.relation));
  size_t hash = FactHash{}(fact);
  std::vector<FactId>& bucket = dedup_[hash];
  for (FactId id : bucket) {
    if (facts_[id] == fact) return id;
  }
  FactId id = static_cast<FactId>(facts_.size());
  bucket.push_back(id);
  facts_.push_back(std::move(fact));
  index_.OnFactAdded(facts_.back(), id);
  return id;
}

FactId Database::Find(const Fact& fact) const {
  auto it = dedup_.find(FactHash{}(fact));
  if (it == dedup_.end()) return kInvalidFact;
  for (FactId id : it->second) {
    if (facts_[id] == fact) return id;
  }
  return kInvalidFact;
}

Database Database::Subset(const std::vector<FactId>& keep) const {
  Database out(schema_);
  for (FactId id : keep) {
    assert(id < facts_.size());
    out.AddFact(facts_[id]);
  }
  return out;
}

bool Database::operator==(const Database& o) const {
  if (facts_.size() != o.facts_.size()) return false;
  // Facts are deduplicated, so equal sizes + containment means set equality.
  for (const Fact& f : facts_) {
    if (!o.Contains(f)) return false;
  }
  return true;
}

std::string Database::ToString() const {
  std::string out;
  for (const Fact& f : facts_) {
    out += FactToString(schema_, f);
    out += '\n';
  }
  return out;
}

}  // namespace uocqa
