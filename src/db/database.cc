#include "db/database.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace uocqa {

FactId Database::AddFact(Fact fact) {
  assert(fact.relation < schema_.relation_count());
  assert(fact.args.size() == schema_.arity(fact.relation));
  auto it = index_.find(fact);
  if (it != index_.end()) return it->second;
  FactId id = static_cast<FactId>(facts_.size());
  facts_.push_back(fact);
  index_.emplace(std::move(fact), id);
  return id;
}

FactId Database::Find(const Fact& fact) const {
  auto it = index_.find(fact);
  return it == index_.end() ? kInvalidFact : it->second;
}

std::vector<Value> Database::ActiveDomain() const {
  std::vector<Value> out;
  std::unordered_set<Value> seen;
  for (const Fact& f : facts_) {
    for (Value v : f.args) {
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

std::vector<FactId> Database::FactsOfRelation(RelationId rel) const {
  std::vector<FactId> out;
  for (FactId id = 0; id < facts_.size(); ++id) {
    if (facts_[id].relation == rel) out.push_back(id);
  }
  return out;
}

Database Database::Subset(const std::vector<FactId>& keep) const {
  Database out(schema_);
  for (FactId id : keep) {
    assert(id < facts_.size());
    out.AddFact(facts_[id]);
  }
  return out;
}

std::vector<Fact> Database::SortedFacts() const {
  std::vector<Fact> out = facts_;
  std::sort(out.begin(), out.end());
  return out;
}

std::string Database::ToString() const {
  std::string out;
  for (const Fact& f : facts_) {
    out += FactToString(schema_, f);
    out += '\n';
  }
  return out;
}

}  // namespace uocqa
