// Secondary indexes over a Database's facts.
//
// Every layer of the pipeline (query evaluation, block partitioning, the
// normal-form construction, assignment enumeration) used to rediscover the
// same structure by scanning all facts. DatabaseIndex maintains that
// structure incrementally as facts are added:
//
//   - per-relation fact-id lists (FactsOfRelation in O(1)),
//   - an inverted index (relation, argument position, value) -> fact ids,
//   - the active domain dom(D) in first-seen order, and
//   - cardinality statistics (|R|, distinct values per column) that drive
//     selectivity estimates for join ordering.
//
// Fact ids grow monotonically, so every posting list is sorted by
// construction and lookups never need re-sorting. The index is owned and
// updated by Database; consumers reach it through Database::index().
//
// All accessors return references into index-internal vectors; those
// references are invalidated by the next OnFactAdded (i.e. by
// Database::AddFact). Copy the list before inserting if it must survive.

#ifndef UOCQA_DB_INDEX_H_
#define UOCQA_DB_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "db/fact.h"
#include "db/schema.h"
#include "db/value.h"

namespace uocqa {

/// One bound argument of an atom: (position, required value). Used to query
/// the inverted index for candidate facts.
using BoundArg = std::pair<uint32_t, Value>;

class DatabaseIndex {
 public:
  /// Registers a freshly inserted fact. Must be called with strictly
  /// increasing ids (Database enforces this); keeps postings sorted.
  void OnFactAdded(const Fact& fact, FactId id);

  /// Fact ids of `rel` in id order. Out-of-range relations (including
  /// kInvalidRelation) yield the empty list.
  const std::vector<FactId>& FactsOfRelation(RelationId rel) const;

  /// Fact ids of `rel` whose argument at `pos` equals `value`, in id order.
  const std::vector<FactId>& FactsWith(RelationId rel, uint32_t pos,
                                       Value value) const;

  /// The smallest available candidate superset for a conjunction of bound
  /// arguments: the shortest posting list among `bound`, or all facts of the
  /// relation when `bound` is empty. Callers must still verify every term
  /// against each candidate; the list is a superset of the exact match set.
  const std::vector<FactId>& Candidates(RelationId rel,
                                        const std::vector<BoundArg>& bound)
      const;

  /// Distinct constants over all facts, in first-seen order (dom(D)).
  const std::vector<Value>& ActiveDomain() const { return active_domain_; }

  /// Number of facts of `rel` (0 for out-of-range relations).
  size_t RelationCardinality(RelationId rel) const;

  /// Number of distinct values in column `pos` of `rel` (0 if no facts).
  size_t DistinctValues(RelationId rel, uint32_t pos) const;

  /// Frequency of the most common value in column `pos` of `rel` (0 if no
  /// facts). Maintained incrementally: the longest posting list can only be
  /// the one that just grew, so OnFactAdded keeps a running maximum. Lets
  /// the cost model detect skew that the uniform 1/distinct estimate hides.
  size_t MostCommonFrequency(RelationId rel, uint32_t pos) const;

  /// Expected number of facts of `rel` matching the bound arguments, used
  /// for greedy join ordering. Bound constants use their exact posting
  /// length; positions bound to a yet-unknown value contribute the average
  /// selectivity 1/distinct(rel, pos) under a uniform-column model.
  double EstimateMatches(RelationId rel, const std::vector<BoundArg>& consts,
                         const std::vector<uint32_t>& bound_positions) const;

  size_t total_facts() const { return total_facts_; }

 private:
  // Postings of one relation column: value -> sorted fact ids.
  using ColumnIndex = std::unordered_map<Value, std::vector<FactId>>;

  size_t total_facts_ = 0;
  std::vector<std::vector<FactId>> by_relation_;      // [rel] -> fact ids
  std::vector<std::vector<ColumnIndex>> inverted_;    // [rel][pos]
  std::vector<std::vector<size_t>> mcv_freq_;         // [rel][pos] -> max |postings|
  std::vector<Value> active_domain_;                  // first-seen order
  std::unordered_set<Value> domain_seen_;
};

}  // namespace uocqa

#endif  // UOCQA_DB_INDEX_H_
