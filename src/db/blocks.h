// Conflict blocks (paper §5.1): block_{alpha,D}(Sigma) groups the facts of D
// that share alpha's key value. Blocks are the unit of repair choice: an
// operational repair keeps at most one fact per block (or none), and blocks
// are mutually independent because all conflicts are intra-block under
// primary keys.

#ifndef UOCQA_DB_BLOCKS_H_
#define UOCQA_DB_BLOCKS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "db/database.h"
#include "db/keys.h"

namespace uocqa {

/// One conflict block: all facts of a relation sharing a key value.
struct Block {
  RelationId relation = kInvalidRelation;
  std::vector<Value> key_value;
  std::vector<FactId> facts;  // in fact-id order

  size_t size() const { return facts.size(); }
};

/// The partition of a database's facts into blocks, with a fixed total order
/// over blocks: blocks are ordered by (relation id, lexicographic key
/// value), giving the "lexicographic order among the key values" the paper
/// fixes in §5.1.
class BlockPartition {
 public:
  /// Partitions `db` into conflict blocks. Relations are independent, so
  /// with a `pool` the per-relation grouping runs in parallel; the merged
  /// result (block order, indices, fact mapping) is identical to the serial
  /// one because relations are always merged in relation-id order.
  static BlockPartition Compute(const Database& db, const KeySet& keys,
                                ThreadPool* pool = nullptr);

  /// Delta maintenance: the partition of `db` given the partition `prev` of
  /// its prefix of `first_new` facts. Relations untouched by the new facts
  /// copy their blocks from `prev`; touched relations are regrouped from the
  /// index. The result is structurally identical to Compute(db, keys) —
  /// same blocks, same global (relation id, lexicographic key value) order —
  /// at cost proportional to the untouched blocks plus the touched
  /// relations' facts, with no hashing or sorting of untouched relations.
  static BlockPartition Update(const BlockPartition& prev, const Database& db,
                               const KeySet& keys, FactId first_new);

  size_t block_count() const { return blocks_.size(); }
  const Block& block(size_t i) const { return blocks_[i]; }
  const std::vector<Block>& blocks() const { return blocks_; }

  /// Index of the block containing `fact`.
  size_t BlockOf(FactId fact) const { return block_of_fact_[fact]; }

  /// Indices (into blocks()) of the blocks of a relation, in block order.
  const std::vector<size_t>& BlocksOfRelation(RelationId rel) const;

  /// Number of blocks with >= 2 facts (the inconsistent ones).
  size_t ViolatingBlockCount() const;

  std::string ToString(const Database& db) const;

 private:
  std::vector<Block> blocks_;
  std::vector<size_t> block_of_fact_;
  std::vector<std::vector<size_t>> blocks_of_relation_;
  std::vector<size_t> empty_;
};

}  // namespace uocqa

#endif  // UOCQA_DB_BLOCKS_H_
