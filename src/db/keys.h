// Primary key constraints key(R) = A (paper §2) and the key value of a fact
// (paper §5.1): key_Sigma(R(c1..cn)) is the projection of the tuple onto the
// key positions, or the whole tuple when R has no declared key.

#ifndef UOCQA_DB_KEYS_H_
#define UOCQA_DB_KEYS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "db/constraints.h"
#include "db/database.h"
#include "db/fact.h"
#include "db/schema.h"

namespace uocqa {

/// A set of *primary* keys: at most one key per relation. Positions are
/// 0-based attribute indices (the paper uses 1-based; the parser converts).
/// Implements the PairwiseConstraints interface, so the operational
/// machinery (operations.h) works uniformly over keys and FDs.
class KeySet : public PairwiseConstraints {
 public:
  /// Declares key(R) = positions. Positions are deduplicated and sorted.
  /// Redeclaring a relation's key with a different attribute set is an error
  /// (primary keys are unique per relation).
  Status SetKey(RelationId rel, std::vector<uint32_t> positions);

  void SetKeyOrDie(RelationId rel, std::vector<uint32_t> positions);

  bool HasKey(RelationId rel) const {
    return keys_.find(rel) != keys_.end();
  }

  /// Key positions of `rel`; must have a key.
  const std::vector<uint32_t>& Positions(RelationId rel) const;

  size_t size() const { return keys_.size(); }

  /// key_Sigma(fact): projection onto key positions, or the whole tuple if
  /// the relation has no declared key.
  std::vector<Value> KeyValueOf(const Fact& fact) const;

  /// True if facts f and g jointly violate some key in this set, i.e.
  /// {f, g} |/= Sigma: same relation, equal key value, different tuples.
  bool ViolatingPair(const Fact& f, const Fact& g) const override;

  /// All (relation, key positions) entries, sorted by relation id.
  std::vector<std::pair<RelationId, std::vector<uint32_t>>> Entries() const;

 private:
  std::unordered_map<RelationId, std::vector<uint32_t>> keys_;
};

/// D |= Sigma: no two distinct facts agree on a key (paper §2).
bool IsConsistent(const Database& db, const KeySet& keys);

/// All unordered violating pairs {f, g} in `db` (fact ids, f < g).
std::vector<std::pair<FactId, FactId>> Violations(const Database& db,
                                                  const KeySet& keys);

}  // namespace uocqa

#endif  // UOCQA_DB_KEYS_H_
