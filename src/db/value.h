// Interned constant values.
//
// Databases, queries and repairs manipulate constants heavily (hashing,
// equality, ordering). Constants are interned process-wide into dense
// uint32 ids so facts are small PODs and comparisons are integer compares.

#ifndef UOCQA_DB_VALUE_H_
#define UOCQA_DB_VALUE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace uocqa {

/// Dense id of an interned constant.
using Value = uint32_t;

/// Process-wide constant interner. Thread-safe. Ids are assigned in first-
/// intern order and are stable for the lifetime of the process, which keeps
/// experiments reproducible given a fixed construction order.
class ValuePool {
 public:
  /// Interns `name`, returning its stable id.
  static Value Intern(std::string_view name);

  /// Interns the decimal representation of `n` (convenience for synthetic
  /// workloads).
  static Value InternInt(int64_t n);

  /// Returns the name of an interned value. The reference is stable for the
  /// process lifetime: names are stored in a deque, so a concurrent Intern
  /// of a new constant never relocates existing entries (the service batch
  /// executor reads names while other lanes intern).
  static const std::string& Name(Value v);

  /// Number of interned values so far.
  static size_t Size();

 private:
  static ValuePool& Instance();

  std::mutex mutex_;
  std::unordered_map<std::string, Value> index_;
  std::deque<std::string> names_;
};

}  // namespace uocqa

#endif  // UOCQA_DB_VALUE_H_
