#include "db/value.h"

#include <cassert>

namespace uocqa {

ValuePool& ValuePool::Instance() {
  static ValuePool* pool = new ValuePool();  // never destroyed
  return *pool;
}

Value ValuePool::Intern(std::string_view name) {
  ValuePool& p = Instance();
  std::lock_guard<std::mutex> lock(p.mutex_);
  std::string key(name);
  auto it = p.index_.find(key);
  if (it != p.index_.end()) return it->second;
  Value id = static_cast<Value>(p.names_.size());
  p.names_.push_back(key);
  p.index_.emplace(std::move(key), id);
  return id;
}

Value ValuePool::InternInt(int64_t n) { return Intern(std::to_string(n)); }

const std::string& ValuePool::Name(Value v) {
  ValuePool& p = Instance();
  std::lock_guard<std::mutex> lock(p.mutex_);
  assert(v < p.names_.size());
  return p.names_[v];
}

size_t ValuePool::Size() {
  ValuePool& p = Instance();
  std::lock_guard<std::mutex> lock(p.mutex_);
  return p.names_.size();
}

}  // namespace uocqa
