#include "db/constraints.h"

namespace uocqa {

bool PairwiseConstraints::SatisfiedBy(const Database& db) const {
  for (FactId i = 0; i < db.size(); ++i) {
    for (FactId j = i + 1; j < db.size(); ++j) {
      if (ViolatingPair(db.fact(i), db.fact(j))) return false;
    }
  }
  return true;
}

std::vector<std::pair<FactId, FactId>> PairwiseConstraints::ViolationsIn(
    const Database& db) const {
  std::vector<std::pair<FactId, FactId>> out;
  for (FactId i = 0; i < db.size(); ++i) {
    for (FactId j = i + 1; j < db.size(); ++j) {
      if (ViolatingPair(db.fact(i), db.fact(j))) out.emplace_back(i, j);
    }
  }
  return out;
}

}  // namespace uocqa
