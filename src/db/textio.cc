#include "db/textio.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "base/strings.h"

namespace uocqa {

namespace {

/// Parses "R(a, b, 'c d')" into relation name + constant tokens.
Status ParseFactLine(std::string_view line, std::string* relation,
                     std::vector<std::string>* constants) {
  size_t open = line.find('(');
  if (open == std::string_view::npos || line.back() != ')') {
    return Status::InvalidArgument("malformed fact: " + std::string(line));
  }
  *relation = std::string(StrTrim(line.substr(0, open)));
  if (relation->empty()) {
    return Status::InvalidArgument("missing relation name: " +
                                   std::string(line));
  }
  std::string_view body = line.substr(open + 1, line.size() - open - 2);
  size_t pos = 0;
  while (pos <= body.size()) {
    // Scan one argument (handles quoted constants containing commas).
    std::string token;
    bool in_quote = false;
    bool saw_any = false;
    while (pos < body.size() && (in_quote || body[pos] != ',')) {
      char c = body[pos++];
      if (c == '\'') {
        in_quote = !in_quote;
        saw_any = true;
        continue;
      }
      token.push_back(c);
      saw_any = true;
    }
    if (in_quote) {
      return Status::InvalidArgument("unterminated quote: " +
                                     std::string(line));
    }
    std::string trimmed(StrTrim(token));
    if (trimmed.empty() && !saw_any) {
      return Status::InvalidArgument("empty argument in: " +
                                     std::string(line));
    }
    constants->push_back(trimmed);
    if (pos >= body.size()) break;
    ++pos;  // skip ','
  }
  if (constants->empty()) {
    return Status::InvalidArgument("fact with no arguments: " +
                                   std::string(line));
  }
  return Status::OK();
}

}  // namespace

Result<ParsedInstance> ParseInstanceText(std::string_view text) {
  ParsedInstance out;
  // Key declarations may precede the first fact of a relation; buffer them
  // until arities are known.
  std::vector<std::pair<std::string, std::vector<uint32_t>>> pending_keys;

  size_t line_no = 0;
  for (const std::string& raw : StrSplit(text, '\n')) {
    ++line_no;
    std::string_view line = StrTrim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (StartsWith(line, "key ")) {
      size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": malformed key declaration");
      }
      std::string rel(StrTrim(line.substr(4, eq - 4)));
      std::vector<uint32_t> positions;
      std::istringstream nums{std::string(line.substr(eq + 1))};
      int p = 0;
      while (nums >> p) {
        if (p < 1) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) +
              ": key positions are 1-based and positive");
        }
        positions.push_back(static_cast<uint32_t>(p - 1));
      }
      if (positions.empty()) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": key with no positions");
      }
      pending_keys.emplace_back(std::move(rel), std::move(positions));
      continue;
    }
    std::string relation;
    std::vector<std::string> constants;
    Status st = ParseFactLine(line, &relation, &constants);
    if (!st.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + st.message());
    }
    UOCQA_ASSIGN_OR_RETURN(
        RelationId rel,
        out.db.mutable_schema().AddRelation(
            relation, static_cast<uint32_t>(constants.size())));
    (void)rel;
    out.db.Add(relation, constants);
  }

  for (auto& [rel_name, positions] : pending_keys) {
    RelationId rel = out.db.schema().Find(rel_name);
    if (rel == kInvalidRelation) {
      return Status::InvalidArgument("key declared for unknown relation " +
                                     rel_name);
    }
    for (uint32_t p : positions) {
      if (p >= out.db.schema().arity(rel)) {
        return Status::InvalidArgument("key position out of range for " +
                                       rel_name);
      }
    }
    UOCQA_RETURN_IF_ERROR(out.keys.SetKey(rel, std::move(positions)));
  }
  return out;
}

Result<ParsedInstance> LoadInstanceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseInstanceText(buffer.str());
}

std::string InstanceToText(const Database& db, const KeySet& keys) {
  std::string out;
  for (const auto& [rel, positions] : keys.Entries()) {
    out += "key " + db.schema().name(rel) + " =";
    for (uint32_t p : positions) out += ' ' + std::to_string(p + 1);
    out += '\n';
  }
  for (const Fact& f : db.facts()) {
    out += FactToString(db.schema(), f);
    out += '\n';
  }
  return out;
}

}  // namespace uocqa
