// Databases: finite sets of facts over a schema (paper §2).

#ifndef UOCQA_DB_DATABASE_H_
#define UOCQA_DB_DATABASE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/fact.h"
#include "db/index.h"
#include "db/schema.h"

namespace uocqa {

/// A finite set of facts. Facts are deduplicated; ids are assigned in
/// insertion order and never change, which gives every instance the fixed
/// fact/block orderings the paper's algorithms assume.
///
/// Every database carries a DatabaseIndex (per-relation fact lists, an
/// inverted (relation, position, value) index, the cached active domain and
/// cardinality statistics), maintained incrementally on insertion. Each fact
/// is stored exactly once, in `facts_`; deduplication goes through a
/// hash-bucket map so AddFact moves its argument into place instead of
/// copying it twice.
class Database {
 public:
  Database() = default;
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  /// Inserts a fact (no-op if present); returns its id. Pass an rvalue to
  /// move the fact into the database without copying.
  FactId AddFact(Fact fact);

  /// Convenience: interns constants and inserts.
  FactId Add(std::string_view relation,
             const std::vector<std::string>& constants) {
    return AddFact(MakeFact(schema_, relation, constants));
  }

  bool Contains(const Fact& fact) const { return Find(fact) != kInvalidFact; }

  /// Id of `fact` or kInvalidFact.
  FactId Find(const Fact& fact) const;

  size_t size() const { return facts_.size(); }
  bool empty() const { return facts_.empty(); }
  const Fact& fact(FactId id) const { return facts_[id]; }
  const std::vector<Fact>& facts() const { return facts_; }

  /// Secondary indexes: per-relation fact lists, the inverted
  /// (relation, position, value) index, active domain, statistics.
  const DatabaseIndex& index() const { return index_; }

  /// Distinct constants appearing in the database, in first-seen order
  /// (dom(D), paper §2). Cached by the index; O(1). The reference is
  /// invalidated by AddFact/Add — copy it before inserting.
  const std::vector<Value>& ActiveDomain() const {
    return index_.ActiveDomain();
  }

  /// All fact ids of a given relation, in id order. Backed by the relation
  /// index; O(1). The reference is invalidated by AddFact/Add — copy it
  /// before inserting.
  const std::vector<FactId>& FactsOfRelation(RelationId rel) const {
    return index_.FactsOfRelation(rel);
  }

  /// The sub-database carrying over only the facts in `keep` (ids refer to
  /// *this*; the result is a fresh Database sharing the schema).
  Database Subset(const std::vector<FactId>& keep) const;

  /// Multi-line rendering for debugging.
  std::string ToString() const;

  /// Set equality over facts (schema and insertion order are ignored).
  bool operator==(const Database& o) const;
  bool operator!=(const Database& o) const { return !(*this == o); }

 private:
  Schema schema_;
  std::vector<Fact> facts_;
  // Dedup map: fact hash -> ids with that hash (collisions resolved by
  // comparing against facts_). Keeps Fact storage single-copy.
  std::unordered_map<size_t, std::vector<FactId>> dedup_;
  DatabaseIndex index_;
};

}  // namespace uocqa

#endif  // UOCQA_DB_DATABASE_H_
