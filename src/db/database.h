// Databases: finite sets of facts over a schema (paper §2).

#ifndef UOCQA_DB_DATABASE_H_
#define UOCQA_DB_DATABASE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/fact.h"
#include "db/schema.h"

namespace uocqa {

/// Dense index of a fact within a Database (insertion order, stable).
using FactId = uint32_t;

constexpr FactId kInvalidFact = static_cast<FactId>(-1);

/// A finite set of facts. Facts are deduplicated; ids are assigned in
/// insertion order and never change, which gives every instance the fixed
/// fact/block orderings the paper's algorithms assume.
class Database {
 public:
  Database() = default;
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  /// Inserts a fact (no-op if present); returns its id.
  FactId AddFact(Fact fact);

  /// Convenience: interns constants and inserts.
  FactId Add(std::string_view relation,
             const std::vector<std::string>& constants) {
    return AddFact(MakeFact(schema_, relation, constants));
  }

  bool Contains(const Fact& fact) const { return Find(fact) != kInvalidFact; }

  /// Id of `fact` or kInvalidFact.
  FactId Find(const Fact& fact) const;

  size_t size() const { return facts_.size(); }
  bool empty() const { return facts_.empty(); }
  const Fact& fact(FactId id) const { return facts_[id]; }
  const std::vector<Fact>& facts() const { return facts_; }

  /// Distinct constants appearing in the database, in first-seen order
  /// (dom(D), paper §2).
  std::vector<Value> ActiveDomain() const;

  /// All fact ids of a given relation, in id order.
  std::vector<FactId> FactsOfRelation(RelationId rel) const;

  /// The sub-database carrying over only the facts in `keep` (ids refer to
  /// *this*; the result is a fresh Database sharing the schema).
  Database Subset(const std::vector<FactId>& keep) const;

  /// Multi-line rendering for debugging.
  std::string ToString() const;

  bool operator==(const Database& o) const { return SortedFacts() == o.SortedFacts(); }

 private:
  std::vector<Fact> SortedFacts() const;

  Schema schema_;
  std::vector<Fact> facts_;
  std::unordered_map<Fact, FactId, FactHash> index_;
};

}  // namespace uocqa

#endif  // UOCQA_DB_DATABASE_H_
