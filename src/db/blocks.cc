#include "db/blocks.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "base/hashing.h"

namespace uocqa {

BlockPartition BlockPartition::Compute(const Database& db, const KeySet& keys,
                                       ThreadPool* pool) {
  BlockPartition out;
  out.block_of_fact_.assign(db.size(), 0);
  size_t relation_count = db.schema().relation_count();
  out.blocks_of_relation_.assign(relation_count, {});
  // Group each relation's facts by key value via the relation index, then
  // sort that relation's (few) distinct key values. Relations are disjoint,
  // so the grouping runs per relation — in parallel when a pool is given —
  // and the serial merge below walks relations in id order, preserving the
  // paper's fixed (relation id, lexicographic key value) block order (§5.1)
  // without a global ordered-map regroup.
  using Groups = std::unordered_map<std::vector<Value>, std::vector<FactId>,
                                    VectorHash<Value>>;
  std::vector<std::vector<Block>> per_relation(relation_count);
  auto group_relation = [&](size_t r) {
    RelationId rel = static_cast<RelationId>(r);
    const std::vector<FactId>& rel_facts = db.index().FactsOfRelation(rel);
    if (rel_facts.empty()) return;
    Groups groups;
    groups.reserve(rel_facts.size());
    for (FactId id : rel_facts) {
      // rel_facts is in increasing id order, so each group's fact list is
      // already sorted by id.
      groups[keys.KeyValueOf(db.fact(id))].push_back(id);
    }
    std::vector<Groups::value_type*> ordered;
    ordered.reserve(groups.size());
    for (auto& entry : groups) ordered.push_back(&entry);
    std::sort(ordered.begin(), ordered.end(),
              [](const Groups::value_type* a, const Groups::value_type* b) {
                return a->first < b->first;
              });
    per_relation[r].reserve(ordered.size());
    for (Groups::value_type* entry : ordered) {
      Block b;
      b.relation = rel;
      b.key_value = entry->first;
      b.facts = std::move(entry->second);
      per_relation[r].push_back(std::move(b));
    }
  };
  ParallelForOn(pool, relation_count, group_relation, /*grain=*/1);

  for (RelationId rel = 0; rel < relation_count; ++rel) {
    for (Block& b : per_relation[rel]) {
      size_t idx = out.blocks_.size();
      for (FactId id : b.facts) out.block_of_fact_[id] = idx;
      out.blocks_of_relation_[rel].push_back(idx);
      out.blocks_.push_back(std::move(b));
    }
  }
  return out;
}

const std::vector<size_t>& BlockPartition::BlocksOfRelation(
    RelationId rel) const {
  if (rel >= blocks_of_relation_.size()) return empty_;
  return blocks_of_relation_[rel];
}

size_t BlockPartition::ViolatingBlockCount() const {
  size_t n = 0;
  for (const Block& b : blocks_) {
    if (b.size() >= 2) ++n;
  }
  return n;
}

std::string BlockPartition::ToString(const Database& db) const {
  std::string out;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    out += "block " + std::to_string(i) + ": {";
    for (size_t j = 0; j < blocks_[i].facts.size(); ++j) {
      if (j > 0) out += ", ";
      out += FactToString(db.schema(), db.fact(blocks_[i].facts[j]));
    }
    out += "}\n";
  }
  return out;
}

}  // namespace uocqa
