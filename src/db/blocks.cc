#include "db/blocks.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace uocqa {

BlockPartition BlockPartition::Compute(const Database& db,
                                       const KeySet& keys) {
  BlockPartition out;
  // Group facts by (relation, key value); std::map gives the fixed
  // lexicographic block order the paper assumes.
  std::map<std::pair<RelationId, std::vector<Value>>, std::vector<FactId>>
      groups;
  for (FactId id = 0; id < db.size(); ++id) {
    const Fact& f = db.fact(id);
    groups[{f.relation, keys.KeyValueOf(f)}].push_back(id);
  }
  out.block_of_fact_.assign(db.size(), 0);
  out.blocks_of_relation_.assign(db.schema().relation_count(), {});
  for (auto& [sig, ids] : groups) {
    Block b;
    b.relation = sig.first;
    b.key_value = sig.second;
    std::sort(ids.begin(), ids.end());
    b.facts = ids;
    size_t idx = out.blocks_.size();
    for (FactId id : ids) out.block_of_fact_[id] = idx;
    out.blocks_of_relation_[sig.first].push_back(idx);
    out.blocks_.push_back(std::move(b));
  }
  return out;
}

const std::vector<size_t>& BlockPartition::BlocksOfRelation(
    RelationId rel) const {
  if (rel >= blocks_of_relation_.size()) return empty_;
  return blocks_of_relation_[rel];
}

size_t BlockPartition::ViolatingBlockCount() const {
  size_t n = 0;
  for (const Block& b : blocks_) {
    if (b.size() >= 2) ++n;
  }
  return n;
}

std::string BlockPartition::ToString(const Database& db) const {
  std::string out;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    out += "block " + std::to_string(i) + ": {";
    for (size_t j = 0; j < blocks_[i].facts.size(); ++j) {
      if (j > 0) out += ", ";
      out += FactToString(db.schema(), db.fact(blocks_[i].facts[j]));
    }
    out += "}\n";
  }
  return out;
}

}  // namespace uocqa
