#include "db/blocks.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "base/hashing.h"

namespace uocqa {

namespace {

/// Groups one relation's facts into blocks, ordered by lexicographic key
/// value. Shared by the full Compute and the delta Update: both produce the
/// paper's fixed (relation id, lexicographic key value) block order (§5.1)
/// by merging per-relation results in relation-id order.
std::vector<Block> GroupRelationBlocks(const Database& db, const KeySet& keys,
                                       RelationId rel) {
  using Groups = std::unordered_map<std::vector<Value>, std::vector<FactId>,
                                    VectorHash<Value>>;
  std::vector<Block> out;
  const std::vector<FactId>& rel_facts = db.index().FactsOfRelation(rel);
  if (rel_facts.empty()) return out;
  Groups groups;
  groups.reserve(rel_facts.size());
  for (FactId id : rel_facts) {
    // rel_facts is in increasing id order, so each group's fact list is
    // already sorted by id.
    groups[keys.KeyValueOf(db.fact(id))].push_back(id);
  }
  std::vector<Groups::value_type*> ordered;
  ordered.reserve(groups.size());
  for (auto& entry : groups) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const Groups::value_type* a, const Groups::value_type* b) {
              return a->first < b->first;
            });
  out.reserve(ordered.size());
  for (Groups::value_type* entry : ordered) {
    Block b;
    b.relation = rel;
    b.key_value = entry->first;
    b.facts = std::move(entry->second);
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace

BlockPartition BlockPartition::Compute(const Database& db, const KeySet& keys,
                                       ThreadPool* pool) {
  BlockPartition out;
  out.block_of_fact_.assign(db.size(), 0);
  size_t relation_count = db.schema().relation_count();
  out.blocks_of_relation_.assign(relation_count, {});
  // Relations are disjoint, so the grouping runs per relation — in parallel
  // when a pool is given — and the serial merge below walks relations in id
  // order, so the merged result is identical to the serial one.
  std::vector<std::vector<Block>> per_relation(relation_count);
  auto group_relation = [&](size_t r) {
    per_relation[r] =
        GroupRelationBlocks(db, keys, static_cast<RelationId>(r));
  };
  ParallelForOn(pool, relation_count, group_relation, /*grain=*/1);

  for (RelationId rel = 0; rel < relation_count; ++rel) {
    for (Block& b : per_relation[rel]) {
      size_t idx = out.blocks_.size();
      for (FactId id : b.facts) out.block_of_fact_[id] = idx;
      out.blocks_of_relation_[rel].push_back(idx);
      out.blocks_.push_back(std::move(b));
    }
  }
  return out;
}

BlockPartition BlockPartition::Update(const BlockPartition& prev,
                                      const Database& db, const KeySet& keys,
                                      FactId first_new) {
  size_t relation_count = db.schema().relation_count();
  std::vector<bool> touched(relation_count, false);
  for (FactId id = first_new; id < db.size(); ++id) {
    touched[db.fact(id).relation] = true;
  }
  BlockPartition out;
  out.block_of_fact_.assign(db.size(), 0);
  out.blocks_of_relation_.assign(relation_count, {});
  for (RelationId rel = 0; rel < relation_count; ++rel) {
    std::vector<Block> rel_blocks;
    if (touched[rel]) {
      rel_blocks = GroupRelationBlocks(db, keys, rel);
    } else if (rel < prev.blocks_of_relation_.size()) {
      // Untouched relation: its grouping is unchanged, copy the blocks.
      // (Global block indices still shift when an earlier relation gained
      // blocks, so the merge below renumbers everything.)
      rel_blocks.reserve(prev.blocks_of_relation_[rel].size());
      for (size_t idx : prev.blocks_of_relation_[rel]) {
        rel_blocks.push_back(prev.blocks_[idx]);
      }
    }
    for (Block& b : rel_blocks) {
      size_t idx = out.blocks_.size();
      for (FactId id : b.facts) out.block_of_fact_[id] = idx;
      out.blocks_of_relation_[rel].push_back(idx);
      out.blocks_.push_back(std::move(b));
    }
  }
  return out;
}

const std::vector<size_t>& BlockPartition::BlocksOfRelation(
    RelationId rel) const {
  if (rel >= blocks_of_relation_.size()) return empty_;
  return blocks_of_relation_[rel];
}

size_t BlockPartition::ViolatingBlockCount() const {
  size_t n = 0;
  for (const Block& b : blocks_) {
    if (b.size() >= 2) ++n;
  }
  return n;
}

std::string BlockPartition::ToString(const Database& db) const {
  std::string out;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    out += "block " + std::to_string(i) + ": {";
    for (size_t j = 0; j < blocks_[i].facts.size(); ++j) {
      if (j > 0) out += ", ";
      out += FactToString(db.schema(), db.fact(blocks_[i].facts[j]));
    }
    out += "}\n";
  }
  return out;
}

}  // namespace uocqa
