#include "db/fact.h"

#include <cassert>

namespace uocqa {

std::string FactToString(const Schema& schema, const Fact& fact) {
  std::string out = schema.name(fact.relation);
  out += '(';
  for (size_t i = 0; i < fact.args.size(); ++i) {
    if (i > 0) out += ',';
    out += ValuePool::Name(fact.args[i]);
  }
  out += ')';
  return out;
}

Fact MakeFact(const Schema& schema, std::string_view relation,
              const std::vector<std::string>& constants) {
  RelationId rel = schema.Find(relation);
  assert(rel != kInvalidRelation);
  assert(schema.arity(rel) == constants.size());
  std::vector<Value> args;
  args.reserve(constants.size());
  for (const std::string& c : constants) args.push_back(ValuePool::Intern(c));
  return Fact(rel, std::move(args));
}

}  // namespace uocqa
