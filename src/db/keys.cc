#include "db/keys.h"

#include <algorithm>
#include <cassert>

#include "base/hashing.h"

namespace uocqa {

Status KeySet::SetKey(RelationId rel, std::vector<uint32_t> positions) {
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  auto it = keys_.find(rel);
  if (it != keys_.end()) {
    if (it->second != positions) {
      return Status::InvalidArgument(
          "relation already has a (different) primary key");
    }
    return Status::OK();
  }
  keys_.emplace(rel, std::move(positions));
  return Status::OK();
}

void KeySet::SetKeyOrDie(RelationId rel, std::vector<uint32_t> positions) {
  Status st = SetKey(rel, std::move(positions));
  assert(st.ok());
  (void)st;
}

const std::vector<uint32_t>& KeySet::Positions(RelationId rel) const {
  auto it = keys_.find(rel);
  assert(it != keys_.end());
  return it->second;
}

std::vector<Value> KeySet::KeyValueOf(const Fact& fact) const {
  auto it = keys_.find(fact.relation);
  if (it == keys_.end()) return fact.args;
  std::vector<Value> out;
  out.reserve(it->second.size());
  for (uint32_t pos : it->second) {
    assert(pos < fact.args.size());
    out.push_back(fact.args[pos]);
  }
  return out;
}

bool KeySet::ViolatingPair(const Fact& f, const Fact& g) const {
  if (f.relation != g.relation || f == g) return false;
  auto it = keys_.find(f.relation);
  if (it == keys_.end()) return false;  // whole-tuple key: distinct facts ok
  for (uint32_t pos : it->second) {
    if (f.args[pos] != g.args[pos]) return false;
  }
  return true;
}

std::vector<std::pair<RelationId, std::vector<uint32_t>>> KeySet::Entries()
    const {
  std::vector<std::pair<RelationId, std::vector<uint32_t>>> out(keys_.begin(),
                                                                keys_.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool IsConsistent(const Database& db, const KeySet& keys) {
  // Group facts by (relation, key value); consistent iff all groups are
  // singletons.
  std::unordered_map<std::vector<Value>, std::vector<FactId>,
                     VectorHash<Value>>
      groups;
  for (FactId id = 0; id < db.size(); ++id) {
    const Fact& f = db.fact(id);
    std::vector<Value> sig;
    sig.push_back(f.relation);
    for (Value v : keys.KeyValueOf(f)) sig.push_back(v);
    auto& bucket = groups[sig];
    bucket.push_back(id);
    if (bucket.size() > 1) return false;
  }
  return true;
}

std::vector<std::pair<FactId, FactId>> Violations(const Database& db,
                                                  const KeySet& keys) {
  std::vector<std::pair<FactId, FactId>> out;
  std::unordered_map<std::vector<Value>, std::vector<FactId>,
                     VectorHash<Value>>
      groups;
  for (FactId id = 0; id < db.size(); ++id) {
    const Fact& f = db.fact(id);
    std::vector<Value> sig;
    sig.push_back(f.relation);
    for (Value v : keys.KeyValueOf(f)) sig.push_back(v);
    groups[sig].push_back(id);
  }
  for (const auto& [sig, ids] : groups) {
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        out.emplace_back(ids[i], ids[j]);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace uocqa
