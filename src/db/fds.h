// Functional dependencies R : A -> B (paper §6 names FDs as the open
// extension of the operational framework beyond primary keys).
//
// Two distinct facts of relation R violate A -> B if they agree on all
// positions of A but differ somewhere on B. Unlike keys, FDs do not
// partition conflicts into independent blocks (a fact can conflict with
// different facts under different FDs), so the polynomial counting of
// repairs/sequences does not carry over — exactly why the paper leaves the
// FD case open. The operational semantics (justified operations, repairing
// sequences) transfers verbatim through PairwiseConstraints, and this
// module enables exact *enumeration-based* experimentation with it.

#ifndef UOCQA_DB_FDS_H_
#define UOCQA_DB_FDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "db/constraints.h"
#include "db/schema.h"

namespace uocqa {

struct FunctionalDependency {
  RelationId relation = kInvalidRelation;
  std::vector<uint32_t> lhs;  // A (0-based positions, sorted)
  std::vector<uint32_t> rhs;  // B
};

class FdSet : public PairwiseConstraints {
 public:
  /// Adds R : lhs -> rhs. Positions are deduplicated and sorted; rhs
  /// positions already in lhs are dropped (trivial).
  Status AddFd(RelationId relation, std::vector<uint32_t> lhs,
               std::vector<uint32_t> rhs);

  void AddFdOrDie(RelationId relation, std::vector<uint32_t> lhs,
                  std::vector<uint32_t> rhs);

  const std::vector<FunctionalDependency>& fds() const { return fds_; }

  bool ViolatingPair(const Fact& f, const Fact& g) const override;

 private:
  std::vector<FunctionalDependency> fds_;
};

/// A key constraint key(R) = A as the FD A -> (all attributes): helper for
/// cross-checking the FD machinery against the KeySet machinery.
FdSet KeysAsFds(const Schema& schema, const class KeySet& keys);

}  // namespace uocqa

#endif  // UOCQA_DB_FDS_H_
