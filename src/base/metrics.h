// Engine-wide metrics: a registry of named counters, gauges, and log₂
// latency histograms, cheap enough to stay on in Release builds.
//
// The service layer spans eight subsystems (index → planner → compiled
// NFTA → SIMD kernels → FPRAS/exact solvers → caches → MVCC live
// instances); until this module the only window into a running instance was
// the cache hit/miss counters. The registry gives every stage of the
// request path a named instrument:
//
//  * `Counter`   — monotone atomic uint64 (requests served, pool steals);
//  * `Gauge`     — last-written atomic int64 (pending delta depth, epoch);
//  * `Histogram` — fixed log₂ buckets over non-negative values (latency in
//    microseconds by convention, `*_us` names), with p50/p95/p99 readout.
//
// Design constraints, in order:
//
//  1. **Observability never changes a single response byte.** Instruments
//     only ever *read* the clock and *write* their own atomics; nothing in
//     this module feeds back into planning, sampling, or cache decisions.
//     The service determinism suites pin payload bytes with metrics on and
//     off (tests/observability_test.cc).
//  2. **No-op when absent.** Every consumer holds nullable handle pointers
//     and records through the null-tolerant helpers below (or ScopedStage,
//     which skips even the clock read when it has nowhere to write). A
//     service constructed with metrics disabled runs the exact same code
//     with null handles — that is the `BM_MetricsOff` baseline the bench
//     gate compares against.
//  3. **Hot-path cost is one relaxed fetch_add** (plus one steady_clock
//     read per timed stage). Handles are resolved by name once, at
//     registration time, never per request.
//
// A registry is *instantiable*: QueryService owns one per service so that
// per-service stats stay correct when several services share a process
// (every test suite does this). `Registry::Global()` is the process-wide
// default for contexts with no owning service.

#ifndef UOCQA_BASE_METRICS_H_
#define UOCQA_BASE_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace uocqa {
namespace metrics {

/// A monotone counter. All operations are relaxed atomics: totals are
/// exact, cross-instrument snapshots may be momentarily skewed while other
/// threads record (exposition is diagnostic, never semantic).
class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-written value (may go down: pending queue depth, current epoch).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket log₂ histogram over uint64 values (latencies in
/// microseconds by convention).
///
/// Bucket i holds values v with BitWidth(v) == i: bucket 0 is exactly
/// {0}, bucket i (i >= 1) is [2^(i-1), 2^i - 1]. 65 buckets cover the full
/// uint64 range, so recording never clamps. Recording is two relaxed
/// fetch_adds (bucket + sum) — no locks, safe from any thread.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  /// Inclusive upper bound of bucket `i` — what percentiles report.
  static uint64_t BucketUpperBound(size_t i);
  /// The bucket `value` lands in.
  static size_t BucketIndex(uint64_t value);

  void Record(uint64_t value);

  /// A point-in-time copy, with the percentile math in one place.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kBuckets> buckets{};

    /// Upper-bound estimate of the q-quantile (q in [0, 1]): the inclusive
    /// upper edge of the first bucket whose cumulative count reaches
    /// ceil(q * count) (at least 1). Returns 0 for an empty histogram.
    /// Exact whenever all recorded values share a bucket; otherwise off by
    /// at most the bucket width (a factor of 2).
    uint64_t Percentile(double q) const;
  };
  Snapshot Take() const;

 private:
  // No separate count cell: Snapshot::count is the bucket sum, so Record
  // stays at two fetch_adds.
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Null-tolerant recording helpers: the uninstrumented path costs one
/// branch.
inline void Add(Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Add(n);
}
inline void Set(Gauge* g, int64_t v) {
  if (g != nullptr) g->Set(v);
}
inline void Record(Histogram* h, uint64_t v) {
  if (h != nullptr) h->Record(v);
}

/// A named registry of instruments. Get-or-create by name; returned
/// pointers are stable for the registry's lifetime (instruments are never
/// removed), so consumers resolve names once and keep the handle.
///
/// Names follow Prometheus conventions ([a-zA-Z_][a-zA-Z0-9_]*, the
/// exposition renders them verbatim): `uocqa_<subsystem>_<what>[_total|_us]`.
/// A name identifies one instrument of one kind; asking for an existing
/// name as a different kind returns a distinct instrument (kinds live in
/// separate namespaces) — avoid relying on that.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// The process-wide default registry (never destroyed).
  static Registry* Global();

  /// Prometheus text exposition format, version 0.0.4: counters as
  /// `# TYPE n counter` / `n v`, gauges as gauge, histograms as cumulative
  /// `n_bucket{le="..."}` series (le = inclusive bucket upper bounds, up to
  /// the highest non-empty bucket, then `+Inf`) plus `n_sum` / `n_count`.
  /// Instruments are rendered in name order per kind — byte-stable given
  /// stable values.
  std::string PrometheusText() const;

  /// One-line exposition for the service `metrics` verb: space-separated
  /// `name=value` for counters and gauges, and
  /// `name_count= name_sum= name_p50= name_p95= name_p99=` per histogram,
  /// in name order per kind (counters, then gauges, then histograms).
  std::string OneLineText() const;

 private:
  mutable std::mutex mu_;
  // std::map: exposition iterates in name order without re-sorting.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// A per-request span collection — the `trace=1` / `--profile` /
/// slow-query-log rendering unit. Plain data, single-threaded, owned by one
/// request for its lifetime; `active == false` makes every ScopedStage
/// attached to it skip collection.
struct StageTrace {
  bool active = false;
  /// (stage key, micros), in completion order. Keys are `*_us` names.
  std::vector<std::pair<const char*, uint64_t>> spans;
  /// Extra per-request counters (trials run, planner nodes, ...).
  std::vector<std::pair<const char*, uint64_t>> counts;

  void AddCount(const char* key, uint64_t v) {
    if (active) counts.emplace_back(key, v);
  }

  /// `key=value` pairs separated by single spaces, spans first.
  std::string ToString() const;
};

/// RAII stage timer feeding a histogram, a StageTrace, or both; with
/// neither (null histogram, null/inactive trace) it never reads the clock.
class ScopedStage {
 public:
  ScopedStage(Histogram* h, StageTrace* trace, const char* key)
      : h_(h),
        trace_(trace != nullptr && trace->active ? trace : nullptr),
        key_(key) {
    if (h_ != nullptr || trace_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedStage() {
    if (h_ == nullptr && trace_ == nullptr) return;
    uint64_t us = ElapsedMicros();
    if (h_ != nullptr) h_->Record(us);
    if (trace_ != nullptr) trace_->spans.emplace_back(key_, us);
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  Histogram* h_;
  StageTrace* trace_;
  const char* key_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII timer for a single histogram (no trace) — the simple case.
class ScopedTimer : public ScopedStage {
 public:
  explicit ScopedTimer(Histogram* h) : ScopedStage(h, nullptr, "") {}
};

}  // namespace metrics

/// The registry type under its issue-facing name.
using MetricsRegistry = metrics::Registry;

}  // namespace uocqa

#endif  // UOCQA_BASE_METRICS_H_
