#include "base/strings.h"

namespace uocqa {

std::vector<std::string> StrSplit(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StrTrim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t' ||
                         text[begin] == '\n' || text[begin] == '\r')) {
    ++begin;
  }
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' ||
                         text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace uocqa
