// Runtime-dispatched SIMD kernels for the word-wise bitset operations the
// automaton hot paths bottom out in.
//
// Every answer the engine produces — exact repair counts, FPRAS estimates,
// membership probes — reduces to millions of operations over fixed-width
// uint64 bitsets (CompiledNfta behaviour sets, the exact-count behaviour
// arena). This module provides those primitives behind one table of
// function pointers (`Kernels`), with three backends:
//
//  * scalar  — plain C++, always compiled, the semantic reference;
//  * AVX2    — 4 words per vector, gathers for the batched group probe;
//  * AVX-512 — 8 words per vector (F/BW/VL/DQ), mask-register probes.
//
// The backends are *bit-identical by contract*: every kernel, on every
// input, returns exactly the scalar result (tests/simd_kernels_test.cc
// enforces this differentially). Vector backends live in separate
// translation units compiled with per-file -mavx2 / -mavx512* flags
// (CMake option UOCQA_SIMD), so the rest of the binary stays portable;
// the running CPU picks the widest supported backend once at startup via
// CPUID. The UOCQA_SIMD environment variable (scalar|avx2|avx512) caps the
// selection for debugging and A/B runs.
//
// Consumers snapshot `Active()` once per compiled artifact (CompiledNfta
// stores the pointer), so a whole automaton evaluation runs on one
// backend even if the test-only override changes mid-process.

#ifndef UOCQA_BASE_SIMD_KERNELS_H_
#define UOCQA_BASE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uocqa {
namespace simd {

enum class Backend : uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// One (symbol, rank) transition group in structure-of-arrays layout — the
/// unit of the batched "all children accepted" probe. `child` holds the
/// children grouped by position: child position c of transition i is
/// child[c * count + i], so the probe walks contiguous lanes of
/// transitions instead of per-transition child tuples.
struct GroupProbe {
  uint32_t count = 0;               ///< transitions in the group
  uint32_t rank = 0;                ///< children per transition
  const uint32_t* from = nullptr;   ///< [count] from-states
  const uint32_t* child = nullptr;  ///< [rank * count], position-major
};

/// The kernel table. All word counts `n` are in uint64 units; ranges never
/// alias unless a kernel documents otherwise.
struct Kernels {
  Backend backend = Backend::kScalar;
  const char* name = "scalar";

  /// dst[0..n) = 0.
  void (*clear_words)(uint64_t* dst, size_t n);
  /// dst = a & b.
  void (*and_words)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    size_t n);
  /// dst = a | b.
  void (*or_words)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   size_t n);
  /// Masked accumulate: dst |= src & mask.
  void (*accumulate_masked)(uint64_t* dst, const uint64_t* src,
                            const uint64_t* mask, size_t n);
  /// a == b word-wise.
  bool (*equal_words)(const uint64_t* a, const uint64_t* b, size_t n);
  /// Total set bits in a[0..n).
  size_t (*popcount_words)(const uint64_t* a, size_t n);
  /// Word-wise hash of a[0..n). The formula is an order-insensitive sum of
  /// per-word mixes, so lanes can be reduced in any width — every backend
  /// returns the same 64 bits for the same input.
  uint64_t (*hash_words)(const uint64_t* a, size_t n);
  /// Appends the indices of set bits (word w, bit b -> 64*w + b),
  /// ascending.
  void (*append_set_bits)(const uint64_t* words, size_t n,
                          std::vector<uint32_t>* out);
  /// The batched probe: for each transition i of `g`, if
  /// child_sets[c] contains bit g.child[c*count + i] for every c < rank,
  /// set bit g.from[i] in `out`. Returns the number of accepting
  /// transitions. `out` must be pre-cleared (or hold a partial union) and
  /// must not alias any child set. Rank-0 groups accept unconditionally.
  uint32_t (*combine_group)(const GroupProbe& g,
                            const uint64_t* const* child_sets, uint64_t* out);
};

/// The backend selected at startup: the widest one both compiled in and
/// supported by the running CPU, optionally capped by the UOCQA_SIMD
/// environment variable. Never nullptr-able; always valid for the process
/// lifetime.
const Kernels& Active();

/// The kernel table of one backend, or nullptr if it was not compiled in
/// or the CPU lacks the features.
const Kernels* ForBackend(Backend b);

/// Every backend usable on this host, scalar first.
std::vector<const Kernels*> AvailableBackends();

/// Test hook: force Active() to return `k` (nullptr restores the startup
/// selection). Not thread-safe; call only from single-threaded test setup.
void SetActiveForTest(const Kernels* k);

const char* BackendName(Backend b);

}  // namespace simd
}  // namespace uocqa

#endif  // UOCQA_BASE_SIMD_KERNELS_H_
