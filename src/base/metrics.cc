#include "base/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

namespace uocqa {
namespace metrics {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

}  // namespace

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= kBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << i) - 1;
}

size_t Histogram::BucketIndex(uint64_t value) {
  return value == 0 ? 0 : 64 - static_cast<size_t>(__builtin_clzll(value));
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0;
  double target = std::ceil(q * static_cast<double>(count));
  uint64_t rank = target < 1.0 ? 1 : static_cast<uint64_t>(target);
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

Histogram::Snapshot Histogram::Take() const {
  // Relaxed per-cell reads: the snapshot may interleave with concurrent
  // records (sum can lead or trail the captured buckets by in-flight
  // updates), which is fine for diagnostics. count is the bucket total, so
  // Percentile() is internally consistent with whatever was captured here.
  Snapshot s;
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

Registry* Registry::Global() {
  static Registry* global = new Registry();
  return global;
}

std::string Registry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    AppendU64(&out, counter->Value());
    out += "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    AppendI64(&out, gauge->Value());
    out += "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot s = histogram->Take();
    out += "# TYPE " + name + " histogram\n";
    // Render cumulative buckets up to the highest non-empty one; the +Inf
    // bucket always closes the series, so an empty histogram is just
    // `le="+Inf" 0`.
    size_t highest = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (s.buckets[i] != 0) highest = i;
    }
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= highest && s.count != 0; ++i) {
      cumulative += s.buckets[i];
      out += name + "_bucket{le=\"";
      AppendU64(&out, Histogram::BucketUpperBound(i));
      out += "\"} ";
      AppendU64(&out, cumulative);
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    AppendU64(&out, s.count);
    out += "\n";
    out += name + "_sum ";
    AppendU64(&out, s.sum);
    out += "\n";
    out += name + "_count ";
    AppendU64(&out, s.count);
    out += "\n";
  }
  return out;
}

std::string Registry::OneLineText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  auto sep = [&out]() {
    if (!out.empty()) out += " ";
  };
  for (const auto& [name, counter] : counters_) {
    sep();
    out += name + "=";
    AppendU64(&out, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    sep();
    out += name + "=";
    AppendI64(&out, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot s = histogram->Take();
    sep();
    out += name + "_count=";
    AppendU64(&out, s.count);
    out += " " + name + "_sum=";
    AppendU64(&out, s.sum);
    out += " " + name + "_p50=";
    AppendU64(&out, s.Percentile(0.50));
    out += " " + name + "_p95=";
    AppendU64(&out, s.Percentile(0.95));
    out += " " + name + "_p99=";
    AppendU64(&out, s.Percentile(0.99));
  }
  return out;
}

std::string StageTrace::ToString() const {
  std::string out;
  auto sep = [&out]() {
    if (!out.empty()) out += " ";
  };
  for (const auto& [key, micros] : spans) {
    sep();
    out += key;
    out += "=";
    AppendU64(&out, micros);
  }
  for (const auto& [key, value] : counts) {
    sep();
    out += key;
    out += "=";
    AppendU64(&out, value);
  }
  return out;
}

}  // namespace metrics
}  // namespace uocqa
