#include "base/bigint.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>

namespace uocqa {

namespace {

constexpr uint64_t kBase = uint64_t{1} << 32;

size_t BitWidthU64(uint64_t v) {
  return v == 0 ? 0 : 64 - static_cast<size_t>(__builtin_clzll(v));
}

}  // namespace

void BigInt::Promote() {
  assert(limbs_.empty());
  if (small_ != 0) {
    limbs_.push_back(static_cast<uint32_t>(small_ & 0xffffffffu));
    uint32_t hi = static_cast<uint32_t>(small_ >> 32);
    if (hi != 0) limbs_.push_back(hi);
    small_ = 0;
  }
}

void BigInt::Canonicalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.size() <= 2) {
    uint64_t v = 0;
    if (limbs_.size() == 2) v = static_cast<uint64_t>(limbs_[1]) << 32;
    if (!limbs_.empty()) v |= limbs_[0];
    limbs_.clear();
    small_ = v;
  } else {
    small_ = 0;
  }
}

BigInt BigInt::FromDecimalString(const std::string& digits) {
  BigInt out;
  for (char c : digits) {
    assert(c >= '0' && c <= '9');
    out *= uint64_t{10};
    out += uint64_t{static_cast<uint64_t>(c - '0')};
  }
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return BitWidthU64(small_);
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

uint64_t BigInt::ToUint64() const {
  assert(limbs_.empty() && "BigInt::ToUint64 overflow");
  return small_;
}

uint64_t BigInt::TopBits64() const {
  if (limbs_.empty()) {
    if (small_ == 0) return 0;
    return small_ << (64 - BitWidthU64(small_));
  }
  // Left-aligned top 64 bits of the magnitude.
  size_t bl = BitLength();
  uint64_t acc = 0;
  // Collect the top three limbs into a 96-bit window, then shift.
  size_t n = limbs_.size();
  unsigned __int128 window = 0;
  for (size_t i = 0; i < 3; ++i) {
    window <<= 32;
    if (i < n) window |= limbs_[n - 1 - i];
  }
  // window holds the top (up to) 96 bits; its MSB is at position
  // (bl - 1) % 32 + 64 within the 96-bit window.
  size_t msb_in_window = ((bl - 1) % 32) + 64;
  if (msb_in_window >= 63) {
    acc = static_cast<uint64_t>(window >> (msb_in_window - 63));
  } else {
    acc = static_cast<uint64_t>(window << (63 - msb_in_window));
  }
  return acc;
}

double BigInt::ToDouble() const {
  size_t bl = BitLength();
  if (bl == 0) return 0.0;
  uint64_t top = TopBits64();
  // top has its MSB at bit 63 and represents value * 2^(64 - bl) ... i.e.
  // value ~= top * 2^(bl - 64).
  return std::ldexp(static_cast<double>(top), static_cast<int>(bl) - 64);
}

double BigInt::Log2() const {
  size_t bl = BitLength();
  assert(bl > 0);
  uint64_t top = TopBits64();
  return std::log2(static_cast<double>(top)) + static_cast<double>(bl) - 64.0;
}

std::string BigInt::ToString() const {
  if (limbs_.empty()) return std::to_string(small_);
  BigInt tmp = *this;
  std::string out;
  while (!tmp.IsZero()) {
    uint32_t rem = tmp.DivModU32(1000000000u);
    for (int i = 0; i < 9; ++i) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  std::reverse(out.begin(), out.end());
  return out;
}

int BigInt::Compare(const BigInt& other) const {
  // Canonical form: limbs are only used for values >= 2^64, so mixed
  // representations compare by representation alone.
  if (limbs_.empty() != other.limbs_.empty()) {
    return limbs_.empty() ? -1 : 1;
  }
  if (limbs_.empty()) {
    if (small_ == other.small_) return 0;
    return small_ < other.small_ ? -1 : 1;
  }
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::AddU64ToLimbs(uint64_t v) {
  uint64_t carry = v;
  for (size_t i = 0; i < limbs_.size() && carry != 0; ++i) {
    uint64_t sum = (carry & 0xffffffffu) + limbs_[i];
    limbs_[i] = static_cast<uint32_t>(sum & 0xffffffffu);
    carry = (carry >> 32) + (sum >> 32);
  }
  while (carry != 0) {
    limbs_.push_back(static_cast<uint32_t>(carry & 0xffffffffu));
    carry >>= 32;
  }
}

BigInt& BigInt::operator+=(uint64_t v) {
  if (limbs_.empty()) {
    uint64_t sum;
    if (!__builtin_add_overflow(small_, v, &sum)) {
      small_ = sum;
      return *this;
    }
    // Spill: the true value is 2^64 + sum.
    limbs_ = {static_cast<uint32_t>(sum & 0xffffffffu),
              static_cast<uint32_t>(sum >> 32), 1u};
    small_ = 0;
    return *this;
  }
  AddU64ToLimbs(v);
  return *this;
}

BigInt& BigInt::operator+=(const BigInt& o) {
  if (o.limbs_.empty()) return *this += o.small_;
  if (limbs_.empty()) {
    uint64_t v = small_;
    limbs_ = o.limbs_;
    small_ = 0;
    AddU64ToLimbs(v);
    return *this;
  }
  size_t n = std::max(limbs_.size(), o.limbs_.size());
  limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry + limbs_[i] + (i < o.limbs_.size() ? o.limbs_[i] : 0);
    limbs_[i] = static_cast<uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& o) {
  assert(Compare(o) >= 0 && "BigInt subtraction underflow");
  if (limbs_.empty()) {
    // o <= *this < 2^64, so o is small too.
    small_ -= o.small_;
    return *this;
  }
  BigInt promoted;  // o in limb form, when it is small
  const std::vector<uint32_t>* ol = &o.limbs_;
  if (o.limbs_.empty()) {
    promoted = o;
    promoted.Promote();
    ol = &promoted.limbs_;
  }
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(limbs_[i]) - borrow -
                   (i < ol->size() ? static_cast<int64_t>((*ol)[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<uint32_t>(diff);
  }
  assert(borrow == 0);
  Canonicalize();
  return *this;
}

std::vector<uint32_t> BigInt::MulLimbs(const std::vector<uint32_t>& a,
                                       const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = out[i + j] + carry + ai * b[j];
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  return out;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  if (a.limbs_.empty() && b.limbs_.empty()) {
    unsigned __int128 p =
        static_cast<unsigned __int128>(a.small_) * b.small_;
    uint64_t hi = static_cast<uint64_t>(p >> 64);
    if (hi == 0) return BigInt(static_cast<uint64_t>(p));
    BigInt out;
    uint64_t lo = static_cast<uint64_t>(p);
    out.limbs_ = {static_cast<uint32_t>(lo & 0xffffffffu),
                  static_cast<uint32_t>(lo >> 32),
                  static_cast<uint32_t>(hi & 0xffffffffu),
                  static_cast<uint32_t>(hi >> 32)};
    out.Canonicalize();
    return out;
  }
  if (b.limbs_.empty()) {
    BigInt out = a;
    out *= b.small_;
    return out;
  }
  if (a.limbs_.empty()) {
    BigInt out = b;
    out *= a.small_;
    return out;
  }
  BigInt out;
  out.limbs_ = BigInt::MulLimbs(a.limbs_, b.limbs_);
  out.Canonicalize();
  return out;
}

BigInt& BigInt::operator*=(const BigInt& o) {
  *this = *this * o;
  return *this;
}

BigInt& BigInt::operator*=(uint64_t v) {
  if (v == 0 || IsZero()) {
    limbs_.clear();
    small_ = 0;
    return *this;
  }
  if (limbs_.empty()) {
    unsigned __int128 p = static_cast<unsigned __int128>(small_) * v;
    uint64_t hi = static_cast<uint64_t>(p >> 64);
    if (hi == 0) {
      small_ = static_cast<uint64_t>(p);
      return *this;
    }
    uint64_t lo = static_cast<uint64_t>(p);
    limbs_ = {static_cast<uint32_t>(lo & 0xffffffffu),
              static_cast<uint32_t>(lo >> 32),
              static_cast<uint32_t>(hi & 0xffffffffu),
              static_cast<uint32_t>(hi >> 32)};
    small_ = 0;
    Canonicalize();
    return *this;
  }
  uint32_t lo = static_cast<uint32_t>(v & 0xffffffffu);
  uint32_t hi = static_cast<uint32_t>(v >> 32);
  if (hi == 0) {
    uint64_t carry = 0;
    for (size_t i = 0; i < limbs_.size(); ++i) {
      uint64_t cur = static_cast<uint64_t>(limbs_[i]) * lo + carry;
      limbs_[i] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
    return *this;
  }
  std::vector<uint32_t> vl{lo, hi};
  limbs_ = MulLimbs(limbs_, vl);
  Canonicalize();
  return *this;
}

BigInt& BigInt::ShiftLeft(size_t bits) {
  if (IsZero() || bits == 0) return *this;
  if (limbs_.empty()) {
    size_t width = BitWidthU64(small_);
    if (width + bits <= 64) {
      small_ <<= bits;
      return *this;
    }
    Promote();
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  size_t old_size = limbs_.size();
  limbs_.resize(old_size + limb_shift + (bit_shift != 0 ? 1 : 0), 0);
  for (size_t i = old_size; i-- > 0;) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    limbs_[i + limb_shift] = static_cast<uint32_t>(v & 0xffffffffu);
    if (bit_shift != 0) {
      limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
    }
    if (i < limb_shift) limbs_[i] = 0;
  }
  for (size_t i = 0; i < limb_shift; ++i) limbs_[i] = 0;
  Canonicalize();
  return *this;
}

BigInt& BigInt::ShiftRight(size_t bits) {
  if (limbs_.empty()) {
    small_ = bits >= 64 ? 0 : small_ >> bits;
    return *this;
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    small_ = 0;
    return *this;
  }
  limbs_.erase(limbs_.begin(),
               limbs_.begin() + static_cast<ptrdiff_t>(limb_shift));
  if (bit_shift != 0) {
    for (size_t i = 0; i < limbs_.size(); ++i) {
      uint32_t hi = (i + 1 < limbs_.size()) ? limbs_[i + 1] : 0;
      limbs_[i] = static_cast<uint32_t>(
          ((static_cast<uint64_t>(hi) << 32 | limbs_[i]) >> bit_shift) &
          0xffffffffu);
    }
  }
  Canonicalize();
  return *this;
}

uint32_t BigInt::DivModU32(uint32_t divisor) {
  assert(divisor != 0);
  if (limbs_.empty()) {
    uint32_t rem = static_cast<uint32_t>(small_ % divisor);
    small_ /= divisor;
    return rem;
  }
  uint64_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    uint64_t cur = (rem << 32) | limbs_[i];
    limbs_[i] = static_cast<uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  Canonicalize();
  return static_cast<uint32_t>(rem);
}

double BigInt::RatioAsDouble(const BigInt& num, const BigInt& den) {
  assert(!den.IsZero());
  if (num.IsZero()) return 0.0;
  size_t bn = num.BitLength();
  size_t bd = den.BitLength();
  double n_top = static_cast<double>(num.TopBits64());
  double d_top = static_cast<double>(den.TopBits64());
  // num ~= n_top * 2^(bn-64); den ~= d_top * 2^(bd-64).
  return std::ldexp(n_top / d_top,
                    static_cast<int>(bn) - static_cast<int>(bd));
}

BigInt Binomial(uint32_t n, uint32_t k) {
  if (k > n) return BigInt();
  if (k > n - k) k = n - k;
  // Row-by-row Pascal cache would be quadratic in memory for large n; a
  // direct product with exact small division is enough here because
  // C(n,k) = C(n,k-1) * (n-k+1) / k and the intermediate is always exact.
  BigInt result(1);
  for (uint32_t i = 1; i <= k; ++i) {
    result *= uint64_t{n - k + i};
    uint32_t rem = result.DivModU32(i);
    (void)rem;
    assert(rem == 0);
  }
  return result;
}

BigInt Factorial(uint32_t n) {
  BigInt result(1);
  for (uint32_t i = 2; i <= n; ++i) result *= uint64_t{i};
  return result;
}

BigInt Multinomial(const std::vector<uint32_t>& parts) {
  BigInt result(1);
  uint32_t total = 0;
  for (uint32_t p : parts) {
    total += p;
    result *= Binomial(total, p);
  }
  return result;
}

}  // namespace uocqa
