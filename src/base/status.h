// Lightweight Status / Result<T> error-handling primitives in the style used
// by large C++ database systems (Arrow, RocksDB, LevelDB): fallible public
// APIs return a Status (or a Result<T> carrying either a value or a Status)
// instead of throwing exceptions across module boundaries.

#ifndef UOCQA_BASE_STATUS_H_
#define UOCQA_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace uocqa {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kDeadlineExceeded = 7,
  kUnavailable = 8,
  kResourceExhausted = 9,
};

/// Returns a short human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A Status is either OK or an error code plus message. Cheap to copy in the
/// OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a (non-OK) error status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define UOCQA_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::uocqa::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// assigns the value to `lhs`.
#define UOCQA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define UOCQA_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define UOCQA_ASSIGN_OR_RETURN_NAME(a, b) UOCQA_ASSIGN_OR_RETURN_CONCAT(a, b)
#define UOCQA_ASSIGN_OR_RETURN(lhs, expr) \
  UOCQA_ASSIGN_OR_RETURN_IMPL(            \
      UOCQA_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

}  // namespace uocqa

#endif  // UOCQA_BASE_STATUS_H_
