#include "base/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

namespace uocqa {

namespace {

// Identifies the pool (and lane) the current thread works for, so nested
// ParallelFor calls from inside a body push onto the worker's own deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local size_t tls_lane = 0;

}  // namespace

size_t HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

// Shared state of one ParallelFor call. Tasks of the job retire their
// iteration counts into `remaining`; the caller waits for it to hit zero.
struct ThreadPool::LoopJob {
  const std::function<void(size_t)>* body = nullptr;
  size_t grain = 1;
  std::atomic<size_t> remaining{0};    // iterations not yet retired
  std::atomic<bool> cancelled{false};  // set on first exception
  std::mutex error_mu;
  std::exception_ptr error;
  std::mutex done_mu;
  std::condition_variable done_cv;
};

ThreadPool::ThreadPool(size_t threads, MetricsRegistry* metrics) {
  if (threads == 0) threads = HardwareThreads();
  if (metrics != nullptr) {
    tasks_counter_ = metrics->GetCounter("uocqa_pool_tasks_total");
    steals_counter_ = metrics->GetCounter("uocqa_pool_steals_total");
    idle_wakeups_counter_ = metrics->GetCounter("uocqa_pool_idle_wakeups_total");
  }
  worker_count_ = threads - 1;
  lanes_.reserve(worker_count_ + 1);
  for (size_t i = 0; i < worker_count_ + 1; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  workers_.reserve(worker_count_);
  for (size_t i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::CurrentLane() const {
  if (tls_pool == this) return tls_lane;
  return worker_count_;  // the shared external lane
}

void ThreadPool::Push(size_t lane, Task t) {
  {
    // The increment happens under wake_mu_ so it cannot slip into the
    // window between a worker reading queued_ == 0 and blocking (a lost
    // wakeup that would idle the worker for the rest of the loop), and
    // *before* the deque insert so a concurrent TryPop of this very task
    // can never decrement the counter below zero.
    std::lock_guard<std::mutex> lock(wake_mu_);
    queued_.fetch_add(1, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(lanes_[lane]->mu);
    lanes_[lane]->tasks.push_back(t);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryPop(size_t lane, Task* out) {
  {
    Lane& own = *lanes_[lane];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *out = own.tasks.back();
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t k = 1; k < lanes_.size(); ++k) {
    Lane& victim = *lanes_[(lane + k) % lanes_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *out = victim.tasks.front();
      victim.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      metrics::Add(steals_counter_);
      return true;
    }
  }
  return false;
}

void ThreadPool::RunTask(Task t, size_t lane) {
  LoopJob* job = t.job;
  // Shed the back half while the range is above the grain; stolen halves
  // split further on whichever lane picks them up.
  while (t.hi - t.lo > job->grain) {
    size_t mid = t.lo + (t.hi - t.lo) / 2;
    Push(lane, Task{job, mid, t.hi});
    t.hi = mid;
  }
  metrics::Add(tasks_counter_);
  if (!job->cancelled.load(std::memory_order_relaxed)) {
    try {
      for (size_t i = t.lo; i < t.hi; ++i) (*job->body)(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job->error_mu);
        if (!job->error) job->error = std::current_exception();
      }
      job->cancelled.store(true, std::memory_order_relaxed);
    }
  }
  size_t covered = t.hi - t.lo;
  {
    // Retire under done_mu, notify inside the same critical section: the
    // waiting caller only ever observes remaining == 0 while holding
    // done_mu (see HelpUntilDone), so once it does, this worker has left
    // the critical section and touches the job no more — the caller may
    // destroy the stack-allocated LoopJob safely.
    std::lock_guard<std::mutex> lock(job->done_mu);
    if (job->remaining.fetch_sub(covered, std::memory_order_acq_rel) ==
        covered) {
      job->done_cv.notify_all();
    }
  }
}

void ThreadPool::HelpUntilDone(LoopJob* job, size_t lane) {
  for (;;) {
    Task t;
    if (TryPop(lane, &t)) {
      RunTask(t, lane);
      continue;
    }
    // Nothing stealable: the job's last tasks are in flight on other lanes
    // (or an unrelated outer job holds the deques). Sleep briefly rather
    // than wait on a signal — new tasks are announced on the pool-wide
    // condvar, not per job, and a helping loop must watch for both.
    //
    // The completion check happens exclusively under done_mu, pairing with
    // the locked retire in RunTask: observing 0 here proves the final
    // worker has released done_mu and will never touch the job again, so
    // returning (and destroying the job) is safe.
    std::unique_lock<std::mutex> lock(job->done_mu);
    if (job->remaining.load(std::memory_order_acquire) == 0) return;
    job->done_cv.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void ThreadPool::WorkerMain(size_t lane) {
  tls_pool = this;
  tls_lane = lane;
  for (;;) {
    Task t;
    if (TryPop(lane, &t)) {
      RunTask(t, lane);
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [this] {
        return stop_ || queued_.load(std::memory_order_acquire) > 0;
      });
      if (stop_) return;  // all loops have drained before ~ThreadPool
    }
    metrics::Add(idle_wakeups_counter_);
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body,
                             size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = std::max<size_t>(1, n / (8 * thread_count()));
  if (worker_count_ == 0 || n <= grain) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  LoopJob job;
  job.body = &body;
  job.grain = grain;
  job.remaining.store(n, std::memory_order_relaxed);
  size_t lane = CurrentLane();
  RunTask(Task{&job, 0, n}, lane);  // splits, then runs the caller's share
  HelpUntilDone(&job, lane);
  if (job.error) std::rethrow_exception(job.error);
}

void ParallelForOn(ThreadPool* pool, size_t n,
                   const std::function<void(size_t)>& body, size_t grain) {
  if (pool != nullptr) {
    pool->ParallelFor(n, body, grain);
  } else {
    for (size_t i = 0; i < n; ++i) body(i);
  }
}

}  // namespace uocqa
