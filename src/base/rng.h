// Deterministic, seedable pseudo-random number generation (xoshiro256**).
//
// All randomized algorithms in the library (FPRAS estimators, uniform repair
// and sequence samplers, workload generators) take an explicit Rng so every
// experiment is reproducible from its seed.
//
// Parallel use: never share one Rng across threads. Instead split a root
// seed into independent streams with Rng::Stream(seed, k) — stream k is a
// pure function of (seed, k), independent of call order and thread count,
// which is what makes the engine's parallel estimators bit-reproducible.

#ifndef UOCQA_BASE_RNG_H_
#define UOCQA_BASE_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace uocqa {

/// A single xoshiro256** pseudo-random stream.
class Rng {
 public:
  /// Seeds the generator deterministically via splitmix64 expansion.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    uint64_t x = seed;
    for (auto& s : state_) {
      s = SplitMix64(&x);
    }
  }

  /// The k-th independent stream of a root seed.
  ///
  /// A pure function of (root_seed, stream): callers that assign one stream
  /// per work chunk (chunk boundaries fixed, not derived from the thread
  /// count) get results that are identical at any parallelism level. The
  /// stream index is mixed through splitmix64 before seeding, so
  /// neighbouring indices yield uncorrelated state.
  static Rng Stream(uint64_t root_seed, uint64_t stream) {
    uint64_t x = root_seed;
    uint64_t mixed = SplitMix64(&x) ^ (stream + 0x9e3779b97f4a7c15ull);
    return Rng(SplitMix64(&mixed));
  }

  /// Next raw 64 random bits (xoshiro256**).
  uint64_t NextU64() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Unbiased
  /// (Lemire's nearly-divisionless rejection method).
  uint64_t UniformU64(uint64_t bound) {
    assert(bound > 0);
    unsigned __int128 m =
        static_cast<unsigned __int128>(NextU64()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(NextU64()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform size_t index in [0, n).
  size_t UniformIndex(size_t n) { return static_cast<size_t>(UniformU64(n)); }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// One splitmix64 step: advances *x and returns the mixed output.
  static uint64_t SplitMix64(uint64_t* x) {
    *x += 0x9e3779b97f4a7c15ull;
    uint64_t z = *x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t state_[4];
};

}  // namespace uocqa

#endif  // UOCQA_BASE_RNG_H_
