// AVX-512 backend (F/BW/VL/DQ): 8 uint64 words per vector, mask-register
// group probes. Compiled in its own TU with per-file -mavx512* flags and
// only invoked after the runtime CPUID check in simd_kernels.cc. Every
// kernel is bit-identical to the scalar reference.

#include "base/simd_kernels_detail.h"

#if defined(UOCQA_SIMD_AVX512)

#include <immintrin.h>

namespace uocqa {
namespace simd {
namespace detail {
namespace {

void ClearWordsAvx512(uint64_t* dst, size_t n) {
  size_t i = 0;
  __m512i zero = _mm512_setzero_si512();
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, zero);
  }
  if (i < n) {
    __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    _mm512_mask_storeu_epi64(dst + i, tail, zero);
  }
}

void AndWordsAvx512(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i,
                        _mm512_and_si512(_mm512_loadu_si512(a + i),
                                         _mm512_loadu_si512(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

void OrWordsAvx512(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i,
                        _mm512_or_si512(_mm512_loadu_si512(a + i),
                                        _mm512_loadu_si512(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

void AccumulateMaskedAvx512(uint64_t* dst, const uint64_t* src,
                            const uint64_t* mask, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i vd = _mm512_loadu_si512(dst + i);
    __m512i vs = _mm512_loadu_si512(src + i);
    __m512i vm = _mm512_loadu_si512(mask + i);
    _mm512_storeu_si512(dst + i,
                        _mm512_or_si512(vd, _mm512_and_si512(vs, vm)));
  }
  for (; i < n; ++i) dst[i] |= src[i] & mask[i];
}

bool EqualWordsAvx512(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (_mm512_cmpneq_epi64_mask(_mm512_loadu_si512(a + i),
                                 _mm512_loadu_si512(b + i)) != 0) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Lane-wise MixWord (same math as detail::MixWord; `idx1` holds i+1).
/// AVX-512DQ provides a true 64-bit lane multiply.
inline __m512i MixWord8(__m512i w, __m512i idx1) {
  const __m512i golden =
      _mm512_set1_epi64(static_cast<long long>(kHashGolden));
  __m512i z = _mm512_add_epi64(w, _mm512_mullo_epi64(idx1, golden));
  z = _mm512_mullo_epi64(
      _mm512_xor_si512(z, _mm512_srli_epi64(z, 30)),
      _mm512_set1_epi64(static_cast<long long>(kHashMul1)));
  z = _mm512_mullo_epi64(
      _mm512_xor_si512(z, _mm512_srli_epi64(z, 27)),
      _mm512_set1_epi64(static_cast<long long>(kHashMul2)));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

uint64_t HashWordsAvx512(const uint64_t* a, size_t n) {
  size_t i = 0;
  __m512i acc = _mm512_setzero_si512();
  __m512i idx1 = _mm512_set_epi64(8, 7, 6, 5, 4, 3, 2, 1);
  const __m512i eight = _mm512_set1_epi64(8);
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, MixWord8(_mm512_loadu_si512(a + i), idx1));
    idx1 = _mm512_add_epi64(idx1, eight);
  }
  uint64_t sum = _mm512_reduce_add_epi64(acc);
  for (; i < n; ++i) sum += MixWord(a[i], i);
  return FinalizeHash(sum, n);
}

void AppendSetBitsAvx512(const uint64_t* words, size_t n,
                         std::vector<uint32_t>* out) {
  size_t w = 0;
  for (; w + 8 <= n; w += 8) {
    __m512i v = _mm512_loadu_si512(words + w);
    __mmask8 nz = _mm512_test_epi64_mask(v, v);
    while (nz != 0) {
      unsigned lane = static_cast<unsigned>(__builtin_ctz(nz));
      nz = static_cast<__mmask8>(nz & (nz - 1));
      size_t k = w + lane;
      uint64_t bits = words[k];
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        out->push_back(static_cast<uint32_t>(k * 64 + tz));
        bits &= bits - 1;
      }
    }
  }
  for (; w < n; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
      out->push_back(static_cast<uint32_t>(w * 64 + tz));
      bits &= bits - 1;
    }
  }
}

uint32_t CombineGroupAvx512(const GroupProbe& g,
                            const uint64_t* const* child_sets,
                            uint64_t* out) {
  if (g.rank == 0 || g.count < 16) {
    return CombineGroupScalar(g, child_sets, out);
  }
  uint32_t accepted = 0;
  uint32_t i = 0;
  const __m256i k63 = _mm256_set1_epi32(63);
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i zero = _mm512_setzero_si512();
  for (; i + 8 <= g.count; i += 8) {
    // m tracks the transitions still alive; dead lanes skip their gathers.
    __mmask8 m = 0xff;
    for (uint32_t c = 0; c < g.rank && m != 0; ++c) {
      const uint32_t* lanes = g.child + c * g.count + i;
      __m256i st =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes));
      __m256i widx = _mm256_srli_epi32(st, 6);
      // CompiledNfta sorts each group's probe lanes by child word, so a
      // whole block usually probes one word of child_sets[c]: broadcast
      // that word instead of issuing a (much slower) gather.
      __m256i wfirst = _mm256_set1_epi32(static_cast<int>(lanes[0] >> 6));
      __m512i word;
      if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(widx, wfirst)) == -1) {
        word = _mm512_set1_epi64(
            static_cast<long long>(child_sets[c][lanes[0] >> 6]));
      } else {
        word = _mm512_mask_i32gather_epi64(zero, m, widx, child_sets[c], 8);
      }
      __m512i sh = _mm512_cvtepu32_epi64(_mm256_and_si256(st, k63));
      m = _mm512_mask_test_epi64_mask(m, _mm512_srlv_epi64(word, sh), one);
    }
    if (m != 0) {
      // Accepted-lane scatter. Lanes are secondarily sorted by from word,
      // so most blocks set bits in a single out word: build the bits with
      // a masked variable shift and one OR-reduce.
      __m256i fv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(g.from + i));
      __m256i fw = _mm256_srli_epi32(fv, 6);
      __m256i fw0 = _mm256_set1_epi32(static_cast<int>(g.from[i] >> 6));
      if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(fw, fw0)) == -1) {
        __m512i bits = _mm512_maskz_sllv_epi64(
            m, one, _mm512_cvtepu32_epi64(_mm256_and_si256(fv, k63)));
        out[g.from[i] >> 6] |= _mm512_reduce_or_epi64(bits);
        accepted += static_cast<uint32_t>(__builtin_popcount(m));
      } else {
        while (m != 0) {
          unsigned lane = static_cast<unsigned>(__builtin_ctz(m));
          m = static_cast<__mmask8>(m & (m - 1));
          uint32_t f = g.from[i + lane];
          out[f >> 6] |= uint64_t{1} << (f & 63);
          ++accepted;
        }
      }
    }
  }
  for (; i < g.count; ++i) {
    if (ProbeOneTransition(g, child_sets, i)) {
      uint32_t f = g.from[i];
      out[f >> 6] |= uint64_t{1} << (f & 63);
      ++accepted;
    }
  }
  return accepted;
}

}  // namespace

const Kernels* GetAvx512Kernels() {
  static const Kernels k = {
      Backend::kAvx512,      "avx512",
      &ClearWordsAvx512,     &AndWordsAvx512,
      &OrWordsAvx512,        &AccumulateMaskedAvx512,
      &EqualWordsAvx512,     &PopcountWordsScalar,
      &HashWordsAvx512,      &AppendSetBitsAvx512,
      &CombineGroupAvx512,
  };
  return &k;
}

}  // namespace detail
}  // namespace simd
}  // namespace uocqa

#endif  // UOCQA_SIMD_AVX512
