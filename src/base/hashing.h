// Small hashing helpers used by containers across the library.

#ifndef UOCQA_BASE_HASHING_H_
#define UOCQA_BASE_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace uocqa {

/// Mixes `value` into `seed` (boost::hash_combine-style with a 64-bit mixer).
inline void HashCombine(size_t* seed, size_t value) {
  uint64_t x = static_cast<uint64_t>(*seed) + 0x9e3779b97f4a7c15ull +
               (static_cast<uint64_t>(value) << 6) +
               (static_cast<uint64_t>(value) >> 2);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  *seed = static_cast<size_t>(x ^ value);
}

/// Hash functor for std::vector of hashable elements.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    size_t seed = v.size();
    std::hash<T> h;
    for (const T& x : v) HashCombine(&seed, h(x));
    return seed;
  }
};

/// Hash functor for std::pair.
template <typename A, typename B>
struct PairHash {
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = std::hash<A>{}(p.first);
    HashCombine(&seed, std::hash<B>{}(p.second));
    return seed;
  }
};

}  // namespace uocqa

#endif  // UOCQA_BASE_HASHING_H_
