// Arbitrary-precision *non-negative* integers.
//
// Counting problems in this library (numbers of operational repairs,
// repairing sequences, interleavings, accepted trees) produce values that
// grow factorially with the database size; |CRS(D, Sigma)| overflows 64 bits
// for databases with a couple dozen conflicting facts. All counting code
// therefore uses BigInt.
//
// Design notes:
//  * Magnitudes only. Every count in the paper is a natural number; the
//    handful of subtractions that occur (inclusion-exclusion in tests)
//    guarantee non-negative results, enforced by assertions.
//  * Small-value fast path: values < 2^64 live in an inline uint64_t and
//    never touch the heap. The exact-count DP performs millions of
//    additions and multiplications whose operands overwhelmingly fit in a
//    word; only a carry past 2^64 spills to heap limbs. Canonical form:
//    `limbs_` is non-empty iff the value is >= 2^64 (so the representation
//    of every value is unique, and comparison can shortcut on it).
//  * Spilled values use base 2^32 limbs, little-endian, normalized (no
//    leading zeros; at least three limbs by the canonical-form invariant).
//  * No general big/big division. Only what the library needs:
//    - multiplication/addition/subtraction/comparison/shifts,
//    - division by a 32-bit digit (decimal printing),
//    - `RatioAsDouble` for converting count ratios (relative frequencies)
//      to double without materializing huge quotients.

#ifndef UOCQA_BASE_BIGINT_H_
#define UOCQA_BASE_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace uocqa {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Value-initializing constructor from an unsigned 64-bit integer.
  explicit BigInt(uint64_t value) : small_(value) {}

  /// Parses a decimal string of digits. Returns zero for an empty string.
  static BigInt FromDecimalString(const std::string& digits);

  bool IsZero() const { return limbs_.empty() && small_ == 0; }
  bool IsOne() const { return limbs_.empty() && small_ == 1; }

  /// True when the value fits in the inline uint64_t (no heap limbs).
  bool IsSmall() const { return limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  size_t BitLength() const;

  /// Truncates to uint64 (asserts the value fits).
  uint64_t ToUint64() const;

  /// Nearest double (may be +inf for astronomically large values).
  double ToDouble() const;

  /// Decimal representation.
  std::string ToString() const;

  // -- comparison -----------------------------------------------------------
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  // -- arithmetic -----------------------------------------------------------
  BigInt& operator+=(const BigInt& o);
  /// Asserts *this >= o (magnitude arithmetic only).
  BigInt& operator-=(const BigInt& o);
  BigInt& operator*=(const BigInt& o);
  BigInt& operator+=(uint64_t v);
  BigInt& operator*=(uint64_t v);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  friend BigInt operator*(BigInt a, uint64_t b) { return a *= b; }

  /// Shifts left by `bits` bit positions.
  BigInt& ShiftLeft(size_t bits);
  /// Shifts right by `bits` bit positions (towards zero).
  BigInt& ShiftRight(size_t bits);

  /// Divides in place by a non-zero 32-bit divisor; returns the remainder.
  uint32_t DivModU32(uint32_t divisor);

  /// num/den as a double via top-bits extraction; den must be non-zero.
  /// Relative error is about 2^-52 regardless of operand sizes.
  static double RatioAsDouble(const BigInt& num, const BigInt& den);

  /// log2(value) as a double; value must be non-zero.
  double Log2() const;

 private:
  /// Moves a small value into `limbs_` so the limb algorithms below apply.
  /// Intermediate state only — Canonicalize() restores the invariant.
  void Promote();
  /// Drops leading zero limbs and collapses values < 2^64 back into the
  /// inline word (the canonical-form invariant).
  void Canonicalize();
  /// Adds `v` into an already-promoted limb representation.
  void AddU64ToLimbs(uint64_t v);
  /// Top (up to) 64 significant bits, left-aligned so bit 63 is the MSB.
  uint64_t TopBits64() const;
  /// Schoolbook limb product (used by all spilled multiplications).
  static std::vector<uint32_t> MulLimbs(const std::vector<uint32_t>& a,
                                        const std::vector<uint32_t>& b);

  uint64_t small_ = 0;           // the value, when limbs_ is empty
  std::vector<uint32_t> limbs_;  // little-endian base 2^32, else
};

/// Binomial coefficient C(n, k) computed exactly.
BigInt Binomial(uint32_t n, uint32_t k);

/// n! computed exactly.
BigInt Factorial(uint32_t n);

/// Multinomial coefficient (sum(parts))! / prod(parts!) computed as a product
/// of binomials, so it stays in BigInt multiplication land.
BigInt Multinomial(const std::vector<uint32_t>& parts);

}  // namespace uocqa

#endif  // UOCQA_BASE_BIGINT_H_
