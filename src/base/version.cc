#include "base/version.h"

#include <cstdio>

#include "base/simd_kernels.h"

namespace uocqa {

std::string VersionString() {
#ifdef UOCQA_VERSION
  return UOCQA_VERSION;
#else
  return "unknown";
#endif
}

std::string VersionFields() {
  std::string out = "version=" + VersionString();
  out += " simd=";
  out += simd::Active().name;
  char buf[32];
  std::snprintf(buf, sizeof(buf), " seed_schema=%d", kDefaultSeedSchema);
  out += buf;
  return out;
}

std::string VersionBanner() {
  std::string out = "uocqa " + VersionString();
  out += " (simd=";
  out += simd::Active().name;
  char buf[32];
  std::snprintf(buf, sizeof(buf), ", seed_schema=%d)", kDefaultSeedSchema);
  out += buf;
  return out;
}

}  // namespace uocqa
