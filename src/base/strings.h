// Minimal string utilities (split/trim/join) used by the query parser and
// pretty-printers.

#ifndef UOCQA_BASE_STRINGS_H_
#define UOCQA_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace uocqa {

/// Splits on a single-character delimiter; keeps empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

/// Joins pieces with a separator.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace uocqa

#endif  // UOCQA_BASE_STRINGS_H_
