#include "base/failpoint.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace uocqa {
namespace failpoint {

namespace {

struct Registry {
  std::mutex mu;
  // std::map: Armed() lists names in order without re-sorting. Entries are
  // never removed, so State pointers stay valid for the process lifetime.
  std::map<std::string, std::unique_ptr<detail::State>> states;
};

Registry& TheRegistry() {
  static Registry* r = new Registry();  // leaked: sites outlive everything
  return *r;
}

detail::State* GetOrCreate(const std::string& name) {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.states.find(name);
  if (it == r.states.end()) {
    it = r.states.emplace(name, std::make_unique<detail::State>()).first;
  }
  return it->second.get();
}

void ArmState(detail::State* s, uint64_t hit) {
  if (hit == 0) hit = 1;
  // Order matters: a racing Triggered() must not observe armed before the
  // countdown is in place. Tests arm before dispatching work, so this is
  // belt-and-braces, not a synchronization contract.
  s->countdown.store(static_cast<int64_t>(hit), std::memory_order_relaxed);
  s->armed.store(true, std::memory_order_release);
}

/// "name=N,name2=M" (bare "name" means 1). Registry-level, so the env
/// bootstrap below can use it without re-entering Resolve's call_once.
bool ArmFromSpecImpl(const std::string& spec) {
  size_t pos = 0;
  bool ok = true;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    std::string name =
        entry.substr(0, eq == std::string::npos ? entry.size() : eq);
    uint64_t hit = 1;
    if (eq != std::string::npos) {
      const std::string count = entry.substr(eq + 1);
      bool numeric = !count.empty();
      hit = 0;
      for (char c : count) {
        if (c < '0' || c > '9') {
          numeric = false;
          break;
        }
        hit = hit * 10 + static_cast<uint64_t>(c - '0');
      }
      if (!numeric) {
        ok = false;
        continue;
      }
    }
    if (name.empty()) {
      ok = false;
      continue;
    }
    ArmState(GetOrCreate(name), hit);
  }
  return ok;
}

void ArmFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("UOCQA_FAILPOINTS");
    if (spec != nullptr && spec[0] != '\0') ArmFromSpecImpl(spec);
  });
}

}  // namespace

namespace detail {

State* Resolve(const std::string& name) {
  ArmFromEnvOnce();
  return GetOrCreate(name);
}

}  // namespace detail

void Arm(const std::string& name, uint64_t hit) {
  ArmState(detail::Resolve(name), hit);
}

void Disarm(const std::string& name) {
  detail::Resolve(name)->armed.store(false, std::memory_order_relaxed);
}

void DisarmAll() {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, state] : r.states) {
    state->armed.store(false, std::memory_order_relaxed);
  }
}

uint64_t Hits(const std::string& name) {
  return detail::Resolve(name)->hits.load(std::memory_order_relaxed);
}

void ResetHits(const std::string& name) {
  detail::Resolve(name)->hits.store(0, std::memory_order_relaxed);
}

std::vector<std::string> Armed() {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> out;
  for (const auto& [name, state] : r.states) {
    if (state->armed.load(std::memory_order_relaxed)) out.push_back(name);
  }
  return out;
}

bool ArmFromSpec(const std::string& spec) {
  ArmFromEnvOnce();
  return ArmFromSpecImpl(spec);
}

}  // namespace failpoint
}  // namespace uocqa
