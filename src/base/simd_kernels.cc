#include "base/simd_kernels.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "base/simd_kernels_detail.h"

namespace uocqa {
namespace simd {

namespace detail {

void ClearWordsScalar(uint64_t* dst, size_t n) {
  std::memset(dst, 0, n * sizeof(uint64_t));
}

void AndWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
}

void OrWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}

void AccumulateMaskedScalar(uint64_t* dst, const uint64_t* src,
                            const uint64_t* mask, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i] & mask[i];
}

bool EqualWordsScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  return std::memcmp(a, b, n * sizeof(uint64_t)) == 0;
}

size_t PopcountWordsScalar(const uint64_t* a, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(__builtin_popcountll(a[i]));
  }
  return total;
}

uint64_t HashWordsScalar(const uint64_t* a, size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) sum += MixWord(a[i], i);
  return FinalizeHash(sum, n);
}

void AppendSetBitsScalar(const uint64_t* words, size_t n,
                         std::vector<uint32_t>* out) {
  for (size_t w = 0; w < n; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
      out->push_back(static_cast<uint32_t>(w * 64 + tz));
      bits &= bits - 1;
    }
  }
}

uint32_t CombineGroupScalar(const GroupProbe& g,
                            const uint64_t* const* child_sets,
                            uint64_t* out) {
  uint32_t accepted = 0;
  for (uint32_t i = 0; i < g.count; ++i) {
    if (ProbeOneTransition(g, child_sets, i)) {
      uint32_t f = g.from[i];
      out[f >> 6] |= uint64_t{1} << (f & 63);
      ++accepted;
    }
  }
  return accepted;
}

const Kernels* GetScalarKernels() {
  static const Kernels k = {
      Backend::kScalar,      "scalar",
      &ClearWordsScalar,     &AndWordsScalar,
      &OrWordsScalar,        &AccumulateMaskedScalar,
      &EqualWordsScalar,     &PopcountWordsScalar,
      &HashWordsScalar,      &AppendSetBitsScalar,
      &CombineGroupScalar,
  };
  return &k;
}

}  // namespace detail

namespace {

/// True if the running CPU supports every instruction the backend's TU was
/// compiled with. Non-GCC/Clang or non-x86 builds never compile the vector
/// TUs, so the conservative false is unreachable there anyway.
bool CpuSupports(Backend b) {
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Backend::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512dq");
  }
  return false;
#else
  return b == Backend::kScalar;
#endif
}

const Kernels* CompiledBackend(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return detail::GetScalarKernels();
    case Backend::kAvx2:
#if defined(UOCQA_SIMD_AVX2)
      return detail::GetAvx2Kernels();
#else
      return nullptr;
#endif
    case Backend::kAvx512:
#if defined(UOCQA_SIMD_AVX512)
      return detail::GetAvx512Kernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

/// The widest backend allowed by the UOCQA_SIMD environment variable
/// (scalar|avx2|avx512; anything else — including unset — means no cap).
Backend EnvCap() {
  const char* env = std::getenv("UOCQA_SIMD");
  if (env == nullptr) return Backend::kAvx512;
  std::string v(env);
  if (v == "scalar") return Backend::kScalar;
  if (v == "avx2") return Backend::kAvx2;
  return Backend::kAvx512;
}

const Kernels* SelectStartupBackend() {
  Backend cap = EnvCap();
  const Kernels* best = detail::GetScalarKernels();
  for (Backend b : {Backend::kAvx2, Backend::kAvx512}) {
    if (static_cast<uint8_t>(b) > static_cast<uint8_t>(cap)) continue;
    const Kernels* k = CompiledBackend(b);
    if (k != nullptr && CpuSupports(b)) best = k;
  }
  return best;
}

const Kernels* g_test_override = nullptr;

}  // namespace

const Kernels& Active() {
  if (g_test_override != nullptr) return *g_test_override;
  static const Kernels* selected = SelectStartupBackend();
  return *selected;
}

const Kernels* ForBackend(Backend b) {
  const Kernels* k = CompiledBackend(b);
  return (k != nullptr && CpuSupports(b)) ? k : nullptr;
}

std::vector<const Kernels*> AvailableBackends() {
  std::vector<const Kernels*> out;
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512}) {
    const Kernels* k = ForBackend(b);
    if (k != nullptr) out.push_back(k);
  }
  return out;
}

void SetActiveForTest(const Kernels* k) { g_test_override = k; }

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

}  // namespace simd
}  // namespace uocqa
