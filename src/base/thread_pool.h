// A small work-stealing thread pool with a blocking parallel-for.
//
// This is the concurrency layer of the library. The engine's parallel paths
// (Monte-Carlo sampling, FPRAS union estimation, block partitioning) are all
// data-parallel loops over independent items, so the entire public surface
// is ParallelFor; there is deliberately no future/promise machinery.
//
// Determinism contract: the pool never owns randomness and never influences
// results. Parallel callers split work into *fixed-size chunks that do not
// depend on the thread count* and derive one independent RNG stream per
// chunk from a root seed (Rng::Stream), so every estimate in the library is
// bit-identical at any thread count, including fully serial execution.

#ifndef UOCQA_BASE_THREAD_POOL_H_
#define UOCQA_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/metrics.h"

namespace uocqa {

/// Number of hardware threads, never 0 (falls back to 1 when the runtime
/// cannot tell).
size_t HardwareThreads();

/// A work-stealing thread pool.
///
/// `ThreadPool(n)` provides `n` execution lanes for ParallelFor: `n - 1`
/// worker threads plus the calling thread, which always participates.
/// `ThreadPool(1)` therefore spawns no threads at all and runs every loop
/// inline, making `--threads 1` exactly the serial execution path.
///
/// Scheduling: each lane owns a deque of range tasks. A task covering more
/// iterations than the loop's grain splits in half, keeping the front half
/// and pushing the back half onto the executing lane's deque; idle lanes
/// steal from the *front* of other lanes' deques (oldest, i.e. largest,
/// ranges first). This is the classic binary-splitting work-stealing scheme:
/// well-balanced loops run almost entirely out of lane-local deques, while
/// skewed loops shed their large untouched subranges to idle lanes.
///
/// Thread safety: ParallelFor may be called from any thread, including from
/// inside a running ParallelFor body (nested loops execute on the same
/// lanes; the inner caller helps until its own loop is done). The pool
/// itself must outlive all concurrent calls.
class ThreadPool {
 public:
  /// Creates a pool with `threads` lanes; 0 means HardwareThreads().
  ///
  /// With a registry, the pool reports `uocqa_pool_tasks_total` (leaf tasks
  /// executed), `uocqa_pool_steals_total` (tasks taken from another lane's
  /// deque), and `uocqa_pool_idle_wakeups_total` (worker wakeups from the
  /// idle wait). Scheduling is unchanged either way — the counters observe
  /// the work distribution, they never steer it.
  explicit ThreadPool(size_t threads = 0, MetricsRegistry* metrics = nullptr);

  /// Joins all workers. Must not run concurrently with ParallelFor.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (worker threads + the calling thread).
  size_t thread_count() const { return worker_count_ + 1; }

  /// Runs `body(i)` for every i in [0, n), distributing iterations over all
  /// lanes, and returns when every iteration has finished.
  ///
  /// `grain` is the largest range a single task may cover before splitting;
  /// 0 picks max(1, n / (8 * lanes)). The grain affects scheduling only,
  /// never which iterations run.
  ///
  /// If any invocation of `body` throws, the first exception (in completion
  /// order) is captured and rethrown in the caller after all in-flight
  /// iterations finish; iterations not yet started are skipped. The pool
  /// remains usable afterwards.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                   size_t grain = 0);

 private:
  struct LoopJob;
  /// A contiguous iteration range [lo, hi) of one ParallelFor call.
  struct Task {
    LoopJob* job = nullptr;
    size_t lo = 0;
    size_t hi = 0;
  };
  struct Lane {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerMain(size_t lane);
  /// Lane index for the current thread: its own lane when it is one of this
  /// pool's workers, the shared external lane otherwise.
  size_t CurrentLane() const;
  void Push(size_t lane, Task t);
  /// Pops from the back of `lane`'s deque, else steals from the front of
  /// another lane's. Returns false when every deque is empty.
  bool TryPop(size_t lane, Task* out);
  /// Splits `t` down to the job's grain, runs the body on what remains, and
  /// retires the covered iterations.
  void RunTask(Task t, size_t lane);
  /// Executes available tasks (any job) until `job` has no iterations left.
  void HelpUntilDone(LoopJob* job, size_t lane);

  size_t worker_count_ = 0;
  std::vector<std::unique_ptr<Lane>> lanes_;  // workers, then external lane
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<size_t> queued_{0};  // tasks sitting in deques
  bool stop_ = false;              // guarded by wake_mu_

  // Null without a registry; recording goes through the null-tolerant
  // metrics helpers so the uninstrumented pool pays one branch per event.
  metrics::Counter* tasks_counter_ = nullptr;
  metrics::Counter* steals_counter_ = nullptr;
  metrics::Counter* idle_wakeups_counter_ = nullptr;
};

/// Runs `body(i)` for i in [0, n) on `pool`, or inline (in index order)
/// when `pool` is null.
///
/// This is the canonical dispatch for the engine's determinism pattern:
/// callers lay out fixed-size chunks (independent of any thread count),
/// derive one Rng::Stream per chunk, and hand the chunk loop here with
/// whatever pool — possibly none — they were given. Every parallel
/// estimator (Monte Carlo, FPRAS trials, block partitioning) goes through
/// this single entry point so the serial and parallel paths cannot drift.
void ParallelForOn(ThreadPool* pool, size_t n,
                   const std::function<void(size_t)>& body, size_t grain = 0);

}  // namespace uocqa

#endif  // UOCQA_BASE_THREAD_POOL_H_
