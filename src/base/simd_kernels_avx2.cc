// AVX2 backend: 4 uint64 words per vector. Compiled in its own TU with
// -mavx2 (see src/base/CMakeLists.txt); only ever invoked after the
// runtime CPUID check in simd_kernels.cc, so the rest of the binary stays
// portable. Every kernel is bit-identical to the scalar reference.

#include "base/simd_kernels_detail.h"

#if defined(UOCQA_SIMD_AVX2)

#include <immintrin.h>

namespace uocqa {
namespace simd {
namespace detail {
namespace {

void ClearWordsAvx2(uint64_t* dst, size_t n) {
  size_t i = 0;
  __m256i zero = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), zero);
  }
  for (; i < n; ++i) dst[i] = 0;
}

void AndWordsAvx2(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                  size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

void OrWordsAvx2(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                 size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

void AccumulateMaskedAvx2(uint64_t* dst, const uint64_t* src,
                          const uint64_t* mask, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i vs = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i vm =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(vd, _mm256_and_si256(vs, vm)));
  }
  for (; i < n; ++i) dst[i] |= src[i] & mask[i];
}

bool EqualWordsAvx2(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i diff = _mm256_xor_si256(va, vb);
    if (!_mm256_testz_si256(diff, diff)) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// 64-bit lane-wise multiply (AVX2 has no mullo_epi64): standard
/// three-product composition of 32-bit halves.
inline __m256i Mullo64(__m256i a, __m256i b) {
  __m256i lo = _mm256_mul_epu32(a, b);
  __m256i a_hi = _mm256_srli_epi64(a, 32);
  __m256i b_hi = _mm256_srli_epi64(b, 32);
  __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                   _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// Lane-wise MixWord (same math as detail::MixWord; `idx1` holds i+1).
inline __m256i MixWord4(__m256i w, __m256i idx1) {
  const __m256i golden = _mm256_set1_epi64x(
      static_cast<long long>(kHashGolden));
  __m256i z = _mm256_add_epi64(w, Mullo64(idx1, golden));
  z = Mullo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
              _mm256_set1_epi64x(static_cast<long long>(kHashMul1)));
  z = Mullo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
              _mm256_set1_epi64x(static_cast<long long>(kHashMul2)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

uint64_t HashWordsAvx2(const uint64_t* a, size_t n) {
  size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  __m256i idx1 = _mm256_set_epi64x(4, 3, 2, 1);
  const __m256i four = _mm256_set1_epi64x(4);
  for (; i + 4 <= n; i += 4) {
    __m256i w = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc, MixWord4(w, idx1));
    idx1 = _mm256_add_epi64(idx1, four);
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += MixWord(a[i], i);
  return FinalizeHash(sum, n);
}

void AppendSetBitsAvx2(const uint64_t* words, size_t n,
                       std::vector<uint32_t>* out) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    if (_mm256_testz_si256(v, v)) continue;  // common sparse case: skip 4
    for (size_t k = w; k < w + 4; ++k) {
      uint64_t bits = words[k];
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        out->push_back(static_cast<uint32_t>(k * 64 + tz));
        bits &= bits - 1;
      }
    }
  }
  for (; w < n; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
      out->push_back(static_cast<uint32_t>(w * 64 + tz));
      bits &= bits - 1;
    }
  }
}

uint32_t CombineGroupAvx2(const GroupProbe& g,
                          const uint64_t* const* child_sets, uint64_t* out) {
  // Small groups and rank-0 (unconditional accept) aren't worth the gather
  // setup; the scalar path is bit-identical by contract.
  if (g.rank == 0 || g.count < 8) {
    return CombineGroupScalar(g, child_sets, out);
  }
  uint32_t accepted = 0;
  uint32_t i = 0;
  const __m128i k63 = _mm_set1_epi32(63);
  const __m256i one = _mm256_set1_epi64x(1);
  for (; i + 4 <= g.count; i += 4) {
    // acc lane j accumulates the AND of the probed child bits (in the LSB)
    // of transition i+j across child positions.
    __m256i acc = _mm256_set1_epi64x(-1);
    for (uint32_t c = 0; c < g.rank; ++c) {
      const uint32_t* lanes = g.child + c * g.count + i;
      __m128i st = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes));
      __m128i widx = _mm_srli_epi32(st, 6);
      // CompiledNfta sorts each group's probe lanes by child word, so a
      // whole block usually probes one word of child_sets[c]: broadcast
      // that word instead of issuing a (much slower) gather.
      __m128i wfirst = _mm_set1_epi32(static_cast<int>(lanes[0] >> 6));
      __m256i word;
      if (_mm_movemask_epi8(_mm_cmpeq_epi32(widx, wfirst)) == 0xffff) {
        word = _mm256_set1_epi64x(
            static_cast<long long>(child_sets[c][lanes[0] >> 6]));
      } else {
        word = _mm256_i32gather_epi64(
            reinterpret_cast<const long long*>(child_sets[c]), widx, 8);
      }
      __m256i sh = _mm256_cvtepu32_epi64(_mm_and_si128(st, k63));
      acc = _mm256_and_si256(acc, _mm256_srlv_epi64(word, sh));
      if (_mm256_testz_si256(acc, one)) break;  // every lane already failed
    }
    int mask = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_slli_epi64(acc, 63)));
    if (mask == 0) continue;
    // Accepted-lane scatter. Lanes are secondarily sorted by from word, so
    // most blocks set bits in a single out word: build the bits with a
    // variable shift (dead lanes zeroed via acc's LSB) and OR the lanes.
    __m128i fv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(g.from + i));
    __m128i fw = _mm_srli_epi32(fv, 6);
    __m128i fw0 = _mm_set1_epi32(static_cast<int>(g.from[i] >> 6));
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(fw, fw0)) == 0xffff) {
      __m256i live = _mm256_and_si256(acc, one);
      __m256i bits =
          _mm256_sllv_epi64(live, _mm256_cvtepu32_epi64(_mm_and_si128(fv, k63)));
      __m128i halves = _mm_or_si128(_mm256_castsi256_si128(bits),
                                    _mm256_extracti128_si256(bits, 1));
      out[g.from[i] >> 6] |=
          static_cast<uint64_t>(_mm_extract_epi64(halves, 0)) |
          static_cast<uint64_t>(_mm_extract_epi64(halves, 1));
      accepted += static_cast<uint32_t>(
          __builtin_popcount(static_cast<unsigned>(mask)));
    } else {
      while (mask != 0) {
        int lane = __builtin_ctz(static_cast<unsigned>(mask));
        mask &= mask - 1;
        uint32_t f = g.from[i + static_cast<uint32_t>(lane)];
        out[f >> 6] |= uint64_t{1} << (f & 63);
        ++accepted;
      }
    }
  }
  for (; i < g.count; ++i) {
    if (ProbeOneTransition(g, child_sets, i)) {
      uint32_t f = g.from[i];
      out[f >> 6] |= uint64_t{1} << (f & 63);
      ++accepted;
    }
  }
  return accepted;
}

}  // namespace

const Kernels* GetAvx2Kernels() {
  static const Kernels k = {
      Backend::kAvx2,       "avx2",
      &ClearWordsAvx2,      &AndWordsAvx2,
      &OrWordsAvx2,         &AccumulateMaskedAvx2,
      &EqualWordsAvx2,      &PopcountWordsScalar,
      &HashWordsAvx2,       &AppendSetBitsAvx2,
      &CombineGroupAvx2,
  };
  return &k;
}

}  // namespace detail
}  // namespace simd
}  // namespace uocqa

#endif  // UOCQA_SIMD_AVX2
