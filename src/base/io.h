// Minimal file I/O primitives for the durability layer: an append-only
// writable file with explicit sync, whole-file reads, and a software CRC-32.
//
// The write-ahead log (service/wal.h) is the consumer that forced this
// module into existence, and its needs set the shape:
//
//  * **Append + Sync are separate operations.** Durability is a policy
//    decision (sync every record / per group-commit batch / never), so the
//    file abstraction exposes the raw POSIX pair — buffered `write(2)`
//    appends and an explicit `fdatasync(2)` — instead of choosing for the
//    caller. A successful Append means the bytes reached the kernel (they
//    survive a process crash); only Sync makes them survive power loss.
//  * **Truncate-then-append recovery.** Crash recovery keeps the longest
//    valid record prefix of a log and discards the torn tail; OpenWritable
//    takes the byte offset to resume at and truncates everything after it
//    before the first append.
//  * **CRC-32 framing.** Records are checksummed with the standard IEEE
//    CRC-32 (the zlib/PNG/ethernet polynomial, reflected), which detects
//    all single-bit errors and all burst errors up to 32 bits — the failure
//    modes of torn sector writes the recovery tests inject.
//
// Everything returns Status/Result; nothing throws. POSIX-only (the
// project's CI targets), with errno captured into the error message.

#ifndef UOCQA_BASE_IO_H_
#define UOCQA_BASE_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "base/status.h"

namespace uocqa {

/// Standard IEEE CRC-32 (reflected, polynomial 0xEDB88320) of `data`,
/// continuing from `seed` (pass the previous return value to checksum a
/// buffer in pieces; 0 starts a fresh checksum).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);
inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

/// An append-only file handle. Not thread-safe; the owning subsystem
/// serializes access (the WAL writer holds it under the live instance's
/// mutex). Closes on destruction (without syncing — call Sync first if the
/// tail must be durable).
class WritableFile {
 public:
  /// Opens `path` for appending, creating it if absent. The file is first
  /// truncated to `resume_at` bytes — the end of the valid prefix recovery
  /// kept — so a corrupt tail can never be extended into a "valid" record
  /// by later appends. Pass the current file size (or open a fresh file
  /// with resume_at = 0) to append without discarding anything.
  static Result<std::unique_ptr<WritableFile>> Open(const std::string& path,
                                                    uint64_t resume_at);

  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Appends `data` at the end of the file. On success the bytes are in the
  /// kernel page cache (durable across a process crash, not across power
  /// loss until Sync).
  Status Append(std::string_view data);

  /// fdatasync(2): blocks until every appended byte is on stable storage.
  Status Sync();

  /// Closes the descriptor; further operations fail. Idempotent.
  Status Close();

  /// Bytes in the file: resume offset plus everything appended since Open.
  uint64_t size() const { return size_; }

  const std::string& path() const { return path_; }

 private:
  WritableFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}

  int fd_ = -1;
  std::string path_;
  uint64_t size_ = 0;
};

/// Reads the whole file into a string. NotFound if it does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// Size of `path` in bytes; NotFound if it does not exist.
Result<uint64_t> FileSize(const std::string& path);

/// True if `path` exists (as any file type).
bool FileExists(const std::string& path);

/// Truncates `path` to `size` bytes (the file must exist).
Status TruncateFile(const std::string& path, uint64_t size);

/// Removes `path` if it exists; missing files are not an error.
Status RemoveFileIfExists(const std::string& path);

}  // namespace uocqa

#endif  // UOCQA_BASE_IO_H_
