// Build identity: version string, runtime-selected SIMD backend, default
// seed schema. One definition feeds the `version` service verb, the
// `--version` flag on both front ends, and the serve startup banner, so
// they can never disagree about what binary is running.

#ifndef UOCQA_BASE_VERSION_H_
#define UOCQA_BASE_VERSION_H_

#include <string>

namespace uocqa {

/// The default FPRAS seed schema. Schema 1 is the legacy per-trial
/// stream layout; schema 2 (default since the lockstep batch rewrite)
/// derives one stream per trial batch. FprasConfig, the request parser,
/// and the CLI all reference this constant so a schema bump is one edit.
inline constexpr int kDefaultSeedSchema = 2;

/// The bare semantic version, e.g. "0.1.0" (from the CMake project
/// version; "unknown" if the build did not inject one).
std::string VersionString();

/// Protocol-payload form: `version=<v> simd=<backend> seed_schema=<n>`.
/// The SIMD backend is the one `simd::Active()` selected at startup —
/// reported here because it is otherwise chosen silently.
std::string VersionFields();

/// Human-oriented one-line banner for startup logs, e.g.
/// `uocqa 0.1.0 (simd=avx2, seed_schema=2)`.
std::string VersionBanner();

}  // namespace uocqa

#endif  // UOCQA_BASE_VERSION_H_
