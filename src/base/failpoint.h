// Failpoints: named fault-injection sites compiled into the production
// binary, inert until armed.
//
// The durability layer's correctness claim is about *crashes*: whatever
// prefix of the write-ahead log survives, recovery must reconstruct exactly
// the state that prefix describes. Testing that claim requires dying at
// every interesting instant of the write path — before a record, halfway
// through its bytes, at the sync, between the log append and the in-memory
// publish. Failpoints make those instants addressable:
//
//   // At the injection site (wal.cc, live.cc, service.cc):
//   static failpoint::Site fp("wal.append");
//   if (fp.Triggered()) { /* simulate the fault */ }
//
//   // In a test:
//   failpoint::Arm("wal.append", /*hit=*/3);  // fire on the 3rd hit
//
//   // Or for a whole process (the CI crash smoke):
//   UOCQA_FAILPOINTS=wal.append=3,wal.sync=1 uocqa_serve ...
//
// Semantics: Arm(name, n) makes the site fire exactly once, on its n-th
// evaluation after arming (1-based), then disarm itself — single-shot,
// because the faults modeled here (a crash) happen once. Hits are counted
// from process start whether or not the site is armed, so a test can run a
// workload once, read Hits(), and then re-run it killing the path at every
// hit index — the exhaustive crash schedule recovery_test.cc executes.
//
// Cost when unarmed: one lazy registry lookup on the first evaluation, then
// one relaxed counter increment and one relaxed bool load per evaluation —
// a no-op branch. Sites live on cold paths (WAL writes, snapshot publish,
// cache insertion), never inside solver loops.
//
// Thread safety: all operations are safe from any thread. Arming while the
// workload runs is racy by nature (the n-th hit is whichever evaluation
// decrements the countdown to zero); tests arm before dispatching work.

#ifndef UOCQA_BASE_FAILPOINT_H_
#define UOCQA_BASE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace uocqa {
namespace failpoint {

namespace detail {

/// Registry entry for one failpoint name. Never deallocated: Site caches
/// the pointer for the process lifetime.
struct State {
  std::atomic<bool> armed{false};
  /// Evaluations remaining until the site fires (valid while armed).
  std::atomic<int64_t> countdown{0};
  /// Evaluations since process start, armed or not.
  std::atomic<uint64_t> hits{0};
};

/// Get-or-create the entry for `name`. First call overall also arms from
/// the UOCQA_FAILPOINTS environment variable.
State* Resolve(const std::string& name);

}  // namespace detail

/// Arms `name` to fire on its `hit`-th evaluation from now (1-based),
/// exactly once. Re-arming replaces any pending arming.
void Arm(const std::string& name, uint64_t hit = 1);

/// Disarms `name` (no-op if not armed).
void Disarm(const std::string& name);

/// Disarms every failpoint — test teardown.
void DisarmAll();

/// Evaluations of `name` since process start (0 if the site never ran).
uint64_t Hits(const std::string& name);

/// Resets the hit counter of `name` to zero (test isolation between
/// workload runs).
void ResetHits(const std::string& name);

/// Names with a pending arming, in name order.
std::vector<std::string> Armed();

/// Parses and applies `spec` ("name=N,name2=M"; a bare "name" means 1).
/// Returns false on a malformed spec (applied entries stay armed).
bool ArmFromSpec(const std::string& spec);

/// One injection site. Declare as a function-local or namespace-scope
/// static at the point where the fault should be injectable.
class Site {
 public:
  explicit Site(const char* name) : name_(name) {}

  /// Counts the evaluation; true exactly when an armed countdown reaches
  /// zero (the site then disarms itself).
  bool Triggered() {
    detail::State* s = state_.load(std::memory_order_acquire);
    if (s == nullptr) {
      s = detail::Resolve(name_);
      state_.store(s, std::memory_order_release);
    }
    s->hits.fetch_add(1, std::memory_order_relaxed);
    if (!s->armed.load(std::memory_order_relaxed)) return false;
    if (s->countdown.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      return false;
    }
    s->armed.store(false, std::memory_order_relaxed);
    return true;
  }

  const char* name() const { return name_; }

 private:
  const char* name_;
  std::atomic<detail::State*> state_{nullptr};
};

}  // namespace failpoint
}  // namespace uocqa

#endif  // UOCQA_BASE_FAILPOINT_H_
