// Internal scalar reference kernels and shared hash constants, used by the
// dispatcher (simd_kernels.cc) and by the vector backends for loop tails
// and small inputs. Not part of the public API.

#ifndef UOCQA_BASE_SIMD_KERNELS_DETAIL_H_
#define UOCQA_BASE_SIMD_KERNELS_DETAIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/simd_kernels.h"

namespace uocqa {
namespace simd {
namespace detail {

// splitmix64-style mixing constants, shared by every backend so the hash
// is bit-identical regardless of lane width.
inline constexpr uint64_t kHashGolden = 0x9e3779b97f4a7c15ull;
inline constexpr uint64_t kHashMul1 = 0xbf58476d1ce4e5b9ull;
inline constexpr uint64_t kHashMul2 = 0x94d049bb133111ebull;

/// Per-word mix: position-salted splitmix64 finalizer. The hash is the
/// wrapping *sum* of these mixes — commutative and associative, so vector
/// backends may reduce lanes in any order/width and still match scalar.
inline uint64_t MixWord(uint64_t w, uint64_t index) {
  uint64_t z = w + (index + 1) * kHashGolden;
  z = (z ^ (z >> 30)) * kHashMul1;
  z = (z ^ (z >> 27)) * kHashMul2;
  return z ^ (z >> 31);
}

inline uint64_t FinalizeHash(uint64_t sum, size_t n) {
  uint64_t z = sum ^ ((static_cast<uint64_t>(n) + 1) * kHashGolden);
  z = (z ^ (z >> 30)) * kHashMul1;
  z = (z ^ (z >> 27)) * kHashMul2;
  return z ^ (z >> 31);
}

// Scalar reference kernels (the semantic contract for every backend).
void ClearWordsScalar(uint64_t* dst, size_t n);
void AndWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    size_t n);
void OrWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   size_t n);
void AccumulateMaskedScalar(uint64_t* dst, const uint64_t* src,
                            const uint64_t* mask, size_t n);
bool EqualWordsScalar(const uint64_t* a, const uint64_t* b, size_t n);
size_t PopcountWordsScalar(const uint64_t* a, size_t n);
uint64_t HashWordsScalar(const uint64_t* a, size_t n);
void AppendSetBitsScalar(const uint64_t* words, size_t n,
                         std::vector<uint32_t>* out);
uint32_t CombineGroupScalar(const GroupProbe& g,
                            const uint64_t* const* child_sets, uint64_t* out);

/// One transition of a group probe, used by the vector backends' tails.
inline bool ProbeOneTransition(const GroupProbe& g,
                               const uint64_t* const* child_sets,
                               uint32_t i) {
  for (uint32_t c = 0; c < g.rank; ++c) {
    uint32_t kid = g.child[c * g.count + i];
    if (((child_sets[c][kid >> 6] >> (kid & 63)) & 1u) == 0) return false;
  }
  return true;
}

// Backend factories; the vector ones exist only when their TU is compiled
// in (CMake option UOCQA_SIMD + compiler flag support).
const Kernels* GetScalarKernels();
#if defined(UOCQA_SIMD_AVX2)
const Kernels* GetAvx2Kernels();
#endif
#if defined(UOCQA_SIMD_AVX512)
const Kernels* GetAvx512Kernels();
#endif

}  // namespace detail
}  // namespace simd
}  // namespace uocqa

#endif  // UOCQA_BASE_SIMD_KERNELS_DETAIL_H_
