#include "base/io.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace uocqa {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  // Table built once, on first use (thread-safe function-local static).
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<std::unique_ptr<WritableFile>> WritableFile::Open(
    const std::string& path, uint64_t resume_at) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  // Discard anything past the valid prefix before the first append; with
  // resume_at at the current size this is a no-op.
  if (::ftruncate(fd, static_cast<off_t>(resume_at)) != 0) {
    Status st = ErrnoStatus("ftruncate", path);
    ::close(fd);
    return st;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    Status st = ErrnoStatus("lseek", path);
    ::close(fd);
    return st;
  }
  return std::unique_ptr<WritableFile>(
      new WritableFile(fd, path, resume_at));
}

WritableFile::~WritableFile() { Close(); }

Status WritableFile::Append(std::string_view data) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("append to closed file '" + path_ +
                                      "'");
  }
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path_);
    }
    p += n;
    left -= static_cast<size_t>(n);
    size_ += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Status WritableFile::Sync() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("sync of closed file '" + path_ + "'");
  }
#if defined(__APPLE__)
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
#else
  if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_);
#endif
  return Status::OK();
}

Status WritableFile::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return ErrnoStatus("close", path_);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("file not found: '" + path + "'");
    }
    return ErrnoStatus("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("read", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) {
      return Status::NotFound("file not found: '" + path + "'");
    }
    return ErrnoStatus("stat", path);
  }
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate", path);
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink", path);
  }
  return Status::OK();
}

}  // namespace uocqa
