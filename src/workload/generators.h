// Synthetic workload generators for experiments and property tests.
//
// The paper evaluates nothing empirically, so the benchmark workloads are
// built from the ingredients its constructions use: databases with
// controlled conflict-block histograms, self-join-free queries of chosen
// shape/width (chains, stars, cycles, cliques), random bipartite graphs for
// the ♯H-Coloring reduction and random Pos2CNF formulas for ♯MON2SAT.

#ifndef UOCQA_WORKLOAD_GENERATORS_H_
#define UOCQA_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "db/database.h"
#include "db/keys.h"
#include "query/cq.h"
#include "reductions/graph.h"
#include "reductions/mon2sat.h"

namespace uocqa {

struct GeneratedInstance {
  Database db;
  KeySet keys;
};

struct DbGenOptions {
  /// Number of conflict blocks per relation.
  size_t blocks_per_relation = 4;
  /// Block size range (inclusive). Size-1 blocks are consistent.
  size_t min_block_size = 1;
  size_t max_block_size = 3;
  /// Size of the shared value domain for all attributes; smaller values
  /// produce more joins (and more query-entailing repairs).
  size_t domain_size = 6;
};

/// A database for the relations of `query` (key = first attribute), with
/// per-relation blocks drawn per `options`.
GeneratedInstance GenerateDatabaseForQuery(Rng& rng,
                                           const ConjunctiveQuery& query,
                                           const DbGenOptions& options);

// --- skewed (Zipfian) workloads, for the serving/cache benchmarks ----------

/// `count` draws from the Zipf(skew) distribution over ranks 0..items-1:
/// P(rank r) ∝ 1/(r+1)^skew (skew 0 = uniform; larger = more concentrated
/// on the low ranks). Deterministic given the rng state — the repeated-
/// query traffic the cache benchmarks replay is reproducible from a seed.
std::vector<size_t> SampleZipfianIndices(Rng& rng, size_t items,
                                         size_t count, double skew);

struct SkewedDbGenOptions {
  /// Number of conflict blocks per relation.
  size_t blocks_per_relation = 64;
  /// Size of the hottest block. Block rank r targets
  /// ZipfianBlockSize(r, *) = max(1, round(max_block_size/(r+1)^block_skew))
  /// facts: a few hot blocks and a long consistent singleton tail, the
  /// histogram shape of real key-violation data.
  size_t max_block_size = 8;
  double block_skew = 1.0;
  /// Shared value domain for all attributes (as in DbGenOptions). Block
  /// keys are drawn from it too, so keep it well above
  /// blocks_per_relation or the requested blocks merge on shared keys and
  /// the histogram collapses.
  size_t domain_size = 256;
};

/// Target size of the block with rank `rank` (deterministic; no rng).
size_t ZipfianBlockSize(size_t rank, const SkewedDbGenOptions& options);

/// Like GenerateDatabaseForQuery, but with the Zipfian block-size histogram
/// above instead of a uniform size range.
GeneratedInstance GenerateSkewedDatabaseForQuery(
    Rng& rng, const ConjunctiveQuery& query,
    const SkewedDbGenOptions& options);

/// Ans() :- R1(x0,x1), R2(x1,x2), ..., Rn(x_{n-1},x_n). Acyclic, ghw 1.
ConjunctiveQuery ChainQuery(size_t length);

/// Ans() :- R1(c,x1), ..., Rn(c,xn). Acyclic, ghw 1.
ConjunctiveQuery StarQuery(size_t arms);

/// Ans() :- R1(x1,x2), ..., Rn(xn,x1). Cyclic (n >= 3), ghw 2.
ConjunctiveQuery CycleQuery(size_t length);

/// The (k+1)-clique of distinct binary relations used by the paper's
/// hardness constructions: ghw = ceil((k+1)/2).
ConjunctiveQuery CliqueQuery(size_t vertices);

/// A connected bipartite graph: a random spanning tree between the sides
/// plus extra random cross edges.
UGraph RandomConnectedBipartite(Rng& rng, size_t left, size_t right,
                                double extra_edge_prob);

/// A random positive 2CNF formula.
Pos2Cnf RandomPos2Cnf(Rng& rng, size_t variables, size_t clauses);

}  // namespace uocqa

#endif  // UOCQA_WORKLOAD_GENERATORS_H_
