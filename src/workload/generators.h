// Synthetic workload generators for experiments and property tests.
//
// The paper evaluates nothing empirically, so the benchmark workloads are
// built from the ingredients its constructions use: databases with
// controlled conflict-block histograms, self-join-free queries of chosen
// shape/width (chains, stars, cycles, cliques), random bipartite graphs for
// the ♯H-Coloring reduction and random Pos2CNF formulas for ♯MON2SAT.

#ifndef UOCQA_WORKLOAD_GENERATORS_H_
#define UOCQA_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "db/database.h"
#include "db/keys.h"
#include "query/cq.h"
#include "reductions/graph.h"
#include "reductions/mon2sat.h"

namespace uocqa {

struct GeneratedInstance {
  Database db;
  KeySet keys;
};

struct DbGenOptions {
  /// Number of conflict blocks per relation.
  size_t blocks_per_relation = 4;
  /// Block size range (inclusive). Size-1 blocks are consistent.
  size_t min_block_size = 1;
  size_t max_block_size = 3;
  /// Size of the shared value domain for all attributes; smaller values
  /// produce more joins (and more query-entailing repairs).
  size_t domain_size = 6;
};

/// A database for the relations of `query` (key = first attribute), with
/// per-relation blocks drawn per `options`.
GeneratedInstance GenerateDatabaseForQuery(Rng& rng,
                                           const ConjunctiveQuery& query,
                                           const DbGenOptions& options);

// --- skewed (Zipfian) workloads, for the serving/cache benchmarks ----------

/// `count` draws from the Zipf(skew) distribution over ranks 0..items-1:
/// P(rank r) ∝ 1/(r+1)^skew (skew 0 = uniform; larger = more concentrated
/// on the low ranks). Deterministic given the rng state — the repeated-
/// query traffic the cache benchmarks replay is reproducible from a seed.
std::vector<size_t> SampleZipfianIndices(Rng& rng, size_t items,
                                         size_t count, double skew);

struct SkewedDbGenOptions {
  /// Number of conflict blocks per relation.
  size_t blocks_per_relation = 64;
  /// Size of the hottest block. Block rank r targets
  /// ZipfianBlockSize(r, *) = max(1, round(max_block_size/(r+1)^block_skew))
  /// facts: a few hot blocks and a long consistent singleton tail, the
  /// histogram shape of real key-violation data.
  size_t max_block_size = 8;
  double block_skew = 1.0;
  /// Shared value domain for all attributes (as in DbGenOptions). Block
  /// keys are drawn from it too, so keep it well above
  /// blocks_per_relation or the requested blocks merge on shared keys and
  /// the histogram collapses.
  size_t domain_size = 256;
};

/// Target size of the block with rank `rank` (deterministic; no rng).
size_t ZipfianBlockSize(size_t rank, const SkewedDbGenOptions& options);

/// Like GenerateDatabaseForQuery, but with the Zipfian block-size histogram
/// above instead of a uniform size range.
GeneratedInstance GenerateSkewedDatabaseForQuery(
    Rng& rng, const ConjunctiveQuery& query,
    const SkewedDbGenOptions& options);

// --- adversarial join-column skew, for the planner benchmarks --------------

struct HotspotDbOptions {
  /// Facts in the first atom's relation (all carry the hot join value).
  size_t seed_facts = 64;
  /// Facts in the second atom's relation (the skewed one).
  size_t hot_facts = 4096;
  /// Expected fraction of the skewed relation's facts whose join column is
  /// the hot value; the rest get unique cold values, so the *average*
  /// fanout of the join column looks tiny while the hot value explodes.
  double hot_fraction = 0.9;
  /// Facts in each remaining (filter) relation.
  size_t filter_facts = 512;
  /// Distinct join-column values per filter relation; all of them cold, so
  /// joining a filter relation right after the seed empties the search.
  size_t filter_distinct = 16;
};

/// An instance whose uniform per-column statistics mislead the greedy atom
/// order while the most-common-value statistics do not, for queries whose
/// atoms all join on their first column (stars; binary atoms required).
/// Atom 0's relation is a small seed concentrated on one hot value, atom
/// 1's is large with `hot_fraction` of its join column on that value (a
/// hot fanout the uniform distinct-count model hides behind the cold
/// tail), every later atom's is a selective filter that excludes it. An
/// evaluator that joins the skewed relation before a filter visits
/// ~seed_facts x hot_fraction x hot_facts candidates; one that filters
/// first terminates after ~seed_facts. Keys on column 0, as elsewhere.
GeneratedInstance GenerateHotspotDatabaseForQuery(
    Rng& rng, const ConjunctiveQuery& query, const HotspotDbOptions& options);

/// Ans() :- R1(x0,x1), R2(x1,x2), ..., Rn(x_{n-1},x_n). Acyclic, ghw 1.
ConjunctiveQuery ChainQuery(size_t length);

/// Ans() :- R1(c,x1), ..., Rn(c,xn). Acyclic, ghw 1.
ConjunctiveQuery StarQuery(size_t arms);

/// Ans() :- R1(x1,x2), ..., Rn(xn,x1). Cyclic (n >= 3), ghw 2.
ConjunctiveQuery CycleQuery(size_t length);

/// The (k+1)-clique of distinct binary relations used by the paper's
/// hardness constructions: ghw = ceil((k+1)/2).
ConjunctiveQuery CliqueQuery(size_t vertices);

/// A connected bipartite graph: a random spanning tree between the sides
/// plus extra random cross edges.
UGraph RandomConnectedBipartite(Rng& rng, size_t left, size_t right,
                                double extra_edge_prob);

/// A random positive 2CNF formula.
Pos2Cnf RandomPos2Cnf(Rng& rng, size_t variables, size_t clauses);

}  // namespace uocqa

#endif  // UOCQA_WORKLOAD_GENERATORS_H_
