#include "workload/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <unordered_set>

namespace uocqa {

GeneratedInstance GenerateDatabaseForQuery(Rng& rng,
                                           const ConjunctiveQuery& query,
                                           const DbGenOptions& options) {
  GeneratedInstance out;
  out.db = Database(query.schema());
  auto dval = [&](size_t i) { return "d" + std::to_string(i); };

  std::unordered_set<RelationId> done;
  for (const QueryAtom& atom : query.atoms()) {
    if (!done.insert(atom.relation).second) continue;
    RelationId rel = atom.relation;
    uint32_t arity = query.schema().arity(rel);
    const std::string& name = query.schema().name(rel);
    out.keys.SetKeyOrDie(rel, {0});
    // Distinct key values per block; non-key attributes from the shared
    // domain so that joins fire with reasonable probability.
    for (size_t b = 0; b < options.blocks_per_relation; ++b) {
      size_t span = options.max_block_size - options.min_block_size + 1;
      size_t size = options.min_block_size + rng.UniformIndex(span);
      std::string key = dval(rng.UniformIndex(options.domain_size));
      std::set<std::vector<std::string>> seen;
      for (size_t f = 0; f < size; ++f) {
        std::vector<std::string> args;
        args.push_back(key);
        for (uint32_t a = 1; a < arity; ++a) {
          args.push_back(dval(rng.UniformIndex(options.domain_size)));
        }
        if (!seen.insert(args).second) continue;  // duplicate fact
        out.db.Add(name, args);
      }
    }
  }
  // Relation names for blocks are per-relation, but two blocks of the same
  // relation may have drawn the same key value, merging them — acceptable:
  // the histogram is a target, not a contract.
  return out;
}

std::vector<size_t> SampleZipfianIndices(Rng& rng, size_t items, size_t count,
                                         double skew) {
  assert(items >= 1);
  // Cumulative weights over ranks; one inverse-CDF lookup per draw.
  std::vector<double> cumulative(items);
  double total = 0;
  for (size_t r = 0; r < items; ++r) {
    total += std::pow(static_cast<double>(r + 1), -skew);
    cumulative[r] = total;
  }
  std::vector<size_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double u = rng.UniformDouble() * total;
    size_t rank = static_cast<size_t>(
        std::upper_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    // u can round up to exactly `total` (UniformDouble is < 1, but the
    // product rounds); clamp the end iterator back into range.
    out.push_back(std::min(rank, items - 1));
  }
  return out;
}

size_t ZipfianBlockSize(size_t rank, const SkewedDbGenOptions& options) {
  double size = static_cast<double>(options.max_block_size) /
                std::pow(static_cast<double>(rank + 1), options.block_skew);
  return std::max<size_t>(1, static_cast<size_t>(std::lround(size)));
}

GeneratedInstance GenerateSkewedDatabaseForQuery(
    Rng& rng, const ConjunctiveQuery& query,
    const SkewedDbGenOptions& options) {
  GeneratedInstance out;
  out.db = Database(query.schema());
  auto dval = [&](size_t i) { return "d" + std::to_string(i); };

  std::unordered_set<RelationId> done;
  for (const QueryAtom& atom : query.atoms()) {
    if (!done.insert(atom.relation).second) continue;
    RelationId rel = atom.relation;
    uint32_t arity = query.schema().arity(rel);
    const std::string& name = query.schema().name(rel);
    out.keys.SetKeyOrDie(rel, {0});
    for (size_t b = 0; b < options.blocks_per_relation; ++b) {
      size_t size = ZipfianBlockSize(b, options);
      std::string key = dval(rng.UniformIndex(options.domain_size));
      std::set<std::vector<std::string>> seen;
      for (size_t f = 0; f < size; ++f) {
        std::vector<std::string> args;
        args.push_back(key);
        for (uint32_t a = 1; a < arity; ++a) {
          args.push_back(dval(rng.UniformIndex(options.domain_size)));
        }
        if (!seen.insert(args).second) continue;  // duplicate fact
        out.db.Add(name, args);
      }
    }
  }
  return out;
}

GeneratedInstance GenerateHotspotDatabaseForQuery(
    Rng& rng, const ConjunctiveQuery& query,
    const HotspotDbOptions& options) {
  GeneratedInstance out;
  out.db = Database(query.schema());
  const std::string hot = "hot";
  std::unordered_set<RelationId> done;
  size_t atom_index = 0;
  size_t filter_index = 0;
  for (const QueryAtom& atom : query.atoms()) {
    size_t i = atom_index++;
    if (!done.insert(atom.relation).second) continue;
    RelationId rel = atom.relation;
    assert(query.schema().arity(rel) == 2);
    const std::string& name = query.schema().name(rel);
    out.keys.SetKeyOrDie(rel, {0});
    if (i == 0) {
      // The seed: small, every fact on the hot join value.
      for (size_t f = 0; f < options.seed_facts; ++f) {
        out.db.Add(name, {hot, "s" + std::to_string(f)});
      }
    } else if (i == 1) {
      // The skewed relation: a hot spike plus a long tail of unique cold
      // values that drags the column's average fanout toward 1.
      for (size_t f = 0; f < options.hot_facts; ++f) {
        std::string key = rng.Bernoulli(options.hot_fraction)
                              ? hot
                              : "z" + std::to_string(f);
        out.db.Add(name, {key, "v" + std::to_string(f)});
      }
    } else {
      // Filters: few distinct join values, none of them hot.
      std::string prefix = "c" + std::to_string(filter_index++) + "_";
      for (size_t f = 0; f < options.filter_facts; ++f) {
        out.db.Add(name, {prefix + std::to_string(f % options.filter_distinct),
                          "w" + std::to_string(f)});
      }
    }
  }
  return out;
}

namespace {

ConjunctiveQuery BinaryRelationQuery(
    const std::vector<std::pair<std::string, std::pair<std::string,
                                                       std::string>>>& atoms) {
  Schema s;
  for (const auto& [rel, vars] : atoms) {
    (void)vars;
    s.AddRelationOrDie(rel, 2);
  }
  ConjunctiveQuery q(s);
  for (const auto& [rel, vars] : atoms) {
    VarId a = q.AddVariable(vars.first);
    VarId b = q.AddVariable(vars.second);
    q.AddAtom(s.Find(rel), {Term::Var(a), Term::Var(b)});
  }
  return q;
}

}  // namespace

ConjunctiveQuery ChainQuery(size_t length) {
  assert(length >= 1);
  std::vector<std::pair<std::string, std::pair<std::string, std::string>>>
      atoms;
  for (size_t i = 1; i <= length; ++i) {
    atoms.push_back({"R" + std::to_string(i),
                     {"x" + std::to_string(i - 1), "x" + std::to_string(i)}});
  }
  return BinaryRelationQuery(atoms);
}

ConjunctiveQuery StarQuery(size_t arms) {
  assert(arms >= 1);
  std::vector<std::pair<std::string, std::pair<std::string, std::string>>>
      atoms;
  for (size_t i = 1; i <= arms; ++i) {
    atoms.push_back({"R" + std::to_string(i),
                     {"c", "x" + std::to_string(i)}});
  }
  return BinaryRelationQuery(atoms);
}

ConjunctiveQuery CycleQuery(size_t length) {
  assert(length >= 3);
  std::vector<std::pair<std::string, std::pair<std::string, std::string>>>
      atoms;
  for (size_t i = 1; i <= length; ++i) {
    atoms.push_back(
        {"R" + std::to_string(i),
         {"x" + std::to_string(i), "x" + std::to_string(i % length + 1)}});
  }
  return BinaryRelationQuery(atoms);
}

ConjunctiveQuery CliqueQuery(size_t vertices) {
  assert(vertices >= 2);
  std::vector<std::pair<std::string, std::pair<std::string, std::string>>>
      atoms;
  for (size_t i = 1; i <= vertices; ++i) {
    for (size_t j = i + 1; j <= vertices; ++j) {
      atoms.push_back({"C" + std::to_string(i) + "_" + std::to_string(j),
                       {"w" + std::to_string(i), "w" + std::to_string(j)}});
    }
  }
  return BinaryRelationQuery(atoms);
}

UGraph RandomConnectedBipartite(Rng& rng, size_t left, size_t right,
                                double extra_edge_prob) {
  assert(left >= 1 && right >= 1);
  UGraph g(left + right);
  // Spanning tree: add vertices in interleaved order, attaching each new
  // vertex to a random already-added vertex of the opposite side.
  std::vector<size_t> added_left{0};
  std::vector<size_t> added_right;
  for (size_t i = 1; i < left + right; ++i) {
    // Prefer alternating; fall back to whatever side still has vertices.
    bool add_right = added_right.size() < right &&
                     (added_right.size() * left <= added_left.size() * right ||
                      added_left.size() == left);
    if (add_right) {
      size_t r = left + added_right.size();
      g.AddEdge(added_left[rng.UniformIndex(added_left.size())], r);
      added_right.push_back(r);
    } else {
      size_t l = added_left.size();
      g.AddEdge(l, added_right[rng.UniformIndex(added_right.size())]);
      added_left.push_back(l);
    }
  }
  for (size_t l = 0; l < left; ++l) {
    for (size_t r = 0; r < right; ++r) {
      if (rng.Bernoulli(extra_edge_prob)) g.AddEdge(l, left + r);
    }
  }
  return g;
}

Pos2Cnf RandomPos2Cnf(Rng& rng, size_t variables, size_t clauses) {
  assert(variables >= 2);
  Pos2Cnf f;
  f.variable_count = variables;
  for (size_t i = 0; i < clauses; ++i) {
    size_t a = rng.UniformIndex(variables);
    size_t b = rng.UniformIndex(variables - 1);
    if (b >= a) ++b;
    f.clauses.emplace_back(a, b);
  }
  return f;
}

}  // namespace uocqa
