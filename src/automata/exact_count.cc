#include "automata/exact_count.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace uocqa {

size_t ExactTreeCounter::ArenaRowHash::operator()(BehaviorId id) const {
  return static_cast<size_t>(
      c->c_.kernels().hash_words(c->BehaviorWords(id), c->words_));
}

bool ExactTreeCounter::ArenaRowEq::operator()(BehaviorId a,
                                              BehaviorId b) const {
  return c->c_.kernels().equal_words(c->BehaviorWords(a), c->BehaviorWords(b),
                                     c->words_);
}

ExactTreeCounter::ExactTreeCounter(const Nfta& nfta)
    : nfta_(nfta),
      keep_(nfta.CompiledShared()),
      c_(*keep_),
      words_(c_.words_per_set()),
      behavior_index_(/*bucket_count=*/64, ArenaRowHash{this},
                      ArenaRowEq{this}) {
  levels_.resize(1);  // index 0 unused (trees have >= 1 node)
}

ExactTreeCounter::BehaviorId ExactTreeCounter::InternScratchRow() {
  BehaviorId cand = static_cast<BehaviorId>(behavior_count_);
  auto it = behavior_index_.find(cand);
  if (it != behavior_index_.end()) {
    behavior_arena_.resize(behavior_count_ * words_);  // pop the scratch row
    return *it;
  }
  behavior_index_.insert(cand);
  ++behavior_count_;
  return cand;
}

int32_t ExactTreeCounter::CombineMemo(
    int32_t group, const std::vector<BehaviorId>& children) {
  combine_key_.clear();
  combine_key_.reserve(children.size() + 1);
  combine_key_.push_back(static_cast<uint32_t>(group));
  combine_key_.insert(combine_key_.end(), children.begin(), children.end());
  auto it = combine_memo_.find(combine_key_);
  if (it != combine_memo_.end()) return it->second;

  // Compute the behaviour into a scratch row appended to the arena via the
  // batched kernel probe; the bitset representation dedups states for free
  // (no sort/unique pass). The resize happens BEFORE collecting child row
  // pointers: both point into the arena and a regrow would invalidate them.
  assert(c_.symbol_rank_groups()[static_cast<size_t>(group)].rank ==
         children.size());
  size_t old_size = behavior_arena_.size();
  behavior_arena_.resize(old_size + words_, 0);
  uint64_t* out = behavior_arena_.data() + old_size;
  child_set_ptrs_.clear();
  for (BehaviorId cid : children) child_set_ptrs_.push_back(BehaviorWords(cid));
  bool nonempty =
      c_.kernels().combine_group(c_.ProbeForGroup(group),
                                 child_set_ptrs_.data(), out) > 0;
  int32_t result;
  if (nonempty) {
    result = static_cast<int32_t>(InternScratchRow());
  } else {
    behavior_arena_.resize(old_size);  // pop: ∅ is represented as -1
    result = -1;
  }
  combine_memo_.emplace(combine_key_, result);
  return result;
}

namespace {

/// Composition enumeration for one (symbol, rank) group at one level:
/// child sizes (s1..s_rank), si >= 1, sum = s-1, crossed with behaviour
/// choices at each child size. Plain struct recursion (no std::function
/// allocation on this hot path).
struct Enumerator {
  ExactTreeCounter* self = nullptr;
  int32_t group = 0;
  size_t rank = 0;
  const std::vector<std::vector<std::pair<uint32_t, BigInt>>>* levels;
  std::vector<uint32_t>* chosen;
  std::unordered_map<uint32_t, BigInt>* out;
  int32_t (ExactTreeCounter::*combine)(int32_t,
                                       const std::vector<uint32_t>&);

  void Run(size_t pos, size_t remaining, const BigInt& count) {
    if (pos == rank) {
      if (remaining != 0) return;
      int32_t b = (self->*combine)(group, *chosen);
      if (b >= 0) (*out)[static_cast<uint32_t>(b)] += count;
      return;
    }
    size_t max_here = remaining - (rank - pos - 1);
    for (size_t si = 1; si <= max_here; ++si) {
      for (const auto& [bid, cnt] : (*levels)[si]) {
        (*chosen)[pos] = bid;
        Run(pos + 1, remaining - si, count * cnt);
      }
    }
  }
};

}  // namespace

void ExactTreeCounter::ComputeUpTo(size_t size) {
  const std::vector<CompiledNfta::SymbolRankGroup>& groups =
      c_.symbol_rank_groups();
  std::vector<BehaviorId> chosen;
  while (levels_.size() <= size) {
    size_t s = levels_.size();
    level_scratch_.clear();
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      size_t rank = groups[gi].rank;
      if (rank == 0) {
        if (s != 1) continue;
        int32_t b = CombineMemo(static_cast<int32_t>(gi), {});
        if (b >= 0) level_scratch_[static_cast<BehaviorId>(b)] += uint64_t{1};
        continue;
      }
      if (s < rank + 1) continue;
      chosen.assign(rank, 0);
      Enumerator e{this,    static_cast<int32_t>(gi),
                   rank,    &levels_,
                   &chosen, &level_scratch_,
                   &ExactTreeCounter::CombineMemo};
      e.Run(0, s - 1, BigInt(1));
    }
    // Flatten the finished level to an id-sorted vector: deterministic,
    // cache-friendly iteration for all higher levels.
    std::vector<std::pair<BehaviorId, BigInt>> level;
    level.reserve(level_scratch_.size());
    for (auto& [bid, cnt] : level_scratch_) {
      level.emplace_back(bid, std::move(cnt));
    }
    std::sort(level.begin(), level.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    assert(levels_.size() == s && "levels_ must be append-only");
    levels_.push_back(std::move(level));
  }
}

BigInt ExactTreeCounter::CountExactSizeFrom(NftaState q, size_t size) {
  if (size == 0 || q >= c_.state_count()) return BigInt();
  ComputeUpTo(size);
  BigInt out;
  for (const auto& [bid, cnt] : levels_[size]) {
    if (CompiledNfta::TestBit(BehaviorWords(bid), q)) out += cnt;
  }
  return out;
}

BigInt ExactTreeCounter::CountExactSize(size_t size) {
  if (nfta_.initial() == kNoNftaState) return BigInt();
  return CountExactSizeFrom(nfta_.initial(), size);
}

BigInt ExactTreeCounter::CountUpTo(size_t max_size) {
  NftaState q = nfta_.initial();
  if (q == kNoNftaState || q >= c_.state_count()) return BigInt();
  ComputeUpTo(max_size);  // one pass; levels are computed at most once ever
  BigInt out;
  for (size_t s = 1; s <= max_size && s < levels_.size(); ++s) {
    for (const auto& [bid, cnt] : levels_[s]) {
      if (CompiledNfta::TestBit(BehaviorWords(bid), q)) out += cnt;
    }
  }
  return out;
}

}  // namespace uocqa
