#include "automata/exact_count.h"

#include <algorithm>
#include <functional>
#include <cassert>

namespace uocqa {

ExactTreeCounter::ExactTreeCounter(const Nfta& nfta) : nfta_(nfta) {
  for (NftaState q = 0; q < nfta.state_count(); ++q) {
    for (const NftaTransition& t : nfta.TransitionsFrom(q)) {
      auto key = std::make_pair(t.symbol,
                                static_cast<uint32_t>(t.children.size()));
      auto [it, inserted] = by_symbol_rank_.try_emplace(key);
      if (inserted) symbol_ranks_.push_back({t.symbol, t.children.size()});
      it->second.push_back(&t);
    }
  }
  levels_.resize(1);  // index 0 unused (trees have >= 1 node)
}

ExactTreeCounter::BehaviorId ExactTreeCounter::InternBehavior(
    std::vector<NftaState> states) {
  auto it = behavior_index_.find(states);
  if (it != behavior_index_.end()) return it->second;
  BehaviorId id = static_cast<BehaviorId>(behaviors_.size());
  behaviors_.push_back(states);
  behavior_index_.emplace(std::move(states), id);
  return id;
}

std::vector<NftaState> ExactTreeCounter::Combine(
    NftaSymbol sym, const std::vector<BehaviorId>& children) const {
  std::vector<NftaState> out;
  auto it = by_symbol_rank_.find(
      {sym, static_cast<uint32_t>(children.size())});
  if (it == by_symbol_rank_.end()) return out;
  for (const NftaTransition* t : it->second) {
    bool ok = true;
    for (size_t i = 0; i < children.size(); ++i) {
      const std::vector<NftaState>& b = behaviors_[children[i]];
      if (!std::binary_search(b.begin(), b.end(), t->children[i])) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(t->from);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void ExactTreeCounter::ComputeUpTo(size_t size) {
  while (levels_.size() <= size) {
    size_t s = levels_.size();
    std::unordered_map<BehaviorId, BigInt> level;
    for (const auto& [sym, rank] : symbol_ranks_) {
      if (rank == 0) {
        if (s != 1) continue;
        std::vector<NftaState> behavior = Combine(sym, {});
        if (!behavior.empty()) {
          level[InternBehavior(std::move(behavior))] += uint64_t{1};
        }
        continue;
      }
      if (s < rank + 1) continue;
      // Enumerate compositions (s1..s_rank), si >= 1, sum = s-1, together
      // with behaviour choices at each child size.
      std::vector<BehaviorId> chosen(rank);
      std::vector<size_t> sizes(rank);
      std::function<void(size_t, size_t, BigInt)> rec =
          [&](size_t pos, size_t remaining, BigInt count) {
            if (pos == rank) {
              if (remaining != 0) return;
              std::vector<NftaState> behavior = Combine(sym, chosen);
              if (!behavior.empty()) {
                level[InternBehavior(std::move(behavior))] += count;
              }
              return;
            }
            size_t min_here = 1;
            size_t max_here = remaining - (rank - pos - 1);
            for (size_t si = min_here; si <= max_here; ++si) {
              if (si >= levels_.size()) break;  // cannot happen: si < s
              for (const auto& [bid, cnt] : levels_[si]) {
                chosen[pos] = bid;
                sizes[pos] = si;
                rec(pos + 1, remaining - si, count * cnt);
              }
            }
          };
      rec(0, s - 1, BigInt(1));
    }
    levels_.push_back(std::move(level));
  }
}

BigInt ExactTreeCounter::CountExactSizeFrom(NftaState q, size_t size) {
  if (size == 0) return BigInt();
  ComputeUpTo(size);
  BigInt out;
  for (const auto& [bid, cnt] : levels_[size]) {
    const std::vector<NftaState>& b = behaviors_[bid];
    if (std::binary_search(b.begin(), b.end(), q)) out += cnt;
  }
  return out;
}

BigInt ExactTreeCounter::CountExactSize(size_t size) {
  if (nfta_.initial() == kNoNftaState) return BigInt();
  return CountExactSizeFrom(nfta_.initial(), size);
}

BigInt ExactTreeCounter::CountUpTo(size_t max_size) {
  BigInt out;
  for (size_t s = 1; s <= max_size; ++s) out += CountExactSize(s);
  return out;
}

}  // namespace uocqa
