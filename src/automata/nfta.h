// Top-down nondeterministic finite tree automata over finite ordered
// node-labelled trees (paper Appendix D).
//
// A = (S, Lambda, s_init, delta) with delta ⊆ S × Lambda × S^{<=k}. A run on
// a tree assigns states to nodes such that every node carries a transition
// consistent with its label and its children's states; A accepts if some run
// labels the root with s_init. L_n(A) is the set of accepted trees with
// exactly n nodes; ♯NFTA asks for |⋃_{i<=n} L_i(A)|.

#ifndef UOCQA_AUTOMATA_NFTA_H_
#define UOCQA_AUTOMATA_NFTA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/hashing.h"

namespace uocqa {

class CompiledNfta;

using NftaState = uint32_t;
using NftaSymbol = uint32_t;

constexpr NftaState kNoNftaState = static_cast<NftaState>(-1);

struct NftaTransition {
  NftaState from = 0;
  NftaSymbol symbol = 0;
  std::vector<NftaState> children;  // rank = children.size()

  bool operator==(const NftaTransition& o) const {
    return from == o.from && symbol == o.symbol && children == o.children;
  }
  bool operator<(const NftaTransition& o) const {
    if (from != o.from) return from < o.from;
    if (symbol != o.symbol) return symbol < o.symbol;
    return children < o.children;
  }
};

/// A finite ordered node-labelled tree.
struct LabeledTree {
  NftaSymbol symbol = 0;
  std::vector<LabeledTree> children;

  LabeledTree() = default;
  explicit LabeledTree(NftaSymbol s) : symbol(s) {}
  LabeledTree(NftaSymbol s, std::vector<LabeledTree> c)
      : symbol(s), children(std::move(c)) {}

  size_t Size() const;
  bool operator==(const LabeledTree& o) const {
    return symbol == o.symbol && children == o.children;
  }
  bool operator!=(const LabeledTree& o) const { return !(*this == o); }
  bool operator<(const LabeledTree& o) const;
};

struct LabeledTreeHash {
  size_t operator()(const LabeledTree& t) const;
};

class Nfta {
 public:
  /// Adds a fresh state.
  NftaState AddState();

  /// Adds `n` fresh states, returning the first.
  NftaState AddStates(size_t n);

  size_t state_count() const { return state_count_; }

  /// Interns a symbol by name.
  NftaSymbol InternSymbol(const std::string& name);
  const std::string& SymbolName(NftaSymbol s) const { return symbol_names_[s]; }
  size_t symbol_count() const { return symbol_names_.size(); }

  /// Adds a transition (deduplicated).
  void AddTransition(NftaState from, NftaSymbol symbol,
                     std::vector<NftaState> children);

  void SetInitial(NftaState s) { initial_ = s; }
  NftaState initial() const { return initial_; }

  const std::vector<NftaTransition>& TransitionsFrom(NftaState s) const;
  size_t transition_count() const { return transition_count_; }
  size_t MaxRank() const { return max_rank_; }

  /// All states q that accept `tree` (the tree's behaviour), sorted.
  std::vector<NftaState> AcceptingStates(const LabeledTree& tree) const;

  /// Does the automaton accept the tree (from the initial state)?
  bool Accepts(const LabeledTree& tree) const;

  /// Does state q accept the tree?
  bool AcceptsFrom(NftaState q, const LabeledTree& tree) const;

  /// Number of accepting runs on `tree` from the initial state (uint64;
  /// asserts no overflow for the sizes used in tests).
  uint64_t CountAcceptingRuns(const LabeledTree& tree) const;

  /// Renders a tree with this automaton's symbol names:
  /// "sym(child1,child2)".
  std::string TreeToString(const LabeledTree& tree) const;

  std::string DebugStats() const;

  /// Transitions with a given root symbol (lazily indexed; invalidated by
  /// AddTransition).
  const std::vector<const NftaTransition*>& TransitionsWithSymbol(
      NftaSymbol s) const;

  /// Forces the lazy symbol index to be built now. Call before handing the
  /// automaton to concurrent readers (the parallel FPRAS trials): once the
  /// index is fresh, TransitionsWithSymbol/AcceptingStates are read-only and
  /// safe to call from many threads, provided no AddTransition intervenes.
  void EnsureSymbolIndex() const;

  /// The flattened immutable view of this automaton (compiled_nfta.h): CSR
  /// transitions, by-symbol/by-rank indexes, bitset behaviour runs. Built
  /// lazily on first use and rebuilt if states/symbols/transitions were
  /// added since. Same concurrency contract as EnsureSymbolIndex: call once
  /// (e.g. via EnsureCompiled) before handing the automaton to concurrent
  /// readers; afterwards the returned reference is safe to share across
  /// threads as long as the automaton is not mutated.
  const CompiledNfta& Compiled() const;

  /// Warms both lazy views (symbol index + compiled form).
  void EnsureCompiled() const;

  /// Shared ownership of the compiled view: stays valid even if this Nfta
  /// is mutated (which rebuilds its own view) or destroyed.
  std::shared_ptr<const CompiledNfta> CompiledShared() const;

 private:
  size_t state_count_ = 0;
  NftaState initial_ = kNoNftaState;
  std::vector<std::string> symbol_names_;
  std::unordered_map<std::string, NftaSymbol> symbol_index_;
  std::vector<std::vector<NftaTransition>> transitions_;  // by from-state
  size_t transition_count_ = 0;
  size_t max_rank_ = 0;
  std::vector<NftaTransition> empty_;

  // Lazy symbol -> transitions index (rebuilt when stale).
  mutable std::vector<std::vector<const NftaTransition*>> by_symbol_;
  mutable size_t indexed_transition_count_ = 0;
  std::vector<const NftaTransition*> empty_ptrs_;

  // Lazy compiled view (shared_ptr so Nfta stays copyable; copies share the
  // immutable snapshot until one of them mutates and rebuilds its own).
  mutable std::shared_ptr<const CompiledNfta> compiled_;
};

}  // namespace uocqa

#endif  // UOCQA_AUTOMATA_NFTA_H_
