#include "automata/nfta.h"

#include <algorithm>
#include <cassert>

#include "automata/compiled_nfta.h"

namespace uocqa {

size_t LabeledTree::Size() const {
  size_t n = 1;
  for (const LabeledTree& c : children) n += c.Size();
  return n;
}

bool LabeledTree::operator<(const LabeledTree& o) const {
  if (symbol != o.symbol) return symbol < o.symbol;
  return children < o.children;
}

size_t LabeledTreeHash::operator()(const LabeledTree& t) const {
  size_t seed = std::hash<uint32_t>{}(t.symbol);
  for (const LabeledTree& c : t.children) {
    HashCombine(&seed, (*this)(c));
  }
  return seed;
}

NftaState Nfta::AddState() {
  transitions_.emplace_back();
  return static_cast<NftaState>(state_count_++);
}

NftaState Nfta::AddStates(size_t n) {
  NftaState first = static_cast<NftaState>(state_count_);
  for (size_t i = 0; i < n; ++i) AddState();
  return first;
}

NftaSymbol Nfta::InternSymbol(const std::string& name) {
  auto it = symbol_index_.find(name);
  if (it != symbol_index_.end()) return it->second;
  NftaSymbol s = static_cast<NftaSymbol>(symbol_names_.size());
  symbol_names_.push_back(name);
  symbol_index_.emplace(name, s);
  return s;
}

void Nfta::AddTransition(NftaState from, NftaSymbol symbol,
                         std::vector<NftaState> children) {
  assert(from < state_count_);
  for (NftaState c : children) {
    assert(c < state_count_);
    (void)c;
  }
  NftaTransition t{from, symbol, std::move(children)};
  auto& bucket = transitions_[from];
  if (std::find(bucket.begin(), bucket.end(), t) != bucket.end()) return;
  max_rank_ = std::max(max_rank_, t.children.size());
  bucket.push_back(std::move(t));
  ++transition_count_;
}

const std::vector<NftaTransition>& Nfta::TransitionsFrom(NftaState s) const {
  if (s >= transitions_.size()) return empty_;
  return transitions_[s];
}

const std::vector<const NftaTransition*>& Nfta::TransitionsWithSymbol(
    NftaSymbol s) const {
  EnsureSymbolIndex();
  if (s >= by_symbol_.size()) return empty_ptrs_;
  return by_symbol_[s];
}

void Nfta::EnsureSymbolIndex() const {
  if (indexed_transition_count_ == transition_count_ &&
      by_symbol_.size() == symbol_names_.size()) {
    return;
  }
  by_symbol_.assign(symbol_names_.size(), {});
  for (const auto& bucket : transitions_) {
    for (const NftaTransition& t : bucket) {
      by_symbol_[t.symbol].push_back(&t);
    }
  }
  indexed_transition_count_ = transition_count_;
}

const CompiledNfta& Nfta::Compiled() const {
  if (!compiled_ || compiled_->state_count() != state_count_ ||
      compiled_->transition_count() != transition_count_ ||
      compiled_->symbol_count() != symbol_names_.size() ||
      compiled_->initial() != initial_) {
    compiled_ = std::make_shared<const CompiledNfta>(*this);
  }
  return *compiled_;
}

void Nfta::EnsureCompiled() const {
  EnsureSymbolIndex();
  Compiled();
}

std::shared_ptr<const CompiledNfta> Nfta::CompiledShared() const {
  Compiled();
  return compiled_;
}

namespace {

// Per-thread scratch for the bitset runs below: reused across calls (and
// across automata — buffers regrow as needed), so the membership oracle
// allocates nothing per call beyond the returned vector itself.
CompiledNfta::Workspace& LocalWorkspace() {
  static thread_local CompiledNfta::Workspace ws;
  return ws;
}

}  // namespace

std::vector<NftaState> Nfta::AcceptingStates(const LabeledTree& tree) const {
  // Bottom-up bitset run over the compiled view (the membership oracle on
  // the FPRAS hot path).
  return Compiled().AcceptingStates(tree, &LocalWorkspace());
}

bool Nfta::Accepts(const LabeledTree& tree) const {
  return AcceptsFrom(initial_, tree);
}

bool Nfta::AcceptsFrom(NftaState q, const LabeledTree& tree) const {
  if (q == kNoNftaState) return false;
  return Compiled().AcceptsFrom(q, tree, &LocalWorkspace());
}

namespace {

uint64_t CountRunsFrom(const Nfta& nfta, NftaState q,
                       const LabeledTree& tree) {
  uint64_t total = 0;
  for (const NftaTransition& t : nfta.TransitionsFrom(q)) {
    if (t.symbol != tree.symbol || t.children.size() != tree.children.size()) {
      continue;
    }
    uint64_t prod = 1;
    for (size_t i = 0; i < t.children.size() && prod > 0; ++i) {
      prod *= CountRunsFrom(nfta, t.children[i], tree.children[i]);
    }
    total += prod;
  }
  return total;
}

}  // namespace

uint64_t Nfta::CountAcceptingRuns(const LabeledTree& tree) const {
  if (initial_ == kNoNftaState) return 0;
  return CountRunsFrom(*this, initial_, tree);
}

std::string Nfta::TreeToString(const LabeledTree& tree) const {
  std::string out = tree.symbol < symbol_names_.size()
                        ? symbol_names_[tree.symbol]
                        : "?" + std::to_string(tree.symbol);
  if (!tree.children.empty()) {
    out += '(';
    for (size_t i = 0; i < tree.children.size(); ++i) {
      if (i > 0) out += ',';
      out += TreeToString(tree.children[i]);
    }
    out += ')';
  }
  return out;
}

std::string Nfta::DebugStats() const {
  return "states=" + std::to_string(state_count_) +
         " symbols=" + std::to_string(symbol_names_.size()) +
         " transitions=" + std::to_string(transition_count_) +
         " max_rank=" + std::to_string(max_rank_);
}

}  // namespace uocqa
