// Word NFAs and ♯NFA, the SpanL connection (paper §1).
//
// SpanL = span functions of NL-transducers; [5] showed ♯NFA admits an
// FPRAS, and the paper generalizes along SpanL ⊆ SpanTL: a word is a unary
// tree, so an NFA embeds into an NFTA with |L(A)| preserved, and both the
// exact behaviour-set counter and the tree FPRAS apply verbatim. This
// module provides the embedding plus direct NFA utilities (membership,
// exact distinct-word counting via the subset construction) used to
// cross-validate the embedding.

#ifndef UOCQA_AUTOMATA_NFA_H_
#define UOCQA_AUTOMATA_NFA_H_

#include <cstdint>
#include <unordered_map>
#include <string>
#include <vector>

#include "base/bigint.h"
#include "automata/nfta.h"

namespace uocqa {

using NfaState = uint32_t;

/// A nondeterministic finite automaton over an interned symbol alphabet.
class Nfa {
 public:
  NfaState AddState();
  size_t state_count() const { return states_; }

  NftaSymbol InternSymbol(const std::string& name);
  const std::string& SymbolName(NftaSymbol s) const { return symbols_[s]; }
  size_t symbol_count() const { return symbols_.size(); }

  void AddTransition(NfaState from, NftaSymbol symbol, NfaState to);
  void SetInitial(NfaState s) { initial_ = s; }
  void AddAccepting(NfaState s);

  NfaState initial() const { return initial_; }
  const std::vector<bool>& accepting() const { return accepting_; }

  /// Does the automaton accept the word?
  bool Accepts(const std::vector<NftaSymbol>& word) const;

  /// |{w ∈ L(A) : |w| = n}| exactly, via the on-the-fly subset
  /// construction (distinct words, immune to ambiguity). Worst-case
  /// exponential in states; exact ground truth.
  BigInt CountWordsOfLength(size_t n) const;

  /// Σ_{i<=n} |L_i(A)| (the ♯NFA quantity; empty word excluded — unary
  /// trees have at least one node).
  BigInt CountWordsUpTo(size_t n) const;

  /// Embeds into an NFTA over unary trees: a word a1 a2 ... an becomes the
  /// tree a1(a2(...(an))); |L_i| is preserved for every i >= 1.
  Nfta ToUnaryNfta() const;

 private:
  size_t states_ = 0;
  NfaState initial_ = 0;
  std::vector<bool> accepting_;
  std::vector<std::string> symbols_;
  std::unordered_map<std::string, NftaSymbol> symbol_index_;
  // transitions_[from][symbol] = successor states (sorted unique)
  std::vector<std::vector<std::vector<NfaState>>> transitions_;
  size_t transition_count_ = 0;
};

}  // namespace uocqa

#endif  // UOCQA_AUTOMATA_NFA_H_
