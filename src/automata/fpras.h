// Randomized approximation for ♯NFTA (paper Theorem D.1, following the
// approach of Arenas, Croquevielle, Jayaram, Riveros [6]).
//
// For a state q and size s,
//   L(q,s) = ⋃_{τ=(q,a,(q1..qr))} ⋃_{s1+..+sr=s-1} a(L(q1,s1)×…×L(q_r,s_r)).
// Components are Cartesian products, so their sizes multiply exactly and a
// uniform sample is a tuple of child samples. Components with distinct
// (symbol, child-size vector) keys are *disjoint*, so the union splits into
// an exact sum over key groups; overlap only arises between transitions
// sharing a key, where the Karp–Luby–Madras union estimator applies with an
// exact polynomial membership oracle (run the automaton on the tree).
// Approximately-uniform samples come from minimal-index rejection.
//
// Engineering notes versus [6] (documented in DESIGN.md): [6] track
// per-level sketches with certified polynomial constants; we use the same
// decomposition but direct recursive estimation with per-union sample
// budgets chosen empirically, validated against the exact behaviour-set
// counter in tests (E5). Estimates are doubles (counts up to ~1e308).
//
// Hot-path layout (see docs/ARCHITECTURE.md): the estimator runs over the
// automaton's CompiledNfta view. Proportional selection uses per-group /
// per-cell prefix-sum arrays probed by binary search — consuming exactly
// one uniform per pick, with the partial sums accumulated in the same
// left-to-right order as the old linear scan, so estimates and samples are
// bit-identical to the pre-flattening implementation at the same seed.
// Trial trees are built in a per-chunk node pool (no per-node heap
// LabeledTree), each node caching its subtree size; the membership oracle
// is the compiled bitset run.

#ifndef UOCQA_AUTOMATA_FPRAS_H_
#define UOCQA_AUTOMATA_FPRAS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/hashing.h"
#include "base/rng.h"
#include "base/version.h"
#include "base/thread_pool.h"
#include "automata/compiled_nfta.h"
#include "automata/nfta.h"

namespace uocqa {

/// Tuning knobs for the ♯NFTA FPRAS. Estimates are a deterministic function
/// of (automaton, config) — including `threads`: any thread count yields the
/// same bits, because trials are split into fixed-size chunks with one
/// Rng::Stream per chunk.
struct FprasConfig {
  /// Target relative error.
  double epsilon = 0.25;
  /// Target failure probability.
  double delta = 0.1;
  /// Per-union sample budget bounds.
  size_t min_samples = 128;
  size_t max_samples = 65536;
  /// Retry bound for minimal-index rejection sampling before giving up and
  /// accepting a (slightly biased) sample.
  size_t max_rejection_attempts = 64;
  /// RNG seed (estimates are deterministic given the seed).
  uint64_t seed = 1;
  /// Versioned RNG-consumption schema (see docs/ARCHITECTURE.md):
  ///  * 1 — legacy: trials run sequentially per chunk, one Rng::Stream per
  ///    chunk. Byte-identical to the pre-batching implementation at the
  ///    same seed (the historical pinned estimates).
  ///  * 2 — batched (default): one Rng::Stream per *trial* (keyed by the
  ///    global trial index), enabling the lockstep batch evaluation of
  ///    trial chunks. Estimates differ from schema 1 at the same seed but
  ///    are equally accurate and equally deterministic.
  int seed_schema = kDefaultSeedSchema;
  /// Split each union into provably-disjoint groups keyed by
  /// (symbol, child sizes) and only sample within groups (on by default;
  /// the ablation benchmark bench_e11 quantifies the win). When false, the
  /// plain Karp–Luby–Madras estimator runs over all components at once.
  bool group_disjoint_components = true;
  /// Execution lanes for the KLM union-estimation trials: 1 = serial,
  /// 0 = hardware concurrency. Changes wall-clock time only, never the
  /// estimate (see the class comment on determinism).
  size_t threads = 1;
};

class NftaFpras {
 public:
  /// Wraps `nfta` (not owned; must outlive this object and stay unchanged;
  /// the estimator snapshots its compiled view). When `config.threads != 1`,
  /// KLM trials run on `pool` if given, else on an internally owned pool of
  /// `config.threads` lanes.
  NftaFpras(const Nfta& nfta, FprasConfig config = {},
            ThreadPool* pool = nullptr);

  /// Estimate of |L_s(A)| for the initial state.
  double EstimateExactSize(size_t size);

  /// Estimate of |⋃_{s <= max_size} L_s(A)| (the ♯NFTA output).
  double EstimateUpTo(size_t max_size);

  /// Estimate of |L(q, s)|.
  double EstimateFrom(NftaState q, size_t size);

  /// Approximately-uniform sample from L(q, s); nullopt if (estimated)
  /// empty. Serial (unlike the estimation paths, which may use the pool).
  std::optional<LabeledTree> Sample(Rng& rng, NftaState q, size_t size);

  /// Total number of union estimations performed (diagnostics).
  size_t union_estimations() const { return union_estimations_; }

 private:
  /// Pool-backed flat trees for rejection trials: one contiguous node
  /// vector per chunk, cleared (capacity kept) between trials, each node
  /// caching its subtree size so the min-index oracle never recomputes it.
  struct TreePool {
    static constexpr uint32_t kNil = 0xffffffffu;
    struct Node {
      NftaSymbol symbol = 0;
      uint32_t size = 0;        // subtree node count
      uint32_t first_child = kNil;
      uint32_t last_child = kNil;
      uint32_t next_sibling = kNil;
    };
    std::vector<Node> nodes;

    uint32_t New(NftaSymbol s, uint32_t size) {
      nodes.push_back(Node{s, size, kNil, kNil, kNil});
      return static_cast<uint32_t>(nodes.size() - 1);
    }
    void AddChild(uint32_t parent, uint32_t child) {
      if (nodes[parent].first_child == kNil) {
        nodes[parent].first_child = child;
      } else {
        nodes[nodes[parent].last_child].next_sibling = child;
      }
      nodes[parent].last_child = child;
    }
    void Clear() { nodes.clear(); }
    /// Drops nodes [n, size()) — used to reclaim rejected sampling attempts
    /// so surviving subtrees stay contiguous (node n's subtree is exactly
    /// [n, n + size_n) in preorder).
    void Truncate(size_t n) { nodes.resize(n); }
  };

  /// Per-thread sampling context (pool + bitset scratch), owned by each
  /// trial chunk / by the serial public Sample.
  struct SampleCtx {
    TreePool pool;
    CompiledNfta::Workspace ws;
  };

  /// Per-chunk context for the schema-2 lockstep trial batches: one shared
  /// pool holds every trial's winning tree (rejected attempts are reclaimed
  /// by truncation), with a behaviour row maintained per pooled node —
  /// computed once in post-order as each subtree completes, so min-index
  /// checks at every nesting level read cached rows instead of
  /// re-evaluating subtrees.
  struct BatchCtx {
    TreePool pool;                // shared across the chunk's trials
    std::vector<Rng> rngs;        // per-trial streams (phase-resumable)
    std::vector<uint32_t> picks;  // per-trial picked component index
    std::vector<uint32_t> roots;  // per-trial winner root, kNil if none
    std::vector<uint64_t> rows;   // per pooled node: wps behaviour words
    std::vector<const uint64_t*> child_ptrs;  // combine scratch
  };

  struct Component {
    CompiledNfta::TransitionId transition = 0;
    std::vector<size_t> child_sizes;
    double size = 0;  // product of child estimates
  };
  /// Components sharing (symbol, child_sizes); only these can overlap.
  struct Group {
    std::vector<Component> components;
    /// prefix[i] = components[0].size + ... + components[i-1].size,
    /// accumulated left to right (same fp order as the legacy linear scan,
    /// so prefix.back() is bit-identical to its `sum`).
    std::vector<double> prefix;
    double estimate = 0;
  };
  struct Cell {
    bool computed = false;
    double estimate = 0;
    std::vector<Group> groups;
    /// Prefix sums of group estimates (group_prefix.back() == estimate).
    std::vector<double> group_prefix;
  };

  /// Build-or-return, single hash probe. Build path only (mutates cells_).
  Cell& GetCell(NftaState q, size_t size);
  /// Read-only lookup for trial threads; the cell must already be built.
  const Cell* FindCell(NftaState q, size_t size) const;

  /// KLM union estimate within one group (components share symbol+sizes).
  /// Trials are chunked (kTrialChunk) and may run on the pool; every cell
  /// the trials sample from is already computed, so the parallel section
  /// only ever reads `cells_`. Dispatches on config_.seed_schema to the
  /// legacy sequential path (1) or the lockstep batched path (2).
  double EstimateGroup(Group* group);

  /// Schema-1 trials: chunk c runs its trials sequentially on
  /// Rng::Stream(union_seed, c). Kept verbatim from the pre-batching
  /// implementation — byte-identical estimates at the same seed.
  void RunTrialsLegacy(Group* group, double sum, size_t samples,
                       uint64_t union_seed,
                       std::vector<std::pair<size_t, size_t>>* counts);

  /// Schema-2 trials: each chunk runs its kTrialChunk trials in lockstep
  /// phases (batched picks -> batched row-caching tree builds -> batched
  /// min-index checks over the cached rows), with one Rng::Stream per
  /// trial keyed by the global trial index.
  void RunTrialsBatched(Group* group, double sum, size_t samples,
                        uint64_t union_seed,
                        std::vector<std::pair<size_t, size_t>>* counts);

  /// Min-index of a batch trial: like MinIndexFlat, but child behaviours
  /// are read from the batch's cached rows instead of re-evaluated.
  int MinIndexBatched(const Group& group, uint32_t root,
                      const BatchCtx& ctx) const;

  /// Row-caching mirrors of SampleFlat / SampleComponentFlat for the
  /// batched path: identical RNG consumption and identical accept/reject
  /// decisions (rows are bit-identical to the recursive evaluation), but
  /// every pooled node's behaviour row is computed exactly once — in
  /// post-order, as its subtree completes — so the nested min-index
  /// rejection reads cached rows instead of re-running the bitset
  /// evaluation at every nesting level.
  uint32_t SampleFlatBatched(Rng& rng, NftaState q, size_t size,
                             BatchCtx* ctx);
  uint32_t SampleComponentFlatBatched(Rng& rng, const Component& c,
                                      BatchCtx* ctx);

  /// Computes `node`'s behaviour row into ctx->rows (children's rows must
  /// already be cached; leaves copy the per-symbol leaf row).
  void ComputeRow(BatchCtx* ctx, uint32_t node) const;

  /// Lazily builds the per-symbol rank-0 behaviour rows the batched build
  /// copies for leaf nodes. Must be called before the parallel section.
  void EnsureLeafRows();

  /// Uniform-ish flat sample from L(q, size) into ctx->pool; TreePool::kNil
  /// if empty / rejected to exhaustion. Mirrors the legacy recursive
  /// Sample() uniform-for-uniform.
  uint32_t SampleFlat(Rng& rng, NftaState q, size_t size, SampleCtx* ctx);

  /// Uniform-ish flat sample from one component (tuple of child samples).
  uint32_t SampleComponentFlat(Rng& rng, const Component& c, SampleCtx* ctx);

  /// Index of the first component of `group` containing the pooled tree
  /// `root`; -1 if none. Child behaviours via the compiled bitset run,
  /// child sizes from the cached per-node sizes.
  int MinIndexFlat(const Group& group, uint32_t root, SampleCtx* ctx) const;

  /// Bitset run over a pooled subtree: behaviour of `node` into slot
  /// `base` of `ws` (scratch above, CompiledNfta::EvalInto discipline).
  void EvalNodeBehavior(const TreePool& pool, uint32_t node,
                        CompiledNfta::Workspace* ws, size_t base) const;

  /// The pool trials run on (lazily created when owned), or nullptr for
  /// serial execution.
  ThreadPool* pool();

  /// Trials per RNG stream chunk: fixed so the (chunk -> stream) map — and
  /// hence the estimate — is independent of the thread count.
  static constexpr size_t kTrialChunk = 64;

  const Nfta& nfta_;
  std::shared_ptr<const CompiledNfta> compiled_keep_;
  const CompiledNfta& c_;  // *compiled_keep_
  FprasConfig config_;
  Rng rng_;
  ThreadPool* external_pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
  std::unordered_map<std::pair<NftaState, size_t>, Cell,
                     PairHash<NftaState, size_t>>
      cells_;
  size_t union_estimations_ = 0;
  SampleCtx sample_ctx_;  // for the serial public Sample()

  // Per-symbol rank-0 behaviour rows (words_per_set() words each), built
  // once on first batched estimation; leaves are the common case in trial
  // trees and their combine is a plain row copy.
  bool leaf_rows_ready_ = false;
  std::vector<uint64_t> leaf_rows_;
};

}  // namespace uocqa

#endif  // UOCQA_AUTOMATA_FPRAS_H_
