#include "automata/nfa.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace uocqa {

NfaState Nfa::AddState() {
  accepting_.push_back(false);
  transitions_.emplace_back();
  return static_cast<NfaState>(states_++);
}

NftaSymbol Nfa::InternSymbol(const std::string& name) {
  auto it = symbol_index_.find(name);
  if (it != symbol_index_.end()) return it->second;
  NftaSymbol s = static_cast<NftaSymbol>(symbols_.size());
  symbols_.push_back(name);
  symbol_index_.emplace(name, s);
  for (auto& per_state : transitions_) {
    per_state.resize(symbols_.size());
  }
  return s;
}

void Nfa::AddTransition(NfaState from, NftaSymbol symbol, NfaState to) {
  assert(from < states_ && to < states_);
  auto& per_state = transitions_[from];
  if (per_state.size() <= symbol) per_state.resize(symbols_.size());
  auto& bucket = per_state[symbol];
  if (std::find(bucket.begin(), bucket.end(), to) == bucket.end()) {
    bucket.push_back(to);
    std::sort(bucket.begin(), bucket.end());
    ++transition_count_;
  }
}

void Nfa::AddAccepting(NfaState s) {
  assert(s < states_);
  accepting_[s] = true;
}

bool Nfa::Accepts(const std::vector<NftaSymbol>& word) const {
  std::vector<NfaState> current{initial_};
  for (NftaSymbol a : word) {
    std::vector<NfaState> next;
    for (NfaState q : current) {
      if (a < transitions_[q].size()) {
        for (NfaState t : transitions_[q][a]) next.push_back(t);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    if (next.empty()) return false;
    current = std::move(next);
  }
  for (NfaState q : current) {
    if (accepting_[q]) return true;
  }
  return false;
}

BigInt Nfa::CountWordsOfLength(size_t n) const {
  if (states_ == 0) return BigInt();
  // The subset construction is deterministic, so distinct words of length n
  // correspond one-to-one to length-n paths from {initial}.
  std::map<std::vector<NfaState>, BigInt> level;
  level[{initial_}] = BigInt(1);
  for (size_t step = 0; step < n; ++step) {
    std::map<std::vector<NfaState>, BigInt> next_level;
    for (const auto& [subset, count] : level) {
      for (NftaSymbol a = 0; a < symbols_.size(); ++a) {
        std::vector<NfaState> next;
        for (NfaState q : subset) {
          if (a < transitions_[q].size()) {
            for (NfaState t : transitions_[q][a]) next.push_back(t);
          }
        }
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
        if (next.empty()) continue;
        next_level[next] += count;
      }
    }
    level = std::move(next_level);
  }
  BigInt total;
  for (const auto& [subset, count] : level) {
    for (NfaState q : subset) {
      if (accepting_[q]) {
        total += count;
        break;
      }
    }
  }
  return total;
}

BigInt Nfa::CountWordsUpTo(size_t n) const {
  BigInt total;
  for (size_t i = 1; i <= n; ++i) total += CountWordsOfLength(i);
  return total;
}

Nfta Nfa::ToUnaryNfta() const {
  Nfta out;
  for (size_t i = 0; i < states_; ++i) out.AddState();
  for (size_t s = 0; s < symbols_.size(); ++s) {
    out.InternSymbol(symbols_[s]);
  }
  for (NfaState q = 0; q < states_; ++q) {
    for (NftaSymbol a = 0; a < transitions_[q].size(); ++a) {
      for (NfaState t : transitions_[q][a]) {
        out.AddTransition(q, a, {t});
        if (accepting_[t]) out.AddTransition(q, a, {});
      }
    }
  }
  out.SetInitial(initial_);
  return out;
}

}  // namespace uocqa
