// An immutable, cache-friendly compilation of an Nfta.
//
// The mutable Nfta stores one heap vector of NftaTransition per from-state,
// each transition owning its own heap vector of children — three pointer
// hops per transition probe, and behaviour sets as sorted state vectors
// probed by binary search. Every answer the engine produces (exact counts,
// FPRAS estimates, Monte-Carlo trials) bottoms out in millions of such
// probes, so this module flattens the automaton once into:
//
//  * a CSR layout: all transition children inlined in one contiguous arena
//    (`children_`), transition metadata in parallel flat arrays, ids dense
//    and pre-sorted by from-state so the by-from view is an index range;
//  * secondary CSR indexes over the same ids grouped by root symbol and by
//    (symbol, rank) — the probe orders of the membership oracle and of the
//    exact-count DP respectively;
//  * behaviour sets as fixed-width bitsets (`words_per_set()` uint64 words
//    per set): O(1) membership, word-wise hash/equality, and a bottom-up
//    "bitset run" (BehaviorOf / Accepts) that reuses caller-owned scratch
//    instead of allocating per tree node.
//
// A CompiledNfta is self-contained (it copies everything it needs), so it
// stays valid after the source Nfta is destroyed, and it is safe to share
// read-only across threads. Obtain one lazily via Nfta::Compiled().

#ifndef UOCQA_AUTOMATA_COMPILED_NFTA_H_
#define UOCQA_AUTOMATA_COMPILED_NFTA_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/hashing.h"
#include "base/simd_kernels.h"
#include "automata/nfta.h"

namespace uocqa {

class CompiledNfta {
 public:
  using TransitionId = uint32_t;

  /// A contiguous range of dense transition ids.
  struct IdRange {
    TransitionId begin = 0;
    TransitionId end = 0;
    size_t size() const { return end - begin; }
    bool empty() const { return begin == end; }
  };

  /// One (symbol, rank) group of the by-(symbol, rank) index. `ids` indexes
  /// into group_ids().
  struct SymbolRankGroup {
    NftaSymbol symbol = 0;
    uint32_t rank = 0;
    uint32_t ids_begin = 0;
    uint32_t ids_end = 0;
    // Offsets into the structure-of-arrays probe arenas (probe_from_ /
    // probe_child_) that mirror this group for the batched kernel probe.
    uint32_t probe_from_begin = 0;
    uint32_t probe_child_begin = 0;
  };

  explicit CompiledNfta(const Nfta& nfta);

  size_t state_count() const { return state_count_; }
  size_t symbol_count() const { return symbol_offsets_.empty() ? 0 : symbol_offsets_.size() - 1; }
  size_t transition_count() const { return from_.size(); }
  size_t max_rank() const { return max_rank_; }
  NftaState initial() const { return initial_; }

  // -- flat transition accessors --------------------------------------------
  NftaState from(TransitionId t) const { return from_[t]; }
  NftaSymbol symbol(TransitionId t) const { return symbol_[t]; }
  uint32_t rank(TransitionId t) const {
    return child_begin_[t + 1] - child_begin_[t];
  }
  /// Pointer to this transition's `rank(t)` children in the shared arena.
  const NftaState* children(TransitionId t) const {
    return children_arena_.data() + child_begin_[t];
  }

  // -- grouped views ---------------------------------------------------------
  /// Transitions from state q. Ids are dense and sorted by from-state, so
  /// this is a contiguous id range (no indirection).
  IdRange TransitionsFrom(NftaState q) const {
    if (q >= state_count_) return {};
    return {from_offsets_[q], from_offsets_[q + 1]};
  }

  /// Ids of transitions with root symbol s (see group_ids()).
  IdRange TransitionsWithSymbol(NftaSymbol s) const {
    if (s + 1 >= symbol_offsets_.size()) return {};
    return {symbol_offsets_[s], symbol_offsets_[s + 1]};
  }

  /// The distinct (symbol, rank) groups, in first-appearance order — the
  /// iteration domain of the exact-count DP.
  const std::vector<SymbolRankGroup>& symbol_rank_groups() const {
    return symbol_rank_groups_;
  }
  /// Index into symbol_rank_groups() for (s, rank), or -1 if absent.
  int32_t GroupIndex(NftaSymbol s, uint32_t rank) const {
    auto it = group_index_.find({s, rank});
    return it == group_index_.end() ? -1 : it->second;
  }
  /// The indirection array behind TransitionsWithSymbol / the groups: the
  /// id at position i of the by-symbol (and by-(symbol, rank)) ordering.
  TransitionId group_id(uint32_t i) const { return group_ids_[i]; }

  /// The structure-of-arrays view of group `gi` (an index into
  /// symbol_rank_groups()) for the batched kernel probe: from-states
  /// contiguous, children grouped by position.
  simd::GroupProbe ProbeForGroup(int32_t gi) const {
    const SymbolRankGroup& g = symbol_rank_groups_[static_cast<size_t>(gi)];
    simd::GroupProbe p;
    p.count = g.ids_end - g.ids_begin;
    p.rank = g.rank;
    p.from = probe_from_.data() + g.probe_from_begin;
    p.child = probe_child_.data() + g.probe_child_begin;
    return p;
  }

  /// The kernel backend this automaton was compiled against (snapshotted
  /// from simd::Active() at construction, so one evaluation never mixes
  /// backends).
  const simd::Kernels& kernels() const { return *k_; }

  // -- bitset behaviours -----------------------------------------------------
  /// uint64 words per state set (fixed width: ceil(state_count / 64)).
  size_t words_per_set() const { return words_per_set_; }

  /// Caller-owned scratch for the bitset runs below. Reusable across calls
  /// and across automata (buffers regrow as needed); never shared between
  /// threads.
  struct Workspace {
    std::vector<uint64_t> slots;  // stack of behaviour sets, wps words each
    // Child-set pointer scratch for the combine step. Safe to share across
    // the whole recursion: a node only fills it after all child subtrees
    // have finished evaluating, and the combine consumes it immediately.
    std::vector<const uint64_t*> child_ptrs;
    void EnsureSlots(size_t n, size_t wps) {
      if (slots.size() < n * wps) slots.resize(n * wps);
    }
  };

  /// Writes the behaviour of `tree` (the set of states accepting it) into
  /// `out` (words_per_set() words). Allocation-free once `ws` is warm.
  void BehaviorOf(const LabeledTree& tree, Workspace* ws, uint64_t* out) const;

  /// Behaviour of a node given its children's behaviours (the DP step):
  /// out = { from(t) : t in group(symbol, rank), children accepted }.
  /// `child_sets[i]` must point at words_per_set() words. `out` must not
  /// alias any child set.
  void CombineBehaviors(NftaSymbol sym, const uint64_t* const* child_sets,
                        uint32_t rank, uint64_t* out) const;

  /// Does the automaton accept `tree` from the initial state?
  bool Accepts(const LabeledTree& tree, Workspace* ws) const;
  /// Does state q accept `tree`?
  bool AcceptsFrom(NftaState q, const LabeledTree& tree, Workspace* ws) const;

  /// All states q accepting `tree`, sorted ascending (legacy interface;
  /// allocates the result vector only).
  std::vector<NftaState> AcceptingStates(const LabeledTree& tree,
                                         Workspace* ws) const;

  /// Appends the set bits of a words_per_set()-word set, ascending.
  void AppendSetBits(const uint64_t* words, std::vector<NftaState>* out) const;

  /// O(1) bit test on a words_per_set()-word set.
  static bool TestBit(const uint64_t* words, NftaState q) {
    return (words[q >> 6] >> (q & 63)) & 1u;
  }
  static void SetBit(uint64_t* words, NftaState q) {
    words[q >> 6] |= uint64_t{1} << (q & 63);
  }

 private:
  /// Recursive bitset run: evaluates `tree`'s behaviour into slot `base` of
  /// ws; slots above `base` are scratch for the subtree.
  void EvalInto(const LabeledTree& tree, Workspace* ws, size_t base) const;

  size_t state_count_ = 0;
  NftaState initial_ = kNoNftaState;
  size_t max_rank_ = 0;
  size_t words_per_set_ = 0;

  // CSR transition storage; ids sorted by from-state.
  std::vector<NftaState> from_;          // per transition
  std::vector<NftaSymbol> symbol_;       // per transition
  std::vector<uint32_t> child_begin_;    // per transition, +1 sentinel
  std::vector<NftaState> children_arena_;
  std::vector<TransitionId> from_offsets_;  // per state, +1 sentinel

  // Secondary index: ids sorted by (symbol, rank); symbol_offsets_ slices it
  // by symbol, symbol_rank_groups_ by (symbol, rank).
  std::vector<TransitionId> group_ids_;
  std::vector<uint32_t> symbol_offsets_;  // per symbol, +1 sentinel
  std::vector<SymbolRankGroup> symbol_rank_groups_;

  // Structure-of-arrays mirror of the groups for the batched kernel probe:
  // per group, `count` from-states then rank*count children grouped by
  // child position (child c of the group's transition i sits at
  // probe_child_begin + c*count + i).
  std::vector<NftaState> probe_from_;
  std::vector<NftaState> probe_child_;

  const simd::Kernels* k_ = nullptr;  // backend snapshot (never null)
  std::unordered_map<std::pair<uint32_t, uint32_t>, int32_t,
                     PairHash<uint32_t, uint32_t>>
      group_index_;
};

}  // namespace uocqa

#endif  // UOCQA_AUTOMATA_COMPILED_NFTA_H_
