#include "automata/fpras.h"

#include <algorithm>
#include <functional>
#include <cassert>
#include <cmath>

namespace uocqa {

NftaFpras::NftaFpras(const Nfta& nfta, FprasConfig config, ThreadPool* pool)
    : nfta_(nfta), config_(config), rng_(config.seed), external_pool_(pool) {
  if (config_.threads != 1) {
    // Warm the automaton's lazy symbol index before any parallel section:
    // afterwards the membership oracle (AcceptingStates) is read-only.
    nfta_.EnsureSymbolIndex();
  }
}

ThreadPool* NftaFpras::pool() {
  if (config_.threads == 1) return nullptr;
  if (external_pool_ != nullptr) return external_pool_;
  if (!owned_pool_) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
  return owned_pool_.get();
}

NftaFpras::Cell& NftaFpras::GetCell(NftaState q, size_t size) {
  auto key = std::make_pair(q, size);
  auto it = cells_.find(key);
  if (it != cells_.end() && it->second.computed) return it->second;
  Cell& cell = cells_[key];
  if (cell.computed) return cell;
  // Mark first to guard against (impossible) cycles: child sizes are
  // strictly smaller.
  cell.computed = true;
  if (size == 0) return cell;

  // Build components, grouped by (symbol, child sizes).
  std::map<std::pair<NftaSymbol, std::vector<size_t>>, size_t> group_index;
  for (const NftaTransition& t : nfta_.TransitionsFrom(q)) {
    size_t rank = t.children.size();
    if (rank == 0) {
      if (size != 1) continue;
      Component c;
      c.transition = &t;
      c.size = 1.0;
      auto key2 = config_.group_disjoint_components
                      ? std::make_pair(t.symbol, std::vector<size_t>{})
                      : std::make_pair(NftaSymbol{0}, std::vector<size_t>{});
      auto [git, inserted] = group_index.try_emplace(key2, cell.groups.size());
      if (inserted) cell.groups.emplace_back();
      cell.groups[git->second].components.push_back(std::move(c));
      continue;
    }
    if (size < rank + 1) continue;
    // Enumerate compositions of size-1 into `rank` positive parts.
    std::vector<size_t> sizes(rank, 1);
    std::function<void(size_t, size_t)> rec = [&](size_t pos,
                                                  size_t remaining) {
      if (pos == rank) {
        if (remaining != 0) return;
        double prod = 1.0;
        for (size_t i = 0; i < rank && prod > 0; ++i) {
          prod *= GetCell(t.children[i], sizes[i]).estimate;
        }
        if (prod <= 0) return;
        Component c;
        c.transition = &t;
        c.child_sizes = sizes;
        c.size = prod;
        auto key2 = config_.group_disjoint_components
                        ? std::make_pair(t.symbol, sizes)
                        : std::make_pair(NftaSymbol{0}, std::vector<size_t>{});
        auto [git, inserted] =
            group_index.try_emplace(key2, cell.groups.size());
        if (inserted) cell.groups.emplace_back();
        cell.groups[git->second].components.push_back(std::move(c));
        return;
      }
      size_t max_here = remaining - (rank - pos - 1);
      for (size_t si = 1; si <= max_here; ++si) {
        sizes[pos] = si;
        rec(pos + 1, remaining - si);
      }
    };
    rec(0, size - 1);
  }

  double total = 0;
  for (Group& g : cell.groups) {
    g.estimate = EstimateGroup(&g);
    total += g.estimate;
  }
  cell.estimate = total;
  return cell;
}

int NftaFpras::MinIndex(const Group& group, const LabeledTree& tree) const {
  // Compute each child's behaviour (and size) once; with grouping enabled
  // all components share root symbol and child sizes, without it the
  // per-component checks below filter mismatches.
  std::vector<std::vector<NftaState>> behaviors;
  std::vector<size_t> child_sizes;
  behaviors.reserve(tree.children.size());
  for (const LabeledTree& c : tree.children) {
    behaviors.push_back(nfta_.AcceptingStates(c));
    child_sizes.push_back(c.Size());
  }
  for (size_t j = 0; j < group.components.size(); ++j) {
    const Component& comp = group.components[j];
    const NftaTransition* t = comp.transition;
    if (t->symbol != tree.symbol ||
        t->children.size() != tree.children.size() ||
        comp.child_sizes != child_sizes) {
      continue;
    }
    bool ok = true;
    for (size_t i = 0; i < t->children.size(); ++i) {
      if (!std::binary_search(behaviors[i].begin(), behaviors[i].end(),
                              t->children[i])) {
        ok = false;
        break;
      }
    }
    if (ok) return static_cast<int>(j);
  }
  return -1;
}

std::optional<LabeledTree> NftaFpras::SampleComponent(Rng& rng,
                                                      const Component& c) {
  LabeledTree out(c.transition->symbol);
  for (size_t i = 0; i < c.child_sizes.size(); ++i) {
    std::optional<LabeledTree> child =
        Sample(rng, c.transition->children[i], c.child_sizes[i]);
    if (!child.has_value()) return std::nullopt;
    out.children.push_back(std::move(*child));
  }
  return out;
}

double NftaFpras::EstimateGroup(Group* group) {
  std::vector<Component>& comps = group->components;
  if (comps.empty()) return 0;
  double sum = 0;
  for (const Component& c : comps) sum += c.size;
  if (comps.size() == 1 || sum <= 0) return sum;

  // Karp–Luby–Madras: estimate = sum * Pr[sampled (j, t) has j minimal].
  ++union_estimations_;
  size_t m = comps.size();
  double eps = std::max(1e-3, config_.epsilon * 0.5);
  size_t samples = static_cast<size_t>(
      std::ceil(4.0 * static_cast<double>(m) *
                std::log(4.0 / config_.delta) / (eps * eps)));
  samples = std::clamp(samples, config_.min_samples, config_.max_samples);

  // Trials are independent, so they run chunked: chunk c always covers the
  // same trials with Rng stream c of a per-union root seed, whatever the
  // thread count. Every cell a trial samples from was computed while this
  // group's components were built, so the loop body only reads `cells_`.
  uint64_t union_seed = rng_.NextU64();
  size_t chunks = (samples + kTrialChunk - 1) / kTrialChunk;
  std::vector<std::pair<size_t, size_t>> counts(chunks);  // hits, performed
  auto run_chunk = [&](size_t c) {
    Rng rng = Rng::Stream(union_seed, c);
    size_t begin = c * kTrialChunk;
    size_t end = std::min(samples, begin + kTrialChunk);
    size_t hits = 0;
    size_t performed = 0;
    for (size_t i = begin; i < end; ++i) {
      // Pick a component proportionally to its estimated size.
      double r = rng.UniformDouble() * sum;
      size_t j = 0;
      double acc = 0;
      for (; j + 1 < m; ++j) {
        acc += comps[j].size;
        if (r < acc) break;
      }
      std::optional<LabeledTree> t = SampleComponent(rng, comps[j]);
      if (!t.has_value()) continue;
      ++performed;
      int min_idx = MinIndex(*group, *t);
      assert(min_idx >= 0);
      if (static_cast<size_t>(min_idx) == j) ++hits;
    }
    counts[c] = {hits, performed};
  };
  ParallelForOn(pool(), chunks, run_chunk, /*grain=*/1);

  size_t hits = 0;
  size_t performed = 0;
  for (const auto& [h, p] : counts) {
    hits += h;
    performed += p;
  }
  if (performed == 0) return 0;
  return sum * static_cast<double>(hits) / static_cast<double>(performed);
}

std::optional<LabeledTree> NftaFpras::Sample(Rng& rng, NftaState q,
                                             size_t size) {
  Cell& cell = GetCell(q, size);
  if (cell.estimate <= 0 || cell.groups.empty()) return std::nullopt;
  for (size_t attempt = 0; attempt < config_.max_rejection_attempts;
       ++attempt) {
    // Pick a group proportionally to its (union) estimate, then a component
    // proportionally to its size, then apply minimal-index rejection.
    double r = rng.UniformDouble() * cell.estimate;
    size_t gi = 0;
    double acc = 0;
    for (; gi + 1 < cell.groups.size(); ++gi) {
      acc += cell.groups[gi].estimate;
      if (r < acc) break;
    }
    Group& g = cell.groups[gi];
    if (g.components.empty()) continue;
    double csum = 0;
    for (const Component& c : g.components) csum += c.size;
    if (csum <= 0) continue;
    double rc = rng.UniformDouble() * csum;
    size_t j = 0;
    double cacc = 0;
    for (; j + 1 < g.components.size(); ++j) {
      cacc += g.components[j].size;
      if (rc < cacc) break;
    }
    std::optional<LabeledTree> t = SampleComponent(rng, g.components[j]);
    if (!t.has_value()) continue;
    int min_idx = MinIndex(g, *t);
    if (min_idx >= 0 && static_cast<size_t>(min_idx) == j) return t;
    // Rejected: t belongs to an earlier component; retry.
  }
  // Rejection budget exhausted: return any sample (slight bias) so callers
  // always make progress on non-empty languages.
  for (Group& g : cell.groups) {
    for (const Component& c : g.components) {
      std::optional<LabeledTree> t = SampleComponent(rng, c);
      if (t.has_value()) return t;
    }
  }
  return std::nullopt;
}

double NftaFpras::EstimateFrom(NftaState q, size_t size) {
  return GetCell(q, size).estimate;
}

double NftaFpras::EstimateExactSize(size_t size) {
  if (nfta_.initial() == kNoNftaState) return 0;
  return EstimateFrom(nfta_.initial(), size);
}

double NftaFpras::EstimateUpTo(size_t max_size) {
  double total = 0;
  for (size_t s = 1; s <= max_size; ++s) total += EstimateExactSize(s);
  return total;
}

}  // namespace uocqa
